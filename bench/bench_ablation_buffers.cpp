// Ablation study of the buffer-sizing design choices DESIGN.md calls out:
//
//   * kernel side buffers per channel (§4: "a rare occurrence in VORX
//     because the kernel has many side buffers") — how many are needed
//     before the retransmission path stops costing throughput?
//   * hardware link buffering (whole-frame slots per HPC link) — how deep
//     before store-and-forward pipelining saturates?
//
// Neither value is printed in the paper; these sweeps justify the
// defaults used throughout the reproduction (16 side buffers, 2-frame
// links).
#include "bench_util.hpp"
#include "vorx/node.hpp"
#include "vorx/system.hpp"

using namespace hpcvorx;
using vorx::Channel;
using vorx::Subprocess;

namespace {

// Bursty producer / slow consumer through channels: throughput and
// retransmission-request count vs side-buffer depth.
std::pair<double, std::uint64_t> side_buffer_run(std::size_t buffers) {
  sim::Simulator sim;
  vorx::SystemConfig cfg;
  cfg.channel_side_buffers = buffers;
  vorx::System sys(sim, cfg);
  constexpr int kMsgs = 200;
  sys.node(0).spawn_process("tx", [&](Subprocess& sp) -> sim::Task<void> {
    Channel* ch = co_await sp.open("ab");
    for (int i = 0; i < kMsgs; ++i) co_await sp.write(*ch, 512);
  });
  sys.node(1).spawn_process("rx", [&](Subprocess& sp) -> sim::Task<void> {
    Channel* ch = co_await sp.open("ab");
    for (int i = 0; i < kMsgs; ++i) {
      (void)co_await sp.read(*ch);
      co_await sp.compute(sim::usec(700));  // slower than the sender
    }
  });
  sim.run();
  return {sim::to_usec(sim.now()) / kMsgs,
          sys.node(1).channels().retransmit_requests()};
}

// Raw streaming throughput vs hardware link buffer depth, with the
// paper's kilometre-scale fiber latency so propagation is visible.
double link_buffer_run(int frames) {
  sim::Simulator sim;
  vorx::SystemConfig cfg;
  cfg.fabric.link.buffer_frames = frames;
  cfg.fabric.link.latency = sim::usec(5);  // ~1 km of fiber
  cfg.fabric.rx_buffer_frames = frames;
  vorx::System sys(sim, cfg);
  constexpr int kMsgs = 500;
  sim::SimTime first = 0, last = 0;
  sys.node(0).spawn_process("tx", [&](Subprocess& sp) -> sim::Task<void> {
    vorx::Udco* u = co_await sp.open_udco("lb");
    first = sim.now();
    for (int i = 0; i < kMsgs; ++i) co_await u->send(sp, 1024);
  });
  sys.node(1).spawn_process("rx", [&](Subprocess& sp) -> sim::Task<void> {
    vorx::Udco* u = co_await sp.open_udco("lb");
    for (int i = 0; i < kMsgs; ++i) (void)co_await u->recv(sp);
    last = sim.now();
  });
  sim.run();
  return static_cast<double>(kMsgs) * 1024 / 1e6 / sim::to_sec(last - first);
}

void run(bench::Reporter& r) {
  bench::line("channel side buffers (bursty producer, slow consumer):");
  bench::line("%8s %14s %18s", "buffers", "us/msg", "retransmit reqs");
  for (std::size_t b : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const auto [us, retx] = side_buffer_run(b);
    bench::line("%8zu %14.1f %18llu", b, us,
                static_cast<unsigned long long>(retx));
    r.row("ablation.side_buffers.us_per_msg.b" + std::to_string(b), "us", us);
    r.row("ablation.side_buffers.retransmits.b" + std::to_string(b), "reqs",
          static_cast<double>(retx));
  }
  bench::line("(the default of 16 makes exhaustion \"a rare occurrence\", as");
  bench::line("the paper says, without unbounded kernel memory)");

  bench::line("");
  bench::line("hardware link buffer depth (raw 1024-B stream over 1 km fiber):");
  bench::line("%8s %14s", "frames", "MB/s");
  for (int f : {1, 2, 3, 4, 8}) {
    const double mbs = link_buffer_run(f);
    bench::line("%8d %14.2f", f, mbs);
    r.row("ablation.link_buffers.mbs.f" + std::to_string(f), "MB/s", mbs);
  }
  bench::line("(the curve is nearly flat: with even one whole-frame slot the");
  bench::line("68020-era software costs dominate — exactly the paper's claim");
  bench::line("that \"hardware communications latency in the HPC is much");
  bench::line("smaller than the latency introduced by the communications");
  bench::line("software\".  The reproduction uses 2 slots everywhere.)");
}

}  // namespace

HPCVORX_BENCH("ablation_buffers",
              "Ablations: side-buffer and link-buffer sizing",
              "design choices behind §4's \"many side buffers\" and the "
              "HPC's whole-frame link buffering",
              run);
