// Regenerates the §3.1 processor-allocation comparison: simulated
// multi-user edit/compile/run development sessions under Meglos's
// free-at-exit policy (vulnerable to the "processors not available" race)
// vs VORX's explicit allocation (stable sessions, but processors idled by
// forgetful users; mitigations: force-free, idle reaping).
#include "bench_util.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "vorx/allocation.hpp"

using namespace hpcvorx;
using vorx::MeglosAllocator;
using vorx::VorxAllocator;

namespace {

struct SessionStats {
  int runs_wanted = 0;
  int runs_failed = 0;
  sim::Duration blocked_time = 0;  // time spent unable to run
};

constexpr int kProcessors = 8;
constexpr int kUsers = 3;
constexpr sim::Duration kDay = sim::sec(3600);

// One programmer: think/edit, compile, then run with exclusive access.
sim::Proc meglos_user(sim::Simulator& sim, MeglosAllocator& alloc, int user,
                      sim::Rng rng, SessionStats* st) {
  while (sim.now() < kDay) {
    co_await sim::delay(sim, sim::sec(5 + rng.below(20)));   // edit
    co_await sim::delay(sim, sim::sec(10 + rng.below(30)));  // recompile
    ++st->runs_wanted;
    const sim::SimTime want_at = sim.now();
    // Meglos allocates at exec time: somebody else may hold everything.
    for (;;) {
      auto procs = alloc.exec(kProcessors, /*exclusive=*/true);
      if (procs.has_value()) {
        st->blocked_time += sim.now() - want_at;
        co_await sim::delay(sim, sim::sec(20 + rng.below(40)));  // the run
        alloc.exit(*procs, true);
        break;
      }
      ++st->runs_failed;  // "processors not available"
      co_await sim::delay(sim, sim::sec(30));  // go ask around the hallway
    }
  }
  (void)user;
}

sim::Proc vorx_user(sim::Simulator& sim, VorxAllocator& alloc, int user,
                    sim::Rng rng, SessionStats* st, bool forgets_to_free) {
  // Allocate once for the session (§3.1's formalized allocation).
  for (;;) {
    auto procs = alloc.allocate(user, kProcessors, sim.now());
    if (procs.has_value()) break;
    ++st->runs_failed;
    co_await sim::delay(sim, sim::sec(30));
  }
  while (sim.now() < kDay) {
    co_await sim::delay(sim, sim::sec(5 + rng.below(20)));
    co_await sim::delay(sim, sim::sec(10 + rng.below(30)));
    ++st->runs_wanted;
    if (alloc.can_run(user, kProcessors)) {
      alloc.note_activity(user, sim.now());
      co_await sim::delay(sim, sim::sec(20 + rng.below(40)));
    } else {
      ++st->runs_failed;  // somebody force-freed us
      co_await sim::delay(sim, sim::sec(30));
    }
  }
  if (!forgets_to_free) alloc.free_user(user);
}

void run_bench(bench::Reporter& r) {
  bench::line("%d users sharing %d processors, 1 hour of edit/compile/run",
              kUsers, kProcessors);
  bench::line("");

  // Meglos: users collide whenever their runs interleave with recompiles.
  {
    sim::Simulator sim;
    MeglosAllocator alloc(kProcessors);
    SessionStats st[kUsers];
    for (int u = 0; u < kUsers; ++u) {
      meglos_user(sim, alloc, u, sim::Rng(100 + static_cast<std::uint64_t>(u)),
                  &st[u]);
    }
    sim.run_until(kDay + sim::sec(300));
    int wanted = 0, failed = 0;
    sim::Duration blocked = 0;
    for (const auto& s : st) {
      wanted += s.runs_wanted;
      failed += s.runs_failed;
      blocked += s.blocked_time;
    }
    bench::line("Meglos (allocate at exec, free at exit):");
    bench::line("  runs attempted %d, \"processors not available\" %d (%.0f%%),",
                wanted, failed, 100.0 * failed / std::max(1, wanted));
    bench::line("  time blocked waiting for processors: %s",
                sim::format_duration(blocked).c_str());
    r.row("sec31.meglos_not_available", "rejections",
          static_cast<double>(failed));
    r.row("sec31.meglos_blocked_min", "min", sim::to_sec(blocked) / 60.0);
  }

  // VORX: sessions are stable; one user forgets to free at the end.
  {
    sim::Simulator sim;
    VorxAllocator alloc(kProcessors * kUsers);  // each user gets a pool slice
    SessionStats st[kUsers];
    for (int u = 0; u < kUsers; ++u) {
      vorx_user(sim, alloc, u, sim::Rng(200 + static_cast<std::uint64_t>(u)),
                &st[u], /*forgets_to_free=*/u == 0);
    }
    sim.run_until(kDay + sim::sec(300));
    int wanted = 0, failed = 0;
    for (const auto& s : st) {
      wanted += s.runs_wanted;
      failed += s.runs_failed;
    }
    bench::line("");
    bench::line("VORX (explicit user allocation):");
    bench::line("  runs attempted %d, failures %d", wanted, failed);
    r.row("sec31.vorx_failures", "rejections", static_cast<double>(failed));
    r.row("sec31.vorx_held_after_day", "processors",
          static_cast<double>(alloc.held_by(0)));
    const int reaped = alloc.reap_idle(kDay + sim::sec(7200), sim::sec(3600));
    bench::line("  idle reaper after 1 h of inactivity reclaims: %d", reaped);
    r.row("sec31.idle_reaper_reclaims", "processors",
          static_cast<double>(reaped));
  }

  bench::line("");
  bench::line("paper: the VORX scheme \"eliminates the problem with processors");
  bench::line("disappearing in the middle of a program development session\";");
  bench::line("its cost is the forgotten-allocation problem, handled by the");
  bench::line("(careful) force-free command or an idle timeout.");
}

}  // namespace

HPCVORX_BENCH("allocation",
              "Processor allocation policies under a multi-user day",
              "section 3.1 (allocate-at-exec vs explicit allocation)",
              run_bench);
