// Regenerates the §4.1 real-time bitmap experiment: "we obtained a rate of
// 3.2 Mbyte/sec, sufficient to refresh a 900x900 pixel portion of a
// monochrome (bi-level black and white) display 30 times per second from
// a remote processor."
#include "apps/bitmap_app.hpp"
#include "bench_util.hpp"

using namespace hpcvorx;

namespace {

void run(bench::Reporter& r) {
  {
    sim::Simulator sim;
    vorx::System sys(sim, vorx::SystemConfig{});
    apps::BitmapConfig cfg;
    cfg.frames = r.iters(8, 2);
    const apps::BitmapResult raw = apps::run_bitmap(sim, sys, cfg);
    r.row("sec41.bitmap_raw_mbs", "MB/s", raw.mbytes_per_sec, 3.2);
    r.row("sec41.bitmap_900x900_fps", "fps", raw.frames_per_sec, 30.0);
    bench::line("%-38s %8s", "pixel integrity end to end",
                raw.checksum_ok ? "exact" : "CORRUPT");
  }
  {
    sim::Simulator sim;
    vorx::System sys(sim, vorx::SystemConfig{});
    apps::BitmapConfig cfg;
    cfg.frames = r.iters(4, 2);
    cfg.use_channels = true;
    const apps::BitmapResult chan = apps::run_bitmap(sim, sys, cfg);
    r.row("sec41.bitmap_channel_mbs", "MB/s", chan.mbytes_per_sec);
  }

  bench::line("");
  bench::line("display-size sweep (raw stream):");
  bench::line("%12s %12s %10s", "pixels", "MB/s", "fps");
  for (int side : {300, 600, 900, 1200}) {
    sim::Simulator sim;
    vorx::System sys(sim, vorx::SystemConfig{});
    apps::BitmapConfig cfg;
    cfg.width = side;
    cfg.height = side;
    cfg.frames = r.iters(4, 2);
    cfg.carry_pixels = false;
    const apps::BitmapResult res = apps::run_bitmap(sim, sys, cfg);
    bench::line("%6dx%-6d %12.2f %10.1f", side, side, res.mbytes_per_sec,
                res.frames_per_sec);
  }
}

}  // namespace

HPCVORX_BENCH("bitmap",
              "Real-time bitmap streaming to a workstation frame buffer",
              "section 4.1 (3.2 MB/s; 900x900 bi-level at 30 Hz)", run);
