// Regenerates the §4.1 real-time bitmap experiment: "we obtained a rate of
// 3.2 Mbyte/sec, sufficient to refresh a 900x900 pixel portion of a
// monochrome (bi-level black and white) display 30 times per second from
// a remote processor."
#include "apps/bitmap_app.hpp"
#include "bench_util.hpp"

using namespace hpcvorx;

int main() {
  bench::heading("Real-time bitmap streaming to a workstation frame buffer",
                 "section 4.1 (3.2 MB/s; 900x900 bi-level at 30 Hz)");

  {
    sim::Simulator sim;
    vorx::System sys(sim, vorx::SystemConfig{});
    apps::BitmapConfig cfg;
    cfg.frames = 8;
    const apps::BitmapResult raw = apps::run_bitmap(sim, sys, cfg);
    bench::line("%-38s %8.2f MB/s  (paper: 3.2, %+0.1f%%)",
                "raw stream, hardware flow control", raw.mbytes_per_sec,
                bench::dev(raw.mbytes_per_sec, 3.2));
    bench::line("%-38s %8.1f fps   (paper: 30, %+0.1f%%)",
                "900x900 bi-level refresh rate", raw.frames_per_sec,
                bench::dev(raw.frames_per_sec, 30));
    bench::line("%-38s %8s", "pixel integrity end to end",
                raw.checksum_ok ? "exact" : "CORRUPT");
  }
  {
    sim::Simulator sim;
    vorx::System sys(sim, vorx::SystemConfig{});
    apps::BitmapConfig cfg;
    cfg.frames = 4;
    cfg.use_channels = true;
    const apps::BitmapResult chan = apps::run_bitmap(sim, sys, cfg);
    bench::line("%-38s %8.2f MB/s  (the stop-and-wait ceiling)",
                "same stream through channels", chan.mbytes_per_sec);
  }

  bench::line("");
  bench::line("display-size sweep (raw stream):");
  bench::line("%12s %12s %10s", "pixels", "MB/s", "fps");
  for (int side : {300, 600, 900, 1200}) {
    sim::Simulator sim;
    vorx::System sys(sim, vorx::SystemConfig{});
    apps::BitmapConfig cfg;
    cfg.width = side;
    cfg.height = side;
    cfg.frames = 4;
    cfg.carry_pixels = false;
    const apps::BitmapResult r = apps::run_bitmap(sim, sys, cfg);
    bench::line("%6dx%-6d %12.2f %10.1f", side, side, r.mbytes_per_sec,
                r.frames_per_sec);
  }
  return 0;
}
