// Regenerates the §4.1 CEMU motivation on the full application: "Guided
// by the experiments done with the CEMU simulator using sliding-window
// protocols, we have seen that a sliding-window protocol can be more
// efficient than a stop-and-wait protocol, even with very low latency
// interconnects like the HPC. ... tuning the protocol to find a proper
// update rate must be done in an application-specific manner."
//
// A register-bounded circuit is partitioned across processing nodes; per
// clock cycle each node exchanges its boundary flip-flop values.  The
// transports under test are stop-and-wait channels vs the reader-active
// sliding-window protocol at several window sizes; every run's trace is
// verified against the serial logic simulation.
#include "apps/cemu_app.hpp"
#include "bench_util.hpp"

using namespace hpcvorx;

namespace {

apps::CemuResult run(int blocks, apps::CemuTransport t, int window,
                     int cycles) {
  sim::Simulator sim;
  vorx::SystemConfig cfg;
  cfg.nodes = blocks;
  cfg.stations_per_cluster = 4;
  vorx::System sys(sim, cfg);
  apps::CemuConfig ccfg;
  ccfg.blocks = blocks;
  ccfg.cycles = cycles;
  ccfg.transport = t;
  ccfg.window = window;
  return apps::run_cemu(sim, sys, ccfg);
}

void run_bench(bench::Reporter& r) {
  const int cycles = r.iters(300, 100);
  bench::line("random register-bounded circuit, 40 gates/block, %d clock",
              cycles);
  bench::line("cycles, boundary flip-flop values exchanged every cycle;");
  bench::line("every row's distributed trace verified against serial");
  bench::line("");
  bench::line("%7s | %22s | %30s", "blocks", "channels (cycles/s)",
              "sliding window (cycles/s) by k");
  bench::line("%7s | %22s | %8s %8s %8s", "", "", "k=2", "k=8", "k=32");
  for (int blocks : {2, 4, 8}) {
    const auto chan = run(blocks, apps::CemuTransport::kChannels, 0, cycles);
    const auto w2 = run(blocks, apps::CemuTransport::kSlidingWindow, 2, cycles);
    const auto w8 = run(blocks, apps::CemuTransport::kSlidingWindow, 8, cycles);
    const auto w32 =
        run(blocks, apps::CemuTransport::kSlidingWindow, 32, cycles);
    bench::line("%7d | %18.0f %s | %8.0f %8.0f %8.0f", blocks,
                chan.cycles_per_sec, chan.matches_serial ? "ok " : "BAD",
                w2.cycles_per_sec, w8.cycles_per_sec, w32.cycles_per_sec);
    r.row("cemu.cycles_per_sec.channels.b" + std::to_string(blocks),
          "cycles/s", chan.cycles_per_sec);
    r.row("cemu.cycles_per_sec.window_k8.b" + std::to_string(blocks),
          "cycles/s", w8.cycles_per_sec);
    if (!w2.matches_serial || !w8.matches_serial || !w32.matches_serial) {
      bench::line("  !! trace mismatch at %d blocks", blocks);
    }
  }
  bench::line("");
  bench::line("the sliding window wins by overlapping cycles: a producer may");
  bench::line("run up to k cycles ahead of a consumer instead of paying a");
  bench::line("full stop-and-wait round trip per boundary message.  The gain");
  bench::line("saturates with k — the \"update rate\" tuning the paper calls");
  bench::line("application-specific.");
}

}  // namespace

HPCVORX_BENCH("cemu_protocols",
              "CEMU circuit simulation: stop-and-wait vs sliding window",
              "section 4.1 (the CEMU sliding-window experiments) and §5 "
              "(message-based MOS simulation)",
              run_bench);
