// Regenerates the §4 headline channel numbers: "the software end-to-end
// latency between application programs running on separate 25 MHz
// Motorola 68020 processing nodes for four byte messages is 303 usec and
// 1024 byte messages can be sent at the rate of 1027 kbyte/sec."
#include "bench_util.hpp"
#include "vorx/node.hpp"
#include "vorx/system.hpp"

using namespace hpcvorx;
using vorx::Channel;
using vorx::Subprocess;

namespace {

struct Stream {
  double us_per_msg = 0;
  double kbytes_per_sec = 0;
};

Stream stream(std::uint32_t bytes, int msgs) {
  sim::Simulator sim;
  vorx::System sys(sim, vorx::SystemConfig{});
  sim::SimTime started = 0, ended = 0;
  sys.node(0).spawn_process("tx", [&](Subprocess& sp) -> sim::Task<void> {
    Channel* ch = co_await sp.open("stream");
    started = sim.now();
    for (int i = 0; i < msgs; ++i) co_await sp.write(*ch, bytes);
    ended = sim.now();
  });
  sys.node(1).spawn_process("rx", [&](Subprocess& sp) -> sim::Task<void> {
    Channel* ch = co_await sp.open("stream");
    for (int i = 0; i < msgs; ++i) (void)co_await sp.read(*ch);
  });
  sim.run();
  Stream s;
  s.us_per_msg = sim::to_usec(ended - started) / msgs;
  s.kbytes_per_sec =
      static_cast<double>(bytes) * msgs / 1e3 / sim::to_sec(ended - started);
  return s;
}

}  // namespace

int main() {
  bench::heading("Channel latency and bandwidth headline numbers",
                 "section 4 (303 us / 4 B; 1027 kB/s at 1024 B)");
  const Stream small = stream(4, 1000);
  const Stream big = stream(1024, 1000);
  bench::line("%-34s %12s %12s %8s", "metric", "measured", "paper", "dev%");
  bench::line("%-34s %9.1f us %9.0f us %+7.1f%%",
              "4-byte end-to-end latency", small.us_per_msg, 303.0,
              bench::dev(small.us_per_msg, 303));
  bench::line("%-34s %7.0f kB/s %7.0f kB/s %+7.1f%%",
              "1024-byte stream bandwidth", big.kbytes_per_sec, 1027.0,
              bench::dev(big.kbytes_per_sec, 1027));
  bench::line("");
  bench::line("bandwidth vs message size (stop-and-wait: one ack per message):");
  bench::line("%10s %14s", "size", "kB/s");
  for (std::uint32_t b : {16u, 64u, 128u, 256u, 512u, 1024u}) {
    bench::line("%8u B %14.0f", b, stream(b, 500).kbytes_per_sec);
  }
  return 0;
}
