// Regenerates the §4 headline channel numbers: "the software end-to-end
// latency between application programs running on separate 25 MHz
// Motorola 68020 processing nodes for four byte messages is 303 usec and
// 1024 byte messages can be sent at the rate of 1027 kbyte/sec."
#include "bench_util.hpp"
#include "vorx/node.hpp"
#include "vorx/system.hpp"

using namespace hpcvorx;
using vorx::Channel;
using vorx::Subprocess;

namespace {

struct Stream {
  double us_per_msg = 0;
  double kbytes_per_sec = 0;
};

Stream stream(std::uint32_t bytes, int msgs) {
  sim::Simulator sim;
  vorx::System sys(sim, vorx::SystemConfig{});
  sim::SimTime started = 0, ended = 0;
  sys.node(0).spawn_process("tx", [&](Subprocess& sp) -> sim::Task<void> {
    Channel* ch = co_await sp.open("stream");
    started = sim.now();
    for (int i = 0; i < msgs; ++i) co_await sp.write(*ch, bytes);
    ended = sim.now();
  });
  sys.node(1).spawn_process("rx", [&](Subprocess& sp) -> sim::Task<void> {
    Channel* ch = co_await sp.open("stream");
    for (int i = 0; i < msgs; ++i) (void)co_await sp.read(*ch);
  });
  sim.run();
  Stream s;
  s.us_per_msg = sim::to_usec(ended - started) / msgs;
  s.kbytes_per_sec =
      static_cast<double>(bytes) * msgs / 1e3 / sim::to_sec(ended - started);
  return s;
}

void run(bench::Reporter& r) {
  const int msgs = r.iters(1000, 200);
  const Stream small = stream(4, msgs);
  const Stream big = stream(1024, msgs);
  r.row("sec4.latency_4B_us", "us", small.us_per_msg, 303.0);
  r.row("sec4.bandwidth_1024B_kbs", "kB/s", big.kbytes_per_sec, 1027.0);
  bench::line("");
  bench::line("bandwidth vs message size (stop-and-wait: one ack per message):");
  bench::line("%10s %14s", "size", "kB/s");
  for (std::uint32_t b : {16u, 64u, 128u, 256u, 512u, 1024u}) {
    const double kbs = stream(b, r.iters(500, 100)).kbytes_per_sec;
    bench::line("%8u B %14.0f", b, kbs);
    r.row("sec4.bandwidth_kbs." + std::to_string(b) + "B", "kB/s", kbs);
  }
}

}  // namespace

HPCVORX_BENCH("channel_bandwidth",
              "Channel latency and bandwidth headline numbers",
              "section 4 (303 us / 4 B; 1027 kB/s at 1024 B)", run);
