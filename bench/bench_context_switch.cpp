// Regenerates the §5 scheduling-cost comparison: "A context switch, which
// includes saving both fixed and floating point registers takes 80 usec
// using a 25 MHz Motorola 68020 with a Motorola 68882 floating point
// coprocessor" — and the lighter structuring techniques the paper lists
// (single subprocess with polling, coroutines, interrupt-level
// programming).
#include <memory>

#include "bench_util.hpp"
#include "vorx/node.hpp"
#include "vorx/system.hpp"
#include "vorx/udco.hpp"

using namespace hpcvorx;
using vorx::Subprocess;
using vorx::VSemaphore;

namespace {

int kRounds = 500;  // reduced in --quick mode

// Two contexts hand a token back and forth; returns us per handoff.
double pingpong_us(sim::Duration switch_cost) {
  sim::Simulator sim;
  vorx::System sys(sim, vorx::SystemConfig{});
  sys.node(0).spawn_process("pp", [&](Subprocess& sp) -> sim::Task<void> {
    auto ping = std::make_shared<VSemaphore>(sp.node(), 0);
    auto pong = std::make_shared<VSemaphore>(sp.node(), 0);
    for (int side = 0; side < 2; ++side) {
      sp.process().spawn(
          [ping, pong, side](Subprocess& t) -> sim::Task<void> {
            for (int i = 0; i < kRounds; ++i) {
              if (side == 0) {
                co_await t.v(*ping);
                co_await t.p(*pong);
              } else {
                co_await t.p(*ping);
                co_await t.v(*pong);
              }
            }
          },
          sim::prio::kUserDefault, "t" + std::to_string(side), switch_cost);
    }
    co_return;
  });
  sim.run();
  return sim::to_usec(sim.now()) / (2.0 * kRounds);
}

// Interrupt-level structuring: the entire "computation" runs in the
// user-defined object's ISR; the subprocess suspends itself (§5).
double interrupt_level_us() {
  sim::Simulator sim;
  vorx::System sys(sim, vorx::SystemConfig{});
  sim::SimTime started = 0, ended = 0;
  sys.node(0).spawn_process("isr-side", [&](Subprocess& sp) -> sim::Task<void> {
    vorx::Udco* u = co_await sp.open_udco("iping");
    u->set_isr([&, u](hw::Frame f) {
      // Echo from interrupt level: no subprocess ever wakes.
      if (f.seq < static_cast<std::uint64_t>(kRounds)) {
        hw::Frame back;
        back.kind = vorx::msg::kUdco;
        back.obj = u->peer_end_id();
        back.dst = u->peer();
        back.seq = f.seq;
        back.payload_bytes = 4;
        sp.node().kernel().send(std::move(back));
      } else {
        ended = sim.now();
      }
    });
    co_return;  // the subprocess suspends; ISRs do all the work
  });
  sys.node(1).spawn_process("driver", [&](Subprocess& sp) -> sim::Task<void> {
    vorx::Udco* u = co_await sp.open_udco("iping");
    started = sim.now();
    for (int i = 0; i < kRounds; ++i) {
      co_await u->send(sp, 4, nullptr, static_cast<std::uint64_t>(i));
      (void)co_await u->recv(sp);
    }
    co_await u->send(sp, 4, nullptr, kRounds);  // stop marker
  });
  sim.run();
  return sim::to_usec(ended - started) / kRounds;
}

void run(bench::Reporter& r) {
  kRounds = r.iters(500, 100);
  const auto& costs = vorx::default_cost_model();

  const double sub = pingpong_us(costs.subprocess_switch);
  const double coro = pingpong_us(costs.coroutine_switch);
  bench::line("token handoff between two execution contexts on one node:");
  r.row("sec5.subprocess_handoff_us", "us", sub);
  r.row("sec5.coroutine_handoff_us", "us", coro);
  r.row("sec5.context_switch_us", "us", sim::to_usec(costs.subprocess_switch),
        80.0);
  bench::line("");
  bench::line("remote ping-pong where one side is structured entirely at");
  bench::line("interrupt level (no context restore on that node):");
  const double isr = interrupt_level_us();
  r.row("sec5.isr_echo_us", "us", isr);

  // Reference: the same remote ping-pong with a normally-scheduled peer.
  sim::Simulator sim;
  vorx::System sys(sim, vorx::SystemConfig{});
  sim::SimTime started = 0, ended = 0;
  sys.node(0).spawn_process("echo", [&](Subprocess& sp) -> sim::Task<void> {
    vorx::Udco* u = co_await sp.open_udco("nping");
    for (int i = 0; i < kRounds; ++i) {
      hw::Frame f = co_await u->recv(sp);
      co_await u->send(sp, 4, nullptr, f.seq);
    }
  });
  sys.node(1).spawn_process("driver", [&](Subprocess& sp) -> sim::Task<void> {
    vorx::Udco* u = co_await sp.open_udco("nping");
    started = sim.now();
    for (int i = 0; i < kRounds; ++i) {
      co_await u->send(sp, 4, nullptr, static_cast<std::uint64_t>(i));
      (void)co_await u->recv(sp);
    }
    ended = sim.now();
  });
  sim.run();
  r.row("sec5.subprocess_echo_us", "us",
        sim::to_usec(ended - started) / kRounds);
}

}  // namespace

HPCVORX_BENCH("context_switch",
              "Context switching and the §5 structuring alternatives",
              "section 5 (80 us full switch; coroutines; interrupt level)",
              run);
