// Regenerates the §3.3 download experiment: "it takes 12 seconds to
// download and initialize a process on each of 70 processors ... With
// [one shared stub and the fan-out-2 tree] it takes only two seconds to
// download and start 70 processes."
#include <memory>

#include "bench_util.hpp"
#include "vorx/loader.hpp"
#include "vorx/node.hpp"
#include "vorx/system.hpp"

using namespace hpcvorx;
using vorx::DownloadScheme;
using vorx::LaunchStats;
using vorx::Subprocess;

namespace {

LaunchStats run(int nodes, DownloadScheme scheme) {
  sim::Simulator sim;
  vorx::SystemConfig cfg;
  cfg.nodes = nodes;
  cfg.stations_per_cluster = 4;
  vorx::System sys(sim, cfg);
  std::vector<int> idx(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) idx[static_cast<std::size_t>(i)] = i;
  auto stats = std::make_shared<LaunchStats>();
  sys.host(0).spawn_process(
      "run-cmd", [&sys, idx, scheme, stats](Subprocess& sp) -> sim::Task<void> {
        *stats = co_await vorx::launch_application(
            sp, sys, idx, /*image_bytes=*/256 * 1024,
            [](Subprocess& app) -> sim::Task<void> {
              co_await app.compute(sim::usec(10));
            },
            scheme);
      });
  sim.run();
  return *stats;
}

void run_bench(bench::Reporter& r) {
  bench::line("256 kB program image, download + start every process");
  bench::line("");
  bench::line("%6s | %18s %6s | %18s %6s | %8s", "procs", "per-process stubs",
              "stubs", "tree download", "stubs", "speedup");
  const std::vector<int> sweep =
      r.quick() ? std::vector<int>{4, 16, 70}
                : std::vector<int>{4, 8, 16, 32, 48, 64, 70};
  LaunchStats a70, b70;
  for (int nodes : sweep) {
    const LaunchStats a = run(nodes, DownloadScheme::kPerProcessStubs);
    const LaunchStats b = run(nodes, DownloadScheme::kSharedStubTree);
    bench::line("%6d | %15.2f s  %6d | %15.2f s  %6d | %7.1fx", nodes,
                sim::to_sec(a.elapsed()), a.stubs_created,
                sim::to_sec(b.elapsed()), b.stubs_created,
                sim::to_sec(a.elapsed()) / sim::to_sec(b.elapsed()));
    if (nodes == 70) {
      a70 = a;
      b70 = b;
    }
  }
  bench::line("");
  r.row("sec33.per_process_stubs_s_70", "s", sim::to_sec(a70.elapsed()), 12.0);
  r.row("sec33.shared_stub_tree_s_70", "s", sim::to_sec(b70.elapsed()), 2.0);
}

}  // namespace

HPCVORX_BENCH("download",
              "Program download: per-process stubs vs shared stub + tree",
              "section 3.3 (12 s vs 2 s for 70 processes)", run_bench);
