// Wall-clock microbenchmarks of the simulation substrate itself
// (google-benchmark): event-queue throughput, coroutine switching, and the
// full simulated message path.  These measure the reproduction's own
// performance, not the paper's numbers.
#include <benchmark/benchmark.h>

#include "sim/awaitables.hpp"
#include "sim/cpu.hpp"
#include "sim/task.hpp"
#include "vorx/node.hpp"
#include "vorx/system.hpp"

using namespace hpcvorx;

namespace {

void BM_EventQueuePushPop(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      q.push(i * 10, [&fired] { ++fired; });
    }
    while (!q.empty()) q.pop().second();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueuePushPop);

sim::Proc chain_proc(sim::Simulator& sim, int hops, int* done) {
  for (int i = 0; i < hops; ++i) co_await sim::delay(sim, 1);
  ++*done;
}

void BM_CoroutineDelayChain(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int done = 0;
    for (int p = 0; p < 10; ++p) chain_proc(sim, 100, &done);
    sim.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoroutineDelayChain);

void BM_CpuPreemptiveJobs(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Cpu cpu(sim, "bench");
    int done = 0;
    for (int i = 0; i < 100; ++i) {
      [](sim::Cpu& c, int prio, int* counter) -> sim::Proc {
        co_await c.run(prio, sim::usec(10), sim::Category::kUser);
        ++*counter;
      }(cpu, i % 7, &done);
    }
    sim.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_CpuPreemptiveJobs);

void BM_ChannelMessageRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    vorx::System sys(sim, vorx::SystemConfig{});
    sys.node(0).spawn_process("tx", [&](vorx::Subprocess& sp)
                                        -> sim::Task<void> {
      vorx::Channel* ch = co_await sp.open("bm");
      for (int i = 0; i < 50; ++i) {
        co_await sp.write(*ch, 64);
        (void)co_await sp.read(*ch);
      }
    });
    sys.node(1).spawn_process("rx", [&](vorx::Subprocess& sp)
                                        -> sim::Task<void> {
      vorx::Channel* ch = co_await sp.open("bm");
      for (int i = 0; i < 50; ++i) {
        (void)co_await sp.read(*ch);
        co_await sp.write(*ch, 64);
      }
    });
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_ChannelMessageRoundTrip);

void BM_HypercubeRouting(benchmark::State& state) {
  const int n = 256;
  int x = 0;
  for (auto _ : state) {
    for (int s = 0; s < n; s += 7) {
      for (int t = 0; t < n; t += 5) {
        if (s != t) x += hw::next_hypercube_hop(s, t, n);
      }
    }
  }
  benchmark::DoNotOptimize(x);
}
BENCHMARK(BM_HypercubeRouting);

}  // namespace

BENCHMARK_MAIN();
