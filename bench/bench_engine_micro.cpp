// Wall-clock microbenchmarks of the simulation substrate itself:
// event-queue throughput, coroutine switching, and the full simulated
// message path.  These measure the reproduction's own performance, not the
// paper's numbers, so this is the one bench that reads a real clock
// (permitted outside src/ — vorx-lint rule R1 covers the simulator only).
//
// The two event-queue rows document the PR that split the hot path:
// `push` returns a cancellable EventHandle and pays one control-block
// allocation per event; `post` is the fire-and-forget path (used by
// delays, timeouts, and frame delivery) with no allocation beyond the
// callable itself.
#include <chrono>
#include <cmath>
#include <deque>
#include <functional>
#include <limits>
#include <vector>

#include "apps/fft.hpp"
#include "bench_util.hpp"
#include "hw/frame_pool.hpp"
#include "hw/hypercube.hpp"
#include "sim/awaitables.hpp"
#include "sim/cpu.hpp"
#include "sim/task.hpp"
#include "vorx/node.hpp"
#include "vorx/system.hpp"

using namespace hpcvorx;

namespace {

// Repeats `iter` until enough wall time has elapsed for a stable rate and
// returns items processed per second.
double items_per_sec(const bench::Reporter& r, int items_per_iter,
                     const std::function<void()>& iter) {
  using clock = std::chrono::steady_clock;
  iter();  // warm-up (page in code, allocator pools)
  const double target_s = r.quick() ? 0.05 : 0.4;
  int n = 0;
  const auto t0 = clock::now();
  double elapsed = 0;
  do {
    iter();
    ++n;
    elapsed = std::chrono::duration<double>(clock::now() - t0).count();
  } while (elapsed < target_s);
  return static_cast<double>(items_per_iter) * n / elapsed;
}

void run(bench::Reporter& r) {
  bench::line("wall-clock rates of the simulation engine (higher is better)");

  volatile int sink = 0;

  r.row("engine.event_queue_push_pop_items_s", "items/s",
        items_per_sec(r, 1000, [&sink] {
          sim::EventQueue q;
          int fired = 0;
          for (int i = 0; i < 1000; ++i) {
            (void)q.push(i * 10, [&fired] { ++fired; });
          }
          while (!q.empty()) q.pop().second();
          sink = sink + fired;
        }));

  r.row("engine.event_queue_post_pop_items_s", "items/s",
        items_per_sec(r, 1000, [&sink] {
          sim::EventQueue q;
          int fired = 0;
          for (int i = 0; i < 1000; ++i) {
            q.post(i * 10, [&fired] { ++fired; });
          }
          while (!q.empty()) q.pop().second();
          sink = sink + fired;
        }));

  // Slice-end traffic (100–300 µs — the Table 1/2 costs) through the full
  // Simulator dispatch loop: 512 concurrent self-rescheduling chains, so
  // the steady state holds ~10 pending events per level-1 bucket and the
  // bucket-at-a-time drain (DESIGN.md §13) amortizes frontier bookkeeping
  // across the whole bucket.  Before batching this row drove pop() once
  // per event; the workload density is the same, the dispatch path is the
  // one the simulator actually runs.
  r.row("engine.wheel_l1_post_pop_items_s", "items/s",
        items_per_sec(r, 512 * 8, [&sink] {
          sim::Simulator sim;
          int fired = 0;
          struct Chain {
            sim::Simulator* sim;
            int remaining;
            int* fired;
            void operator()() {
              ++*fired;
              if (--remaining > 0) {
                const sim::SimTime cost =
                    100'000 + (remaining % 3) * 100'000;
                sim->post_after(cost, Chain{*this});
              }
            }
          };
          for (int i = 0; i < 512; ++i) {
            // Stagger the chain starts across one rescheduling period so
            // the steady-state density appears from the first bucket.
            const sim::SimTime start = 100'000 + (i % 401) * 499;
            sim.post_at(start, Chain{&sim, 8, &fired});
          }
          sim.run();
          sink = sink + fired;
        }));

  // The raw bucket-drain primitive: a dense backlog (4096 events 53 ns
  // apart, ~77 per level-1 bucket) swept with drain_bucket() + the
  // DrainBatch fire protocol — the ceiling the batched dispatch loop
  // approaches when buckets are full.
  r.row("engine.bucket_drain_items_s", "items/s",
        items_per_sec(r, 4096, [&sink] {
          sim::EventQueue q;
          sim::EventQueue::DrainBatch batch;
          int fired = 0;
          for (int i = 0; i < 4096; ++i) {
            q.post(static_cast<sim::SimTime>(i) * 53, [&fired] { ++fired; });
          }
          constexpr sim::SimTime kMax =
              std::numeric_limits<sim::SimTime>::max();
          while (q.drain_bucket(batch, kMax) != 0) {
            while (!batch.exhausted()) {
              batch.prefetch_next();
              if (!batch.begin_fire()) continue;
              q.advance_frontier(batch.head_time());
              batch.fire_head();
            }
          }
          while (!q.empty()) q.pop().second();
          sink = sink + fired;
        }));

  // Same shape again, but every event lands beyond even the level-1 span,
  // forcing the true heap-spill path.  Documents what the wheels buy and
  // guards the handle-sifting heap from regressing unnoticed.
  r.row("engine.event_queue_far_post_pop_items_s", "items/s",
        items_per_sec(r, 1000, [&sink] {
          sim::EventQueue q;
          int fired = 0;
          constexpr sim::SimTime kFar =
              static_cast<sim::SimTime>(2 * sim::EventQueue::kL1Span);
          for (int i = 0; i < 1000; ++i) {
            q.post(kFar + i * 20000, [&fired] { ++fired; });
          }
          while (!q.empty()) q.pop().second();
          sink = sink + fired;
        }));

  // Deterministic structure-traffic audit of the slice-end stream above:
  // the same scripted workload, counted once (virtual-time only, so these
  // rows are byte-stable and any drift is a behaviour change).  Promoted
  // level-1 events are counted as promotions, never as spill — the spill
  // row staying at 0 is the acceptance criterion for the two-level wheel.
  {
    sim::EventQueue q;
    sim::SimTime now = 0;
    for (int i = 0; i < 2000; ++i) {
      const sim::SimTime cost = 100'000 + (i % 3) * 100'000;
      q.post(now + cost, [] {});
      if ((i & 1) != 0) {
        auto [at, fn] = q.pop();
        fn();
        now = at;
      }
    }
    while (!q.empty()) q.pop().second();
    const sim::EventQueue::Stats& st = q.stats();
    r.row("engine.wheel_l1_promoted_events", "events",
          static_cast<double>(st.l1_promoted));
    r.row("engine.wheel_l1_spill_events", "events",
          static_cast<double>(st.heap_inserts));
  }

  // Steady-state payload cycle through the recycling pool: buffer out,
  // payload minted, payload dropped, buffer back.  The counterpart of the
  // raw make_shared cost that vorx-lint R5 pushes callers away from.
  {
    hw::FramePool pool;
    r.row("engine.frame_pool_payloads_s", "payloads/s",
          items_per_sec(r, 1000, [&pool, &sink] {
            std::size_t total = 0;
            for (int i = 0; i < 1000; ++i) {
              std::vector<std::byte> b = pool.buffer();
              b.resize(512);
              hw::Payload p = pool.make(std::move(b));
              total += p->size();
            }
            sink = sink + static_cast<int>(total & 1);
          }));
  }

  // Pool-occupancy counters for the measured sizing policy: a scripted
  // window of 32 in-flight payloads, then apply_high_water_policy().
  // Deterministic rows — the peak is a property of the workload shape, and
  // the policy cap derives from it, so drift means the policy changed.
  {
    hw::FramePool pool;
    std::deque<hw::Payload> live;
    for (int i = 0; i < 1000; ++i) {
      std::vector<std::byte> b = pool.buffer();
      b.resize(512);
      live.push_back(pool.make(std::move(b)));
      if (live.size() > 32) live.pop_front();
    }
    live.clear();
    r.row("frame_pool.occupancy_peak_payloads", "payloads",
          static_cast<double>(pool.peak_payloads_live()));
    r.row("frame_pool.occupancy_max_free_after_policy", "buffers",
          static_cast<double>(pool.apply_high_water_policy()));
    r.row("frame_pool.occupancy_free_buffers_after_policy", "buffers",
          static_cast<double>(pool.free_buffers()));
  }

  // Coroutine resume throughput at simulation-realistic concurrency: 256
  // processes ticking in lockstep, so every instant's resumes sit in one
  // level-1 bucket and dispatch through a single drain (one ring-head
  // comparison and one window update per bucket instead of per resume).
  r.row("engine.coroutine_resumes_s", "resumes/s",
        items_per_sec(r, 256 * 16, [&sink] {
          sim::Simulator sim;
          int done = 0;
          for (int p = 0; p < 256; ++p) {
            [](sim::Simulator& s, int hops, int* out) -> sim::Proc {
              for (int i = 0; i < hops; ++i) co_await sim::delay(s, 1);
              ++*out;
            }(sim, 16, &done);
          }
          sim.run();
          sink = sink + done;
        }));

  // Same-tick delivery coalescing on the receive path: two sources burst
  // 32 raw frames each into one kernel, so arrivals pile up behind the
  // per-frame copy charge and the parked rx pump drains several per
  // resume.  Deterministic (virtual-time counters only): the ratio of
  // arrival interrupts absorbed without a pump resume — frames drained
  // straight out of the staged receive ring by an already-awake rx_pump
  // (DESIGN.md §13).  A channel write/read pair would serialize arrivals
  // onto distinct instants and measure 0 by construction.
  {
    sim::Simulator sim;
    vorx::SystemConfig cfg;
    cfg.nodes = 3;
    vorx::System sys(sim, cfg);
    constexpr std::uint32_t kKind = 4242;  // disjoint from vorx::msg kinds
    int delivered = 0;
    sys.node(0).kernel().register_handler(
        kKind, [&delivered](hw::Frame) { ++delivered; });
    for (int i = 0; i < 32; ++i) {
      for (const int src : {1, 2}) {
        hw::Frame f;
        f.kind = kKind;
        f.dst = sys.node(0).station();
        f.payload_bytes = 256;
        sys.node(src).kernel().send(std::move(f));
      }
    }
    sim.run();
    const vorx::Kernel& k = sys.node(0).kernel();
    const double irqs = static_cast<double>(k.rx_interrupts());
    const double resumes = static_cast<double>(k.rx_resumes());
    r.row("engine.coalesced_resumes_ratio", "ratio",
          irqs > 0 ? 1.0 - resumes / irqs : 0.0);
    sink = sink + delivered;
  }

  r.row("engine.cpu_preemptive_jobs_s", "jobs/s",
        items_per_sec(r, 100, [&sink] {
          sim::Simulator sim;
          sim::Cpu cpu(sim, "bench");
          int done = 0;
          for (int i = 0; i < 100; ++i) {
            [](sim::Cpu& c, int prio, int* counter) -> sim::Proc {
              co_await c.run(prio, sim::usec(10), sim::Category::kUser);
              ++*counter;
            }(cpu, i % 7, &done);
          }
          sim.run();
          sink = sink + done;
        }));

  r.row("engine.channel_roundtrips_s", "roundtrips/s",
        items_per_sec(r, 100, [] {
          sim::Simulator sim;
          vorx::System sys(sim, vorx::SystemConfig{});
          sys.node(0).spawn_process(
              "tx", [&](vorx::Subprocess& sp) -> sim::Task<void> {
                vorx::Channel* ch = co_await sp.open("bm");
                for (int i = 0; i < 50; ++i) {
                  co_await sp.write(*ch, 64);
                  (void)co_await sp.read(*ch);
                }
              });
          sys.node(1).spawn_process(
              "rx", [&](vorx::Subprocess& sp) -> sim::Task<void> {
                vorx::Channel* ch = co_await sp.open("bm");
                for (int i = 0; i < 50; ++i) {
                  (void)co_await sp.read(*ch);
                  co_await sp.write(*ch, 64);
                }
              });
          sim.run();
        }));

  // Harness-side FFT kernel wall-clock: the split-radix cache-blocked
  // kernel vs the textbook radix-2 ablation (--fft=naive).  Virtual-time
  // results never depend on this — the modelled 68882 cost is a function
  // of n only — but the harness executes the transform for real on every
  // simulated node, so this is where the Ooura-style rewrite pays.
  {
    constexpr int kN = 4096;
    std::vector<apps::Complex> sig(kN);
    for (int i = 0; i < kN; ++i) {
      sig[static_cast<std::size_t>(i)] =
          apps::Complex(std::cos(0.37 * i), std::sin(0.11 * i));
    }
    std::vector<apps::Complex> work(kN);
    r.row("apps.fft_blocked_1d_points_s", "points/s",
          items_per_sec(r, kN, [&sig, &work, &sink] {
            work = sig;
            apps::fft(work, false, apps::FftKernel::kBlocked);
            sink = sink + static_cast<int>(work[1].real() > 0);
          }));
    r.row("apps.fft_naive_1d_points_s", "points/s",
          items_per_sec(r, kN, [&sig, &work, &sink] {
            work = sig;
            apps::fft(work, false, apps::FftKernel::kNaive);
            sink = sink + static_cast<int>(work[1].real() > 0);
          }));
  }
  {
    constexpr int kDim = 256;
    std::vector<apps::Complex> img(
        static_cast<std::size_t>(kDim) * kDim);
    for (std::size_t i = 0; i < img.size(); ++i) {
      img[i] = apps::Complex(std::cos(0.037 * static_cast<double>(i)),
                             std::sin(0.011 * static_cast<double>(i)));
    }
    std::vector<apps::Complex> work;
    r.row("apps.fft_blocked_2d_points_s", "points/s",
          items_per_sec(r, kDim * kDim, [&img, &work, &sink] {
            work = img;
            apps::fft2d(work, kDim, apps::FftKernel::kBlocked);
            sink = sink + static_cast<int>(work[1].real() > 0);
          }));
    r.row("apps.fft_naive_2d_points_s", "points/s",
          items_per_sec(r, kDim * kDim, [&img, &work, &sink] {
            work = img;
            apps::fft2d(work, kDim, apps::FftKernel::kNaive);
            sink = sink + static_cast<int>(work[1].real() > 0);
          }));
  }

  constexpr int kCube = 256;
  r.row("engine.hypercube_hops_s", "hops/s",
        items_per_sec(r, (kCube / 7 + 1) * (kCube / 5 + 1), [&sink] {
          int x = 0;
          for (int s = 0; s < kCube; s += 7) {
            for (int t = 0; t < kCube; t += 5) {
              if (s != t) x += hw::next_hypercube_hop(s, t, kCube);
            }
          }
          sink = sink + x;
        }));

  bench::line("");
  bench::line("a full Table 2 cell (1000 messages through two kernels and");
  bench::line("the switched fabric) simulates in a few milliseconds.");
}

}  // namespace

HPCVORX_BENCH("engine_micro",
              "Simulation-engine microbenchmarks (wall clock)",
              "no paper artifact — the reproduction's own performance", run);
