// Regenerates Figure 1: "A Typical Local Area Multiprocessor System" —
// builds the 1988 production configuration (70 processing nodes + 10 SUN-3
// workstations on the HPC interconnect), renders the topology, and checks
// the §1 scaling claims (12-port clusters; 1024 nodes from 256 clusters
// using 8 cube ports + 4 node ports each).
#include <map>

#include "bench_util.hpp"
#include "hw/hypercube.hpp"
#include "vorx/node.hpp"
#include "vorx/system.hpp"

using namespace hpcvorx;

namespace {

void render_system(vorx::System& sys) {
  hw::Fabric& f = sys.fabric();
  bench::line("");
  bench::line("  +----------------------------------------------------------+");
  bench::line("  |                    HPC interconnect                      |");
  bench::line("  |   %3d clusters (12 ports, 160 Mbit/s per direction),     |",
              f.num_clusters());
  bench::line("  |   wired as an incomplete hypercube of dimension %d        |",
              hw::dimension_of(f.num_clusters()));
  bench::line("  +-----+-------------------------------------+--------------+");
  bench::line("        |                                     |");
  bench::line("  processing-node pool                 local-area resources");
  bench::line("  %3d nodes (68020-class)              %2d host workstations",
              sys.num_nodes(), sys.num_hosts());
  bench::line("");
}

void run(bench::Reporter& r) {
  // The paper's operational system: 70 nodes + 10 workstations.
  sim::Simulator sim;
  vorx::SystemConfig cfg;
  cfg.nodes = 70;
  cfg.hosts = 10;
  cfg.stations_per_cluster = 4;
  vorx::System sys(sim, cfg);
  render_system(sys);

  // Topology statistics: route lengths between every pair of stations.
  hw::Fabric& f = sys.fabric();
  std::map<int, int> histo;
  int max_len = 0;
  long total = 0, pairs = 0;
  const int stations = sys.num_nodes() + sys.num_hosts();
  for (int a = 0; a < stations; ++a) {
    for (int b = 0; b < stations; ++b) {
      if (a == b) continue;
      const int len = f.route_length(a, b);
      ++histo[len];
      total += len;
      ++pairs;
      max_len = std::max(max_len, len);
    }
  }
  bench::line("route length histogram (cluster traversals per message):");
  for (const auto& [len, count] : histo) {
    bench::line("  %d hops: %6d station pairs", len, count);
  }
  r.row("fig1.mean_route_hops", "hops",
        static_cast<double>(total) / static_cast<double>(pairs));
  r.row("fig1.max_route_hops", "hops", static_cast<double>(max_len));
  bench::line("  (hardware latency stays far below the ~300 us software");
  bench::line("  latency, as the paper requires)");

  // §1 claim: "A hypercube-based system with 1024 nodes can be built with
  // 256 clusters by using 8 of the 12 ports on each cluster for
  // connections to other clusters and the other four for processing
  // nodes."
  sim::Simulator sim2;
  auto big = hw::Fabric::hypercube(sim2, 1024, 4);
  bench::line("");
  bench::line("scaling check (paper: 1024 nodes / 256 clusters / dim 8):");
  bench::line("  built %d stations on %d clusters, dimension %d, %s",
              big->num_stations(), big->num_clusters(),
              hw::dimension_of(big->num_clusters()),
              big->num_clusters() == 256 ? "MATCHES" : "MISMATCH");
  r.row("fig1.clusters_for_1024_nodes", "clusters",
        static_cast<double>(big->num_clusters()), 256.0);

  // And a delivered-frame sanity pass across the production system: one
  // frame between the extreme stations in each direction.
  int delivered = 0;
  for (auto [a, b] : {std::pair{0, 69}, {69, 0}, {0, 79}, {79, 0}}) {
    sys.station(b).kernel().register_handler(
        vorx::msg::kRaw, [&](hw::Frame) { ++delivered; });
    hw::Frame frame;
    frame.kind = vorx::msg::kRaw;
    frame.dst = b;
    frame.payload_bytes = 64;
    sys.station(a).kernel().send(std::move(frame));
    sim.run();
  }
  bench::line("");
  r.row("fig1.extreme_pair_frames_delivered", "frames",
        static_cast<double>(delivered));
}

}  // namespace

HPCVORX_BENCH("fig1_topology",
              "Figure 1 — A Typical Local Area Multiprocessor System",
              "Figure 1 + the §1 interconnect-scaling claims", run);
