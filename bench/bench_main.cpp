// Common entry point for every bench binary (the gtest_main pattern: this
// file lives in a static library; the linker pulls it in to satisfy the C
// runtime's reference to main).  Runs the benches registered with
// HPCVORX_BENCH and optionally writes one schema-stable JSON file:
//
//   {"schema": "hpcvorx-bench-v1",
//    "quick": false,
//    "hardware_concurrency": 8,
//    "rows": [{"bench": "table2_channels",
//              "metric": "table2.latency_us.4B",
//              "unit": "us", "measured": 301.02,
//              "paper": 303, "deviation_pct": -0.65}, ...]}
//
// `paper` and `deviation_pct` are null for reproduction-only rows.  The
// run_all binary links every bench, so
//
//   build/bench/run_all --json BENCH_results.json
//
// regenerates every number in EXPERIMENTS.md in one command (see the
// per-section "Regenerating" lines there).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "tools/trace_export.hpp"

namespace hpcvorx::bench {

void Reporter::export_trace(vorx::System& sys, const std::string& tag) {
  if (trace_dir_.empty()) return;
  const std::string path =
      trace_dir_ + "/" + bench_ + "." + tag + ".trace.json";
  if (tools::TraceExporter::from_system(sys).write_file(path)) {
    std::printf("  -> wrote trace %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "error: cannot write trace %s\n", path.c_str());
  }
}

}  // namespace hpcvorx::bench

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [--quick] [--json FILE] [--trace DIR] [--list] [name...]\n",
      argv0);
  std::printf("  --quick      reduced iteration counts (CI smoke mode)\n");
  std::printf("  --json FILE  write BENCH_results.json-format rows to FILE\n");
  std::printf("  --trace DIR  write Chrome trace_event JSON per traced run\n");
  std::printf("  --list       list registered benches and exit\n");
  std::printf("  name...      run only the named benches\n");
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

bool write_json(const std::string& path,
                const std::vector<hpcvorx::bench::Row>& rows, bool quick) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  // Machine shape alongside the numbers: rows whose value depends on how
  // many cores ran them (engine.shard_speedup_*) are only comparable
  // between files recorded on equally-wide machines, and the comparison
  // tool uses this field to know when that holds.
  f << "{\"schema\":\"hpcvorx-bench-v1\",\"quick\":"
    << (quick ? "true" : "false") << ",\"hardware_concurrency\":"
    << std::thread::hardware_concurrency() << ",\"rows\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const hpcvorx::bench::Row& r = rows[i];
    f << (i == 0 ? "" : ",") << "\n{\"bench\":\"" << r.bench
      << "\",\"metric\":\"" << r.metric << "\",\"unit\":\"" << r.unit
      << "\",\"measured\":" << json_number(r.measured) << ",\"paper\":";
    if (r.paper.has_value()) {
      f << json_number(*r.paper) << ",\"deviation_pct\":"
        << json_number(hpcvorx::bench::dev(r.measured, *r.paper));
    } else {
      f << "null,\"deviation_pct\":null";
    }
    f << "}";
  }
  f << "\n]}\n";
  return f.good();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool list = false;
  std::string json_path;
  std::string trace_dir;
  std::vector<std::string> filter;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      quick = true;
    } else if (a == "--list") {
      list = true;
    } else if (a == "--json") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --json needs a file argument\n");
        return 2;
      }
      json_path = argv[++i];
    } else if (a == "--trace") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --trace needs a directory argument\n");
        return 2;
      }
      trace_dir = argv[++i];
    } else if (a == "--help" || a == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "error: unknown flag %s\n", a.c_str());
      usage(argv[0]);
      return 2;
    } else {
      filter.push_back(a);
    }
  }

  std::vector<hpcvorx::bench::Bench> benches = hpcvorx::bench::registry();
  std::sort(benches.begin(), benches.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });

  if (list) {
    for (const auto& b : benches) {
      std::printf("%-24s %s\n", b.name.c_str(), b.title.c_str());
    }
    return 0;
  }

  for (const std::string& want : filter) {
    const bool known = std::any_of(
        benches.begin(), benches.end(),
        [&want](const auto& b) { return b.name == want; });
    if (!known) {
      std::fprintf(stderr, "error: unknown bench \"%s\" (--list shows them)\n",
                   want.c_str());
      return 2;
    }
  }

  std::vector<hpcvorx::bench::Row> rows;
  for (const auto& b : benches) {
    if (!filter.empty() &&
        std::find(filter.begin(), filter.end(), b.name) == filter.end()) {
      continue;
    }
    hpcvorx::bench::heading(b.title, b.paper_ref);
    hpcvorx::bench::Reporter r(b.name, quick, trace_dir);
    b.fn(r);
    rows.insert(rows.end(), r.rows().begin(), r.rows().end());
    std::printf("\n");
  }

  if (!json_path.empty()) {
    if (!write_json(json_path, rows, quick)) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %zu rows to %s\n", rows.size(), json_path.c_str());
  }
  return 0;
}
