// Regenerates the §4.2 experiment: the 256x256 2-D FFT's transpose
// exchange using multicast vs personalized messages.  "The problem with
// multicast is that as the number of processors is increased, the number
// of messages received by each processor grows and each process spends
// more and more time reading data that it is not concerned with."
#include <algorithm>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "apps/fft2d_app.hpp"
#include "bench_util.hpp"

using namespace hpcvorx;

namespace {

enum class Mode { kPersonalized, kSoftMcast, kHardMcast };

apps::Fft2dResult run(int n, int p, Mode mode) {
  sim::Simulator sim;
  vorx::SystemConfig cfg;
  cfg.nodes = p;
  cfg.stations_per_cluster = 4;
  vorx::System sys(sim, cfg);
  apps::Fft2dConfig fcfg;
  fcfg.n = n;
  fcfg.p = p;
  fcfg.use_multicast = mode != Mode::kPersonalized;
  fcfg.mcast_mode = mode == Mode::kHardMcast ? vorx::McastMode::kHardware
                                             : vorx::McastMode::kSoftwareTree;
  return apps::run_fft2d(sim, sys, fcfg);
}

// What the per-group multicast counter tracks recorded during one run.
struct McastCounters {
  double switch_copies = 0;    // in-switch replicas (hw::Cluster)
  double kernel_copies = 0;    // software-made copies (vorx::Mcast)
  double fanout_depth = 0;     // replication-tree depth
  double delivery_us_max = 0;  // worst member delivery latency
  double mcast_samples = 0;    // samples on mcast.* / mcast_copies tracks
  double wheel_samples = 0;    // samples on the "engine" track
};

// One counter-instrumented cell: same workload as run(), but with the
// counter timeline on, measured *from the samples themselves* so the rows
// in CI validate the exact data the Perfetto trace carries.
McastCounters run_counted(bench::Reporter& r, int n, int p, Mode mode,
                          const std::string& tag) {
  sim::Simulator sim;
  vorx::SystemConfig cfg;
  cfg.nodes = p;
  cfg.stations_per_cluster = 4;
  cfg.record_counters = true;
  cfg.record_intervals = r.tracing();  // the slice tracks are trace-only
  vorx::System sys(sim, cfg);
  // Full-scale (256x256) cells push on the order of 10^6 counter samples
  // through the timeline; stride decimation keeps the buffer bounded at a
  // uniform grain over the whole run.  The cap is far above anything a
  // --quick run produces, so CI's sample-count rows (sec42.trace.*) and
  // the archived traces still carry every quick-mode sample.
  sim.counters().set_retention(sim::CounterTimeline::Retention::kDecimate,
                               std::size_t{1} << 17);
  apps::Fft2dConfig fcfg;
  fcfg.n = n;
  fcfg.p = p;
  fcfg.use_multicast = true;
  fcfg.mcast_mode = mode == Mode::kHardMcast ? vorx::McastMode::kHardware
                                             : vorx::McastMode::kSoftwareTree;
  (void)apps::run_fft2d(sim, sys, fcfg);

  McastCounters out;
  // Software copies are cumulative per (group, node): sum the last sample
  // of every sw_copies.* series.  Delivery latency and fan-out depth are
  // read the same way — from the samples, not from side channels.
  std::vector<std::pair<std::string, double>> last_sw;  // series key -> last
  for (const sim::CounterTimeline::Sample& s : sim.counters().samples()) {
    const bool group_track = s.track.rfind("mcast.g", 0) == 0;
    const bool switch_series = s.counter.rfind("mcast_copies.g", 0) == 0;
    if (s.track == "engine") ++out.wheel_samples;
    if (!group_track && !switch_series) continue;
    ++out.mcast_samples;
    if (s.counter.rfind("delivery_us.", 0) == 0) {
      out.delivery_us_max = std::max(out.delivery_us_max, s.value);
    } else if (s.counter == "fanout_depth") {
      out.fanout_depth = s.value;
    } else if (s.counter.rfind("sw_copies.", 0) == 0) {
      const std::string key = s.track + "|" + s.counter;
      bool found = false;
      for (auto& [k, v] : last_sw) {
        if (k == key) {
          v = s.value;
          found = true;
        }
      }
      if (!found) last_sw.emplace_back(key, s.value);
    }
  }
  for (const auto& [k, v] : last_sw) out.kernel_copies += v;
  // Cross-check the in-switch total against the clusters' own counters.
  const hw::Fabric& fab = sys.fabric();
  for (int c = 0; c < fab.num_clusters(); ++c) {
    out.switch_copies +=
        static_cast<double>(fab.cluster(c).multicast_copies_total());
  }
  r.export_trace(sys, tag);
  return out;
}

void run_bench(bench::Reporter& r) {
  // Quick mode shrinks the transform, not the sweep: the strategy ratios,
  // not the absolute times, carry the §4.2 claim.
  const int n = r.quick() ? 64 : 256;
  bench::line("%dx%d complex 2-D FFT; every run verified bit-exact against "
              "the serial FFT",
              n, n);
  bench::line("");
  bench::line("exchange time per strategy (ms); personalized = each receiver");
  bench::line("gets only its columns; every run verified against serial FFT");
  bench::line("");
  bench::line("%5s | %14s | %14s | %14s | %17s", "P", "sw multicast",
              "hw multicast", "personalized", "best-mcast / pp");
  for (int p : {4, 8, 16, 32}) {
    const auto sw = run(n, p, Mode::kSoftMcast);
    const auto hw = run(n, p, Mode::kHardMcast);
    const auto pp = run(n, p, Mode::kPersonalized);
    bench::line("%5d | %11.1f ms | %11.1f ms | %11.1f ms | %16.1fx", p,
                sim::to_msec(sw.exchange_elapsed),
                sim::to_msec(hw.exchange_elapsed),
                sim::to_msec(pp.exchange_elapsed),
                std::min(sim::to_msec(sw.exchange_elapsed),
                         sim::to_msec(hw.exchange_elapsed)) /
                    sim::to_msec(pp.exchange_elapsed));
    r.row("sec42.exchange_ms.sw.p" + std::to_string(p), "ms",
          sim::to_msec(sw.exchange_elapsed));
    r.row("sec42.exchange_ms.hw.p" + std::to_string(p), "ms",
          sim::to_msec(hw.exchange_elapsed));
    r.row("sec42.exchange_ms.pp.p" + std::to_string(p), "ms",
          sim::to_msec(pp.exchange_elapsed));
    if (!sw.matches_serial || !hw.matches_serial || !pp.matches_serial) {
      bench::line("  !! result mismatch at P=%d", p);
    }
  }
  // Counter-instrumented cells at P=8: the per-group multicast counter
  // tracks (copies in-switch vs in-software, fan-out depth, per-member
  // delivery time) and the engine's wheel-stats track, validated by CI
  // from these rows and archived as Perfetto traces under --trace.
  const McastCounters sw8 =
      run_counted(r, n, 8, Mode::kSoftMcast, "counters_sw_p8");
  const McastCounters hw8 =
      run_counted(r, n, 8, Mode::kHardMcast, "counters_hw_p8");
  bench::line("");
  bench::line("counter tracks at P=8 (who copies, how deep, how late):");
  bench::line("  sw: %.0f kernel copies, depth %.0f, worst delivery %.1f us",
              sw8.kernel_copies, sw8.fanout_depth, sw8.delivery_us_max);
  bench::line("  hw: %.0f switch copies, depth %.0f, worst delivery %.1f us",
              hw8.switch_copies, hw8.fanout_depth, hw8.delivery_us_max);
  r.row("sec42.mcast.sw_kernel_copies.p8", "copies", sw8.kernel_copies);
  r.row("sec42.mcast.hw_switch_copies.p8", "copies", hw8.switch_copies);
  r.row("sec42.mcast.fanout_depth.sw.p8", "hops", sw8.fanout_depth);
  r.row("sec42.mcast.fanout_depth.hw.p8", "hops", hw8.fanout_depth);
  r.row("sec42.mcast.member_delivery_us_max.sw.p8", "us", sw8.delivery_us_max);
  r.row("sec42.mcast.member_delivery_us_max.hw.p8", "us", hw8.delivery_us_max);
  r.row("sec42.trace.mcast_samples.p8", "samples",
        sw8.mcast_samples + hw8.mcast_samples);
  r.row("sec42.trace.wheel_samples.p8", "samples",
        sw8.wheel_samples + hw8.wheel_samples);
  bench::line("");
  bench::line("even with in-switch replication (\"we designed the HPC hardware");
  bench::line("to be able to implement multicast efficiently\"), multicast");
  bench::line("loses: the receivers still read and sift the whole matrix —");
  bench::line("the §4.2 objection is about receiver processing, not fan-out.");
  bench::line("");
  bench::line("paper's count at P=256: each processor reads 65536 numbers of");
  bench::line("which only 256 are needed (a 256x overread).  The per-node");
  bench::line("multicast read volume above is constant (the whole matrix)");
  bench::line("while the personalized volume shrinks as 1/P — the exchange-");
  bench::line("time ratio therefore grows with P.");
}

}  // namespace

HPCVORX_BENCH("multicast_fft",
              "2-D FFT transpose exchange: multicast vs personalized",
              "section 4.2 (the 256x256 2DFFT example; multicast is "
              "inappropriate)",
              run_bench);
