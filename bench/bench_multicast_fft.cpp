// Regenerates the §4.2 experiment: the 256x256 2-D FFT's transpose
// exchange using multicast vs personalized messages.  "The problem with
// multicast is that as the number of processors is increased, the number
// of messages received by each processor grows and each process spends
// more and more time reading data that it is not concerned with."
#include "apps/fft2d_app.hpp"
#include "bench_util.hpp"

using namespace hpcvorx;

namespace {

enum class Mode { kPersonalized, kSoftMcast, kHardMcast };

apps::Fft2dResult run(int n, int p, Mode mode) {
  sim::Simulator sim;
  vorx::SystemConfig cfg;
  cfg.nodes = p;
  cfg.stations_per_cluster = 4;
  vorx::System sys(sim, cfg);
  apps::Fft2dConfig fcfg;
  fcfg.n = n;
  fcfg.p = p;
  fcfg.use_multicast = mode != Mode::kPersonalized;
  fcfg.mcast_mode = mode == Mode::kHardMcast ? vorx::McastMode::kHardware
                                             : vorx::McastMode::kSoftwareTree;
  return apps::run_fft2d(sim, sys, fcfg);
}

void run_bench(bench::Reporter& r) {
  // Quick mode shrinks the transform, not the sweep: the strategy ratios,
  // not the absolute times, carry the §4.2 claim.
  const int n = r.quick() ? 64 : 256;
  bench::line("%dx%d complex 2-D FFT; every run verified bit-exact against "
              "the serial FFT",
              n, n);
  bench::line("");
  bench::line("exchange time per strategy (ms); personalized = each receiver");
  bench::line("gets only its columns; every run verified against serial FFT");
  bench::line("");
  bench::line("%5s | %14s | %14s | %14s | %17s", "P", "sw multicast",
              "hw multicast", "personalized", "best-mcast / pp");
  for (int p : {4, 8, 16, 32}) {
    const auto sw = run(n, p, Mode::kSoftMcast);
    const auto hw = run(n, p, Mode::kHardMcast);
    const auto pp = run(n, p, Mode::kPersonalized);
    bench::line("%5d | %11.1f ms | %11.1f ms | %11.1f ms | %16.1fx", p,
                sim::to_msec(sw.exchange_elapsed),
                sim::to_msec(hw.exchange_elapsed),
                sim::to_msec(pp.exchange_elapsed),
                std::min(sim::to_msec(sw.exchange_elapsed),
                         sim::to_msec(hw.exchange_elapsed)) /
                    sim::to_msec(pp.exchange_elapsed));
    r.row("sec42.exchange_ms.sw.p" + std::to_string(p), "ms",
          sim::to_msec(sw.exchange_elapsed));
    r.row("sec42.exchange_ms.hw.p" + std::to_string(p), "ms",
          sim::to_msec(hw.exchange_elapsed));
    r.row("sec42.exchange_ms.pp.p" + std::to_string(p), "ms",
          sim::to_msec(pp.exchange_elapsed));
    if (!sw.matches_serial || !hw.matches_serial || !pp.matches_serial) {
      bench::line("  !! result mismatch at P=%d", p);
    }
  }
  bench::line("");
  bench::line("even with in-switch replication (\"we designed the HPC hardware");
  bench::line("to be able to implement multicast efficiently\"), multicast");
  bench::line("loses: the receivers still read and sift the whole matrix —");
  bench::line("the §4.2 objection is about receiver processing, not fan-out.");
  bench::line("");
  bench::line("paper's count at P=256: each processor reads 65536 numbers of");
  bench::line("which only 256 are needed (a 256x overread).  The per-node");
  bench::line("multicast read volume above is constant (the whole matrix)");
  bench::line("while the personalized volume shrinks as 1/P — the exchange-");
  bench::line("time ratio therefore grows with P.");
}

}  // namespace

HPCVORX_BENCH("multicast_fft",
              "2-D FFT transpose exchange: multicast vs personalized",
              "section 4.2 (the 256x256 2DFFT example; multicast is "
              "inappropriate)",
              run_bench);
