// Paper-scale network sweep (DESIGN.md §15): the fabric at 64 / 256 /
// 1024 / 4096 stations, on both topologies (incomplete hypercube vs the
// two-level fat tree) under both routing modes (deterministic e-cube /
// dst-hash vs congestion-aware adaptive) — the adaptive-routing ablation.
//
// §1 of the paper claims the HPC design scales past 1000 nodes; the 1024-
// station cell is exactly its 256-cluster example, and the 4096-station
// cell is the same recipe one dimension up (16-port clusters).  Every cell
// drives the identical seeded workload — a bit-reversal permutation (the
// classic worst case for dimension-ordered routing: heavy link overlap)
// mixed with uniform-random traffic — and reports *simulated* fabric
// throughput and tail latency, so cells are comparable across topologies,
// routing modes, and machine sizes.
//
// Also recorded: resident routing state at each size.  Next hops are
// computed, not tabulated, so this must grow O(clusters) — the acceptance
// gate for the paper-scale machine (net.scale_route_kb.*).
#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "hw/fabric.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

using namespace hpcvorx;

namespace {

struct Cell {
  double frames_per_s = 0;   // delivered per simulated second
  double p99_us = 0;         // injection -> delivery, 99th percentile
  std::size_t route_bytes = 0;
};

// Reverses the low `bits` bits of `v`: the bit-reversal partner pattern.
int bit_reverse(int v, int bits) {
  int out = 0;
  for (int b = 0; b < bits; ++b) {
    if ((v >> b) & 1) out |= 1 << (bits - 1 - b);
  }
  return out;
}

int log2_ceil(int n) {
  int bits = 0;
  while ((1 << bits) < n) ++bits;
  return bits;
}

Cell run_cell(int stations, hw::TopologyKind topo, hw::RoutingMode routing,
              int frames_per_station) {
  sim::Simulator sim;
  hw::FabricParams params;
  params.topo = topo;
  params.routing = routing;
  // The 4096-node cube outgrows the 12-port cluster (10 cube dims + 4
  // station ports); the paper's recipe scales by widening the switch.
  if (topo == hw::TopologyKind::kHypercube && stations >= 4096) {
    params.ports_per_cluster = 16;
  }
  auto fab = topo == hw::TopologyKind::kFatTree
                 ? hw::Fabric::fat_tree(sim, stations, 4, params)
                 : hw::Fabric::hypercube(sim, stations, 4, params);

  std::uint64_t delivered = 0;
  auto latencies = std::make_shared<std::vector<sim::Duration>>();
  latencies->reserve(static_cast<std::size_t>(stations) *
                     static_cast<std::size_t>(frames_per_station));
  for (int s = 0; s < stations; ++s) {
    hw::Fabric* f = fab.get();
    fab->endpoint(s).set_rx_cb([f, s, &sim, &delivered, latencies] {
      hw::Endpoint& e = f->endpoint(s);
      while (auto fr = e.rx_take()) {
        ++delivered;
        latencies->push_back(sim.now() - fr->injected_at);
      }
    });
  }

  // Seeded schedule: half the frames go to the station's bit-reversal
  // partner (synchronized pattern, heavy e-cube link overlap), half to
  // uniform-random destinations.  Identical across routing modes.
  struct Inject {
    sim::SimTime at;
    int dst;
  };
  const int bits = log2_ceil(stations);
  auto schedules = std::make_shared<std::vector<std::vector<Inject>>>(
      static_cast<std::size_t>(stations));
  sim::Rng rng(0x5ca1ab1e + static_cast<std::uint64_t>(stations));
  for (int s = 0; s < stations; ++s) {
    sim::SimTime t = 0;
    for (int i = 0; i < frames_per_station; ++i) {
      t += sim::usec(3 + rng.below(30));
      int dst;
      if (i % 2 == 0) {
        dst = bit_reverse(s, bits) % stations;
        if (dst == s) dst = (s + stations / 2) % stations;
      } else {
        dst = static_cast<int>(rng.below(static_cast<std::uint32_t>(
            stations - 1)));
        if (dst >= s) ++dst;
      }
      (*schedules)[static_cast<std::size_t>(s)].push_back({t, dst});
    }
  }

  std::uint64_t sent = 0;
  for (int s = 0; s < stations; ++s) {
    hw::Fabric* f = fab.get();
    auto idx = std::make_shared<std::size_t>(0);
    auto pump = std::make_shared<std::function<void()>>();
    // Keep-alive comes from the tx-ready callback's copy of `pump` (held
    // until the fabric is destroyed, after sim.run()); the function object
    // itself reschedules through a raw pointer so it never owns itself.
    *pump = [f, s, idx, schedules, self = pump.get(), &sim, &sent] {
      const auto& sched = (*schedules)[static_cast<std::size_t>(s)];
      hw::Endpoint& ep = f->endpoint(s);
      while (*idx < sched.size() && ep.tx_ready()) {
        const Inject& in = sched[*idx];
        if (sim.now() < in.at) {
          sim.schedule_at(in.at, [self] { (*self)(); });
          return;
        }
        hw::Frame fr;
        fr.dst = in.dst;
        fr.payload_bytes = 256;
        ep.transmit(std::move(fr));
        ++sent;
        ++*idx;
      }
    };
    fab->endpoint(s).set_tx_ready_cb([pump] { (*pump)(); });
    sim.schedule_at((*schedules)[static_cast<std::size_t>(s)][0].at,
                    [pump] { (*pump)(); });
  }

  sim.run();

  Cell cell;
  cell.route_bytes = fab->routing_state_bytes();
  const std::uint64_t offered = static_cast<std::uint64_t>(stations) *
                                static_cast<std::uint64_t>(frames_per_station);
  if (sent != offered || delivered != sent || fab->frames_dropped() != 0) {
    bench::line("  !! LOSSY CELL n=%d %s/%s: offered %llu sent %llu "
                "delivered %llu dropped %llu",
                stations, hw::to_string(topo).c_str(),
                hw::to_string(routing).c_str(),
                static_cast<unsigned long long>(offered),
                static_cast<unsigned long long>(sent),
                static_cast<unsigned long long>(delivered),
                static_cast<unsigned long long>(fab->frames_dropped()));
    return cell;  // zero rows flag the failure downstream
  }
  std::sort(latencies->begin(), latencies->end());
  cell.p99_us = sim::to_usec(
      (*latencies)[latencies->size() * 99 / 100 == latencies->size()
                       ? latencies->size() - 1
                       : latencies->size() * 99 / 100]);
  const double sim_seconds = sim::to_usec(sim.now()) / 1e6;
  cell.frames_per_s =
      sim_seconds > 0 ? static_cast<double>(delivered) / sim_seconds : 0;
  return cell;
}

void run(bench::Reporter& r) {
  bench::line("network scaling sweep: stations x topology x routing,");
  bench::line("identical seeded bit-reversal + uniform traffic per cell.");
  bench::line("throughput/latency are simulated-time (engine-independent).");

  const int frames_per_station = r.iters(6, 2);
  const std::vector<int> sizes{64, 256, 1024, 4096};
  for (const int n : sizes) {
    std::size_t cube_route_bytes = 0;
    for (const hw::TopologyKind topo :
         {hw::TopologyKind::kHypercube, hw::TopologyKind::kFatTree}) {
      for (const hw::RoutingMode mode :
           {hw::RoutingMode::kEcube, hw::RoutingMode::kAdaptive}) {
        const Cell cell = run_cell(n, topo, mode, frames_per_station);
        const std::string key = "." + hw::to_string(topo) + "." +
                                hw::to_string(mode) + ".n" +
                                std::to_string(n);
        r.row("net.scale_frames_s" + key, "frames/s", cell.frames_per_s);
        r.row("net.scale_p99_us" + key, "us", cell.p99_us);
        if (topo == hw::TopologyKind::kHypercube &&
            mode == hw::RoutingMode::kEcube) {
          cube_route_bytes = cell.route_bytes;
        }
      }
    }
    // Routing state of the cube machine at this size: must track
    // O(clusters), not O(clusters²) (see the file comment).
    r.row("net.scale_route_kb.n" + std::to_string(n), "KB",
          static_cast<double>(cube_route_bytes) / 1024.0);
  }
}

HPCVORX_BENCH("net_scaling",
              "Paper-scale network sweep (topology x routing x stations)",
              "S1 \"systems of more than 1000 nodes\" (scaling claim)", run);

}  // namespace
