// Regenerates the §3.2 resource-manager experiment: the channel-open storm
// at application start-up, served by Meglos's single centralized manager
// vs VORX's distributed-hashing object managers — "Because there are as
// many object managers as processing nodes, the channel opening bottleneck
// is eliminated."
#include <memory>

#include "bench_util.hpp"
#include "vorx/node.hpp"
#include "vorx/system.hpp"

using namespace hpcvorx;
using vorx::Subprocess;

namespace {

struct Result {
  double setup_ms = 0;         // all channels open
  std::size_t max_queue = 0;   // worst manager backlog
};

// Every node opens two channels (to its ring neighbours) at t=0 — the
// §3.2 "first few seconds of execution" pattern.
Result run(int nodes, bool centralized) {
  sim::Simulator sim;
  vorx::SystemConfig cfg;
  cfg.nodes = nodes;
  cfg.centralized_object_manager = centralized;
  cfg.stations_per_cluster = 4;
  vorx::System sys(sim, cfg);

  auto gate = std::make_shared<sim::Gate>(sim, static_cast<std::size_t>(2 * nodes));
  for (int i = 0; i < nodes; ++i) {
    const std::string right = "link" + std::to_string(i);
    const std::string left = "link" + std::to_string((i + nodes - 1) % nodes);
    sys.node(i).spawn_process(
        "p" + std::to_string(i),
        [right, left, gate](Subprocess& sp) -> sim::Task<void> {
          (void)co_await sp.open(right);
          gate->arrive();
          (void)co_await sp.open(left);
          gate->arrive();
        });
  }
  sim.run();

  Result r;
  r.setup_ms = sim::to_msec(sim.now());
  for (int i = 0; i < nodes; ++i) {
    r.max_queue = std::max(r.max_queue, sys.node(i).om().max_queue_depth());
  }
  if (centralized) {
    r.max_queue = std::max(r.max_queue, sys.host(0).om().max_queue_depth());
  }
  return r;
}

void run_bench(bench::Reporter& r) {
  bench::line("start-up storm: every node opens channels to its two ring "
              "neighbours at once");
  bench::line("");
  bench::line("%6s | %16s %10s | %16s %10s | %8s", "nodes",
              "Meglos setup ms", "max queue", "VORX setup ms", "max queue",
              "speedup");
  const std::vector<int> sweep = r.quick()
                                     ? std::vector<int>{4, 8, 16, 32, 70}
                                     : std::vector<int>{4, 8, 12, 16, 24, 32,
                                                        48, 64, 70};
  for (int nodes : sweep) {
    const Result meglos = run(nodes, true);
    const Result vorx = run(nodes, false);
    bench::line("%6d | %16.2f %10zu | %16.2f %10zu | %7.1fx", nodes,
                meglos.setup_ms, meglos.max_queue, vorx.setup_ms,
                vorx.max_queue, meglos.setup_ms / vorx.setup_ms);
    if (nodes == 70) {
      r.row("sec32.meglos_setup_ms_70", "ms", meglos.setup_ms);
      r.row("sec32.vorx_setup_ms_70", "ms", vorx.setup_ms);
      r.row("sec32.speedup_70", "x", meglos.setup_ms / vorx.setup_ms);
      r.row("sec32.meglos_max_queue_70", "opens",
            static_cast<double>(meglos.max_queue));
      r.row("sec32.vorx_max_queue_70", "opens",
            static_cast<double>(vorx.max_queue));
    }
  }
  bench::line("");
  bench::line("paper: \"this is appropriate for a small system, [but] causes a");
  bench::line("serious performance bottleneck for systems with over ten");
  bench::line("processors\" — the Meglos column grows linearly with the node");
  bench::line("count while the VORX column stays nearly flat.");
}

}  // namespace

HPCVORX_BENCH("object_manager",
              "Channel-open set-up: centralized vs distributed managers",
              "section 3.2 (the resource-manager bottleneck)", run_bench);
