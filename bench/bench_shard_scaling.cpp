// Wall-clock scaling sweep of the sharded engine (sim/shard_runtime):
// one fixed 32-station / 8-cluster machine and workload, executed at
// --shards 1, 2, 4, and 8, reporting simulated events per wall-clock
// second at each width plus the speedups over the 1-shard run.
//
// Like bench_engine_micro, this measures the reproduction's own engine —
// not a paper number — so it reads a real clock (permitted outside src/).
// The 1-shard row runs the same ShardRuntime entry point, which delegates
// to the sequential engine, so the sweep's baseline IS the single-threaded
// simulator.
//
// The workload is the shape sharding is built for (DESIGN.md §12): heavy
// intra-cluster channel traffic (stays inside a shard) plus light
// cross-cluster traffic over cube links whose latency is raised via
// FabricParams::cluster_link — the wider lookahead window lets every
// shard run thousands of events between barriers.  Speedup is bounded by
// the host's core count: on a single-core runner the sweep degenerates to
// measuring barrier overhead, which is itself worth tracking.
#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "sim/shard_runtime.hpp"
#include "vorx/node.hpp"
#include "vorx/system.hpp"

using namespace hpcvorx;

namespace {

using vorx::Channel;
using vorx::Subprocess;

constexpr int kNodes = 32;          // 8 clusters of 4 -> up to 8 shards
constexpr int kClusters = 8;

// One intra-cluster ping-pong pair per two stations, plus one
// cross-cluster pair per cluster (c -> c+1 ring).
void spawn_workload(vorx::System& sys, int local_roundtrips,
                    int cross_roundtrips) {
  for (int p = 0; p < kNodes / 2; ++p) {
    const int a = 2 * p, b = 2 * p + 1;  // same cluster by construction
    const std::string name = "p" + std::to_string(p);
    sys.node(a).spawn_process(
        "ping" + std::to_string(p),
        [name, local_roundtrips](Subprocess& sp) -> sim::Task<void> {
          Channel* ch = co_await sp.open(name);
          for (int i = 0; i < local_roundtrips; ++i) {
            co_await sp.compute(sim::usec(2));
            co_await sp.write(*ch, 256);
            (void)co_await sp.read(*ch);
          }
        });
    sys.node(b).spawn_process(
        "pong" + std::to_string(p),
        [name, local_roundtrips](Subprocess& sp) -> sim::Task<void> {
          Channel* ch = co_await sp.open(name);
          for (int i = 0; i < local_roundtrips; ++i) {
            (void)co_await sp.read(*ch);
            co_await sp.compute(sim::usec(1));
            co_await sp.write(*ch, 256);
          }
        });
  }
  for (int c = 0; c < kClusters; ++c) {
    const int a = 4 * c;                      // cluster c
    const int b = 4 * ((c + 1) % kClusters);  // neighbouring cluster
    const std::string name = "x" + std::to_string(c);
    sys.node(a).spawn_process(
        "xtx" + std::to_string(c),
        [name, cross_roundtrips](Subprocess& sp) -> sim::Task<void> {
          Channel* ch = co_await sp.open(name);
          for (int i = 0; i < cross_roundtrips; ++i) {
            co_await sp.compute(sim::usec(40));
            co_await sp.write(*ch, 512);
            (void)co_await sp.read(*ch);
          }
        });
    sys.node(b).spawn_process(
        "xrx" + std::to_string(c),
        [name, cross_roundtrips](Subprocess& sp) -> sim::Task<void> {
          Channel* ch = co_await sp.open(name);
          for (int i = 0; i < cross_roundtrips; ++i) {
            (void)co_await sp.read(*ch);
            co_await sp.write(*ch, 512);
          }
        });
  }
}

struct SweepPoint {
  double events_per_s = 0;
  std::uint64_t events = 0;
  std::uint64_t rounds = 0;
};

SweepPoint run_at(int shards, int local_roundtrips, int cross_roundtrips,
                  sim::Duration window = sim::usec(50)) {
  using clock = std::chrono::steady_clock;
  vorx::SystemConfig cfg;
  cfg.nodes = kNodes;
  cfg.hosts = 0;
  cfg.stations_per_cluster = 4;
  // Long cables between cabinets: the cube links' latency is the
  // lookahead window, so raising it (cross-cluster traffic is latency
  // tolerant here) buys thousands of intra-shard events per round.
  cfg.fabric.cluster_link = cfg.fabric.link;
  cfg.fabric.cluster_link->latency = window;

  sim::ShardRuntime rt(shards);
  vorx::System sys(rt, cfg);
  spawn_workload(sys, local_roundtrips, cross_roundtrips);
  const auto t0 = clock::now();
  rt.run();
  const double elapsed =
      std::chrono::duration<double>(clock::now() - t0).count();
  SweepPoint pt;
  pt.events = rt.total_events_executed();
  pt.rounds = rt.rounds();
  pt.events_per_s =
      elapsed > 0 ? static_cast<double>(pt.events) / elapsed : 0.0;
  return pt;
}

void run(bench::Reporter& r) {
  bench::line("sharded-engine scaling sweep: 32 stations / 8 clusters,");
  bench::line("identical workload at --shards 1/2/4/8 (higher is better).");
  bench::line("speedup is bounded by the host's core count (%u here).",
              std::thread::hardware_concurrency());

  const int local = r.iters(2000, 100);
  const int cross = r.iters(64, 8);
  // 0 means "unknown" per the std::thread contract; treat it as 1 so the
  // sweep degrades to the explicit-qualifier path instead of lying.
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());

  double base = 0;
  for (const int shards : {1, 2, 4, 8}) {
    const SweepPoint pt = run_at(shards, local, cross);
    r.row("engine.shard_events_s_" + std::to_string(shards), "events/s",
          pt.events_per_s);
    if (shards == 1) {
      base = pt.events_per_s;
      bench::line("  (1-shard run: %llu events, no sync rounds)",
                  static_cast<unsigned long long>(pt.events));
    } else {
      const double speedup = base > 0 ? pt.events_per_s / base : 0.0;
      const std::string key =
          "engine.shard_speedup_" + std::to_string(shards) + "x";
      if (static_cast<unsigned>(shards) <= cores) {
        r.row(key, "x", speedup);
      } else {
        // More shards than hardware threads: the "speedup" measures
        // oversubscription, not scaling, and must not be compared against
        // a wider machine's run under the unqualified key.  Record it
        // under a cores-qualified key and say so.
        bench::line("  (%d shards on %u hardware threads: oversubscribed; "
                    "recording %s_c%u instead of %s)",
                    shards, cores, key.c_str(), cores, key.c_str());
        r.row(key + "_c" + std::to_string(cores), "x", speedup);
      }
      bench::line("  (%d-shard run: %llu events over %llu sync rounds)",
                  shards, static_cast<unsigned long long>(pt.events),
                  static_cast<unsigned long long>(pt.rounds));
    }
  }

  // Lookahead-window width sweep: the conservative window IS the
  // inter-cluster cable latency, so this is the tuning knob for how many
  // events a shard runs between barriers.  4 shards, same workload, cable
  // latency from 10 us to 200 us.  The per-SHA CI rows of this sweep are
  // what chose the 50 us default used by storm and the workload SLO bench
  // (EXPERIMENTS.md records the decision).
  bench::line("lookahead-window sweep at 4 shards (cable latency = window):");
  for (const int window_us : {10, 25, 50, 100, 200}) {
    const SweepPoint pt = run_at(4, local, cross, sim::usec(window_us));
    r.row("engine.shard_window_us_" + std::to_string(window_us) +
              "_events_s",
          "events/s", pt.events_per_s);
    bench::line("  (window %3d us: %llu events over %llu sync rounds)",
                window_us, static_cast<unsigned long long>(pt.events),
                static_cast<unsigned long long>(pt.rounds));
  }
}

HPCVORX_BENCH("shard_scaling",
              "Sharded-engine scaling sweep (--shards 1/2/4/8)",
              "reproduction engine (no paper artifact)", run);

}  // namespace
