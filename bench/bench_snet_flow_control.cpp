// Regenerates the §2 hardware-flow-control experiment set:
//   * busy retransmission on the S/NET livelocks under many-to-one bursts
//     (the lockout);
//   * random backoff restores progress at the timeout rate;
//   * the reservation protocol avoids overflow but taxes every message;
//   * "12 processors could each send a 150 byte message ... without
//     overflowing its fifo";
//   * the HPC's hardware flow control makes the whole problem disappear.
#include <memory>

#include "bench_util.hpp"
#include "vorx/node.hpp"
#include "vorx/protocols/snet_recovery.hpp"
#include "vorx/system.hpp"

using namespace hpcvorx;
using vorx::SnetPolicy;
using vorx::SnetStation;
using vorx::Subprocess;

namespace {

struct Outcome {
  int delivered = 0;
  double per_msg_us = 0;      // time per delivered message
  std::uint64_t overflows = 0;
  std::uint64_t partials = 0;
};

Outcome run_snet(SnetPolicy policy, int senders, std::uint32_t bytes,
                 int per_sender, sim::SimTime deadline) {
  sim::Simulator sim;
  hw::SnetBus bus(sim, senders + 1);
  std::vector<std::unique_ptr<SnetStation>> st;
  for (int i = 0; i <= senders; ++i) {
    st.push_back(std::make_unique<SnetStation>(
        sim, bus, i, vorx::default_cost_model(), 7 + static_cast<std::uint64_t>(i)));
  }
  if (policy == SnetPolicy::kReservation) st[0]->serve_reservations(bytes);

  auto done = std::make_shared<int>(0);
  auto last_done = std::make_shared<sim::SimTime>(0);
  for (int s = 1; s <= senders; ++s) {
    [](SnetStation* station, int count, std::uint32_t nbytes, SnetPolicy pol,
       std::shared_ptr<int> counter, std::shared_ptr<sim::SimTime> last,
       sim::Simulator* simp, sim::SimTime stop_at) -> sim::Proc {
      for (int i = 0; i < count; ++i) {
        if (simp->now() > stop_at) co_return;
        (void)co_await station->send(0, nbytes, pol);
        ++*counter;
        *last = simp->now();
      }
    }(st[static_cast<std::size_t>(s)].get(), per_sender, bytes, policy, done,
      last_done, &sim, deadline);
  }
  [](SnetStation* rx, int expect) -> sim::Proc {
    for (int i = 0; i < expect; ++i) (void)co_await rx->recv();
  }(st[0].get(), senders * per_sender);

  sim.run_until(deadline);
  Outcome o;
  o.delivered = *done;
  o.per_msg_us =
      o.delivered > 0 ? sim::to_usec(*last_done) / o.delivered : 0;
  o.overflows = bus.overflows();
  o.partials = st[0]->partials_discarded();
  return o;
}

// The same many-to-one burst on the HPC: raw frames, hardware flow control
// only.
Outcome run_hpc(int senders, std::uint32_t bytes, int per_sender) {
  sim::Simulator sim;
  vorx::SystemConfig cfg;
  cfg.nodes = senders + 1;
  vorx::System sys(sim, cfg);
  auto got = std::make_shared<int>(0);
  sim::SimTime first = 0;
  for (int s = 1; s <= senders; ++s) {
    sys.node(s).spawn_process(
        "tx" + std::to_string(s),
        [&, s](Subprocess& sp) -> sim::Task<void> {
          vorx::Udco* u = co_await sp.open_udco("m2o" + std::to_string(s));
          for (int i = 0; i < per_sender; ++i) co_await u->send(sp, bytes);
        });
  }
  sys.node(0).spawn_process("rx", [&](Subprocess& sp) -> sim::Task<void> {
    std::vector<vorx::Udco*> links;
    for (int s = 1; s <= senders; ++s) {
      links.push_back(co_await sp.open_udco("m2o" + std::to_string(s)));
    }
    first = sim.now();
    for (int i = 0; i < senders * per_sender; ++i) {
      // Poll round-robin: messages arrive on separate objects.
      for (;;) {
        bool any = false;
        for (vorx::Udco* u : links) {
          if (u->poll()) {
            any = true;
            ++*got;
            break;
          }
        }
        if (any) break;
        co_await sp.sleep(sim::usec(20));
      }
    }
  });
  sim.run();
  Outcome o;
  o.delivered = *got;
  (void)first;
  o.per_msg_us = sim::to_usec(sim.now()) / std::max(1, o.delivered);
  return o;
}

void run(bench::Reporter& r) {
  const int per = r.iters(50, 15);
  bench::line("many-to-one burst: 4 senders x %d messages of 1000 B", per);
  bench::line("%-28s %10s %12s %10s %10s", "strategy", "delivered",
              "us/delivered", "overflows", "partials");
  const auto busy =
      run_snet(SnetPolicy::kBusyRetry, 4, 1000, per, sim::msec(500));
  bench::line("%-28s %10d %12.0f %10llu %10llu",
              "S/NET busy retransmission", busy.delivered, busy.per_msg_us,
              static_cast<unsigned long long>(busy.overflows),
              static_cast<unsigned long long>(busy.partials));
  const auto back =
      run_snet(SnetPolicy::kRandomBackoff, 4, 1000, per, sim::sec(30));
  bench::line("%-28s %10d %12.0f %10llu %10llu", "S/NET random backoff",
              back.delivered, back.per_msg_us,
              static_cast<unsigned long long>(back.overflows),
              static_cast<unsigned long long>(back.partials));
  const auto resv =
      run_snet(SnetPolicy::kReservation, 4, 1000, per, sim::sec(30));
  bench::line("%-28s %10d %12.0f %10llu %10llu", "S/NET reservation",
              resv.delivered, resv.per_msg_us,
              static_cast<unsigned long long>(resv.overflows),
              static_cast<unsigned long long>(resv.partials));
  const auto hpc = run_hpc(4, 1000, per);
  bench::line("%-28s %10d %12.0f %10s %10s", "HPC hardware flow control",
              hpc.delivered, hpc.per_msg_us, "impossible", "none");
  r.row("sec2.busy_retry.delivered", "msgs",
        static_cast<double>(busy.delivered));
  r.row("sec2.busy_retry.overflows", "events",
        static_cast<double>(busy.overflows));
  r.row("sec2.backoff.us_per_delivered", "us", back.per_msg_us);
  r.row("sec2.reservation.overflows", "events",
        static_cast<double>(resv.overflows));
  r.row("sec2.hpc.us_per_delivered", "us", hpc.per_msg_us);

  bench::line("");
  bench::line("reservation tax on an uncontended message (the reason §2 rejected it):");
  const auto one_direct = run_snet(SnetPolicy::kBusyRetry, 1, 256, 1, sim::sec(1));
  const auto one_resv = run_snet(SnetPolicy::kReservation, 1, 256, 1, sim::sec(1));
  bench::line("  direct send: %.0f us     with reservation: %.0f us (+%.0f%%)",
              one_direct.per_msg_us, one_resv.per_msg_us,
              bench::dev(one_resv.per_msg_us, one_direct.per_msg_us));
  r.row("sec2.reservation_tax_pct", "%",
        bench::dev(one_resv.per_msg_us, one_direct.per_msg_us));

  bench::line("");
  bench::line("the Meglos workaround (\"12 processors could each send a 150 byte");
  bench::line("message to a single processor without overflowing its fifo\"):");
  const auto meglos = run_snet(SnetPolicy::kBusyRetry, 12, 150, 1, sim::sec(1));
  bench::line("  12 x 150 B: delivered %d/12, overflows %llu", meglos.delivered,
              static_cast<unsigned long long>(meglos.overflows));
  r.row("sec2.meglos_12x150.overflows", "events",
        static_cast<double>(meglos.overflows), 0.0);
}

}  // namespace

HPCVORX_BENCH("snet_flow_control",
              "S/NET flow control vs HPC hardware flow control",
              "section 2 (fifo overflow, lockout, recovery strategies)", run);
