// Regenerates the §4.1 parallel-SPICE result: "It was able to obtain
// 60 usec software latencies for 64 byte messages with direct access to
// the communications hardware and no low-level protocol" — plus the full
// distributed solve with both transports.
#include <numeric>

#include "apps/spice_app.hpp"
#include "bench_util.hpp"
#include "vorx/node.hpp"
#include "vorx/udco.hpp"

using namespace hpcvorx;
using vorx::Subprocess;
using vorx::Udco;

namespace {

double one_way_latency_us(std::uint32_t bytes, bool channels, int kMsgs) {
  sim::Simulator sim;
  vorx::System sys(sim, vorx::SystemConfig{});
  std::vector<sim::Duration> lat;
  sys.node(0).spawn_process("tx", [&](Subprocess& sp) -> sim::Task<void> {
    if (channels) {
      vorx::Channel* ch = co_await sp.open("lat");
      for (int i = 0; i < kMsgs; ++i) {
        co_await sp.write(*ch, bytes,
                          hw::make_payload(std::vector<std::byte>(8)));
        (void)co_await sp.read(*ch);
      }
    } else {
      Udco* u = co_await sp.open_udco("lat");
      for (int i = 0; i < kMsgs; ++i) {
        co_await u->send(sp, bytes, nullptr,
                         static_cast<std::uint64_t>(sim.now()));
        (void)co_await u->recv(sp);  // natural application synchronization
      }
    }
  });
  sys.node(1).spawn_process("rx", [&](Subprocess& sp) -> sim::Task<void> {
    if (channels) {
      vorx::Channel* ch = co_await sp.open("lat");
      for (int i = 0; i < kMsgs; ++i) {
        // Channels carry no user timestamp field; measure the round trip
        // and halve it.
        const sim::SimTime t0 = sim.now();
        (void)co_await sp.read(*ch);
        (void)t0;
        co_await sp.write(*ch, bytes);
      }
    } else {
      Udco* u = co_await sp.open_udco("lat");
      for (int i = 0; i < kMsgs; ++i) {
        hw::Frame f = co_await u->recv(sp);
        lat.push_back(sim.now() - static_cast<sim::SimTime>(f.seq));
        co_await u->send(sp, bytes);
      }
    }
  });
  sim::SimTime started = sim.now();
  sim.run();
  if (!channels) {
    return sim::to_usec(std::accumulate(lat.begin(), lat.end(),
                                        sim::Duration{0})) /
           static_cast<double>(lat.size());
  }
  // Channel one-way ~ half the measured ping-pong round trip.
  return sim::to_usec(sim.now() - started) / kMsgs / 2.0;
}

void run_bench(bench::Reporter& r) {
  const int msgs = r.iters(500, 100);
  const double raw = one_way_latency_us(64, false, msgs);
  const double chan = one_way_latency_us(64, true, msgs);
  r.row("sec41.spice_raw_64B_us", "us", raw, 60.0);
  r.row("sec41.spice_channel_64B_us", "us", chan);
  bench::line("");

  bench::line("distributed conductance-matrix solve (CG, 8-wide grid = 64-byte halos):");
  bench::line("%6s %6s | %16s | %16s | %8s", "grid", "nodes", "raw objects",
              "channels", "speedup");
  for (const auto& [ny, p] : {std::pair{32, 4}, {64, 4}, {64, 8}, {128, 8}}) {
    sim::Simulator s1;
    vorx::SystemConfig c1;
    c1.nodes = p;
    vorx::System sys1(s1, c1);
    apps::SpiceConfig cfg;
    cfg.ny = ny;
    cfg.p = p;
    cfg.use_channels = false;
    const auto raw_res = apps::run_spice(s1, sys1, cfg);

    sim::Simulator s2;
    vorx::SystemConfig c2;
    c2.nodes = p;
    vorx::System sys2(s2, c2);
    cfg.use_channels = true;
    const auto chan_res = apps::run_spice(s2, sys2, cfg);

    bench::line("8x%-4d %6d | %13.1f ms | %13.1f ms | %7.2fx  %s", ny, p,
                sim::to_msec(raw_res.elapsed), sim::to_msec(chan_res.elapsed),
                sim::to_msec(chan_res.elapsed) / sim::to_msec(raw_res.elapsed),
                raw_res.matches_serial && chan_res.matches_serial
                    ? "(verified)"
                    : "(MISMATCH)");
    r.row("sec41.spice_solve_speedup.8x" + std::to_string(ny) + "p" +
              std::to_string(p),
          "x", sim::to_msec(chan_res.elapsed) / sim::to_msec(raw_res.elapsed));
  }
}

}  // namespace

HPCVORX_BENCH("spice_latency",
              "Parallel SPICE: raw 64-byte latency and the full solve",
              "section 4.1 (60 us / 64 B with no protocol)", run_bench);
