// Regenerates Table 1: "Message Latency for Reader-Active Communications
// Protocol" — the user-level sliding-window protocol of §4.1, swept over
// the receiver's buffer count and the (fixed, known) message size.
//
// Paper values (usecs/msg):
//   bufs     4B   64B  256B  1024B
//      1    414   451   574   1071
//      2    290   317   412    787
//      4    227   251   330    644
//      8    196   218   289    573
//     16    179   200   267    535
//     32    172   192   257    518
//     64    164   184   248    504
#include "bench_util.hpp"
#include "vorx/node.hpp"
#include "vorx/protocols/sliding_window.hpp"
#include "vorx/system.hpp"

using namespace hpcvorx;
using vorx::SlidingWindowReceiver;
using vorx::SlidingWindowSender;
using vorx::Subprocess;
using vorx::Udco;

namespace {

double measure(bench::Reporter& rep, int buffers, std::uint32_t bytes,
               int kMsgs) {
  sim::Simulator sim;
  vorx::SystemConfig cfg;
  // --trace: the protocol bookkeeping runs as user-category compute, so
  // these traces show all four slice kinds (user/system/ctxsw/idle).
  cfg.record_intervals = rep.tracing();
  cfg.record_counters = rep.tracing();
  vorx::System sys(sim, cfg);
  sim::SimTime started = 0, ended = 0;
  sys.node(0).spawn_process("tx", [&](Subprocess& sp) -> sim::Task<void> {
    Udco* u = co_await sp.open_udco("swp");
    SlidingWindowSender tx(*u);
    started = sim.now();
    for (int i = 0; i < kMsgs; ++i) co_await tx.send(sp, bytes);
    ended = sim.now();
  });
  sys.node(1).spawn_process("rx", [&](Subprocess& sp) -> sim::Task<void> {
    Udco* u = co_await sp.open_udco("swp");
    SlidingWindowReceiver rx(*u, buffers);
    co_await rx.start(sp);
    for (int i = 0; i < kMsgs; ++i) (void)co_await rx.recv(sp);
  });
  sim.run();
  rep.export_trace(sys,
                   "b" + std::to_string(buffers) + "." +
                       std::to_string(bytes) + "B");
  return sim::to_usec(ended - started) / kMsgs;
}

void run(bench::Reporter& rep) {
  const int msgs = rep.iters(1000, 150);
  const double paper[7][4] = {{414, 451, 574, 1071}, {290, 317, 412, 787},
                              {227, 251, 330, 644},  {196, 218, 289, 573},
                              {179, 200, 267, 535},  {172, 192, 257, 518},
                              {164, 184, 248, 504}};
  const int bufs[] = {1, 2, 4, 8, 16, 32, 64};
  const std::uint32_t sizes[] = {4, 64, 256, 1024};

  bench::line("%7s | %22s | %22s | %22s | %22s", "buffers", "4 B (meas/paper)",
              "64 B (meas/paper)", "256 B (meas/paper)", "1024 B (meas/paper)");
  for (int r = 0; r < 7; ++r) {
    char row[256];
    int off = std::snprintf(row, sizeof row, "%7d |", bufs[r]);
    for (int c = 0; c < 4; ++c) {
      const double us = measure(rep, bufs[r], sizes[c], msgs);
      off += std::snprintf(row + off, sizeof row - static_cast<size_t>(off),
                           " %9.0f /%5.0f us    |", us, paper[r][c]);
      rep.row("table1.latency_us.b" + std::to_string(bufs[r]) + "." +
                  std::to_string(sizes[c]) + "B",
              "us", us, paper[r][c]);
    }
    bench::line("%s", row);
  }
  bench::line("");
  bench::line(
      "Shape notes: one buffer is worse than channels (414 vs 303 us in the");
  bench::line(
      "paper); two buffers already beat them; more buffers approach the");
  bench::line(
      "receiver-limited floor (~164 us at 4 B).  This reproduction reaches");
  bench::line(
      "the floor at smaller k than the paper's hardware did; the endpoints");
  bench::line("and the crossover against channels match (see EXPERIMENTS.md).");
}

}  // namespace

HPCVORX_BENCH(
    "table1_sliding_window",
    "Table 1 — Message Latency for Reader-Active Communications Protocol",
    "Table 1 (sliding-window protocol over a user-defined object, 1000 "
    "messages per cell)",
    run);
