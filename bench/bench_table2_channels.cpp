// Regenerates Table 2: "Message Latency for Channel Communications."
//
//   | 4 B | 64 B | 256 B | 1024 B |  (usecs/msg)
//   | 303 | 341  | 474   | 997    |
//
// Method as in §4.1: the sender transmits 1000 messages; latency is the
// elapsed time divided by 1000.
#include "bench_util.hpp"
#include "vorx/node.hpp"
#include "vorx/system.hpp"

using namespace hpcvorx;
using vorx::Channel;
using vorx::Subprocess;

namespace {

double measure(bench::Reporter& r, std::uint32_t bytes, int msgs) {
  sim::Simulator sim;
  vorx::SystemConfig cfg;
  // --trace: record ledger intervals and counters and export the run as a
  // Perfetto-loadable trace (one file per message size).
  cfg.record_intervals = r.tracing();
  cfg.record_counters = r.tracing();
  vorx::System sys(sim, cfg);
  sim::SimTime started = 0, ended = 0;
  sys.node(0).spawn_process("tx", [&](Subprocess& sp) -> sim::Task<void> {
    Channel* ch = co_await sp.open("bench");
    started = sim.now();
    for (int i = 0; i < msgs; ++i) co_await sp.write(*ch, bytes);
    ended = sim.now();
  });
  sys.node(1).spawn_process("rx", [&](Subprocess& sp) -> sim::Task<void> {
    Channel* ch = co_await sp.open("bench");
    for (int i = 0; i < msgs; ++i) (void)co_await sp.read(*ch);
  });
  sim.run();
  r.export_trace(sys, std::to_string(bytes) + "B");
  return sim::to_usec(ended - started) / msgs;
}

void run(bench::Reporter& r) {
  const int msgs = r.iters(1000, 200);
  const std::pair<std::uint32_t, double> rows[] = {
      {4, 303}, {64, 341}, {256, 474}, {1024, 997}};
  for (const auto& [bytes, paper] : rows) {
    r.row("table2.latency_us." + std::to_string(bytes) + "B", "us",
          measure(r, bytes, msgs), paper);
  }
}

}  // namespace

HPCVORX_BENCH("table2_channels",
              "Table 2 — Message Latency for Channel Communications",
              "Table 2 (stop-and-wait channel protocol, 1000 messages)", run);
