// Regenerates Table 2: "Message Latency for Channel Communications."
//
//   | 4 B | 64 B | 256 B | 1024 B |  (usecs/msg)
//   | 303 | 341  | 474   | 997    |
//
// Method as in §4.1: the sender transmits 1000 messages; latency is the
// elapsed time divided by 1000.
#include "bench_util.hpp"
#include "vorx/node.hpp"
#include "vorx/system.hpp"

using namespace hpcvorx;
using vorx::Channel;
using vorx::Subprocess;

namespace {

double measure(std::uint32_t bytes) {
  sim::Simulator sim;
  vorx::System sys(sim, vorx::SystemConfig{});
  constexpr int kMsgs = 1000;
  sim::SimTime started = 0, ended = 0;
  sys.node(0).spawn_process("tx", [&](Subprocess& sp) -> sim::Task<void> {
    Channel* ch = co_await sp.open("bench");
    started = sim.now();
    for (int i = 0; i < kMsgs; ++i) co_await sp.write(*ch, bytes);
    ended = sim.now();
  });
  sys.node(1).spawn_process("rx", [&](Subprocess& sp) -> sim::Task<void> {
    Channel* ch = co_await sp.open("bench");
    for (int i = 0; i < kMsgs; ++i) (void)co_await sp.read(*ch);
  });
  sim.run();
  return sim::to_usec(ended - started) / kMsgs;
}

}  // namespace

int main() {
  bench::heading("Table 2 — Message Latency for Channel Communications",
                 "Table 2 (stop-and-wait channel protocol, 1000 messages)");
  bench::line("%10s %14s %14s %8s", "size", "measured us", "paper us", "dev%");
  const std::pair<std::uint32_t, double> rows[] = {
      {4, 303}, {64, 341}, {256, 474}, {1024, 997}};
  for (const auto& [bytes, paper] : rows) {
    const double us = measure(bytes);
    bench::line("%8u B %14.1f %14.0f %+7.1f%%", bytes, us, paper,
                bench::dev(us, paper));
  }
  return 0;
}
