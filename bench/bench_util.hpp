// The shared bench harness.  Every reproduction benchmark registers a run
// function with HPCVORX_BENCH; the common entry point (bench_main.cpp,
// linked into every bench binary — see bench/CMakeLists.txt) runs the
// registered benches and can emit one machine-readable BENCH_results.json
// whose rows EXPERIMENTS.md references by metric key.
//
// A bench does two kinds of output:
//   * bench::line(...) — free-form human-readable tables and commentary;
//   * Reporter::row(metric, unit, measured[, paper]) — one recorded result
//     row per paper-table cell or headline number.  Rows are echoed to
//     stdout with their metric key and land in the JSON file.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace hpcvorx::vorx {
class System;
}  // namespace hpcvorx::vorx

namespace hpcvorx::bench {

/// One machine-readable result: a cell of a paper table, a headline
/// number, or a reproduction-only measurement.  `paper` holds the
/// published value when the artifact has one.
struct Row {
  std::string bench;
  std::string metric;
  std::string unit;
  double measured = 0;
  std::optional<double> paper;
};

/// Percent deviation of measured from paper, for side-by-side columns.
inline double dev(double measured, double paper) {
  return paper != 0 ? 100.0 * (measured - paper) / paper : 0.0;
}

inline void heading(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

inline void line(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  std::vprintf(fmt, ap);
  va_end(ap);
  std::printf("\n");
}

/// Collects the rows of one bench run and carries the run mode.
class Reporter {
 public:
  Reporter(std::string bench_name, bool quick, std::string trace_dir = "")
      : bench_(std::move(bench_name)),
        quick_(quick),
        trace_dir_(std::move(trace_dir)) {}

  /// Records a reproduction-only measurement (no paper value).
  void row(const std::string& metric, const std::string& unit,
           double measured) {
    rows_.push_back(Row{bench_, metric, unit, measured, std::nullopt});
    std::printf("  -> %-44s %14.3f %s\n", metric.c_str(), measured,
                unit.c_str());
  }

  /// Records a measurement next to the paper's published value.
  void row(const std::string& metric, const std::string& unit, double measured,
           double paper) {
    rows_.push_back(Row{bench_, metric, unit, measured, paper});
    std::printf("  -> %-44s %14.3f %-5s (paper %g, %+.1f%%)\n", metric.c_str(),
                measured, unit.c_str(), paper, dev(measured, paper));
  }

  /// Quick mode (--quick): the CI smoke run, with reduced iteration
  /// counts.  Benches that sweep should keep every metric key and shrink
  /// only the per-cell work, so the JSON schema is identical in both
  /// modes.
  [[nodiscard]] bool quick() const { return quick_; }
  /// Convenience: pick an iteration count by mode.
  [[nodiscard]] int iters(int full, int quick_count) const {
    return quick_ ? quick_count : full;
  }

  /// Trace mode (--trace DIR): benches that opt in should build their
  /// System with record_intervals and record_counters set, then hand it to
  /// export_trace after sim.run().
  [[nodiscard]] bool tracing() const { return !trace_dir_.empty(); }
  /// Writes `<dir>/<bench>.<tag>.trace.json` (Chrome trace_event format,
  /// loadable in Perfetto).  No-op unless --trace was given.
  void export_trace(vorx::System& sys, const std::string& tag);

  [[nodiscard]] const std::vector<Row>& rows() const { return rows_; }

 private:
  std::string bench_;
  bool quick_;
  std::string trace_dir_;
  std::vector<Row> rows_;
};

using BenchFn = void (*)(Reporter&);

struct Bench {
  std::string name;       // stable id; the JSON rows' "bench" field
  std::string title;      // human heading
  std::string paper_ref;  // which paper artifact this regenerates
  BenchFn fn;
};

/// Every bench linked into this binary, in registration order (the runner
/// sorts by name before executing).
inline std::vector<Bench>& registry() {
  static std::vector<Bench> r;
  return r;
}

struct Registration {
  Registration(std::string name, std::string title, std::string paper_ref,
               BenchFn fn) {
    registry().push_back(
        Bench{std::move(name), std::move(title), std::move(paper_ref), fn});
  }
};

/// Registers `fn` (void(bench::Reporter&)) under `name`.  One per
/// translation unit.
#define HPCVORX_BENCH(name, title, paper_ref, fn)            \
  static const ::hpcvorx::bench::Registration                \
      hpcvorx_bench_registration_ {                          \
    name, title, paper_ref, fn                               \
  }

}  // namespace hpcvorx::bench
