// Shared output helpers for the reproduction benchmarks.  Every bench
// prints the rows/series of the paper artifact it regenerates, with the
// paper's value alongside where one exists.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>

namespace hpcvorx::bench {

inline void heading(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

inline void line(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  std::vprintf(fmt, ap);
  va_end(ap);
  std::printf("\n");
}

/// Percent deviation of measured from paper, for side-by-side columns.
inline double dev(double measured, double paper) {
  return paper != 0 ? 100.0 * (measured - paper) / paper : 0.0;
}

}  // namespace hpcvorx::bench
