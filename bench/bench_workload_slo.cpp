// Service-level objectives under production traffic (DESIGN.md §14).
//
// Runs the Rapport-shaped open-loop workload (vorx::WorkloadGen) on a
// 64-node / 2-host machine and reports the slo.* rows the CI bench gate
// requires: join-latency percentiles, media-delivery p99, failed-join
// rate, and the concurrent-session peak — first on a healthy machine,
// then with the link_flap fault plan injected, so the recovery cost is a
// tracked number rather than an anecdote.
//
// Every metric here is *virtual* time derived from a fixed seed: rows are
// identical run to run and across hosts, so the per-SHA bench-trajectory
// artifact shows genuine regressions, not runner noise.
#include <memory>
#include <string>

#include "bench_util.hpp"
#include "sim/fault_plan.hpp"
#include "vorx/system.hpp"
#include "vorx/workload.hpp"

using namespace hpcvorx;

namespace {

constexpr std::uint64_t kSeed = 42;

struct Cell {
  vorx::WorkloadReport r;
  std::uint64_t sessions = 0;
};

Cell run_cell(int users, const std::string& plan_name) {
  vorx::SystemConfig scfg;
  scfg.nodes = 64;
  scfg.hosts = 2;
  scfg.stations_per_cluster = 8;
  // 50 us cables with BDP-sized buffers (see storm.cpp): without the
  // deeper slots the cube cables run stop-and-wait and congest.
  scfg.fabric.cluster_link = scfg.fabric.link;
  scfg.fabric.cluster_link->latency = sim::usec(50);
  scfg.fabric.cluster_link->buffer_frames = 64;

  vorx::WorkloadConfig wcfg;
  wcfg.users = users;

  sim::Simulator sim;
  vorx::System sys(sim, scfg);
  vorx::WorkloadGen gen(sys, wcfg, kSeed);
  vorx::FaultInjector inj(sys, &gen);
  inj.install(sim::FaultPlan::named(plan_name, gen.machine_shape(), kSeed,
                                    wcfg.horizon));
  gen.run();
  Cell c;
  c.r = gen.report();
  c.sessions = gen.sessions_generated();
  return c;
}

void run(bench::Reporter& r) {
  bench::line("open-loop conferencing workload, 64 nodes / 2 hosts;");
  bench::line("slo.* rows are virtual-time service-level metrics (lower is");
  bench::line("better except sessions_active_peak).");

  const int users = r.iters(20'000, 3'000);

  const Cell healthy = run_cell(users, "none");
  bench::line("  healthy: %llu sessions, %llu completed, %llu failed",
              static_cast<unsigned long long>(healthy.sessions),
              static_cast<unsigned long long>(healthy.r.completed),
              static_cast<unsigned long long>(healthy.r.failed_joins));
  r.row("slo.join_p50_us", "us",
        static_cast<double>(healthy.r.join_p50_us));
  r.row("slo.join_p99_us", "us",
        static_cast<double>(healthy.r.join_p99_us));
  r.row("slo.delivery_p99_us", "us",
        static_cast<double>(healthy.r.delivery_p99_us));
  r.row("slo.failed_joins_per_s", "/s",
        static_cast<double>(healthy.r.failed_joins_per_s_milli) / 1000.0);
  r.row("slo.sessions_active_peak", "sessions",
        static_cast<double>(healthy.r.sessions_active_peak));

  const Cell flap = run_cell(users, "link_flap");
  bench::line("  link_flap: %llu completed, %llu failed, %llu frames "
              "dropped at faults",
              static_cast<unsigned long long>(flap.r.completed),
              static_cast<unsigned long long>(flap.r.failed_joins),
              static_cast<unsigned long long>(flap.r.fabric_frames_dropped));
  r.row("slo.join_p99_us_linkflap", "us",
        static_cast<double>(flap.r.join_p99_us));
  r.row("slo.delivery_p99_us_linkflap", "us",
        static_cast<double>(flap.r.delivery_p99_us));
  r.row("slo.failed_joins_per_s_linkflap", "/s",
        static_cast<double>(flap.r.failed_joins_per_s_milli) / 1000.0);
}

HPCVORX_BENCH("workload_slo",
              "SLOs under production traffic, healthy vs link_flap",
              "reproduction engine (no paper artifact)", run);

}  // namespace
