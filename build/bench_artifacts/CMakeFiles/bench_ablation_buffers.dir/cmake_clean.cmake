file(REMOVE_RECURSE
  "../bench/bench_ablation_buffers"
  "../bench/bench_ablation_buffers.pdb"
  "CMakeFiles/bench_ablation_buffers.dir/bench_ablation_buffers.cpp.o"
  "CMakeFiles/bench_ablation_buffers.dir/bench_ablation_buffers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
