file(REMOVE_RECURSE
  "../bench/bench_allocation"
  "../bench/bench_allocation.pdb"
  "CMakeFiles/bench_allocation.dir/bench_allocation.cpp.o"
  "CMakeFiles/bench_allocation.dir/bench_allocation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
