file(REMOVE_RECURSE
  "../bench/bench_bitmap"
  "../bench/bench_bitmap.pdb"
  "CMakeFiles/bench_bitmap.dir/bench_bitmap.cpp.o"
  "CMakeFiles/bench_bitmap.dir/bench_bitmap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bitmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
