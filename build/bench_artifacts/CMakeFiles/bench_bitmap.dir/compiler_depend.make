# Empty compiler generated dependencies file for bench_bitmap.
# This may be replaced when dependencies are built.
