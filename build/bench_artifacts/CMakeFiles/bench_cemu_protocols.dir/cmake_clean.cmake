file(REMOVE_RECURSE
  "../bench/bench_cemu_protocols"
  "../bench/bench_cemu_protocols.pdb"
  "CMakeFiles/bench_cemu_protocols.dir/bench_cemu_protocols.cpp.o"
  "CMakeFiles/bench_cemu_protocols.dir/bench_cemu_protocols.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cemu_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
