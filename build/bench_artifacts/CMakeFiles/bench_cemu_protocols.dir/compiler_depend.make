# Empty compiler generated dependencies file for bench_cemu_protocols.
# This may be replaced when dependencies are built.
