file(REMOVE_RECURSE
  "../bench/bench_channel_bandwidth"
  "../bench/bench_channel_bandwidth.pdb"
  "CMakeFiles/bench_channel_bandwidth.dir/bench_channel_bandwidth.cpp.o"
  "CMakeFiles/bench_channel_bandwidth.dir/bench_channel_bandwidth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_channel_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
