# Empty compiler generated dependencies file for bench_channel_bandwidth.
# This may be replaced when dependencies are built.
