file(REMOVE_RECURSE
  "../bench/bench_context_switch"
  "../bench/bench_context_switch.pdb"
  "CMakeFiles/bench_context_switch.dir/bench_context_switch.cpp.o"
  "CMakeFiles/bench_context_switch.dir/bench_context_switch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_context_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
