
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_download.cpp" "bench_artifacts/CMakeFiles/bench_download.dir/bench_download.cpp.o" "gcc" "bench_artifacts/CMakeFiles/bench_download.dir/bench_download.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hpcvorx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hpcvorx_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/vorx/CMakeFiles/hpcvorx_vorx.dir/DependInfo.cmake"
  "/root/repo/build/src/tools/CMakeFiles/hpcvorx_tools.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/hpcvorx_apps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
