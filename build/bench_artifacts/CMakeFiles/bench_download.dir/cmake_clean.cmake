file(REMOVE_RECURSE
  "../bench/bench_download"
  "../bench/bench_download.pdb"
  "CMakeFiles/bench_download.dir/bench_download.cpp.o"
  "CMakeFiles/bench_download.dir/bench_download.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_download.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
