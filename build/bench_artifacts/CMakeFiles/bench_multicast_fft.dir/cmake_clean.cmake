file(REMOVE_RECURSE
  "../bench/bench_multicast_fft"
  "../bench/bench_multicast_fft.pdb"
  "CMakeFiles/bench_multicast_fft.dir/bench_multicast_fft.cpp.o"
  "CMakeFiles/bench_multicast_fft.dir/bench_multicast_fft.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multicast_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
