file(REMOVE_RECURSE
  "../bench/bench_object_manager"
  "../bench/bench_object_manager.pdb"
  "CMakeFiles/bench_object_manager.dir/bench_object_manager.cpp.o"
  "CMakeFiles/bench_object_manager.dir/bench_object_manager.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_object_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
