# Empty dependencies file for bench_object_manager.
# This may be replaced when dependencies are built.
