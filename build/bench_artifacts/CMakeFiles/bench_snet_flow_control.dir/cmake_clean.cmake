file(REMOVE_RECURSE
  "../bench/bench_snet_flow_control"
  "../bench/bench_snet_flow_control.pdb"
  "CMakeFiles/bench_snet_flow_control.dir/bench_snet_flow_control.cpp.o"
  "CMakeFiles/bench_snet_flow_control.dir/bench_snet_flow_control.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_snet_flow_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
