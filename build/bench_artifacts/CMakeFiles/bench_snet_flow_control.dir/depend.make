# Empty dependencies file for bench_snet_flow_control.
# This may be replaced when dependencies are built.
