file(REMOVE_RECURSE
  "../bench/bench_spice_latency"
  "../bench/bench_spice_latency.pdb"
  "CMakeFiles/bench_spice_latency.dir/bench_spice_latency.cpp.o"
  "CMakeFiles/bench_spice_latency.dir/bench_spice_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spice_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
