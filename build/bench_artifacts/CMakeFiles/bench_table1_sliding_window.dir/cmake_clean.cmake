file(REMOVE_RECURSE
  "../bench/bench_table1_sliding_window"
  "../bench/bench_table1_sliding_window.pdb"
  "CMakeFiles/bench_table1_sliding_window.dir/bench_table1_sliding_window.cpp.o"
  "CMakeFiles/bench_table1_sliding_window.dir/bench_table1_sliding_window.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_sliding_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
