# Empty compiler generated dependencies file for bench_table1_sliding_window.
# This may be replaced when dependencies are built.
