file(REMOVE_RECURSE
  "../bench/bench_table2_channels"
  "../bench/bench_table2_channels.pdb"
  "CMakeFiles/bench_table2_channels.dir/bench_table2_channels.cpp.o"
  "CMakeFiles/bench_table2_channels.dir/bench_table2_channels.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
