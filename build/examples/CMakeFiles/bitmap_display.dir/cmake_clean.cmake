file(REMOVE_RECURSE
  "CMakeFiles/bitmap_display.dir/bitmap_display.cpp.o"
  "CMakeFiles/bitmap_display.dir/bitmap_display.cpp.o.d"
  "bitmap_display"
  "bitmap_display.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitmap_display.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
