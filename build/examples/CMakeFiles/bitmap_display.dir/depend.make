# Empty dependencies file for bitmap_display.
# This may be replaced when dependencies are built.
