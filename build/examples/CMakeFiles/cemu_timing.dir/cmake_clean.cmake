file(REMOVE_RECURSE
  "CMakeFiles/cemu_timing.dir/cemu_timing.cpp.o"
  "CMakeFiles/cemu_timing.dir/cemu_timing.cpp.o.d"
  "cemu_timing"
  "cemu_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cemu_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
