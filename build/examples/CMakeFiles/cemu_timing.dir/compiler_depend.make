# Empty compiler generated dependencies file for cemu_timing.
# This may be replaced when dependencies are built.
