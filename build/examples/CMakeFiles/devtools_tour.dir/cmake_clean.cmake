file(REMOVE_RECURSE
  "CMakeFiles/devtools_tour.dir/devtools_tour.cpp.o"
  "CMakeFiles/devtools_tour.dir/devtools_tour.cpp.o.d"
  "devtools_tour"
  "devtools_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/devtools_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
