# Empty compiler generated dependencies file for devtools_tour.
# This may be replaced when dependencies are built.
