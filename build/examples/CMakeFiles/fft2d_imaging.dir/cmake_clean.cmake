file(REMOVE_RECURSE
  "CMakeFiles/fft2d_imaging.dir/fft2d_imaging.cpp.o"
  "CMakeFiles/fft2d_imaging.dir/fft2d_imaging.cpp.o.d"
  "fft2d_imaging"
  "fft2d_imaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft2d_imaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
