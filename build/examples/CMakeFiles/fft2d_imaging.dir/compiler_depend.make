# Empty compiler generated dependencies file for fft2d_imaging.
# This may be replaced when dependencies are built.
