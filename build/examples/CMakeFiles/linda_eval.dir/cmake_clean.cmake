file(REMOVE_RECURSE
  "CMakeFiles/linda_eval.dir/linda_eval.cpp.o"
  "CMakeFiles/linda_eval.dir/linda_eval.cpp.o.d"
  "linda_eval"
  "linda_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linda_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
