# Empty dependencies file for linda_eval.
# This may be replaced when dependencies are built.
