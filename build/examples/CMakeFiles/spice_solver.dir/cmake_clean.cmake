file(REMOVE_RECURSE
  "CMakeFiles/spice_solver.dir/spice_solver.cpp.o"
  "CMakeFiles/spice_solver.dir/spice_solver.cpp.o.d"
  "spice_solver"
  "spice_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
