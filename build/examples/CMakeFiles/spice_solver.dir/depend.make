# Empty dependencies file for spice_solver.
# This may be replaced when dependencies are built.
