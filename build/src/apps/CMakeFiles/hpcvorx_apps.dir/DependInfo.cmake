
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/bitmap.cpp" "src/apps/CMakeFiles/hpcvorx_apps.dir/bitmap.cpp.o" "gcc" "src/apps/CMakeFiles/hpcvorx_apps.dir/bitmap.cpp.o.d"
  "/root/repo/src/apps/bitmap_app.cpp" "src/apps/CMakeFiles/hpcvorx_apps.dir/bitmap_app.cpp.o" "gcc" "src/apps/CMakeFiles/hpcvorx_apps.dir/bitmap_app.cpp.o.d"
  "/root/repo/src/apps/cemu_app.cpp" "src/apps/CMakeFiles/hpcvorx_apps.dir/cemu_app.cpp.o" "gcc" "src/apps/CMakeFiles/hpcvorx_apps.dir/cemu_app.cpp.o.d"
  "/root/repo/src/apps/fft.cpp" "src/apps/CMakeFiles/hpcvorx_apps.dir/fft.cpp.o" "gcc" "src/apps/CMakeFiles/hpcvorx_apps.dir/fft.cpp.o.d"
  "/root/repo/src/apps/fft2d_app.cpp" "src/apps/CMakeFiles/hpcvorx_apps.dir/fft2d_app.cpp.o" "gcc" "src/apps/CMakeFiles/hpcvorx_apps.dir/fft2d_app.cpp.o.d"
  "/root/repo/src/apps/linda.cpp" "src/apps/CMakeFiles/hpcvorx_apps.dir/linda.cpp.o" "gcc" "src/apps/CMakeFiles/hpcvorx_apps.dir/linda.cpp.o.d"
  "/root/repo/src/apps/logic.cpp" "src/apps/CMakeFiles/hpcvorx_apps.dir/logic.cpp.o" "gcc" "src/apps/CMakeFiles/hpcvorx_apps.dir/logic.cpp.o.d"
  "/root/repo/src/apps/sparse.cpp" "src/apps/CMakeFiles/hpcvorx_apps.dir/sparse.cpp.o" "gcc" "src/apps/CMakeFiles/hpcvorx_apps.dir/sparse.cpp.o.d"
  "/root/repo/src/apps/spice_app.cpp" "src/apps/CMakeFiles/hpcvorx_apps.dir/spice_app.cpp.o" "gcc" "src/apps/CMakeFiles/hpcvorx_apps.dir/spice_app.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vorx/CMakeFiles/hpcvorx_vorx.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hpcvorx_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hpcvorx_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
