file(REMOVE_RECURSE
  "CMakeFiles/hpcvorx_apps.dir/bitmap.cpp.o"
  "CMakeFiles/hpcvorx_apps.dir/bitmap.cpp.o.d"
  "CMakeFiles/hpcvorx_apps.dir/bitmap_app.cpp.o"
  "CMakeFiles/hpcvorx_apps.dir/bitmap_app.cpp.o.d"
  "CMakeFiles/hpcvorx_apps.dir/cemu_app.cpp.o"
  "CMakeFiles/hpcvorx_apps.dir/cemu_app.cpp.o.d"
  "CMakeFiles/hpcvorx_apps.dir/fft.cpp.o"
  "CMakeFiles/hpcvorx_apps.dir/fft.cpp.o.d"
  "CMakeFiles/hpcvorx_apps.dir/fft2d_app.cpp.o"
  "CMakeFiles/hpcvorx_apps.dir/fft2d_app.cpp.o.d"
  "CMakeFiles/hpcvorx_apps.dir/linda.cpp.o"
  "CMakeFiles/hpcvorx_apps.dir/linda.cpp.o.d"
  "CMakeFiles/hpcvorx_apps.dir/logic.cpp.o"
  "CMakeFiles/hpcvorx_apps.dir/logic.cpp.o.d"
  "CMakeFiles/hpcvorx_apps.dir/sparse.cpp.o"
  "CMakeFiles/hpcvorx_apps.dir/sparse.cpp.o.d"
  "CMakeFiles/hpcvorx_apps.dir/spice_app.cpp.o"
  "CMakeFiles/hpcvorx_apps.dir/spice_app.cpp.o.d"
  "libhpcvorx_apps.a"
  "libhpcvorx_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcvorx_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
