file(REMOVE_RECURSE
  "libhpcvorx_apps.a"
)
