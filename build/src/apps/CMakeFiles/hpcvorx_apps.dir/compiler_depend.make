# Empty compiler generated dependencies file for hpcvorx_apps.
# This may be replaced when dependencies are built.
