
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/cluster.cpp" "src/hw/CMakeFiles/hpcvorx_hw.dir/cluster.cpp.o" "gcc" "src/hw/CMakeFiles/hpcvorx_hw.dir/cluster.cpp.o.d"
  "/root/repo/src/hw/fabric.cpp" "src/hw/CMakeFiles/hpcvorx_hw.dir/fabric.cpp.o" "gcc" "src/hw/CMakeFiles/hpcvorx_hw.dir/fabric.cpp.o.d"
  "/root/repo/src/hw/framebuffer.cpp" "src/hw/CMakeFiles/hpcvorx_hw.dir/framebuffer.cpp.o" "gcc" "src/hw/CMakeFiles/hpcvorx_hw.dir/framebuffer.cpp.o.d"
  "/root/repo/src/hw/link.cpp" "src/hw/CMakeFiles/hpcvorx_hw.dir/link.cpp.o" "gcc" "src/hw/CMakeFiles/hpcvorx_hw.dir/link.cpp.o.d"
  "/root/repo/src/hw/snet.cpp" "src/hw/CMakeFiles/hpcvorx_hw.dir/snet.cpp.o" "gcc" "src/hw/CMakeFiles/hpcvorx_hw.dir/snet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hpcvorx_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
