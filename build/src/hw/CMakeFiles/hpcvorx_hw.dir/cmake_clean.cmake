file(REMOVE_RECURSE
  "CMakeFiles/hpcvorx_hw.dir/cluster.cpp.o"
  "CMakeFiles/hpcvorx_hw.dir/cluster.cpp.o.d"
  "CMakeFiles/hpcvorx_hw.dir/fabric.cpp.o"
  "CMakeFiles/hpcvorx_hw.dir/fabric.cpp.o.d"
  "CMakeFiles/hpcvorx_hw.dir/framebuffer.cpp.o"
  "CMakeFiles/hpcvorx_hw.dir/framebuffer.cpp.o.d"
  "CMakeFiles/hpcvorx_hw.dir/link.cpp.o"
  "CMakeFiles/hpcvorx_hw.dir/link.cpp.o.d"
  "CMakeFiles/hpcvorx_hw.dir/snet.cpp.o"
  "CMakeFiles/hpcvorx_hw.dir/snet.cpp.o.d"
  "libhpcvorx_hw.a"
  "libhpcvorx_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcvorx_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
