file(REMOVE_RECURSE
  "libhpcvorx_hw.a"
)
