# Empty dependencies file for hpcvorx_hw.
# This may be replaced when dependencies are built.
