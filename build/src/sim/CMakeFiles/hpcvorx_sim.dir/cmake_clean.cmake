file(REMOVE_RECURSE
  "CMakeFiles/hpcvorx_sim.dir/cpu.cpp.o"
  "CMakeFiles/hpcvorx_sim.dir/cpu.cpp.o.d"
  "CMakeFiles/hpcvorx_sim.dir/event_queue.cpp.o"
  "CMakeFiles/hpcvorx_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/hpcvorx_sim.dir/simulator.cpp.o"
  "CMakeFiles/hpcvorx_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/hpcvorx_sim.dir/time.cpp.o"
  "CMakeFiles/hpcvorx_sim.dir/time.cpp.o.d"
  "libhpcvorx_sim.a"
  "libhpcvorx_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcvorx_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
