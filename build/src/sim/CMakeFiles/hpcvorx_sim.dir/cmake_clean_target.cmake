file(REMOVE_RECURSE
  "libhpcvorx_sim.a"
)
