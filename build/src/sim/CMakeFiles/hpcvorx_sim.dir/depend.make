# Empty dependencies file for hpcvorx_sim.
# This may be replaced when dependencies are built.
