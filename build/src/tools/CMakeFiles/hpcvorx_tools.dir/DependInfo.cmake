
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tools/cdb.cpp" "src/tools/CMakeFiles/hpcvorx_tools.dir/cdb.cpp.o" "gcc" "src/tools/CMakeFiles/hpcvorx_tools.dir/cdb.cpp.o.d"
  "/root/repo/src/tools/oscilloscope.cpp" "src/tools/CMakeFiles/hpcvorx_tools.dir/oscilloscope.cpp.o" "gcc" "src/tools/CMakeFiles/hpcvorx_tools.dir/oscilloscope.cpp.o.d"
  "/root/repo/src/tools/prof.cpp" "src/tools/CMakeFiles/hpcvorx_tools.dir/prof.cpp.o" "gcc" "src/tools/CMakeFiles/hpcvorx_tools.dir/prof.cpp.o.d"
  "/root/repo/src/tools/vdb.cpp" "src/tools/CMakeFiles/hpcvorx_tools.dir/vdb.cpp.o" "gcc" "src/tools/CMakeFiles/hpcvorx_tools.dir/vdb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vorx/CMakeFiles/hpcvorx_vorx.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hpcvorx_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hpcvorx_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
