file(REMOVE_RECURSE
  "CMakeFiles/hpcvorx_tools.dir/cdb.cpp.o"
  "CMakeFiles/hpcvorx_tools.dir/cdb.cpp.o.d"
  "CMakeFiles/hpcvorx_tools.dir/oscilloscope.cpp.o"
  "CMakeFiles/hpcvorx_tools.dir/oscilloscope.cpp.o.d"
  "CMakeFiles/hpcvorx_tools.dir/prof.cpp.o"
  "CMakeFiles/hpcvorx_tools.dir/prof.cpp.o.d"
  "CMakeFiles/hpcvorx_tools.dir/vdb.cpp.o"
  "CMakeFiles/hpcvorx_tools.dir/vdb.cpp.o.d"
  "libhpcvorx_tools.a"
  "libhpcvorx_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcvorx_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
