file(REMOVE_RECURSE
  "libhpcvorx_tools.a"
)
