# Empty compiler generated dependencies file for hpcvorx_tools.
# This may be replaced when dependencies are built.
