
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vorx/allocation.cpp" "src/vorx/CMakeFiles/hpcvorx_vorx.dir/allocation.cpp.o" "gcc" "src/vorx/CMakeFiles/hpcvorx_vorx.dir/allocation.cpp.o.d"
  "/root/repo/src/vorx/channel.cpp" "src/vorx/CMakeFiles/hpcvorx_vorx.dir/channel.cpp.o" "gcc" "src/vorx/CMakeFiles/hpcvorx_vorx.dir/channel.cpp.o.d"
  "/root/repo/src/vorx/kernel.cpp" "src/vorx/CMakeFiles/hpcvorx_vorx.dir/kernel.cpp.o" "gcc" "src/vorx/CMakeFiles/hpcvorx_vorx.dir/kernel.cpp.o.d"
  "/root/repo/src/vorx/loader.cpp" "src/vorx/CMakeFiles/hpcvorx_vorx.dir/loader.cpp.o" "gcc" "src/vorx/CMakeFiles/hpcvorx_vorx.dir/loader.cpp.o.d"
  "/root/repo/src/vorx/multicast.cpp" "src/vorx/CMakeFiles/hpcvorx_vorx.dir/multicast.cpp.o" "gcc" "src/vorx/CMakeFiles/hpcvorx_vorx.dir/multicast.cpp.o.d"
  "/root/repo/src/vorx/multihost.cpp" "src/vorx/CMakeFiles/hpcvorx_vorx.dir/multihost.cpp.o" "gcc" "src/vorx/CMakeFiles/hpcvorx_vorx.dir/multihost.cpp.o.d"
  "/root/repo/src/vorx/node.cpp" "src/vorx/CMakeFiles/hpcvorx_vorx.dir/node.cpp.o" "gcc" "src/vorx/CMakeFiles/hpcvorx_vorx.dir/node.cpp.o.d"
  "/root/repo/src/vorx/object_manager.cpp" "src/vorx/CMakeFiles/hpcvorx_vorx.dir/object_manager.cpp.o" "gcc" "src/vorx/CMakeFiles/hpcvorx_vorx.dir/object_manager.cpp.o.d"
  "/root/repo/src/vorx/process.cpp" "src/vorx/CMakeFiles/hpcvorx_vorx.dir/process.cpp.o" "gcc" "src/vorx/CMakeFiles/hpcvorx_vorx.dir/process.cpp.o.d"
  "/root/repo/src/vorx/protocols/sliding_window.cpp" "src/vorx/CMakeFiles/hpcvorx_vorx.dir/protocols/sliding_window.cpp.o" "gcc" "src/vorx/CMakeFiles/hpcvorx_vorx.dir/protocols/sliding_window.cpp.o.d"
  "/root/repo/src/vorx/protocols/snet_recovery.cpp" "src/vorx/CMakeFiles/hpcvorx_vorx.dir/protocols/snet_recovery.cpp.o" "gcc" "src/vorx/CMakeFiles/hpcvorx_vorx.dir/protocols/snet_recovery.cpp.o.d"
  "/root/repo/src/vorx/stub.cpp" "src/vorx/CMakeFiles/hpcvorx_vorx.dir/stub.cpp.o" "gcc" "src/vorx/CMakeFiles/hpcvorx_vorx.dir/stub.cpp.o.d"
  "/root/repo/src/vorx/system.cpp" "src/vorx/CMakeFiles/hpcvorx_vorx.dir/system.cpp.o" "gcc" "src/vorx/CMakeFiles/hpcvorx_vorx.dir/system.cpp.o.d"
  "/root/repo/src/vorx/udco.cpp" "src/vorx/CMakeFiles/hpcvorx_vorx.dir/udco.cpp.o" "gcc" "src/vorx/CMakeFiles/hpcvorx_vorx.dir/udco.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/hpcvorx_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hpcvorx_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
