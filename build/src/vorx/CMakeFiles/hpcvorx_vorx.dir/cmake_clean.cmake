file(REMOVE_RECURSE
  "CMakeFiles/hpcvorx_vorx.dir/allocation.cpp.o"
  "CMakeFiles/hpcvorx_vorx.dir/allocation.cpp.o.d"
  "CMakeFiles/hpcvorx_vorx.dir/channel.cpp.o"
  "CMakeFiles/hpcvorx_vorx.dir/channel.cpp.o.d"
  "CMakeFiles/hpcvorx_vorx.dir/kernel.cpp.o"
  "CMakeFiles/hpcvorx_vorx.dir/kernel.cpp.o.d"
  "CMakeFiles/hpcvorx_vorx.dir/loader.cpp.o"
  "CMakeFiles/hpcvorx_vorx.dir/loader.cpp.o.d"
  "CMakeFiles/hpcvorx_vorx.dir/multicast.cpp.o"
  "CMakeFiles/hpcvorx_vorx.dir/multicast.cpp.o.d"
  "CMakeFiles/hpcvorx_vorx.dir/multihost.cpp.o"
  "CMakeFiles/hpcvorx_vorx.dir/multihost.cpp.o.d"
  "CMakeFiles/hpcvorx_vorx.dir/node.cpp.o"
  "CMakeFiles/hpcvorx_vorx.dir/node.cpp.o.d"
  "CMakeFiles/hpcvorx_vorx.dir/object_manager.cpp.o"
  "CMakeFiles/hpcvorx_vorx.dir/object_manager.cpp.o.d"
  "CMakeFiles/hpcvorx_vorx.dir/process.cpp.o"
  "CMakeFiles/hpcvorx_vorx.dir/process.cpp.o.d"
  "CMakeFiles/hpcvorx_vorx.dir/protocols/sliding_window.cpp.o"
  "CMakeFiles/hpcvorx_vorx.dir/protocols/sliding_window.cpp.o.d"
  "CMakeFiles/hpcvorx_vorx.dir/protocols/snet_recovery.cpp.o"
  "CMakeFiles/hpcvorx_vorx.dir/protocols/snet_recovery.cpp.o.d"
  "CMakeFiles/hpcvorx_vorx.dir/stub.cpp.o"
  "CMakeFiles/hpcvorx_vorx.dir/stub.cpp.o.d"
  "CMakeFiles/hpcvorx_vorx.dir/system.cpp.o"
  "CMakeFiles/hpcvorx_vorx.dir/system.cpp.o.d"
  "CMakeFiles/hpcvorx_vorx.dir/udco.cpp.o"
  "CMakeFiles/hpcvorx_vorx.dir/udco.cpp.o.d"
  "libhpcvorx_vorx.a"
  "libhpcvorx_vorx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcvorx_vorx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
