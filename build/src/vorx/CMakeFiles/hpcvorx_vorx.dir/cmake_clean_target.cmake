file(REMOVE_RECURSE
  "libhpcvorx_vorx.a"
)
