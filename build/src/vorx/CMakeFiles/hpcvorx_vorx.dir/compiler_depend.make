# Empty compiler generated dependencies file for hpcvorx_vorx.
# This may be replaced when dependencies are built.
