
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hw_cluster_test.cpp" "tests/CMakeFiles/hw_tests.dir/hw_cluster_test.cpp.o" "gcc" "tests/CMakeFiles/hw_tests.dir/hw_cluster_test.cpp.o.d"
  "/root/repo/tests/hw_fabric_test.cpp" "tests/CMakeFiles/hw_tests.dir/hw_fabric_test.cpp.o" "gcc" "tests/CMakeFiles/hw_tests.dir/hw_fabric_test.cpp.o.d"
  "/root/repo/tests/hw_framebuffer_test.cpp" "tests/CMakeFiles/hw_tests.dir/hw_framebuffer_test.cpp.o" "gcc" "tests/CMakeFiles/hw_tests.dir/hw_framebuffer_test.cpp.o.d"
  "/root/repo/tests/hw_hypercube_test.cpp" "tests/CMakeFiles/hw_tests.dir/hw_hypercube_test.cpp.o" "gcc" "tests/CMakeFiles/hw_tests.dir/hw_hypercube_test.cpp.o.d"
  "/root/repo/tests/hw_link_test.cpp" "tests/CMakeFiles/hw_tests.dir/hw_link_test.cpp.o" "gcc" "tests/CMakeFiles/hw_tests.dir/hw_link_test.cpp.o.d"
  "/root/repo/tests/hw_snet_test.cpp" "tests/CMakeFiles/hw_tests.dir/hw_snet_test.cpp.o" "gcc" "tests/CMakeFiles/hw_tests.dir/hw_snet_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hpcvorx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hpcvorx_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/vorx/CMakeFiles/hpcvorx_vorx.dir/DependInfo.cmake"
  "/root/repo/build/src/tools/CMakeFiles/hpcvorx_tools.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/hpcvorx_apps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
