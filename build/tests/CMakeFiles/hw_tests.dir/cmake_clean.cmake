file(REMOVE_RECURSE
  "CMakeFiles/hw_tests.dir/hw_cluster_test.cpp.o"
  "CMakeFiles/hw_tests.dir/hw_cluster_test.cpp.o.d"
  "CMakeFiles/hw_tests.dir/hw_fabric_test.cpp.o"
  "CMakeFiles/hw_tests.dir/hw_fabric_test.cpp.o.d"
  "CMakeFiles/hw_tests.dir/hw_framebuffer_test.cpp.o"
  "CMakeFiles/hw_tests.dir/hw_framebuffer_test.cpp.o.d"
  "CMakeFiles/hw_tests.dir/hw_hypercube_test.cpp.o"
  "CMakeFiles/hw_tests.dir/hw_hypercube_test.cpp.o.d"
  "CMakeFiles/hw_tests.dir/hw_link_test.cpp.o"
  "CMakeFiles/hw_tests.dir/hw_link_test.cpp.o.d"
  "CMakeFiles/hw_tests.dir/hw_snet_test.cpp.o"
  "CMakeFiles/hw_tests.dir/hw_snet_test.cpp.o.d"
  "hw_tests"
  "hw_tests.pdb"
  "hw_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
