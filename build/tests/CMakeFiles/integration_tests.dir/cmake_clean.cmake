file(REMOVE_RECURSE
  "CMakeFiles/integration_tests.dir/calibration_test.cpp.o"
  "CMakeFiles/integration_tests.dir/calibration_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/protocol_property_test.cpp.o"
  "CMakeFiles/integration_tests.dir/protocol_property_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/scale_test.cpp.o"
  "CMakeFiles/integration_tests.dir/scale_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/stress_test.cpp.o"
  "CMakeFiles/integration_tests.dir/stress_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/system_integration_test.cpp.o"
  "CMakeFiles/integration_tests.dir/system_integration_test.cpp.o.d"
  "integration_tests"
  "integration_tests.pdb"
  "integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
