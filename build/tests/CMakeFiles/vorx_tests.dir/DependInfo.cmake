
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/vorx_allocation_test.cpp" "tests/CMakeFiles/vorx_tests.dir/vorx_allocation_test.cpp.o" "gcc" "tests/CMakeFiles/vorx_tests.dir/vorx_allocation_test.cpp.o.d"
  "/root/repo/tests/vorx_channel_test.cpp" "tests/CMakeFiles/vorx_tests.dir/vorx_channel_test.cpp.o" "gcc" "tests/CMakeFiles/vorx_tests.dir/vorx_channel_test.cpp.o.d"
  "/root/repo/tests/vorx_hw_multicast_test.cpp" "tests/CMakeFiles/vorx_tests.dir/vorx_hw_multicast_test.cpp.o" "gcc" "tests/CMakeFiles/vorx_tests.dir/vorx_hw_multicast_test.cpp.o.d"
  "/root/repo/tests/vorx_io_test.cpp" "tests/CMakeFiles/vorx_tests.dir/vorx_io_test.cpp.o" "gcc" "tests/CMakeFiles/vorx_tests.dir/vorx_io_test.cpp.o.d"
  "/root/repo/tests/vorx_multicast_test.cpp" "tests/CMakeFiles/vorx_tests.dir/vorx_multicast_test.cpp.o" "gcc" "tests/CMakeFiles/vorx_tests.dir/vorx_multicast_test.cpp.o.d"
  "/root/repo/tests/vorx_multihost_test.cpp" "tests/CMakeFiles/vorx_tests.dir/vorx_multihost_test.cpp.o" "gcc" "tests/CMakeFiles/vorx_tests.dir/vorx_multihost_test.cpp.o.d"
  "/root/repo/tests/vorx_om_test.cpp" "tests/CMakeFiles/vorx_tests.dir/vorx_om_test.cpp.o" "gcc" "tests/CMakeFiles/vorx_tests.dir/vorx_om_test.cpp.o.d"
  "/root/repo/tests/vorx_process_test.cpp" "tests/CMakeFiles/vorx_tests.dir/vorx_process_test.cpp.o" "gcc" "tests/CMakeFiles/vorx_tests.dir/vorx_process_test.cpp.o.d"
  "/root/repo/tests/vorx_snet_test.cpp" "tests/CMakeFiles/vorx_tests.dir/vorx_snet_test.cpp.o" "gcc" "tests/CMakeFiles/vorx_tests.dir/vorx_snet_test.cpp.o.d"
  "/root/repo/tests/vorx_stub_test.cpp" "tests/CMakeFiles/vorx_tests.dir/vorx_stub_test.cpp.o" "gcc" "tests/CMakeFiles/vorx_tests.dir/vorx_stub_test.cpp.o.d"
  "/root/repo/tests/vorx_udco_test.cpp" "tests/CMakeFiles/vorx_tests.dir/vorx_udco_test.cpp.o" "gcc" "tests/CMakeFiles/vorx_tests.dir/vorx_udco_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hpcvorx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hpcvorx_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/vorx/CMakeFiles/hpcvorx_vorx.dir/DependInfo.cmake"
  "/root/repo/build/src/tools/CMakeFiles/hpcvorx_tools.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/hpcvorx_apps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
