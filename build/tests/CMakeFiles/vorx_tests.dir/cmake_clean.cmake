file(REMOVE_RECURSE
  "CMakeFiles/vorx_tests.dir/vorx_allocation_test.cpp.o"
  "CMakeFiles/vorx_tests.dir/vorx_allocation_test.cpp.o.d"
  "CMakeFiles/vorx_tests.dir/vorx_channel_test.cpp.o"
  "CMakeFiles/vorx_tests.dir/vorx_channel_test.cpp.o.d"
  "CMakeFiles/vorx_tests.dir/vorx_hw_multicast_test.cpp.o"
  "CMakeFiles/vorx_tests.dir/vorx_hw_multicast_test.cpp.o.d"
  "CMakeFiles/vorx_tests.dir/vorx_io_test.cpp.o"
  "CMakeFiles/vorx_tests.dir/vorx_io_test.cpp.o.d"
  "CMakeFiles/vorx_tests.dir/vorx_multicast_test.cpp.o"
  "CMakeFiles/vorx_tests.dir/vorx_multicast_test.cpp.o.d"
  "CMakeFiles/vorx_tests.dir/vorx_multihost_test.cpp.o"
  "CMakeFiles/vorx_tests.dir/vorx_multihost_test.cpp.o.d"
  "CMakeFiles/vorx_tests.dir/vorx_om_test.cpp.o"
  "CMakeFiles/vorx_tests.dir/vorx_om_test.cpp.o.d"
  "CMakeFiles/vorx_tests.dir/vorx_process_test.cpp.o"
  "CMakeFiles/vorx_tests.dir/vorx_process_test.cpp.o.d"
  "CMakeFiles/vorx_tests.dir/vorx_snet_test.cpp.o"
  "CMakeFiles/vorx_tests.dir/vorx_snet_test.cpp.o.d"
  "CMakeFiles/vorx_tests.dir/vorx_stub_test.cpp.o"
  "CMakeFiles/vorx_tests.dir/vorx_stub_test.cpp.o.d"
  "CMakeFiles/vorx_tests.dir/vorx_udco_test.cpp.o"
  "CMakeFiles/vorx_tests.dir/vorx_udco_test.cpp.o.d"
  "vorx_tests"
  "vorx_tests.pdb"
  "vorx_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vorx_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
