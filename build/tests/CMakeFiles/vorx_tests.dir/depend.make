# Empty dependencies file for vorx_tests.
# This may be replaced when dependencies are built.
