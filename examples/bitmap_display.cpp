// The §4.1 real-time display scenario: a processing node refreshes a
// remote workstation's 900x900 monochrome frame buffer, with all flow
// control left to the HPC hardware.
//
//   ./build/examples/bitmap_display [frames]
#include <cstdio>
#include <cstdlib>

#include "apps/bitmap_app.hpp"

using namespace hpcvorx;

int main(int argc, char** argv) {
  const int frames = argc > 1 ? std::atoi(argv[1]) : 4;

  for (const bool channels : {false, true}) {
    sim::Simulator sim;
    vorx::System sys(sim, vorx::SystemConfig{});
    apps::BitmapConfig cfg;
    cfg.frames = frames;
    cfg.use_channels = channels;
    cfg.carry_pixels = frames <= 8;  // checksum the pixels on short runs
    const apps::BitmapResult res = apps::run_bitmap(sim, sys, cfg);

    std::printf("%s:\n", channels ? "stop-and-wait channels"
                                  : "raw streaming (hardware flow control)");
    std::printf("  %d frames of 900x900 bi-level pixels (%.1f kB each)\n",
                frames, 900.0 * 900 / 8 / 1e3);
    std::printf("  bandwidth  %.2f Mbyte/s   refresh  %.1f frames/s   %s\n\n",
                res.mbytes_per_sec, res.frames_per_sec,
                res.checksum_ok ? "pixels verified" : "PIXELS CORRUPT");
  }
  std::printf(
      "Paper: 3.2 Mbyte/s raw — enough for 30 refreshes/s — while channels\n"
      "top out near their 1 Mbyte/s stop-and-wait ceiling.\n");
  return 0;
}
