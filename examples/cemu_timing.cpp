// A CEMU-style distributed circuit simulation (§4.1/§5): partition a
// register-bounded netlist across the node pool, exchange boundary
// flip-flop values each clock cycle, and compare communication protocols.
//
//   ./build/examples/cemu_timing [blocks] [cycles]
#include <cstdio>
#include <cstdlib>

#include "apps/cemu_app.hpp"

using namespace hpcvorx;

int main(int argc, char** argv) {
  const int blocks = argc > 1 ? std::atoi(argv[1]) : 4;
  const int cycles = argc > 2 ? std::atoi(argv[2]) : 250;

  std::printf(
      "gate-level simulation of a %d-block register-bounded circuit\n"
      "(40 gates/block, 8 flip-flops/block), %d clock cycles\n\n",
      blocks, cycles);

  for (const auto& [label, transport, window] :
       {std::tuple{"stop-and-wait channels", apps::CemuTransport::kChannels, 0},
        std::tuple{"sliding window, k=8", apps::CemuTransport::kSlidingWindow,
                   8}}) {
    sim::Simulator sim;
    vorx::SystemConfig scfg;
    scfg.nodes = blocks;
    vorx::System sys(sim, scfg);
    apps::CemuConfig cfg;
    cfg.blocks = blocks;
    cfg.cycles = cycles;
    cfg.transport = transport;
    cfg.window = window;
    const apps::CemuResult res = apps::run_cemu(sim, sys, cfg);
    std::printf("%-24s %8.0f circuit-cycles/s   %llu boundary msgs   %s\n",
                label, res.cycles_per_sec,
                static_cast<unsigned long long>(res.boundary_messages),
                res.matches_serial ? "trace verified" : "TRACE MISMATCH");
  }
  std::printf(
      "\nThe CEMU lesson (§4.1): for fine-grained per-cycle traffic, a\n"
      "window lets fast blocks run ahead instead of stalling on every\n"
      "stop-and-wait acknowledgement.\n");
  return 0;
}
