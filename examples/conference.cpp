// A Rapport-style multimedia conference (§1: "applications such as
// multimedia conferencing between workstations, with real-time video and
// high-fidelity audio transmission between conferees").
//
// Three workstations exchange audio (160-byte frames every 20 ms) and
// video tiles (8 kB per tile, 10 tiles/s to each peer) over channels while
// a compute application loads the node pool — demonstrating that the
// local-area multicomputer carries interactive traffic and batch work on
// one interconnect.
//
//   ./build/examples/conference [seconds] [--shards N] [--trace DIR]
//                               [--topo cube|fattree] [--routing ecube|adaptive]
//
// --shards N runs the machine on the conservative-lookahead shard runtime
// (DESIGN.md §12) with one worker thread per shard; the reported latencies
// are identical at every N because sharding changes wall-clock execution,
// never virtual time.
//
// --topo / --routing pick the interconnect shape and forwarding policy
// (DESIGN.md §15): the same conference runs over the incomplete hypercube
// or the two-level fat tree, under deterministic or congestion-aware
// adaptive routing, so the media latencies can be compared across fabrics.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <cstring>

#include "hw/topology.hpp"
#include "tools/trace_export.hpp"
#include "vorx/node.hpp"
#include "vorx/system.hpp"

using namespace hpcvorx;
using vorx::Channel;
using vorx::ChannelMsg;
using vorx::Subprocess;

namespace {

// Media frames carry their send time in the first 8 payload bytes.
hw::Payload stamp(sim::SimTime now, std::size_t bytes) {
  std::vector<std::byte> data(bytes);
  std::memcpy(data.data(), &now, sizeof now);
  return hw::make_payload(std::move(data));
}

sim::SimTime sent_time(const ChannelMsg& m) {
  sim::SimTime t = 0;
  std::memcpy(&t, m.data->data(), sizeof t);
  return t;
}

struct Stats {
  std::vector<sim::Duration> audio_latency;
  std::vector<sim::Duration> video_latency;
};

// One conferee: sends media to both peers, receives from both.
sim::Task<void> conferee(Subprocess& sp, int me, int seconds,
                         std::shared_ptr<Stats> stats) {
  std::vector<Channel*> in;   // from each peer
  std::vector<Channel*> out;  // to each peer
  // Open the directed media channels in one global (sorted) order so the
  // blocking rendezvous cannot deadlock across conferees.
  for (int src = 0; src < 3; ++src) {
    for (int dst = 0; dst < 3; ++dst) {
      if (src == dst || (src != me && dst != me)) continue;
      const std::string name =
          "m" + std::to_string(src) + "to" + std::to_string(dst);
      Channel* ch = co_await sp.open(name);
      (src == me ? out : in).push_back(ch);
    }
  }

  // Receiver subprocess: timestamped latency per media frame.
  sp.process().spawn(
      [in, stats, seconds](Subprocess& rsp) -> sim::Task<void> {
        const int audio_per_peer = seconds * 50;
        const int video_per_peer = seconds * 10;
        int remaining = 2 * (audio_per_peer + video_per_peer);
        std::vector<Channel*> chans = in;
        while (remaining-- > 0) {
          auto [ch, m] = co_await rsp.read_any(chans);
          const sim::Duration lat =
              rsp.node().simulator().now() - sent_time(m);
          if (m.bytes <= 160) {
            stats->audio_latency.push_back(lat);
          } else {
            stats->video_latency.push_back(lat);
          }
        }
      },
      sim::prio::kUserDefault + 50, "media-rx");

  // Sender: audio every 20 ms, a video tile every 100 ms, to both peers.
  const int ticks = seconds * 50;  // 20 ms periods
  for (int t = 0; t < ticks; ++t) {
    co_await sp.sleep(sim::msec(20));
    for (Channel* ch : out) {
      co_await sp.write(*ch, 160, stamp(sp.node().simulator().now(), 160));
    }
    if (t % 5 == 4) {
      // 8 kB video tile, fragmented into HPC-sized channel messages.
      for (Channel* ch : out) {
        for (int frag = 0; frag < 8; ++frag) {
          co_await sp.write(*ch, 1024,
                            stamp(sp.node().simulator().now(), 1024));
        }
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  int seconds = 2;
  int shards = 0;  // 0 = the plain single-simulator engine
  std::string trace_dir;
  vorx::SystemConfig cfg;
  cfg.nodes = 8;
  cfg.hosts = 3;  // the conferees' workstations
  for (int i = 1; i < argc; ++i) {
    try {
      if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
        trace_dir = argv[++i];
        continue;
      } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
        shards = std::atoi(argv[++i]);
        continue;
      } else if (std::strcmp(argv[i], "--topo") == 0 && i + 1 < argc) {
        cfg.fabric.topo = hw::parse_topology(argv[++i]);
        continue;
      } else if (std::strcmp(argv[i], "--routing") == 0 && i + 1 < argc) {
        cfg.fabric.routing = hw::parse_routing(argv[++i]);
        continue;
      } else if (argv[i][0] != '-' && std::atoi(argv[i]) > 0) {
        seconds = std::atoi(argv[i]);
        continue;
      }
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "conference: %s\n", e.what());
      return 2;
    }
    std::fprintf(stderr,
                 "usage: %s [seconds] [--shards N] [--trace DIR]\n"
                 "          [--topo cube|fattree] [--routing ecube|adaptive]\n",
                 argv[0]);
    return 2;
  }
  // --trace: record the waveform + counter timeline and export a Perfetto
  // trace of the whole conference (interactive media against batch load is
  // the most interesting timeline the examples produce).
  cfg.record_intervals = !trace_dir.empty();
  cfg.record_counters = !trace_dir.empty();

  // --shards N: run the machine on the conservative-lookahead shard
  // runtime (DESIGN.md §12), one worker thread per shard.  The 11 stations
  // span 3 clusters, so up to 3 shards; N=1 is the sequential engine byte
  // for byte, and every N produces the same virtual-time results.
  if (shards < 0 || shards > 3) {
    std::fprintf(stderr, "conference: --shards must be 1..3 (3 clusters)\n");
    return 2;
  }
  std::unique_ptr<sim::ShardRuntime> rt;
  std::unique_ptr<sim::Simulator> seq_sim;
  std::unique_ptr<vorx::System> sys;
  if (shards > 0) {
    rt = std::make_unique<sim::ShardRuntime>(shards);
    sys = std::make_unique<vorx::System>(*rt, cfg);
  } else {
    seq_sim = std::make_unique<sim::Simulator>();
    sys = std::make_unique<vorx::System>(*seq_sim, cfg);
  }

  auto stats = std::make_shared<Stats>();
  for (int ws = 0; ws < 3; ++ws) {
    sys->host(ws).spawn_process(
        "conferee" + std::to_string(ws),
        [ws, seconds, stats](Subprocess& sp) -> sim::Task<void> {
          co_await conferee(sp, ws, seconds, stats);
        });
  }
  // Background load: node pool runs a compute+exchange application.
  for (int n = 0; n < 8; ++n) {
    sys->node(n).spawn_process(
        "batch" + std::to_string(n), [n, seconds](Subprocess& sp)
                                         -> sim::Task<void> {
          Channel* ch = co_await sp.open("batch" + std::to_string(n / 2));
          for (int i = 0; i < seconds * 20; ++i) {
            co_await sp.compute(sim::msec(20));
            if (n % 2 == 0) {
              co_await sp.write(*ch, 1024);
            } else {
              (void)co_await sp.read(*ch);
            }
          }
        });
  }

  if (rt) {
    rt->run();
    std::printf("ran on %d shards (%llu sync rounds, lookahead %s)\n",
                shards, static_cast<unsigned long long>(rt->rounds()),
                sim::format_duration(rt->lookahead()).c_str());
  } else {
    seq_sim->run();
  }

  auto report = [](const char* what, std::vector<sim::Duration>& v) {
    if (v.empty()) {
      std::printf("%s: none\n", what);
      return;
    }
    std::sort(v.begin(), v.end());
    const auto p50 = v[v.size() / 2];
    const auto p99 = v[std::min(v.size() - 1, v.size() * 99 / 100)];
    std::printf("%s: %zu frames, median latency %s, p99 %s\n", what, v.size(),
                sim::format_duration(p50).c_str(),
                sim::format_duration(p99).c_str());
  };
  std::printf("conference over %d workstations + 8 loaded nodes, %ds:\n",
              3, seconds);
  report("audio (160 B / 20 ms)", stats->audio_latency);
  report("video (8 kB tiles)   ", stats->video_latency);

  if (!trace_dir.empty()) {
    const std::string path = trace_dir + "/conference.trace.json";
    if (!hpcvorx::tools::TraceExporter::from_system(*sys).write_file(path)) {
      std::fprintf(stderr, "conference: cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("trace written to %s\n", path.c_str());
  }
  return 0;
}
