// A tour of the §6 program-development tools on a deliberately imbalanced
// pipeline application:
//   * prof       — where does the time go inside one process?
//   * oscilloscope — how well are the processors utilized / balanced?
//   * vdb        — what is every subprocess doing right now?
//   * cdb        — which channel is the bottleneck / is anything deadlocked?
//
// and of the offline trace replay (§6.2's record-now-display-later, over a
// CI-archived Perfetto trace instead of a live System):
//
//   ./build/examples/devtools_tour [--trace DIR]
//   ./build/examples/devtools_tour --replay FILE [--cols N]
//   ./build/examples/devtools_tour --replay-diff FILE_A FILE_B [--cols N]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "tools/cdb.hpp"
#include "tools/oscilloscope.hpp"
#include "tools/prof.hpp"
#include "tools/trace_export.hpp"
#include "tools/trace_replay.hpp"
#include "tools/vdb.hpp"
#include "vorx/node.hpp"
#include "vorx/system.hpp"

using namespace hpcvorx;
using vorx::Channel;
using vorx::Subprocess;

namespace {

// --replay: re-render a saved *.trace.json and exit.  No simulation runs;
// this is how an archived CI artifact is inspected offline.
int replay(const std::string& path, int cols) {
  const tools::TraceReplay rep = tools::TraceReplay::load(path);
  if (!rep.ok()) {
    std::fprintf(stderr, "devtools_tour: cannot replay %s\n", path.c_str());
    return 1;
  }
  std::printf("=== replay of %s: %d stations ===\n%s", path.c_str(),
              rep.stations(), rep.render(0, rep.end_time(), cols).c_str());
  std::printf("legend: U user, S system, i idle-input, o idle-output, "
              "m idle-mixed, . idle-other\n");
  std::printf("\n=== counter tracks ===\n%s", rep.counter_summary().c_str());
  return 0;
}

// --replay-diff: load two traces of the same workload (e.g. the sw- and
// hw-multicast variants of one bench) and render them side by side — both
// station timelines, then the counter tracks aligned by (track, counter).
int replay_diff(const std::string& path_a, const std::string& path_b,
                int cols) {
  const tools::TraceReplay a = tools::TraceReplay::load(path_a);
  const tools::TraceReplay b = tools::TraceReplay::load(path_b);
  if (!a.ok() || !b.ok()) {
    std::fprintf(stderr, "devtools_tour: cannot replay %s\n",
                 (a.ok() ? path_b : path_a).c_str());
    return 1;
  }
  // A shared time axis, so the two waveforms line up column for column.
  const sim::SimTime end = std::max(a.end_time(), b.end_time());
  std::printf("=== A: %s (%d stations) ===\n%s", path_a.c_str(), a.stations(),
              a.render(0, end, cols).c_str());
  std::printf("=== B: %s (%d stations) ===\n%s", path_b.c_str(), b.stations(),
              b.render(0, end, cols).c_str());
  std::printf("legend: U user, S system, i idle-input, o idle-output, "
              "m idle-mixed, . idle-other\n");
  std::printf("\n=== counter diff ===\n%s",
              tools::TraceReplay::counter_diff(a, b, "A", "B").c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string replay_path;
  std::string diff_a, diff_b;
  std::string trace_dir;
  int cols = 64;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--replay") == 0 && i + 1 < argc) {
      replay_path = argv[++i];
    } else if (std::strcmp(argv[i], "--replay-diff") == 0 && i + 2 < argc) {
      diff_a = argv[++i];
      diff_b = argv[++i];
    } else if (std::strcmp(argv[i], "--cols") == 0 && i + 1 < argc) {
      cols = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace DIR] [--replay FILE [--cols N]] "
                   "[--replay-diff FILE_A FILE_B [--cols N]]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!diff_a.empty()) return replay_diff(diff_a, diff_b, cols);
  if (!replay_path.empty()) return replay(replay_path, cols);

  sim::Simulator sim;
  vorx::SystemConfig cfg;
  cfg.nodes = 4;
  cfg.record_intervals = true;  // the oscilloscope needs the recording
  cfg.record_counters = !trace_dir.empty();  // --trace wants counter tracks
  vorx::System sys(sim, cfg);
  tools::Profiler prof;

  // A three-stage pipeline with a deliberately slow middle stage: the
  // classic load-balance problem §6.2 says the oscilloscope was built for.
  sys.node(0).spawn_process("source", [&](Subprocess& sp) -> sim::Task<void> {
    Channel* out = co_await sp.open("stage1");
    for (int i = 0; i < 40; ++i) {
      co_await prof.run(sp, "generate", sim::usec(300));
      co_await sp.write(*out, 512);
    }
  });
  sys.node(1).spawn_process("transform", [&](Subprocess& sp)
                                             -> sim::Task<void> {
    Channel* in = co_await sp.open("stage1");
    Channel* out = co_await sp.open("stage2");
    for (int i = 0; i < 40; ++i) {
      (void)co_await sp.read(*in);
      co_await prof.run(sp, "transform_hot_loop", sim::msec(2));  // the hog
      co_await prof.run(sp, "bookkeeping", sim::usec(100));
      co_await sp.write(*out, 512);
    }
  });
  sys.node(2).spawn_process("sink", [&](Subprocess& sp) -> sim::Task<void> {
    Channel* in = co_await sp.open("stage2");
    for (int i = 0; i < 40; ++i) {
      (void)co_await sp.read(*in);
      co_await prof.run(sp, "commit", sim::usec(200));
    }
  });
  // And one process that will sit blocked forever — for vdb/cdb to find.
  sys.node(3).spawn_process("stuck", [&](Subprocess& sp) -> sim::Task<void> {
    Channel* never = co_await sp.open("nobody-opens-this");
    (void)co_await sp.read(*never);
  });

  sim.run();
  sys.finalize_accounting();

  std::printf("=== prof: flat profile of the pipeline ===\n%s\n",
              prof.render().c_str());

  tools::Oscilloscope osc(sys);
  std::printf("=== software oscilloscope: whole run ===\n%s\n",
              osc.render(0, sim.now(), 64).c_str());
  std::printf("=== oscilloscope: zoom into the steady state ===\n%s\n",
              osc.render(sim.now() / 4, sim.now() / 2, 64).c_str());
  for (int s = 0; s < 3; ++s) {
    const auto u = osc.utilization(s, 0, sim.now());
    std::printf("node %d utilization: user %4.0f%%  system %4.0f%%  "
                "idle-in %4.0f%%  idle-out %4.0f%%\n",
                s, 100 * u.user, 100 * u.system, 100 * u.idle_input,
                100 * u.idle_output);
  }

  std::printf("\n=== vdb: blocked threads ===\n%s",
              tools::Vdb::render(tools::Vdb(sys).blocked()).c_str());

  tools::Cdb cdb(sys);
  std::printf("\n=== cdb: all channels ===\n%s",
              tools::Cdb::render(cdb.snapshot()).c_str());
  const auto dl = cdb.find_deadlock();
  std::printf("\ncdb deadlock scan: %s\n",
              dl.found ? "CYCLE FOUND" : "no wait-for cycle (the stuck "
                                         "process waits on a half-open "
                                         "channel, not a cycle)");

  if (!trace_dir.empty()) {
    const std::string path = trace_dir + "/devtools_tour.trace.json";
    if (tools::TraceExporter::from_system(sys).write_file(path)) {
      std::printf("\ntrace written to %s (replay with --replay)\n",
                  path.c_str());
    } else {
      std::fprintf(stderr, "devtools_tour: cannot write %s\n", path.c_str());
      return 1;
    }
  }
  return 0;
}
