// The §4.2 image-processing scenario: a 2-D FFT distributed over a pool of
// processing nodes, run with both transpose-exchange strategies.
//
//   ./build/examples/fft2d_imaging [n] [p]
#include <cstdio>
#include <cstdlib>

#include "apps/fft2d_app.hpp"

using namespace hpcvorx;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 64;
  const int p = argc > 2 ? std::atoi(argv[2]) : 8;
  std::printf("2-D FFT of a %dx%d image on %d processing nodes\n\n", n, n, p);

  for (const bool multicast : {false, true}) {
    sim::Simulator sim;
    vorx::SystemConfig scfg;
    scfg.nodes = p;
    vorx::System sys(sim, scfg);

    apps::Fft2dConfig cfg;
    cfg.n = n;
    cfg.p = p;
    cfg.use_multicast = multicast;
    const apps::Fft2dResult res = apps::run_fft2d(sim, sys, cfg);

    std::printf("%s exchange:\n", multicast ? "multicast   " : "personalized");
    std::printf("  total time        %s\n",
                sim::format_duration(res.elapsed).c_str());
    std::printf("  exchange time     %s\n",
                sim::format_duration(res.exchange_elapsed).c_str());
    std::printf("  data read         %.1f kB (needed %.1f kB)\n",
                res.bytes_received / 1e3, res.bytes_needed / 1e3);
    std::printf("  matches serial    %s  (checksum %016llx)\n\n",
                res.matches_serial ? "yes" : "NO",
                static_cast<unsigned long long>(res.result_checksum));
  }
  std::printf(
      "Lesson (§4.2): multicast forces every node to read the whole matrix;\n"
      "sending each receiver only its columns wins as soon as P grows.\n");
  return 0;
}
