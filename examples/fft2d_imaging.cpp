// The §4.2 image-processing scenario: a 2-D FFT distributed over a pool of
// processing nodes, run with both transpose-exchange strategies.
//
//   ./build/examples/fft2d_imaging [n] [p] [--fft=naive|blocked]
//
// --fft picks the kernel the simulated nodes execute: the textbook
// radix-2 ablation (naive) or the split-radix cache-blocked default
// (blocked).  Virtual-time results are identical either way — the
// modelled 68882 cost depends only on n — but the wall-clock of the
// harness and the result checksum (different rounding) differ.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "apps/fft2d_app.hpp"

using namespace hpcvorx;

int main(int argc, char** argv) {
  int n = 64;
  int p = 8;
  apps::FftKernel kernel = apps::FftKernel::kBlocked;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--fft=naive") == 0) {
      kernel = apps::FftKernel::kNaive;
    } else if (std::strcmp(arg, "--fft=blocked") == 0) {
      kernel = apps::FftKernel::kBlocked;
    } else if (std::strncmp(arg, "--", 2) == 0) {
      std::fprintf(stderr,
                   "unknown option %s\nusage: %s [n] [p] "
                   "[--fft=naive|blocked]\n",
                   arg, argv[0]);
      return 1;
    } else if (positional == 0) {
      n = std::atoi(arg);
      ++positional;
    } else if (positional == 1) {
      p = std::atoi(arg);
      ++positional;
    } else {
      std::fprintf(stderr, "too many arguments\nusage: %s [n] [p] "
                           "[--fft=naive|blocked]\n",
                   argv[0]);
      return 1;
    }
  }
  std::printf("2-D FFT of a %dx%d image on %d processing nodes (%s kernel)\n\n",
              n, n, p,
              kernel == apps::FftKernel::kNaive ? "naive" : "blocked");

  for (const bool multicast : {false, true}) {
    sim::Simulator sim;
    vorx::SystemConfig scfg;
    scfg.nodes = p;
    vorx::System sys(sim, scfg);

    apps::Fft2dConfig cfg;
    cfg.n = n;
    cfg.p = p;
    cfg.use_multicast = multicast;
    cfg.kernel = kernel;
    const apps::Fft2dResult res = apps::run_fft2d(sim, sys, cfg);

    std::printf("%s exchange:\n", multicast ? "multicast   " : "personalized");
    std::printf("  total time        %s\n",
                sim::format_duration(res.elapsed).c_str());
    std::printf("  exchange time     %s\n",
                sim::format_duration(res.exchange_elapsed).c_str());
    std::printf("  data read         %.1f kB (needed %.1f kB)\n",
                res.bytes_received / 1e3, res.bytes_needed / 1e3);
    std::printf("  matches serial    %s  (checksum %016llx)\n\n",
                res.matches_serial ? "yes" : "NO",
                static_cast<unsigned long long>(res.result_checksum));
  }
  std::printf(
      "Lesson (§4.2): multicast forces every node to read the whole matrix;\n"
      "sending each receiver only its columns wins as soon as P grows.\n");
  return 0;
}
