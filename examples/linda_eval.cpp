// A Linda tuple-space application (§4.1 mentions the Linda port as one of
// the systems that pushed beyond channels): master/worker evaluation of a
// bag of tasks, here numerically integrating f(x)=4/(1+x^2) to estimate pi.
//
//   ./build/examples/linda_eval [workers] [tasks]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "apps/linda.hpp"
#include "vorx/system.hpp"
#include "vorx/node.hpp"

using namespace hpcvorx;
using apps::linda::any;
using apps::linda::Client;
using apps::linda::eq;
using apps::linda::Pattern;
using apps::linda::Tuple;

namespace {
constexpr std::int64_t kScale = 1'000'000'000;  // fixed-point results
constexpr std::int64_t kTaskTag = 1;
constexpr std::int64_t kResultTag = 2;
}  // namespace

int main(int argc, char** argv) {
  const int workers = argc > 1 ? std::atoi(argv[1]) : 4;
  const int tasks = argc > 2 ? std::atoi(argv[2]) : 32;

  sim::Simulator sim;
  vorx::SystemConfig scfg;
  scfg.nodes = workers + 2;
  vorx::System sys(sim, scfg);

  sys.node(0).spawn_process("linda-server", apps::linda::make_server("eval"));

  double pi = 0;
  sys.node(1).spawn_process("master", [&](vorx::Subprocess& sp)
                                          -> sim::Task<void> {
    Client c = co_await Client::connect(sp, "eval");
    for (std::int64_t t = 0; t < tasks; ++t) {
      Tuple task{kTaskTag, t};
      co_await c.out(sp, task);
    }
    Pattern result{{eq(kResultTag), any(), any()}};
    std::int64_t total = 0;
    for (int t = 0; t < tasks; ++t) {
      Tuple r = co_await c.in(sp, result);
      total += r[2];
    }
    pi = static_cast<double>(total) / kScale;
  });

  for (int w = 0; w < workers; ++w) {
    sys.node(2 + w).spawn_process(
        "worker" + std::to_string(w),
        [&, tasks, workers, w](vorx::Subprocess& sp) -> sim::Task<void> {
          Client c = co_await Client::connect(sp, "eval");
          Pattern task_pat{{eq(kTaskTag), any()}};
          // Workers drain the bag until their fair share is done (a real
          // Linda worker would poison-pill; keep the shutdown simple).
          const int share = tasks / workers + (w < tasks % workers ? 1 : 0);
          for (int i = 0; i < share; ++i) {
            Tuple t = co_await c.in(sp, task_pat);
            // Midpoint rule on slice t[1] of [0,1).
            const double x = (static_cast<double>(t[1]) + 0.5) / tasks;
            const double fx = 4.0 / (1.0 + x * x) / tasks;
            co_await sp.compute(sim::msec(2));  // the "work"
            Tuple r{kResultTag, t[1],
                    static_cast<std::int64_t>(fx * kScale)};
            co_await c.out(sp, r);
          }
        });
  }

  sim.run();
  std::printf("pi ~= %.6f (%d tasks over %d workers, %s virtual time)\n", pi,
              tasks, workers, sim::format_duration(sim.now()).c_str());
  std::printf("error = %.2e\n", std::fabs(pi - 3.14159265358979));
  return 0;
}
