// Quickstart: bring up a small HPC/VORX machine, open a channel between
// two processing nodes, exchange messages, and look at what happened.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "tools/cdb.hpp"
#include "vorx/node.hpp"
#include "vorx/system.hpp"

using namespace hpcvorx;
using vorx::Channel;
using vorx::ChannelMsg;
using vorx::Subprocess;

int main() {
  // A virtual machine: 4 processing nodes + 1 host workstation on one
  // HPC cluster, with the paper-calibrated cost model.
  sim::Simulator sim;
  vorx::System sys(sim, vorx::SystemConfig{});

  std::printf("HPC/VORX quickstart: %d nodes + %d workstation, %d cluster\n\n",
              sys.num_nodes(), sys.num_hosts(), sys.fabric().num_clusters());

  // A "ping" process on node 0.  Application code is a coroutine: every
  // open/read/write/compute consumes simulated 68020 time.
  sys.node(0).spawn_process("ping", [&](Subprocess& sp) -> sim::Task<void> {
    // Rendezvous by name: both sides open "demo" (§4 of the paper).
    Channel* ch = co_await sp.open("demo");
    std::printf("[%-9s] ping: channel open to station %d\n",
                sim::format_duration(sim.now()).c_str(), ch->peer());
    for (int i = 0; i < 3; ++i) {
      const sim::SimTime t0 = sim.now();
      co_await sp.write(*ch, 64);          // stop-and-wait write
      ChannelMsg echo = co_await sp.read(*ch);
      std::printf("[%-9s] ping: round %d took %s (64-byte messages)\n",
                  sim::format_duration(sim.now()).c_str(), i,
                  sim::format_duration(sim.now() - t0).c_str());
      (void)echo;
    }
  });

  // The matching "pong" process on node 2.
  sys.node(2).spawn_process("pong", [&](Subprocess& sp) -> sim::Task<void> {
    Channel* ch = co_await sp.open("demo");
    for (int i = 0; i < 3; ++i) {
      ChannelMsg m = co_await sp.read(*ch);
      co_await sp.compute(sim::usec(50));  // pretend to think about it
      co_await sp.write(*ch, m.bytes);
    }
  });

  sim.run();  // drive the whole machine to quiescence

  // Afterwards the cdb communications debugger can inspect channel state.
  std::printf("\ncdb snapshot after the run:\n%s",
              tools::Cdb::render(tools::Cdb(sys).snapshot()).c_str());
  std::printf("\nTotal virtual time: %s\n",
              sim::format_duration(sim.now()).c_str());
  return 0;
}
