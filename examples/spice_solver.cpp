// The §4.1 parallel-SPICE scenario: a distributed sparse solve whose halo
// exchanges are exactly the paper's 64-byte messages, over raw
// user-defined communications objects vs standard channels.
//
//   ./build/examples/spice_solver [ny] [p]
#include <cstdio>
#include <cstdlib>

#include "apps/spice_app.hpp"

using namespace hpcvorx;

int main(int argc, char** argv) {
  const int ny = argc > 1 ? std::atoi(argv[1]) : 64;
  const int p = argc > 2 ? std::atoi(argv[2]) : 4;
  std::printf(
      "Conjugate-gradient solve of an 8x%d grid conductance matrix on %d "
      "nodes\n(halo messages: 8 doubles = the paper's 64-byte SPICE "
      "messages)\n\n",
      ny, p);

  for (const bool channels : {false, true}) {
    sim::Simulator sim;
    vorx::SystemConfig scfg;
    scfg.nodes = p;
    vorx::System sys(sim, scfg);
    apps::SpiceConfig cfg;
    cfg.ny = ny;
    cfg.p = p;
    cfg.use_channels = channels;
    const apps::SpiceResult res = apps::run_spice(sim, sys, cfg);

    std::printf("%s:\n", channels ? "standard channels"
                                  : "raw user-defined objects");
    std::printf("  solve time  %s   iterations %d   residual %.2e\n",
                sim::format_duration(res.elapsed).c_str(), res.iterations,
                res.residual);
    std::printf("  halo messages %llu   matches serial CG: %s\n\n",
                static_cast<unsigned long long>(res.halo_messages),
                res.matches_serial ? "yes" : "NO");
  }
  std::printf(
      "Lesson (§4.1): with direct hardware access a 64-byte message costs\n"
      "~60 us one-way vs ~341 us through the channel protocol.\n");
  return 0;
}
