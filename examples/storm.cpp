// Production-traffic storm: the Rapport-shaped open-loop workload at
// machine scale, with fault injection.
//
//   ./build/examples/storm --users 100000 --shards 4
//       --faults link_flap --seed 7
//
// Drives vorx::WorkloadGen over a 256-node / 4-host machine (configurable
// with --nodes/--hosts): Poisson session arrivals on a diurnal curve,
// member churn, heavy-tailed talk spurts — while a sim::FaultPlan takes
// cables, switches, and host workstations down mid-run.  The printed
// summary is pure virtual time, so two runs with the same arguments are
// byte-identical, at any --shards value (the CI fault-matrix job diffs
// exactly this output; see DESIGN.md §14).
//
// Exits non-zero if any session is lost-but-unreported (the accounting
// invariant completed + failed == total must hold with lost == 0).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "sim/fault_plan.hpp"
#include "sim/shard_runtime.hpp"
#include "vorx/system.hpp"
#include "vorx/workload.hpp"

using namespace hpcvorx;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--users N] [--shards N] [--faults PLAN]\n"
               "          [--seed S] [--nodes N] [--hosts N] "
               "[--horizon-ms M]\n"
               "  --shards 0 (default) runs the sequential engine; N >= 1\n"
               "  runs the conservative-lookahead shard runtime.\n"
               "  PLAN: none | link_flap | cluster_restart | stub_crash\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  int users = 10'000;
  int shards = 0;
  int nodes = 256;
  int hosts = 4;
  long horizon_ms = 500;
  std::uint64_t seed = 1;
  std::string plan_name = "none";

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--users") == 0) {
      users = std::atoi(next("--users"));
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      shards = std::atoi(next("--shards"));
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      plan_name = next("--faults");
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = static_cast<std::uint64_t>(std::atoll(next("--seed")));
    } else if (std::strcmp(argv[i], "--nodes") == 0) {
      nodes = std::atoi(next("--nodes"));
    } else if (std::strcmp(argv[i], "--hosts") == 0) {
      hosts = std::atoi(next("--hosts"));
    } else if (std::strcmp(argv[i], "--horizon-ms") == 0) {
      horizon_ms = std::atol(next("--horizon-ms"));
    } else {
      return usage(argv[0]);
    }
  }
  if (users <= 0 || nodes < 1 || hosts < 1 || horizon_ms <= 0 ||
      shards < 0 || !sim::FaultPlan::known(plan_name)) {
    return usage(argv[0]);
  }

  vorx::SystemConfig scfg;
  scfg.nodes = nodes;
  scfg.hosts = hosts;
  // 4 stations per cluster keeps the cube dims within the 12-port budget
  // at the 256-1024-station scale this driver targets.
  scfg.stations_per_cluster = 4;
  // Lookahead window = inter-cluster cable latency.  50 us is the tuned
  // default from the bench_shard_scaling window sweep (EXPERIMENTS.md).
  // Long cables need buffers sized to the bandwidth-delay product: at
  // 50 us and ~0.8 us per header frame the window is ~64 frames — with
  // the default 2 slots every cube cable degenerates to stop-and-wait
  // (~20k frames/s) and the host-cluster convergecast collapses.
  scfg.fabric.cluster_link = scfg.fabric.link;
  scfg.fabric.cluster_link->latency = sim::usec(50);
  scfg.fabric.cluster_link->buffer_frames = 64;

  vorx::WorkloadConfig wcfg;
  wcfg.users = users;
  wcfg.horizon = sim::msec(horizon_ms);

  // Machines are built the same way on either engine; only the driver
  // differs.  --shards 1 is byte-identical to the sequential run (R6).
  std::unique_ptr<sim::Simulator> seq_sim;
  std::unique_ptr<sim::ShardRuntime> rt;
  std::unique_ptr<vorx::System> sys;
  if (shards == 0) {
    seq_sim = std::make_unique<sim::Simulator>();
    sys = std::make_unique<vorx::System>(*seq_sim, scfg);
  } else {
    rt = std::make_unique<sim::ShardRuntime>(shards);
    sys = std::make_unique<vorx::System>(*rt, scfg);
  }

  vorx::WorkloadGen gen(*sys, wcfg, seed);
  vorx::FaultInjector inj(*sys, &gen);
  const sim::FaultPlan plan = sim::FaultPlan::named(
      plan_name, gen.machine_shape(), seed, wcfg.horizon);
  inj.install(plan);

  std::printf("storm: users=%d nodes=%d hosts=%d horizon_ms=%ld seed=%llu\n",
              users, nodes, hosts, horizon_ms,
              static_cast<unsigned long long>(seed));
  std::printf("faults: plan=%s events=%zu link=%llu cluster=%llu host=%llu\n",
              plan_name.c_str(), plan.events().size(),
              static_cast<unsigned long long>(inj.link_faults()),
              static_cast<unsigned long long>(inj.cluster_restarts()),
              static_cast<unsigned long long>(inj.host_faults()));

  gen.run();
  const vorx::WorkloadReport r = gen.report();
  std::fputs(r.to_text().c_str(), stdout);

  if (!r.all_accounted()) {
    std::printf("workload: FAILED (lost=%llu, completed+failed=%llu of "
                "%llu)\n",
                static_cast<unsigned long long>(r.lost),
                static_cast<unsigned long long>(r.completed + r.failed_joins),
                static_cast<unsigned long long>(r.sessions_total));
    return 1;
  }
  std::printf("workload: OK\n");
  return 0;
}
