#!/usr/bin/env python3
"""Concatenate N bench artifacts into one per-metric trajectory CSV.

Usage: bench_trajectory.py --out TRAJECTORY.csv ARTIFACT.json [...]
       bench_trajectory.py --self-test

The CI bench-trajectory step compares the current run against the single
most recent main-branch artifact; this tool turns a *sequence* of
downloaded bench-results artifacts into an actual time series.  Pass the
artifacts oldest first (CI passes them in the order the runs happened);
each becomes one labelled point per metric in long-format CSV:

    metric,unit,run,label,measured
    engine.event_queue_post_pop_items_s,items/s,0,a1b2c3d,2.81e+07
    engine.event_queue_post_pop_items_s,items/s,1,e4f5a6b,2.94e+07
    ...

The label is the artifact's parent directory name (CI downloads each
run's artifact into a directory named after its SHA), falling back to the
file stem.  Long format loads directly into a spreadsheet pivot or a
one-liner plot, and appending the next run is a concatenation.

A metric absent from some artifacts simply has no row for those runs —
holes in the series are visible as missing points, never interpolated.
"""
import csv
import io
import json
import os
import sys


def fail(msg):
    print(f"bench_trajectory: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_rows(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "hpcvorx-bench-v1":
        fail(f"{path}: schema is {doc.get('schema')!r}, want 'hpcvorx-bench-v1'")
    rows = doc.get("rows")
    if not isinstance(rows, list):
        fail(f"{path}: 'rows' must be an array")
    return rows


def label_of(path):
    parent = os.path.basename(os.path.dirname(os.path.abspath(path)))
    if parent and parent not in (".", os.sep):
        return parent
    return os.path.splitext(os.path.basename(path))[0]


def trajectory(artifacts):
    """[(label, rows)] -> sorted long-format records, one per metric*run."""
    records = []
    for run, (label, rows) in enumerate(artifacts):
        for r in rows:
            records.append(
                (r["metric"], r.get("unit", ""), run, label, r["measured"])
            )
    # Grouped per metric, runs in artifact (chronological) order.
    records.sort(key=lambda t: (t[0], t[2]))
    return records


def write_csv(out, records):
    w = csv.writer(out, lineterminator="\n")
    w.writerow(["metric", "unit", "run", "label", "measured"])
    for metric, unit, run, label, measured in records:
        w.writerow([metric, unit, run, label, f"{measured:.6g}"])


def self_test():
    def doc(metrics):
        return [
            {"bench": "t", "metric": k, "unit": u, "measured": m}
            for k, (u, m) in metrics.items()
        ]

    arts = [
        ("sha-old", doc({"engine.rate": ("items/s", 100.0),
                         "retired.metric": ("us", 5.0)})),
        ("sha-mid", doc({"engine.rate": ("items/s", 110.0)})),
        ("sha-new", doc({"engine.rate": ("items/s", 120.0),
                         "brand.new": ("us", 1.0)})),
    ]
    records = trajectory(arts)
    rates = [r for r in records if r[0] == "engine.rate"]
    if [r[4] for r in rates] != [100.0, 110.0, 120.0]:
        fail(f"self-test: trajectory out of order: {rates}")
    if [r[3] for r in rates] != ["sha-old", "sha-mid", "sha-new"]:
        fail(f"self-test: labels lost: {rates}")
    # Holes stay holes: the retired metric has exactly one point, at run 0.
    retired = [r for r in records if r[0] == "retired.metric"]
    if len(retired) != 1 or retired[0][2] != 0:
        fail(f"self-test: hole was filled: {retired}")
    out = io.StringIO()
    write_csv(out, records)
    lines = out.getvalue().splitlines()
    if lines[0] != "metric,unit,run,label,measured" or len(lines) != 6:
        fail(f"self-test: bad csv shape: {lines}")
    print("bench_trajectory: self-test OK")
    return 0


def main(argv):
    args = argv[1:]
    if args == ["--self-test"]:
        return self_test()
    out_path = None
    paths = []
    while args:
        if args[0] == "--out" and len(args) >= 2:
            out_path = args[1]
            args = args[2:]
        elif args[0].startswith("-"):
            fail(f"unknown argument {args[0]!r}")
        else:
            paths.append(args[0])
            args = args[1:]
    if out_path is None or not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    artifacts = [(label_of(p), load_rows(p)) for p in paths]
    records = trajectory(artifacts)
    with open(out_path, "w", encoding="utf-8") as f:
        write_csv(f, records)
    n_metrics = len({r[0] for r in records})
    print(
        f"bench_trajectory: wrote {len(records)} points "
        f"({n_metrics} metrics x {len(paths)} runs) to {out_path}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
