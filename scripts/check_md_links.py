#!/usr/bin/env python3
"""Check intra-repo markdown links and file references.

Usage: check_md_links.py [ROOT]

For every *.md under ROOT (default: cwd; .git and build trees skipped):
  * [text](target) links: relative targets must exist (anchors and
    external http(s)/mailto targets are skipped — CI runs offline);
  * `path` code spans that look like repo paths (contain a '/' and one of
    the known top-level directories) must name an existing file or
    directory, so docs rot loudly when code moves.
"""
import os
import re
import sys

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
SPAN_RE = re.compile(r"`([A-Za-z0-9_./-]+)`")
TOP_DIRS = ("src/", "bench/", "tests/", "examples/", "scripts/", ".github/")
SKIP_DIRS = {".git", "build", "build-asan", "bench_artifacts", ".claude"}
# Per-PR scratch files, not maintained documentation.
SKIP_FILES = {"ISSUE.md"}


def md_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md") and name not in SKIP_FILES:
                yield os.path.join(dirpath, name)


def check_file(root, path):
    errors = []
    with open(path, encoding="utf-8") as f:
        text = f.read()
    base = os.path.dirname(path)

    for m in LINK_RE.finditer(text):
        target = m.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        rel = target.split("#", 1)[0]
        if not rel:
            continue
        if not os.path.exists(os.path.join(base, rel)):
            errors.append(f"broken link ({target})")

    for m in SPAN_RE.finditer(text):
        span = m.group(1)
        if not span.startswith(TOP_DIRS):
            continue
        # `src/vorx/channel` names a module: accept path, path.hpp, path.cpp.
        candidates = [span, span + ".hpp", span + ".cpp", span + ".py"]
        if not any(os.path.exists(os.path.join(root, c)) for c in candidates):
            errors.append(f"dangling path reference `{span}`")

    return errors


def main(argv):
    root = argv[1] if len(argv) > 1 else "."
    bad = 0
    for path in sorted(md_files(root)):
        for err in check_file(root, path):
            print(f"{os.path.relpath(path, root)}: {err}", file=sys.stderr)
            bad += 1
    if bad:
        print(f"check_md_links: FAIL: {bad} problem(s)", file=sys.stderr)
        return 1
    print("check_md_links: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
