#!/usr/bin/env python3
"""Compare two BENCH_results.json artifacts and fail on perf regressions.

Usage: compare_bench_json.py BASELINE CURRENT [--threshold PCT]
                             [--prefix PREFIX ...]
       compare_bench_json.py --self-test

Compares every metric whose key starts with one of the given prefixes
(default: "engine.", "frame_pool.", "slo.", "net.") between a baseline
artifact (typically the previous build's uploaded bench-results) and the
current run.  Exits nonzero when any compared metric regressed by more
than PCT percent (default 10).

Direction is inferred from the row's unit: rates ("items/s", "frames/s",
...) regress when they drop; durations ("us", "ms", "s", "ns") regress
when they rise.  A few count rows carry a known direction by name rather
than by unit: the deterministic event-queue structure-traffic counters
("engine.wheel_l1_*"), the frame-pool occupancy rows
("frame_pool.occupancy_*"), and the fabric routing-state rows
("net.scale_route_kb.*", the O(clusters) gate of the paper-scale machine)
regress when they rise — more spill, more promotions, a fatter pool, or a
fatter routing table for the same machine is always a behaviour change
for the worse.  The rest of the net.* sweep needs no special casing: the
throughput rows end in "/s" and the p99 rows are in "us".  Metrics
present in only one file are reported but are not failures — new rows
appear and old ones retire as benches evolve.

The slo.* rows (bench_workload_slo: service-level metrics under the
production-traffic workload) override unit inference entirely: they are
lower-is-better across the board — join/delivery latency percentiles, and
especially slo.failed_joins_per_s, whose "/s" unit would otherwise read as
a throughput where a rise is good.  The one exception is
slo.sessions_active_peak (concurrency the machine sustained), which is
higher-is-better.  The override runs BEFORE unit inference so the
rate-suffix heuristic can never flip a failure rate into a throughput.

The engine.* rows are wall-clock rates of the simulation substrate itself
(the one bench allowed to read a real clock), so they are noisy across
machines; CI compares artifacts produced on the same runner class and the
threshold absorbs normal jitter.  Every other metric in the file is
virtual-time deterministic and is guarded separately by the determinism
goldens, not by this script.

Shard-scaling speedup rows (engine.shard_speedup_*) additionally depend
on how many cores ran the bench: a 2-shard speedup measured on a 16-wide
machine is not comparable to one measured on a 2-wide runner.  When both
artifacts carry the hardware_concurrency field and the values differ,
those rows are skipped (reported, never failed) instead of compared.

--self-test exercises the comparator on synthetic documents, including a
negative case verifying that an injected >threshold regression makes the
script fail; CI runs it before trusting the real comparison.
"""
import json
import sys

RATE_SUFFIX = "/s"
DURATION_UNITS = {"ns", "us", "ms", "s", "sec", "seconds"}
# Count rows whose direction the unit alone can't tell us, declared by
# metric prefix: for all of these, a rise is the regression.  The
# net.scale_route_kb rows are the fabric's resident routing state — the
# O(clusters) acceptance gate for the paper-scale machine — so growth is
# always a regression.
LOWER_IS_BETTER_PREFIXES = (
    "engine.wheel_l1_",
    "frame_pool.occupancy_",
    "net.scale_route_kb",
)
# ...and the mirror image: dimensionless ratio rows where a rise is the
# improvement: the shard-scaling sweep's speedup rows (unit "x") and the
# rx-coalescing ratio (arrival interrupts absorbed without a pump resume);
# the events/s rows are rate-inferred like any other.
HIGHER_IS_BETTER_PREFIXES = ("engine.shard_speedup_", "engine.coalesced_")
# Rows whose value is a property of the machine's core count as much as of
# the code: comparable only between artifacts recorded on equally-wide
# machines (see hardware_concurrency in the envelope).
CORE_SENSITIVE_PREFIXES = ("engine.shard_speedup_",)
# slo.* service-level rows are lower-is-better by definition (latency
# percentiles, failure rates) EXCEPT the sustained-concurrency peak.  This
# must be consulted before unit inference: slo.failed_joins_per_s ends in
# "/s" and would otherwise be read as a throughput.
SLO_HIGHER_IS_BETTER_PREFIXES = ("slo.sessions_active_peak",)
DEFAULT_THRESHOLD = 10.0
DEFAULT_PREFIXES = ["engine.", "frame_pool.", "slo.", "net."]


def fail(msg):
    print(f"compare_bench_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_doc(path):
    """Returns ({metric: row}, hardware_concurrency-or-None) from `path`."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "hpcvorx-bench-v1":
        fail(f"{path}: schema is {doc.get('schema')!r}, want 'hpcvorx-bench-v1'")
    rows = doc.get("rows")
    if not isinstance(rows, list):
        fail(f"{path}: 'rows' must be an array")
    # Absent in pre-field artifacts (and 0 means "unknown" per the C++
    # std::thread contract): either way we don't know the machine width.
    hw = doc.get("hardware_concurrency")
    if not isinstance(hw, int) or hw <= 0:
        hw = None
    return {r["metric"]: r for r in rows}, hw


def higher_is_better(key, unit):
    """True for rate-like units, False for duration-like, None if unknown."""
    # Service-level rows first — their direction is semantic, not
    # unit-derived (a failed-joins rate in "/s" must not read as
    # throughput).
    if key.startswith("slo."):
        return key.startswith(SLO_HIGHER_IS_BETTER_PREFIXES)
    if unit.endswith(RATE_SUFFIX):
        return True
    if unit in DURATION_UNITS:
        return False
    if key.startswith(LOWER_IS_BETTER_PREFIXES):
        return False
    if key.startswith(HIGHER_IS_BETTER_PREFIXES):
        return True
    return None


def compare(base_rows, cur_rows, threshold, prefixes,
            base_hw=None, cur_hw=None):
    """Returns (regressions, compared, skipped) over the selected metrics."""
    regressions = []
    compared = 0
    skipped = []
    hw_mismatch = (
        base_hw is not None and cur_hw is not None and base_hw != cur_hw
    )
    keys = sorted(
        k
        for k in set(base_rows) | set(cur_rows)
        if any(k.startswith(p) for p in prefixes)
    )
    for key in keys:
        if key not in cur_rows:
            # A metric that existed in the baseline but vanished from the
            # candidate run used to disappear from the diff silently —
            # exactly how a deleted bench row escapes review.  Loudly warn
            # (non-fatal: rows do legitimately retire) as a removed row.
            print(f"compare_bench_json: WARNING: removed {key}: present in "
                  f"baseline ({base_rows[key]['measured']:g} "
                  f"{base_rows[key].get('unit', '')}) but missing from "
                  f"candidate")
            skipped.append((key, "removed: baseline only"))
            continue
        if key not in base_rows:
            skipped.append((key, "new in candidate"))
            continue
        if hw_mismatch and key.startswith(CORE_SENSITIVE_PREFIXES):
            skipped.append(
                (key, f"core-count mismatch ({base_hw} vs {cur_hw} "
                      f"hardware threads)")
            )
            continue
        base = base_rows[key]
        cur = cur_rows[key]
        direction = higher_is_better(key, cur.get("unit", ""))
        if direction is None:
            skipped.append((key, f"unknown unit {cur.get('unit')!r}"))
            continue
        b = base["measured"]
        c = cur["measured"]
        if b == 0:
            if not direction:
                # A lower-is-better count at zero must stay at zero (the
                # spill row's whole point); any rise is an unbounded
                # regression.
                delta_pct = 0.0 if c == 0 else float("inf")
            else:
                skipped.append((key, "baseline is zero"))
                continue
        else:
            # Positive delta_pct == regression, regardless of direction.
            delta_pct = 100.0 * ((b - c) / b if direction else (c - b) / b)
        compared += 1
        verdict = "REGRESSED" if delta_pct > threshold else "ok"
        print(
            f"compare_bench_json: {verdict:9s} {key}: "
            f"{b:g} -> {c:g} {cur['unit']} "
            f"({'-' if delta_pct >= 0 else '+'}{abs(delta_pct):.1f}%)"
        )
        if delta_pct > threshold:
            regressions.append((key, delta_pct))
    return regressions, compared, skipped


def doc_of(metrics):
    """A minimal hpcvorx-bench-v1 document from {key: (unit, measured)}."""
    return {
        "schema": "hpcvorx-bench-v1",
        "quick": True,
        "rows": [
            {
                "bench": "t",
                "metric": k,
                "unit": u,
                "measured": m,
                "paper": None,
                "deviation_pct": None,
            }
            for k, (u, m) in metrics.items()
        ],
    }


def rows_of(metrics):
    return {r["metric"]: r for r in doc_of(metrics)["rows"]}


def self_test():
    # Positive case: jitter inside the threshold passes both directions.
    base = rows_of(
        {
            "engine.rate_items_s": ("items/s", 1_000_000.0),
            "engine.latency_us": ("us", 80.0),
            "table1.ignored": ("us", 1.0),
        }
    )
    good = rows_of(
        {
            "engine.rate_items_s": ("items/s", 950_000.0),  # -5%: ok
            "engine.latency_us": ("us", 86.0),  # +7.5%: ok
            "table1.ignored": ("us", 99.0),  # outside prefix: ignored
        }
    )
    regs, compared, _ = compare(base, good, DEFAULT_THRESHOLD, DEFAULT_PREFIXES)
    if regs or compared != 2:
        fail(f"self-test: clean comparison produced {regs}, compared={compared}")

    # Negative case: an injected >10% regression MUST be caught, for both a
    # rate drop and a duration rise.
    for key, bad_metrics in [
        (
            "engine.rate_items_s",
            {
                "engine.rate_items_s": ("items/s", 850_000.0),  # -15%
                "engine.latency_us": ("us", 80.0),
            },
        ),
        (
            "engine.latency_us",
            {
                "engine.rate_items_s": ("items/s", 1_000_000.0),
                "engine.latency_us": ("us", 95.0),  # +18.75%
            },
        ),
    ]:
        regs, _, _ = compare(
            base, rows_of(bad_metrics), DEFAULT_THRESHOLD, DEFAULT_PREFIXES
        )
        if [k for k, _ in regs] != [key]:
            fail(f"self-test: injected regression in {key} not caught: {regs}")

    # An improvement is never a regression.
    better = rows_of({"engine.rate_items_s": ("items/s", 2_000_000.0)})
    regs, _, _ = compare(base, better, DEFAULT_THRESHOLD, DEFAULT_PREFIXES)
    if regs:
        fail(f"self-test: improvement misread as regression: {regs}")

    # One-sided metrics: a baseline-only metric is a REMOVED row (reported,
    # non-fatal), a candidate-only metric is new; neither ever fails the
    # comparison or is silently dropped.
    regs, compared, skipped = compare(
        base,
        rows_of(
            {
                "engine.rate_items_s": ("items/s", 1_000_000.0),
                "engine.brand_new_metric": ("us", 1.0),
                # engine.latency_us is gone from the candidate.
            }
        ),
        DEFAULT_THRESHOLD,
        DEFAULT_PREFIXES,
    )
    if regs or compared != 1:
        fail(f"self-test: one-sided rows misread: {regs}, compared={compared}")
    reasons = dict(skipped)
    if reasons.get("engine.latency_us") != "removed: baseline only":
        fail(f"self-test: removed row not reported as removed: {skipped}")
    if reasons.get("engine.brand_new_metric") != "new in candidate":
        fail(f"self-test: new row not reported as new: {skipped}")

    # Known-direction count rows: the wheel/pool counters have no rate or
    # duration unit, but by name a rise is a regression — including a rise
    # off a zero baseline (the spill row must stay pinned at zero).
    count_base = rows_of(
        {
            "engine.wheel_l1_promoted_events": ("events", 1000.0),
            "engine.wheel_l1_spill_events": ("events", 0.0),
            "frame_pool.occupancy_max_free_after_policy": ("buffers", 40.0),
            "engine.mystery_count": ("widgets", 5.0),  # still unknown
        }
    )
    count_same = rows_of(
        {
            "engine.wheel_l1_promoted_events": ("events", 1000.0),
            "engine.wheel_l1_spill_events": ("events", 0.0),
            "frame_pool.occupancy_max_free_after_policy": ("buffers", 38.0),
            "engine.mystery_count": ("widgets", 500.0),
        }
    )
    regs, compared, skipped = compare(
        count_base, count_same, DEFAULT_THRESHOLD, DEFAULT_PREFIXES
    )
    if regs or compared != 3:
        fail(f"self-test: stable counts misread: {regs}, compared={compared}")
    if not any(k == "engine.mystery_count" for k, _ in skipped):
        fail("self-test: unknown-unit count row was not skipped")
    count_bad = rows_of(
        {
            "engine.wheel_l1_promoted_events": ("events", 1300.0),  # +30%
            "engine.wheel_l1_spill_events": ("events", 7.0),  # 0 -> 7
            "frame_pool.occupancy_max_free_after_policy": ("buffers", 60.0),
            "engine.mystery_count": ("widgets", 5.0),
        }
    )
    regs, _, _ = compare(
        count_base, count_bad, DEFAULT_THRESHOLD, DEFAULT_PREFIXES
    )
    if sorted(k for k, _ in regs) != [
        "engine.wheel_l1_promoted_events",
        "engine.wheel_l1_spill_events",
        "frame_pool.occupancy_max_free_after_policy",
    ]:
        fail(f"self-test: count-row regressions not caught: {regs}")

    # Shard-speedup ratio rows (unit "x"): higher is better by name, so a
    # drop beyond the threshold is the regression and a rise never is.
    speedup_base = rows_of(
        {
            "engine.shard_speedup_4x": ("x", 2.0),
            "engine.shard_events_s_4": ("events/s", 4_000_000.0),
        }
    )
    speedup_bad = rows_of(
        {
            "engine.shard_speedup_4x": ("x", 1.5),  # -25%
            "engine.shard_events_s_4": ("events/s", 4_000_000.0),
        }
    )
    regs, compared, _ = compare(
        speedup_base, speedup_bad, DEFAULT_THRESHOLD, DEFAULT_PREFIXES
    )
    if [k for k, _ in regs] != ["engine.shard_speedup_4x"] or compared != 2:
        fail(f"self-test: speedup drop not caught: {regs}, compared={compared}")
    speedup_better = rows_of(
        {
            "engine.shard_speedup_4x": ("x", 3.0),
            "engine.shard_events_s_4": ("events/s", 4_400_000.0),
        }
    )
    regs, _, _ = compare(
        speedup_base, speedup_better, DEFAULT_THRESHOLD, DEFAULT_PREFIXES
    )
    if regs:
        fail(f"self-test: speedup rise misread as regression: {regs}")

    # Core-count sensitivity: the same >threshold speedup drop is a
    # regression on an equally-wide machine but must be skipped (reported,
    # never failed) when the two artifacts disagree on core count; the
    # rate row next to it is compared either way.  Unknown widths (either
    # side missing the field) keep the old always-compare behaviour.
    regs, compared, skipped = compare(
        speedup_base, speedup_bad, DEFAULT_THRESHOLD, DEFAULT_PREFIXES,
        base_hw=16, cur_hw=4,
    )
    if regs or compared != 1:
        fail(
            f"self-test: cross-width speedup not skipped: {regs}, "
            f"compared={compared}"
        )
    if not any(k == "engine.shard_speedup_4x" and "core-count" in why
               for k, why in skipped):
        fail(f"self-test: core-count skip not reported: {skipped}")
    regs, compared, _ = compare(
        speedup_base, speedup_bad, DEFAULT_THRESHOLD, DEFAULT_PREFIXES,
        base_hw=8, cur_hw=8,
    )
    if [k for k, _ in regs] != ["engine.shard_speedup_4x"] or compared != 2:
        fail(f"self-test: same-width speedup drop not caught: {regs}")
    regs, compared, _ = compare(
        speedup_base, speedup_bad, DEFAULT_THRESHOLD, DEFAULT_PREFIXES,
        base_hw=None, cur_hw=4,
    )
    if [k for k, _ in regs] != ["engine.shard_speedup_4x"] or compared != 2:
        fail(f"self-test: unknown-width artifact skipped speedup row: {regs}")

    # slo.* service-level rows: lower-is-better overrides unit inference —
    # in particular the failed-joins rate ends in "/s" and must still
    # regress on a RISE, and the latency percentiles regress on a rise like
    # any duration.  sessions_active_peak is the higher-is-better exception.
    slo_base = rows_of(
        {
            "slo.join_p99_us": ("us", 2_000.0),
            "slo.failed_joins_per_s": ("/s", 10.0),
            "slo.sessions_active_peak": ("sessions", 5_000.0),
        }
    )
    slo_bad = rows_of(
        {
            "slo.join_p99_us": ("us", 2_600.0),  # +30%: regression
            "slo.failed_joins_per_s": ("/s", 14.0),  # +40% failures: regression
            "slo.sessions_active_peak": ("sessions", 4_000.0),  # -20%: regression
        }
    )
    regs, compared, _ = compare(
        slo_base, slo_bad, DEFAULT_THRESHOLD, DEFAULT_PREFIXES
    )
    if sorted(k for k, _ in regs) != [
        "slo.failed_joins_per_s",
        "slo.join_p99_us",
        "slo.sessions_active_peak",
    ] or compared != 3:
        fail(f"self-test: slo regressions not caught: {regs}, "
             f"compared={compared}")
    slo_good = rows_of(
        {
            "slo.join_p99_us": ("us", 1_500.0),  # faster joins
            "slo.failed_joins_per_s": ("/s", 2.0),  # fewer failures
            "slo.sessions_active_peak": ("sessions", 6_000.0),  # more load held
        }
    )
    regs, _, _ = compare(
        slo_base, slo_good, DEFAULT_THRESHOLD, DEFAULT_PREFIXES
    )
    if regs:
        fail(f"self-test: slo improvement misread as regression: {regs}")
    # A zero-failure baseline is a pin: any failed join at all regresses it
    # (same rule as the wheel spill row).
    regs, _, _ = compare(
        rows_of({"slo.failed_joins_per_s": ("/s", 0.0)}),
        rows_of({"slo.failed_joins_per_s": ("/s", 0.5)}),
        DEFAULT_THRESHOLD, DEFAULT_PREFIXES,
    )
    if [k for k, _ in regs] != ["slo.failed_joins_per_s"]:
        fail(f"self-test: rise off zero-failure baseline not caught: {regs}")

    # The net.* scaling sweep: throughput rows are rate-inferred (a drop
    # regresses), p99 rows are duration-inferred (a rise regresses), and
    # the routing-state rows are lower-is-better by name — their unit
    # ("KB") is neither a rate nor a duration, and a rise would otherwise
    # be skipped as unknown.  All three directions must be caught, and the
    # mirror-image improvements must pass.
    net_base = rows_of(
        {
            "net.scale_frames_s.cube.adaptive.n4096": ("frames/s", 5e6),
            "net.scale_p99_us.cube.adaptive.n4096": ("us", 4000.0),
            "net.scale_route_kb.n4096": ("KB", 32.0),
        }
    )
    net_bad = rows_of(
        {
            "net.scale_frames_s.cube.adaptive.n4096": ("frames/s", 4e6),  # -20%
            "net.scale_p99_us.cube.adaptive.n4096": ("us", 5200.0),  # +30%
            "net.scale_route_kb.n4096": ("KB", 64.0),  # O(n^2) table is back
        }
    )
    regs, compared, _ = compare(
        net_base, net_bad, DEFAULT_THRESHOLD, DEFAULT_PREFIXES
    )
    if sorted(k for k, _ in regs) != [
        "net.scale_frames_s.cube.adaptive.n4096",
        "net.scale_p99_us.cube.adaptive.n4096",
        "net.scale_route_kb.n4096",
    ] or compared != 3:
        fail(f"self-test: net regressions not caught: {regs}, "
             f"compared={compared}")
    net_good = rows_of(
        {
            "net.scale_frames_s.cube.adaptive.n4096": ("frames/s", 6e6),
            "net.scale_p99_us.cube.adaptive.n4096": ("us", 3000.0),
            "net.scale_route_kb.n4096": ("KB", 30.0),
        }
    )
    regs, _, _ = compare(
        net_base, net_good, DEFAULT_THRESHOLD, DEFAULT_PREFIXES
    )
    if regs:
        fail(f"self-test: net improvement misread as regression: {regs}")

    # The rx-coalescing ratio: higher is better by name, so only a drop
    # beyond the threshold regresses.
    ratio_base = rows_of({"engine.coalesced_resumes_ratio": ("ratio", 0.8)})
    regs, compared, _ = compare(
        ratio_base,
        rows_of({"engine.coalesced_resumes_ratio": ("ratio", 0.6)}),  # -25%
        DEFAULT_THRESHOLD, DEFAULT_PREFIXES,
    )
    if [k for k, _ in regs] != ["engine.coalesced_resumes_ratio"]:
        fail(f"self-test: coalescing-ratio drop not caught: {regs}")
    regs, _, _ = compare(
        ratio_base,
        rows_of({"engine.coalesced_resumes_ratio": ("ratio", 0.95)}),
        DEFAULT_THRESHOLD, DEFAULT_PREFIXES,
    )
    if regs:
        fail(f"self-test: coalescing-ratio rise misread as regression: {regs}")

    print("compare_bench_json: self-test OK")
    return 0


def main(argv):
    args = argv[1:]
    if args == ["--self-test"]:
        return self_test()
    paths = []
    threshold = DEFAULT_THRESHOLD
    prefixes = []
    while args:
        if args[0] == "--threshold" and len(args) >= 2:
            threshold = float(args[1])
            args = args[2:]
        elif args[0] == "--prefix" and len(args) >= 2:
            prefixes.append(args[1])
            args = args[2:]
        elif args[0].startswith("-"):
            fail(f"unknown argument {args[0]!r}")
        else:
            paths.append(args[0])
            args = args[1:]
    if len(paths) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    if not prefixes:
        prefixes = DEFAULT_PREFIXES

    base_rows, base_hw = load_doc(paths[0])
    cur_rows, cur_hw = load_doc(paths[1])
    regressions, compared, skipped = compare(
        base_rows, cur_rows, threshold, prefixes, base_hw, cur_hw
    )
    for key, why in skipped:
        print(f"compare_bench_json: skipped {key}: {why}")
    if regressions:
        worst = max(regressions, key=lambda kv: kv[1])
        fail(
            f"{len(regressions)} metric(s) regressed more than "
            f"{threshold:g}% (worst: {worst[0]} at -{worst[1]:.1f}%)"
        )
    print(
        f"compare_bench_json: OK: {compared} metric(s) within "
        f"{threshold:g}% of baseline"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
