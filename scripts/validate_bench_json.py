#!/usr/bin/env python3
"""Validate a BENCH_results.json against the hpcvorx-bench-v1 schema.

Usage: validate_bench_json.py FILE [--require-metric KEY ...]

Checks the envelope, every row's fields and types, the deviation_pct
arithmetic, metric-key uniqueness, and (optionally) that specific metric
keys are present — CI uses the latter to pin the acceptance-critical rows
(Table 1, Table 2, the §4 headline, the 80 µs context switch) so a bench
refactor cannot silently drop them.
"""
import json
import math
import sys

REQUIRED_ROW_FIELDS = {
    "bench": str,
    "metric": str,
    "unit": str,
    "measured": (int, float),
}


def fail(msg):
    print(f"validate_bench_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    path = argv[1]
    required = []
    args = argv[2:]
    while args:
        if args[0] == "--require-metric" and len(args) >= 2:
            required.append(args[1])
            args = args[2:]
        else:
            fail(f"unknown argument {args[0]!r}")

    with open(path, encoding="utf-8") as f:
        doc = json.load(f)

    if doc.get("schema") != "hpcvorx-bench-v1":
        fail(f"schema is {doc.get('schema')!r}, want 'hpcvorx-bench-v1'")
    if not isinstance(doc.get("quick"), bool):
        fail("'quick' must be a boolean")
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        fail("'rows' must be a non-empty array")

    seen = set()
    for i, row in enumerate(rows):
        where = f"rows[{i}]"
        if not isinstance(row, dict):
            fail(f"{where} is not an object")
        for field, ty in REQUIRED_ROW_FIELDS.items():
            if field not in row:
                fail(f"{where} missing {field!r}")
            if not isinstance(row[field], ty) or isinstance(row[field], bool):
                fail(f"{where}.{field} has wrong type {type(row[field]).__name__}")
        for field in ("paper", "deviation_pct"):
            if field not in row:
                fail(f"{where} missing {field!r}")
            v = row[field]
            if v is not None and (not isinstance(v, (int, float)) or isinstance(v, bool)):
                fail(f"{where}.{field} must be a number or null")
        if (row["paper"] is None) != (row["deviation_pct"] is None):
            fail(f"{where}: paper and deviation_pct must be null together")
        if row["paper"] is not None and row["paper"] != 0:
            want = 100.0 * (row["measured"] - row["paper"]) / row["paper"]
            if not math.isclose(want, row["deviation_pct"], abs_tol=0.01):
                fail(
                    f"{where} ({row['metric']}): deviation_pct "
                    f"{row['deviation_pct']} != recomputed {want:.4f}"
                )
        key = row["metric"]
        if key in seen:
            fail(f"duplicate metric key {key!r}")
        seen.add(key)

    missing = [k for k in required if k not in seen]
    if missing:
        fail(f"required metric keys missing: {', '.join(missing)}")

    papered = sum(1 for r in rows if r["paper"] is not None)
    print(
        f"validate_bench_json: OK: {len(rows)} rows "
        f"({papered} with paper values) across "
        f"{len({r['bench'] for r in rows})} benches"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
