#include "apps/bitmap.hpp"

namespace hpcvorx::apps {

std::vector<std::byte> BitmapSource::chunk(std::uint64_t frame,
                                           std::size_t offset,
                                           std::size_t len) const {
  std::vector<std::byte> out;
  chunk_into(frame, offset, len, out);
  return out;
}

void BitmapSource::chunk_into(std::uint64_t frame, std::size_t offset,
                              std::size_t len,
                              std::vector<std::byte>& out) const {
  out.resize(len);
  for (std::size_t i = 0; i < len; ++i) out[i] = byte_at(frame, offset + i);
}

std::uint64_t BitmapSource::frame_checksum(std::uint64_t frame) const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const std::size_t n = frame_bytes();
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<std::uint64_t>(byte_at(frame, i));
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace hpcvorx::apps
