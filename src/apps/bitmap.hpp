// Bitmap frame generation for the §4.1 real-time display experiments.
//
// "we obtained a rate of 3.2 Mbyte/sec, sufficient to refresh a 900x900
// pixel portion of a monochrome (bi-level black and white) display 30
// times per second from a remote processor."
//
// The source produces deterministic bi-level scanline bytes so the
// receiving frame buffer's contents can be checksummed end to end.
#pragma once

#include <cstdint>
#include <vector>

namespace hpcvorx::apps {

class BitmapSource {
 public:
  BitmapSource(int width = 900, int height = 900)
      : width_(width), height_(height) {}

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }

  /// Bytes in one bi-level frame.
  [[nodiscard]] std::size_t frame_bytes() const {
    return (static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_) +
            7) /
           8;
  }

  /// `len` bytes of frame `frame` starting at `offset` (a moving pattern,
  /// so successive frames differ).
  [[nodiscard]] std::vector<std::byte> chunk(std::uint64_t frame,
                                             std::size_t offset,
                                             std::size_t len) const;

  /// chunk() into a caller-provided buffer (cleared first), so streaming
  /// senders can fill recycled hw::FramePool storage instead of minting a
  /// fresh vector per scan-line chunk.
  void chunk_into(std::uint64_t frame, std::size_t offset, std::size_t len,
                  std::vector<std::byte>& out) const;

  /// FNV-1a over the whole frame (what the frame buffer should hold).
  [[nodiscard]] std::uint64_t frame_checksum(std::uint64_t frame) const;

 private:
  [[nodiscard]] std::byte byte_at(std::uint64_t frame, std::size_t index) const {
    // A cheap moving interference pattern.
    const std::uint64_t v =
        (index * 2654435761ULL) ^ (frame * 0x9e3779b97f4a7c15ULL) ^ (index >> 7);
    return static_cast<std::byte>(v & 0xff);
  }

  int width_;
  int height_;
};

}  // namespace hpcvorx::apps
