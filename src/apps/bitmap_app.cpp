#include "apps/bitmap_app.hpp"

#include <memory>

#include "vorx/node.hpp"
#include "vorx/udco.hpp"

namespace hpcvorx::apps {

namespace {
constexpr std::uint32_t kChunk = 1024;
}

BitmapResult run_bitmap(sim::Simulator& sim, vorx::System& sys,
                        const BitmapConfig& cfg) {
  auto src = std::make_shared<BitmapSource>(cfg.width, cfg.height);
  auto fb = std::make_shared<hw::FrameBuffer>(cfg.width, cfg.height);
  auto done = std::make_shared<sim::Gate>(sim, 2);
  auto started = std::make_shared<sim::SimTime>(0);
  auto ended = std::make_shared<sim::SimTime>(0);
  const std::size_t frame_bytes = src->frame_bytes();
  const auto total_chunks = static_cast<std::uint64_t>(cfg.frames) *
                            ((frame_bytes + kChunk - 1) / kChunk);

  // Sender on processing node 0.
  sys.node(0).spawn_process(
      "bitmap-src",
      [&sim, &cfg, src, fb, done, started, ended, frame_bytes, total_chunks](vorx::Subprocess& sp) -> sim::Task<void> {  // vorx-lint: allow(R2,R8) closure is copied into the Process's AppFn, which outlives the Task; &sim/&cfg are main()-frame objects that outlive the run
        vorx::Channel* ch = nullptr;
        vorx::Udco* u = nullptr;
        if (cfg.use_channels) {
          ch = co_await sp.open("display");
        } else {
          u = co_await sp.open_udco("display");
        }
        *started = sim.now();
        for (int f = 0; f < cfg.frames; ++f) {
          for (std::size_t off = 0; off < frame_bytes; off += kChunk) {
            const auto n = static_cast<std::uint32_t>(
                std::min<std::size_t>(kChunk, frame_bytes - off));
            hw::Payload data;
            if (cfg.carry_pixels) {
              // Fill a recycled pool buffer: the display stream is the
              // hottest payload producer in the repo (900x900 frames in
              // 1024-byte chunks).
              hw::FramePool& pool = sp.node().frame_pool();
              std::vector<std::byte> bytes = pool.buffer();
              src->chunk_into(static_cast<std::uint64_t>(f), off, n, bytes);
              data = pool.make(std::move(bytes));
            }
            if (cfg.use_channels) {
              co_await sp.write(*ch, n, std::move(data));
            } else {
              // "send it to the HPC interconnect as fast as it could":
              // the only pacing left is hardware flow control.
              co_await u->send(sp, n, std::move(data),
                               /*seq=*/off, /*aux=*/static_cast<std::uint64_t>(f));
            }
          }
        }
        done->arrive();
      });

  // Receiver on workstation 0: straight into the frame buffer.
  sys.host(0).spawn_process(
      "display",
      [&sim, &cfg, src, fb, done, started, ended, frame_bytes, total_chunks](vorx::Subprocess& sp) -> sim::Task<void> {  // vorx-lint: allow(R2,R8) closure is copied into the Process's AppFn, which outlives the Task; &sim/&cfg are main()-frame objects that outlive the run
        vorx::Channel* ch = nullptr;
        vorx::Udco* u = nullptr;
        if (cfg.use_channels) {
          ch = co_await sp.open("display");
        } else {
          u = co_await sp.open_udco("display");
        }
        for (std::uint64_t i = 0; i < total_chunks; ++i) {
          std::uint32_t n = 0;
          std::uint64_t off = 0;
          hw::Payload data;
          if (cfg.use_channels) {
            vorx::ChannelMsg m = co_await sp.read(*ch);
            n = m.bytes;
            data = m.data;
            off = (i % ((frame_bytes + kChunk - 1) / kChunk)) * kChunk;
          } else {
            hw::Frame f = co_await u->recv(sp);
            n = f.payload_bytes;
            data = f.data;
            off = f.seq;
          }
          // "the few statements needed to determine where to place the
          // incoming bitmap data in the frame buffer" + the copy itself.
          co_await sp.compute(sim::usec(2) +
                              static_cast<sim::Duration>(n) *
                                  cfg.fb_copy_per_byte);
          if (data != nullptr) {
            fb->write_bytes(off, *data);
          } else {
            fb->write_length(off, n);
          }
        }
        *ended = sim.now();
        done->arrive();
      });

  sim.run();

  BitmapResult res;
  res.elapsed = *ended - *started;
  res.bytes = static_cast<std::uint64_t>(cfg.frames) * frame_bytes;
  const double secs = sim::to_sec(res.elapsed);
  if (secs > 0) {
    res.mbytes_per_sec = static_cast<double>(res.bytes) / 1e6 / secs;
    res.frames_per_sec = cfg.frames / secs;
  }
  if (cfg.carry_pixels) {
    // After the run the buffer should hold the final frame, byte-exact.
    hw::FrameBuffer expect(cfg.width, cfg.height);
    const auto last = static_cast<std::uint64_t>(cfg.frames - 1);
    expect.write_bytes(0, src->chunk(last, 0, frame_bytes));
    res.checksum_ok = expect.checksum() == fb->checksum();
  } else {
    res.checksum_ok = fb->bytes_written() == res.bytes;
  }
  return res;
}

}  // namespace hpcvorx::apps
