// Real-time bitmap streaming to a workstation frame buffer (§4.1).
//
// "we wanted to obtain the maximum possible communications bandwidth from
// the HPC.  We did so by having the processor originating the bitmap image
// send it to the HPC interconnect as fast as it could and for the
// workstation receiving the bitmap to copy it from the HPC directly to its
// frame buffer.  Because all flow control was done by the HPC hardware,
// the protocol overhead was only the few statements needed to determine
// where to place the incoming bitmap data in the frame buffer."
#pragma once

#include <cstdint>

#include "apps/bitmap.hpp"
#include "hw/framebuffer.hpp"
#include "vorx/system.hpp"

namespace hpcvorx::apps {

struct BitmapConfig {
  int width = 900;
  int height = 900;
  int frames = 4;
  bool use_channels = false;   // false: raw no-flow-control streaming
  bool carry_pixels = true;    // carry real bytes for checksum verification
  // Workstation cost to place one received byte into display memory.
  sim::Duration fb_copy_per_byte = 250;  // ns/B
};

struct BitmapResult {
  sim::Duration elapsed = 0;
  std::uint64_t bytes = 0;
  double mbytes_per_sec = 0;
  double frames_per_sec = 0;
  bool checksum_ok = false;   // frame buffer holds the last frame exactly
};

/// Streams frames from processing node 0 to workstation host 0.
[[nodiscard]] BitmapResult run_bitmap(sim::Simulator& sim, vorx::System& sys,
                                      const BitmapConfig& cfg);

}  // namespace hpcvorx::apps
