#include "apps/cemu_app.hpp"

#include <cassert>
#include <cstring>
#include <map>
#include <memory>

#include "vorx/node.hpp"
#include "vorx/protocols/sliding_window.hpp"
#include "vorx/udco.hpp"

namespace hpcvorx::apps {

namespace {

// Per-gate evaluation cost on the 68020 (table lookup + a few moves; MOS
// timing models cost more, but the communication structure is what the
// experiment is about).
constexpr sim::Duration kEvalPerGate = sim::usec(20);
constexpr sim::Duration kLatchPerDff = sim::usec(5);
constexpr sim::Duration kPackFixed = sim::usec(8);

hw::Payload pack_bits(const std::vector<int>& ids,
                      const std::vector<bool>& latched) {
  std::vector<std::byte> bytes((ids.size() + 7) / 8);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (latched[static_cast<std::size_t>(ids[i])]) {
      bytes[i / 8] |= static_cast<std::byte>(1u << (i % 8));
    }
  }
  return hw::make_payload(std::move(bytes));
}

void unpack_bits(const hw::Payload& data, const std::vector<int>& ids,
                 std::vector<bool>& latched) {
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const bool v =
        ((*data)[i / 8] & static_cast<std::byte>(1u << (i % 8))) !=
        std::byte{0};
    latched[static_cast<std::size_t>(ids[i])] = v;
  }
}

// One direction of a boundary connection, over either transport.
struct BoundaryPipe {
  std::vector<int> ids;  // the DFFs whose values travel here
  vorx::Channel* chan = nullptr;
  std::unique_ptr<vorx::SlidingWindowSender> swp_tx;
  std::unique_ptr<vorx::SlidingWindowReceiver> swp_rx;
};

struct Shared {
  CemuConfig cfg;
  const Circuit* circuit = nullptr;
  std::vector<std::uint64_t> block_hash;
  std::uint64_t boundary_messages = 0;
  std::vector<sim::SimTime> done_at;
};

sim::Task<void> cemu_node(vorx::Subprocess& sp, std::shared_ptr<Shared> st,
                          int me, std::shared_ptr<sim::Gate> done) {
  const Circuit& ckt = *st->circuit;
  const CemuConfig& cfg = st->cfg;
  const int blocks = cfg.blocks;
  const int base = me * cfg.gates_per_block;

  // Boundary sets: who do I send to / receive from, and which DFFs.
  std::vector<BoundaryPipe> out_pipes(static_cast<std::size_t>(blocks));
  std::vector<BoundaryPipe> in_pipes(static_cast<std::size_t>(blocks));
  for (int other = 0; other < blocks; ++other) {
    if (other == me) continue;
    out_pipes[static_cast<std::size_t>(other)].ids = ckt.boundary(me, other);
    in_pipes[static_cast<std::size_t>(other)].ids = ckt.boundary(other, me);
  }

  // Open the transports in a global canonical order (no rendezvous
  // deadlock).  Each ordered pair (i -> j) with a nonempty boundary gets
  // its own connection named "cb<i>_<j>".
  for (int i = 0; i < blocks; ++i) {
    for (int j = 0; j < blocks; ++j) {
      if (i == j) continue;
      const bool sender = i == me;
      const bool receiver = j == me;
      if (!sender && !receiver) continue;
      BoundaryPipe& pipe = sender ? out_pipes[static_cast<std::size_t>(j)]
                                  : in_pipes[static_cast<std::size_t>(i)];
      if (pipe.ids.empty()) continue;
      const std::string name =
          "cb" + std::to_string(i) + "_" + std::to_string(j);
      if (cfg.transport == CemuTransport::kChannels) {
        pipe.chan = co_await sp.open(name);
      } else {
        vorx::Udco* u = co_await sp.open_udco(name);
        if (sender) {
          pipe.swp_tx = std::make_unique<vorx::SlidingWindowSender>(*u);
        } else {
          pipe.swp_rx =
              std::make_unique<vorx::SlidingWindowReceiver>(*u, cfg.window);
          co_await pipe.swp_rx->start(sp);
        }
      }
    }
  }

  std::vector<bool> values(static_cast<std::size_t>(ckt.num_gates()), false);
  std::vector<bool> latched(values.size(), false);
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  const std::vector<int> my_dffs = ckt.dffs_in_block(me);

  for (int t = 0; t < cfg.cycles; ++t) {
    // Latch my flip-flops.
    co_await sp.compute(kLatchPerDff * static_cast<int>(my_dffs.size()));
    for (int d : my_dffs) {
      latched[static_cast<std::size_t>(d)] =
          values[static_cast<std::size_t>(
              ckt.gates()[static_cast<std::size_t>(d)].a)];
    }
    // Ship my boundary values to every reader...
    for (int other = 0; other < blocks; ++other) {
      BoundaryPipe& pipe = out_pipes[static_cast<std::size_t>(other)];
      if (pipe.ids.empty()) continue;
      const auto bytes =
          static_cast<std::uint32_t>((pipe.ids.size() + 7) / 8);
      co_await sp.compute(kPackFixed);
      hw::Payload data = pack_bits(pipe.ids, latched);
      if (pipe.chan != nullptr) {
        co_await sp.write(*pipe.chan, bytes, std::move(data));
      } else {
        co_await pipe.swp_tx->send(sp, bytes, std::move(data));
      }
      ++st->boundary_messages;
    }
    // ...and take in everyone else's.
    for (int other = 0; other < blocks; ++other) {
      BoundaryPipe& pipe = in_pipes[static_cast<std::size_t>(other)];
      if (pipe.ids.empty()) continue;
      co_await sp.compute(kPackFixed);
      if (pipe.chan != nullptr) {
        vorx::ChannelMsg m = co_await sp.read(*pipe.chan);
        unpack_bits(m.data, pipe.ids, latched);
      } else {
        hw::Frame f = co_await pipe.swp_rx->recv(sp);
        unpack_bits(f.data, pipe.ids, latched);
      }
    }
    // Evaluate my combinational plane and fold the block trace.
    co_await sp.compute(kEvalPerGate * cfg.gates_per_block);
    for (int i = 0; i < cfg.gates_per_block; ++i) {
      const int g = base + i;
      bool v;
      if (ckt.is_dff(g)) {
        v = latched[static_cast<std::size_t>(g)];
      } else {
        v = ckt.eval_gate(g, values, latched, t);
        values[static_cast<std::size_t>(g)] = v;
      }
      hash = fold_bit(hash, v);
    }
  }

  st->block_hash[static_cast<std::size_t>(me)] = hash;
  st->done_at[static_cast<std::size_t>(me)] = sp.node().simulator().now();
  done->arrive();
}

}  // namespace

CemuResult run_cemu(sim::Simulator& sim, vorx::System& sys,
                    const CemuConfig& cfg) {
  assert(sys.num_nodes() >= cfg.blocks);
  const Circuit circuit = Circuit::random(cfg.blocks, cfg.gates_per_block,
                                          cfg.dffs_per_block,
                                          cfg.primary_inputs, cfg.seed);
  auto st = std::make_shared<Shared>();
  st->cfg = cfg;
  st->circuit = &circuit;
  st->block_hash.assign(static_cast<std::size_t>(cfg.blocks), 0);
  st->done_at.assign(static_cast<std::size_t>(cfg.blocks), 0);

  auto done = std::make_shared<sim::Gate>(sim, static_cast<std::size_t>(cfg.blocks));
  const sim::SimTime started = sim.now();
  for (int b = 0; b < cfg.blocks; ++b) {
    sys.node(b).spawn_process(
        "cemu." + std::to_string(b),
        [st, b, done](vorx::Subprocess& sp) -> sim::Task<void> {  // vorx-lint: allow(R2) closure is copied into the Process's AppFn, which outlives the Task
          co_await cemu_node(sp, st, b, done);
        });
  }
  sim.run();

  CemuResult res;
  res.elapsed = sim.now() - started;
  res.boundary_messages = st->boundary_messages;
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint64_t bh : st->block_hash) {
    h ^= bh;
    h *= 0x100000001b3ULL;
  }
  res.trace = h;
  res.matches_serial = h == circuit.simulate_serial(cfg.cycles);
  res.cycles_per_sec = cfg.cycles / sim::to_sec(res.elapsed);
  return res;
}

}  // namespace hpcvorx::apps
