// Distributed CEMU-style circuit simulation (§4.1/§5, ref [15]).
//
// The circuit's register-bounded blocks are placed one per processing
// node.  Every clock cycle each node latches its flip-flops, exchanges the
// boundary DFF values with the blocks that read them, then evaluates its
// combinational gates.  The per-cycle boundary messages are small and
// frequent — exactly the traffic that drove the CEMU group to
// sliding-window protocols: "Guided by the experiments done with the CEMU
// simulator using sliding-window protocols, we have seen that a
// sliding-window protocol can be more efficient than a stop-and-wait
// protocol, even with very low latency interconnects like the HPC."
//
// With the sliding-window transport a producer may run several cycles
// ahead of a consumer (bounded by the window), which is what buys the
// overlap; with stop-and-wait channels every boundary message costs a
// full software round trip.  The distributed trace checksum is verified
// against Circuit::simulate_serial().
#pragma once

#include <cstdint>

#include "apps/logic.hpp"
#include "vorx/system.hpp"

namespace hpcvorx::apps {

enum class CemuTransport {
  kChannels,       // stop-and-wait channel per boundary pair
  kSlidingWindow,  // reader-active window over user-defined objects
};

struct CemuConfig {
  int blocks = 4;           // = processing nodes used
  int gates_per_block = 40;
  int dffs_per_block = 8;
  int primary_inputs = 6;
  int cycles = 200;
  CemuTransport transport = CemuTransport::kSlidingWindow;
  int window = 8;           // sliding-window buffer count
  std::uint64_t seed = 21;
};

struct CemuResult {
  sim::Duration elapsed = 0;
  double cycles_per_sec = 0;     // simulated-circuit cycles per virtual sec
  std::uint64_t trace = 0;       // distributed trace checksum
  bool matches_serial = false;
  std::uint64_t boundary_messages = 0;
};

[[nodiscard]] CemuResult run_cemu(sim::Simulator& sim, vorx::System& sys,
                                  const CemuConfig& cfg);

}  // namespace hpcvorx::apps
