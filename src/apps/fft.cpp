#include "apps/fft.hpp"

#include <cassert>
#include <cmath>
#include <cstring>
#include <numbers>

#include "sim/random.hpp"

namespace hpcvorx::apps {

void fft(std::span<Complex> data, bool inverse) {
  const std::size_t n = data.size();
  assert(n != 0 && (n & (n - 1)) == 0 && "FFT size must be a power of two");
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; (j & bit) != 0; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        2 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1 : -1);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

std::vector<Complex> dft_reference(std::span<const Complex> in, bool inverse) {
  const std::size_t n = in.size();
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc(0);
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = 2 * std::numbers::pi * static_cast<double>(k) *
                           static_cast<double>(t) / static_cast<double>(n) *
                           (inverse ? 1 : -1);
      acc += in[t] * Complex(std::cos(angle), std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}

void fft2d(std::vector<Complex>& image, int n) {
  assert(static_cast<int>(image.size()) == n * n);
  for (int r = 0; r < n; ++r) {
    fft(std::span<Complex>(image.data() + static_cast<std::size_t>(r) * n,
                           static_cast<std::size_t>(n)));
  }
  std::vector<Complex> col(static_cast<std::size_t>(n));
  for (int c = 0; c < n; ++c) {
    for (int r = 0; r < n; ++r) {
      col[static_cast<std::size_t>(r)] =
          image[static_cast<std::size_t>(r) * n + c];
    }
    fft(col);
    for (int r = 0; r < n; ++r) {
      image[static_cast<std::size_t>(r) * n + c] =
          col[static_cast<std::size_t>(r)];
    }
  }
}

sim::Duration fft_cost(int n) {
  int log2n = 0;
  while ((1 << log2n) < n) ++log2n;
  return sim::usec(40) * (n / 2) * log2n;
}

std::vector<Complex> make_test_image(int n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<Complex> img(static_cast<std::size_t>(n) * n);
  for (auto& px : img) {
    px = Complex(static_cast<double>(rng.below(256)), 0.0);
  }
  return img;
}

std::uint64_t checksum(std::span<const Complex> data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const Complex& c : data) {
    unsigned char bytes[2 * sizeof(double)];
    const double re = c.real();
    const double im = c.imag();
    std::memcpy(bytes, &re, sizeof re);
    std::memcpy(bytes + sizeof re, &im, sizeof im);
    for (unsigned char b : bytes) {
      h ^= b;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

}  // namespace hpcvorx::apps
