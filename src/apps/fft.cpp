#include "apps/fft.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <numbers>

#include "sim/random.hpp"

namespace hpcvorx::apps {

namespace {

// The original textbook kernel, kept verbatim as the --fft=naive ablation:
// radix-2 decimation-in-time with a running-product twiddle.
void fft_naive(std::span<Complex> data, bool inverse) {
  const std::size_t n = data.size();
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; (j & bit) != 0; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        2 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1 : -1);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

// Twiddle table for the split-radix kernel: w[j] = exp(s * 2*pi*i * j / n)
// with s = -1 forward / +1 inverse (Ooura's makewt idiom — computed once
// per size+direction and shared across every transform of a batch, instead
// of a running product whose rounding error compounds along each row).
// The table spans [0, n) because the third-harmonic twiddle reaches 3n/4.
std::vector<Complex> make_twiddles(std::size_t n, bool inverse) {
  std::vector<Complex> w(n);
  const double step =
      2 * std::numbers::pi / static_cast<double>(n) * (inverse ? 1 : -1);
  for (std::size_t j = 0; j < n; ++j) {
    const double a = step * static_cast<double>(j);
    w[j] = Complex(std::cos(a), std::sin(a));
  }
  return w;
}

// One L-shaped split-radix DIF step on x[0..n): the even outputs collapse
// into a half-size transform in place at x[0..n/2) and the odd outputs
// into two quarter-size transforms at x[n/2..3n/4) and x[3n/4..n), each
// recursed depth-first.  Depth-first means a size-2^k machine walks the
// data once per cache level instead of once per butterfly rank — the
// fftsg "multi-level cache" shape.  Output lands bit-reversed (same
// permutation as radix-2), fixed by the caller in one final pass.
// `wstep` maps a local twiddle exponent to the shared full-size table.
void srfft_rec(Complex* x, std::size_t n, std::size_t wstep, const Complex* w,
               bool inverse) {
  if (n <= 2) {
    if (n == 2) {
      const Complex u = x[0];
      x[0] = u + x[1];
      x[1] = u - x[1];
    }
    return;
  }
  const std::size_t q = n / 4;
  for (std::size_t k = 0; k < q; ++k) {
    const Complex d0 = x[k] - x[k + 2 * q];
    const Complex d1 = x[k + q] - x[k + 3 * q];
    x[k] += x[k + 2 * q];
    x[k + q] += x[k + 3 * q];
    // Forward: (d0 - i*d1) * w^k and (d0 + i*d1) * w^(3k); the rotation
    // flips sign with the transform direction, matching the table.
    const Complex rot = inverse ? Complex(-d1.imag(), d1.real())
                                : Complex(d1.imag(), -d1.real());
    x[k + 2 * q] = (d0 + rot) * w[k * wstep];
    x[k + 3 * q] = (d0 - rot) * w[3 * k * wstep];
  }
  srfft_rec(x, n / 2, wstep * 2, w, inverse);
  srfft_rec(x + n / 2, q, wstep * 4, w, inverse);
  srfft_rec(x + 3 * q, q, wstep * 4, w, inverse);
}

void fft_blocked(std::span<Complex> data, bool inverse,
                 const std::vector<Complex>& w) {
  const std::size_t n = data.size();
  srfft_rec(data.data(), n, 1, w.data(), inverse);
  // Bit-reversal permutation (DIF leaves outputs bit-reversed).
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; (j & bit) != 0; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
}

}  // namespace

void fft(std::span<Complex> data, bool inverse, FftKernel kernel) {
  const std::size_t n = data.size();
  assert(n != 0 && (n & (n - 1)) == 0 && "FFT size must be a power of two");
  if (kernel == FftKernel::kNaive) {
    fft_naive(data, inverse);
    return;
  }
  const std::vector<Complex> w = make_twiddles(n, inverse);
  fft_blocked(data, inverse, w);
}

std::vector<Complex> dft_reference(std::span<const Complex> in, bool inverse) {
  const std::size_t n = in.size();
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc(0);
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = 2 * std::numbers::pi * static_cast<double>(k) *
                           static_cast<double>(t) / static_cast<double>(n) *
                           (inverse ? 1 : -1);
      acc += in[t] * Complex(std::cos(angle), std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}

void fft2d(std::vector<Complex>& image, int n, FftKernel kernel) {
  assert(static_cast<int>(image.size()) == n * n);
  const std::size_t un = static_cast<std::size_t>(n);
  if (kernel == FftKernel::kNaive) {
    // The original one-column-at-a-time shape, preserved for the ablation.
    for (int r = 0; r < n; ++r) {
      fft(std::span<Complex>(image.data() + static_cast<std::size_t>(r) * un,
                             un),
          false, kernel);
    }
    std::vector<Complex> col(un);
    for (int c = 0; c < n; ++c) {
      for (int r = 0; r < n; ++r) {
        col[static_cast<std::size_t>(r)] =
            image[static_cast<std::size_t>(r) * un + static_cast<std::size_t>(c)];
      }
      fft(col, false, kernel);
      for (int r = 0; r < n; ++r) {
        image[static_cast<std::size_t>(r) * un + static_cast<std::size_t>(c)] =
            col[static_cast<std::size_t>(r)];
      }
    }
    return;
  }
  // Blocked kernel: one twiddle table shared across all 2n transforms
  // (fftsg2d keeps a single `w` for the whole image), and the column pass
  // walks panels of adjacent columns so every gathered row segment is one
  // or two cache lines instead of a single strided element.
  const std::vector<Complex> w = make_twiddles(un, /*inverse=*/false);
  for (int r = 0; r < n; ++r) {
    fft_blocked(
        std::span<Complex>(image.data() + static_cast<std::size_t>(r) * un, un),
        false, w);
  }
  constexpr std::size_t kPanel = 8;  // 8 columns x 16 B = two cache lines
  std::vector<Complex> panel(kPanel * un);
  for (std::size_t c0 = 0; c0 < un; c0 += kPanel) {
    const std::size_t width = std::min(kPanel, un - c0);
    for (std::size_t r = 0; r < un; ++r) {
      const Complex* src = image.data() + r * un + c0;
      for (std::size_t j = 0; j < width; ++j) panel[j * un + r] = src[j];
    }
    for (std::size_t j = 0; j < width; ++j) {
      fft_blocked(std::span<Complex>(panel.data() + j * un, un), false, w);
    }
    for (std::size_t r = 0; r < un; ++r) {
      Complex* dst = image.data() + r * un + c0;
      for (std::size_t j = 0; j < width; ++j) dst[j] = panel[j * un + r];
    }
  }
}

sim::Duration fft_cost(int n) {
  int log2n = 0;
  while ((1 << log2n) < n) ++log2n;
  return sim::usec(40) * (n / 2) * log2n;
}

std::vector<Complex> make_test_image(int n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<Complex> img(static_cast<std::size_t>(n) * n);
  for (auto& px : img) {
    px = Complex(static_cast<double>(rng.below(256)), 0.0);
  }
  return img;
}

std::uint64_t checksum(std::span<const Complex> data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const Complex& c : data) {
    unsigned char bytes[2 * sizeof(double)];
    const double re = c.real();
    const double im = c.imag();
    std::memcpy(bytes, &re, sizeof re);
    std::memcpy(bytes + sizeof re, &im, sizeof im);
    for (unsigned char b : bytes) {
      h ^= b;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

}  // namespace hpcvorx::apps
