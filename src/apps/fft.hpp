// Complex FFT kernels for the §4.2 image-processing experiment.
//
// "The 2DFFT of a 256x256 grey scale image is computed as follows: compute
// a 256-point one-dimensional Complex FFT for each row ... [then] a
// 256-point 1DFFT for each column."
//
// Two kernels compute the same transform (so results stay bit-for-bit
// comparable between a node and the serial check, per kernel):
//
//   * kNaive — the textbook radix-2 decimation-in-time loop with a
//     running-product twiddle.  Kept as the `--fft=naive` ablation: it is
//     what a straightforward port of the period code looks like.
//   * kBlocked — an Ooura-style split-radix kernel ("General Purpose FFT
//     Package", the multi-level-cache fftsg variant): an L-shaped
//     decimation-in-frequency recursion (one half + two quarter
//     sub-transforms) over a precomputed twiddle table, depth-first so
//     every sub-transform drops into successively smaller cache levels,
//     with a final bit-reversal pass.  The 2-D path additionally walks the
//     column transforms in narrow panels instead of one strided column at
//     a time.
//
// A naive O(n^2) DFT reference backs the unit tests for both.
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/time.hpp"

namespace hpcvorx::apps {

using Complex = std::complex<double>;

/// Which FFT kernel the simulated nodes (and the serial checks) execute.
enum class FftKernel {
  kNaive,    // textbook radix-2 DIT (the original kernel)
  kBlocked,  // split-radix DIF over a twiddle table, cache-blocked
};

/// In-place FFT.  data.size() must be a power of two.  `inverse` applies
/// the conjugate transform (unnormalized).
void fft(std::span<Complex> data, bool inverse = false,
         FftKernel kernel = FftKernel::kBlocked);

/// O(n^2) reference DFT (tests only).
[[nodiscard]] std::vector<Complex> dft_reference(std::span<const Complex> in,
                                                 bool inverse = false);

/// Row-major n x n 2-D FFT: 1-D FFT of every row, then of every column.
/// The blocked kernel shares one twiddle table across all 2n transforms
/// and processes columns in cache-friendly panels.
void fft2d(std::vector<Complex>& image, int n,
           FftKernel kernel = FftKernel::kBlocked);

/// Virtual-time cost of one n-point complex FFT on a 25 MHz 68020+68882:
/// (n/2) log2(n) butterflies at ~40 us each (~10 flops/butterfly at
/// ~0.25 MFLOPS).
[[nodiscard]] sim::Duration fft_cost(int n);

/// Deterministic pseudo-image (grey-scale levels as real parts).
[[nodiscard]] std::vector<Complex> make_test_image(int n, std::uint64_t seed);

/// FNV-1a over the byte representation (cross-run result comparison).
[[nodiscard]] std::uint64_t checksum(std::span<const Complex> data);

}  // namespace hpcvorx::apps
