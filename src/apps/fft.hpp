// Complex FFT kernels for the §4.2 image-processing experiment.
//
// "The 2DFFT of a 256x256 grey scale image is computed as follows: compute
// a 256-point one-dimensional Complex FFT for each row ... [then] a
// 256-point 1DFFT for each column."
//
// The radix-2 kernel here is what the simulated nodes actually execute, so
// the distributed 2-D FFT results can be verified bit-for-bit against the
// serial computation.  A naive DFT reference backs the unit tests.
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/time.hpp"

namespace hpcvorx::apps {

using Complex = std::complex<double>;

/// In-place radix-2 decimation-in-time FFT.  data.size() must be a power
/// of two.  `inverse` applies the conjugate transform (unnormalized).
void fft(std::span<Complex> data, bool inverse = false);

/// O(n^2) reference DFT (tests only).
[[nodiscard]] std::vector<Complex> dft_reference(std::span<const Complex> in,
                                                 bool inverse = false);

/// Row-major n x n 2-D FFT: 1-D FFT of every row, then of every column.
void fft2d(std::vector<Complex>& image, int n);

/// Virtual-time cost of one n-point complex FFT on a 25 MHz 68020+68882:
/// (n/2) log2(n) butterflies at ~40 us each (~10 flops/butterfly at
/// ~0.25 MFLOPS).
[[nodiscard]] sim::Duration fft_cost(int n);

/// Deterministic pseudo-image (grey-scale levels as real parts).
[[nodiscard]] std::vector<Complex> make_test_image(int n, std::uint64_t seed);

/// FNV-1a over the byte representation (cross-run result comparison).
[[nodiscard]] std::uint64_t checksum(std::span<const Complex> data);

}  // namespace hpcvorx::apps
