#include "apps/fft2d_app.hpp"

#include <cassert>
#include <cstring>
#include <memory>

#include "vorx/multicast.hpp"
#include "vorx/node.hpp"

namespace hpcvorx::apps {

namespace {

// Cost of the application examining/copying one received byte during the
// exchange.  This symmetric per-byte charge is precisely why multicast
// loses: it applies to *everything read*, needed or not (§4.2).
constexpr sim::Duration kScanPerByte = 150;  // ns/B

hw::Payload pack(const Complex* src, std::size_t count) {
  std::vector<std::byte> bytes(count * sizeof(Complex));
  std::memcpy(bytes.data(), src, bytes.size());
  return hw::make_payload(std::move(bytes));
}

void unpack(const hw::Payload& data, Complex* dst, std::size_t count) {
  assert(data->size() == count * sizeof(Complex));
  std::memcpy(dst, data->data(), data->size());
}

// Shared experiment state (one allocation per run).
struct Shared {
  Fft2dConfig cfg;
  std::vector<Complex> input;            // n x n row-major
  std::vector<Complex> output;           // column blocks written by nodes
  std::vector<sim::SimTime> xstart, xend;
  std::vector<std::uint64_t> bytes_read;
  int rows_per_node = 0;
  // Complex values per exchange message (fits one HPC frame).
  static constexpr std::size_t kPerMsg = 64;  // 64 x 16 B = 1024 B
};

// Phase 1, common to both strategies: 1-D FFT of my rows (real arithmetic
// plus the modelled 68882 cost).
sim::Task<std::vector<Complex>> phase1_rows(vorx::Subprocess& sp,
                                            const Shared& st, int me) {
  const int n = st.cfg.n;
  const int rpn = st.rows_per_node;
  const int r0 = me * rpn;
  std::vector<Complex> rows(st.input.begin() + static_cast<long>(r0) * n,
                            st.input.begin() + static_cast<long>(r0 + rpn) * n);
  for (int r = 0; r < rpn; ++r) {
    co_await sp.compute(fft_cost(n));
    fft(std::span<Complex>(rows.data() + static_cast<long>(r) * n,
                           static_cast<std::size_t>(n)),
        false, st.cfg.kernel);
  }
  co_return rows;
}

// Phase 2, common: 1-D FFT of my columns, publish into the shared output.
sim::Task<void> phase2_columns(vorx::Subprocess& sp, Shared& st, int me,
                               std::vector<Complex>& cols) {
  const int n = st.cfg.n;
  const int rpn = st.rows_per_node;
  const int c0 = me * rpn;
  for (int c = 0; c < rpn; ++c) {
    co_await sp.compute(fft_cost(n));
    fft(std::span<Complex>(cols.data() + static_cast<std::size_t>(c) * n,
                           static_cast<std::size_t>(n)),
        false, st.cfg.kernel);
  }
  for (int c = 0; c < rpn; ++c) {
    for (int r = 0; r < n; ++r) {
      st.output[static_cast<std::size_t>(r) * n + (c0 + c)] =
          cols[static_cast<std::size_t>(c) * n + r];
    }
  }
  co_return;
}

// ---- personalized (point-to-point) exchange -------------------------------

sim::Task<void> personalized_node(vorx::Subprocess& sp,
                                  std::shared_ptr<Shared> st, int me,
                                  std::shared_ptr<sim::Gate> done) {
  const int n = st->cfg.n;
  const int p = st->cfg.p;
  const int rpn = st->rows_per_node;
  const int r0 = me * rpn;
  const int c0 = me * rpn;

  std::vector<Complex> rows = co_await phase1_rows(sp, *st, me);

  // One channel per peer (both sides open the canonical low-high name).
  auto chans = std::make_shared<std::vector<vorx::Channel*>>(
      static_cast<std::size_t>(p), nullptr);
  for (int j = 0; j < p; ++j) {
    if (j == me) continue;
    const std::string name = "fx" + std::to_string(std::min(me, j)) + "_" +
                             std::to_string(std::max(me, j));
    (*chans)[static_cast<std::size_t>(j)] = co_await sp.open(name);
  }

  st->xstart[static_cast<std::size_t>(me)] = sp.node().simulator().now();

  // My slice of the column matrix: rpn columns x n rows, column-major.
  auto cols = std::make_shared<std::vector<Complex>>(
      static_cast<std::size_t>(rpn) * n);
  // Local contribution (my rows x my columns) needs no message.
  for (int r = 0; r < rpn; ++r) {
    for (int c = 0; c < rpn; ++c) {
      (*cols)[static_cast<std::size_t>(c) * n + (r0 + r)] =
          rows[static_cast<std::size_t>(r) * n + (c0 + c)];
    }
  }

  // Reader subprocess (the §5 input/compute split — prevents the
  // all-write-then-read deadlock when blocks exceed the side buffers).
  auto reader_done = std::make_shared<sim::Gate>(sp.node().simulator(), 1);
  sp.process().spawn(
      [st, me, cols, chans, reader_done](vorx::Subprocess& rsp)
          -> sim::Task<void> {  // vorx-lint: allow(R2) closure is copied into the Process's AppFn, which outlives the Task
        const int n = st->cfg.n;
        const int p = st->cfg.p;
        const int rpn = st->rows_per_node;
        std::vector<Complex> buf(Shared::kPerMsg);
        for (int j = 0; j < p; ++j) {
          if (j == me) continue;
          // Peer j sends rpn*rpn values: its rows restricted to my columns.
          std::size_t remaining =
              static_cast<std::size_t>(rpn) * static_cast<std::size_t>(rpn);
          std::size_t idx = 0;  // (row-of-j, my-col) linear index
          while (remaining > 0) {
            vorx::ChannelMsg m =
                co_await rsp.read(*(*chans)[static_cast<std::size_t>(j)]);
            const std::size_t cnt = m.bytes / sizeof(Complex);
            co_await rsp.compute(static_cast<sim::Duration>(m.bytes) *
                                 kScanPerByte);
            st->bytes_read[static_cast<std::size_t>(me)] += m.bytes;
            unpack(m.data, buf.data(), cnt);
            for (std::size_t k = 0; k < cnt; ++k, ++idx) {
              const int r = j * rpn + static_cast<int>(idx) / rpn;
              const int c = static_cast<int>(idx) % rpn;
              (*cols)[static_cast<std::size_t>(c) * n + r] = buf[k];
            }
            remaining -= cnt;
          }
        }
        reader_done->arrive();
      },
      sim::prio::kUserDefault, "fft-rx");

  // Writer: send each peer only its columns of my rows.
  for (int j = 0; j < p; ++j) {
    if (j == me) continue;
    std::vector<Complex> block;
    block.reserve(static_cast<std::size_t>(rpn) * rpn);
    for (int r = 0; r < rpn; ++r) {
      for (int c = 0; c < rpn; ++c) {
        block.push_back(rows[static_cast<std::size_t>(r) * n + (j * rpn + c)]);
      }
    }
    for (std::size_t off = 0; off < block.size(); off += Shared::kPerMsg) {
      const std::size_t cnt = std::min(Shared::kPerMsg, block.size() - off);
      co_await sp.write(*(*chans)[static_cast<std::size_t>(j)],
                        static_cast<std::uint32_t>(cnt * sizeof(Complex)),
                        pack(block.data() + off, cnt));
    }
  }

  co_await reader_done->wait();
  st->xend[static_cast<std::size_t>(me)] = sp.node().simulator().now();

  co_await phase2_columns(sp, *st, me, *cols);
  done->arrive();
}

// ---- multicast exchange ----------------------------------------------------

sim::Task<void> multicast_node(vorx::Subprocess& sp,
                               std::shared_ptr<Shared> st, int me,
                               std::shared_ptr<std::vector<vorx::Mcast*>> groups,
                               std::shared_ptr<sim::Gate> done) {
  const int n = st->cfg.n;
  const int rpn = st->rows_per_node;

  std::vector<Complex> rows = co_await phase1_rows(sp, *st, me);

  st->xstart[static_cast<std::size_t>(me)] = sp.node().simulator().now();

  auto cols = std::make_shared<std::vector<Complex>>(
      static_cast<std::size_t>(rpn) * n);

  // Reader: every group's complete rows — "each processor reads 65536
  // numbers of which only 256 are needed" — keeping only my columns.
  auto reader_done = std::make_shared<sim::Gate>(sp.node().simulator(), 1);
  sp.process().spawn(
      [st, me, cols, groups, reader_done](vorx::Subprocess& rsp)
          -> sim::Task<void> {  // vorx-lint: allow(R2) closure is copied into the Process's AppFn, which outlives the Task
        const int n = st->cfg.n;
        const int p = st->cfg.p;
        const int rpn = st->rows_per_node;
        const int c0 = me * rpn;
        std::vector<Complex> buf(Shared::kPerMsg);
        for (int src = 0; src < p; ++src) {
          std::size_t remaining =
              static_cast<std::size_t>(rpn) * static_cast<std::size_t>(n);
          std::size_t idx = 0;  // linear over src's (row, col)
          while (remaining > 0) {
            vorx::ChannelMsg m =
                co_await (*groups)[static_cast<std::size_t>(src)]->read(rsp);
            const std::size_t cnt = m.bytes / sizeof(Complex);
            co_await rsp.compute(static_cast<sim::Duration>(m.bytes) *
                                 kScanPerByte);
            st->bytes_read[static_cast<std::size_t>(me)] += m.bytes;
            unpack(m.data, buf.data(), cnt);
            for (std::size_t k = 0; k < cnt; ++k, ++idx) {
              const int r = src * rpn + static_cast<int>(idx) / n;
              const int c = static_cast<int>(idx) % n;
              if (c >= c0 && c < c0 + rpn) {
                (*cols)[static_cast<std::size_t>(c - c0) * n + r] = buf[k];
              }
            }
            remaining -= cnt;
          }
        }
        reader_done->arrive();
      },
      sim::prio::kUserDefault, "fft-mrx");

  // Writer: multicast my entire rows to everyone.
  vorx::Mcast* mine = (*groups)[static_cast<std::size_t>(me)];
  for (std::size_t off = 0; off < rows.size(); off += Shared::kPerMsg) {
    const std::size_t cnt = std::min(Shared::kPerMsg, rows.size() - off);
    co_await mine->write(sp, static_cast<std::uint32_t>(cnt * sizeof(Complex)),
                         pack(rows.data() + off, cnt));
  }

  co_await reader_done->wait();
  st->xend[static_cast<std::size_t>(me)] = sp.node().simulator().now();

  co_await phase2_columns(sp, *st, me, *cols);
  done->arrive();
}

}  // namespace

Fft2dResult run_fft2d(sim::Simulator& sim, vorx::System& sys,
                      const Fft2dConfig& cfg) {
  assert(cfg.n % cfg.p == 0 && sys.num_nodes() >= cfg.p);
  assert((cfg.n & (cfg.n - 1)) == 0);
  auto st = std::make_shared<Shared>();
  st->cfg = cfg;
  st->rows_per_node = cfg.n / cfg.p;
  st->input = make_test_image(cfg.n, cfg.seed);
  st->output.assign(static_cast<std::size_t>(cfg.n) * cfg.n, Complex(0));
  st->xstart.assign(static_cast<std::size_t>(cfg.p), 0);
  st->xend.assign(static_cast<std::size_t>(cfg.p), 0);
  st->bytes_read.assign(static_cast<std::size_t>(cfg.p), 0);

  auto done = std::make_shared<sim::Gate>(sim, static_cast<std::size_t>(cfg.p));
  const sim::SimTime started = sim.now();

  if (cfg.use_multicast) {
    // One group per source row-owner; every node joins all of them.
    std::vector<hw::StationId> members;
    for (int i = 0; i < cfg.p; ++i) members.push_back(sys.node_station(i));
    std::vector<std::shared_ptr<std::vector<vorx::Mcast*>>> handles(
        static_cast<std::size_t>(cfg.p));
    for (int i = 0; i < cfg.p; ++i) {
      handles[static_cast<std::size_t>(i)] =
          std::make_shared<std::vector<vorx::Mcast*>>();
    }
    std::vector<int> node_indices;
    for (int i = 0; i < cfg.p; ++i) node_indices.push_back(i);
    for (int root = 0; root < cfg.p; ++root) {
      auto group = sys.create_multicast_group(
          7000 + static_cast<std::uint64_t>(root), node_indices, root,
          cfg.mcast_mode);
      for (int i = 0; i < cfg.p; ++i) {
        handles[static_cast<std::size_t>(i)]->push_back(
            group[static_cast<std::size_t>(i)]);
      }
    }
    for (int i = 0; i < cfg.p; ++i) {
      auto groups = handles[static_cast<std::size_t>(i)];
      sys.node(i).spawn_process(
          "fft2d." + std::to_string(i),
          [st, i, groups, done](vorx::Subprocess& sp) -> sim::Task<void> {  // vorx-lint: allow(R2) closure is copied into the Process's AppFn, which outlives the Task
            co_await multicast_node(sp, st, i, groups, done);
          });
    }
  } else {
    for (int i = 0; i < cfg.p; ++i) {
      sys.node(i).spawn_process(
          "fft2d." + std::to_string(i),
          [st, i, done](vorx::Subprocess& sp) -> sim::Task<void> {  // vorx-lint: allow(R2) closure is copied into the Process's AppFn, which outlives the Task
            co_await personalized_node(sp, st, i, done);
          });
    }
  }
  sim.run();

  Fft2dResult res;
  res.elapsed = sim.now() - started;
  for (int i = 0; i < cfg.p; ++i) {
    res.exchange_elapsed =
        std::max(res.exchange_elapsed, st->xend[static_cast<std::size_t>(i)] -
                                           st->xstart[static_cast<std::size_t>(i)]);
    res.bytes_received += st->bytes_read[static_cast<std::size_t>(i)];
  }
  // Every node needs (p-1)/p of the matrix: its columns from other nodes.
  res.bytes_needed = static_cast<std::uint64_t>(cfg.n) * cfg.n *
                     sizeof(Complex) / static_cast<std::uint64_t>(cfg.p) *
                     static_cast<std::uint64_t>(cfg.p - 1);

  std::vector<Complex> serial = st->input;
  fft2d(serial, cfg.n, cfg.kernel);
  res.matches_serial = serial == st->output;
  res.result_checksum = checksum(st->output);
  return res;
}

}  // namespace hpcvorx::apps
