// The distributed 2-D FFT of §4.2, runnable with either data-exchange
// strategy the paper contrasts:
//
//   * multicast — "each processor [multicasts] its entire row to all the
//     other processors.  The problem with this approach is that each
//     processor reads 65536 numbers of which only 256 are needed."
//   * personalized — "a better approach ... is for each processor to send
//     a different [message] to every other processor ... containing only
//     the data that it needs."
//
// The FFT arithmetic really executes on the simulated nodes and the
// transposed data really travels through the simulated interconnect, so
// the distributed result is verified bit-for-bit against the serial
// apps::fft2d().
#pragma once

#include <cstdint>

#include "apps/fft.hpp"
#include "vorx/multicast.hpp"
#include "vorx/system.hpp"

namespace hpcvorx::apps {

struct Fft2dConfig {
  int n = 256;               // image dimension (power of two)
  int p = 16;                // processing nodes used (divides n)
  bool use_multicast = false;
  // When multicasting: kernel-tree forwarding or in-switch replication.
  vorx::McastMode mcast_mode = vorx::McastMode::kSoftwareTree;
  // FFT kernel the nodes execute.  The serial verification uses the same
  // kernel, so matches_serial stays a bit-for-bit check for either choice
  // (the two kernels round differently, so they are not interchangeable
  // mid-run).
  FftKernel kernel = FftKernel::kBlocked;
  std::uint64_t seed = 1;
};

struct Fft2dResult {
  sim::Duration elapsed = 0;          // start of phase 1 -> all nodes done
  sim::Duration exchange_elapsed = 0; // transpose-exchange span (max node)
  std::uint64_t bytes_received = 0;   // application data read, all nodes
  std::uint64_t bytes_needed = 0;     // data actually used, all nodes
  bool matches_serial = false;        // distributed == serial result
  std::uint64_t result_checksum = 0;
};

/// Runs the distributed 2-D FFT on `sys` (which must have >= cfg.p nodes)
/// and drives the simulator to completion.
[[nodiscard]] Fft2dResult run_fft2d(sim::Simulator& sim, vorx::System& sys,
                                    const Fft2dConfig& cfg);

}  // namespace hpcvorx::apps
