#include "apps/linda.hpp"

#include <cassert>
#include <cstring>
#include <deque>
#include <list>
#include <memory>

#include "vorx/node.hpp"

namespace hpcvorx::apps::linda {

namespace {

constexpr std::uint8_t kOpOut = 1;
constexpr std::uint8_t kOpIn = 2;
constexpr std::uint8_t kOpRd = 3;

// Wire format: [op u8][arity u8][wildcard-mask u8][fields i64 ...].
hw::Payload encode(std::uint8_t op, const Tuple& t, const Pattern* p) {
  const std::size_t arity = p != nullptr ? p->fields.size() : t.size();
  assert(arity <= 8);
  std::vector<std::byte> bytes(3 + arity * 8);
  bytes[0] = static_cast<std::byte>(op);
  bytes[1] = static_cast<std::byte>(arity);
  std::uint8_t mask = 0;
  for (std::size_t i = 0; i < arity; ++i) {
    std::int64_t v = 0;
    if (p != nullptr) {
      if (p->fields[i].has_value()) {
        v = *p->fields[i];
      } else {
        mask |= static_cast<std::uint8_t>(1u << i);
      }
    } else {
      v = t[i];
    }
    std::memcpy(bytes.data() + 3 + i * 8, &v, 8);
  }
  bytes[2] = static_cast<std::byte>(mask);
  return hw::make_payload(std::move(bytes));
}

struct Request {
  std::uint8_t op;
  Tuple tuple;      // kOpOut
  Pattern pattern;  // kOpIn / kOpRd
};

Request decode(const hw::Payload& data) {
  Request r{};
  const auto& b = *data;
  r.op = static_cast<std::uint8_t>(b[0]);
  const auto arity = static_cast<std::size_t>(b[1]);
  const auto mask = static_cast<std::uint8_t>(b[2]);
  for (std::size_t i = 0; i < arity; ++i) {
    std::int64_t v = 0;
    std::memcpy(&v, b.data() + 3 + i * 8, 8);
    if (r.op == kOpOut) {
      r.tuple.push_back(v);
    } else if ((mask & (1u << i)) != 0) {
      r.pattern.fields.push_back(std::nullopt);
    } else {
      r.pattern.fields.push_back(v);
    }
  }
  return r;
}

hw::Payload encode_tuple_reply(const Tuple& t) {
  std::vector<std::byte> bytes(1 + t.size() * 8);
  bytes[0] = static_cast<std::byte>(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    std::memcpy(bytes.data() + 1 + i * 8, &t[i], 8);
  }
  return hw::make_payload(std::move(bytes));
}

Tuple decode_tuple_reply(const hw::Payload& data) {
  Tuple t;
  const auto n = static_cast<std::size_t>((*data)[0]);
  for (std::size_t i = 0; i < n; ++i) {
    std::int64_t v = 0;
    std::memcpy(&v, data->data() + 1 + i * 8, 8);
    t.push_back(v);
  }
  return t;
}

// Server-side shared store.
struct Space {
  std::list<Tuple> tuples;
  struct Waiter {
    Pattern pattern;
    bool take;               // in vs rd
    vorx::Channel* reply_to;
  };
  std::deque<Waiter> waiters;
};

sim::Task<void> reply_tuple(vorx::Subprocess& sp, vorx::Channel& ch,
                            const Tuple& t) {
  hw::Payload payload = encode_tuple_reply(t);
  const auto n = static_cast<std::uint32_t>(payload->size());
  co_await sp.write(ch, n, std::move(payload));
}

// Serves one client connection against the shared space.
sim::Task<void> serve_client(vorx::Subprocess& sp, vorx::Channel* ch,
                             std::shared_ptr<Space> space) {
  for (;;) {
    vorx::ChannelMsg m = co_await sp.read(*ch);
    Request req = decode(m.data);
    switch (req.op) {
      case kOpOut: {
        // Satisfy blocked in()/rd() waiters first, in FIFO order.  One
        // tuple satisfies any number of rd()s plus at most one in().
        bool consumed = false;
        for (auto it = space->waiters.begin(); it != space->waiters.end();) {
          if (consumed || !it->pattern.matches(req.tuple)) {
            ++it;
            continue;
          }
          co_await reply_tuple(sp, *it->reply_to, req.tuple);
          consumed = it->take;
          it = space->waiters.erase(it);
        }
        if (!consumed) space->tuples.push_back(req.tuple);
        co_await sp.write(*ch, 1);  // out() completion ack
        break;
      }
      case kOpIn:
      case kOpRd: {
        const bool take = req.op == kOpIn;
        bool served = false;
        for (auto it = space->tuples.begin(); it != space->tuples.end(); ++it) {
          if (req.pattern.matches(*it)) {
            Tuple t = *it;
            if (take) space->tuples.erase(it);
            co_await reply_tuple(sp, *ch, t);
            served = true;
            break;
          }
        }
        if (!served) {
          space->waiters.push_back(Space::Waiter{req.pattern, take, ch});
        }
        break;
      }
      default:
        assert(false && "bad linda opcode");
    }
  }
}

}  // namespace

vorx::AppFn make_server(std::string space_name) {
  return [space_name](vorx::Subprocess& sp) -> sim::Task<void> {  // vorx-lint: allow(R2) the returned AppFn stores the closure for the server Task's lifetime
    auto space = std::make_shared<Space>();
    vorx::ServerPort* port = co_await sp.open_server(space_name);
    for (;;) {
      vorx::Channel* ch = co_await sp.accept(*port);
      // One serving subprocess per client: a blocked in() must not stall
      // other clients (the §5 structuring lesson).
      sp.process().spawn(
          [ch, space](vorx::Subprocess& server_sp) -> sim::Task<void> {  // vorx-lint: allow(R2) closure is copied into the Process's AppFn, which outlives the Task
            co_await serve_client(server_sp, ch, space);
          },
          sim::prio::kUserDefault, "linda-serve");
    }
  };
}

sim::Task<Client> Client::connect(vorx::Subprocess& sp,
                                  std::string space_name) {
  vorx::Channel* ch = co_await sp.open(space_name);
  co_return Client(ch);
}

sim::Task<Tuple> Client::request(vorx::Subprocess& sp, std::uint8_t op,
                                 const Tuple& t, const Pattern* p) {
  hw::Payload payload = encode(op, t, p);
  const auto n = static_cast<std::uint32_t>(payload->size());
  co_await sp.write(*ch_, n, std::move(payload));
  vorx::ChannelMsg reply = co_await sp.read(*ch_);
  if (op == kOpOut) co_return Tuple{};
  co_return decode_tuple_reply(reply.data);
}

sim::Task<void> Client::out(vorx::Subprocess& sp, Tuple t) {
  (void)co_await request(sp, kOpOut, t, nullptr);
}

sim::Task<Tuple> Client::in(vorx::Subprocess& sp, Pattern p) {
  return request(sp, kOpIn, {}, &p);
}

sim::Task<Tuple> Client::rd(vorx::Subprocess& sp, Pattern p) {
  return request(sp, kOpRd, {}, &p);
}

}  // namespace hpcvorx::apps::linda
