// A Linda tuple space over VORX channels.
//
// §4.1: "when using Meglos, the implementors of Linda needed a different
// type of semantics" — the S/NET Linda kernel (Carriero & Gelernter) lived
// below the channel layer.  This port takes the opposite, portable route
// the paper recommends trying first: implement the tuple space with the
// standard communications environment (a server process reached through a
// reusable server channel name), measure, and only then reach for
// user-defined objects.
//
// Tuples are fixed arity-<=8 integer records; patterns match with
// wildcards.  out() stores a tuple; in() removes a matching tuple; rd()
// copies one.  in()/rd() block until a match exists, with FIFO fairness
// among equal waiters.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "vorx/process.hpp"

namespace hpcvorx::apps::linda {

using Tuple = std::vector<std::int64_t>;

struct Pattern {
  std::vector<std::optional<std::int64_t>> fields;
  [[nodiscard]] bool matches(const Tuple& t) const {
    if (t.size() != fields.size()) return false;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (fields[i].has_value() && *fields[i] != t[i]) return false;
    }
    return true;
  }
};

/// Shorthand: actual value.
[[nodiscard]] inline std::optional<std::int64_t> eq(std::int64_t v) { return v; }
/// Shorthand: wildcard.
[[nodiscard]] inline std::optional<std::int64_t> any() { return std::nullopt; }

/// Returns the server's application function.  Spawn it as a process; it
/// accepts clients on the given name forever (it parks on accept when the
/// simulation drains — harmless).
[[nodiscard]] vorx::AppFn make_server(std::string space_name);

/// Client side: a connection to the tuple-space server.
class Client {
 public:
  /// Opens a connection (the server must be running somewhere).
  [[nodiscard]] static sim::Task<Client> connect(vorx::Subprocess& sp,
                                                 std::string space_name);

  [[nodiscard]] sim::Task<void> out(vorx::Subprocess& sp, Tuple t);
  [[nodiscard]] sim::Task<Tuple> in(vorx::Subprocess& sp, Pattern p);
  [[nodiscard]] sim::Task<Tuple> rd(vorx::Subprocess& sp, Pattern p);

 private:
  explicit Client(vorx::Channel* ch) : ch_(ch) {}
  [[nodiscard]] sim::Task<Tuple> request(vorx::Subprocess& sp,
                                         std::uint8_t op, const Tuple& t,
                                         const Pattern* p);
  vorx::Channel* ch_;
};

}  // namespace hpcvorx::apps::linda
