#include "apps/logic.hpp"

#include <cassert>

#include "sim/random.hpp"

namespace hpcvorx::apps {

Circuit Circuit::random(int blocks, int gates_per_block, int dffs_per_block,
                        int primary_inputs, std::uint64_t seed) {
  assert(dffs_per_block >= 1 && dffs_per_block < gates_per_block);
  Circuit c;
  c.blocks_ = blocks;
  c.gates_per_block_ = gates_per_block;
  c.primary_inputs_ = primary_inputs;
  c.gates_.resize(static_cast<std::size_t>(blocks) * gates_per_block);
  sim::Rng rng(seed);

  for (int b = 0; b < blocks; ++b) {
    const int base = b * gates_per_block;
    // The last dffs_per_block gates of each block are its flip-flops; the
    // rest are combinational, generated in topological (id) order.
    const int comb = gates_per_block - dffs_per_block;
    for (int i = 0; i < gates_per_block; ++i) {
      Gate& g = c.gates_[static_cast<std::size_t>(base + i)];
      auto pick_source = [&]() -> SignalRef {
        // Local earlier gate, any DFF in the whole circuit, or a primary
        // input.  DFF reads use the latched plane, so any block is fine.
        const auto kind = rng.below(3);
        if (kind == 0 && i > 0) {
          return base + static_cast<int>(rng.below(static_cast<std::uint64_t>(i)));
        }
        if (kind == 1) {
          const int db = static_cast<int>(rng.below(static_cast<std::uint64_t>(blocks)));
          const int di = comb + static_cast<int>(rng.below(
                                    static_cast<std::uint64_t>(dffs_per_block)));
          return db * gates_per_block + di;
        }
        return -1 - static_cast<int>(rng.below(
                        static_cast<std::uint64_t>(primary_inputs)));
      };
      if (i >= comb) {
        g.type = GateType::kDff;
        // The D input must be a block-local combinational signal.
        g.a = base + static_cast<int>(rng.below(static_cast<std::uint64_t>(comb)));
        g.b = -1;
      } else {
        g.type = static_cast<GateType>(rng.below(6));
        g.a = pick_source();
        g.b = g.type == GateType::kNot ? -1 : pick_source();
      }
    }
  }
  return c;
}

std::vector<int> Circuit::dffs_in_block(int block) const {
  std::vector<int> out;
  const int base = block * gates_per_block_;
  for (int i = 0; i < gates_per_block_; ++i) {
    if (is_dff(base + i)) out.push_back(base + i);
  }
  return out;
}

std::vector<int> Circuit::boundary(int owner, int reader) const {
  std::vector<int> out;
  if (owner == reader) return out;
  const int rbase = reader * gates_per_block_;
  std::vector<bool> needed(gates_.size(), false);
  for (int i = 0; i < gates_per_block_; ++i) {
    const Gate& g = gates_[static_cast<std::size_t>(rbase + i)];
    for (SignalRef ref : {g.a, g.b}) {
      if (ref >= 0 && block_of(ref) == owner && is_dff(ref)) {
        needed[static_cast<std::size_t>(ref)] = true;
      }
    }
  }
  for (std::size_t id = 0; id < gates_.size(); ++id) {
    if (needed[id]) out.push_back(static_cast<int>(id));
  }
  return out;
}

bool Circuit::input_value(int input, int cycle) {
  // A cheap per-input pattern: bit of a mixed counter (deterministic and
  // computable by every node without communication).
  const std::uint64_t x =
      (static_cast<std::uint64_t>(cycle) + 1) * 0x9e3779b97f4a7c15ULL ^
      (static_cast<std::uint64_t>(input) * 0xbf58476d1ce4e5b9ULL);
  return ((x >> 17) & 1) != 0;
}

bool Circuit::resolve(SignalRef ref, const std::vector<bool>& values,
                      const std::vector<bool>& latched, int cycle) const {
  if (ref < 0) return input_value(-1 - ref, cycle);
  if (is_dff(ref)) return latched[static_cast<std::size_t>(ref)];
  return values[static_cast<std::size_t>(ref)];
}

bool Circuit::eval_gate(int gate, const std::vector<bool>& values,
                        const std::vector<bool>& latched, int cycle) const {
  const Gate& g = gates_[static_cast<std::size_t>(gate)];
  const bool a = resolve(g.a, values, latched, cycle);
  switch (g.type) {
    case GateType::kNot: return !a;
    case GateType::kAnd: return a && resolve(g.b, values, latched, cycle);
    case GateType::kOr: return a || resolve(g.b, values, latched, cycle);
    case GateType::kXor: return a != resolve(g.b, values, latched, cycle);
    case GateType::kNand: return !(a && resolve(g.b, values, latched, cycle));
    case GateType::kNor: return !(a || resolve(g.b, values, latched, cycle));
    case GateType::kDff: break;
  }
  assert(false && "eval_gate on a flip-flop");
  return false;
}

std::uint64_t Circuit::simulate_serial(int cycles) const {
  const auto n = gates_.size();
  std::vector<bool> values(n, false);   // combinational plane, this cycle
  std::vector<bool> latched(n, false);  // DFF outputs, latched
  std::vector<std::uint64_t> block_hash(static_cast<std::size_t>(blocks_),
                                        0xcbf29ce484222325ULL);
  for (int t = 0; t < cycles; ++t) {
    // Latch: every DFF takes its D value from the previous cycle's plane.
    std::vector<bool> next_latched = latched;
    for (std::size_t g = 0; g < n; ++g) {
      if (gates_[g].type == GateType::kDff) {
        next_latched[g] = values[static_cast<std::size_t>(gates_[g].a)];
      }
    }
    latched = std::move(next_latched);
    // Evaluate combinational gates in id order (generation guarantees
    // topological validity), folding the trace per block.
    for (int b = 0; b < blocks_; ++b) {
      const int base = b * gates_per_block_;
      for (int i = 0; i < gates_per_block_; ++i) {
        const int g = base + i;
        bool v;
        if (is_dff(g)) {
          v = latched[static_cast<std::size_t>(g)];
        } else {
          v = eval_gate(g, values, latched, t);
          values[static_cast<std::size_t>(g)] = v;
        }
        block_hash[static_cast<std::size_t>(b)] =
            fold_bit(block_hash[static_cast<std::size_t>(b)], v);
      }
    }
  }
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint64_t bh : block_hash) {
    h ^= bh;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace hpcvorx::apps
