// Gate-level logic simulation — the CEMU workload (§4.1/§5; ref [15],
// "MOS Timing Simulation on a Message Based Multiprocessor").
//
// Circuits are generated as P register-bounded blocks: combinational
// gates read only block-local signals, primary inputs (global LFSR
// patterns computable anywhere), and D-flip-flop outputs (from any block,
// latched at the cycle boundary).  Cross-block communication in the
// distributed simulator (cemu_app) is therefore exactly the latched DFF
// values — the message-based structure the CEMU work used.
#pragma once

#include <cstdint>
#include <vector>

namespace hpcvorx::apps {

enum class GateType : std::uint8_t {
  kNot,
  kAnd,
  kOr,
  kXor,
  kNand,
  kNor,
  kDff,  // out(t) = D-input value as of the end of cycle t-1
};

/// Signal reference: >= 0 is gate output `id`; < 0 is primary input
/// -(k+1) whose value is a pure function of (input k, cycle).
using SignalRef = int;

struct Gate {
  GateType type = GateType::kNot;
  SignalRef a = -1;
  SignalRef b = -1;  // unused for kNot / kDff
};

/// A register-bounded partitioned circuit.
class Circuit {
 public:
  /// Deterministic random circuit: `blocks` partitions, each with
  /// `gates_per_block` gates of which `dffs_per_block` are flip-flops.
  static Circuit random(int blocks, int gates_per_block, int dffs_per_block,
                        int primary_inputs, std::uint64_t seed);

  [[nodiscard]] int blocks() const { return blocks_; }
  [[nodiscard]] int gates_per_block() const { return gates_per_block_; }
  [[nodiscard]] int num_gates() const { return static_cast<int>(gates_.size()); }
  [[nodiscard]] int primary_inputs() const { return primary_inputs_; }
  [[nodiscard]] const std::vector<Gate>& gates() const { return gates_; }
  [[nodiscard]] int block_of(int gate) const { return gate / gates_per_block_; }
  [[nodiscard]] bool is_dff(int gate) const {
    return gates_[static_cast<std::size_t>(gate)].type == GateType::kDff;
  }

  /// All DFF gate ids in `block`.
  [[nodiscard]] std::vector<int> dffs_in_block(int block) const;

  /// DFF ids owned by `owner` whose latched value some gate in `reader`
  /// references (the distributed simulator's boundary set).
  [[nodiscard]] std::vector<int> boundary(int owner, int reader) const;

  /// Primary-input value at a cycle (a per-input LFSR bit) — a pure
  /// function every node can evaluate locally.
  [[nodiscard]] static bool input_value(int input, int cycle);

  /// Evaluates one combinational gate given current signal values and the
  /// latched DFF plane.
  [[nodiscard]] bool eval_gate(int gate, const std::vector<bool>& values,
                               const std::vector<bool>& latched,
                               int cycle) const;

  /// Serial reference simulation: runs `cycles`, returning a checksum
  /// folded over every gate value at every cycle.
  [[nodiscard]] std::uint64_t simulate_serial(int cycles) const;

 private:
  [[nodiscard]] bool resolve(SignalRef ref, const std::vector<bool>& values,
                             const std::vector<bool>& latched, int cycle) const;

  int blocks_ = 0;
  int gates_per_block_ = 0;
  int primary_inputs_ = 0;
  std::vector<Gate> gates_;
};

/// Folds one gate value into a running trace checksum.
[[nodiscard]] inline std::uint64_t fold_bit(std::uint64_t h, bool bit) {
  h ^= bit ? 0x9e3779b97f4a7c15ULL : 0x517cc1b727220a95ULL;
  h *= 0x100000001b3ULL;
  return h;
}

}  // namespace hpcvorx::apps
