#include "apps/sparse.hpp"

#include <cassert>
#include <cmath>

#include "sim/random.hpp"

namespace hpcvorx::apps {

void CsrMatrix::matvec(std::span<const double> x, std::span<double> y) const {
  matvec_rows(0, n_, x, y);
}

void CsrMatrix::matvec_rows(int r0, int r1, std::span<const double> x,
                            std::span<double> y) const {
  assert(static_cast<int>(x.size()) == n_);
  assert(static_cast<int>(y.size()) == n_);
  for (int r = r0; r < r1; ++r) {
    double acc = 0;
    for (int i = row_ptr_[static_cast<std::size_t>(r)];
         i < row_ptr_[static_cast<std::size_t>(r) + 1]; ++i) {
      acc += val_[static_cast<std::size_t>(i)] *
             x[static_cast<std::size_t>(col_[static_cast<std::size_t>(i)])];
    }
    y[static_cast<std::size_t>(r)] = acc;
  }
}

CsrMatrix make_grid_laplacian(int nx, int ny, double diag_shift) {
  const int n = nx * ny;
  std::vector<int> row_ptr{0};
  std::vector<int> col;
  std::vector<double> val;
  for (int y = 0; y < ny; ++y) {
    for (int x = 0; x < nx; ++x) {
      const int r = y * nx + x;
      // Row entries in column order for determinism.
      if (y > 0) {
        col.push_back(r - nx);
        val.push_back(-1.0);
      }
      if (x > 0) {
        col.push_back(r - 1);
        val.push_back(-1.0);
      }
      col.push_back(r);
      val.push_back(4.0 + diag_shift);
      if (x + 1 < nx) {
        col.push_back(r + 1);
        val.push_back(-1.0);
      }
      if (y + 1 < ny) {
        col.push_back(r + nx);
        val.push_back(-1.0);
      }
      row_ptr.push_back(static_cast<int>(col.size()));
    }
  }
  return CsrMatrix(n, std::move(row_ptr), std::move(col), std::move(val));
}

std::vector<double> make_rhs(int n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (double& v : b) v = rng.uniform() * 2.0 - 1.0;
  return b;
}

double dot(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(std::span<const double> v) { return std::sqrt(dot(v, v)); }

CgResult conjugate_gradient(const CsrMatrix& a, std::span<const double> b,
                            double tol, int max_iter) {
  const auto n = static_cast<std::size_t>(a.n());
  CgResult res;
  res.x.assign(n, 0.0);
  std::vector<double> r(b.begin(), b.end());
  std::vector<double> p = r;
  std::vector<double> ap(n);
  double rr = dot(r, r);
  const double stop = tol * tol * dot(b, b);
  for (int it = 0; it < max_iter; ++it) {
    if (rr <= stop) {
      res.converged = true;
      break;
    }
    a.matvec(p, ap);
    const double alpha = rr / dot(p, ap);
    for (std::size_t i = 0; i < n; ++i) {
      res.x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    const double rr_new = dot(r, r);
    const double beta = rr_new / rr;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    rr = rr_new;
    res.iterations = it + 1;
  }
  res.converged = res.converged || rr <= stop;
  res.residual = std::sqrt(rr);
  return res;
}

}  // namespace hpcvorx::apps
