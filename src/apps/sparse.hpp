// Sparse linear algebra for the parallel-SPICE experiment (§4.1).
//
// "User-defined communications objects were successfully used in a
// parallel implementation of SPICE that needed very low latency
// communications to solve large sparse linear systems."
//
// The kernels here — CSR matrices, 5-point grid Laplacians (the classic
// circuit-like SPD structure), and a conjugate-gradient solver — are what
// the simulated nodes execute in spice_app; the distributed solve is
// verified against the serial solver.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/time.hpp"

namespace hpcvorx::apps {

/// Compressed-sparse-row square matrix.
class CsrMatrix {
 public:
  CsrMatrix(int n, std::vector<int> row_ptr, std::vector<int> col,
            std::vector<double> val)
      : n_(n), row_ptr_(std::move(row_ptr)), col_(std::move(col)),
        val_(std::move(val)) {}

  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] std::size_t nnz() const { return val_.size(); }

  /// y = A x (whole matrix).
  void matvec(std::span<const double> x, std::span<double> y) const;

  /// y[r0..r1) = (A x)[r0..r1) — the row-block form the distributed solver
  /// uses.
  void matvec_rows(int r0, int r1, std::span<const double> x,
                   std::span<double> y) const;

  [[nodiscard]] const std::vector<int>& row_ptr() const { return row_ptr_; }
  [[nodiscard]] const std::vector<int>& col() const { return col_; }
  [[nodiscard]] const std::vector<double>& val() const { return val_; }

 private:
  int n_;
  std::vector<int> row_ptr_;
  std::vector<int> col_;
  std::vector<double> val_;
};

/// SPD 5-point Laplacian on an nx x ny grid with a diagonal shift — the
/// standard stand-in for a nodal circuit conductance matrix.
[[nodiscard]] CsrMatrix make_grid_laplacian(int nx, int ny,
                                            double diag_shift = 0.1);

/// Deterministic right-hand side.
[[nodiscard]] std::vector<double> make_rhs(int n, std::uint64_t seed);

struct CgResult {
  std::vector<double> x;
  int iterations = 0;
  double residual = 0;
  bool converged = false;
};

/// Serial conjugate gradients (reference for the distributed solver).
[[nodiscard]] CgResult conjugate_gradient(const CsrMatrix& a,
                                          std::span<const double> b,
                                          double tol = 1e-10,
                                          int max_iter = 1000);

[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b);
[[nodiscard]] double norm2(std::span<const double> v);

/// Virtual-time cost of `flops` floating-point operations on the 68882
/// (~0.1 MFLOPS for mixed loads => 10 us per flop).
[[nodiscard]] constexpr sim::Duration flop_cost(std::int64_t flops) {
  return flops * sim::usec(10);
}

}  // namespace hpcvorx::apps
