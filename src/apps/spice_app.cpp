#include "apps/spice_app.hpp"

#include <cassert>
#include <cmath>
#include <cstring>
#include <memory>

#include "vorx/node.hpp"
#include "vorx/udco.hpp"

namespace hpcvorx::apps {

namespace {

hw::Payload pack_doubles(const double* src, std::size_t count) {
  std::vector<std::byte> bytes(count * sizeof(double));
  std::memcpy(bytes.data(), src, bytes.size());
  return hw::make_payload(std::move(bytes));
}

void unpack_doubles(const hw::Payload& data, double* dst, std::size_t count) {
  assert(data->size() == count * sizeof(double));
  std::memcpy(dst, data->data(), data->size());
}

// One point-to-point connection over either transport.
struct Pipe {
  vorx::Udco* u = nullptr;
  vorx::Channel* c = nullptr;

  sim::Task<void> send(vorx::Subprocess& sp, const double* v, std::size_t n) {
    const auto bytes = static_cast<std::uint32_t>(n * sizeof(double));
    if (u != nullptr) {
      co_await u->send(sp, bytes, pack_doubles(v, n));
    } else {
      co_await sp.write(*c, bytes, pack_doubles(v, n));
    }
  }

  sim::Task<void> recv(vorx::Subprocess& sp, double* v, std::size_t n) {
    if (u != nullptr) {
      hw::Frame f = co_await u->recv(sp);
      unpack_doubles(f.data, v, n);
    } else {
      vorx::ChannelMsg m = co_await sp.read(*c);
      unpack_doubles(m.data, v, n);
    }
  }
};

struct Shared {
  SpiceConfig cfg;
  const CsrMatrix* a = nullptr;
  const std::vector<double>* b = nullptr;
  std::vector<double> x;  // assembled distributed solution
  int iterations = 0;
  double residual = 0;
  bool converged = false;
  std::uint64_t halo_messages = 0;
};

// Opens a pipe to `peer` named canonically; both ends call this.
sim::Task<Pipe> open_pipe(vorx::Subprocess& sp, bool use_channels,
                          const std::string& tag, int a, int b) {
  const std::string name = tag + std::to_string(std::min(a, b)) + "_" +
                           std::to_string(std::max(a, b));
  Pipe p;
  if (use_channels) {
    p.c = co_await sp.open(name);
  } else {
    p.u = co_await sp.open_udco(name);
  }
  co_return p;
}

sim::Task<void> spice_node(vorx::Subprocess& sp, std::shared_ptr<Shared> st,
                           int me, std::shared_ptr<sim::Gate> done) {
  const SpiceConfig& cfg = st->cfg;
  const int nx = cfg.nx;
  const int p = cfg.p;
  const int rows_per = cfg.ny / p;        // grid rows per node
  const int block = nx * rows_per;        // unknowns per node
  const int n = nx * cfg.ny;
  const int lo = me * block;
  const int hi = lo + block;
  const CsrMatrix& a = *st->a;

  // Connections: halo pipes to grid neighbours, reduction pipe to rank 0.
  Pipe up, down, red;
  if (me > 0) up = co_await open_pipe(sp, cfg.use_channels, "halo", me - 1, me);
  if (me + 1 < p) {
    down = co_await open_pipe(sp, cfg.use_channels, "halo", me, me + 1);
  }
  std::vector<Pipe> red_links;  // rank 0 only: to every other rank
  if (me == 0) {
    for (int k = 1; k < p; ++k) {
      red_links.push_back(
          co_await open_pipe(sp, cfg.use_channels, "red", 0, k));
    }
  } else {
    red = co_await open_pipe(sp, cfg.use_channels, "red", 0, me);
  }

  // Sum-reduce a local scalar across all nodes (rank-ordered for
  // determinism), then broadcast the total.
  auto allreduce = [&](double local) -> sim::Task<double> {  // vorx-lint: allow(R2) stack-local helper; the closure outlives every co_await of its Task
    if (p == 1) co_return local;
    if (me == 0) {
      double total = local;
      for (int k = 1; k < p; ++k) {
        double v = 0;
        co_await red_links[static_cast<std::size_t>(k - 1)].recv(sp, &v, 1);
        total += v;
      }
      for (int k = 1; k < p; ++k) {
        co_await red_links[static_cast<std::size_t>(k - 1)].send(sp, &total, 1);
      }
      co_return total;
    }
    co_await red.send(sp, &local, 1);
    double total = 0;
    co_await red.recv(sp, &total, 1);
    co_return total;
  };

  // Exchange one halo row (nx doubles) of `v` with both neighbours.
  auto halo_exchange = [&](std::vector<double>& v) -> sim::Task<void> {  // vorx-lint: allow(R2) stack-local helper; the closure outlives every co_await of its Task
    if (me > 0) {
      co_await up.send(sp, v.data() + lo, static_cast<std::size_t>(nx));
      ++st->halo_messages;
    }
    if (me + 1 < p) {
      co_await down.send(sp, v.data() + hi - nx, static_cast<std::size_t>(nx));
      ++st->halo_messages;
    }
    if (me > 0) {
      co_await up.recv(sp, v.data() + lo - nx, static_cast<std::size_t>(nx));
    }
    if (me + 1 < p) {
      co_await down.recv(sp, v.data() + hi, static_cast<std::size_t>(nx));
    }
  };

  auto local_dot = [&](const std::vector<double>& u2,
                       const std::vector<double>& v2) {
    double acc = 0;
    for (int i = lo; i < hi; ++i) {
      acc += u2[static_cast<std::size_t>(i)] * v2[static_cast<std::size_t>(i)];
    }
    return acc;
  };

  // CG state: full-length vectors, only [lo, hi) + halos meaningful.
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  std::vector<double> r(st->b->begin(), st->b->end());
  std::vector<double> pv = r;
  std::vector<double> ap(static_cast<std::size_t>(n), 0.0);

  co_await sp.compute(flop_cost(2 * block));  // local dot flops
  double rr = co_await allreduce(local_dot(r, r));
  const double stop = cfg.tol * cfg.tol * (co_await allreduce(local_dot(r, r)));

  int it = 0;
  for (; it < cfg.max_iter && rr > stop; ++it) {
    co_await halo_exchange(pv);
    // Local sparse matvec: ~9 flops per 5-point row.
    co_await sp.compute(flop_cost(9 * block));
    a.matvec_rows(lo, hi, pv, ap);
    co_await sp.compute(flop_cost(2 * block));
    const double pap = co_await allreduce(local_dot(pv, ap));
    const double alpha = rr / pap;
    co_await sp.compute(flop_cost(4 * block));
    for (int i = lo; i < hi; ++i) {
      x[static_cast<std::size_t>(i)] += alpha * pv[static_cast<std::size_t>(i)];
      r[static_cast<std::size_t>(i)] -= alpha * ap[static_cast<std::size_t>(i)];
    }
    co_await sp.compute(flop_cost(2 * block));
    const double rr_new = co_await allreduce(local_dot(r, r));
    const double beta = rr_new / rr;
    co_await sp.compute(flop_cost(2 * block));
    for (int i = lo; i < hi; ++i) {
      pv[static_cast<std::size_t>(i)] =
          r[static_cast<std::size_t>(i)] + beta * pv[static_cast<std::size_t>(i)];
    }
    rr = rr_new;
  }

  // Publish my block of the solution.
  for (int i = lo; i < hi; ++i) {
    st->x[static_cast<std::size_t>(i)] = x[static_cast<std::size_t>(i)];
  }
  if (me == 0) {
    st->iterations = it;
    st->residual = std::sqrt(rr);
    st->converged = rr <= stop;
  }
  done->arrive();
}

}  // namespace

SpiceResult run_spice(sim::Simulator& sim, vorx::System& sys,
                      const SpiceConfig& cfg) {
  assert(cfg.ny % cfg.p == 0 && sys.num_nodes() >= cfg.p);
  const CsrMatrix a = make_grid_laplacian(cfg.nx, cfg.ny);
  const std::vector<double> b = make_rhs(a.n(), cfg.seed);

  auto st = std::make_shared<Shared>();
  st->cfg = cfg;
  st->a = &a;
  st->b = &b;
  st->x.assign(static_cast<std::size_t>(a.n()), 0.0);

  auto done = std::make_shared<sim::Gate>(sim, static_cast<std::size_t>(cfg.p));
  const sim::SimTime started = sim.now();
  for (int i = 0; i < cfg.p; ++i) {
    sys.node(i).spawn_process(
        "spice." + std::to_string(i),
        [st, i, done](vorx::Subprocess& sp) -> sim::Task<void> {  // vorx-lint: allow(R2) closure is copied into the Process's AppFn, which outlives the Task
          co_await spice_node(sp, st, i, done);
        });
  }
  sim.run();

  SpiceResult res;
  res.elapsed = sim.now() - started;
  res.iterations = st->iterations;
  res.residual = st->residual;
  res.converged = st->converged;
  res.halo_messages = st->halo_messages;

  const CgResult serial = conjugate_gradient(a, b, cfg.tol, cfg.max_iter);
  double diff = 0;
  for (std::size_t i = 0; i < st->x.size(); ++i) {
    diff = std::max(diff, std::fabs(st->x[i] - serial.x[i]));
  }
  res.matches_serial = serial.converged == res.converged && diff < 1e-6;
  return res;
}

}  // namespace hpcvorx::apps
