// The parallel-SPICE experiment (§4.1): a distributed sparse solve with
// very low latency communications.
//
// "User-defined communications objects were successfully used in a
// parallel implementation of SPICE that needed very low latency
// communications to solve large sparse linear systems.  It was able to
// obtain 60 usec software latencies for 64 byte messages with direct
// access to the communications hardware and no low-level protocol."
//
// The solver is conjugate gradients on a grid-Laplacian conductance
// matrix, row-block partitioned; each iteration exchanges 64-byte halo
// messages with neighbours and reduces two dot products.  Both transports
// are available — raw user-defined objects (the paper's choice) and
// standard channels — so the latency difference shows up directly in the
// solve time.
#pragma once

#include <cstdint>

#include "apps/sparse.hpp"
#include "vorx/system.hpp"

namespace hpcvorx::apps {

struct SpiceConfig {
  int nx = 8;    // grid width: 8 doubles = the paper's 64-byte messages
  int ny = 64;   // grid height (divisible by p)
  int p = 4;     // processing nodes
  bool use_channels = false;  // false: raw user-defined objects
  double tol = 1e-10;
  int max_iter = 400;
  std::uint64_t seed = 11;
};

struct SpiceResult {
  sim::Duration elapsed = 0;
  int iterations = 0;
  double residual = 0;
  bool converged = false;
  bool matches_serial = false;        // same iterate as the serial CG
  std::uint64_t halo_messages = 0;    // neighbour exchanges performed
};

[[nodiscard]] SpiceResult run_spice(sim::Simulator& sim, vorx::System& sys,
                                    const SpiceConfig& cfg);

}  // namespace hpcvorx::apps
