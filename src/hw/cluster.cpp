#include "hw/cluster.hpp"

#include <algorithm>

namespace hpcvorx::hw {

Cluster::Cluster(sim::Simulator& sim, std::string name, int num_ports)
    : sim_(sim),
      name_(std::move(name)),
      ins_(num_ports, nullptr),
      outs_(num_ports, nullptr),
      rr_next_(num_ports, 0),
      hol_since_(num_ports, -1) {}

// Consumes the head of `in_port`, closing its head-of-line wait span and
// opening one for the next frame (if any).  All cluster forwarding paths
// must take input frames through here so the blocked-time counter is exact.
Frame Cluster::take_input(int in_port) {
  const auto p = static_cast<std::size_t>(in_port);
  if (hol_since_[p] >= 0) {
    hol_blocked_ += sim_.now() - hol_since_[p];
    hol_since_[p] = -1;
  }
  Frame f = *ins_[p]->take();
  if (ins_[p]->peek() != nullptr) hol_since_[p] = sim_.now();
  return f;
}

// Samples the cumulative forwarding counters after a forward completed.
void Cluster::sample_forwarded() {
  sim::CounterTimeline& ct = sim_.counters();
  if (!ct.enabled()) return;
  ct.sample(name_, "kbytes_forwarded", sim_.now(),
            static_cast<double>(bytes_fwd_) / 1e3);
  ct.sample(name_, "hol_blocked_us", sim_.now(), sim::to_usec(hol_blocked_));
}

// Samples the in-switch replica count for one group after a replication.
void Cluster::sample_mcast_copies(std::uint64_t gid) {
  sim::CounterTimeline& ct = sim_.counters();
  if (!ct.enabled()) return;
  ct.sample(name_, "mcast_copies.g" + std::to_string(gid), sim_.now(),
            static_cast<double>(mcast_copies_[gid]));
}

void Cluster::attach_in(int port, Link* in) {
  assert(port >= 0 && port < num_ports() && ins_[port] == nullptr);
  ins_[port] = in;
  in->set_deliver_cb([this, port] { on_input(port); });
}

void Cluster::attach_out(int port, Link* out) {
  assert(port >= 0 && port < num_ports() && outs_[port] == nullptr);
  outs_[port] = out;
  out->set_ready_cb([this, port] { try_output(port); });
}

void Cluster::set_route(StationId dst, int out_port) {
  assert(dst >= 0);
  if (static_cast<std::size_t>(dst) >= route_.size()) {
    route_.resize(static_cast<std::size_t>(dst) + 1, -1);
  }
  route_[static_cast<std::size_t>(dst)] = out_port;
}

void Cluster::set_multicast_route(std::uint64_t gid,
                                  std::vector<int> out_ports) {
  mcast_routes_[gid] = std::move(out_ports);
}

const std::vector<int>* Cluster::mcast_route_for(const Frame& f) const {
  auto it = mcast_routes_.find(f.group);
  assert(it != mcast_routes_.end() &&
         "group frame at a cluster with no multicast route");
  return &it->second;
}

int Cluster::route_for(const Frame& f) const {
  assert(f.dst >= 0 && static_cast<std::size_t>(f.dst) < route_.size() &&
         "frame addressed to a station this cluster never had a route for");
  return route_[static_cast<std::size_t>(f.dst)];
}

// Consumes the head of `in_port` as a routing-fault loss: unreachable
// destination after rerouting, or a restart() wiping the fifo.
void Cluster::drop_head(int in_port) {
  (void)take_input(in_port);
  ++frames_dropped_;
}

void Cluster::drop_unroutable(int in_port) {
  while (const Frame* head = ins_[in_port]->peek()) {
    if (head->group != 0 || route_for(*head) >= 0) return;
    drop_head(in_port);
  }
}

void Cluster::restart() {
  for (int p = 0; p < num_ports(); ++p) {
    if (ins_[static_cast<std::size_t>(p)] == nullptr) continue;
    // Draining through take() (not take_input) keeps the upstream
    // flow-control exact — freed slots notify the sender / credit the peer
    // shard — while the head-of-line clocks simply reset.
    while (ins_[static_cast<std::size_t>(p)]->take()) ++frames_dropped_;
    hol_since_[static_cast<std::size_t>(p)] = -1;
  }
  std::fill(rr_next_.begin(), rr_next_.end(), 0);
}

void Cluster::on_routes_changed() {
  for (int p = 0; p < num_ports(); ++p) {
    if (ins_[static_cast<std::size_t>(p)] != nullptr) drop_unroutable(p);
  }
  for (int p = 0; p < num_ports(); ++p) {
    if (outs_[static_cast<std::size_t>(p)] != nullptr) try_output(p);
  }
}

void Cluster::on_input(int in_port) {
  const Frame* head = ins_[in_port]->peek();
  if (head == nullptr) return;  // already forwarded by a nested callback
  // Open the head-of-line wait span now; take_input closes it (a frame
  // forwarded within this event cascade accrues zero, as time stands still).
  if (hol_since_[static_cast<std::size_t>(in_port)] < 0) {
    hol_since_[static_cast<std::size_t>(in_port)] = sim_.now();
  }
  if (head->group != 0) {
    forward_head(in_port);
    return;
  }
  const int r = route_for(*head);
  if (r < 0) {
    drop_unroutable(in_port);
    return;
  }
  try_output(r);
}

// Attempts to forward the head frame of `in_port`; handles both unicast
// and multicast heads.  Returns true if the head was consumed.
bool Cluster::forward_head(int in_port) {
  const Frame* head = ins_[in_port]->peek();
  if (head == nullptr) return false;
  if (head->group == 0) {
    const int r = route_for(*head);
    if (r < 0) {
      drop_unroutable(in_port);
      return true;
    }
    try_output(r);
    return ins_[in_port]->peek() != head;
  }
  // Hardware multicast: the frame is replicated to every port in the
  // group's replication set, and may proceed only when *all* of them can
  // accept a whole frame (replication cannot be half-done).
  const std::vector<int>& ports = *mcast_route_for(*head);
  for (int p : ports) {
    if (outs_[static_cast<std::size_t>(p)] == nullptr ||
        !outs_[static_cast<std::size_t>(p)]->ready()) {
      return false;
    }
  }
  Frame f = take_input(in_port);
  ++f.hops;
  for (int p : ports) {
    ++forwarded_;
    bytes_fwd_ += f.wire_bytes();
    outs_[static_cast<std::size_t>(p)]->send(f);
  }
  // Replica accounting: k output ports -> k counted above, and the same k
  // attributed to the frame's group (see the invariant in cluster.hpp).
  const auto copies = static_cast<std::uint64_t>(ports.size());
  mcast_copies_[f.group] += copies;
  mcast_copies_total_ += copies;
  sample_forwarded();
  sample_mcast_copies(f.group);
  // The next head may be unicast or multicast; give it a chance now.
  if (const Frame* next = ins_[in_port]->peek()) {
    if (next->group != 0) {
      forward_head(in_port);
    } else {
      const int r = route_for(*next);
      if (r < 0) {
        drop_unroutable(in_port);
      } else {
        try_output(r);
      }
    }
  }
  return true;
}

void Cluster::try_output(int out_port) {
  Link* out = outs_[out_port];
  if (out == nullptr) return;
  // Keep forwarding while the output link can accept frames and some input
  // port's head-of-line frame routes here.  Scanning starts at the
  // round-robin cursor so all inputs get fair service under contention.
  while (out->ready()) {
    const int n = num_ports();
    int chosen = -1;
    for (int i = 0; i < n; ++i) {
      const int p = (rr_next_[out_port] + i) % n;
      if (ins_[p] == nullptr) continue;
      const Frame* head = ins_[p]->peek();
      if (head == nullptr) continue;
      if (head->group != 0) {
        // A multicast head whose replication set includes this port may
        // now be able to go (this port just became ready).
        const std::vector<int>& ports = *mcast_route_for(*head);
        if (std::find(ports.begin(), ports.end(), out_port) != ports.end()) {
          if (forward_head(p) && !out->ready()) return;
        }
        continue;
      }
      const int r = route_for(*head);
      if (r < 0) {
        // Destination became unreachable while the frame queued: drop it
        // and re-examine this input's new head on the next scan step.
        drop_unroutable(p);
        --i;
        continue;
      }
      if (r == out_port) {
        chosen = p;
        break;
      }
    }
    if (chosen < 0) return;
    rr_next_[out_port] = (chosen + 1) % n;
    Frame f = take_input(chosen);  // frees the input slot upstream
    ++f.hops;
    ++forwarded_;
    bytes_fwd_ += f.wire_bytes();
    out->send(f);
    sample_forwarded();
    // Head-of-line unblocking: the frame now at the head of this input may
    // route to a *different* output that has been idle all along (so its
    // ready callback will never fire).  Kick that output's arbiter.
    if (const Frame* next_head = ins_[chosen]->peek()) {
      if (next_head->group != 0) {
        forward_head(chosen);
      } else {
        const int other = route_for(*next_head);
        if (other < 0) {
          drop_unroutable(chosen);
        } else if (other != out_port) {
          try_output(other);
        }
      }
    }
  }
}

}  // namespace hpcvorx::hw
