#include "hw/cluster.hpp"

#include <algorithm>

namespace hpcvorx::hw {

Cluster::Cluster(sim::Simulator& sim, std::string name, int num_ports)
    : sim_(sim),
      name_(std::move(name)),
      ins_(num_ports, nullptr),
      outs_(num_ports, nullptr),
      rr_next_(num_ports, 0),
      out_hold_(num_ports, 0),
      head_route_(num_ports, -1),
      head_route_ok_(num_ports, 0),
      hol_since_(num_ports, -1) {}

// Consumes the head of `in_port`, closing its head-of-line wait span and
// opening one for the next frame (if any).  All cluster forwarding paths
// must take input frames through here so the blocked-time counter is exact
// and the head's cached route decision is retired with it.
Frame Cluster::take_input(int in_port) {
  const auto p = static_cast<std::size_t>(in_port);
  if (hol_since_[p] >= 0) {
    hol_blocked_ += sim_.now() - hol_since_[p];
    hol_since_[p] = -1;
  }
  head_route_ok_[p] = 0;
  Frame f = *ins_[p]->take();
  if (ins_[p]->peek() != nullptr) hol_since_[p] = sim_.now();
  return f;
}

// Samples the cumulative forwarding counters after a forward completed.
void Cluster::sample_forwarded() {
  sim::CounterTimeline& ct = sim_.counters();
  if (!ct.enabled()) return;
  ct.sample(name_, "kbytes_forwarded", sim_.now(),
            static_cast<double>(bytes_fwd_) / 1e3);
  ct.sample(name_, "hol_blocked_us", sim_.now(), sim::to_usec(hol_blocked_));
}

// Samples the in-switch replica count for one group after a replication.
void Cluster::sample_mcast_copies(std::uint64_t gid) {
  sim::CounterTimeline& ct = sim_.counters();
  if (!ct.enabled()) return;
  ct.sample(name_, "mcast_copies.g" + std::to_string(gid), sim_.now(),
            static_cast<double>(mcast_copies_[gid]));
}

void Cluster::attach_in(int port, Link* in) {
  assert(port >= 0 && port < num_ports() && ins_[port] == nullptr);
  ins_[port] = in;
  in->set_deliver_cb([this, port] { on_input(port); });
}

void Cluster::attach_out(int port, Link* out) {
  assert(port >= 0 && port < num_ports() && outs_[port] == nullptr);
  outs_[port] = out;
  out->set_ready_cb([this, port] { try_output(port); });
}

void Cluster::set_multicast_route(std::uint64_t gid,
                                  std::vector<int> out_ports) {
  mcast_routes_[gid] = std::move(out_ports);
}

const std::vector<int>* Cluster::mcast_route_for(const Frame& f) const {
  auto it = mcast_routes_.find(f.group);
  assert(it != mcast_routes_.end() &&
         "group frame at a cluster with no multicast route");
  return &it->second;
}

int Cluster::head_route(int in_port) {
  const auto p = static_cast<std::size_t>(in_port);
  if (head_route_ok_[p] == 0) {
    const Frame* head = ins_[p]->peek();
    assert(head != nullptr && "head_route with an empty input fifo");
    assert(route_fn_ && "cluster forwarding before set_route_fn");
    assert(head->dst >= 0);
    head_route_[p] = route_fn_(*head);
    head_route_ok_[p] = 1;
  }
  return head_route_[p];
}

// Consumes the head of `in_port` as a routing-fault loss: unreachable
// destination after rerouting, or a restart() wiping the fifo.
void Cluster::drop_head(int in_port) {
  (void)take_input(in_port);
  ++frames_dropped_;
}

void Cluster::drop_unroutable(int in_port) {
  while (const Frame* head = ins_[in_port]->peek()) {
    if (head->group != 0 || head_route(in_port) >= 0) return;
    drop_head(in_port);
  }
}

void Cluster::restart() {
  for (int p = 0; p < num_ports(); ++p) {
    if (ins_[static_cast<std::size_t>(p)] == nullptr) continue;
    // Draining through take() (not take_input) keeps the upstream
    // flow-control exact — freed slots notify the sender / credit the peer
    // shard — while the head-of-line clocks simply reset.
    while (ins_[static_cast<std::size_t>(p)]->take()) ++frames_dropped_;
    hol_since_[static_cast<std::size_t>(p)] = -1;
    head_route_ok_[static_cast<std::size_t>(p)] = 0;
  }
  std::fill(rr_next_.begin(), rr_next_.end(), 0);
}

void Cluster::on_routes_changed() {
  // Every cached head decision may reference a dead route: retire them all
  // so the next touch re-resolves against the post-fault tables.
  std::fill(head_route_ok_.begin(), head_route_ok_.end(), char{0});
  for (int p = 0; p < num_ports(); ++p) {
    if (ins_[static_cast<std::size_t>(p)] != nullptr) drop_unroutable(p);
  }
  for (int p = 0; p < num_ports(); ++p) {
    if (outs_[static_cast<std::size_t>(p)] != nullptr) try_output(p);
  }
}

void Cluster::on_input(int in_port) {
  const Frame* head = ins_[in_port]->peek();
  if (head == nullptr) return;  // already forwarded by a nested callback
  // Open the head-of-line wait span now; take_input closes it (a frame
  // forwarded within this event cascade accrues zero, as time stands still).
  if (hol_since_[static_cast<std::size_t>(in_port)] < 0) {
    hol_since_[static_cast<std::size_t>(in_port)] = sim_.now();
  }
  if (head->group != 0) {
    forward_head(in_port);
    return;
  }
  const int r = head_route(in_port);
  if (r < 0) {
    drop_unroutable(in_port);
    return;
  }
  try_output(r);
}

// Attempts to forward the head frame of `in_port`; handles both unicast
// and multicast heads.  Returns true if the head was consumed.
bool Cluster::forward_head(int in_port) {
  const Frame* head = ins_[in_port]->peek();
  if (head == nullptr) return false;
  if (head->group == 0) {
    const int r = head_route(in_port);
    if (r < 0) {
      drop_unroutable(in_port);
      return true;
    }
    try_output(r);
    return ins_[in_port]->peek() != head;
  }
  // Hardware multicast: the frame is replicated to every port in the
  // group's replication set, and may proceed only when *all* of them can
  // accept a whole frame (replication cannot be half-done).
  const std::vector<int>& ports = *mcast_route_for(*head);
  for (int p : ports) {
    if (outs_[static_cast<std::size_t>(p)] == nullptr ||
        !outs_[static_cast<std::size_t>(p)]->ready()) {
      return false;
    }
  }
  // Hold every replication port across the take: its upstream-notify
  // cascade must not re-enter their arbiters and steal a checked slot.
  for (int p : ports) ++out_hold_[static_cast<std::size_t>(p)];
  Frame f = take_input(in_port);
  ++f.hops;
  for (int p : ports) {
    ++forwarded_;
    bytes_fwd_ += f.wire_bytes();
    outs_[static_cast<std::size_t>(p)]->send(f);
  }
  for (int p : ports) --out_hold_[static_cast<std::size_t>(p)];
  // Replica accounting: k output ports -> k counted above, and the same k
  // attributed to the frame's group (see the invariant in cluster.hpp).
  const auto copies = static_cast<std::uint64_t>(ports.size());
  mcast_copies_[f.group] += copies;
  mcast_copies_total_ += copies;
  sample_forwarded();
  sample_mcast_copies(f.group);
  // The next head may be unicast or multicast; give it a chance now.
  if (const Frame* next = ins_[in_port]->peek()) {
    if (next->group != 0) {
      forward_head(in_port);
    } else {
      const int r = head_route(in_port);
      if (r < 0) {
        drop_unroutable(in_port);
      } else {
        try_output(r);
      }
    }
  }
  return true;
}

void Cluster::try_output(int out_port) {
  Link* out = outs_[out_port];
  if (out == nullptr) return;
  // A held port is mid-forward further up the call stack (see out_hold_):
  // bail out rather than race it for the slot; the holder rescans.
  if (out_hold_[static_cast<std::size_t>(out_port)] != 0) return;
  ++out_hold_[static_cast<std::size_t>(out_port)];
  const struct Release {
    int* hold;
    ~Release() { --*hold; }
  } release{&out_hold_[static_cast<std::size_t>(out_port)]};
  // Keep forwarding while the output link can accept frames and some input
  // port's head-of-line frame routes here.  Scanning starts at the
  // round-robin cursor so all inputs get fair service under contention.
  while (out->ready()) {
    const int n = num_ports();
    int chosen = -1;
    for (int i = 0; i < n; ++i) {
      const int p = (rr_next_[out_port] + i) % n;
      if (ins_[p] == nullptr) continue;
      const Frame* head = ins_[p]->peek();
      if (head == nullptr) continue;
      if (head->group != 0) {
        // A multicast head whose replication set includes this port may
        // now be able to go (this port just became ready).
        const std::vector<int>& ports = *mcast_route_for(*head);
        if (std::find(ports.begin(), ports.end(), out_port) != ports.end()) {
          if (forward_head(p) && !out->ready()) return;
        }
        continue;
      }
      int r = head_route(p);
      if (r >= 0 && r != out_port && reroute_blocked_ &&
          (outs_[static_cast<std::size_t>(r)] == nullptr ||
           !outs_[static_cast<std::size_t>(r)]->ready())) {
        // Rip-up: the head committed to a port that cannot accept it now
        // while this one can — re-resolve against current occupancy (see
        // set_reroute_blocked_heads).
        head_route_ok_[static_cast<std::size_t>(p)] = 0;
        r = head_route(p);
      }
      if (r < 0) {
        // Destination became unreachable while the frame queued: drop it
        // and re-examine this input's new head on the next scan step.
        drop_unroutable(p);
        --i;
        continue;
      }
      if (r == out_port) {
        chosen = p;
        break;
      }
    }
    if (chosen < 0) return;
    rr_next_[out_port] = (chosen + 1) % n;
    Frame f = take_input(chosen);  // frees the input slot upstream
    ++f.hops;
    ++forwarded_;
    bytes_fwd_ += f.wire_bytes();
    out->send(f);
    sample_forwarded();
    // Head-of-line unblocking: the frame now at the head of this input may
    // route to a *different* output that has been idle all along (so its
    // ready callback will never fire).  Kick that output's arbiter.
    if (const Frame* next_head = ins_[chosen]->peek()) {
      if (next_head->group != 0) {
        forward_head(chosen);
      } else {
        const int other = head_route(chosen);
        if (other < 0) {
          drop_unroutable(chosen);
        } else if (other != out_port) {
          try_output(other);
        }
      }
    }
  }
}

}  // namespace hpcvorx::hw
