// A self-routing HPC cluster: a 12-port star switch.
//
// §1 of the paper: "The HPC consists of several self-routing star networks
// called clusters, each of which contains twelve ports.  A port contains
// independent input and output sections that simultaneously run at
// 160 Mbit/sec and can connect to either a workstation, a processing node,
// or to another cluster."
//
// The switch is input-buffered (each incoming link's downstream buffer is
// the port's input fifo) and forwards whole frames.  Every output port has
// a round-robin arbiter over the input ports — the "fair hardware
// scheduling mechanism [that] ensures that every sender is eventually
// serviced" (§2).  Routing is computed: the Fabric supplies a route
// function (topology next-hop — e-cube, fat-tree up/down, adaptive — plus
// local station delivery) and the cluster resolves it once per head frame,
// caching the decision until that head is consumed.  The sticky cache is
// what makes occupancy-dependent (adaptive) decisions well defined: a head
// commits to one egress port and waits there, exactly like a self-routing
// switch that latched the route nibble, instead of flapping between ports
// as queue depths change (DESIGN.md §15).
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "hw/link.hpp"

namespace hpcvorx::hw {

inline constexpr int kClusterPorts = 12;

class Cluster {
 public:
  Cluster(sim::Simulator& sim, std::string name, int num_ports = kClusterPorts);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Attaches the incoming link whose downstream buffer is this port's
  /// input fifo.  The cluster subscribes to its delivery callback.
  void attach_in(int port, Link* in);

  /// Attaches the outgoing link transmitted by this port.  The cluster
  /// subscribes to its ready callback.
  void attach_out(int port, Link* out);

  /// The Fabric-supplied routing oracle: output port for a unicast frame,
  /// or -1 ("unreachable", see route drops below) when fault-time
  /// rerouting finds no surviving path.  Evaluated once per head frame per
  /// input port; the cached decision is invalidated when the head is
  /// consumed or routes change (on_routes_changed).
  using RouteFn = std::function<int(const Frame&)>;
  void set_route_fn(RouteFn fn) { route_fn_ = std::move(fn); }

  /// Rip-up (adaptive routing only, DESIGN.md §15): when an output port
  /// becomes ready and an input's head is committed to a port that cannot
  /// accept a frame right now, retire the cached decision and re-resolve
  /// against current occupancy.  Without this a head can pin itself to one
  /// full port inside a buffer-wait cycle and deadlock the fabric; with it
  /// a head moves as soon as *any* of its candidate ports drains.  Off
  /// (the default) a head's first decision is final — deterministic
  /// routing never needs a second look.
  void set_reroute_blocked_heads(bool on) { reroute_blocked_ = on; }

  /// Programs the replication set for hardware-multicast group `gid`: the
  /// output ports a group frame leaves through (tree children and/or
  /// local member stations).
  void set_multicast_route(std::uint64_t gid, std::vector<int> out_ports);

  [[nodiscard]] int num_ports() const { return static_cast<int>(outs_.size()); }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// The outgoing link on `port` (nullptr when unattached).  Adaptive
  /// routing reads egress queue depths through this.
  [[nodiscard]] const Link* out_link(int port) const {
    return outs_.at(static_cast<std::size_t>(port));
  }

  // ---- fault injection (DESIGN.md §14) ----

  /// Power-cycles the switch: every frame parked in an input fifo is lost
  /// (counted in frames_dropped) and the arbiter state resets.  Routing
  /// tables survive — they are fabric-programmed configuration, not
  /// volatile switch state.
  void restart();

  /// Routes changed under live traffic (fault-time rerouting): drops input
  /// heads that became unroutable and kicks every output arbiter so heads
  /// that now route to a previously-idle port start moving.
  void on_routes_changed();

  /// Frames lost to restart() or to an unreachable destination (a -1
  /// route).  Dropped frames are never counted as forwarded.
  [[nodiscard]] std::uint64_t frames_dropped() const { return frames_dropped_; }

  // ---- counters (diagnostics and the trace exporter) ----
  //
  // Replica-accounting invariant (tested by hw_cluster_test.cpp): a
  // multicast frame replicated to k output ports counts k in
  // frames_forwarded *and* k x wire_bytes in bytes_forwarded — one unit
  // per physical copy leaving the switch, exactly like k unicast frames —
  // and the same k is attributed to the frame's group in
  // multicast_copies(gid).  Hence
  //   frames_forwarded == unicast forwards + multicast_copies_total().

  /// Frames forwarded through this cluster (multicast replicas counted
  /// once per output port).
  [[nodiscard]] std::uint64_t frames_forwarded() const { return forwarded_; }
  /// Wire bytes forwarded (same replica accounting as frames_forwarded).
  [[nodiscard]] std::uint64_t bytes_forwarded() const { return bytes_fwd_; }
  /// In-switch replicas made for hardware-multicast group `gid` (§4.2's
  /// "the clusters replicate the frame in the switches"): one count per
  /// output port each group frame was copied to.
  [[nodiscard]] std::uint64_t multicast_copies(std::uint64_t gid) const {
    const auto it = mcast_copies_.find(gid);
    return it == mcast_copies_.end() ? 0 : it->second;
  }
  /// In-switch replicas summed over every group.
  [[nodiscard]] std::uint64_t multicast_copies_total() const {
    return mcast_copies_total_;
  }
  /// Total time frames spent blocked at the head of an input fifo waiting
  /// for their output port (head-of-line time, summed over input ports).
  [[nodiscard]] sim::Duration head_of_line_blocked() const {
    return hol_blocked_;
  }

 private:
  /// Output port for the head frame of `in_port`, resolved through the
  /// route function at most once per head (sticky cache; see above).
  /// -1 when this cluster has no surviving route to the head's dst
  /// (possible only after fault-time rerouting; the caller drops).
  [[nodiscard]] int head_route(int in_port);
  [[nodiscard]] const std::vector<int>* mcast_route_for(const Frame& f) const;
  bool forward_head(int in_port);  // returns whether the head was consumed
  void on_input(int in_port);
  void try_output(int out_port);
  Frame take_input(int in_port);   // take + head-of-line accounting
  void drop_head(int in_port);     // take + count as dropped
  /// Drops consecutive unroutable unicast heads of `in_port`.
  void drop_unroutable(int in_port);
  void sample_forwarded();
  void sample_mcast_copies(std::uint64_t gid);

  sim::Simulator& sim_;
  std::string name_;
  std::vector<Link*> ins_;
  std::vector<Link*> outs_;
  std::vector<int> rr_next_;       // per-output round-robin cursor
  // Reentrancy holds: taking an input frame frees an upstream buffer slot,
  // and that notification can cascade around a full-duplex cable pair back
  // into this switch before the take returns.  A held output port refuses
  // nested arbitration so the cascade cannot steal the slot between a
  // forwarding path's ready-check and its send; the holder rescans (or the
  // next link event re-kicks), so suppressed calls lose nothing.
  std::vector<int> out_hold_;
  RouteFn route_fn_;
  bool reroute_blocked_ = false;       // rip-up blocked heads (adaptive)
  std::vector<int> head_route_;        // per-input cached head decision
  std::vector<char> head_route_ok_;    // cache-valid flag per input port
  std::vector<sim::SimTime> hol_since_;  // per-input head-wait start (-1 idle)
  std::unordered_map<std::uint64_t, std::vector<int>> mcast_routes_;
  std::unordered_map<std::uint64_t, std::uint64_t> mcast_copies_;
  std::uint64_t mcast_copies_total_ = 0;
  std::uint64_t forwarded_ = 0;
  std::uint64_t bytes_fwd_ = 0;
  std::uint64_t frames_dropped_ = 0;
  sim::Duration hol_blocked_ = 0;
};

}  // namespace hpcvorx::hw
