#include "hw/fabric.hpp"

#include <algorithm>
#include <cassert>
#include <set>
#include <stdexcept>

#include "hw/shard_link.hpp"
#include "sim/shard_runtime.hpp"

namespace hpcvorx::hw {

Fabric::~Fabric() = default;

void Endpoint::transmit(Frame f) {
  assert(tx_ready() && "Endpoint::transmit while not tx_ready");
  assert(f.payload_bytes <= kMaxPayloadBytes &&
         "HPC frames are limited to 1060 payload bytes");
  assert(f.dst >= 0 || f.group != 0);
  f.src = id_;
  f.injected_at = sim_->now();
  ++frames_sent_;
  out_->send(std::move(f));
}

Link* Fabric::new_link(sim::Simulator& sim, std::string name, Link::Params p) {
  links_.push_back(std::make_unique<Link>(sim, std::move(name), p));
  return links_.back().get();
}

sim::Simulator& Fabric::cluster_sim(int c) {
  return runtime_ == nullptr
             ? sim_
             : runtime_->shard(shard_of_cluster(c));
}

FramePool& Fabric::pool_for_shard(int shard) {
  return shard == 0 ? pool_
                    : *shard_pools_.at(static_cast<std::size_t>(shard) - 1);
}

void Fabric::add_station(int cluster_index, int local_port) {
  const StationId id = static_cast<StationId>(endpoints_.size());
  // Everything a station touches — its links, its endpoint, its payload
  // pool — lives on its cluster's shard simulator; station links are
  // always intra-shard.
  sim::Simulator& csim = cluster_sim(cluster_index);
  auto ep = std::make_unique<Endpoint>();
  ep->sim_ = &csim;
  ep->id_ = id;

  Cluster& cl = *clusters_[cluster_index];
  Link::Params up_p = params_.link;
  // Station -> cluster: the downstream buffer is the cluster's input fifo.
  Link* up = new_link(csim,
                      "s" + std::to_string(id) + ">c" +
                          std::to_string(cluster_index),
                      up_p);
  cl.attach_in(local_port, up);
  ep->out_ = up;
  // Cluster -> station: the downstream buffer is the endpoint's receive
  // section.
  Link::Params down_p = params_.link;
  down_p.buffer_frames = params_.rx_buffer_frames;
  Link* down = new_link(csim,
                        "c" + std::to_string(cluster_index) + ">s" +
                            std::to_string(id),
                        down_p);
  cl.attach_out(local_port, down);
  ep->in_ = down;
  ep->pool_ = &pool_for_shard(shard_of_cluster(cluster_index));

  endpoints_.push_back(std::move(ep));
  station_cluster_.push_back(cluster_index);
  station_local_port_.push_back(local_port);
}

void Fabric::add_trunk_link(int from, int to, int port_out, int port_in,
                            const Link::Params& p) {
  const std::string name =
      "c" + std::to_string(from) + ">c" + std::to_string(to);
  const int lo = std::min(from, to);
  const int hi = std::max(from, to);
  // The two directions of a cable register back to back, so the common
  // case finds its registry entry at the tail — construction stays O(E).
  CubePair* entry = nullptr;
  if (!cube_pairs_.empty() && cube_pairs_.back().a == lo &&
      cube_pairs_.back().b == hi) {
    entry = &cube_pairs_.back();
  } else if (const int idx = cube_pair_index(lo, hi); idx >= 0) {
    entry = &cube_pairs_[static_cast<std::size_t>(idx)];
  }
  if (entry == nullptr) {
    cube_pairs_.push_back(CubePair{});
    entry = &cube_pairs_.back();
    entry->a = lo;
    entry->b = hi;
    entry->port_a = from == lo ? port_out : port_in;
    entry->port_b = from == lo ? port_in : port_out;
  }
  if (shard_of_cluster(from) == shard_of_cluster(to)) {
    Link* l = new_link(cluster_sim(from), name, p);
    clusters_[static_cast<std::size_t>(from)]->attach_out(port_out, l);
    clusters_[static_cast<std::size_t>(to)]->attach_in(port_in, l);
    (from < to ? entry->ab : entry->ba) = l;
    return;
  }
  Link* tx = new_link(cluster_sim(from), name + ".tx", p);
  Link* rx = new_link(cluster_sim(to), name + ".rx", p);
  clusters_[static_cast<std::size_t>(from)]->attach_out(port_out, tx);
  clusters_[static_cast<std::size_t>(to)]->attach_in(port_in, rx);
  if (from < to) {
    entry->ab = tx;
    entry->ab_rx = rx;
  } else {
    entry->ba = tx;
    entry->ba_rx = rx;
  }
  bridges_.push_back(std::make_unique<ShardLinkBridge>(
      *runtime_, shard_of_cluster(from), shard_of_cluster(to), *tx, *rx));
}

void Fabric::program_routes() {
  // Every cluster routes through the fabric's computed oracle — there is
  // no per-destination table to fill, which is exactly why routing state
  // stays O(stations + clusters) at 4096 nodes (DESIGN.md §15).
  for (int c = 0; c < num_clusters(); ++c) {
    clusters_[static_cast<std::size_t>(c)]->set_route_fn(
        [this, c](const Frame& f) { return route_port(c, f); });
    // Adaptive heads may rip up a blocked commitment (a sticky decision
    // through a buffer-wait cycle would deadlock); deterministic decisions
    // are final.
    clusters_[static_cast<std::size_t>(c)]->set_reroute_blocked_heads(
        params_.routing == RoutingMode::kAdaptive);
  }
  // Fault-time state stays unallocated until a shard's first fault.
  shard_edge_up_.resize(static_cast<std::size_t>(num_fault_domains()));
  fault_next_port_.resize(static_cast<std::size_t>(num_fault_domains()));
}

int Fabric::route_port(int cluster, const Frame& f) {
  assert(f.dst >= 0 && f.dst < num_stations() &&
         "frame addressed to a station this fabric never built");
  const int dc = station_cluster_[static_cast<std::size_t>(f.dst)];
  if (dc == cluster) {
    return station_local_port_[static_cast<std::size_t>(f.dst)];
  }
  // A shard with live fault history routes from its BFS table (including
  // after full recovery, when the table has converged back to the
  // deterministic hops); adaptive choice is suspended there because the
  // table already encodes "shortest surviving path".
  const auto shard = static_cast<std::size_t>(shard_of_cluster(cluster));
  const std::vector<std::int16_t>& ft = fault_next_port_[shard];
  if (!ft.empty()) {
    return ft[static_cast<std::size_t>(cluster) *
                  static_cast<std::size_t>(num_clusters()) +
              static_cast<std::size_t>(dc)];
  }
  return params_.routing == RoutingMode::kAdaptive
             ? adaptive_next_port(cluster, dc)
             : inter_next_port(cluster, dc);
}

int Fabric::inter_next_port(int from, int to) const {
  assert(from != to);
  switch (topo_) {
    case TopologyKind::kHypercube: {
      const auto a = static_cast<CubeLabel>(from);
      const auto next = next_hypercube_hop(
          a, static_cast<CubeLabel>(to),
          static_cast<CubeLabel>(num_clusters()));
      return bit_index(a ^ next);  // egress port == cube dimension
    }
    case TopologyKind::kFatTree:
      return fat_.next_port(from, to);
    case TopologyKind::kSingleCluster:
      break;
  }
  assert(false && "inter_next_port on a single-cluster fabric");
  return -1;
}

int Fabric::inter_next_cluster(int from, int to) const {
  assert(from != to);
  switch (topo_) {
    case TopologyKind::kHypercube:
      return static_cast<int>(next_hypercube_hop(
          static_cast<CubeLabel>(from), static_cast<CubeLabel>(to),
          static_cast<CubeLabel>(num_clusters())));
    case TopologyKind::kFatTree:
      return fat_.next_cluster(from, to);
    case TopologyKind::kSingleCluster:
      break;
  }
  assert(false && "inter_next_cluster on a single-cluster fabric");
  return -1;
}

int Fabric::adaptive_next_port(int from, int to) const {
  // The nextpnr rip-up idiom reduced to a switch: every *allowed minimal*
  // egress candidate is scored by its congestion (queue depth), and ties
  // break deterministically — the escape port first, then the lowest port
  // index.  Heads are only committed to ports that can accept a frame
  // now; when every candidate is stalled the head parks on the escape
  // port and is ripped up as soon as any candidate drains (Cluster's
  // reroute_blocked_heads).  What makes this deadlock-free is the shape
  // of the candidate set, not the scoring — see each topology below and
  // DESIGN.md §15.
  const Cluster& cl = *clusters_[static_cast<std::size_t>(from)];
  int escape = -1;
  int best = -1;
  std::size_t best_depth = 0;
  auto consider = [&](int port) {
    const Link* out = cl.out_link(port);
    assert(out != nullptr);
    if (!out->ready()) return;
    const std::size_t depth = out->queue_depth();
    if (best < 0 || depth < best_depth ||
        (depth == best_depth && port == escape && best != escape)) {
      best = port;
      best_depth = depth;
    }
  };
  switch (topo_) {
    case TopologyKind::kHypercube: {
      // Negative-first (turn-model) candidates: while any productive
      // dimension clears a 1-bit of the current label, only those count;
      // once none remain, the 0->1 dimensions do.  Labels then strictly
      // decrease, then strictly increase, along every path, so the link
      // wait-for graph is acyclic: deadlock-free with a single shared
      // buffer per link, no virtual channels.  Both phases are always
      // feasible in the incomplete cube — clearing a bit lowers the
      // label, and in the up phase the label is a subset of the
      // destination's bits, so every intermediate exists.  Paths stay
      // minimal (one hop per differing bit).
      const auto a = static_cast<CubeLabel>(from);
      const CubeLabel diff = a ^ static_cast<CubeLabel>(to);
      const CubeLabel down = diff & a;
      const CubeLabel phase = down != 0 ? down : diff;
      const int dims = dimension_of(static_cast<CubeLabel>(num_clusters()));
      for (int d = 0; d < dims; ++d) {
        if (((phase >> d) & 1u) == 0) continue;
        if (escape < 0) escape = d;  // lowest allowed dimension
        consider(d);
      }
      break;
    }
    case TopologyKind::kFatTree:
      escape = inter_next_port(from, to);
      if (!fat_.is_leaf(from)) return escape;  // spine: single down port
      // Any spine reaches any leaf in one more hop: all uplinks are
      // minimal candidates, and up/down routing is acyclic whichever
      // uplink is picked (no packet goes up after coming down).
      for (int sp = 0; sp < fat_.spines; ++sp) consider(sp);
      break;
    case TopologyKind::kSingleCluster:
      return inter_next_port(from, to);
  }
  assert(escape >= 0);
  return best >= 0 ? best : escape;
}

std::size_t Fabric::routing_state_bytes() const {
  std::size_t bytes = station_cluster_.capacity() * sizeof(int) +
                      station_local_port_.capacity() * sizeof(int) +
                      cluster_shard_.capacity() * sizeof(int);
  for (const auto& row : shard_edge_up_) bytes += row.capacity();
  for (const auto& t : fault_next_port_) {
    bytes += t.capacity() * sizeof(std::int16_t);
  }
  return bytes;
}

std::vector<std::pair<int, int>> Fabric::cube_edge_pairs() const {
  std::vector<std::pair<int, int>> out;
  out.reserve(cube_pairs_.size());
  for (const CubePair& e : cube_pairs_) out.emplace_back(e.a, e.b);
  return out;
}

int Fabric::cube_pair_index(int a, int b) const {
  const int lo = std::min(a, b);
  const int hi = std::max(a, b);
  for (std::size_t i = 0; i < cube_pairs_.size(); ++i) {
    if (cube_pairs_[i].a == lo && cube_pairs_[i].b == hi) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::vector<char>& Fabric::edge_mirror(int shard) {
  std::vector<char>& row = shard_edge_up_.at(static_cast<std::size_t>(shard));
  if (row.empty()) row.assign(cube_pairs_.size(), 1);
  return row;
}

bool Fabric::cube_edge_up(int shard, int a, int b) const {
  const int idx = cube_pair_index(a, b);
  assert(idx >= 0);
  const std::vector<char>& row =
      shard_edge_up_.at(static_cast<std::size_t>(shard));
  // An unallocated mirror means the shard has never seen a fault: all up.
  return row.empty() || row[static_cast<std::size_t>(idx)] != 0;
}

void Fabric::apply_cube_fault(int shard, int a, int b, bool up) {
  const int idx = cube_pair_index(a, b);
  assert(idx >= 0 && "no cube cable between these clusters");
  std::vector<char>& mirror = edge_mirror(shard);
  if ((mirror[static_cast<std::size_t>(idx)] != 0) == up) return;
  mirror[static_cast<std::size_t>(idx)] = up ? 1 : 0;
  const CubePair& e = cube_pairs_[static_cast<std::size_t>(idx)];
  const int sa = shard_of_cluster(e.a);
  const int sb = shard_of_cluster(e.b);
  const auto apply = [&](Link* l, int owner) {
    if (l == nullptr || owner != shard) return;
    if (up) {
      l->set_up();
    } else {
      l->set_down();
    }
  };
  apply(e.ab, sa);     // a -> b: TX half (or whole link) lives with a
  apply(e.ab_rx, sb);  //         RX half with b
  apply(e.ba, sb);
  apply(e.ba_rx, sa);
  recompute_shard_routes(shard);
}

void Fabric::apply_cluster_restart(int shard, int c) {
  if (shard_of_cluster(c) != shard) return;
  clusters_.at(static_cast<std::size_t>(c))->restart();
}

void Fabric::recompute_shard_routes(int shard) {
  const int n = num_clusters();
  const std::vector<char>& up =
      shard_edge_up_.at(static_cast<std::size_t>(shard));
  assert(!up.empty() && "recompute before any fault on this shard");
  // Adjacency over surviving cables: (neighbour, egress port) per cluster.
  std::vector<std::vector<std::pair<int, int>>> adj(
      static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < cube_pairs_.size(); ++i) {
    if (up[i] == 0) continue;
    const CubePair& e = cube_pairs_[i];
    adj[static_cast<std::size_t>(e.a)].emplace_back(e.b, e.port_a);
    adj[static_cast<std::size_t>(e.b)].emplace_back(e.a, e.port_b);
  }
  // The shard's fault-route table (materialized here, on its first fault):
  // next_port[c * n + dc] is the egress port from cluster c towards
  // cluster dc over surviving cables (-1 unreachable), for the shard's
  // clusters.
  std::vector<std::int16_t>& next_port =
      fault_next_port_.at(static_cast<std::size_t>(shard));
  next_port.assign(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
      std::int16_t{-1});
  std::vector<int> dist(static_cast<std::size_t>(n));
  std::vector<int> bfs;
  bfs.reserve(static_cast<std::size_t>(n));
  for (int dc = 0; dc < n; ++dc) {
    std::fill(dist.begin(), dist.end(), -1);
    dist[static_cast<std::size_t>(dc)] = 0;
    bfs.clear();
    bfs.push_back(dc);
    for (std::size_t h = 0; h < bfs.size(); ++h) {
      const int c = bfs[h];
      for (const auto& [nb, port] : adj[static_cast<std::size_t>(c)]) {
        (void)port;
        if (dist[static_cast<std::size_t>(nb)] >= 0) continue;
        dist[static_cast<std::size_t>(nb)] =
            dist[static_cast<std::size_t>(c)] + 1;
        bfs.push_back(nb);
      }
    }
    for (int c = 0; c < n; ++c) {
      if (c == dc || shard_of_cluster(c) != shard) continue;
      if (dist[static_cast<std::size_t>(c)] < 0) continue;  // unreachable
      // Prefer the computed deterministic hop when it still lies on a
      // shortest surviving path — a fully-recovered topology converges
      // back to the exact build-time routes.  Otherwise the lowest
      // surviving egress port on a shortest path (deterministic
      // tie-break).
      const int want = dist[static_cast<std::size_t>(c)] - 1;
      const int eport = inter_next_port(c, dc);
      int best = -1;
      for (const auto& [nb, port] : adj[static_cast<std::size_t>(c)]) {
        if (dist[static_cast<std::size_t>(nb)] != want) continue;
        if (port == eport) {
          best = port;
          break;
        }
        if (best < 0 || port < best) best = port;
      }
      next_port[static_cast<std::size_t>(c) * static_cast<std::size_t>(n) +
                static_cast<std::size_t>(dc)] =
          static_cast<std::int16_t>(best);
    }
  }
  for (int c = 0; c < n; ++c) {
    if (shard_of_cluster(c) != shard) continue;
    clusters_[static_cast<std::size_t>(c)]->on_routes_changed();
  }
}

std::uint64_t Fabric::frames_dropped() const {
  std::uint64_t total = 0;
  for (const auto& l : links_) total += l->frames_dropped();
  for (const auto& c : clusters_) total += c->frames_dropped();
  return total;
}

void Fabric::attach_runtime(sim::ShardRuntime& rt) {
  runtime_ = &rt;
  for (int i = 1; i < rt.num_shards(); ++i) {
    shard_pools_.push_back(std::make_unique<FramePool>());
  }
}

void Fabric::size_shard_pools() {
  if (runtime_ == nullptr) return;  // unsharded: keep the classic default
  const int n_shards = runtime_->num_shards();
  std::vector<std::size_t> hosted(static_cast<std::size_t>(n_shards), 0);
  for (const int c : station_cluster_) {
    ++hosted[static_cast<std::size_t>(shard_of_cluster(c))];
  }
  for (int s = 0; s < n_shards; ++s) {
    // Cap each shard's free lists in proportion to the stations it hosts
    // (floor 1024 so small shards still recycle): the fabric-wide
    // footprint tracks ~8 buffers/station instead of pinning n_shards
    // full-size free lists at 4096 nodes.
    pool_for_shard(s).set_max_free(
        std::max<std::size_t>(1024, hosted[static_cast<std::size_t>(s)] * 8));
  }
}

std::unique_ptr<Fabric> Fabric::single_cluster(sim::Simulator& sim,
                                               int stations, Params params) {
  if (stations < 1 || stations > params.ports_per_cluster) {
    throw std::invalid_argument(
        "hw::Fabric::single_cluster: " + std::to_string(stations) +
        " stations do not fit a " + std::to_string(params.ports_per_cluster) +
        "-port cluster (need 1 <= stations <= ports); use hypercube()/"
        "fat_tree() or raise FabricParams::ports_per_cluster");
  }
  std::unique_ptr<Fabric> f(new Fabric(sim, params));
  f->clusters_.push_back(
      std::make_unique<Cluster>(sim, "c0", params.ports_per_cluster));
  for (int s = 0; s < stations; ++s) f->add_station(0, s);
  f->program_routes();
  return f;
}

std::unique_ptr<Fabric> Fabric::hypercube_impl(sim::Simulator& sim0,
                                               sim::ShardRuntime* rt,
                                               int stations,
                                               int stations_per_cluster,
                                               Params params) {
  // Always-on validation (not assert): a Release-built 4096-node
  // misconfiguration must fail loudly, not silently build a fabric whose
  // station ports collide with cube ports.
  if (stations < 1 || stations_per_cluster < 1) {
    throw std::invalid_argument(
        "hw::Fabric::hypercube: need stations >= 1 and stations_per_cluster "
        ">= 1 (got stations=" +
        std::to_string(stations) + ", stations_per_cluster=" +
        std::to_string(stations_per_cluster) + ")");
  }
  const int n_clusters =
      (stations + stations_per_cluster - 1) / stations_per_cluster;
  const int dims = dimension_of(static_cast<CubeLabel>(n_clusters));
  if (dims + stations_per_cluster > params.ports_per_cluster) {
    throw std::invalid_argument(
        "hw::Fabric::hypercube: cluster port budget exceeded — " +
        std::to_string(stations) + " stations at " +
        std::to_string(stations_per_cluster) + "/cluster need " +
        std::to_string(n_clusters) + " clusters (a " + std::to_string(dims) +
        "-dimension incomplete cube), so " + std::to_string(dims) +
        " cube ports + " + std::to_string(stations_per_cluster) +
        " station ports > the " + std::to_string(params.ports_per_cluster) +
        "-port cluster; raise FabricParams::ports_per_cluster (16 fits the "
        "4096-node machine), raise stations_per_cluster, or lower the node "
        "count");
  }

  std::unique_ptr<Fabric> f(new Fabric(sim0, params));
  f->topo_ = TopologyKind::kHypercube;
  if (rt != nullptr) {
    const int n_shards = rt->num_shards();
    assert(n_shards <= n_clusters &&
           "more shards than clusters: nothing to partition");
    // Partitioning rule (DESIGN.md §12): contiguous cluster blocks, one
    // block per shard.  Purely positional, so the assignment depends only
    // on the topology — never on run order.
    f->cluster_shard_.reserve(static_cast<std::size_t>(n_clusters));
    for (int c = 0; c < n_clusters; ++c) {
      f->cluster_shard_.push_back(c * n_shards / n_clusters);
    }
    f->attach_runtime(*rt);
  }
  for (int c = 0; c < n_clusters; ++c) {
    f->clusters_.push_back(std::make_unique<Cluster>(
        f->cluster_sim(c), "c" + std::to_string(c), params.ports_per_cluster));
  }
  // Inter-cluster links: port b of cluster c carries dimension b.  Each
  // direction is an independent link (full-duplex port sections),
  // registered with the cable's fault-registry entry by add_trunk_link.
  const Link::Params cube_p =
      params.cluster_link ? *params.cluster_link : params.link;
  for (int c = 0; c < n_clusters; ++c) {
    for (int b = 0; b < dims; ++b) {
      const int m = c ^ (1 << b);
      if (m >= n_clusters || m < c) continue;  // build each pair once
      f->add_trunk_link(c, m, b, b, cube_p);
      f->add_trunk_link(m, c, b, b, cube_p);
    }
  }
  for (int s = 0; s < stations; ++s) {
    f->add_station(s / stations_per_cluster, dims + s % stations_per_cluster);
  }
  f->size_shard_pools();
  f->program_routes();
  return f;
}

std::unique_ptr<Fabric> Fabric::fat_tree_impl(sim::Simulator& sim0,
                                              sim::ShardRuntime* rt,
                                              int stations,
                                              int stations_per_cluster,
                                              Params params) {
  const FatTreeShape shape =
      FatTreeShape::plan(stations, stations_per_cluster,
                         params.ports_per_cluster, params.fat_tree_spines);
  const int n_clusters = shape.num_clusters();
  std::unique_ptr<Fabric> f(new Fabric(sim0, params));
  f->topo_ = TopologyKind::kFatTree;
  f->fat_ = shape;
  if (rt != nullptr) {
    const int n_shards = rt->num_shards();
    assert(n_shards <= shape.leaves &&
           "more shards than leaf clusters: nothing to partition");
    // Leaves partition as contiguous blocks (same rule as the cube);
    // spines deal round-robin across shards so the top stage's load —
    // which every shard's traffic crosses — spreads instead of piling
    // onto the last shard.  Purely positional, topology-only.
    f->cluster_shard_.reserve(static_cast<std::size_t>(n_clusters));
    for (int l = 0; l < shape.leaves; ++l) {
      f->cluster_shard_.push_back(l * n_shards / shape.leaves);
    }
    for (int sp = 0; sp < shape.spines; ++sp) {
      f->cluster_shard_.push_back(sp % n_shards);
    }
    f->attach_runtime(*rt);
  }
  for (int l = 0; l < shape.leaves; ++l) {
    f->clusters_.push_back(std::make_unique<Cluster>(
        f->cluster_sim(l), "c" + std::to_string(l), params.ports_per_cluster));
  }
  for (int sp = 0; sp < shape.spines; ++sp) {
    // A spine is the "fat" upper stage: one wide crossbar with a port per
    // leaf (paper-era fat trees concentrate bandwidth upward; we model
    // the concentration as port count).
    const int c = shape.leaves + sp;
    f->clusters_.push_back(std::make_unique<Cluster>(
        f->cluster_sim(c), "c" + std::to_string(c), shape.leaves));
  }
  const Link::Params trunk_p =
      params.cluster_link ? *params.cluster_link : params.link;
  for (int l = 0; l < shape.leaves; ++l) {
    for (int sp = 0; sp < shape.spines; ++sp) {
      // Leaf l's uplink port sp <-> spine sp's port l, both directions.
      f->add_trunk_link(l, shape.leaves + sp, sp, l, trunk_p);
      f->add_trunk_link(shape.leaves + sp, l, l, sp, trunk_p);
    }
  }
  for (int s = 0; s < stations; ++s) {
    f->add_station(s / stations_per_cluster,
                   shape.spines + s % stations_per_cluster);
  }
  f->size_shard_pools();
  f->program_routes();
  return f;
}

std::unique_ptr<Fabric> Fabric::hypercube(sim::Simulator& sim, int stations,
                                          int stations_per_cluster,
                                          Params params) {
  return hypercube_impl(sim, nullptr, stations, stations_per_cluster, params);
}

std::unique_ptr<Fabric> Fabric::fat_tree(sim::Simulator& sim, int stations,
                                         int stations_per_cluster,
                                         Params params) {
  return fat_tree_impl(sim, nullptr, stations, stations_per_cluster, params);
}

std::unique_ptr<Fabric> Fabric::make(sim::Simulator& sim, int stations,
                                     int stations_per_cluster, Params params) {
  if (stations <= params.ports_per_cluster) {
    return single_cluster(sim, stations, params);
  }
  return params.topo == TopologyKind::kFatTree
             ? fat_tree(sim, stations, stations_per_cluster, params)
             : hypercube(sim, stations, stations_per_cluster, params);
}

std::unique_ptr<Fabric> Fabric::make_sharded(sim::ShardRuntime& rt,
                                             int stations,
                                             int stations_per_cluster,
                                             Params params) {
  if (rt.num_shards() == 1) {
    // One shard is the single-threaded machine, construction order and all.
    return make(rt.shard(0), stations, stations_per_cluster, params);
  }
  return params.topo == TopologyKind::kFatTree
             ? fat_tree_impl(rt.shard(0), &rt, stations, stations_per_cluster,
                             params)
             : hypercube_impl(rt.shard(0), &rt, stations,
                              stations_per_cluster, params);
}

int Fabric::cluster_of(StationId s) const {
  return station_cluster_.at(static_cast<std::size_t>(s));
}

void Fabric::add_multicast_group(std::uint64_t gid, StationId root,
                                 const std::vector<StationId>& members) {
  const int n_clusters = num_clusters();
  const int root_cluster = cluster_of(root);
  // Per-cluster replication set: union of the root->member unicast routes
  // (tree edges become inter-cluster ports; member clusters add the
  // members' local ports).  The walk computes hops through the topology
  // interface, so it is identical for the cube and the fat tree — and
  // always follows the deterministic routes: replication sets are static
  // switch configuration, independent of the unicast routing mode.
  std::vector<std::set<int>> ports(static_cast<std::size_t>(n_clusters));
  for (StationId m : members) {
    if (m == root) continue;  // the root's kernel delivers locally
    const int mc = cluster_of(m);
    int c = root_cluster;
    while (c != mc) {
      ports[static_cast<std::size_t>(c)].insert(inter_next_port(c, mc));
      c = inter_next_cluster(c, mc);
    }
    ports[static_cast<std::size_t>(mc)].insert(
        station_local_port_[static_cast<std::size_t>(m)]);
  }
  for (int c = 0; c < n_clusters; ++c) {
    if (!ports[static_cast<std::size_t>(c)].empty() || c == root_cluster) {
      clusters_[static_cast<std::size_t>(c)]->set_multicast_route(
          gid, std::vector<int>(ports[static_cast<std::size_t>(c)].begin(),
                                ports[static_cast<std::size_t>(c)].end()));
    }
  }
}

int Fabric::route_length(StationId a, StationId b) const {
  const int ca = cluster_of(a);
  const int cb = cluster_of(b);
  // Entry cluster + one cluster per inter-cluster hop, walked through the
  // topology interface (Hamming distance on the cube, <=2 trunk hops on
  // the tree).
  int len = 1;
  for (int c = ca; c != cb; c = inter_next_cluster(c, cb)) ++len;
  return len;
}

}  // namespace hpcvorx::hw
