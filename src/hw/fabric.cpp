#include "hw/fabric.hpp"

#include <algorithm>
#include <cassert>
#include <set>

#include "hw/shard_link.hpp"
#include "sim/shard_runtime.hpp"

namespace hpcvorx::hw {

Fabric::~Fabric() = default;

void Endpoint::transmit(Frame f) {
  assert(tx_ready() && "Endpoint::transmit while not tx_ready");
  assert(f.payload_bytes <= kMaxPayloadBytes &&
         "HPC frames are limited to 1060 payload bytes");
  assert(f.dst >= 0 || f.group != 0);
  f.src = id_;
  f.injected_at = sim_->now();
  ++frames_sent_;
  out_->send(std::move(f));
}

Link* Fabric::new_link(sim::Simulator& sim, std::string name, Link::Params p) {
  links_.push_back(std::make_unique<Link>(sim, std::move(name), p));
  return links_.back().get();
}

sim::Simulator& Fabric::cluster_sim(int c) {
  return runtime_ == nullptr
             ? sim_
             : runtime_->shard(shard_of_cluster(c));
}

FramePool& Fabric::pool_for_shard(int shard) {
  return shard == 0 ? pool_
                    : *shard_pools_.at(static_cast<std::size_t>(shard) - 1);
}

void Fabric::add_station(int cluster_index, int local_port) {
  const StationId id = static_cast<StationId>(endpoints_.size());
  // Everything a station touches — its links, its endpoint, its payload
  // pool — lives on its cluster's shard simulator; station links are
  // always intra-shard.
  sim::Simulator& csim = cluster_sim(cluster_index);
  auto ep = std::make_unique<Endpoint>();
  ep->sim_ = &csim;
  ep->id_ = id;

  Cluster& cl = *clusters_[cluster_index];
  Link::Params up_p = params_.link;
  // Station -> cluster: the downstream buffer is the cluster's input fifo.
  Link* up = new_link(csim,
                      "s" + std::to_string(id) + ">c" +
                          std::to_string(cluster_index),
                      up_p);
  cl.attach_in(local_port, up);
  ep->out_ = up;
  // Cluster -> station: the downstream buffer is the endpoint's receive
  // section.
  Link::Params down_p = params_.link;
  down_p.buffer_frames = params_.rx_buffer_frames;
  Link* down = new_link(csim,
                        "c" + std::to_string(cluster_index) + ">s" +
                            std::to_string(id),
                        down_p);
  cl.attach_out(local_port, down);
  ep->in_ = down;
  ep->pool_ = &pool_for_shard(shard_of_cluster(cluster_index));

  endpoints_.push_back(std::move(ep));
  station_cluster_.push_back(cluster_index);
  station_local_port_.push_back(local_port);
}

void Fabric::program_routes() {
  const int n_clusters = num_clusters();
  // Pass 1: the cluster-pair next-hop table.  Every later consumer
  // (unicast route programming below, multicast tree construction, and
  // any per-frame diagnostics) reads this instead of re-deriving the hop
  // bit by bit.
  cluster_next_dim_.assign(
      static_cast<std::size_t>(n_clusters) * static_cast<std::size_t>(n_clusters),
      std::int16_t{-1});
  for (int c = 0; c < n_clusters; ++c) {
    for (int d = 0; d < n_clusters; ++d) {
      if (c == d) continue;
      const int next = next_hypercube_hop(c, d, n_clusters);
      const int dim = dimension_of((c ^ next) + 1) - 1;  // log2 of the bit
      cluster_next_dim_[static_cast<std::size_t>(c) *
                            static_cast<std::size_t>(n_clusters) +
                        static_cast<std::size_t>(d)] =
          static_cast<std::int16_t>(dim);
    }
  }
  // Pass 2: the clusters' flat station->port maps.
  for (int c = 0; c < n_clusters; ++c) {
    for (StationId d = 0; d < num_stations(); ++d) {
      const int dc = station_cluster_[static_cast<std::size_t>(d)];
      if (dc == c) {
        clusters_[c]->set_route(d, station_local_port_[static_cast<std::size_t>(d)]);
      } else {
        clusters_[c]->set_route(d, next_hop_dim(c, dc));
      }
    }
  }
  // Fault-time state: every shard starts with every cable up.  A no-fault
  // run never reads or writes these again.
  shard_edge_up_.assign(static_cast<std::size_t>(num_fault_domains()),
                        std::vector<char>(cube_pairs_.size(), 1));
}

std::vector<std::pair<int, int>> Fabric::cube_edge_pairs() const {
  std::vector<std::pair<int, int>> out;
  out.reserve(cube_pairs_.size());
  for (const CubePair& e : cube_pairs_) out.emplace_back(e.a, e.b);
  return out;
}

int Fabric::cube_pair_index(int a, int b) const {
  const int lo = std::min(a, b);
  const int hi = std::max(a, b);
  for (std::size_t i = 0; i < cube_pairs_.size(); ++i) {
    if (cube_pairs_[i].a == lo && cube_pairs_[i].b == hi) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

bool Fabric::cube_edge_up(int shard, int a, int b) const {
  const int idx = cube_pair_index(a, b);
  assert(idx >= 0);
  return shard_edge_up_.at(static_cast<std::size_t>(shard))
             [static_cast<std::size_t>(idx)] != 0;
}

void Fabric::apply_cube_fault(int shard, int a, int b, bool up) {
  const int idx = cube_pair_index(a, b);
  assert(idx >= 0 && "no cube cable between these clusters");
  std::vector<char>& mirror =
      shard_edge_up_.at(static_cast<std::size_t>(shard));
  if ((mirror[static_cast<std::size_t>(idx)] != 0) == up) return;
  mirror[static_cast<std::size_t>(idx)] = up ? 1 : 0;
  const CubePair& e = cube_pairs_[static_cast<std::size_t>(idx)];
  const int sa = shard_of_cluster(e.a);
  const int sb = shard_of_cluster(e.b);
  const auto apply = [&](Link* l, int owner) {
    if (l == nullptr || owner != shard) return;
    if (up) {
      l->set_up();
    } else {
      l->set_down();
    }
  };
  apply(e.ab, sa);     // a -> b: TX half (or whole link) lives with a
  apply(e.ab_rx, sb);  //         RX half with b
  apply(e.ba, sb);
  apply(e.ba_rx, sa);
  recompute_shard_routes(shard);
}

void Fabric::apply_cluster_restart(int shard, int c) {
  if (shard_of_cluster(c) != shard) return;
  clusters_.at(static_cast<std::size_t>(c))->restart();
}

void Fabric::recompute_shard_routes(int shard) {
  const int n = num_clusters();
  const std::vector<char>& up =
      shard_edge_up_.at(static_cast<std::size_t>(shard));
  // Adjacency over surviving cables: (neighbour, egress dim) per cluster.
  std::vector<std::vector<std::pair<int, int>>> adj(
      static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < cube_pairs_.size(); ++i) {
    if (up[i] == 0) continue;
    const CubePair& e = cube_pairs_[i];
    adj[static_cast<std::size_t>(e.a)].emplace_back(e.b, e.dim);
    adj[static_cast<std::size_t>(e.b)].emplace_back(e.a, e.dim);
  }
  // next_port[c * n + dc]: the egress dim from cluster c towards cluster
  // dc over surviving cables (-1 unreachable), for the shard's clusters.
  std::vector<std::int16_t> next_port(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
      std::int16_t{-1});
  std::vector<int> dist(static_cast<std::size_t>(n));
  std::vector<int> bfs;
  bfs.reserve(static_cast<std::size_t>(n));
  for (int dc = 0; dc < n; ++dc) {
    std::fill(dist.begin(), dist.end(), -1);
    dist[static_cast<std::size_t>(dc)] = 0;
    bfs.clear();
    bfs.push_back(dc);
    for (std::size_t h = 0; h < bfs.size(); ++h) {
      const int c = bfs[h];
      for (const auto& [nb, dim] : adj[static_cast<std::size_t>(c)]) {
        if (dist[static_cast<std::size_t>(nb)] >= 0) continue;
        dist[static_cast<std::size_t>(nb)] =
            dist[static_cast<std::size_t>(c)] + 1;
        bfs.push_back(nb);
      }
    }
    for (int c = 0; c < n; ++c) {
      if (c == dc || shard_of_cluster(c) != shard) continue;
      if (dist[static_cast<std::size_t>(c)] < 0) continue;  // unreachable
      // Prefer the build-time e-cube hop when it still lies on a shortest
      // surviving path — a fully-recovered topology converges back to the
      // exact original tables.  Otherwise the lowest surviving dim on a
      // shortest path (deterministic tie-break).
      const int want = dist[static_cast<std::size_t>(c)] - 1;
      const int edim = cluster_next_dim_[static_cast<std::size_t>(c) *
                                             static_cast<std::size_t>(n) +
                                         static_cast<std::size_t>(dc)];
      int best = -1;
      for (const auto& [nb, dim] : adj[static_cast<std::size_t>(c)]) {
        if (dist[static_cast<std::size_t>(nb)] != want) continue;
        if (dim == edim) {
          best = dim;
          break;
        }
        if (best < 0 || dim < best) best = dim;
      }
      next_port[static_cast<std::size_t>(c) * static_cast<std::size_t>(n) +
                static_cast<std::size_t>(dc)] =
          static_cast<std::int16_t>(best);
    }
  }
  for (int c = 0; c < n; ++c) {
    if (shard_of_cluster(c) != shard) continue;
    for (StationId d = 0; d < num_stations(); ++d) {
      const int dc = station_cluster_[static_cast<std::size_t>(d)];
      if (dc == c) continue;  // local delivery port never changes
      clusters_[static_cast<std::size_t>(c)]->set_route(
          d, next_port[static_cast<std::size_t>(c) *
                           static_cast<std::size_t>(n) +
                       static_cast<std::size_t>(dc)]);
    }
    clusters_[static_cast<std::size_t>(c)]->on_routes_changed();
  }
}

std::uint64_t Fabric::frames_dropped() const {
  std::uint64_t total = 0;
  for (const auto& l : links_) total += l->frames_dropped();
  for (const auto& c : clusters_) total += c->frames_dropped();
  return total;
}

std::unique_ptr<Fabric> Fabric::single_cluster(sim::Simulator& sim,
                                               int stations, Params params) {
  assert(stations >= 1 && stations <= params.ports_per_cluster);
  std::unique_ptr<Fabric> f(new Fabric(sim, params));
  f->clusters_.push_back(
      std::make_unique<Cluster>(sim, "c0", params.ports_per_cluster));
  for (int s = 0; s < stations; ++s) f->add_station(0, s);
  f->program_routes();
  return f;
}

std::unique_ptr<Fabric> Fabric::hypercube_impl(sim::Simulator& sim0,
                                               sim::ShardRuntime* rt,
                                               int stations,
                                               int stations_per_cluster,
                                               Params params) {
  assert(stations >= 1 && stations_per_cluster >= 1);
  const int n_clusters =
      (stations + stations_per_cluster - 1) / stations_per_cluster;
  const int dims = dimension_of(n_clusters);
  assert(dims + stations_per_cluster <= params.ports_per_cluster &&
         "cluster port budget exceeded: dims + stations/cluster > ports");

  std::unique_ptr<Fabric> f(new Fabric(sim0, params));
  f->stations_per_cluster_ = stations_per_cluster;
  if (rt != nullptr) {
    const int n_shards = rt->num_shards();
    assert(n_shards <= n_clusters &&
           "more shards than clusters: nothing to partition");
    f->runtime_ = rt;
    // Partitioning rule (DESIGN.md §12): contiguous cluster blocks, one
    // block per shard.  Purely positional, so the assignment depends only
    // on the topology — never on run order.
    f->cluster_shard_.reserve(static_cast<std::size_t>(n_clusters));
    for (int c = 0; c < n_clusters; ++c) {
      f->cluster_shard_.push_back(c * n_shards / n_clusters);
    }
    for (int i = 1; i < n_shards; ++i) {
      f->shard_pools_.push_back(std::make_unique<FramePool>());
    }
  }
  for (int c = 0; c < n_clusters; ++c) {
    f->clusters_.push_back(std::make_unique<Cluster>(
        f->cluster_sim(c), "c" + std::to_string(c), params.ports_per_cluster));
  }
  // Inter-cluster links: port b of cluster c carries dimension b.  Each
  // direction is an independent link (full-duplex port sections).  A link
  // between clusters on different shards is built as a TX/RX half pair
  // bridged through the runtime (shard_link.hpp); same shard — including
  // the whole unsharded fabric — gets the classic single link.
  const Link::Params cube_p =
      params.cluster_link ? *params.cluster_link : params.link;
  // Each direction is registered with the cable's fault-registry entry so
  // link faults can address "the cable between a and b" later.
  auto pair_entry = [&](int from, int to, int port) -> CubePair& {
    const int a = std::min(from, to);
    const int b = std::max(from, to);
    for (CubePair& e : f->cube_pairs_) {
      if (e.a == a && e.b == b) return e;
    }
    f->cube_pairs_.push_back(CubePair{a, b, port, nullptr, nullptr, nullptr,
                                      nullptr});
    return f->cube_pairs_.back();
  };
  auto cube_link = [&](int from, int to, int port) {
    const std::string name =
        "c" + std::to_string(from) + ">c" + std::to_string(to);
    CubePair& entry = pair_entry(from, to, port);
    if (f->shard_of_cluster(from) == f->shard_of_cluster(to)) {
      Link* l = f->new_link(f->cluster_sim(from), name, cube_p);
      f->clusters_[from]->attach_out(port, l);
      f->clusters_[to]->attach_in(port, l);
      (from < to ? entry.ab : entry.ba) = l;
      return;
    }
    Link* tx = f->new_link(f->cluster_sim(from), name + ".tx", cube_p);
    Link* rx = f->new_link(f->cluster_sim(to), name + ".rx", cube_p);
    f->clusters_[from]->attach_out(port, tx);
    f->clusters_[to]->attach_in(port, rx);
    if (from < to) {
      entry.ab = tx;
      entry.ab_rx = rx;
    } else {
      entry.ba = tx;
      entry.ba_rx = rx;
    }
    f->bridges_.push_back(std::make_unique<ShardLinkBridge>(
        *rt, f->shard_of_cluster(from), f->shard_of_cluster(to), *tx, *rx));
  };
  for (int c = 0; c < n_clusters; ++c) {
    for (int b = 0; b < dims; ++b) {
      const int m = c ^ (1 << b);
      if (m >= n_clusters || m < c) continue;  // build each pair once
      cube_link(c, m, b);
      cube_link(m, c, b);
    }
  }
  for (int s = 0; s < stations; ++s) {
    f->add_station(s / stations_per_cluster, dims + s % stations_per_cluster);
  }
  f->program_routes();
  return f;
}

std::unique_ptr<Fabric> Fabric::hypercube(sim::Simulator& sim, int stations,
                                          int stations_per_cluster,
                                          Params params) {
  return hypercube_impl(sim, nullptr, stations, stations_per_cluster, params);
}

std::unique_ptr<Fabric> Fabric::make(sim::Simulator& sim, int stations,
                                     int stations_per_cluster, Params params) {
  if (stations <= params.ports_per_cluster) {
    return single_cluster(sim, stations, params);
  }
  return hypercube(sim, stations, stations_per_cluster, params);
}

std::unique_ptr<Fabric> Fabric::make_sharded(sim::ShardRuntime& rt,
                                             int stations,
                                             int stations_per_cluster,
                                             Params params) {
  if (rt.num_shards() == 1) {
    // One shard is the single-threaded machine, construction order and all.
    return make(rt.shard(0), stations, stations_per_cluster, params);
  }
  return hypercube_impl(rt.shard(0), &rt, stations, stations_per_cluster,
                        params);
}

int Fabric::cluster_of(StationId s) const {
  return station_cluster_.at(static_cast<std::size_t>(s));
}

void Fabric::add_multicast_group(std::uint64_t gid, StationId root,
                                 const std::vector<StationId>& members) {
  const int n_clusters = num_clusters();
  const int root_cluster = cluster_of(root);
  // Per-cluster replication set: union of the root->member unicast routes
  // (tree edges become inter-cluster ports; member clusters add the
  // members' local ports).
  std::vector<std::set<int>> ports(static_cast<std::size_t>(n_clusters));
  for (StationId m : members) {
    if (m == root) continue;  // the root's kernel delivers locally
    const int mc = cluster_of(m);
    int c = root_cluster;
    while (c != mc) {
      // Walk the precomputed next-hop table: the dim is both the egress
      // port at `c` and the bit flipped to reach the next cluster.
      const int dim = next_hop_dim(c, mc);
      ports[static_cast<std::size_t>(c)].insert(dim);
      c ^= 1 << dim;
    }
    ports[static_cast<std::size_t>(mc)].insert(
        station_local_port_[static_cast<std::size_t>(m)]);
  }
  for (int c = 0; c < n_clusters; ++c) {
    if (!ports[static_cast<std::size_t>(c)].empty() || c == root_cluster) {
      clusters_[static_cast<std::size_t>(c)]->set_multicast_route(
          gid, std::vector<int>(ports[static_cast<std::size_t>(c)].begin(),
                                ports[static_cast<std::size_t>(c)].end()));
    }
  }
}

int Fabric::route_length(StationId a, StationId b) const {
  const int ca = cluster_of(a);
  const int cb = cluster_of(b);
  // Entry cluster + one cluster per inter-cluster hop.
  return 1 + hamming_distance(ca, cb);
}

}  // namespace hpcvorx::hw
