// The HPC interconnect: endpoints, clusters, and topology construction.
//
// A Fabric assembles Links and Clusters into one of the configurations the
// paper describes (plus one contrast shape, DESIGN.md §15):
//   * single_cluster — up to 12 stations on one cluster (the minimal HPC);
//   * hypercube — clusters joined as an incomplete hypercube, with the low
//     `dims` ports of every cluster used for inter-cluster links and the
//     remaining ports for stations (the 1024-node example in §1 uses 256
//     clusters with 8 cube ports and 4 station ports each);
//   * fat_tree — a two-level leaf/spine folded Clos over the same cluster
//     hardware, the paper-era contrast topology for the scaling sweeps.
//
// Routing is computed, not tabulated: each cluster gets a route function
// that derives the egress port from the frame's destination on the fly
// (e-cube bit arithmetic on the cube, up/down on the tree, or the adaptive
// congestion-aware variant).  Routing state is therefore O(stations +
// clusters) — the O(clusters²) next-hop table this replaced is what kept
// earlier fabrics under ~100 nodes.  Only fault-time rerouting, which must
// answer "shortest *surviving* path", materializes per-shard tables, and
// only on shards that actually saw a fault.
//
// Stations (processing nodes and host workstations look identical to the
// hardware) send and receive whole frames through an Endpoint, which
// models the node's HPC interface: a transmit section with a
// space-available interrupt and a receive section with a small whole-frame
// buffer and a receive interrupt.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hw/cluster.hpp"
#include "hw/frame_pool.hpp"
#include "hw/hypercube.hpp"
#include "hw/link.hpp"
#include "hw/shard_link.hpp"
#include "hw/topology.hpp"
#include "sim/shard_runtime.hpp"

namespace hpcvorx::hw {

class Fabric;

/// A station's interface to the interconnect.
class Endpoint {
 public:
  [[nodiscard]] StationId id() const { return id_; }

  /// True when a frame may be injected now (transmitter free and the
  /// first-hop buffer has space — hardware flow control, §2).
  [[nodiscard]] bool tx_ready() const { return out_->ready(); }

  /// Injects a frame.  Precondition: tx_ready().  Stamps src/injected_at.
  void transmit(Frame f);

  /// Fired whenever transmission may have become possible: the paper's
  /// "the processor receives an interrupt when room becomes available".
  void set_tx_ready_cb(std::function<void()> cb) {
    out_->set_ready_cb(std::move(cb));
  }

  [[nodiscard]] const Frame* rx_peek() const { return in_->peek(); }

  /// Removes the head received frame, freeing the hardware buffer slot.
  std::optional<Frame> rx_take() { return in_->take(); }

  /// Fired on each frame arrival: the receive interrupt.
  void set_rx_cb(std::function<void()> cb) { in_->set_deliver_cb(std::move(cb)); }

  [[nodiscard]] std::size_t rx_buffered() const { return in_->buffered(); }

  /// Frames this endpoint has injected (diagnostics).
  [[nodiscard]] std::uint64_t frames_sent() const { return frames_sent_; }

  /// The fabric-wide payload buffer pool.  The OS layer builds its
  /// steady-state payloads through this so the buffers recycle instead of
  /// round-tripping through make_shared (see frame_pool.hpp).
  [[nodiscard]] FramePool& frame_pool() { return *pool_; }

 private:
  friend class Fabric;
  sim::Simulator* sim_ = nullptr;
  StationId id_ = -1;
  Link* out_ = nullptr;  // station -> cluster
  Link* in_ = nullptr;   // cluster -> station
  FramePool* pool_ = nullptr;  // owned by the Fabric
  std::uint64_t frames_sent_ = 0;
};

/// Fabric-wide construction parameters.
struct FabricParams {
  Link::Params link;            // applies to every link in the fabric
  int ports_per_cluster = kClusterPorts;
  int rx_buffer_frames = 2;     // endpoint receive-section buffer
  // Optional override for inter-cluster (cube/tree trunk) links only —
  // longer cables between cabinets.  Sharded runs raise its latency to
  // widen the lookahead window (DESIGN.md §12); unset means trunk links
  // use `link`, exactly as before.
  std::optional<Link::Params> cluster_link;
  // Multi-cluster shape make()/make_sharded() build (single-cluster
  // machines ignore it) and how clusters pick egress ports (DESIGN.md §15).
  TopologyKind topo = TopologyKind::kHypercube;
  RoutingMode routing = RoutingMode::kEcube;
  // Fat tree only: spine count; 0 picks the widest tree the leaf port
  // budget allows (ports_per_cluster - stations_per_cluster uplinks).
  int fat_tree_spines = 0;
};

class Fabric {
 public:
  using Params = FabricParams;

  /// All `stations` on one cluster.  Requires stations <= ports_per_cluster.
  static std::unique_ptr<Fabric> single_cluster(sim::Simulator& sim,
                                                int stations,
                                                Params params = Params());

  /// Incomplete hypercube of ceil(stations / stations_per_cluster)
  /// clusters.  Requires stations_per_cluster + dimension <= ports (the
  /// check is always on and throws std::invalid_argument with an
  /// actionable message — a 4096-node misconfiguration must not silently
  /// build a broken fabric).
  static std::unique_ptr<Fabric> hypercube(sim::Simulator& sim, int stations,
                                           int stations_per_cluster,
                                           Params params = Params());

  /// Two-level fat tree (topology.hpp): ceil(stations/stations_per_cluster)
  /// leaves, each wired to every spine.  Same always-on validation.
  static std::unique_ptr<Fabric> fat_tree(sim::Simulator& sim, int stations,
                                          int stations_per_cluster,
                                          Params params = Params());

  /// Picks single_cluster when everything fits on one cluster, else the
  /// shape params.topo names with the given stations-per-cluster.
  static std::unique_ptr<Fabric> make(sim::Simulator& sim, int stations,
                                      int stations_per_cluster = 4,
                                      Params params = Params());

  /// Sharded fabric: clusters are split across the runtime's shards, and
  /// every trunk link whose endpoints land on different shards is built as
  /// a TX/RX half pair bridged through the runtime's exchanges (see
  /// shard_link.hpp).  With a 1-shard runtime this is exactly make() — the
  /// same construction order, the same links, byte-identical event
  /// sequences.
  static std::unique_ptr<Fabric> make_sharded(sim::ShardRuntime& rt,
                                              int stations,
                                              int stations_per_cluster = 4,
                                              Params params = Params());

  ~Fabric();

  [[nodiscard]] Endpoint& endpoint(StationId s) { return *endpoints_.at(s); }

  /// The simulator a station's cluster (and thus its node) lives on.
  [[nodiscard]] sim::Simulator& station_sim(StationId s) {
    return *endpoints_.at(static_cast<std::size_t>(s))->sim_;
  }

  /// Which runtime shard a cluster lives on (0 for unsharded fabrics).
  [[nodiscard]] int shard_of_cluster(int c) const {
    return cluster_shard_.empty()
               ? 0
               : cluster_shard_.at(static_cast<std::size_t>(c));
  }
  [[nodiscard]] int num_stations() const {
    return static_cast<int>(endpoints_.size());
  }
  [[nodiscard]] int num_clusters() const {
    return static_cast<int>(clusters_.size());
  }
  [[nodiscard]] int cluster_of(StationId s) const;
  [[nodiscard]] const Cluster& cluster(int c) const { return *clusters_.at(c); }
  [[nodiscard]] const Params& params() const { return params_; }
  [[nodiscard]] TopologyKind topology() const { return topo_; }
  [[nodiscard]] RoutingMode routing() const { return params_.routing; }

  /// Cluster hops a frame between the two stations traverses (along the
  /// deterministic route; adaptive routes are minimal, so their hop count
  /// is identical).
  [[nodiscard]] int route_length(StationId a, StationId b) const;

  /// The egress port at cluster `from` for the deterministic route towards
  /// cluster `to`, computed on the fly from the topology (e-cube bit
  /// arithmetic on the cube, up/down on the tree).  Precondition:
  /// from != to.  O(1); no table behind it.
  [[nodiscard]] int inter_next_port(int from, int to) const;

  /// The cluster reached through inter_next_port(from, to).
  [[nodiscard]] int inter_next_cluster(int from, int to) const;

  /// Resident routing-state bytes: station->cluster/port maps plus any
  /// fault-time per-shard tables.  O(stations + clusters) on every
  /// no-fault run at any scale — the acceptance gate for the >1000-node
  /// machine (the bench records it as net.scale_route_kb.*).
  [[nodiscard]] std::size_t routing_state_bytes() const;

  /// The pool Frame payload buffers are recycled through (also reachable
  /// per station via Endpoint::frame_pool()).
  [[nodiscard]] FramePool& frame_pool() { return pool_; }

  // ---- fault injection (DESIGN.md §14) ----
  //
  // Faults mutate only per-shard state: each shard keeps its own mirror of
  // the trunk-link up/down set and its own fault-route table, so the
  // injector pre-schedules the same fault on every shard's simulator at
  // the same virtual time and no shard ever writes another shard's state.
  // Both are allocated lazily on the shard's first fault — a no-fault run
  // never materializes them (per-shard-aware sizing at 4096 nodes), and
  // the build-time computed routes (and every determinism golden) stay
  // untouched.

  /// Every inter-cluster cable as an unordered (lo, hi) cluster pair, in
  /// topology-construction order (feeds sim::MachineShape::cube_edges).
  [[nodiscard]] std::vector<std::pair<int, int>> cube_edge_pairs() const;

  /// Applies a cable fault between clusters `a` and `b` as seen by `shard`:
  /// updates the shard's link-state mirror, downs/ups the direction links
  /// (or cross-shard halves) the shard owns, and recomputes the shard's
  /// fault-route table around the failure (BFS over surviving cables,
  /// preferring the computed deterministic hop when it still lies on a
  /// shortest path).  Must run on the shard's simulator at the fault's
  /// virtual time; the injector schedules it on every shard.  Idempotent.
  void apply_cube_fault(int shard, int a, int b, bool up);

  /// Power-cycles cluster `c` (input fifos dropped, arbiters reset) if the
  /// shard owns it; a no-op on every other shard.
  void apply_cluster_restart(int shard, int c);

  /// This shard's view of the cable between `a` and `b` (diagnostics).
  [[nodiscard]] bool cube_edge_up(int shard, int a, int b) const;

  /// Frames lost inside the interconnect (downed links + restarted and
  /// unroutable-at cluster drops), summed fabric-wide.  Virtual-time
  /// deterministic; read after run() — while shards are running the
  /// per-shard components may not be read across threads.
  [[nodiscard]] std::uint64_t frames_dropped() const;

  /// Programs hardware multicast group `gid`: a frame injected by `root`
  /// with Frame::group == gid is replicated inside the clusters along the
  /// union of root->member routes and delivered to every member except the
  /// root itself.  The tree follows the deterministic routes in every
  /// routing mode — replication sets are static switch configuration.
  /// Concurrent group frames are flow-controlled by the hardware like any
  /// others; the software layer keeps at most one multicast outstanding
  /// per group.
  void add_multicast_group(std::uint64_t gid, StationId root,
                           const std::vector<StationId>& members);

 private:
  Fabric(sim::Simulator& sim, Params params) : sim_(sim), params_(params) {}
  Link* new_link(sim::Simulator& sim, std::string name, Link::Params p);
  void add_station(int cluster_index, int local_port);
  /// One direction of an inter-cluster cable: out of `from` port
  /// `port_out`, into `to` port `port_in` (full-duplex pairs share the
  /// port index on each side).  Registers the cable in the fault registry
  /// and splits the link into bridged TX/RX halves when it crosses shards.
  void add_trunk_link(int from, int to, int port_out, int port_in,
                      const Link::Params& p);
  /// Hands every cluster its computed route function.
  void program_routes();
  /// The per-cluster routing oracle (bound into Cluster::set_route_fn):
  /// local delivery port, fault-table route when this shard has live
  /// faults, else the computed deterministic or adaptive next hop.
  [[nodiscard]] int route_port(int cluster, const Frame& f);
  /// Minimal adaptive next hop: the productive egress port with the
  /// lowest queue depth among those ready to accept a frame, ties broken
  /// to the deterministic port and then the lowest port index; falls back
  /// to the deterministic port when nothing is ready (DESIGN.md §15).
  [[nodiscard]] int adaptive_next_port(int from, int to) const;
  /// Shared builders; rt == nullptr builds the classic single-simulator
  /// fabric (the historical hypercube() path).
  static std::unique_ptr<Fabric> hypercube_impl(sim::Simulator& sim0,
                                                sim::ShardRuntime* rt,
                                                int stations,
                                                int stations_per_cluster,
                                                Params params);
  static std::unique_ptr<Fabric> fat_tree_impl(sim::Simulator& sim0,
                                               sim::ShardRuntime* rt,
                                               int stations,
                                               int stations_per_cluster,
                                               Params params);
  void attach_runtime(sim::ShardRuntime& rt);
  /// Per-shard-aware payload-pool caps: each shard's free lists scale
  /// with the stations it hosts instead of a fabric-wide constant.
  void size_shard_pools();
  [[nodiscard]] sim::Simulator& cluster_sim(int c);
  [[nodiscard]] FramePool& pool_for_shard(int shard);
  [[nodiscard]] int cube_pair_index(int a, int b) const;  // -1: no cable
  /// The shard's cable mirror, created on first use (all cables up).
  std::vector<char>& edge_mirror(int shard);
  /// Rebuilds `shard`'s fault-route table from its link-state mirror.
  void recompute_shard_routes(int shard);
  [[nodiscard]] int num_fault_domains() const {
    return runtime_ == nullptr ? 1 : runtime_->num_shards();
  }

  sim::Simulator& sim_;  // shard 0 (the only simulator when unsharded)
  sim::ShardRuntime* runtime_ = nullptr;
  Params params_;
  TopologyKind topo_ = TopologyKind::kSingleCluster;
  FatTreeShape fat_;  // valid only when topo_ == kFatTree
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::unique_ptr<Cluster>> clusters_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::vector<int> station_cluster_;     // station -> cluster index
  std::vector<int> station_local_port_;  // station -> port on its cluster
  std::vector<int> cluster_shard_;       // cluster -> shard (empty => all 0)
  std::vector<std::unique_ptr<ShardLinkBridge>> bridges_;
  // One entry per inter-cluster cable (unordered pair, a < b), registered
  // in topology-construction order.  `ab`/`ba` are the direction links
  // (the TX half when the cable crosses shards, with the RX half beside
  // it); faults address cables through this registry.  port_a/port_b are
  // the egress ports at each end (equal to the cube dimension on the
  // hypercube; uplink/leaf indices on the fat tree).
  struct CubePair {
    int a = 0, b = 0;
    int port_a = 0, port_b = 0;
    Link* ab = nullptr;     // a -> b (whole link, or cross-shard TX half)
    Link* ab_rx = nullptr;  // a -> b RX half (cross-shard only)
    Link* ba = nullptr;
    Link* ba_rx = nullptr;
  };
  std::vector<CubePair> cube_pairs_;
  // Fault-time state, all lazily allocated on a shard's first fault (a
  // no-fault run at 4096 nodes carries zero bytes of it):
  //   * shard_edge_up_[shard][pair] — the shard's cable-state mirror;
  //   * fault_next_port_[shard][c * n + dc] — the shard's rerouted egress
  //     ports (-1 unreachable), O(clusters²) but only where faults are
  //     live.  Each shard's thread reads and writes only its own rows.
  std::vector<std::vector<char>> shard_edge_up_;
  std::vector<std::vector<std::int16_t>> fault_next_port_;
  FramePool pool_;  // shard 0's payload pool
  std::vector<std::unique_ptr<FramePool>> shard_pools_;  // shards 1..N-1
};

}  // namespace hpcvorx::hw
