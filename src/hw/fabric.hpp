// The HPC interconnect: endpoints, clusters, and topology construction.
//
// A Fabric assembles Links and Clusters into one of the configurations the
// paper describes:
//   * single_cluster — up to 12 stations on one cluster (the minimal HPC);
//   * hypercube — clusters joined as an incomplete hypercube, with the low
//     `dims` ports of every cluster used for inter-cluster links and the
//     remaining ports for stations (the 1024-node example in §1 uses 256
//     clusters with 8 cube ports and 4 station ports each).
//
// Stations (processing nodes and host workstations look identical to the
// hardware) send and receive whole frames through an Endpoint, which
// models the node's HPC interface: a transmit section with a
// space-available interrupt and a receive section with a small whole-frame
// buffer and a receive interrupt.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hw/cluster.hpp"
#include "hw/frame_pool.hpp"
#include "hw/hypercube.hpp"
#include "hw/link.hpp"
#include "hw/shard_link.hpp"
#include "sim/shard_runtime.hpp"

namespace hpcvorx::hw {

class Fabric;

/// A station's interface to the interconnect.
class Endpoint {
 public:
  [[nodiscard]] StationId id() const { return id_; }

  /// True when a frame may be injected now (transmitter free and the
  /// first-hop buffer has space — hardware flow control, §2).
  [[nodiscard]] bool tx_ready() const { return out_->ready(); }

  /// Injects a frame.  Precondition: tx_ready().  Stamps src/injected_at.
  void transmit(Frame f);

  /// Fired whenever transmission may have become possible: the paper's
  /// "the processor receives an interrupt when room becomes available".
  void set_tx_ready_cb(std::function<void()> cb) {
    out_->set_ready_cb(std::move(cb));
  }

  [[nodiscard]] const Frame* rx_peek() const { return in_->peek(); }

  /// Removes the head received frame, freeing the hardware buffer slot.
  std::optional<Frame> rx_take() { return in_->take(); }

  /// Fired on each frame arrival: the receive interrupt.
  void set_rx_cb(std::function<void()> cb) { in_->set_deliver_cb(std::move(cb)); }

  [[nodiscard]] std::size_t rx_buffered() const { return in_->buffered(); }

  /// Frames this endpoint has injected (diagnostics).
  [[nodiscard]] std::uint64_t frames_sent() const { return frames_sent_; }

  /// The fabric-wide payload buffer pool.  The OS layer builds its
  /// steady-state payloads through this so the buffers recycle instead of
  /// round-tripping through make_shared (see frame_pool.hpp).
  [[nodiscard]] FramePool& frame_pool() { return *pool_; }

 private:
  friend class Fabric;
  sim::Simulator* sim_ = nullptr;
  StationId id_ = -1;
  Link* out_ = nullptr;  // station -> cluster
  Link* in_ = nullptr;   // cluster -> station
  FramePool* pool_ = nullptr;  // owned by the Fabric
  std::uint64_t frames_sent_ = 0;
};

/// Fabric-wide construction parameters.
struct FabricParams {
  Link::Params link;            // applies to every link in the fabric
  int ports_per_cluster = kClusterPorts;
  int rx_buffer_frames = 2;     // endpoint receive-section buffer
  // Optional override for inter-cluster (cube) links only — longer cables
  // between cabinets.  Sharded runs raise its latency to widen the
  // lookahead window (DESIGN.md §12); unset means cube links use `link`,
  // exactly as before.
  std::optional<Link::Params> cluster_link;
};

class Fabric {
 public:
  using Params = FabricParams;

  /// All `stations` on one cluster.  Requires stations <= ports_per_cluster.
  static std::unique_ptr<Fabric> single_cluster(sim::Simulator& sim,
                                                int stations,
                                                Params params = Params());

  /// Incomplete hypercube of ceil(stations / stations_per_cluster)
  /// clusters.  Requires stations_per_cluster + dimension <= ports.
  static std::unique_ptr<Fabric> hypercube(sim::Simulator& sim, int stations,
                                           int stations_per_cluster,
                                           Params params = Params());

  /// Picks single_cluster when everything fits on one cluster, else a
  /// hypercube with the given stations-per-cluster.
  static std::unique_ptr<Fabric> make(sim::Simulator& sim, int stations,
                                      int stations_per_cluster = 4,
                                      Params params = Params());

  /// Sharded hypercube: clusters are split into contiguous blocks, one
  /// block per runtime shard, and every cube link whose endpoints land on
  /// different shards is built as a TX/RX half pair bridged through the
  /// runtime's exchanges (see shard_link.hpp).  With a 1-shard runtime
  /// this is exactly make() — the same construction order, the same links,
  /// byte-identical event sequences.
  static std::unique_ptr<Fabric> make_sharded(sim::ShardRuntime& rt,
                                              int stations,
                                              int stations_per_cluster = 4,
                                              Params params = Params());

  ~Fabric();

  [[nodiscard]] Endpoint& endpoint(StationId s) { return *endpoints_.at(s); }

  /// The simulator a station's cluster (and thus its node) lives on.
  [[nodiscard]] sim::Simulator& station_sim(StationId s) {
    return *endpoints_.at(static_cast<std::size_t>(s))->sim_;
  }

  /// Which runtime shard a cluster lives on (0 for unsharded fabrics).
  [[nodiscard]] int shard_of_cluster(int c) const {
    return cluster_shard_.empty()
               ? 0
               : cluster_shard_.at(static_cast<std::size_t>(c));
  }
  [[nodiscard]] int num_stations() const {
    return static_cast<int>(endpoints_.size());
  }
  [[nodiscard]] int num_clusters() const {
    return static_cast<int>(clusters_.size());
  }
  [[nodiscard]] int cluster_of(StationId s) const;
  [[nodiscard]] const Cluster& cluster(int c) const { return *clusters_.at(c); }
  [[nodiscard]] const Params& params() const { return params_; }

  /// Cluster hops a frame between the two stations traverses.
  [[nodiscard]] int route_length(StationId a, StationId b) const;

  /// The cube dimension (== inter-cluster port) of the first hop from
  /// cluster `from` towards cluster `to`, from the next-hop table
  /// precomputed at topology-build time.  Precondition: from != to.
  [[nodiscard]] int next_hop_dim(int from, int to) const {
    const auto d = cluster_next_dim_.at(
        static_cast<std::size_t>(from) * clusters_.size() +
        static_cast<std::size_t>(to));
    assert(d >= 0);
    return d;
  }

  /// The pool Frame payload buffers are recycled through (also reachable
  /// per station via Endpoint::frame_pool()).
  [[nodiscard]] FramePool& frame_pool() { return pool_; }

  // ---- fault injection (DESIGN.md §14) ----
  //
  // Faults mutate only per-shard state: each shard keeps its own mirror of
  // the cube-link up/down set and its own clusters' route tables, so the
  // injector pre-schedules the same fault on every shard's simulator at
  // the same virtual time and no shard ever writes another shard's state.
  // No-fault runs never call these, leaving the build-time e-cube routes
  // (and every determinism golden) untouched.

  /// Every inter-cluster cable as an unordered (lo, hi) cluster pair, in
  /// topology-construction order (feeds sim::MachineShape::cube_edges).
  [[nodiscard]] std::vector<std::pair<int, int>> cube_edge_pairs() const;

  /// Applies a cable fault between clusters `a` and `b` as seen by `shard`:
  /// updates the shard's link-state mirror, downs/ups the direction links
  /// (or cross-shard halves) the shard owns, and recomputes the shard's
  /// clusters' routes around the failure (BFS over surviving cables,
  /// preferring the build-time e-cube hop when it still lies on a shortest
  /// path).  Must run on the shard's simulator at the fault's virtual
  /// time; the injector schedules it on every shard.  Idempotent.
  void apply_cube_fault(int shard, int a, int b, bool up);

  /// Power-cycles cluster `c` (input fifos dropped, arbiters reset) if the
  /// shard owns it; a no-op on every other shard.
  void apply_cluster_restart(int shard, int c);

  /// This shard's view of the cable between `a` and `b` (diagnostics).
  [[nodiscard]] bool cube_edge_up(int shard, int a, int b) const;

  /// Frames lost inside the interconnect (downed links + restarted and
  /// unroutable-at cluster drops), summed fabric-wide.  Virtual-time
  /// deterministic; read after run() — while shards are running the
  /// per-shard components may not be read across threads.
  [[nodiscard]] std::uint64_t frames_dropped() const;

  /// Programs hardware multicast group `gid`: a frame injected by `root`
  /// with Frame::group == gid is replicated inside the clusters along the
  /// union of root->member routes and delivered to every member except the
  /// root itself.  Concurrent group frames are flow-controlled by the
  /// hardware like any others; the software layer keeps at most one
  /// multicast outstanding per group.
  void add_multicast_group(std::uint64_t gid, StationId root,
                           const std::vector<StationId>& members);

 private:
  Fabric(sim::Simulator& sim, Params params) : sim_(sim), params_(params) {}
  Link* new_link(sim::Simulator& sim, std::string name, Link::Params p);
  void add_station(int cluster_index, int local_port);
  /// Fills cluster_next_dim_, then the clusters' flat station->port maps.
  void program_routes();
  /// Shared hypercube builder; rt == nullptr builds the classic
  /// single-simulator cube (the historical hypercube() path).
  static std::unique_ptr<Fabric> hypercube_impl(sim::Simulator& sim0,
                                                sim::ShardRuntime* rt,
                                                int stations,
                                                int stations_per_cluster,
                                                Params params);
  [[nodiscard]] sim::Simulator& cluster_sim(int c);
  [[nodiscard]] FramePool& pool_for_shard(int shard);
  [[nodiscard]] int cube_pair_index(int a, int b) const;  // -1: no cable
  /// Rebuilds `shard`'s clusters' route tables from its link-state mirror.
  void recompute_shard_routes(int shard);
  [[nodiscard]] int num_fault_domains() const {
    return runtime_ == nullptr ? 1 : runtime_->num_shards();
  }

  sim::Simulator& sim_;  // shard 0 (the only simulator when unsharded)
  sim::ShardRuntime* runtime_ = nullptr;
  Params params_;
  int stations_per_cluster_ = 0;  // 0 => single cluster
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::unique_ptr<Cluster>> clusters_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::vector<int> station_cluster_;     // station -> cluster index
  std::vector<int> station_local_port_;  // station -> port on its cluster
  std::vector<int> cluster_shard_;       // cluster -> shard (empty => all 0)
  std::vector<std::unique_ptr<ShardLinkBridge>> bridges_;
  // One entry per inter-cluster cable (unordered pair, a < b), registered
  // in topology-construction order.  `ab`/`ba` are the direction links
  // (the TX half when the cable crosses shards, with the RX half beside
  // it); faults address cables through this registry.
  struct CubePair {
    int a = 0, b = 0, dim = 0;
    Link* ab = nullptr;     // a -> b (whole link, or cross-shard TX half)
    Link* ab_rx = nullptr;  // a -> b RX half (cross-shard only)
    Link* ba = nullptr;
    Link* ba_rx = nullptr;
  };
  std::vector<CubePair> cube_pairs_;
  // Per-shard cable-state mirrors: shard_edge_up_[shard][pair] — each
  // shard's thread reads and writes only its own row at fault time.
  std::vector<std::vector<char>> shard_edge_up_;
  // Next-hop cube dimension for every (from, to) cluster pair, computed
  // once by program_routes (-1 on the diagonal).  Unicast route
  // programming and multicast tree construction both walk this table
  // instead of re-deriving hops bit by bit.
  std::vector<std::int16_t> cluster_next_dim_;
  FramePool pool_;  // shard 0's payload pool
  std::vector<std::unique_ptr<FramePool>> shard_pools_;  // shards 1..N-1
};

}  // namespace hpcvorx::hw
