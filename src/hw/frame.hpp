// Hardware message frames.
//
// The HPC limits messages to 1060 bytes of payload (§2 of the paper); the
// interconnect buffers and forwards *whole* frames, never fragments.  A
// Frame models the wire representation: a small routing/dispatch header
// plus a payload whose bytes may (optionally) be carried for end-to-end
// data-integrity checking, or omitted when only timing matters.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/time.hpp"

namespace hpcvorx::hw {

/// Globally unique id of an attached station (processing node or host
/// workstation).  Stations are numbered densely from 0 by the Fabric.
using StationId = int;

inline constexpr std::uint32_t kMaxPayloadBytes = 1060;  // HPC frame limit
inline constexpr std::uint32_t kHeaderBytes = 16;        // modelled header

using Payload = std::shared_ptr<const std::vector<std::byte>>;

/// Convenience: wraps bytes into a shareable payload.  Fine for tests,
/// apps, and one-off control frames; steady-state OS-layer payloads should
/// come from hw::FramePool instead (vorx-lint R5 enforces this).
// vorx-lint: allow(R5) this is the definition the rule points away from
[[nodiscard]] inline Payload make_payload(std::vector<std::byte> bytes) {
  // vorx-lint: allow(R5) the one sanctioned make_shared payload spelling
  return std::make_shared<const std::vector<std::byte>>(std::move(bytes));
}

struct Frame {
  StationId src = -1;
  StationId dst = -1;

  // Software-defined dispatch fields (interpreted by the OS layer, carried
  // opaquely by the hardware — they model bits inside the header).
  std::uint32_t kind = 0;  // protocol discriminator
  std::uint64_t obj = 0;   // target channel / communications-object id
  std::uint64_t seq = 0;   // protocol sequence number / credit count
  std::uint64_t aux = 0;   // protocol-specific extra header word

  // Hardware multicast group id; 0 = ordinary unicast.  Group frames are
  // replicated inside the clusters along a pre-programmed spanning tree
  // (§4.2: the HPC hardware was designed "to be able to implement
  // multicast efficiently").
  std::uint64_t group = 0;

  std::uint32_t payload_bytes = 0;
  Payload data;  // optional actual contents (null when only timing matters)

  sim::SimTime injected_at = 0;  // set by the endpoint at transmit time
  int hops = 0;                  // cluster traversals (diagnostics/tests)

  [[nodiscard]] std::uint32_t wire_bytes() const {
    return payload_bytes + kHeaderBytes;
  }
};

}  // namespace hpcvorx::hw
