// vorx-lint-file: allow(R5) this file *is* the pool R5 points call sites at
#include "hw/frame_pool.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

namespace hpcvorx::hw {

struct FramePool::Impl {
  std::vector<std::vector<std::byte>> free_bufs;
  // Uniform-size raw blocks backing the allocate_shared owner nodes (one
  // instantiation => one size; the guard below keeps it honest).
  std::vector<void*> free_blocks;
  std::size_t block_size = 0;
  std::size_t max_free = 4096;
  std::uint64_t created = 0;
  std::uint64_t recycled = 0;
  std::uint64_t made = 0;
  std::size_t live = 0;       // payloads made and not yet released
  std::size_t peak_live = 0;  // high-water mark of `live`

  ~Impl() {
    for (void* p : free_blocks) ::operator delete(p);
  }

  void trim_to_cap() {
    while (free_bufs.size() > max_free) free_bufs.pop_back();
    while (free_blocks.size() > max_free) {
      ::operator delete(free_blocks.back());
      free_blocks.pop_back();
    }
  }

  std::vector<std::byte> take_buffer() {
    if (!free_bufs.empty()) {
      std::vector<std::byte> b = std::move(free_bufs.back());
      free_bufs.pop_back();
      b.clear();  // keeps capacity
      ++recycled;
      return b;
    }
    ++created;
    return {};
  }

  void release_buffer(std::vector<std::byte>&& b) {
    if (free_bufs.size() < max_free) free_bufs.push_back(std::move(b));
  }

  void* alloc_block(std::size_t bytes) {
    if (bytes == block_size && !free_blocks.empty()) {
      void* p = free_blocks.back();
      free_blocks.pop_back();
      return p;
    }
    return ::operator new(bytes);
  }

  void free_block(void* p, std::size_t bytes) {
    if ((block_size == 0 || block_size == bytes) &&
        free_blocks.size() < max_free) {
      block_size = bytes;
      free_blocks.push_back(p);
      return;
    }
    ::operator delete(p);
  }
};

/// Owns one payload's bytes; its destructor is the recycle hook.  The
/// Payload handed to callers is an aliasing shared_ptr onto `buf`.
struct FramePool::Node {
  std::vector<std::byte> buf;
  std::shared_ptr<Impl> pool;

  Node(std::vector<std::byte> b, std::shared_ptr<Impl> p)
      : buf(std::move(b)), pool(std::move(p)) {}
  ~Node() {
    pool->release_buffer(std::move(buf));
    --pool->live;
  }
};

/// Routes allocate_shared's single control-block+node allocation through
/// the pool's block free list.  Holds the Impl by shared_ptr: the standard
/// requires the control block's allocator copy to be taken out before
/// deallocation, so the Impl outlives every payload even after the last
/// FramePool handle is gone.
template <typename T>
struct FramePool::CtrlAlloc {
  using value_type = T;

  std::shared_ptr<Impl> impl;

  explicit CtrlAlloc(std::shared_ptr<Impl> i) : impl(std::move(i)) {}
  template <typename U>
  CtrlAlloc(const CtrlAlloc<U>& other) : impl(other.impl) {}  // NOLINT

  T* allocate(std::size_t n) {
    return static_cast<T*>(impl->alloc_block(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) {
    impl->free_block(p, n * sizeof(T));
  }
  template <typename U>
  bool operator==(const CtrlAlloc<U>& other) const {
    return impl == other.impl;
  }
};

FramePool::FramePool() : impl_(std::make_shared<Impl>()) {}

std::vector<std::byte> FramePool::buffer() { return impl_->take_buffer(); }

Payload FramePool::make(std::vector<std::byte> bytes) {
  ++impl_->made;
  impl_->peak_live = std::max(impl_->peak_live, ++impl_->live);
  std::shared_ptr<Node> node = std::allocate_shared<Node>(
      CtrlAlloc<Node>{impl_}, std::move(bytes), impl_);
  return Payload(node, &node->buf);
}

Payload FramePool::make_copy(const std::byte* data, std::size_t n) {
  std::vector<std::byte> b = buffer();
  b.resize(n);
  if (n != 0) std::memcpy(b.data(), data, n);
  return make(std::move(b));
}

void FramePool::set_max_free(std::size_t n) {
  impl_->max_free = n;
  impl_->trim_to_cap();
}

std::size_t FramePool::max_free() const { return impl_->max_free; }

std::size_t FramePool::apply_high_water_policy(double headroom) {
  // At most peak_live buffers can ever be in flight at once, so that many
  // free slots (plus headroom for transient bursts) recycle everything the
  // workload actually needs; at least one slot keeps a quiet pool warm.
  const double target = static_cast<double>(impl_->peak_live) * headroom;
  const std::size_t cap =
      std::max<std::size_t>(1, static_cast<std::size_t>(target + 0.999999));
  set_max_free(cap);
  return cap;
}

std::uint64_t FramePool::buffers_created() const { return impl_->created; }
std::uint64_t FramePool::buffers_recycled() const { return impl_->recycled; }
std::uint64_t FramePool::payloads_made() const { return impl_->made; }
std::size_t FramePool::free_buffers() const { return impl_->free_bufs.size(); }
std::size_t FramePool::payloads_live() const { return impl_->live; }
std::size_t FramePool::peak_payloads_live() const { return impl_->peak_live; }

}  // namespace hpcvorx::hw
