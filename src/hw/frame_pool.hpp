// Recycling allocator for Frame payload buffers.
//
// Every payload used to round-trip through make_shared: one control-block
// + vector allocation and one byte-buffer allocation per frame, all freed
// a few microseconds of virtual time later when the last Frame copy
// dropped the shared_ptr.  In steady state the traffic is highly regular
// (the HPC caps payloads at 1060 bytes), so the same buffer sizes recur
// millions of times — ideal free-list territory.
//
// A FramePool hands out:
//   * buffer() — a byte vector whose *capacity* survived a previous
//     payload (cleared, ready to fill); and
//   * make(bytes) — a Payload (shared_ptr<const vector<byte>>) that
//     returns its buffer to the pool when the last reference drops.
//
// Zero-allocation steady state: the payload's owner object and its
// control block come from a same-size block free list (via a custom
// allocator + allocate_shared), and the byte buffer keeps its capacity
// across recycles.  The Payload consumers see is an aliasing shared_ptr —
// no change to Frame or any receiver.
//
// Lifetime: payloads keep the pool's guts alive (the owner node and the
// allocator copy inside the control block both hold the Impl), so a
// Payload may safely outlive the FramePool handle, the Fabric, and the
// System that created it.
//
// vorx-lint-file: allow(R5) this file *is* the pool R5 points call sites at
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "hw/frame.hpp"

namespace hpcvorx::hw {

class FramePool {
 public:
  /// Creates an empty pool.  The handle is cheap to copy; copies share
  /// the same free lists.
  FramePool();

  /// A cleared byte vector, reusing the capacity of a previously released
  /// payload buffer when one is available.
  [[nodiscard]] std::vector<std::byte> buffer();

  /// Wraps `bytes` into a Payload that recycles its buffer (and its
  /// owner/control block) back into this pool when the last reference
  /// drops.
  [[nodiscard]] Payload make(std::vector<std::byte> bytes);

  /// Convenience: buffer() + copy + make().
  [[nodiscard]] Payload make_copy(const std::byte* data, std::size_t n);

  /// Caps both free lists (buffers and owner blocks); default 4096 each.
  /// Excess releases simply free their memory.  Shrinking the cap trims
  /// the lists immediately.
  void set_max_free(std::size_t n);

  /// Current free-list cap.
  [[nodiscard]] std::size_t max_free() const;

  /// Measured sizing policy (ROADMAP "FramePool sizing policy"): caps the
  /// free lists from the recorded live-payload high-water mark instead of
  /// the unbounded-ish default.  The peak number of simultaneously-live
  /// payloads is exactly the most buffers that can ever come back, so
  /// `ceil(peak * headroom)` free slots make the steady state
  /// allocation-free while long multi-tenant runs (§3.1 allocation day)
  /// stop hoarding every buffer they ever touched.  Trims immediately;
  /// returns the new cap.
  std::size_t apply_high_water_policy(double headroom = 1.25);

  // ---- stats (tests, benches, diagnostics) ----

  /// Buffers handed out by buffer()/make_copy() that had to be newly
  /// constructed (no free buffer available).
  [[nodiscard]] std::uint64_t buffers_created() const;
  /// Buffers handed out that reused a released payload's storage.
  [[nodiscard]] std::uint64_t buffers_recycled() const;
  /// Payloads minted by make()/make_copy().
  [[nodiscard]] std::uint64_t payloads_made() const;
  /// Released buffers currently waiting for reuse.
  [[nodiscard]] std::size_t free_buffers() const;
  /// Payloads currently alive (made and not yet fully released).
  [[nodiscard]] std::size_t payloads_live() const;
  /// High-water mark of payloads_live() — the pool-occupancy measurement
  /// apply_high_water_policy() sizes from (also a bench counter:
  /// frame_pool.occupancy_* rows).
  [[nodiscard]] std::size_t peak_payloads_live() const;

 private:
  struct Impl;
  struct Node;
  template <typename T>
  struct CtrlAlloc;

  std::shared_ptr<Impl> impl_;
};

}  // namespace hpcvorx::hw
