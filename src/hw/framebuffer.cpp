#include "hw/framebuffer.hpp"

#include <algorithm>

namespace hpcvorx::hw {

void FrameBuffer::write_bytes(std::size_t offset, std::span<const std::byte> data) {
  const std::size_t n = frame_bytes();
  for (std::size_t i = 0; i < data.size(); ++i) {
    pixels_[(offset + i) % n] = data[i];
  }
  bytes_written_ += data.size();
}

void FrameBuffer::write_length(std::size_t offset, std::size_t len) {
  (void)offset;
  bytes_written_ += len;
}

std::uint64_t FrameBuffer::checksum() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::byte b : pixels_) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace hpcvorx::hw
