// A workstation frame buffer for the real-time bitmap experiments (§4.1).
//
// The paper streams 900×900 bi-level frames from a processing node
// straight into a workstation's display memory at 3.2 Mbyte/s.  This model
// keeps the pixel bytes (so tests can checksum end-to-end integrity) and
// counts refresh completions so the benchmark can report frames/second.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace hpcvorx::hw {

class FrameBuffer {
 public:
  /// `bits_per_pixel` is 1 for the paper's monochrome display.
  FrameBuffer(int width, int height, int bits_per_pixel = 1)
      : width_(width),
        height_(height),
        bits_per_pixel_(bits_per_pixel),
        pixels_(frame_bytes(), std::byte{0}) {}

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }

  /// Bytes in one full frame.
  [[nodiscard]] std::size_t frame_bytes() const {
    return (static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_) *
                static_cast<std::size_t>(bits_per_pixel_) +
            7) /
           8;
  }

  /// Copies incoming scan data at `offset` (wraps per frame).  The caller
  /// models the copy's CPU cost; the buffer just stores and counts.
  void write_bytes(std::size_t offset, std::span<const std::byte> data);

  /// Write without content (timing-only streams).
  void write_length(std::size_t offset, std::size_t len);

  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_written_; }
  [[nodiscard]] std::uint64_t frames_completed() const {
    return bytes_written_ / frame_bytes();
  }

  /// FNV-1a over current pixel contents (end-to-end integrity checks).
  [[nodiscard]] std::uint64_t checksum() const;

  [[nodiscard]] std::span<const std::byte> pixels() const { return pixels_; }

 private:
  int width_;
  int height_;
  int bits_per_pixel_;
  std::vector<std::byte> pixels_;
  std::uint64_t bytes_written_ = 0;
};

}  // namespace hpcvorx::hw
