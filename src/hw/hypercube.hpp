// Incomplete-hypercube routing for the HPC cluster network.
//
// §1 of the paper: "we have chosen to connect the clusters in the shape of
// an incomplete hypercube", citing Katseff, "Incomplete Hypercubes", IEEE
// Trans. Computers 37(5), 1988.  An incomplete hypercube on N labels is
// the induced subgraph of the dim-cube on labels {0..N-1}; N need not be a
// power of two.
//
// Routing uses the classic incomplete-hypercube construction: correct the
// 1→0 address bits from the most significant down (every intermediate
// label only loses bits, so it stays < the source), then correct the 0→1
// bits from the least significant up (every intermediate is a subset of
// the destination's bits, so it stays <= the destination).  Every
// intermediate label is therefore a valid cluster, the path length equals
// the Hamming distance, and — because the (direction, dimension) pairs are
// visited in a globally consistent order — the route set is deadlock-free
// under whole-frame buffering.
//
// Labels are a fixed-width unsigned type (CubeLabel).  The label math used
// signed int with `1 << b` masks while fabrics topped out at ~80 nodes; at
// 4096 nodes and beyond the unsigned type keeps every mask, xor, and
// comparison free of sign/overflow hazards by construction and makes the
// valid range explicit: up to 2^31 labels.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace hpcvorx::hw {

/// Cluster label in the (possibly incomplete) hypercube.  Unsigned and
/// fixed-width so dimension masks and xor-distance math are well defined
/// for every supported fabric size (label count up to 2^31).
using CubeLabel = std::uint32_t;

/// Largest supported label count: masks are `CubeLabel{1} << b` with
/// b < 32, so N may not exceed 2^31.
inline constexpr CubeLabel kMaxCubeLabels = CubeLabel{1} << 31;

/// Number of address bits needed for N labels (dimension of the enclosing
/// cube).  dimension_of(1) == 0.
[[nodiscard]] constexpr int dimension_of(CubeLabel n) {
  assert(n >= 1 && n <= kMaxCubeLabels);
  int bits = 0;
  while ((CubeLabel{1} << bits) < n) ++bits;
  return bits;
}

/// The index of the single set bit of `mask` (== the cube dimension a hop
/// across `mask` traverses).
[[nodiscard]] constexpr int bit_index(CubeLabel mask) {
  assert(mask != 0 && (mask & (mask - 1)) == 0);
  int b = 0;
  while ((mask & 1u) == 0) {
    mask >>= 1u;
    ++b;
  }
  return b;
}

/// True if labels a and b are adjacent in the hypercube (differ in one bit).
[[nodiscard]] constexpr bool hypercube_adjacent(CubeLabel a, CubeLabel b) {
  const CubeLabel d = a ^ b;
  return d != 0 && (d & (d - 1)) == 0;
}

/// The next label on the route from `from` to `to` in an incomplete
/// hypercube with `n` labels.  Preconditions: from,to < n, from != to.
/// The returned label is always < n and adjacent to `from`.
[[nodiscard]] constexpr CubeLabel next_hypercube_hop(CubeLabel from,
                                                     CubeLabel to,
                                                     CubeLabel n) {
  assert(from < n && to < n && from != to);
  const CubeLabel diff = from ^ to;
  // Phase 1: clear bits set in `from` but not `to`, MSB first.
  for (int b = dimension_of(n) - 1; b >= 0; --b) {
    const CubeLabel mask = CubeLabel{1} << b;
    if ((diff & mask) != 0 && (from & mask) != 0) return from ^ mask;
  }
  // Phase 2: set bits present in `to` but not `from`, LSB first.
  for (int b = 0;; ++b) {
    const CubeLabel mask = CubeLabel{1} << b;
    if ((diff & mask) != 0) {
      assert((to & mask) != 0);
      return from ^ mask;
    }
  }
}

/// Appends the route from `from` to `to` (excluding `from`, including
/// `to`) to `out` without clearing it.  The allocation-free sibling of
/// hypercube_route for per-frame callers that reuse a scratch vector.
inline void hypercube_route_into(CubeLabel from, CubeLabel to, CubeLabel n,
                                 std::vector<CubeLabel>& out) {
  while (from != to) {
    from = next_hypercube_hop(from, to, n);
    out.push_back(from);
  }
}

/// The full route from `from` to `to` (excluding `from`, including `to`).
[[nodiscard]] inline std::vector<CubeLabel> hypercube_route(CubeLabel from,
                                                            CubeLabel to,
                                                            CubeLabel n) {
  std::vector<CubeLabel> route;
  hypercube_route_into(from, to, n, route);
  return route;
}

/// Hamming distance between labels (== route length).
[[nodiscard]] constexpr int hamming_distance(CubeLabel a, CubeLabel b) {
  CubeLabel d = a ^ b;
  int c = 0;
  while (d != 0) {
    d &= d - 1;
    ++c;
  }
  return c;
}

}  // namespace hpcvorx::hw
