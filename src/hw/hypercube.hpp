// Incomplete-hypercube routing for the HPC cluster network.
//
// §1 of the paper: "we have chosen to connect the clusters in the shape of
// an incomplete hypercube", citing Katseff, "Incomplete Hypercubes", IEEE
// Trans. Computers 37(5), 1988.  An incomplete hypercube on N labels is
// the induced subgraph of the dim-cube on labels {0..N-1}; N need not be a
// power of two.
//
// Routing uses the classic incomplete-hypercube construction: correct the
// 1→0 address bits from the most significant down (every intermediate
// label only loses bits, so it stays < the source), then correct the 0→1
// bits from the least significant up (every intermediate is a subset of
// the destination's bits, so it stays <= the destination).  Every
// intermediate label is therefore a valid cluster, the path length equals
// the Hamming distance, and — because the (direction, dimension) pairs are
// visited in a globally consistent order — the route set is deadlock-free
// under whole-frame buffering.
#pragma once

#include <cassert>
#include <vector>

namespace hpcvorx::hw {

/// Number of address bits needed for N labels (dimension of the enclosing
/// cube).  dimension_of(1) == 0.
[[nodiscard]] constexpr int dimension_of(int n) {
  assert(n >= 1);
  int bits = 0;
  while ((1 << bits) < n) ++bits;
  return bits;
}

/// True if labels a and b are adjacent in the hypercube (differ in one bit).
[[nodiscard]] constexpr bool hypercube_adjacent(int a, int b) {
  const unsigned d = static_cast<unsigned>(a ^ b);
  return d != 0 && (d & (d - 1)) == 0;
}

/// The next label on the route from `from` to `to` in an incomplete
/// hypercube with `n` labels.  Preconditions: 0 <= from,to < n, from != to.
/// The returned label is always < n and adjacent to `from`.
[[nodiscard]] constexpr int next_hypercube_hop(int from, int to, int n) {
  assert(from >= 0 && from < n && to >= 0 && to < n && from != to);
  const int diff = from ^ to;
  // Phase 1: clear bits set in `from` but not `to`, MSB first.
  for (int b = dimension_of(n) - 1; b >= 0; --b) {
    const int mask = 1 << b;
    if ((diff & mask) != 0 && (from & mask) != 0) return from ^ mask;
  }
  // Phase 2: set bits present in `to` but not `from`, LSB first.
  for (int b = 0;; ++b) {
    const int mask = 1 << b;
    if ((diff & mask) != 0) {
      assert((to & mask) != 0);
      return from ^ mask;
    }
  }
}

/// Appends the route from `from` to `to` (excluding `from`, including
/// `to`) to `out` without clearing it.  The allocation-free sibling of
/// hypercube_route for per-frame callers that reuse a scratch vector.
inline void hypercube_route_into(int from, int to, int n,
                                 std::vector<int>& out) {
  while (from != to) {
    from = next_hypercube_hop(from, to, n);
    out.push_back(from);
  }
}

/// The full route from `from` to `to` (excluding `from`, including `to`).
[[nodiscard]] inline std::vector<int> hypercube_route(int from, int to, int n) {
  std::vector<int> route;
  hypercube_route_into(from, to, n, route);
  return route;
}

/// Hamming distance between labels (== route length).
[[nodiscard]] constexpr int hamming_distance(int a, int b) {
  unsigned d = static_cast<unsigned>(a ^ b);
  int c = 0;
  while (d != 0) {
    d &= d - 1;
    ++c;
  }
  return c;
}

}  // namespace hpcvorx::hw
