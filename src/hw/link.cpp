#include "hw/link.hpp"

#include <algorithm>

namespace hpcvorx::hw {

void Link::send(Frame f) {
  assert(ready() && "Link::send called while not ready");
  tx_busy_ = true;
  const sim::Duration ser =
      static_cast<sim::Duration>(f.wire_bytes()) * p_.ns_per_byte;
  inflight_.push_back(std::move(f));
  // Transmitter frees after serialization; the frame lands one propagation
  // latency later.
  sim_.post_after(ser, [this] {
    tx_busy_ = false;
    notify_ready();
  });
  sim_.post_after(ser + p_.latency, [this] { deliver_head(); });
}

void Link::deliver_head() {
  Frame f = std::move(inflight_.front());
  inflight_.pop_front();
  ++frames_carried_;
  bytes_carried_ += f.wire_bytes();
  buffer_.push_back(std::move(f));
  peak_buffered_ = std::max(peak_buffered_, buffer_.size());
  sample_depth();
  if (deliver_cb_) deliver_cb_();
}

std::optional<Frame> Link::take() {
  if (buffer_.empty()) return std::nullopt;
  Frame f = std::move(buffer_.front());
  buffer_.pop_front();
  sample_depth();
  notify_ready();
  return f;
}

void Link::sample_depth() {
  sim::CounterTimeline& ct = sim_.counters();
  if (!ct.enabled()) return;
  ct.sample(name_, "buffered_frames", sim_.now(),
            static_cast<double>(buffer_.size()));
  ct.sample(name_, "kbytes_carried", sim_.now(),
            static_cast<double>(bytes_carried_) / 1e3);
}

}  // namespace hpcvorx::hw
