#include "hw/link.hpp"

namespace hpcvorx::hw {

void Link::send(Frame f) {
  assert(ready() && "Link::send called while not ready");
  tx_busy_ = true;
  ++in_flight_;
  const sim::Duration ser =
      static_cast<sim::Duration>(f.wire_bytes()) * p_.ns_per_byte;
  // Transmitter frees after serialization; the frame lands one propagation
  // latency later.
  sim_.schedule_after(ser, [this] {
    tx_busy_ = false;
    notify_ready();
  });
  sim_.schedule_after(ser + p_.latency, [this, f = std::move(f)]() mutable {
    --in_flight_;
    buffer_.push_back(std::move(f));
    ++frames_carried_;
    if (deliver_cb_) deliver_cb_();
  });
}

std::optional<Frame> Link::take() {
  if (buffer_.empty()) return std::nullopt;
  Frame f = std::move(buffer_.front());
  buffer_.pop_front();
  notify_ready();
  return f;
}

}  // namespace hpcvorx::hw
