#include "hw/link.hpp"

#include <algorithm>

namespace hpcvorx::hw {

void Link::send(Frame f) {
  assert(ready() && "Link::send called while not ready");
  tx_busy_ = true;
  const sim::Duration ser =
      static_cast<sim::Duration>(f.wire_bytes()) * p_.ns_per_byte;
  // Transmitter frees after serialization; the frame lands one propagation
  // latency later.  Both completion events carry the fault epoch: a
  // set_down() between send and completion bumps it and the stale event
  // no-ops (the fault path already reset tx_busy_ / dropped the frame).
  sim_.post_after(ser, [this, e = fault_epoch_] {
    if (e != fault_epoch_) return;
    tx_busy_ = false;
    notify_ready();
  });
  if (remote_sink_) {
    // Cross-shard TX half: reserve the peer-side buffer slot now (freed by
    // remote_credit) and hand the frame over immediately — the sink must
    // see it during the window that sent it, not one latency later, or the
    // peer's barrier drain would find it a window too late.  Carried
    // counters tick here; the RX half counts nothing, so a split link's
    // totals match its intra-shard equivalent.
    ++remote_unacked_;
    ++frames_carried_;
    bytes_carried_ += f.wire_bytes();
    remote_sink_(sim_.now() + ser + p_.latency, std::move(f));
    return;
  }
  inflight_.push_back(std::move(f));
  sim_.post_after(ser + p_.latency, [this, e = fault_epoch_] {
    if (e != fault_epoch_) return;
    deliver_head();
  });
}

void Link::set_down() {
  if (down_) return;
  down_ = true;
  ++fault_epoch_;
  tx_busy_ = false;
  frames_dropped_ += inflight_.size() + buffer_.size();
  // RX half: every cleared buffer slot is reported back as a credit, or
  // the peer TX half's slot accounting would leak the lost frames' slots.
  if (credit_cb_) {
    for (std::size_t i = 0; i < buffer_.size(); ++i) credit_cb_(sim_.now());
  }
  inflight_.clear();
  buffer_.clear();
  // TX half: the peer RX clears its buffer (and drops late arrivals) at
  // the same virtual time, so every reserved slot is gone; the credits it
  // emits for them are absorbed by the post-fault guard in remote_credit.
  remote_unacked_ = 0;
}

void Link::set_up() {
  if (!down_) return;
  down_ = false;
  ++fault_epoch_;
  tx_busy_ = false;
  notify_ready();
}

void Link::remote_credit() {
  assert(remote_sink_ && "credit on a link that is not a cross-shard TX half");
  assert(remote_unacked_ > 0 || fault_epoch_ > 0);
  // A set_down() zeroed the count while this credit was in flight; the
  // slot it frees was already reclaimed, so the credit is stale.
  if (remote_unacked_ > 0) --remote_unacked_;
  notify_ready();
}

void Link::deliver_remote(Frame f) {
  // Cross-shard RX half: serialization, propagation, and the carried
  // counters all happened on the peer shard's TX half; the frame only
  // lands in the downstream buffer here.  The credit protocol bounds
  // outstanding frames to the buffer size, so this never overflows —
  // except around a fault, where a pre-outage frame can arrive after slot
  // accounting was reset; such arrivals are dropped and credited back.
  if (down_ || buffer_.size() >= static_cast<std::size_t>(p_.buffer_frames)) {
    assert((down_ || fault_epoch_ > 0) && "RX overflow on a never-faulted link");
    ++frames_dropped_;
    if (credit_cb_) credit_cb_(sim_.now());
    return;
  }
  buffer_.push_back(std::move(f));
  peak_buffered_ = std::max(peak_buffered_, buffer_.size());
  sample_depth();
  if (deliver_cb_) deliver_cb_();
}

void Link::deliver_head() {
  Frame f = std::move(inflight_.front());
  inflight_.pop_front();
  ++frames_carried_;
  bytes_carried_ += f.wire_bytes();
  buffer_.push_back(std::move(f));
  peak_buffered_ = std::max(peak_buffered_, buffer_.size());
  sample_depth();
  if (deliver_cb_) deliver_cb_();
}

std::optional<Frame> Link::take() {
  if (buffer_.empty()) return std::nullopt;
  Frame f = std::move(buffer_.front());
  buffer_.pop_front();
  sample_depth();
  if (credit_cb_) {
    // RX half: the freed slot is reported to the peer shard's TX half as a
    // credit taking effect one link latency from now (the reverse wire).
    credit_cb_(sim_.now());
  } else {
    notify_ready();
  }
  return f;
}

void Link::sample_depth() {
  sim::CounterTimeline& ct = sim_.counters();
  if (!ct.enabled()) return;
  ct.sample(name_, "buffered_frames", sim_.now(),
            static_cast<double>(buffer_.size()));
  ct.sample(name_, "kbytes_carried", sim_.now(),
            static_cast<double>(bytes_carried_) / 1e3);
}

}  // namespace hpcvorx::hw
