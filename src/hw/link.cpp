#include "hw/link.hpp"

#include <algorithm>

namespace hpcvorx::hw {

void Link::send(Frame f) {
  assert(ready() && "Link::send called while not ready");
  tx_busy_ = true;
  const sim::Duration ser =
      static_cast<sim::Duration>(f.wire_bytes()) * p_.ns_per_byte;
  // Transmitter frees after serialization; the frame lands one propagation
  // latency later.
  sim_.post_after(ser, [this] {
    tx_busy_ = false;
    notify_ready();
  });
  if (remote_sink_) {
    // Cross-shard TX half: reserve the peer-side buffer slot now (freed by
    // remote_credit) and hand the frame over immediately — the sink must
    // see it during the window that sent it, not one latency later, or the
    // peer's barrier drain would find it a window too late.  Carried
    // counters tick here; the RX half counts nothing, so a split link's
    // totals match its intra-shard equivalent.
    ++remote_unacked_;
    ++frames_carried_;
    bytes_carried_ += f.wire_bytes();
    remote_sink_(sim_.now() + ser + p_.latency, std::move(f));
    return;
  }
  inflight_.push_back(std::move(f));
  sim_.post_after(ser + p_.latency, [this] { deliver_head(); });
}

void Link::remote_credit() {
  assert(remote_sink_ && "credit on a link that is not a cross-shard TX half");
  assert(remote_unacked_ > 0);
  --remote_unacked_;
  notify_ready();
}

void Link::deliver_remote(Frame f) {
  // Cross-shard RX half: serialization, propagation, and the carried
  // counters all happened on the peer shard's TX half; the frame only
  // lands in the downstream buffer here.  The credit protocol bounds
  // outstanding frames to the buffer size, so this never overflows.
  assert(buffer_.size() < static_cast<std::size_t>(p_.buffer_frames));
  buffer_.push_back(std::move(f));
  peak_buffered_ = std::max(peak_buffered_, buffer_.size());
  sample_depth();
  if (deliver_cb_) deliver_cb_();
}

void Link::deliver_head() {
  Frame f = std::move(inflight_.front());
  inflight_.pop_front();
  ++frames_carried_;
  bytes_carried_ += f.wire_bytes();
  buffer_.push_back(std::move(f));
  peak_buffered_ = std::max(peak_buffered_, buffer_.size());
  sample_depth();
  if (deliver_cb_) deliver_cb_();
}

std::optional<Frame> Link::take() {
  if (buffer_.empty()) return std::nullopt;
  Frame f = std::move(buffer_.front());
  buffer_.pop_front();
  sample_depth();
  if (credit_cb_) {
    // RX half: the freed slot is reported to the peer shard's TX half as a
    // credit taking effect one link latency from now (the reverse wire).
    credit_cb_(sim_.now());
  } else {
    notify_ready();
  }
  return f;
}

void Link::sample_depth() {
  sim::CounterTimeline& ct = sim_.counters();
  if (!ct.enabled()) return;
  ct.sample(name_, "buffered_frames", sim_.now(),
            static_cast<double>(buffer_.size()));
  ct.sample(name_, "kbytes_carried", sim_.now(),
            static_cast<double>(bytes_carried_) / 1e3);
}

}  // namespace hpcvorx::hw
