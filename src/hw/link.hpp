// A unidirectional HPC link with hardware flow control.
//
// §2 of the paper: "Each HPC link ... refuses to accept a message unless
// the hardware has room to buffer an entire message, forcing the sender to
// wait until the space is available."  A Link therefore owns the
// downstream whole-frame buffer; a frame may start transmission only when
// a buffer slot can be reserved, so frames are never lost.
//
// Timing: a frame occupies the transmitter for wire_bytes * ns_per_byte
// (serialization at 160 Mbit/s = 50 ns/byte) and lands in the downstream
// buffer a propagation latency later.  The upstream entity is notified via
// ready_cb whenever the link may have become ready (this is the source of
// the "room became available" transmit interrupt on node output links).
#pragma once

#include <cassert>
#include <functional>
#include <optional>
#include <queue>
#include <string>

#include "hw/frame.hpp"
#include "sim/simulator.hpp"

namespace hpcvorx::hw {

class Link {
 public:
  struct Params {
    sim::Duration ns_per_byte = 50;        // 160 Mbit/s
    sim::Duration latency = sim::usec(0.5);  // propagation + port logic
    int buffer_frames = 2;                 // downstream whole-frame slots
  };

  Link(sim::Simulator& sim, std::string name, Params p)
      : sim_(sim), name_(std::move(name)), p_(p) {
    assert(p_.buffer_frames >= 1);
  }
  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// True when a frame may be sent now: the link is up, the transmitter is
  /// free and a downstream buffer slot can be reserved.  On a cross-shard
  /// TX half the downstream buffer lives on the peer shard, so slot
  /// accounting runs on credits: a slot is reserved at send and released by
  /// remote_credit().
  [[nodiscard]] bool ready() const {
    const std::size_t occupied =
        remote_sink_ ? remote_unacked_ : inflight_.size() + buffer_.size();
    return !down_ && !tx_busy_ &&
           occupied < static_cast<std::size_t>(p_.buffer_frames);
  }

  /// Starts transmitting `f`.  Precondition: ready().
  void send(Frame f);

  /// Invoked whenever the link may have become ready (the consumer must
  /// re-check ready()).  Models the transmit-space-available interrupt.
  void set_ready_cb(std::function<void()> cb) { ready_cb_ = std::move(cb); }

  // ---- downstream (receiving) side ----

  /// Frame at the head of the downstream buffer, or nullptr.
  [[nodiscard]] const Frame* peek() const {
    return buffer_.empty() ? nullptr : &buffer_.front();
  }

  /// Removes the head frame, freeing a buffer slot (which may allow the
  /// upstream transmitter to proceed).
  std::optional<Frame> take();

  /// Invoked each time a frame lands in the downstream buffer.
  void set_deliver_cb(std::function<void()> cb) { deliver_cb_ = std::move(cb); }

  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }

  /// Frames queued at or beyond this link's transmitter as the sender sees
  /// them: serializing + propagating + parked downstream (or sent-but-
  /// uncredited on a cross-shard TX half).  The per-link congestion signal
  /// adaptive routing scores egress candidates by (DESIGN.md §15);
  /// everything counted is shard-local state, so reading it from the
  /// owning cluster's route decision is race-free.
  [[nodiscard]] std::size_t queue_depth() const {
    return (tx_busy_ ? 1u : 0u) +
           (remote_sink_ ? remote_unacked_ : inflight_.size() + buffer_.size());
  }

  /// Downstream buffer slots still unreserved.  Adaptive routing lets a
  /// head *deviate* from its deterministic port only into a link with >= 2
  /// free slots (the bubble condition, DESIGN.md §15): deviations never
  /// take the last slot that keeps the deterministic sub-network draining.

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Params& params() const { return p_; }

  // ---- cross-shard halves (see hw/shard_link.hpp, DESIGN.md §12) ----
  //
  // A link whose endpoints live on different shards is split into a TX
  // half on the sending shard and an RX half on the receiving shard.  The
  // TX half hands (arrival time, frame) to `sink` at send time instead of
  // buffering locally; the RX half owns the downstream buffer and reports
  // each freed slot back as a credit that takes effect one link latency
  // later — the reverse-direction wire signal.  Both directions therefore
  // keep every cross-shard effect at least one latency in the future,
  // which is what the runtime's lookahead window relies on.

  /// Makes this the TX half.  `sink` receives (arrival time, frame) for
  /// every send; arrival = now + serialization + latency.
  void set_remote_sink(std::function<void(sim::SimTime, Frame)> sink) {
    remote_sink_ = std::move(sink);
  }

  /// A peer-shard buffer slot freed (credit signal arrived): TX half only.
  void remote_credit();

  /// A frame from the peer shard's TX half lands in the downstream buffer:
  /// RX half only (scheduled at its precomputed arrival time).
  void deliver_remote(Frame f);

  /// Makes this the RX half: take() reports each freed slot through `cb`
  /// (with the take timestamp) instead of notifying a local transmitter.
  void set_credit_cb(std::function<void(sim::SimTime)> cb) {
    credit_cb_ = std::move(cb);
  }

  // ---- fault injection (DESIGN.md §14) ----
  //
  // A downed link models a failed cable: frames being serialized, frames
  // propagating, and frames parked in the downstream buffer are all lost
  // (counted in frames_dropped), and ready() stays false until set_up().
  // Loss is implemented with an epoch guard: every in-flight completion
  // event captured the epoch at send time and no-ops when a fault bumped
  // it, so a fault never leaves a dangling event poking freed state.  On a
  // cross-shard pair the injector calls set_down()/set_up() on BOTH halves
  // at the same virtual time, each on its own shard; cleared RX slots are
  // credited back so the TX half's slot accounting stays exact.

  /// Cable fails.  Idempotent; safe at any point of a transfer.
  void set_down();
  /// Cable replaced: transmitter idle, buffer empty, consumers notified.
  void set_up();
  [[nodiscard]] bool is_down() const { return down_; }
  /// Frames lost to set_down()/arrival-while-down (never counted as
  /// carried).
  [[nodiscard]] std::uint64_t frames_dropped() const { return frames_dropped_; }

  // ---- counters (diagnostics and the trace exporter) ----

  /// Cumulative frames delivered downstream.
  [[nodiscard]] std::uint64_t frames_carried() const { return frames_carried_; }
  /// Cumulative wire bytes (payload + header) delivered downstream.
  [[nodiscard]] std::uint64_t bytes_carried() const { return bytes_carried_; }
  /// High-water mark of the downstream buffer occupancy.
  [[nodiscard]] std::size_t peak_buffered() const { return peak_buffered_; }

 private:
  void notify_ready() {
    if (ready_cb_ && ready()) ready_cb_();
  }
  void deliver_head();
  void sample_depth();

  sim::Simulator& sim_;
  std::string name_;
  Params p_;
  bool tx_busy_ = false;
  bool down_ = false;
  // Bumped by every set_down()/set_up(); in-flight serialization and
  // delivery events captured the epoch at send time and no-op on mismatch.
  std::uint32_t fault_epoch_ = 0;
  // Frames serialized but still propagating, in arrival order.  Arrival
  // order equals send order: the transmitter serializes sends, so a later
  // frame's arrival (start + ser_a + ser_b + latency) is strictly after an
  // earlier one's (start + ser_a + latency).  Keeping the frames here lets
  // the delivery event capture only `this` — a whole Frame in the capture
  // would spill the event queue's inline storage.
  std::deque<Frame> inflight_;
  std::deque<Frame> buffer_;
  std::function<void()> ready_cb_;
  std::function<void()> deliver_cb_;
  // Cross-shard halves (both empty on an ordinary intra-shard link).
  std::function<void(sim::SimTime, Frame)> remote_sink_;  // TX half
  std::function<void(sim::SimTime)> credit_cb_;           // RX half
  std::size_t remote_unacked_ = 0;  // TX half: sent, credit not yet back
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t frames_carried_ = 0;
  std::uint64_t bytes_carried_ = 0;
  std::size_t peak_buffered_ = 0;
};

}  // namespace hpcvorx::hw
