#include "hw/shard_link.hpp"

#include <cassert>
#include <vector>

namespace hpcvorx::hw {

ShardLinkBridge::ShardLinkBridge(sim::ShardRuntime& rt, int tx_shard,
                                 int rx_shard, Link& tx, Link& rx)
    : frames_(rx), credits_(tx) {
  assert(tx_shard != rx_shard);
  assert(tx.params().latency == rx.params().latency &&
         "the two halves of a split link must agree on its latency");
  rt.note_cross_shard_latency(tx.params().latency);
  rt.register_exchange(rx_shard, &frames_);
  rt.register_exchange(tx_shard, &credits_);
  tx.set_remote_sink([this](sim::SimTime arrival, Frame f) {
    if (f.data != nullptr) {
      // Detach from the TX shard's FramePool: the pooled buffer's deleter
      // is not thread-safe, so the crossing frame carries a plain copy the
      // destination shard may drop on its own thread.
      // vorx-lint: allow(R5) cross-shard boundary copy — pooled payloads may not change shards
      f.data = make_payload(std::vector<std::byte>(f.data->begin(), f.data->end()));
    }
    frames_.q.push({arrival, std::make_unique<Frame>(std::move(f))});
  });
  rx.set_credit_cb([this, latency = rx.params().latency](sim::SimTime taken) {
    credits_.q.push(taken + latency);
  });
}

void ShardLinkBridge::FrameChannel::drain_into(sim::Simulator& dst) {
  // The RX link outlives every scheduled delivery: it is owned by the
  // Fabric, which outlives the runtime's run.  The frame itself rides the
  // event as owned state.
  Link* const link = &rx_link;
  std::pair<sim::SimTime, std::unique_ptr<Frame>> e;
  while (q.pop(e)) {
    // The lookahead guarantee: everything queued during completed windows
    // arrives strictly beyond them, i.e. in this shard's future.
    assert(e.first > dst.now() &&
           "cross-shard frame arrived at or before the drain point");
    dst.post_at(e.first, [link, f = std::move(e.second)]() mutable {
      link->deliver_remote(std::move(*f));
    });
  }
}

void ShardLinkBridge::CreditChannel::drain_into(sim::Simulator& dst) {
  Link* const link = &tx_link;  // fabric-owned, outlives the run
  sim::SimTime at = 0;
  while (q.pop(at)) {
    assert(at > dst.now() &&
           "cross-shard credit arrived at or before the drain point");
    dst.post_at(at, [link] { link->remote_credit(); });
  }
}

}  // namespace hpcvorx::hw
