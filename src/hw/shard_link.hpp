// Cross-shard plumbing for one direction of one hw::Link.
//
// When a link's two clusters land on different shards the link splits into
// halves (see link.hpp): the TX half on the sending shard, the RX half on
// the receiving shard.  A ShardLinkBridge wires the pair together through
// two SPSC channels registered with the runtime:
//
//   frames:  TX half's remote sink -> queue -> drained into the RX shard,
//            where each frame becomes a deliver_remote() event at its
//            precomputed arrival time;
//   credits: RX half's take() -> queue -> drained into the TX shard, where
//            each freed buffer slot becomes a remote_credit() event one
//            link latency after the take — the reverse wire signal.
//
// Both directions move simulated time forward by at least the link latency,
// which is exactly the lookahead guarantee ShardRuntime's windows rest on
// (the bridge reports its latency via note_cross_shard_latency).
//
// Frame payloads are detached at the TX boundary: pooled payload buffers
// recycle into their shard's FramePool from a deleter that is not
// thread-safe, so a frame crossing shards gets a plain heap copy the
// destination shard may release freely.
#pragma once

#include <memory>
#include <utility>

#include "hw/link.hpp"
#include "sim/shard_runtime.hpp"
#include "sim/spsc_queue.hpp"

namespace hpcvorx::hw {

class ShardLinkBridge {
 public:
  /// Splits the (tx, rx) pair across shards: tx lives on `tx_shard`'s
  /// simulator, rx on `rx_shard`'s.  Registers both channels with `rt` —
  /// construction order is the barrier drain order, so building bridges in
  /// topology order is part of the determinism contract (DESIGN.md §12).
  ShardLinkBridge(sim::ShardRuntime& rt, int tx_shard, int rx_shard, Link& tx,
                  Link& rx);
  ShardLinkBridge(const ShardLinkBridge&) = delete;
  ShardLinkBridge& operator=(const ShardLinkBridge&) = delete;

 private:
  struct FrameChannel final : sim::ShardExchange {
    explicit FrameChannel(Link& rx) : rx_link(rx) {}
    void drain_into(sim::Simulator& dst) override;
    Link& rx_link;
    sim::SpscQueue<std::pair<sim::SimTime, std::unique_ptr<Frame>>> q;
  };
  struct CreditChannel final : sim::ShardExchange {
    explicit CreditChannel(Link& tx) : tx_link(tx) {}
    void drain_into(sim::Simulator& dst) override;
    Link& tx_link;
    sim::SpscQueue<sim::SimTime> q;
  };

  FrameChannel frames_;
  CreditChannel credits_;
};

}  // namespace hpcvorx::hw
