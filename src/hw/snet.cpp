#include "hw/snet.hpp"

namespace hpcvorx::hw {

SnetBus::SnetBus(sim::Simulator& sim, int num_processors, Params p)
    : sim_(sim),
      params_(p),
      fifos_(static_cast<std::size_t>(num_processors)),
      fifo_used_(static_cast<std::size_t>(num_processors), 0),
      rx_cb_(static_cast<std::size_t>(num_processors)),
      pending_(static_cast<std::size_t>(num_processors), false) {}

void SnetBus::request_send(int src, Frame f, std::function<void(bool)> done) {
  assert(src >= 0 && src < num_processors());
  assert(f.dst >= 0 && f.dst < num_processors());
  assert(!pending_[static_cast<std::size_t>(src)] &&
         "one outstanding S/NET send per processor");
  pending_[static_cast<std::size_t>(src)] = true;
  f.src = src;
  f.injected_at = sim_.now();
  queue_.push_back(Request{src, std::move(f), std::move(done)});
  if (!bus_busy_) grant_next();
}

void SnetBus::grant_next() {
  if (queue_.empty()) return;
  bus_busy_ = true;
  ++grants_;
  auto it = queue_.begin();
  if (params_.fixed_priority_arbitration) {
    for (auto j = queue_.begin(); j != queue_.end(); ++j) {
      if (j->src < it->src) it = j;
    }
  }
  Request req = std::move(*it);
  queue_.erase(it);
  const sim::Duration xfer =
      params_.arbitration +
      static_cast<sim::Duration>(req.frame.wire_bytes()) * params_.ns_per_byte;
  xfer_ = std::move(req);
  // post_after: bus completions are never cancelled, so skip the handle.
  sim_.post_after(xfer, [this] { finish_transfer(); });
}

void SnetBus::finish_transfer() {
  Request req = std::move(*xfer_);
  xfer_.reset();
  const auto dst = static_cast<std::size_t>(req.frame.dst);
  const std::uint32_t need = req.frame.wire_bytes();
  const std::uint32_t free = params_.fifo_bytes - fifo_used_[dst];
  bool accepted = false;
  bool landed = false;
  if (need <= free) {
    fifo_used_[dst] += need;
    fifos_[dst].push_back(Fragment{std::move(req.frame), need, true});
    ++delivered_;
    accepted = true;
    landed = true;
  } else {
    // Overflow: the fifo keeps whatever arrived before it filled; the
    // receiving software must read and discard this residue (§2).
    ++overflows_;
    if (free > 0) {
      fifo_used_[dst] += free;
      fifos_[dst].push_back(Fragment{req.frame, free, false});
      landed = true;
    }
  }
  pending_[static_cast<std::size_t>(req.src)] = false;
  if (landed && rx_cb_[dst]) rx_cb_[dst]();
  // Report completion (or the fifo-full signal) to the sender's software.
  if (req.done) req.done(accepted);
  bus_busy_ = false;
  grant_next();
}

const SnetBus::Fragment* SnetBus::fifo_peek(int proc) const {
  const auto& q = fifos_[static_cast<std::size_t>(proc)];
  return q.empty() ? nullptr : &q.front();
}

std::optional<SnetBus::Fragment> SnetBus::fifo_take(int proc) {
  auto& q = fifos_[static_cast<std::size_t>(proc)];
  if (q.empty()) return std::nullopt;
  fifo_used_[static_cast<std::size_t>(proc)] -= q.front().bytes;
  return fifo_pop(proc);
}

void SnetBus::fifo_release(int proc, std::uint32_t bytes) {
  assert(bytes <= fifo_used_[static_cast<std::size_t>(proc)]);
  fifo_used_[static_cast<std::size_t>(proc)] -= bytes;
}

std::optional<SnetBus::Fragment> SnetBus::fifo_pop(int proc) {
  auto& q = fifos_[static_cast<std::size_t>(proc)];
  if (q.empty()) return std::nullopt;
  Fragment fr = std::move(q.front());
  q.pop_front();
  return fr;
}

}  // namespace hpcvorx::hw
