// The S/NET interconnect — the baseline the HPC replaced.
//
// §2 of the paper: the S/NET was a single bus serving at most ~12
// processors.  "The hardware provided a fifo input buffer for each
// processor that could hold several incoming messages, with a combined
// length up to 2048 bytes.  When the fifo became full, the receiver would
// reject messages sent to it and send a fifo-full signal to the
// transmitter ...  A property of the S/NET interface hardware was that
// when overflow occurred, the fifo retained the portion of the message
// that was received up to the time of the overflow.  The communications
// software in the receiving processor had to read and discard this initial
// portion of the message."
//
// Those exact semantics — the partial-message residue in particular — are
// what produced the many-to-one lockout pathology, so SnetBus models them
// directly.  Overflow-recovery *policies* (busy retransmission, random
// backoff, reservation) live in the OS layer (vorx/protocols).
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "hw/frame.hpp"
#include "sim/simulator.hpp"

namespace hpcvorx::hw {

/// S/NET bus construction parameters.
struct SnetParams {
  sim::Duration ns_per_byte = 100;        // ~80 Mbit/s shared bus
  sim::Duration arbitration = sim::usec(2);  // per-grant bus overhead
  std::uint32_t fifo_bytes = 2048;        // per-processor input fifo
  // Fixed-priority bus grants (lowest processor id wins), as backplane
  // buses of the era arbitrated.  Combined with busy retransmission this
  // starves high-id senders outright — the strongest form of §2's "some
  // of the messages were never received".  false = FIFO request order.
  bool fixed_priority_arbitration = false;
};

class SnetBus {
 public:
  using Params = SnetParams;

  SnetBus(sim::Simulator& sim, int num_processors, Params p = Params());
  SnetBus(const SnetBus&) = delete;
  SnetBus& operator=(const SnetBus&) = delete;

  /// Queues a transmission.  The bus grants requests in arrival order;
  /// when the transfer finishes, `done(accepted)` reports whether the
  /// destination fifo took the whole message.  On rejection the fifo has
  /// absorbed a partial-message residue that the receiver must drain.
  /// At most one outstanding request per source processor.
  void request_send(int src, Frame f, std::function<void(bool)> done);

  [[nodiscard]] bool sender_pending(int src) const {
    return pending_[static_cast<std::size_t>(src)];
  }

  /// One fifo entry: either a complete message or a truncated residue
  /// (complete == false) that software must read and discard.
  struct Fragment {
    Frame frame;
    std::uint32_t bytes;  // bytes occupying the fifo
    bool complete;
  };

  [[nodiscard]] const Fragment* fifo_peek(int proc) const;

  /// Removes the head fragment, freeing its fifo bytes.
  std::optional<Fragment> fifo_take(int proc);

  /// Incremental drain: the receiving software frees `bytes` of the head
  /// fragment as it reads words out (real S/NET fifos freed space
  /// continuously, which is what lets concurrent doomed arrivals consume
  /// it — the §2 lockout mechanism).  Use fifo_pop() once the whole head
  /// fragment has been released.
  void fifo_release(int proc, std::uint32_t bytes);

  /// Removes the head fragment without freeing bytes (they must have been
  /// released already via fifo_release).
  std::optional<Fragment> fifo_pop(int proc);

  [[nodiscard]] std::uint32_t fifo_used(int proc) const {
    return fifo_used_[static_cast<std::size_t>(proc)];
  }
  [[nodiscard]] std::uint32_t fifo_free(int proc) const {
    return params_.fifo_bytes - fifo_used(proc);
  }

  /// Receive interrupt: fired when a fragment (complete or partial) lands.
  void set_rx_cb(int proc, std::function<void()> cb) {
    rx_cb_[static_cast<std::size_t>(proc)] = std::move(cb);
  }

  [[nodiscard]] std::uint64_t messages_delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t overflows() const { return overflows_; }
  [[nodiscard]] std::uint64_t bus_grants() const { return grants_; }
  [[nodiscard]] const Params& params() const { return params_; }
  [[nodiscard]] int num_processors() const {
    return static_cast<int>(fifos_.size());
  }

 private:
  struct Request {
    int src;
    Frame frame;
    std::function<void(bool)> done;
  };

  void grant_next();
  void finish_transfer();

  sim::Simulator& sim_;
  Params params_;
  std::deque<Request> queue_;
  bool bus_busy_ = false;
  // The request currently crossing the bus.  bus_busy_ serializes
  // transfers, so at most one is in flight; parking it here lets the
  // completion event capture only `this` (inline in the event queue)
  // instead of hauling the whole Request through the callback.
  std::optional<Request> xfer_;
  std::vector<std::deque<Fragment>> fifos_;
  std::vector<std::uint32_t> fifo_used_;
  std::vector<std::function<void()>> rx_cb_;
  std::vector<bool> pending_;
  std::uint64_t delivered_ = 0;
  std::uint64_t overflows_ = 0;
  std::uint64_t grants_ = 0;
};

}  // namespace hpcvorx::hw
