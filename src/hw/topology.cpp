#include "hw/topology.hpp"

#include <algorithm>
#include <stdexcept>

namespace hpcvorx::hw {

FatTreeShape FatTreeShape::plan(int stations, int stations_per_leaf,
                                int leaf_ports, int spines) {
  if (stations < 1 || stations_per_leaf < 1) {
    throw std::invalid_argument(
        "hw::Fabric fat tree: need stations >= 1 and stations_per_leaf >= 1 "
        "(got stations=" +
        std::to_string(stations) +
        ", stations_per_leaf=" + std::to_string(stations_per_leaf) + ")");
  }
  FatTreeShape shape;
  shape.stations_per_leaf = stations_per_leaf;
  shape.leaves = (stations + stations_per_leaf - 1) / stations_per_leaf;
  const int uplink_budget = leaf_ports - stations_per_leaf;
  if (uplink_budget < 1) {
    throw std::invalid_argument(
        "hw::Fabric fat tree: leaf port budget exceeded — " +
        std::to_string(stations_per_leaf) + " stations/leaf leave " +
        std::to_string(uplink_budget) + " of " + std::to_string(leaf_ports) +
        " ports for uplinks; lower stations_per_cluster or raise "
        "FabricParams::ports_per_cluster");
  }
  shape.spines = spines == 0 ? std::min(uplink_budget, shape.leaves) : spines;
  if (shape.spines < 1 || shape.spines + stations_per_leaf > leaf_ports) {
    throw std::invalid_argument(
        "hw::Fabric fat tree: " + std::to_string(shape.spines) +
        " spines + " + std::to_string(stations_per_leaf) +
        " stations/leaf exceed the " + std::to_string(leaf_ports) +
        "-port leaf budget; lower FabricParams::fat_tree_spines or raise "
        "ports_per_cluster");
  }
  return shape;
}

std::string to_string(TopologyKind t) {
  switch (t) {
    case TopologyKind::kSingleCluster:
      return "single";
    case TopologyKind::kHypercube:
      return "cube";
    case TopologyKind::kFatTree:
      return "fattree";
  }
  return "?";
}

std::string to_string(RoutingMode r) {
  return r == RoutingMode::kEcube ? "ecube" : "adaptive";
}

TopologyKind parse_topology(const std::string& s) {
  if (s == "cube" || s == "hypercube") return TopologyKind::kHypercube;
  if (s == "fattree" || s == "fat-tree") return TopologyKind::kFatTree;
  throw std::invalid_argument("unknown topology '" + s +
                              "' (expected cube or fattree)");
}

RoutingMode parse_routing(const std::string& s) {
  if (s == "ecube") return RoutingMode::kEcube;
  if (s == "adaptive") return RoutingMode::kAdaptive;
  throw std::invalid_argument("unknown routing mode '" + s +
                              "' (expected ecube or adaptive)");
}

}  // namespace hpcvorx::hw
