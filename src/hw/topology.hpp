// Topology descriptors for the HPC interconnect.
//
// The paper's machine connects its 12-port clusters as an incomplete
// hypercube (§1), but nothing above the Fabric depends on that shape: a
// topology only has to answer "out of which port does a frame for cluster
// `to` leave cluster `from`?".  This unit names the shapes the Fabric can
// build and plans the contrast topology — a two-level fat tree (leaf/spine
// folded Clos) of the same star-switch clusters — so node-count sweeps can
// compare e-cube routing against a paper-era alternative on identical
// hardware.  Next hops are *computed*, never tabulated: routing state is
// O(clusters), not O(clusters²), which is what lets the simulated machine
// reach the paper's ">1000 nodes" claim (DESIGN.md §15).
#pragma once

#include <string>

namespace hpcvorx::hw {

/// The cluster-graph shapes a Fabric can be built as.
enum class TopologyKind {
  kSingleCluster,  // everything on one star switch
  kHypercube,      // incomplete hypercube over the cluster labels (§1)
  kFatTree,        // two-level leaf/spine folded Clos (contrast topology)
};

/// How a cluster picks the egress port for a frame it must forward on.
enum class RoutingMode {
  kEcube,     // deterministic: e-cube order on the cube, dst-hash on the tree
  kAdaptive,  // congestion-aware minimal: lowest egress queue depth among
              // productive ports, deterministic tie-breaks (DESIGN.md §15)
};

/// Geometry of a two-level fat tree: `leaves` station-bearing clusters,
/// each wired once to every one of `spines` top switches.  Leaf port
/// layout mirrors the cube's ("low ports are inter-cluster"): ports
/// [0, spines) are uplinks (port u reaches spine u), stations sit on ports
/// [spines, spines + stations_per_leaf).  Spine s is a `leaves`-port
/// switch whose port l is the full-duplex pair of leaf l's uplink port s —
/// the "fat" upper stage is modelled as one wide crossbar per spine.
struct FatTreeShape {
  int leaves = 0;
  int spines = 0;
  int stations_per_leaf = 0;

  /// Plans the shape for `stations` total stations with
  /// `stations_per_leaf` per leaf and `leaf_ports` ports per leaf switch.
  /// `spines` == 0 picks the widest tree the leaf port budget allows
  /// (leaf_ports - stations_per_leaf uplinks, capped at the leaf count).
  /// Throws std::invalid_argument with an actionable message on an
  /// infeasible shape (always-on: misconfigurations must not silently
  /// build a broken fabric).
  static FatTreeShape plan(int stations, int stations_per_leaf,
                           int leaf_ports, int spines);

  /// Total clusters: leaves first (0..leaves-1), then spines.
  [[nodiscard]] int num_clusters() const { return leaves + spines; }
  [[nodiscard]] bool is_leaf(int cluster) const { return cluster < leaves; }

  /// The spine a frame for `dst_leaf` climbs through — the deterministic
  /// destination hash, so all traffic to one leaf shares one spine and the
  /// adaptive mode has real imbalance to exploit.
  [[nodiscard]] int spine_for(int dst_leaf) const { return dst_leaf % spines; }

  /// Egress port at cluster `from` towards leaf cluster `to` (from != to;
  /// `to` must be a leaf — stations live only on leaves).
  [[nodiscard]] int next_port(int from, int to) const {
    return is_leaf(from) ? spine_for(to)  // uplink port u == spine index u
                         : to;            // spine port l == leaf index l
  }

  /// The cluster reached through next_port(from, to).
  [[nodiscard]] int next_cluster(int from, int to) const {
    return is_leaf(from) ? leaves + spine_for(to) : to;
  }
};

/// Flag-spelling helpers shared by benches, examples, and tests
/// (`--topo cube|fattree`, `--routing ecube|adaptive`).  Parsers throw
/// std::invalid_argument naming the accepted spellings.
[[nodiscard]] std::string to_string(TopologyKind t);
[[nodiscard]] std::string to_string(RoutingMode r);
[[nodiscard]] TopologyKind parse_topology(const std::string& s);
[[nodiscard]] RoutingMode parse_routing(const std::string& s);

}  // namespace hpcvorx::hw
