// Synchronization and communication primitives for simulated processes:
//
//   Event     — latched broadcast condition (set / reset / wait)
//   Semaphore — counting semaphore with FIFO handoff
//   Gate      — arrive/wait completion barrier ("join N processes")
//   Mailbox<T>— bounded FIFO with blocking send/recv (direct handoff)
//
// All wakeups are direct handoffs: a released permit or delivered item is
// assigned to the specific waiter before its resume event is scheduled, so
// there are no spurious wakeups and FIFO fairness is exact.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <deque>
#include <limits>
#include <optional>
#include <utility>

#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace hpcvorx::sim {

/// Latched broadcast condition.  wait() completes immediately once set()
/// has been called; reset() re-arms it.
class Event {
 public:
  explicit Event(Simulator& sim) : sim_(sim) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;
  // Note: destroying a primitive with suspended waiters deliberately leaks
  // those coroutine frames.  Deadlocked applications (which the cdb tool
  // exists to examine) end their simulations with blocked processes; their
  // frames are simply never resumed.

  /// Latches the event and wakes every current waiter.
  void set() {
    set_ = true;
    for (auto h : waiters_) resume_later(sim_, h);
    waiters_.clear();
  }

  /// Un-latches the event.  Already-scheduled wakeups still fire (they saw
  /// the edge).
  void reset() { set_ = false; }

  [[nodiscard]] bool is_set() const { return set_; }

  struct Awaiter {
    Event& ev;
    bool await_ready() const noexcept { return ev.set_; }
    void await_suspend(std::coroutine_handle<> h) { ev.waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] Awaiter wait() { return Awaiter{*this}; }

 private:
  Simulator& sim_;
  bool set_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Counting semaphore with strict FIFO handoff of permits.
class Semaphore {
 public:
  Semaphore(Simulator& sim, std::int64_t initial) : sim_(sim), count_(initial) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  /// Releases `n` permits, handing them to waiters in FIFO order first.
  void release(std::int64_t n = 1) {
    while (n > 0 && !waiters_.empty()) {
      resume_later(sim_, waiters_.front());
      waiters_.pop_front();
      --n;
    }
    count_ += n;
  }

  /// Non-blocking acquire; fails if no free permit (or waiters queued).
  [[nodiscard]] bool try_acquire() {
    if (count_ > 0 && waiters_.empty()) {
      --count_;
      return true;
    }
    return false;
  }

  [[nodiscard]] std::int64_t available() const { return count_; }
  [[nodiscard]] std::size_t waiting() const { return waiters_.size(); }

  struct Awaiter {
    Semaphore& s;
    bool await_ready() noexcept {
      if (s.count_ > 0 && s.waiters_.empty()) {
        --s.count_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) { s.waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };
  /// Blocks until a permit is available (FIFO order among acquirers).
  [[nodiscard]] Awaiter acquire() { return Awaiter{*this}; }

 private:
  Simulator& sim_;
  std::int64_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Completion barrier: `target` arrivals release all waiters.  Used to join
/// a set of worker processes from a coordinator.
class Gate {
 public:
  Gate(Simulator& sim, std::size_t target) : ev_(sim), target_(target) {
    if (target_ == 0) ev_.set();
  }

  /// Records one arrival; the final arrival opens the gate.
  void arrive() {
    assert(arrived_ < target_);
    if (++arrived_ == target_) ev_.set();
  }

  [[nodiscard]] auto wait() { return ev_.wait(); }
  [[nodiscard]] std::size_t arrived() const { return arrived_; }

 private:
  Event ev_;
  std::size_t target_;
  std::size_t arrived_ = 0;
};

/// Bounded FIFO channel between simulated processes.  send() blocks while
/// the mailbox is full; recv() blocks while it is empty.  Items and blocked
/// processes are both served in strict FIFO order.
template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Simulator& sim,
                   std::size_t capacity = std::numeric_limits<std::size_t>::max())
      : sim_(sim), capacity_(capacity) {}
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  struct SendAwaiter {
    Mailbox& mb;
    T value;
    bool await_ready() { return mb.offer(value); }
    void await_suspend(std::coroutine_handle<> h) {
      mb.send_waiters_.push_back(this);
      handle = h;
    }
    void await_resume() const noexcept {}
    std::coroutine_handle<> handle;
  };

  struct RecvAwaiter {
    Mailbox& mb;
    std::optional<T> slot;
    bool await_ready() {
      slot = mb.poll();
      return slot.has_value();
    }
    void await_suspend(std::coroutine_handle<> h) {
      mb.recv_waiters_.push_back(this);
      handle = h;
    }
    T await_resume() {
      assert(slot.has_value());
      return std::move(*slot);
    }
    std::coroutine_handle<> handle;
  };

  /// Blocking send.  Completes immediately if a receiver is waiting or
  /// buffer space exists.
  [[nodiscard]] SendAwaiter send(T value) {
    return SendAwaiter{*this, std::move(value), {}};
  }

  /// Non-blocking send; returns false if the mailbox is full.
  [[nodiscard]] bool try_send(T value) { return offer(value); }

  /// Blocking receive.
  [[nodiscard]] RecvAwaiter recv() { return RecvAwaiter{*this, std::nullopt, {}}; }

  /// Non-blocking receive.
  [[nodiscard]] std::optional<T> try_recv() { return poll(); }

 private:
  // Attempts to place `value` (moved from on success).  Invariant: a waiting
  // receiver implies an empty buffer, so handoff order stays FIFO.
  bool offer(T& value) {
    if (!recv_waiters_.empty()) {
      assert(items_.empty());
      RecvAwaiter* w = recv_waiters_.front();
      recv_waiters_.pop_front();
      w->slot = std::move(value);
      resume_later(sim_, w->handle);
      return true;
    }
    if (items_.size() < capacity_) {
      items_.push_back(std::move(value));
      return true;
    }
    return false;
  }

  // Attempts to take an item, refilling buffer space from blocked senders.
  std::optional<T> poll() {
    if (!items_.empty()) {
      T v = std::move(items_.front());
      items_.pop_front();
      refill_from_sender();
      return v;
    }
    if (!send_waiters_.empty()) {  // capacity == 0 rendezvous case
      SendAwaiter* s = send_waiters_.front();
      send_waiters_.pop_front();
      T v = std::move(s->value);
      resume_later(sim_, s->handle);
      return v;
    }
    return std::nullopt;
  }

  void refill_from_sender() {
    if (!send_waiters_.empty() && items_.size() < capacity_) {
      SendAwaiter* s = send_waiters_.front();
      send_waiters_.pop_front();
      items_.push_back(std::move(s->value));
      resume_later(sim_, s->handle);
    }
  }

  Simulator& sim_;
  std::size_t capacity_;
  std::deque<T> items_;
  std::deque<RecvAwaiter*> recv_waiters_;
  std::deque<SendAwaiter*> send_waiters_;
};

}  // namespace hpcvorx::sim
