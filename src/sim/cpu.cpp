#include "sim/cpu.hpp"

#include <utility>

namespace hpcvorx::sim {

Cpu::Cpu(Simulator& sim, std::string name)
    : sim_(sim), name_(std::move(name)), idle_start_(sim.now()) {
  idle_cat_ = Category::kIdleOther;
}

Cpu::~Cpu() = default;

Cpu::RunAwaiter Cpu::run(int prio, Duration cost, Category cat,
                         std::int64_t owner, Duration switch_in_cost) {
  assert(cost >= 0);
  Job job{prio, 0, cost, cat, owner, switch_in_cost, {}, next_seq_++};
  return RunAwaiter{*this, job};
}

void Cpu::set_idle_classifier(std::function<Category()> f) {
  idle_classifier_ = std::move(f);
  if (idle_open_ && idle_classifier_) idle_cat_ = idle_classifier_();
}

void Cpu::note_idle_reason_changed() {
  if (!idle_open_) return;
  const SimTime now = sim_.now();
  ledger_.add(idle_start_, now, idle_cat_);
  idle_start_ = now;
  idle_cat_ = idle_classifier_ ? idle_classifier_() : Category::kIdleOther;
}

void Cpu::finalize_accounting() {
  const SimTime now = sim_.now();
  if (idle_open_) {
    ledger_.add(idle_start_, now, idle_cat_);
    idle_start_ = now;
  } else if (running_ != nullptr) {
    // Attribute the partially-executed slice so totals cover [0, now].
    account_progress(running_, slice_start_, now);
    slice_start_ = now;
  }
}

void Cpu::enqueue(Job* job) {
  if (running_ == nullptr) {
    end_idle();
    ready_[job->prio].push_back(job);
    dispatch();
    return;
  }
  if (job->prio > running_->prio) {
    preempt_running();
    ready_[job->prio].push_back(job);
    dispatch();
    return;
  }
  ready_[job->prio].push_back(job);
}

void Cpu::dispatch() {
  assert(running_ == nullptr);
  // Emptied per-priority queues stay in the map: erasing them freed the
  // map node and the deque's spine on every slice (three malloc/free
  // pairs — the dominant allocation in the Table 1/2 profile), only for
  // the next enqueue at that priority to rebuild it all.  A CPU touches a
  // handful of distinct priorities, so skipping empties is cheaper.
  for (auto& [prio, queue] : ready_) {
    if (queue.empty()) continue;
    Job* job = queue.front();
    queue.pop_front();
    start_slice(job);
    return;
  }
  begin_idle();
}

void Cpu::start_slice(Job* job) {
  running_ = job;
  slice_start_ = sim_.now();
  if (job->owner == kBorrowedContext) {
    job->switch_left = job->switch_in_cost;  // ISR entry cost, no ctx change
  } else if (job->owner != last_owner_) {
    job->switch_left = job->switch_in_cost;
    last_owner_ = job->owner;
    ++ctx_switches_;
    sim_.counters().sample(name_, "ctxsw", sim_.now(),
                           static_cast<double>(ctx_switches_));
  }
  const Duration total = job->switch_left + job->work_left;
  slice_end_event_ =
      sim_.schedule_after(total, [this] { on_slice_complete(); });
}

void Cpu::account_progress(Job* job, SimTime from, SimTime to) {
  Duration elapsed = to - from;
  if (elapsed <= 0) return;
  const Duration sw = std::min(elapsed, job->switch_left);
  if (sw > 0) {
    ledger_.add(from, from + sw, Category::kContextSwitch);
    job->switch_left -= sw;
    elapsed -= sw;
    from += sw;
  }
  if (elapsed > 0) {
    ledger_.add(from, from + elapsed, job->cat);
    job->work_left -= elapsed;
    assert(job->work_left >= 0);
  }
}

void Cpu::preempt_running() {
  assert(running_ != nullptr);
  slice_end_event_.cancel();
  ++preemptions_;
  account_progress(running_, slice_start_, sim_.now());
  // A preempted job resumes ahead of queued peers at its priority.
  ready_[running_->prio].push_front(running_);
  running_ = nullptr;
}

void Cpu::on_slice_complete() {
  assert(running_ != nullptr);
  // Drop the handle to the just-fired event so its cancellation state
  // recycles through the small-block pool before the next slice's
  // allocate_shared, instead of pinning one block per idle CPU.
  slice_end_event_ = EventHandle{};
  Job* job = running_;
  account_progress(job, slice_start_, sim_.now());
  assert(job->switch_left == 0 && job->work_left == 0);
  running_ = nullptr;
  dispatch();
  // Resume after dispatching so a follow-on run() from this coroutine
  // queues behind (or legitimately preempts) the next job.
  job->handle.resume();
}

void Cpu::begin_idle() {
  if (idle_open_) return;
  idle_open_ = true;
  idle_start_ = sim_.now();
  idle_cat_ = idle_classifier_ ? idle_classifier_() : Category::kIdleOther;
}

void Cpu::end_idle() {
  if (!idle_open_) return;
  ledger_.add(idle_start_, sim_.now(), idle_cat_);
  idle_open_ = false;
}

}  // namespace hpcvorx::sim
