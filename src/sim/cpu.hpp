// A simulated processor with preemptive priority scheduling and exact
// time accounting.
//
// Every piece of simulated software "runs" by awaiting Cpu::run(priority,
// cost, category):  the awaiting coroutine resumes once the CPU has spent
// `cost` of virtual time on it, which may take longer than `cost` of
// elapsed time if higher-priority work (interrupt service, a
// higher-priority subprocess) preempts it.
//
// Context switches are modelled per §5 of the paper: each job carries an
// *owner* identity and a switch-in cost; whenever the CPU dispatches a job
// whose owner differs from the previously-running owner, the switch-in
// cost is charged first (80 µs for a full 68020+68882 register save in the
// paper's subprocess scheduler, much less for coroutines or interrupt
// service).
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace hpcvorx::sim {

/// Well-known priority levels.  Higher numbers run first.
namespace prio {
inline constexpr int kInterrupt = 1000;  // hardware interrupt service
inline constexpr int kKernel = 500;      // kernel syscall / protocol work
inline constexpr int kUserDefault = 100; // default subprocess priority
}  // namespace prio

/// Special owner id for jobs that "borrow" the interrupted context — e.g.
/// interrupt service routines, which run on the current kernel stack
/// without a register-file save.  Such a job always pays its own (small)
/// switch-in cost but does not change the CPU's notion of the last-running
/// owner, so the preempted subprocess resumes without re-paying the full
/// context-switch cost.
inline constexpr std::int64_t kBorrowedContext = -2;

class Cpu {
 public:
  Cpu(Simulator& sim, std::string name);
  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;
  ~Cpu();

  class RunAwaiter;

  /// Consumes `cost` of CPU time at `prio`, accounted to `cat`.
  /// `owner` identifies the executing context for context-switch
  /// accounting; `switch_in_cost` is charged (as Category::kContextSwitch)
  /// whenever the CPU dispatches this job after running a different owner.
  [[nodiscard]] RunAwaiter run(int prio, Duration cost, Category cat,
                               std::int64_t owner = 0,
                               Duration switch_in_cost = 0);

  /// Classifier consulted to label idle time; installed by the OS layer,
  /// which knows what its blocked threads are waiting for.
  void set_idle_classifier(std::function<Category()> f);

  /// The OS calls this when the reason for idleness changes (e.g. a thread
  /// just blocked on output while another was already blocked on input),
  /// so the current idle span is split and labelled correctly.
  void note_idle_reason_changed();

  [[nodiscard]] bool busy() const { return running_ != nullptr; }
  [[nodiscard]] const TimeLedger& ledger() const { return ledger_; }
  [[nodiscard]] TimeLedger& ledger() { return ledger_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Simulator& simulator() { return sim_; }

  /// Number of context switches dispatched (owner changed and the full
  /// switch-in cost was charged; borrowed-context ISR entries don't count,
  /// matching §5's definition of "a context switch").
  [[nodiscard]] std::uint64_t ctx_switches() const { return ctx_switches_; }

  /// Number of preemptions (a running slice's end event was cancelled by
  /// a higher-priority arrival).  Each one leaves a cancelled slice-end
  /// event behind in the queue; the event queue reaps those during
  /// level-1 promotion (EventQueue::Stats::l1_cancelled_reaped), so the
  /// two counters correlate in tests.
  [[nodiscard]] std::uint64_t preemptions() const { return preemptions_; }

  /// Closes the open idle/busy span so ledger totals cover [0, now].
  /// Call once at the end of an experiment before reading the ledger.
  void finalize_accounting();

 private:
  struct Job {
    int prio;
    Duration switch_left;   // remaining context-switch charge
    Duration work_left;     // remaining job cost
    Category cat;
    std::int64_t owner;
    Duration switch_in_cost;
    std::coroutine_handle<> handle;
    std::uint64_t seq;
  };

  void enqueue(Job* job);
  void dispatch();
  void start_slice(Job* job);
  void preempt_running();
  void account_progress(Job* job, SimTime from, SimTime to);
  void on_slice_complete();
  void begin_idle();
  void end_idle();

  Simulator& sim_;
  std::string name_;
  TimeLedger ledger_;
  std::function<Category()> idle_classifier_;

  // Ready jobs by priority (descending), FIFO within a priority.
  std::map<int, std::deque<Job*>, std::greater<int>> ready_;
  Job* running_ = nullptr;
  SimTime slice_start_ = 0;
  EventHandle slice_end_event_;
  std::int64_t last_owner_ = -1;
  std::uint64_t next_seq_ = 0;
  std::uint64_t ctx_switches_ = 0;
  std::uint64_t preemptions_ = 0;

  bool idle_open_ = true;      // an idle span is open from time 0
  SimTime idle_start_ = 0;
  Category idle_cat_ = Category::kIdleOther;

 public:
  class RunAwaiter {
   public:
    RunAwaiter(Cpu& cpu, Job job) : cpu_(cpu), job_(std::move(job)) {}
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      job_.handle = h;
      cpu_.enqueue(&job_);
    }
    void await_resume() const noexcept {}

   private:
    Cpu& cpu_;
    Job job_;
  };
};

}  // namespace hpcvorx::sim
