#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>

#include "sim/small_pool.hpp"

namespace hpcvorx::sim {

struct EventHandle::State {
  bool cancelled = false;
  bool fired = false;
};

namespace {

// Max-heap comparator inverted for min-heap behaviour with std::*_heap.
struct Later {
  bool operator()(const EventQueue::Entry& a,
                  const EventQueue::Entry& b) const {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  }
};

}  // namespace

bool EventHandle::cancel() {
  if (!state_ || state_->cancelled || state_->fired) return false;
  state_->cancelled = true;
  return true;
}

bool EventHandle::pending() const {
  return state_ && !state_->cancelled && !state_->fired;
}

EventQueue::EventQueue() {
  constexpr std::size_t kBucketBytes =
      static_cast<std::size_t>(kWheelBuckets) * sizeof(std::uint32_t);
  constexpr std::size_t kBitmapBytes =
      static_cast<std::size_t>(kWords) * sizeof(std::uint64_t);
  wheel_mem_ =
      std::make_unique_for_overwrite<std::byte[]>(kBucketBytes + kBitmapBytes);
  buckets_ = reinterpret_cast<std::uint32_t*>(wheel_mem_.get());
  occupancy_ = reinterpret_cast<std::uint64_t*>(wheel_mem_.get() + kBucketBytes);
  std::memset(occupancy_, 0, kBitmapBytes);
}

EventHandle EventQueue::push(SimTime at, InlineFn&& fn) {
  // allocate_shared through the small-block pool: the state + control
  // block recycle instead of hitting malloc once per cancellable event
  // (one per CPU slice — the busiest push() caller in the system).
  auto state = std::allocate_shared<EventHandle::State>(
      SmallBlockAllocator<EventHandle::State>{});
  auto state_copy = state;
  insert(at, next_seq_++, std::move(fn), std::move(state_copy));
  return EventHandle{std::move(state)};
}

void EventQueue::post(SimTime at, InlineFn&& fn) {
  insert(at, next_seq_++, std::move(fn), nullptr);
}

void EventQueue::insert(SimTime at, std::uint64_t seq, InlineFn&& fn,
                        std::shared_ptr<EventHandle::State>&& state) {
  if (at >= base_ && static_cast<std::uint64_t>(at - base_) < kWheelBuckets) {
    // Ring path: O(1) append to the exact-tick bucket's FIFO.  Reserving
    // the slab on first use sidesteps vector-doubling relocation of live
    // entries through the warm-up of a fresh queue.
    if (slab_.capacity() == 0) slab_.reserve(1024);
    std::uint32_t idx;
    if (free_head_ != kNil) {
      idx = free_head_;
      Node& n = slab_[idx];
      free_head_ = n.next;
      n.e.at = at;
      n.e.seq = seq;
      n.e.fn = std::move(fn);
      n.e.state = std::move(state);
      n.next = kNil;
    } else {
      idx = static_cast<std::uint32_t>(slab_.size());
      slab_.push_back(
          Node{Entry{at, seq, std::move(fn), std::move(state)}, kNil, kNil});
    }
    const std::size_t b = bucket_index(at);
    if (!bucket_occupied(b)) {
      occupancy_[b >> 6] |= std::uint64_t{1} << (b & 63);
      buckets_[b] = idx;
      slab_[idx].bucket_tail = idx;
    } else {
      Node& head_node = slab_[buckets_[b]];
      slab_[head_node.bucket_tail].next = idx;
      head_node.bucket_tail = idx;
    }
    if (wheel_count_ == 0 || at < wheel_min_) {
      wheel_min_ = at;
      wheel_head_ = idx;
    }
    ++wheel_count_;
  } else {
    // Spill path: far future (beyond the window) or behind the frontier.
    heap_.push_back(Entry{at, seq, std::move(fn), std::move(state)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }
}

EventQueue::Entry* EventQueue::next_head(bool& from_wheel) const {
  const bool have_wheel = wheel_count_ > 0;
  const bool have_heap = !heap_.empty();
  if (!have_wheel && !have_heap) return nullptr;
  if (have_wheel && !have_heap) {
    from_wheel = true;
    return &slab_[wheel_head_].e;
  }
  if (!have_wheel) {
    from_wheel = false;
    return &heap_.front();
  }
  Entry& w = slab_[wheel_head_].e;
  Entry& h = heap_.front();
  from_wheel = (w.at != h.at) ? (w.at < h.at) : (w.seq < h.seq);
  return from_wheel ? &w : &h;
}

void EventQueue::discard_wheel_head() const {
  const std::size_t b = bucket_index(wheel_min_);
  const std::uint32_t idx = wheel_head_;
  Node& n = slab_[idx];
  const std::uint32_t next = n.next;
  n.e.fn.reset();
  n.e.state.reset();
  n.next = free_head_;
  free_head_ = idx;
  --wheel_count_;
  if (next == kNil) {
    occupancy_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
    if (wheel_count_ > 0) advance_wheel_min(b);
  } else {
    slab_[next].bucket_tail = n.bucket_tail;  // tail rides on the new head
    buckets_[b] = next;
    wheel_head_ = next;
  }
}

void EventQueue::discard_heap_head() const {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  heap_.pop_back();
}

void EventQueue::advance_wheel_min(std::size_t emptied_bucket) const {
  // wheel_min_ was the global ring minimum, so every occupied bucket lies
  // circularly *after* its bucket in window order; the first set bit from
  // emptied_bucket + 1 onwards is the new minimum.
  const std::size_t b = (emptied_bucket + 1) & kMask;
  std::size_t word = b >> 6;
  std::uint64_t bits = occupancy_[word] & (~std::uint64_t{0} << (b & 63));
  for (std::size_t scanned = 0; scanned <= kWords; ++scanned) {
    if (bits != 0) {
      const std::size_t found =
          (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
      wheel_min_ = time_of_bucket(found);
      wheel_head_ = buckets_[found];
      return;
    }
    word = (word + 1) & (kWords - 1);
    bits = occupancy_[word];
  }
  assert(false && "wheel_count_ > 0 but no occupied bucket");
}

void EventQueue::drop_cancelled() const {
  bool from_wheel = false;
  Entry* head;
  while ((head = next_head(from_wheel)) != nullptr && head->state &&
         head->state->cancelled) {
    if (from_wheel) {
      discard_wheel_head();
    } else {
      discard_heap_head();
    }
  }
}

bool EventQueue::empty() const {
  // Fast path: a live, handle-free ring head (the steady state) proves
  // non-emptiness without touching the heap or the reap loop.
  if (wheel_count_ > 0 && slab_[wheel_head_].e.state == nullptr) return false;
  drop_cancelled();
  return wheel_count_ == 0 && heap_.empty();
}

SimTime EventQueue::next_time() const {
  drop_cancelled();
  bool from_wheel = false;
  const Entry* head = next_head(from_wheel);
  assert(head != nullptr);
  return head->at;
}

std::pair<SimTime, InlineFn> EventQueue::pop() {
  for (;;) {
    bool from_wheel = false;
    Entry* head = next_head(from_wheel);
    assert(head != nullptr);
    if (head->state != nullptr) {
      if (head->state->cancelled) {
        // Reap lazily-cancelled heads inline instead of a pre-pass so the
        // common no-handle case costs a single null check.
        if (from_wheel) {
          discard_wheel_head();
        } else {
          discard_heap_head();
        }
        continue;
      }
      head->state->fired = true;
    }
    std::pair<SimTime, InlineFn> out{head->at, std::move(head->fn)};
    if (from_wheel) {
      discard_wheel_head();
    } else {
      discard_heap_head();
    }
    // Advance the window: the popped entry was the global minimum, so
    // everything still in the ring is >= at and keeps its bucket mapping.
    base_ = std::max(base_, out.first);
    return out;
  }
}

}  // namespace hpcvorx::sim
