#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace hpcvorx::sim {

struct EventHandle::State {
  bool cancelled = false;
  bool fired = false;
};

namespace {

// Max-heap comparator inverted for min-heap behaviour with std::*_heap.
struct Later {
  bool operator()(const EventQueue::Entry& a,
                  const EventQueue::Entry& b) const {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  }
};

}  // namespace

bool EventHandle::cancel() {
  if (!state_ || state_->cancelled || state_->fired) return false;
  state_->cancelled = true;
  return true;
}

bool EventHandle::pending() const {
  return state_ && !state_->cancelled && !state_->fired;
}

EventHandle EventQueue::push(SimTime at, std::function<void()> fn) {
  auto state = std::make_shared<EventHandle::State>();
  heap_.push_back(Entry{at, next_seq_++, std::move(fn), state});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return EventHandle{std::move(state)};
}

void EventQueue::post(SimTime at, std::function<void()> fn) {
  heap_.push_back(Entry{at, next_seq_++, std::move(fn), nullptr});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && heap_.front().state &&
         heap_.front().state->cancelled) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

bool EventQueue::empty() const {
  drop_cancelled();
  return heap_.empty();
}

SimTime EventQueue::next_time() const {
  drop_cancelled();
  assert(!heap_.empty());
  return heap_.front().at;
}

std::pair<SimTime, std::function<void()>> EventQueue::pop() {
  drop_cancelled();
  assert(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry entry = std::move(heap_.back());
  heap_.pop_back();
  if (entry.state) entry.state->fired = true;
  return {entry.at, std::move(entry.fn)};
}

}  // namespace hpcvorx::sim
