#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace hpcvorx::sim {

struct EventHandle::State {
  bool cancelled = false;
  bool fired = false;
};

struct EventQueue::Entry {
  SimTime at;
  std::uint64_t seq;
  std::function<void()> fn;
  std::shared_ptr<EventHandle::State> state;
};

// Max-heap comparator inverted for min-heap behaviour with std::*_heap.
struct Later {
  bool operator()(const std::shared_ptr<EventQueue::Entry>& a,
                  const std::shared_ptr<EventQueue::Entry>& b) const {
    if (a->at != b->at) return a->at > b->at;
    return a->seq > b->seq;
  }
};

bool EventHandle::cancel() {
  if (!state_ || state_->cancelled || state_->fired) return false;
  state_->cancelled = true;
  return true;
}

bool EventHandle::pending() const {
  return state_ && !state_->cancelled && !state_->fired;
}

EventHandle EventQueue::push(SimTime at, std::function<void()> fn) {
  auto state = std::make_shared<EventHandle::State>();
  auto entry = std::make_shared<Entry>(
      Entry{at, next_seq_++, std::move(fn), state});
  heap_.push_back(std::move(entry));
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return EventHandle{std::move(state)};
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && heap_.front()->state->cancelled) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

bool EventQueue::empty() const {
  drop_cancelled();
  return heap_.empty();
}

SimTime EventQueue::next_time() const {
  drop_cancelled();
  assert(!heap_.empty());
  return heap_.front()->at;
}

std::pair<SimTime, std::function<void()>> EventQueue::pop() {
  drop_cancelled();
  assert(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  auto entry = std::move(heap_.back());
  heap_.pop_back();
  entry->state->fired = true;
  return {entry->at, std::move(entry->fn)};
}

}  // namespace hpcvorx::sim
