#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>

#include "sim/small_pool.hpp"

// Ordering correctness of the two-level wheel rests on one invariant:
//
//   PROMOTION INVARIANT.  No event may enter a level-0 tick bucket while
//   an earlier-sequence event for the same tick still sits in level 1.
//
// Three rules uphold it (proof sketch in DESIGN.md §9):
//   1. Direct level-0 inserts accept only `at - base_ < kL0Window`, one
//      level-1 bucket short of the ring's width.  Any directly-reachable
//      tick therefore lies in a level-1 bucket that already satisfied the
//      promotion condition (bucket end <= base_ + kWheelBuckets).
//   2. promote_due() drains every such bucket immediately whenever base_
//      advances — at the end of pop() and inside next_head() — so rule 1's
//      bucket was emptied before the direct insert could race it.
//   3. Promotion walks a bucket's FIFO in insertion order and appends to
//      the exact-tick ring FIFOs, which preserves per-tick sequence order.
//
// base_ only ever advances, and only to times <= the global minimum event
// time, so both wheels' circular mappings stay unambiguous for resident
// events: level 0 spans kWheelBuckets ticks, and level 1 accepts only
// times strictly before l1_bucket_start(base_) + kL1Span, so a resident
// event's bucket index can never alias the frontier's own bucket (see
// insert()).

namespace hpcvorx::sim {

struct EventHandle::State {
  bool cancelled = false;
  bool fired = false;
};

bool EventHandle::cancel() {
  if (!state_ || state_->cancelled || state_->fired) return false;
  state_->cancelled = true;
  return true;
}

bool EventHandle::pending() const {
  return state_ && !state_->cancelled && !state_->fired;
}

EventQueue::EventQueue() {
  constexpr std::size_t kBucketBytes =
      static_cast<std::size_t>(kWheelBuckets) * sizeof(std::uint32_t);
  constexpr std::size_t kBitmapBytes =
      static_cast<std::size_t>(kWords) * sizeof(std::uint64_t);
  constexpr std::size_t kL1BucketBytes =
      static_cast<std::size_t>(kL1Buckets) * sizeof(std::uint32_t);
  constexpr std::size_t kL1BitmapBytes =
      static_cast<std::size_t>(kL1Words) * sizeof(std::uint64_t);
  wheel_mem_ = std::make_unique_for_overwrite<std::byte[]>(
      kBucketBytes + kBitmapBytes + kL1BucketBytes + kL1BitmapBytes);
  std::byte* p = wheel_mem_.get();
  buckets_ = reinterpret_cast<std::uint32_t*>(p);
  occupancy_ = reinterpret_cast<std::uint64_t*>(p + kBucketBytes);
  l1_buckets_ =
      reinterpret_cast<std::uint32_t*>(p + kBucketBytes + kBitmapBytes);
  l1_occupancy_ = reinterpret_cast<std::uint64_t*>(p + kBucketBytes +
                                                   kBitmapBytes +
                                                   kL1BucketBytes);
  std::memset(occupancy_, 0, kBitmapBytes);
  std::memset(l1_occupancy_, 0, kL1BitmapBytes);
}

EventHandle EventQueue::push(SimTime at, InlineFn&& fn) {
  // allocate_shared through the small-block pool: the state + control
  // block recycle instead of hitting malloc once per cancellable event
  // (one per CPU slice — the busiest push() caller in the system).
  auto state = std::allocate_shared<EventHandle::State>(
      SmallBlockAllocator<EventHandle::State>{});
  auto state_copy = state;
  insert(at, next_seq_++, std::move(fn), std::move(state_copy));
  return EventHandle{std::move(state)};
}

void EventQueue::post(SimTime at, InlineFn&& fn) {
  insert(at, next_seq_++, std::move(fn), nullptr);
}

std::uint32_t EventQueue::alloc_node(
    SimTime at, std::uint64_t seq, InlineFn&& fn,
    std::shared_ptr<EventHandle::State>&& state) const {
  // Reserving the slab on first use sidesteps vector-doubling relocation
  // of live entries through the warm-up of a fresh queue.
  if (slab_.capacity() == 0) slab_.reserve(1024);
  if (free_head_ != kNil) {
    const std::uint32_t idx = free_head_;
    Node& n = slab_[idx];
    free_head_ = n.next;
    n.e.at = at;
    n.e.seq = seq;
    n.e.fn = std::move(fn);
    n.e.state = std::move(state);
    n.next = kNil;
    return idx;
  }
  const std::uint32_t idx = static_cast<std::uint32_t>(slab_.size());
  slab_.push_back(
      Node{Entry{at, seq, std::move(fn), std::move(state)}, kNil, kNil});
  return idx;
}

void EventQueue::free_node(std::uint32_t idx) const {
  Node& n = slab_[idx];
  n.e.fn.reset();
  n.e.state.reset();
  n.next = free_head_;
  free_head_ = idx;
}

void EventQueue::link_l0(std::uint32_t idx) const {
  const SimTime at = slab_[idx].e.at;
  const std::size_t b = bucket_index(at);
  if (!bucket_occupied(b)) {
    occupancy_[b >> 6] |= std::uint64_t{1} << (b & 63);
    buckets_[b] = idx;
    slab_[idx].bucket_tail = idx;
  } else {
    Node& head_node = slab_[buckets_[b]];
    slab_[head_node.bucket_tail].next = idx;
    head_node.bucket_tail = idx;
  }
  if (wheel_count_ == 0 || at < wheel_min_) {
    wheel_min_ = at;
    wheel_head_ = idx;
  }
  ++wheel_count_;
}

void EventQueue::link_l1(std::uint32_t idx) const {
  const SimTime at = slab_[idx].e.at;
  const std::size_t b = l1_bucket_index(at);
  if (!l1_bucket_occupied(b)) {
    l1_occupancy_[b >> 6] |= std::uint64_t{1} << (b & 63);
    l1_buckets_[b] = idx;
    slab_[idx].bucket_tail = idx;
  } else {
    Node& head_node = slab_[l1_buckets_[b]];
    slab_[head_node.bucket_tail].next = idx;
    head_node.bucket_tail = idx;
  }
  const SimTime start = l1_bucket_start(at);
  if (l1_count_ == 0 || start < l1_min_start_) l1_min_start_ = start;
  ++l1_count_;
}

void EventQueue::insert(SimTime at, std::uint64_t seq, InlineFn&& fn,
                        std::shared_ptr<EventHandle::State>&& state) {
  if (at >= base_) {
    const std::uint64_t delta = static_cast<std::uint64_t>(at - base_);
    if (delta < kL0Window) {
      // Level-0 path: O(1) append to the exact-tick bucket's FIFO.
      link_l0(alloc_node(at, seq, std::move(fn), std::move(state)));
      ++stats_.l0_inserts;
      return;
    }
    // Level-1 accept window, frontier-bucket-exclusive.  The circular
    // mapping spans kL1Buckets buckets starting at the frontier's own
    // bucket, so when base_ sits mid-bucket the last partial bucket of
    // [base_, base_ + kL1Span) aliases the frontier's bucket index;
    // time_of_l1_bucket() would report the aliased bucket's start as
    // ~base_ (kL1Span too early), promote_due() would drain it at once,
    // and link_l0() would see a time outside the ring window.  Events in
    // that partial bucket spill to the heap instead.
    if (delta < kL1Span - (static_cast<std::uint64_t>(base_) & (kL1Tick - 1))) {
      // Level-1 path: O(1) append to the coarse bucket's FIFO; the
      // bucket is redistributed into level 0 when the frontier nears it.
      link_l1(alloc_node(at, seq, std::move(fn), std::move(state)));
      ++stats_.l1_inserts;
      return;
    }
  }
  // True spill: far future (beyond the level-1 span) or behind the
  // frontier.  The node stays in the slab; only its 4-byte handle sifts.
  heap_.push_back(alloc_node(at, seq, std::move(fn), std::move(state)));
  ++stats_.heap_inserts;
  const auto later = [this](std::uint32_t a, std::uint32_t b) {
    const Entry& ea = slab_[a].e;
    const Entry& eb = slab_[b].e;
    if (ea.at != eb.at) return ea.at > eb.at;
    return ea.seq > eb.seq;
  };
  std::push_heap(heap_.begin(), heap_.end(), later);
}

void EventQueue::promote_due() const {
  // A bucket is due once it fits entirely inside the level-0 window; the
  // earliest-bucket pointer makes the common case (nothing due) one
  // compare.  Buckets promote earliest-first, so promoted events are
  // always strictly earlier than everything still resident in level 1.
  while (l1_count_ > 0 &&
         l1_min_start_ + static_cast<SimTime>(kL1Tick) <=
             base_ + static_cast<SimTime>(kWheelBuckets)) {
    promote_min_bucket();
  }
}

void EventQueue::promote_min_bucket() const {
  const std::size_t b = l1_bucket_index(l1_min_start_);
  assert(l1_bucket_occupied(b));
  std::uint32_t idx = l1_buckets_[b];
  l1_occupancy_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
  while (idx != kNil) {
    Node& n = slab_[idx];
    const std::uint32_t next = n.next;
    --l1_count_;
    if (n.e.state != nullptr && n.e.state->cancelled) {
      // Reap cancelled events here instead of relinking them: a preempted
      // CPU slice's cancelled slice-end event never reaches level 0.
      free_node(idx);
      ++stats_.l1_cancelled_reaped;
    } else {
      n.next = kNil;
      link_l0(idx);
      ++stats_.l1_promoted;
    }
    idx = next;
  }
  if (l1_count_ > 0) advance_l1_min(b);
}

EventQueue::Entry* EventQueue::next_head(bool& from_wheel) const {
  promote_due();
  // Fast-forward: if level 0 is empty and the heap holds nothing earlier
  // than the earliest level-1 bucket, nothing can fire before that bucket
  // — jump the frontier to its start and promote it.  (After promote_due,
  // a non-empty level 0 is always strictly earlier than all of level 1,
  // so only the heap needs checking.)
  while (l1_count_ > 0 && wheel_count_ == 0 &&
         (heap_.empty() || slab_[heap_.front()].e.at >= l1_min_start_)) {
    base_ = std::max(base_, l1_min_start_);
    promote_due();
  }
  const bool have_wheel = wheel_count_ > 0;
  const bool have_heap = !heap_.empty();
  if (!have_wheel && !have_heap) return nullptr;
  if (have_wheel && !have_heap) {
    from_wheel = true;
    return &slab_[wheel_head_].e;
  }
  if (!have_wheel) {
    from_wheel = false;
    return &slab_[heap_.front()].e;
  }
  Entry& w = slab_[wheel_head_].e;
  Entry& h = slab_[heap_.front()].e;
  from_wheel = (w.at != h.at) ? (w.at < h.at) : (w.seq < h.seq);
  return from_wheel ? &w : &h;
}

void EventQueue::discard_wheel_head() const {
  const std::size_t b = bucket_index(wheel_min_);
  const std::uint32_t idx = wheel_head_;
  Node& n = slab_[idx];
  const std::uint32_t next = n.next;
  const std::uint32_t tail = n.bucket_tail;
  free_node(idx);
  --wheel_count_;
  if (next == kNil) {
    occupancy_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
    if (wheel_count_ > 0) advance_wheel_min(b);
  } else {
    slab_[next].bucket_tail = tail;  // tail rides on the new head
    buckets_[b] = next;
    wheel_head_ = next;
  }
}

void EventQueue::discard_heap_head() const {
  const auto later = [this](std::uint32_t a, std::uint32_t b) {
    const Entry& ea = slab_[a].e;
    const Entry& eb = slab_[b].e;
    if (ea.at != eb.at) return ea.at > eb.at;
    return ea.seq > eb.seq;
  };
  std::pop_heap(heap_.begin(), heap_.end(), later);
  free_node(heap_.back());
  heap_.pop_back();
}

void EventQueue::advance_wheel_min(std::size_t emptied_bucket) const {
  // wheel_min_ was the global ring minimum, so every occupied bucket lies
  // circularly *after* its bucket in window order; the first set bit from
  // emptied_bucket + 1 onwards is the new minimum.
  const std::size_t b = (emptied_bucket + 1) & kMask;
  std::size_t word = b >> 6;
  std::uint64_t bits = occupancy_[word] & (~std::uint64_t{0} << (b & 63));
  for (std::size_t scanned = 0; scanned <= kWords; ++scanned) {
    if (bits != 0) {
      const std::size_t found =
          (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
      wheel_min_ = time_of_bucket(found);
      wheel_head_ = buckets_[found];
      return;
    }
    word = (word + 1) & (kWords - 1);
    bits = occupancy_[word];
  }
  assert(false && "wheel_count_ > 0 but no occupied bucket");
}

void EventQueue::advance_l1_min(std::size_t emptied_bucket) const {
  const std::size_t b = (emptied_bucket + 1) & kL1Mask;
  std::size_t word = b >> 6;
  std::uint64_t bits = l1_occupancy_[word] & (~std::uint64_t{0} << (b & 63));
  for (std::size_t scanned = 0; scanned <= kL1Words; ++scanned) {
    if (bits != 0) {
      const std::size_t found =
          (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
      l1_min_start_ = time_of_l1_bucket(found);
      return;
    }
    word = (word + 1) & (kL1Words - 1);
    bits = l1_occupancy_[word];
  }
  assert(false && "l1_count_ > 0 but no occupied level-1 bucket");
}

void EventQueue::drop_cancelled() const {
  bool from_wheel = false;
  Entry* head;
  while ((head = next_head(from_wheel)) != nullptr && head->state &&
         head->state->cancelled) {
    if (from_wheel) {
      discard_wheel_head();
    } else {
      discard_heap_head();
    }
  }
}

bool EventQueue::empty() const {
  // Fast path: a live, handle-free ring head (the steady state) proves
  // non-emptiness without touching the other structures or the reap loop.
  if (wheel_count_ > 0 && slab_[wheel_head_].e.state == nullptr) return false;
  drop_cancelled();
  return wheel_count_ == 0 && l1_count_ == 0 && heap_.empty();
}

SimTime EventQueue::next_time() const {
  drop_cancelled();
  bool from_wheel = false;
  const Entry* head = next_head(from_wheel);
  assert(head != nullptr);
  return head->at;
}

std::pair<SimTime, InlineFn> EventQueue::pop() {
  for (;;) {
    bool from_wheel = false;
    Entry* head = next_head(from_wheel);
    assert(head != nullptr);
    if (head->state != nullptr) {
      if (head->state->cancelled) {
        // Reap lazily-cancelled heads inline instead of a pre-pass so the
        // common no-handle case costs a single null check.
        if (from_wheel) {
          discard_wheel_head();
        } else {
          discard_heap_head();
        }
        continue;
      }
      head->state->fired = true;
    }
    std::pair<SimTime, InlineFn> out{head->at, std::move(head->fn)};
    if (from_wheel) {
      discard_wheel_head();
    } else {
      discard_heap_head();
    }
    // Advance the window: the popped entry was the global minimum, so
    // everything still resident is >= at and keeps its bucket mapping.
    // Promoting due level-1 buckets *now* (not at the next head read)
    // keeps the promotion invariant against inserts landing before the
    // next pop.
    base_ = std::max(base_, out.first);
    promote_due();
    return out;
  }
}

}  // namespace hpcvorx::sim
