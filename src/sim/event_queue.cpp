#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>
#include <limits>

#include "sim/small_pool.hpp"

// Ordering correctness of the two-level wheel rests on one invariant:
//
//   PROMOTION INVARIANT.  No event may enter a level-0 tick bucket while
//   an earlier-sequence event for the same tick still sits in level 1.
//
// Three rules uphold it (proof sketch in DESIGN.md §9):
//   1. Direct level-0 inserts accept only `at - base_ < kL0Window`, one
//      level-1 bucket short of the ring's width.  Any directly-reachable
//      tick therefore lies in a level-1 bucket that already satisfied the
//      promotion condition (bucket end <= base_ + kWheelBuckets).
//   2. promote_due() drains every such bucket immediately whenever base_
//      advances — at the end of pop() and inside next_head() — so rule 1's
//      bucket was emptied before the direct insert could race it.
//   3. Promotion walks a bucket's FIFO in insertion order and appends to
//      the exact-tick ring FIFOs, which preserves per-tick sequence order.
//
// base_ only ever advances, and only to times <= the global minimum event
// time, so both wheels' circular mappings stay unambiguous for resident
// events: level 0 spans kWheelBuckets ticks, and level 1 accepts only
// times strictly before l1_bucket_start(base_) + kL1Span, so a resident
// event's bucket index can never alias the frontier's own bucket (see
// insert()).

namespace hpcvorx::sim {

bool EventHandle::cancel() {
  if (!state_ || state_->cancelled || state_->fired) return false;
  state_->cancelled = true;
  return true;
}

bool EventHandle::pending() const {
  return state_ && !state_->cancelled && !state_->fired;
}

EventQueue::EventQueue() {
  constexpr std::size_t kBucketBytes =
      static_cast<std::size_t>(kWheelBuckets) * sizeof(std::uint32_t);
  constexpr std::size_t kBitmapBytes =
      static_cast<std::size_t>(kWords) * sizeof(std::uint64_t);
  constexpr std::size_t kL1BucketBytes =
      static_cast<std::size_t>(kL1Buckets) * sizeof(std::uint32_t);
  constexpr std::size_t kL1BitmapBytes =
      static_cast<std::size_t>(kL1Words) * sizeof(std::uint64_t);
  wheel_mem_ = std::make_unique_for_overwrite<std::byte[]>(
      kBucketBytes + kBitmapBytes + kL1BucketBytes + kL1BitmapBytes);
  std::byte* p = wheel_mem_.get();
  buckets_ = reinterpret_cast<std::uint32_t*>(p);
  occupancy_ = reinterpret_cast<std::uint64_t*>(p + kBucketBytes);
  l1_buckets_ =
      reinterpret_cast<std::uint32_t*>(p + kBucketBytes + kBitmapBytes);
  l1_occupancy_ = reinterpret_cast<std::uint64_t*>(p + kBucketBytes +
                                                   kBitmapBytes +
                                                   kL1BucketBytes);
  std::memset(occupancy_, 0, kBitmapBytes);
  std::memset(l1_occupancy_, 0, kL1BitmapBytes);
}

EventHandle EventQueue::push(SimTime at, InlineFn&& fn) {
  // allocate_shared through the small-block pool: the state + control
  // block recycle instead of hitting malloc once per cancellable event
  // (one per CPU slice — the busiest push() caller in the system).
  auto state = std::allocate_shared<EventHandle::State>(
      SmallBlockAllocator<EventHandle::State>{});
  auto state_copy = state;
  insert(at, next_seq_++, std::move(fn), std::move(state_copy));
  return EventHandle{std::move(state)};
}

void EventQueue::spill(std::uint32_t idx) {
  heap_.push_back(idx);
  ++stats_.heap_inserts;
  const auto later = [this](std::uint32_t a, std::uint32_t b) {
    const Entry& ea = slab_[a].e;
    const Entry& eb = slab_[b].e;
    if (ea.at != eb.at) return ea.at > eb.at;
    return ea.seq > eb.seq;
  };
  std::push_heap(heap_.begin(), heap_.end(), later);
}

void EventQueue::promote_due() const {
  // A bucket is due once it fits entirely inside the level-0 window; the
  // earliest-bucket pointer makes the common case (nothing due) one
  // compare.  Buckets promote earliest-first, so promoted events are
  // always strictly earlier than everything still resident in level 1.
  while (l1_count_ > 0 &&
         l1_min_start_ + static_cast<SimTime>(kL1Tick) <=
             base_ + static_cast<SimTime>(kWheelBuckets)) {
    promote_min_bucket();
  }
}

void EventQueue::promote_min_bucket() const {
  const std::size_t b = l1_bucket_index(l1_min_start_);
  assert(l1_bucket_occupied(b));
  std::uint32_t idx = l1_buckets_[b];
  l1_occupancy_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
  while (idx != kNil) {
    Node& n = slab_[idx];
    const std::uint32_t next = n.next;
    --l1_count_;
    if (n.e.state != nullptr && n.e.state->cancelled) {
      // Reap cancelled events here instead of relinking them: a preempted
      // CPU slice's cancelled slice-end event never reaches level 0.
      free_node(idx);
      ++stats_.l1_cancelled_reaped;
    } else {
      n.next = kNil;
      link_l0(idx);
      ++stats_.l1_promoted;
    }
    idx = next;
  }
  if (l1_count_ > 0) advance_l1_min(b);
}

EventQueue::Entry* EventQueue::next_head(bool& from_wheel) const {
  promote_due();
  // Fast-forward: if level 0 is empty and the heap holds nothing earlier
  // than the earliest level-1 bucket, nothing can fire before that bucket
  // — jump the frontier to its start and promote it.  (After promote_due,
  // a non-empty level 0 is always strictly earlier than all of level 1,
  // so only the heap needs checking.)
  while (l1_count_ > 0 && wheel_count_ == 0 &&
         (heap_.empty() || slab_[heap_.front()].e.at >= l1_min_start_)) {
    base_ = std::max(base_, l1_min_start_);
    promote_due();
  }
  const bool have_wheel = wheel_count_ > 0;
  const bool have_heap = !heap_.empty();
  if (!have_wheel && !have_heap) return nullptr;
  if (have_wheel && !have_heap) {
    from_wheel = true;
    return &slab_[wheel_head_].e;
  }
  if (!have_wheel) {
    from_wheel = false;
    return &slab_[heap_.front()].e;
  }
  Entry& w = slab_[wheel_head_].e;
  Entry& h = slab_[heap_.front()].e;
  from_wheel = (w.at != h.at) ? (w.at < h.at) : (w.seq < h.seq);
  return from_wheel ? &w : &h;
}

void EventQueue::discard_wheel_head() const {
  const std::size_t b = bucket_index(wheel_min_);
  const std::uint32_t idx = wheel_head_;
  Node& n = slab_[idx];
  const std::uint32_t next = n.next;
  const std::uint32_t tail = n.bucket_tail;
  free_node(idx);
  --wheel_count_;
  if (next == kNil) {
    occupancy_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
    if (wheel_count_ > 0) advance_wheel_min(b);
  } else {
    slab_[next].bucket_tail = tail;  // tail rides on the new head
    buckets_[b] = next;
    wheel_head_ = next;
  }
}

void EventQueue::discard_heap_head() const {
  const auto later = [this](std::uint32_t a, std::uint32_t b) {
    const Entry& ea = slab_[a].e;
    const Entry& eb = slab_[b].e;
    if (ea.at != eb.at) return ea.at > eb.at;
    return ea.seq > eb.seq;
  };
  std::pop_heap(heap_.begin(), heap_.end(), later);
  free_node(heap_.back());
  heap_.pop_back();
}

void EventQueue::advance_wheel_min(std::size_t emptied_bucket) const {
  // wheel_min_ was the global ring minimum, so every occupied bucket lies
  // circularly *after* its bucket in window order; the first set bit from
  // emptied_bucket + 1 onwards is the new minimum.
  const std::size_t b = (emptied_bucket + 1) & kMask;
  std::size_t word = b >> 6;
  std::uint64_t bits = occupancy_[word] & (~std::uint64_t{0} << (b & 63));
  for (std::size_t scanned = 0; scanned <= kWords; ++scanned) {
    if (bits != 0) {
      const std::size_t found =
          (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
      wheel_min_ = time_of_bucket(found);
      wheel_head_ = buckets_[found];
      return;
    }
    word = (word + 1) & (kWords - 1);
    bits = occupancy_[word];
  }
  assert(false && "wheel_count_ > 0 but no occupied bucket");
}

void EventQueue::advance_l1_min(std::size_t emptied_bucket) const {
  const std::size_t b = (emptied_bucket + 1) & kL1Mask;
  std::size_t word = b >> 6;
  std::uint64_t bits = l1_occupancy_[word] & (~std::uint64_t{0} << (b & 63));
  for (std::size_t scanned = 0; scanned <= kL1Words; ++scanned) {
    if (bits != 0) {
      const std::size_t found =
          (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
      l1_min_start_ = time_of_l1_bucket(found);
      return;
    }
    word = (word + 1) & (kL1Words - 1);
    bits = l1_occupancy_[word];
  }
  assert(false && "l1_count_ > 0 but no occupied level-1 bucket");
}

void EventQueue::drop_cancelled() const {
  bool from_wheel = false;
  Entry* head;
  while ((head = next_head(from_wheel)) != nullptr && head->state &&
         head->state->cancelled) {
    if (from_wheel) {
      discard_wheel_head();
    } else {
      discard_heap_head();
    }
  }
}

bool EventQueue::empty() const {
  // Fast path: a live, handle-free ring head (the steady state) proves
  // non-emptiness without touching the other structures or the reap loop.
  if (wheel_count_ > 0 && slab_[wheel_head_].e.state == nullptr) return false;
  drop_cancelled();
  return wheel_count_ == 0 && l1_count_ == 0 && heap_.empty();
}

SimTime EventQueue::next_time() const {
  drop_cancelled();
  bool from_wheel = false;
  const Entry* head = next_head(from_wheel);
  assert(head != nullptr);
  return head->at;
}

std::pair<SimTime, InlineFn> EventQueue::pop() {
  for (;;) {
    bool from_wheel = false;
    Entry* head = next_head(from_wheel);
    assert(head != nullptr);
    if (head->state != nullptr) {
      if (head->state->cancelled) {
        // Reap lazily-cancelled heads inline instead of a pre-pass so the
        // common no-handle case costs a single null check.
        if (from_wheel) {
          discard_wheel_head();
        } else {
          discard_heap_head();
        }
        continue;
      }
      head->state->fired = true;
    }
    std::pair<SimTime, InlineFn> out{head->at, std::move(head->fn)};
    if (from_wheel) {
      discard_wheel_head();
    } else {
      discard_heap_head();
    }
    // Advance the window: the popped entry was the global minimum, so
    // everything still resident is >= at and keeps its bucket mapping.
    // Promoting due level-1 buckets *now* (not at the next head read)
    // keeps the promotion invariant against inserts landing before the
    // next pop.
    base_ = std::max(base_, out.first);
    promote_due();
    return out;
  }
}

std::size_t EventQueue::drain_bucket(DrainBatch& out, SimTime limit) {
  assert(out.exhausted() && "refusing to drain over unfired batch entries");
  out.reset_fill(this);
  constexpr SimTime kMaxTime = std::numeric_limits<SimTime>::max();
  // Promote before reading any head, exactly as next_head() does: a
  // level-1 insert can land in an already-due bucket (promoted and
  // re-occupied since the last frontier move) holding an event earlier
  // than the current ring minimum.  One compare when nothing is due.
  promote_due();
  // Reap cancelled entries exactly as lazily as pop()'s head selection
  // would: an entry is reaped only when it surfaces as the next head.  A
  // cancelled heap front parked *behind* a live ring head stays resident
  // — the sampled heap-size counter track pins this laziness, so an
  // eager sweep here would shift trace goldens.
  while (wheel_count_ > 0) {
    const Entry& w = slab_[wheel_head_].e;
    if (!heap_.empty()) {
      const Entry& h = slab_[heap_.front()].e;
      if (h.at < w.at || (h.at == w.at && h.seq < w.seq)) {
        if (h.state != nullptr && h.state->cancelled) {
          discard_heap_head();
          continue;
        }
        return 0;  // live heap head: the pop() path serves it
      }
    }
    if (w.state != nullptr && w.state->cancelled) {
      discard_wheel_head();
      continue;
    }
    break;  // live ring head wins the duel
  }

  if (wheel_count_ == 0 && l1_count_ > 0) {
    // Level 0 is empty, so the head is the earliest level-1 bucket's
    // minimum or the heap front.  Drain the level-1 bucket *directly*
    // into the batch — the fused equivalent of next_head()'s
    // fast-forward + promote_due() + a ring sweep, minus the per-event
    // ring round-trip (link_l0, bucket-min bookkeeping, unlink).  Every
    // exit below leaves the frontier, stats, and structures in exactly
    // the state the promote-then-sweep path would have.
    for (;;) {
      const std::size_t b = l1_bucket_index(l1_min_start_);
      assert(l1_bucket_occupied(b));
      // Single peek+collect pass: the bucket's live (time, seq) minimum,
      // with live sort keys and cancelled handles gathered as a side
      // effect — nothing is unlinked until a branch below commits.
      // Within one instant FIFO order is seq order, so the first entry
      // seen at the minimum time carries the minimum seq.
      out.keys_.clear();
      out.cxl_.clear();
      SimTime min_at = kMaxTime;
      std::uint64_t min_seq = 0;
      for (std::uint32_t idx = l1_buckets_[b]; idx != kNil;
           idx = slab_[idx].next) {
        const Entry& e = slab_[idx].e;
        if (e.state != nullptr && e.state->cancelled) {
          out.cxl_.push_back(idx);
          continue;
        }
        if (out.keys_.empty() || e.at < min_at) {
          min_at = e.at;
          min_seq = e.seq;
        }
        out.keys_.push_back({e.at, e.seq, idx});
      }
      const std::size_t live = out.keys_.size();
      if (live == 0) {
        // Wholly-cancelled bucket.  Mirror next_head()'s fast-forward
        // guard before reaping: a heap front *before* the bucket's start
        // serves first and leaves the bucket resident (same laziness as
        // the duel below — the reap-at-promotion counter track pins it).
        if (!heap_.empty()) {
          const Entry& h = slab_[heap_.front()].e;
          if (h.at < l1_min_start_) {
            if (h.state != nullptr && h.state->cancelled) {
              discard_heap_head();
              continue;
            }
            return 0;  // live heap head: the pop() path serves it
          }
        }
        // Reap it and retry with the next bucket (the fast-forward would
        // have promoted it into the empty ring and reaped it there —
        // same frees, same counter).  The peek pass already gathered the
        // whole chain into cxl_, so no second walk.
        l1_occupancy_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
        for (const std::uint32_t i : out.cxl_) free_node(i);
        l1_count_ -= out.cxl_.size();
        stats_.l1_cancelled_reaped += out.cxl_.size();
        if (l1_count_ == 0) break;  // heap (or nothing) owns the head
        advance_l1_min(b);
        continue;
      }
      if (!heap_.empty()) {
        const Entry& h = slab_[heap_.front()].e;
        if (h.at < min_at || (h.at == min_at && h.seq < min_seq)) {
          if (h.state != nullptr && h.state->cancelled) {
            // Cancelled front surfacing as the head: reap and re-duel,
            // as pop()'s selection loop would.
            discard_heap_head();
            continue;
          }
          // The heap serves the next event via pop().  Mirror
          // next_head(): its fast-forward promotes this bucket first iff
          // the heap front is not strictly before the bucket's start.
          if (h.at >= l1_min_start_) {
            base_ = std::max(base_, l1_min_start_);
            promote_due();
          }
          return 0;
        }
      }
      if (min_at > limit) {
        // Deadline before the head.  next_head() — reached through the
        // caller's next_event_time() — would have fast-forwarded and
        // promoted; match that end state, then report nothing to drain.
        base_ = std::max(base_, l1_min_start_);
        promote_due();
        return 0;
      }
      const SimTime head_bucket_last =
          l1_bucket_start(min_at) + static_cast<SimTime>(kL1Tick - 1);
      if (head_bucket_last > limit) {
        // Mid-bucket deadline (rare): promote and take the ring sweep
        // below so the clipped tail stays ring-resident.
        base_ = std::max(base_, l1_min_start_);
        promote_due();
        break;
      }
      // Direct drain: unlink the bucket and keep the live entries where
      // they are — the batch borrows their slab nodes.  The peek pass
      // already split the chain into keys_ (live) and cxl_ (cancelled).
      l1_occupancy_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
      for (const std::uint32_t i : out.cxl_) free_node(i);
      l1_count_ -= live + out.cxl_.size();
      stats_.l1_cancelled_reaped += out.cxl_.size();
      if (l1_count_ > 0) advance_l1_min(b);
      // These events skip the ring but are promoted all the same — count
      // them so the sampled counter tracks match the promote-then-sweep
      // path at every post-fire sampling instant.
      stats_.l1_promoted += live;
      // A 4 µs bucket holds many instants: sort by (time, seq) for the
      // exact pop() order.  The ring sweep gets this order for free from
      // its per-instant buckets; here one sort of packed 24-byte keys —
      // no slab chases from the comparator — is cheaper than bouncing
      // every event through the ring.
      std::sort(out.keys_.begin(), out.keys_.end(),
                [](const DrainBatch::SortKey& x, const DrainBatch::SortKey& y) {
                  if (x.at != y.at) return x.at < y.at;
                  return x.seq < y.seq;
                });
      for (const DrainBatch::SortKey& k : out.keys_) out.idx_.push_back(k.idx);
      base_ = std::max(base_, min_at);
      promote_due();
      assert(!out.exhausted());
      ++stats_.bucket_drains;
      stats_.drained_events += out.size();
      return out.size();
    }
  }

  if (wheel_count_ == 0) {
    // Heap-only (or truly empty): reap cancelled fronts — they are the
    // head now, so pop()'s selection loop would — then hand over.
    while (!heap_.empty()) {
      const Entry& h = slab_[heap_.front()].e;
      if (h.state == nullptr || !h.state->cancelled) break;
      discard_heap_head();
    }
    return 0;  // the pop() path serves the heap head
  }
  {
    // Ring head duel against the heap front, as next_head() orders them.
    const Entry& w = slab_[wheel_head_].e;
    if (!heap_.empty()) {
      const Entry& h = slab_[heap_.front()].e;
      if (h.at < w.at || (h.at == w.at && h.seq < w.seq)) return 0;
    }
    if (w.at > limit) return 0;
  }
  const SimTime t0 = wheel_min_;
  // Advance the frontier exactly as pop() would for the head event.  Due
  // level-1 buckets promote now, so the whole span below is resident in
  // the ring before collection starts — and by the promotion-order
  // argument (DESIGN.md §9/§13), everything still in level 1 afterwards
  // lies beyond base_ + kL0Window, past the end of this span.  (An
  // already-due bucket can exist here — a level-1 insert may land in a
  // bucket the frontier has reached; promoting before the sweep folds
  // such events into the batch instead of stranding them.)
  base_ = std::max(base_, t0);
  promote_due();
  // Inclusive end of the drain span: the remainder of the head's level-1
  // bucket, clipped to `limit` so a run_until() deadline never overshoots
  // mid-bucket.  Inclusive bounds sidestep int64 overflow at the far edge.
  const SimTime bucket_start = l1_bucket_start(t0);
  const SimTime bucket_last =
      bucket_start > kMaxTime - static_cast<SimTime>(kL1Tick - 1)
          ? kMaxTime
          : bucket_start + static_cast<SimTime>(kL1Tick - 1);
  const SimTime last = std::min(bucket_last, limit);
  // Single-pass sweep, in time order, straight into the batch arrays.
  // The occupancy bitmap is walked word-wise starting at the head's
  // bucket: every ring resident lies in [t0, t0 + kWheelBuckets), so one
  // circular lap visits each occupied bucket in time order.  Each 1 ns
  // bucket holds one instant and its FIFO is insertion order, so the
  // concatenation is exactly the (time, seq) order pop() would produce.
  // Cancelled entries are reaped here instead of copied — the same lazy
  // reap pop() does.
  const std::size_t b0 = bucket_index(t0);
  std::size_t word = b0 >> 6;
  std::uint64_t bits = occupancy_[word] & (~std::uint64_t{0} << (b0 & 63));
  while (wheel_count_ > 0) {
    while (bits == 0) {
      word = (word + 1) & (kWords - 1);
      bits = occupancy_[word];
    }
    const std::size_t b =
        (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
    const SimTime bt = time_of_bucket(b);
    if (bt > last) {
      // First occupied bucket past the span: by the same time-order
      // argument it holds the new ring minimum — no advance_wheel_min()
      // rescan needed.
      wheel_min_ = bt;
      wheel_head_ = buckets_[b];
      break;
    }
    bits &= bits - 1;
    occupancy_[word] &= ~(std::uint64_t{1} << (b & 63));
    std::uint32_t idx = buckets_[b];
    while (idx != kNil) {
      Node& n = slab_[idx];
      const std::uint32_t next = n.next;
      --wheel_count_;
      if (n.e.state != nullptr && n.e.state->cancelled) {
        free_node(idx);
      } else {
        // Borrow, don't move: the node stays slab-resident (unlinked from
        // every bucket) until the batch cursor fires or discards it.
        out.idx_.push_back(idx);
      }
      idx = next;
    }
  }
  assert(!out.exhausted() && "live wheel head must land in the batch");
  ++stats_.bucket_drains;
  stats_.drained_events += out.size();
  return out.size();
}

bool EventQueue::earlier_than_slow(SimTime at, std::uint64_t seq) const {
  for (;;) {
    // Re-screen on every iteration: the reap below can surface a new
    // head that no longer orders earlier (the ordering rationale lives
    // on the inline fast path in the header).
    const bool wheel_cand = wheel_count_ > 0 && wheel_min_ < at;
    const Entry* hh = heap_.empty() ? nullptr : &slab_[heap_.front()].e;
    const bool heap_cand =
        hh != nullptr &&
        (hh->at < at || (hh->at == at && hh->seq < seq));
    if (!wheel_cand && !heap_cand) return false;
    // Settle on the earlier candidate, exactly as next_head() orders them
    // — but without next_head() itself, whose level-1 fast-forward could
    // move the frontier past unfired batch entries.
    const Entry* cand;
    bool cand_wheel;
    if (wheel_cand && heap_cand) {
      const Entry& w = slab_[wheel_head_].e;
      cand_wheel = (w.at != hh->at) ? (w.at < hh->at) : (w.seq < hh->seq);
      cand = cand_wheel ? &w : hh;
    } else if (wheel_cand) {
      cand = &slab_[wheel_head_].e;
      cand_wheel = true;
    } else {
      cand = hh;
      cand_wheel = false;
    }
    if (cand->state == nullptr || !cand->state->cancelled) return true;
    // The candidate was cancelled: reap it (pop() would have) and
    // re-decide against whatever surfaces next.
    if (cand_wheel) {
      discard_wheel_head();
    } else {
      discard_heap_head();
    }
  }
}

}  // namespace hpcvorx::sim
