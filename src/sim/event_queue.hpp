// A stable, cancellable pending-event queue for the simulator.
//
// Events fire in (time, insertion-sequence) order, which makes every
// simulation deterministic: two events scheduled for the same instant fire
// in the order they were scheduled.
//
// This queue is the innermost loop of every benchmark, so the storage is
// built around three structures (all sharing one node slab):
//
//   * a near-future bucket ring (a degenerate timing wheel with a 1 ns
//     tick): events within kL0Window ns of the last-popped time go into
//     the exact-tick bucket `at % kWheelBuckets` as an intrusive FIFO.
//     Insert and pop are O(1); FIFO order within a bucket *is*
//     insertion-sequence order because a 1 ns tick means one bucket holds
//     exactly one instant.  The overwhelming majority of events (frame
//     hops, coroutine wakeups) land here.
//   * a coarse level-1 wheel: 4096 buckets of 4096 ns (~4 µs) each,
//     covering the next ~16.8 ms beyond the ring.  CPU slice-end events at
//     Table 1/2 costs (~100–300 µs) — which overshoot the 16 µs ring — land
//     here in O(1) instead of taking the heap.  When the pop frontier
//     advances far enough that a level-1 bucket fits entirely inside the
//     level-0 window, the bucket's events are redistributed ("promoted")
//     into their exact-tick ring buckets; each event is promoted at most
//     once, so the two-level path stays amortized O(1).
//   * a binary heap for the true spill: events beyond the level-1 span, or
//     behind the pop frontier.  The heap sifts 4-byte slab handles — the
//     ~104-byte entries themselves stay put in the slab — so heavy spill
//     traffic moves words, not cache lines.
//
// pop() compares the ring head against the heap head (level-1 events are
// promoted before they can become the head), so global firing order is
// identical to a single (time, seq) heap.
//
// Entries carry their callback in an InlineFn (64 inline bytes — see
// inline_fn.hpp), so scheduling allocates nothing on the steady-state
// path: no std::function heap spill, and for post() no control block
// either.  push() still allocates the shared cancellation state its
// EventHandle hands out.
//
// The per-bucket head arrays of both wheel levels are allocated
// uninitialized and consulted only when the bucket's occupancy bit is set,
// which keeps queue construction cheap (a 2.5 KB bitmap clear) —
// benchmarks build thousands of Simulators.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/inline_fn.hpp"
#include "sim/time.hpp"

namespace hpcvorx::sim {

/// Handle to a scheduled event; allows cancellation.  Handles are cheap to
/// copy and may outlive the event (cancelling a fired event is a no-op).
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet.  Returns true if this call
  /// cancelled it (false if it already fired or was already cancelled).
  bool cancel();

  /// True if the event is still scheduled to fire.
  [[nodiscard]] bool pending() const;

 private:
  friend class EventQueue;
  // Defined here (not in the .cpp) so the batched dispatcher's per-fire
  // cancellation checks inline into the hot loop.
  struct State {
    bool cancelled = false;
    bool fired = false;
  };
  explicit EventHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

/// (time, sequence)-ordered callback queue: two-level timing wheel over a
/// handle-sifting binary-heap spill.
class EventQueue {
 public:
  /// Width of the level-0 ring, in ticks (1 tick = 1 ns).  Power of two;
  /// the ring maps one instant per bucket across `[frontier, frontier +
  /// kWheelBuckets)`.  16384 ns covers every steady-state delay in the
  /// message path (frame hops are 0.8–54 µs end to end but each *event* is
  /// a few µs out; coroutine wakeups are nearer still).
  static constexpr std::uint64_t kWheelBuckets = 16384;
  /// Level-1 bucket width: 4096 ns (~the paper's 4 µs granularity) so the
  /// bucket arrays stay power-of-two and index math is a shift.
  static constexpr std::uint64_t kL1TickLog2 = 12;
  static constexpr std::uint64_t kL1Tick = std::uint64_t{1} << kL1TickLog2;
  static constexpr std::uint64_t kL1Buckets = 4096;
  /// Level-1 horizon: events within [frontier, l1_bucket_start(frontier)
  /// + kL1Span) avoid the heap entirely — i.e. the full span minus the
  /// frontier's offset into its own level-1 bucket, so an accepted
  /// event's bucket index never aliases the frontier's bucket (the last
  /// partial bucket spills to the heap; see insert()).  4096 buckets x
  /// 4096 ns ≈ 16.8 ms — two orders of magnitude past the largest CPU
  /// slice cost in Tables 1/2.
  static constexpr std::uint64_t kL1Span = kL1Buckets * kL1Tick;
  /// Direct level-0 insert window, narrowed by one level-1 bucket.  The
  /// narrowing maintains the promotion invariant: any tick reachable by a
  /// direct level-0 insert lies in a level-1 bucket that promote_due() has
  /// already drained, so a bucket is never promoted *behind* a same-tick
  /// event with a later sequence number (see event_queue.cpp).
  static constexpr std::uint64_t kL0Window = kWheelBuckets - kL1Tick;

  /// Structure-traffic counters (cumulative since construction).  These
  /// feed the engine.wheel_l1_* bench rows and the spill-accounting audit:
  /// `heap_inserts` counts only true spill (beyond the level-1 span or
  /// behind the frontier) — promoted level-1 events are counted in
  /// `l1_promoted`, never as spill.
  struct Stats {
    std::uint64_t l0_inserts = 0;    // direct ring inserts
    std::uint64_t l1_inserts = 0;    // level-1 wheel inserts
    std::uint64_t heap_inserts = 0;  // true spill only
    std::uint64_t l1_promoted = 0;   // events redistributed level 1 -> 0
    std::uint64_t l1_cancelled_reaped = 0;  // cancelled events freed at
                                            // promotion, never relinked
    std::uint64_t bucket_drains = 0;   // drain_bucket() calls that filled a
                                       // batch (feeds the amortization row)
    std::uint64_t drained_events = 0;  // events handed out via drain_bucket
  };

  EventQueue();
  EventQueue(EventQueue&&) = default;
  EventQueue& operator=(EventQueue&&) = default;

  /// Schedules `fn` at absolute time `at`.  Taking the callable by rvalue
  /// reference (here and in post) means a lambda at the call site
  /// materializes one InlineFn and relocates straight into queue storage —
  /// no per-layer parameter moves through the Simulator forwarding chain.
  EventHandle push(SimTime at, InlineFn&& fn);

  /// Schedules `fn` at absolute time `at` with no cancellation handle.
  /// This is the hot path: most events (frame deliveries, coroutine
  /// wakeups) are never cancelled, and skipping the handle skips the
  /// shared-state allocation entirely — with InlineFn storage the whole
  /// call is allocation-free once the queue's slabs are warm.  Inline —
  /// together with the inline insert/link chain below, a call site that
  /// builds its lambda in place compiles down to direct stores into the
  /// slab node, with no indirect relocate.
  void post(SimTime at, InlineFn&& fn) {
    insert(at, next_seq_++, std::move(fn), nullptr);
  }

  /// True if no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const;

  /// Number of scheduled events (an upper bound: cancelled events that
  /// have not yet been reaped from the structures' interiors are
  /// included).
  [[nodiscard]] std::size_t size() const {
    return wheel_count_ + l1_count_ + heap_.size();
  }

  /// Time of the earliest live event.  Precondition: !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Returns the earliest live event's callback and its time, popping it
  /// from the queue.  Precondition: !empty().
  std::pair<SimTime, InlineFn> pop();

  /// Entry is an implementation detail, public only so the comparator in
  /// event_queue.cpp — and DrainBatch's inline cursor accessors below —
  /// can see it.  Entries live in the shared node slab for all three
  /// structures; the heap sifts slab indices, never Entries.  Field order
  /// is deliberate: at/seq/state lead so that — together with Node's
  /// link words — every field a drain chain-walk reads sits in the node's
  /// first cache line; the wide callable payload trails.
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    std::shared_ptr<EventHandle::State> state;  // null for post()ed events
    InlineFn fn;
  };

  /// One drained frontier-bucket span: a firing cursor over slab handles
  /// in exact (time, seq) pop order.  The batch *borrows* the queue's slab
  /// storage — drained entries stay in their slab nodes, unlinked from
  /// every bucket structure, and are freed one by one as the cursor fires
  /// past them.  Moving only 4-byte handles (instead of relocating each
  /// ~112-byte entry into batch arrays and back through a fire cursor)
  /// halves the per-event memory traffic of a drain.  Owned by the
  /// dispatcher (sim::Simulator) and refilled by drain_bucket(); the
  /// handle vector keeps its capacity across refills, so steady-state
  /// batched dispatch allocates nothing (lint R5).  Entries keep their
  /// cancellation state: a handle can cancel an event after it was drained
  /// but before it fires, so — exactly like pop() — the cancelled check
  /// happens at fire time, via begin_fire().
  class DrainBatch {
   public:
    DrainBatch() = default;
    DrainBatch(const DrainBatch&) = delete;
    DrainBatch& operator=(const DrainBatch&) = delete;

    [[nodiscard]] bool exhausted() const { return pos_ == idx_.size(); }
    [[nodiscard]] std::size_t size() const { return idx_.size(); }
    [[nodiscard]] std::size_t remaining() const { return idx_.size() - pos_; }
    /// Time / insertion sequence of the entry under the cursor.
    /// Precondition for these five: !exhausted().
    [[nodiscard]] SimTime head_time() const { return head().at; }
    [[nodiscard]] std::uint64_t head_seq() const { return head().seq; }
    /// True when the head entry was cancelled after the drain.
    [[nodiscard]] bool head_cancelled() const {
      const EventHandle::State* s = head().state.get();
      return s != nullptr && s->cancelled;
    }
    /// Prefetches the next entry's slab node so it is warm by the time the
    /// current callback returns (a node spans two cache lines).
    void prefetch_next() const {
      if (pos_ + 1 < idx_.size()) {
        const char* p =
            reinterpret_cast<const char*>(&q_->slab_[idx_[pos_ + 1]]);
        __builtin_prefetch(p);
        __builtin_prefetch(p + 64);
      }
    }
    /// Claims the head for firing.  Returns false — cursor advanced, entry
    /// reaped — when it was cancelled after the drain; otherwise marks it
    /// fired (so a late cancel() returns false, as with pop()).
    [[nodiscard]] bool begin_fire() {
      EventHandle::State* s = head().state.get();
      if (s != nullptr) {
        if (s->cancelled) {
          discard_head();
          return false;
        }
        s->fired = true;
      }
      return true;
    }
    /// Fires the claimed head and advances the cursor.  The node returns
    /// to the free list *before* the call — callable still armed — and
    /// InlineFn::consume_invoke moves the capture out of slab storage as
    /// the first step of its one fused indirect call.  By the time user
    /// code runs (and may grow the slab or reuse the node), the capture
    /// lives in the op's own frame: no stack-relocate round trip per
    /// event.  Precondition: begin_fire() returned true for this entry.
    void fire_head() {
      const std::uint32_t idx = idx_[pos_++];
      Entry& e = q_->slab_[idx].e;
      e.state.reset();
      q_->free_node_armed(idx);
      e.fn.consume_invoke();
    }
    /// Reaps a cancelled head without firing it (used when publishing the
    /// next-event time to the shard runtime, so a cancelled batch head
    /// never pins the LBTS on a phantom instant).
    void discard_head() { q_->free_node(idx_[pos_++]); }

   private:
    friend class EventQueue;
    [[nodiscard]] Entry& head() const { return q_->slab_[idx_[pos_]].e; }
    void reset_fill(const EventQueue* q) {
      q_ = q;
      idx_.clear();
      pos_ = 0;
    }
    const EventQueue* q_ = nullptr;  // rebound on every drain_bucket()
    std::vector<std::uint32_t> idx_;  // slab handles, (time, seq) order
    // Drain-time scratch for the direct level-1 path: (at, seq, idx)
    // triples sorted contiguously instead of chasing slab nodes from the
    // sort comparator.
    struct SortKey {
      SimTime at;
      std::uint64_t seq;
      std::uint32_t idx;
    };
    std::vector<SortKey> keys_;
    std::vector<std::uint32_t> cxl_;  // drain-time scratch: cancelled nodes
    std::size_t pos_ = 0;
  };

  /// Drains every ring event in the live head's level-1 bucket span —
  /// clipped to `limit`, inclusive, so a run_until() deadline never
  /// overshoots mid-bucket — into `out`, in exact (time, seq) pop order.
  /// Returns the number of entries drained.  Returns 0 (and drains
  /// nothing) when the queue is empty, the head is past `limit`, or the
  /// head lives in the spill heap; the caller falls back to pop() for
  /// those cases.  In-span spill-heap entries are never drained: the
  /// dispatcher interleaves them through pop() via earlier_than(), which
  /// keeps heap traffic — and the sampled heap-size counter track —
  /// identical to event-at-a-time dispatch.  Precondition:
  /// out.exhausted().
  std::size_t drain_bucket(DrainBatch& out, SimTime limit);

  /// True when a live queue-resident event orders strictly before
  /// (at, seq).  Used by the batched dispatcher before firing each drained
  /// entry: an event fired earlier in the bucket may have scheduled
  /// something ahead of the rest of the batch (a 0-delay wakeup lands in
  /// the current tick's ring bucket), or an in-span spill entry may hold a
  /// smaller sequence number than a same-tick batch entry.  Cancelled
  /// candidates are reaped here (the same lazy reap pop() would do), but
  /// the frontier never moves — in particular next_head()'s level-1
  /// fast-forward is never triggered, so insert routing during batch
  /// firing matches the pop() path byte for byte.  The candidate test is
  /// inline (it runs once per fired event and almost always rejects);
  /// the candidate duel and cancelled-reap loop live out of line.
  [[nodiscard]] bool earlier_than(SimTime at, std::uint64_t seq) const {
    // The wheel check can be strict: a same-tick ring entry always
    // carries a later sequence number than a drained batch entry (the
    // batch took every in-span resident; later inserts get later seqs).
    // Level 1 needs no check at all: after drain_bucket()'s
    // promote_due(), every level-1 resident — and any later level-1
    // insert — lies beyond base_ + kL0Window, past the whole drained
    // span.  Only the spill heap can hold a same-tick, smaller-seq entry
    // (one that was far when inserted), so its check compares sequences.
    const bool wheel_cand = wheel_count_ > 0 && wheel_min_ < at;
    if (wheel_cand) return earlier_than_slow(at, seq);
    if (heap_.empty()) return false;
    const Entry& h = slab_[heap_.front()].e;
    if (h.at > at || (h.at == at && h.seq > seq)) return false;
    return earlier_than_slow(at, seq);
  }

  /// Advances the pop frontier to `t` and promotes due level-1 buckets —
  /// exactly what pop() does after handing out an event.  The batched
  /// dispatcher calls this before firing each drained entry so insert
  /// routing and promotion timing stay identical to event-at-a-time
  /// dispatch (the frontier is what decides ring vs level-1 vs spill).
  /// Inline: one max plus one promote-due compare in the common case.
  void advance_frontier(SimTime t) {
    base_ = std::max(base_, t);
    if (l1_count_ > 0 &&
        l1_min_start_ + static_cast<SimTime>(kL1Tick) <=
            base_ + static_cast<SimTime>(kWheelBuckets)) {
      promote_due();
    }
  }

  /// Structure-traffic counters; see Stats.
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Current spill-heap occupancy (entries parked beyond the wheels'
  /// span; includes not-yet-reaped cancellations).
  [[nodiscard]] std::size_t heap_size() const { return heap_.size(); }

 private:
  static constexpr std::uint64_t kMask = kWheelBuckets - 1;
  static constexpr std::uint64_t kWords = kWheelBuckets / 64;
  static constexpr std::uint64_t kL1Mask = kL1Buckets - 1;
  static constexpr std::uint64_t kL1Words = kL1Buckets / 64;
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  /// Slab node: intrusive FIFO link (doubles as the free list's link) +
  /// the bucket's tail index + the entry.  The tail index is maintained
  /// only on the node that is currently a bucket head (either wheel
  /// level); keeping it here instead of in the bucket arrays halves those
  /// arrays to 4 bytes/bucket — the whole wheel block must stay under
  /// glibc's 128 KiB mmap threshold or every fresh queue pays mmap/munmap
  /// plus page faults (measured 2x on the post/pop microbench).  The
  /// link words lead so they share the first cache line with Entry's
  /// at/seq/state (see Entry).  Heap-resident nodes use neither link
  /// field.
  struct Node {
    std::uint32_t next = kNil;
    std::uint32_t bucket_tail = kNil;
    Entry e;  // link words first: a drain walk reads next/at/seq/state —
              // all inside the node's first cache line (see Entry)
  };

  // The insert chain (insert/alloc_node/link_l0/link_l1) is defined
  // in-class: post() and the Simulator's scheduling wrappers inline
  // through it, so a call site constructing its lambda in place never
  // pays an opaque call — and the InlineFn relocate devirtualizes to a
  // plain move of the capture bytes.  Only the true-spill heap push
  // stays out of line (cold by design).
  void insert(SimTime at, std::uint64_t seq, InlineFn&& fn,
              std::shared_ptr<EventHandle::State>&& state) {
    if (at >= base_) {
      const std::uint64_t delta = static_cast<std::uint64_t>(at - base_);
      if (delta < kL0Window) {
        // Level-0 path: O(1) append to the exact-tick bucket's FIFO.
        link_l0(alloc_node(at, seq, std::move(fn), std::move(state)));
        ++stats_.l0_inserts;
        return;
      }
      // Level-1 accept window, frontier-bucket-exclusive.  The circular
      // mapping spans kL1Buckets buckets starting at the frontier's own
      // bucket, so when base_ sits mid-bucket the last partial bucket of
      // [base_, base_ + kL1Span) aliases the frontier's bucket index;
      // time_of_l1_bucket() would report the aliased bucket's start as
      // ~base_ (kL1Span too early), promote_due() would drain it at once,
      // and link_l0() would see a time outside the ring window.  Events in
      // that partial bucket spill to the heap instead.
      if (delta <
          kL1Span - (static_cast<std::uint64_t>(base_) & (kL1Tick - 1))) {
        // Level-1 path: O(1) append to the coarse bucket's FIFO; the
        // bucket is redistributed into level 0 when the frontier nears it.
        link_l1(alloc_node(at, seq, std::move(fn), std::move(state)));
        ++stats_.l1_inserts;
        return;
      }
    }
    // True spill: far future (beyond the level-1 span) or behind the
    // frontier.  The node stays in the slab; only its 4-byte handle sifts.
    spill(alloc_node(at, seq, std::move(fn), std::move(state)));
  }
  /// Takes a node from the free list (or grows the slab) and fills it.
  std::uint32_t alloc_node(SimTime at, std::uint64_t seq, InlineFn&& fn,
                           std::shared_ptr<EventHandle::State>&& state) const {
    // Reserving the slab on first use sidesteps vector-doubling relocation
    // of live entries through the warm-up of a fresh queue.
    if (slab_.capacity() == 0) slab_.reserve(1024);
    if (free_head_ != kNil) {
      const std::uint32_t idx = free_head_;
      Node& n = slab_[idx];
      free_head_ = n.next;
      n.e.at = at;
      n.e.seq = seq;
      n.e.state = std::move(state);
      n.e.fn = std::move(fn);
      n.next = kNil;
      return idx;
    }
    const std::uint32_t idx = static_cast<std::uint32_t>(slab_.size());
    slab_.push_back(
        Node{kNil, kNil, Entry{at, seq, std::move(state), std::move(fn)}});
    return idx;
  }
  /// Destroys the node's payload and returns it to the free list.
  void free_node(std::uint32_t idx) const {
    Node& n = slab_[idx];
    n.e.fn.reset();
    n.e.state.reset();
    n.next = free_head_;
    free_head_ = idx;
  }
  /// Free-list push that leaves the callable armed.  Only the batch fire
  /// path uses this: it pushes the node first and lets consume_invoke
  /// disarm and move the capture out before any user code could reuse
  /// the node (alloc_node's move-assign onto a disarmed fn is a no-op
  /// reset).  The caller must have cleared the node's state already.
  void free_node_armed(std::uint32_t idx) const {
    Node& n = slab_[idx];
    n.next = free_head_;
    free_head_ = idx;
  }
  /// Appends an already-filled node to its level-0 exact-tick bucket and
  /// maintains wheel_min_/wheel_head_.  Precondition: the node's time is
  /// inside [base_, base_ + kWheelBuckets) and node.next == kNil.
  void link_l0(std::uint32_t idx) const {
    const SimTime at = slab_[idx].e.at;
    const std::size_t b = bucket_index(at);
    if (!bucket_occupied(b)) {
      occupancy_[b >> 6] |= std::uint64_t{1} << (b & 63);
      buckets_[b] = idx;
      slab_[idx].bucket_tail = idx;
    } else {
      Node& head_node = slab_[buckets_[b]];
      slab_[head_node.bucket_tail].next = idx;
      head_node.bucket_tail = idx;
    }
    if (wheel_count_ == 0 || at < wheel_min_) {
      wheel_min_ = at;
      wheel_head_ = idx;
    }
    ++wheel_count_;
  }
  /// Appends an already-filled node to its level-1 bucket.
  void link_l1(std::uint32_t idx) const {
    const SimTime at = slab_[idx].e.at;
    const std::size_t b = l1_bucket_index(at);
    if (!l1_bucket_occupied(b)) {
      l1_occupancy_[b >> 6] |= std::uint64_t{1} << (b & 63);
      l1_buckets_[b] = idx;
      slab_[idx].bucket_tail = idx;
    } else {
      Node& head_node = slab_[l1_buckets_[b]];
      slab_[head_node.bucket_tail].next = idx;
      head_node.bucket_tail = idx;
    }
    const SimTime start = l1_bucket_start(at);
    if (l1_count_ == 0 || start < l1_min_start_) l1_min_start_ = start;
    ++l1_count_;
  }
  /// True-spill push: sifts the already-allocated node's handle into the
  /// binary heap.  Out of line — this is the cold insert tail.
  void spill(std::uint32_t idx);
  /// Promotes every level-1 bucket that fits entirely inside the level-0
  /// window (bucket_start + kL1Tick <= base_ + kWheelBuckets), earliest
  /// first.  Called after every frontier advance and before head reads.
  void promote_due() const;
  /// Drains the earliest occupied level-1 bucket into level 0 (cancelled
  /// events are reaped here instead of relinked).
  void promote_min_bucket() const;
  /// Entry that pop() would return next (nullptr when truly empty);
  /// `from_wheel` says which structure holds it.  Promotes due level-1
  /// buckets first, and fast-forwards the frontier when only far level-1
  /// events remain, so an unpromoted level-1 event is never the head.
  Entry* next_head(bool& from_wheel) const;
  /// Unlinks and destroys the ring head (the entry at wheel_min_) /
  /// the heap head.  The caller moves anything it wants out first.
  void discard_wheel_head() const;
  void discard_heap_head() const;
  /// Recomputes wheel_min_ by scanning the occupancy bitmap circularly
  /// from `emptied_bucket + 1`.  Precondition: wheel_count_ > 0.
  void advance_wheel_min(std::size_t emptied_bucket) const;
  /// Same for the level-1 bitmap and l1_min_start_.  Precondition:
  /// l1_count_ > 0.
  void advance_l1_min(std::size_t emptied_bucket) const;
  void drop_cancelled() const;
  /// earlier_than()'s out-of-line tail: at least one candidate passed the
  /// inline screen — run the candidate duel and the cancelled-reap loop.
  [[nodiscard]] bool earlier_than_slow(SimTime at, std::uint64_t seq) const;

  [[nodiscard]] static std::size_t bucket_index(SimTime at) {
    return static_cast<std::size_t>(static_cast<std::uint64_t>(at) & kMask);
  }
  [[nodiscard]] static std::size_t l1_bucket_index(SimTime at) {
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(at) >> kL1TickLog2) & kL1Mask);
  }
  [[nodiscard]] static SimTime l1_bucket_start(SimTime at) {
    return static_cast<SimTime>(static_cast<std::uint64_t>(at) &
                                ~(kL1Tick - 1));
  }
  [[nodiscard]] SimTime time_of_bucket(std::size_t b) const {
    const std::uint64_t base_b = static_cast<std::uint64_t>(base_) & kMask;
    return base_ + static_cast<SimTime>((b - base_b) & kMask);
  }
  [[nodiscard]] SimTime time_of_l1_bucket(std::size_t b) const {
    const std::uint64_t base_b =
        (static_cast<std::uint64_t>(base_) >> kL1TickLog2) & kL1Mask;
    return l1_bucket_start(base_) +
           static_cast<SimTime>(((b - base_b) & kL1Mask) << kL1TickLog2);
  }
  [[nodiscard]] bool bucket_occupied(std::size_t b) const {
    return (occupancy_[b >> 6] >> (b & 63)) & 1u;
  }
  [[nodiscard]] bool l1_bucket_occupied(std::size_t b) const {
    return (l1_occupancy_[b >> 6] >> (b & 63)) & 1u;
  }

  // pop()/drop_cancelled() reaping and lazy promotion mutate the
  // containers behind the logically-const empty()/next_time(), hence the
  // mutables (the original single-heap queue had the same shape).
  mutable std::vector<std::uint32_t> heap_;  // spill: slab handles only
  mutable std::vector<Node> slab_;           // entry storage, all structures
  mutable std::uint32_t free_head_ = kNil;   // slab free list
  // One allocation backs both levels' bucket arrays (uninitialized —
  // trusted only when the bucket's occupancy bit is set) and occupancy
  // bitmaps (zeroed at construction).  Separate allocations measured ~100x
  // worse to construct: back-to-back 64 KB malloc/free pairs make glibc
  // trim the heap top every cycle.  Total 82.5 KB — still under the mmap
  // threshold.
  mutable std::unique_ptr<std::byte[]> wheel_mem_;
  std::uint32_t* buckets_ = nullptr;        // L0 head index per bucket
  std::uint64_t* occupancy_ = nullptr;      // into wheel_mem_
  std::uint32_t* l1_buckets_ = nullptr;     // L1 head index per bucket
  std::uint64_t* l1_occupancy_ = nullptr;   // into wheel_mem_
  mutable std::size_t wheel_count_ = 0;
  mutable SimTime wheel_min_ = 0;  // exact min time in ring; valid iff count>0
  mutable std::uint32_t wheel_head_ = kNil;  // slab index of ring head
  mutable std::size_t l1_count_ = 0;
  mutable SimTime l1_min_start_ = 0;  // start of earliest occupied L1 bucket;
                                      // valid iff l1_count_ > 0
  // The window start (== last popped time).  next_head()'s fast-forward
  // advances it from const context, hence mutable.
  mutable SimTime base_ = 0;
  std::uint64_t next_seq_ = 0;
  mutable Stats stats_;
};

}  // namespace hpcvorx::sim
