// A stable, cancellable pending-event queue for the simulator.
//
// Events fire in (time, insertion-sequence) order, which makes every
// simulation deterministic: two events scheduled for the same instant fire
// in the order they were scheduled.
//
// This queue is the innermost loop of every benchmark, so the storage is
// built around three structures (all sharing one node slab):
//
//   * a near-future bucket ring (a degenerate timing wheel with a 1 ns
//     tick): events within kL0Window ns of the last-popped time go into
//     the exact-tick bucket `at % kWheelBuckets` as an intrusive FIFO.
//     Insert and pop are O(1); FIFO order within a bucket *is*
//     insertion-sequence order because a 1 ns tick means one bucket holds
//     exactly one instant.  The overwhelming majority of events (frame
//     hops, coroutine wakeups) land here.
//   * a coarse level-1 wheel: 4096 buckets of 4096 ns (~4 µs) each,
//     covering the next ~16.8 ms beyond the ring.  CPU slice-end events at
//     Table 1/2 costs (~100–300 µs) — which overshoot the 16 µs ring — land
//     here in O(1) instead of taking the heap.  When the pop frontier
//     advances far enough that a level-1 bucket fits entirely inside the
//     level-0 window, the bucket's events are redistributed ("promoted")
//     into their exact-tick ring buckets; each event is promoted at most
//     once, so the two-level path stays amortized O(1).
//   * a binary heap for the true spill: events beyond the level-1 span, or
//     behind the pop frontier.  The heap sifts 4-byte slab handles — the
//     ~104-byte entries themselves stay put in the slab — so heavy spill
//     traffic moves words, not cache lines.
//
// pop() compares the ring head against the heap head (level-1 events are
// promoted before they can become the head), so global firing order is
// identical to a single (time, seq) heap.
//
// Entries carry their callback in an InlineFn (64 inline bytes — see
// inline_fn.hpp), so scheduling allocates nothing on the steady-state
// path: no std::function heap spill, and for post() no control block
// either.  push() still allocates the shared cancellation state its
// EventHandle hands out.
//
// The per-bucket head arrays of both wheel levels are allocated
// uninitialized and consulted only when the bucket's occupancy bit is set,
// which keeps queue construction cheap (a 2.5 KB bitmap clear) —
// benchmarks build thousands of Simulators.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/inline_fn.hpp"
#include "sim/time.hpp"

namespace hpcvorx::sim {

/// Handle to a scheduled event; allows cancellation.  Handles are cheap to
/// copy and may outlive the event (cancelling a fired event is a no-op).
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet.  Returns true if this call
  /// cancelled it (false if it already fired or was already cancelled).
  bool cancel();

  /// True if the event is still scheduled to fire.
  [[nodiscard]] bool pending() const;

 private:
  friend class EventQueue;
  struct State;
  explicit EventHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

/// (time, sequence)-ordered callback queue: two-level timing wheel over a
/// handle-sifting binary-heap spill.
class EventQueue {
 public:
  /// Width of the level-0 ring, in ticks (1 tick = 1 ns).  Power of two;
  /// the ring maps one instant per bucket across `[frontier, frontier +
  /// kWheelBuckets)`.  16384 ns covers every steady-state delay in the
  /// message path (frame hops are 0.8–54 µs end to end but each *event* is
  /// a few µs out; coroutine wakeups are nearer still).
  static constexpr std::uint64_t kWheelBuckets = 16384;
  /// Level-1 bucket width: 4096 ns (~the paper's 4 µs granularity) so the
  /// bucket arrays stay power-of-two and index math is a shift.
  static constexpr std::uint64_t kL1TickLog2 = 12;
  static constexpr std::uint64_t kL1Tick = std::uint64_t{1} << kL1TickLog2;
  static constexpr std::uint64_t kL1Buckets = 4096;
  /// Level-1 horizon: events within [frontier, l1_bucket_start(frontier)
  /// + kL1Span) avoid the heap entirely — i.e. the full span minus the
  /// frontier's offset into its own level-1 bucket, so an accepted
  /// event's bucket index never aliases the frontier's bucket (the last
  /// partial bucket spills to the heap; see insert()).  4096 buckets x
  /// 4096 ns ≈ 16.8 ms — two orders of magnitude past the largest CPU
  /// slice cost in Tables 1/2.
  static constexpr std::uint64_t kL1Span = kL1Buckets * kL1Tick;
  /// Direct level-0 insert window, narrowed by one level-1 bucket.  The
  /// narrowing maintains the promotion invariant: any tick reachable by a
  /// direct level-0 insert lies in a level-1 bucket that promote_due() has
  /// already drained, so a bucket is never promoted *behind* a same-tick
  /// event with a later sequence number (see event_queue.cpp).
  static constexpr std::uint64_t kL0Window = kWheelBuckets - kL1Tick;

  /// Structure-traffic counters (cumulative since construction).  These
  /// feed the engine.wheel_l1_* bench rows and the spill-accounting audit:
  /// `heap_inserts` counts only true spill (beyond the level-1 span or
  /// behind the frontier) — promoted level-1 events are counted in
  /// `l1_promoted`, never as spill.
  struct Stats {
    std::uint64_t l0_inserts = 0;    // direct ring inserts
    std::uint64_t l1_inserts = 0;    // level-1 wheel inserts
    std::uint64_t heap_inserts = 0;  // true spill only
    std::uint64_t l1_promoted = 0;   // events redistributed level 1 -> 0
    std::uint64_t l1_cancelled_reaped = 0;  // cancelled events freed at
                                            // promotion, never relinked
  };

  EventQueue();
  EventQueue(EventQueue&&) = default;
  EventQueue& operator=(EventQueue&&) = default;

  /// Schedules `fn` at absolute time `at`.  Taking the callable by rvalue
  /// reference (here and in post) means a lambda at the call site
  /// materializes one InlineFn and relocates straight into queue storage —
  /// no per-layer parameter moves through the Simulator forwarding chain.
  EventHandle push(SimTime at, InlineFn&& fn);

  /// Schedules `fn` at absolute time `at` with no cancellation handle.
  /// This is the hot path: most events (frame deliveries, coroutine
  /// wakeups) are never cancelled, and skipping the handle skips the
  /// shared-state allocation entirely — with InlineFn storage the whole
  /// call is allocation-free once the queue's slabs are warm.
  void post(SimTime at, InlineFn&& fn);

  /// True if no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const;

  /// Number of scheduled events (an upper bound: cancelled events that
  /// have not yet been reaped from the structures' interiors are
  /// included).
  [[nodiscard]] std::size_t size() const {
    return wheel_count_ + l1_count_ + heap_.size();
  }

  /// Time of the earliest live event.  Precondition: !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Returns the earliest live event's callback and its time, popping it
  /// from the queue.  Precondition: !empty().
  std::pair<SimTime, InlineFn> pop();

  /// Structure-traffic counters; see Stats.
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Current spill-heap occupancy (entries parked beyond the wheels'
  /// span; includes not-yet-reaped cancellations).
  [[nodiscard]] std::size_t heap_size() const { return heap_.size(); }

  /// Entry is an implementation detail, public only so the comparator in
  /// event_queue.cpp can see it.  Entries live in the shared node slab for
  /// all three structures; the heap sifts slab indices, never Entries.
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    InlineFn fn;
    std::shared_ptr<EventHandle::State> state;  // null for post()ed events
  };

 private:
  static constexpr std::uint64_t kMask = kWheelBuckets - 1;
  static constexpr std::uint64_t kWords = kWheelBuckets / 64;
  static constexpr std::uint64_t kL1Mask = kL1Buckets - 1;
  static constexpr std::uint64_t kL1Words = kL1Buckets / 64;
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  /// Slab node: entry + intrusive FIFO link (doubles as the free list's
  /// link) + the bucket's tail index, maintained only on the node that is
  /// currently a bucket head (either wheel level).  Keeping the tail here
  /// instead of in the bucket arrays halves those arrays to 4 bytes/bucket
  /// — the whole wheel block must stay under glibc's 128 KiB mmap
  /// threshold or every fresh queue pays mmap/munmap plus page faults
  /// (measured 2x on the post/pop microbench).  The field rides in Node's
  /// padding for free.  Heap-resident nodes use neither link field.
  struct Node {
    Entry e;
    std::uint32_t next = kNil;
    std::uint32_t bucket_tail = kNil;
  };

  void insert(SimTime at, std::uint64_t seq, InlineFn&& fn,
              std::shared_ptr<EventHandle::State>&& state);
  /// Takes a node from the free list (or grows the slab) and fills it.
  std::uint32_t alloc_node(SimTime at, std::uint64_t seq, InlineFn&& fn,
                           std::shared_ptr<EventHandle::State>&& state) const;
  /// Destroys the node's payload and returns it to the free list.
  void free_node(std::uint32_t idx) const;
  /// Appends an already-filled node to its level-0 exact-tick bucket and
  /// maintains wheel_min_/wheel_head_.  Precondition: the node's time is
  /// inside [base_, base_ + kWheelBuckets) and node.next == kNil.
  void link_l0(std::uint32_t idx) const;
  /// Appends an already-filled node to its level-1 bucket.
  void link_l1(std::uint32_t idx) const;
  /// Promotes every level-1 bucket that fits entirely inside the level-0
  /// window (bucket_start + kL1Tick <= base_ + kWheelBuckets), earliest
  /// first.  Called after every frontier advance and before head reads.
  void promote_due() const;
  /// Drains the earliest occupied level-1 bucket into level 0 (cancelled
  /// events are reaped here instead of relinked).
  void promote_min_bucket() const;
  /// Entry that pop() would return next (nullptr when truly empty);
  /// `from_wheel` says which structure holds it.  Promotes due level-1
  /// buckets first, and fast-forwards the frontier when only far level-1
  /// events remain, so an unpromoted level-1 event is never the head.
  Entry* next_head(bool& from_wheel) const;
  /// Unlinks and destroys the ring head (the entry at wheel_min_) /
  /// the heap head.  The caller moves anything it wants out first.
  void discard_wheel_head() const;
  void discard_heap_head() const;
  /// Recomputes wheel_min_ by scanning the occupancy bitmap circularly
  /// from `emptied_bucket + 1`.  Precondition: wheel_count_ > 0.
  void advance_wheel_min(std::size_t emptied_bucket) const;
  /// Same for the level-1 bitmap and l1_min_start_.  Precondition:
  /// l1_count_ > 0.
  void advance_l1_min(std::size_t emptied_bucket) const;
  void drop_cancelled() const;

  [[nodiscard]] static std::size_t bucket_index(SimTime at) {
    return static_cast<std::size_t>(static_cast<std::uint64_t>(at) & kMask);
  }
  [[nodiscard]] static std::size_t l1_bucket_index(SimTime at) {
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(at) >> kL1TickLog2) & kL1Mask);
  }
  [[nodiscard]] static SimTime l1_bucket_start(SimTime at) {
    return static_cast<SimTime>(static_cast<std::uint64_t>(at) &
                                ~(kL1Tick - 1));
  }
  [[nodiscard]] SimTime time_of_bucket(std::size_t b) const {
    const std::uint64_t base_b = static_cast<std::uint64_t>(base_) & kMask;
    return base_ + static_cast<SimTime>((b - base_b) & kMask);
  }
  [[nodiscard]] SimTime time_of_l1_bucket(std::size_t b) const {
    const std::uint64_t base_b =
        (static_cast<std::uint64_t>(base_) >> kL1TickLog2) & kL1Mask;
    return l1_bucket_start(base_) +
           static_cast<SimTime>(((b - base_b) & kL1Mask) << kL1TickLog2);
  }
  [[nodiscard]] bool bucket_occupied(std::size_t b) const {
    return (occupancy_[b >> 6] >> (b & 63)) & 1u;
  }
  [[nodiscard]] bool l1_bucket_occupied(std::size_t b) const {
    return (l1_occupancy_[b >> 6] >> (b & 63)) & 1u;
  }

  // pop()/drop_cancelled() reaping and lazy promotion mutate the
  // containers behind the logically-const empty()/next_time(), hence the
  // mutables (the original single-heap queue had the same shape).
  mutable std::vector<std::uint32_t> heap_;  // spill: slab handles only
  mutable std::vector<Node> slab_;           // entry storage, all structures
  mutable std::uint32_t free_head_ = kNil;   // slab free list
  // One allocation backs both levels' bucket arrays (uninitialized —
  // trusted only when the bucket's occupancy bit is set) and occupancy
  // bitmaps (zeroed at construction).  Separate allocations measured ~100x
  // worse to construct: back-to-back 64 KB malloc/free pairs make glibc
  // trim the heap top every cycle.  Total 82.5 KB — still under the mmap
  // threshold.
  mutable std::unique_ptr<std::byte[]> wheel_mem_;
  std::uint32_t* buckets_ = nullptr;        // L0 head index per bucket
  std::uint64_t* occupancy_ = nullptr;      // into wheel_mem_
  std::uint32_t* l1_buckets_ = nullptr;     // L1 head index per bucket
  std::uint64_t* l1_occupancy_ = nullptr;   // into wheel_mem_
  mutable std::size_t wheel_count_ = 0;
  mutable SimTime wheel_min_ = 0;  // exact min time in ring; valid iff count>0
  mutable std::uint32_t wheel_head_ = kNil;  // slab index of ring head
  mutable std::size_t l1_count_ = 0;
  mutable SimTime l1_min_start_ = 0;  // start of earliest occupied L1 bucket;
                                      // valid iff l1_count_ > 0
  // The window start (== last popped time).  next_head()'s fast-forward
  // advances it from const context, hence mutable.
  mutable SimTime base_ = 0;
  std::uint64_t next_seq_ = 0;
  mutable Stats stats_;
};

}  // namespace hpcvorx::sim
