// A stable, cancellable pending-event queue for the simulator.
//
// Events fire in (time, insertion-sequence) order, which makes every
// simulation deterministic: two events scheduled for the same instant fire
// in the order they were scheduled.
//
// This queue is the innermost loop of every benchmark, so the storage is
// built around two structures:
//
//   * a near-future bucket ring (a degenerate timing wheel with a 1 ns
//     tick): events within kWheelBuckets ns of the last-popped time go
//     into the exact-tick bucket `at % kWheelBuckets` as an intrusive
//     FIFO.  Insert and pop are O(1); FIFO order within a bucket *is*
//     insertion-sequence order because a 1 ns tick means one bucket holds
//     exactly one instant.  The overwhelming majority of events (frame
//     hops, CPU slices, coroutine wakeups) land here.
//   * a binary heap for the spill: events beyond the ring's window, or
//     behind the pop frontier, fall back to the classic (time, seq)
//     min-heap.  pop() compares the ring head against the heap head, so
//     global firing order is identical to a single heap.
//
// Entries carry their callback in an InlineFn (64 inline bytes — see
// inline_fn.hpp), so scheduling allocates nothing on the steady-state
// path: no std::function heap spill, and for post() no control block
// either.  push() still allocates the shared cancellation state its
// EventHandle hands out.
//
// The ring's per-bucket head/tail arrays are allocated uninitialized and
// consulted only when the bucket's occupancy bit is set, which keeps
// queue construction cheap (a 2 KB bitmap clear) — benchmarks build
// thousands of Simulators.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/inline_fn.hpp"
#include "sim/time.hpp"

namespace hpcvorx::sim {

/// Handle to a scheduled event; allows cancellation.  Handles are cheap to
/// copy and may outlive the event (cancelling a fired event is a no-op).
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet.  Returns true if this call
  /// cancelled it (false if it already fired or was already cancelled).
  bool cancel();

  /// True if the event is still scheduled to fire.
  [[nodiscard]] bool pending() const;

 private:
  friend class EventQueue;
  struct State;
  explicit EventHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

/// (time, sequence)-ordered callback queue: near-future bucket ring over a
/// binary-heap spill.
class EventQueue {
 public:
  /// Width of the near-future window, in ticks (1 tick = 1 ns).  Power of
  /// two; events at `[frontier, frontier + kWheelBuckets)` take the O(1)
  /// ring path.  16384 ns covers every steady-state delay in the model
  /// (frame hops are 0.8–54 µs end to end but each *event* is a few µs
  /// out; CPU slices and wakeups are nearer still).
  static constexpr std::uint64_t kWheelBuckets = 16384;

  EventQueue();
  EventQueue(EventQueue&&) = default;
  EventQueue& operator=(EventQueue&&) = default;

  /// Schedules `fn` at absolute time `at`.  Taking the callable by rvalue
  /// reference (here and in post) means a lambda at the call site
  /// materializes one InlineFn and relocates straight into queue storage —
  /// no per-layer parameter moves through the Simulator forwarding chain.
  EventHandle push(SimTime at, InlineFn&& fn);

  /// Schedules `fn` at absolute time `at` with no cancellation handle.
  /// This is the hot path: most events (frame deliveries, coroutine
  /// wakeups) are never cancelled, and skipping the handle skips the
  /// shared-state allocation entirely — with InlineFn storage the whole
  /// call is allocation-free once the queue's slabs are warm.
  void post(SimTime at, InlineFn&& fn);

  /// True if no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const;

  /// Number of scheduled events (an upper bound: cancelled events that
  /// have not yet been reaped from the structures' interiors are
  /// included).
  [[nodiscard]] std::size_t size() const { return wheel_count_ + heap_.size(); }

  /// Time of the earliest live event.  Precondition: !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Returns the earliest live event's callback and its time, popping it
  /// from the queue.  Precondition: !empty().
  std::pair<SimTime, InlineFn> pop();

  /// Entry is an implementation detail, public only so the comparator in
  /// event_queue.cpp can see it.  Entries are stored by value in the ring
  /// slab and the heap vector; sifts and slab growth move them (InlineFn
  /// relocation — no reallocation of the capture).
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    InlineFn fn;
    std::shared_ptr<EventHandle::State> state;  // null for post()ed events
  };

 private:
  static constexpr std::uint64_t kMask = kWheelBuckets - 1;
  static constexpr std::uint64_t kWords = kWheelBuckets / 64;
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  /// Ring slab node: entry + intrusive FIFO link (doubles as the free
  /// list's link) + the bucket's tail index, maintained only on the node
  /// that is currently a bucket head.  Keeping the tail here instead of in
  /// the bucket array halves that array to 4 bytes/bucket — the whole
  /// ring block must stay under glibc's 128 KiB mmap threshold or every
  /// fresh queue pays mmap/munmap plus page faults (measured 2x on the
  /// post/pop microbench).  The field rides in Node's padding for free.
  struct Node {
    Entry e;
    std::uint32_t next = kNil;
    std::uint32_t bucket_tail = kNil;
  };

  void insert(SimTime at, std::uint64_t seq, InlineFn&& fn,
              std::shared_ptr<EventHandle::State>&& state);
  /// Entry that pop() would return next (nullptr when truly empty);
  /// `from_wheel` says which structure holds it.
  Entry* next_head(bool& from_wheel) const;
  /// Unlinks and destroys the ring head (the entry at wheel_min_) /
  /// the heap head.  The caller moves anything it wants out first.
  void discard_wheel_head() const;
  void discard_heap_head() const;
  /// Recomputes wheel_min_ by scanning the occupancy bitmap circularly
  /// from `emptied_bucket + 1`.  Precondition: wheel_count_ > 0.
  void advance_wheel_min(std::size_t emptied_bucket) const;
  void drop_cancelled() const;

  [[nodiscard]] static std::size_t bucket_index(SimTime at) {
    return static_cast<std::size_t>(static_cast<std::uint64_t>(at) & kMask);
  }
  [[nodiscard]] SimTime time_of_bucket(std::size_t b) const {
    const std::uint64_t base_b = static_cast<std::uint64_t>(base_) & kMask;
    return base_ + static_cast<SimTime>((b - base_b) & kMask);
  }
  [[nodiscard]] bool bucket_occupied(std::size_t b) const {
    return (occupancy_[b >> 6] >> (b & 63)) & 1u;
  }

  // pop()/drop_cancelled() reaping mutates the containers behind the
  // logically-const empty()/next_time(), hence the mutables (the original
  // single-heap queue had the same shape).
  mutable std::vector<Entry> heap_;         // spill: far-future + past
  mutable std::vector<Node> slab_;          // ring entry storage
  mutable std::uint32_t free_head_ = kNil;  // slab free list
  // One allocation backs the bucket array (uninitialized — trusted only
  // when the bucket's occupancy bit is set) and the occupancy bitmap
  // (zeroed at construction).  Separate allocations measured ~100x worse
  // to construct: three back-to-back 64 KB malloc/free pairs make glibc
  // trim the heap top every cycle.
  mutable std::unique_ptr<std::byte[]> wheel_mem_;
  std::uint32_t* buckets_ = nullptr;        // head index per bucket
  std::uint64_t* occupancy_ = nullptr;      // into wheel_mem_
  mutable std::size_t wheel_count_ = 0;
  mutable SimTime wheel_min_ = 0;  // exact min time in ring; valid iff count>0
  mutable std::uint32_t wheel_head_ = kNil;  // slab index of ring head
  SimTime base_ = 0;               // window start == last popped time
  std::uint64_t next_seq_ = 0;
};

}  // namespace hpcvorx::sim
