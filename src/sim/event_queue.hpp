// A stable, cancellable pending-event queue for the simulator.
//
// Events fire in (time, insertion-sequence) order, which makes every
// simulation deterministic: two events scheduled for the same instant fire
// in the order they were scheduled.
//
// This queue is the innermost loop of every benchmark, so the storage is
// allocation-lean: entries live by value inside the heap vector, and the
// shared cancellation state exists only for events scheduled through
// push() — post() schedules an uncancellable event with no per-event
// control-block allocation at all.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace hpcvorx::sim {

/// Handle to a scheduled event; allows cancellation.  Handles are cheap to
/// copy and may outlive the event (cancelling a fired event is a no-op).
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet.  Returns true if this call
  /// cancelled it (false if it already fired or was already cancelled).
  bool cancel();

  /// True if the event is still scheduled to fire.
  [[nodiscard]] bool pending() const;

 private:
  friend class EventQueue;
  struct State;
  explicit EventHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

/// Min-heap of (time, sequence)-ordered callbacks.
class EventQueue {
 public:
  /// Schedules `fn` at absolute time `at`.
  EventHandle push(SimTime at, std::function<void()> fn);

  /// Schedules `fn` at absolute time `at` with no cancellation handle.
  /// This is the hot path: most events (frame deliveries, coroutine
  /// wakeups) are never cancelled, and skipping the handle skips the
  /// shared-state allocation entirely.
  void post(SimTime at, std::function<void()> fn);

  /// True if no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const;

  /// Number of scheduled events (an upper bound: cancelled events that have
  /// not yet been reaped from the heap interior are included).
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Time of the earliest live event.  Precondition: !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Removes and runs nothing: returns the earliest live event's callback
  /// and its time, popping it from the queue.  Precondition: !empty().
  std::pair<SimTime, std::function<void()>> pop();

  /// Entry is an implementation detail, public only so the comparator in
  /// event_queue.cpp can see it.  Entries are stored by value: heap sifts
  /// move them, which moves the std::function (cheap; no reallocation).
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<EventHandle::State> state;  // null for post()ed events
  };

 private:
  void drop_cancelled() const;

  mutable std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace hpcvorx::sim
