#include "sim/fault_plan.hpp"

#include <algorithm>
#include <cassert>

namespace hpcvorx::sim {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kLinkDown: return "link_down";
    case FaultKind::kLinkUp: return "link_up";
    case FaultKind::kClusterRestart: return "cluster_restart";
    case FaultKind::kHostCrash: return "host_crash";
    case FaultKind::kHostRestart: return "host_restart";
  }
  return "?";
}

void FaultPlan::sort() {
  std::sort(events_.begin(), events_.end(),
            [](const FaultEvent& x, const FaultEvent& y) {
              if (x.at != y.at) return x.at < y.at;
              if (x.kind != y.kind) return x.kind < y.kind;
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
}

bool FaultPlan::known(const std::string& name) {
  return name == "none" || name == "no_fault" || name == "link_flap" ||
         name == "cluster_restart" || name == "stub_crash";
}

FaultPlan FaultPlan::named(const std::string& name, const MachineShape& shape,
                           std::uint64_t seed, Duration horizon) {
  assert(known(name) && "unknown fault plan name");
  FaultPlan plan;
  if (name == "none" || name == "no_fault" || horizon <= 0) return plan;
  // Distinct streams per plan name so "link_flap seed 7" and
  // "cluster_restart seed 7" are uncorrelated.
  std::uint64_t salt = 0;
  for (char c : name) salt = salt * 131 + static_cast<unsigned char>(c);
  Rng rng(seed ^ (salt * 0x9e3779b97f4a7c15ULL));

  // Faults start after a warm-up fifth of the horizon (sessions exist to be
  // disrupted) and recovery always lands inside the horizon, so every run
  // also measures post-repair behaviour.
  const SimTime t0 = horizon / 5;
  const SimTime t1 = horizon;
  auto uniform_time = [&](SimTime lo, SimTime hi) {
    return lo + static_cast<SimTime>(rng.below(
                    static_cast<std::uint64_t>(std::max<SimTime>(hi - lo, 1))));
  };

  if (name == "link_flap") {
    if (shape.cube_edges.empty()) return plan;  // single cluster: no cables
    // A couple of cables flap 2-3 times each; each outage lasts 2-8% of
    // the horizon.
    const int cables = static_cast<int>(
        1 + rng.below(std::min<std::uint64_t>(2, shape.cube_edges.size())));
    for (int c = 0; c < cables; ++c) {
      const auto& e = shape.cube_edges[rng.below(shape.cube_edges.size())];
      const int flaps = static_cast<int>(2 + rng.below(2));
      for (int i = 0; i < flaps; ++i) {
        const SimTime down = uniform_time(t0, t1 - horizon / 10);
        const Duration outage =
            horizon / 50 + static_cast<Duration>(rng.below(
                               static_cast<std::uint64_t>(horizon / 16)));
        plan.add({down, FaultKind::kLinkDown, e.first, e.second});
        plan.add({std::min<SimTime>(down + outage, t1 - 1), FaultKind::kLinkUp,
                  e.first, e.second});
      }
    }
  } else if (name == "cluster_restart") {
    if (shape.clusters <= 1) return plan;
    const int restarts = static_cast<int>(2 + rng.below(3));
    for (int i = 0; i < restarts; ++i) {
      const int c =
          static_cast<int>(rng.below(static_cast<std::uint64_t>(shape.clusters)));
      plan.add({uniform_time(t0, t1), FaultKind::kClusterRestart, c, 0});
    }
  } else if (name == "stub_crash") {
    if (shape.hosts <= 0) return plan;
    // One host (two when the machine has spares) dies for 15-40% of the
    // horizon.  Leaving at least one healthy host keeps allocation retry
    // meaningful rather than hopeless.
    const int crashes = shape.hosts >= 3 ? 2 : 1;
    for (int i = 0; i < crashes; ++i) {
      const int h =
          static_cast<int>(rng.below(static_cast<std::uint64_t>(shape.hosts)));
      const SimTime down = uniform_time(t0, t1 - horizon / 4);
      const Duration outage =
          horizon * 3 / 20 + static_cast<Duration>(rng.below(
                                 static_cast<std::uint64_t>(horizon / 4)));
      plan.add({down, FaultKind::kHostCrash, h, 0});
      plan.add({std::min<SimTime>(down + outage, t1 - 1),
                FaultKind::kHostRestart, h, 0});
    }
  }
  plan.sort();
  // A down/up pair for the same target at the same instant would be
  // order-ambiguous to a reader (sort() fixes it: kLinkDown < kLinkUp),
  // but keep flap pairs strictly ordered anyway.
  return plan;
}

}  // namespace hpcvorx::sim
