// Deterministic fault schedules for availability experiments.
//
// A FaultPlan is a pure data object: a list of (virtual time, fault kind,
// target) events generated before the simulation starts, from a seed, by
// sim::Rng.  Nothing in this file touches hardware — the vorx workload
// layer (vorx::FaultInjector) binds each event to the concrete hw::Link /
// hw::Cluster / host-station calls and pre-schedules it on every shard's
// own simulator.  Because the plan is fixed before run() and every
// application event runs at its planned virtual time, a faulted run
// replays byte-identically from (plan seed, workload seed).
//
// The taxonomy matches ROADMAP direction 4 (and DESIGN.md §14):
//   * link down/up      — an inter-cluster cable fails and later recovers;
//   * cluster restart   — a switch power-cycles, dropping its input fifos;
//   * host crash/restart— a stub-serving workstation dies silently, then
//                         comes back empty (dead stubs, lost slots).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace hpcvorx::sim {

enum class FaultKind : std::uint8_t {
  kLinkDown,       // a = cluster A, b = cluster B (both directions fail)
  kLinkUp,         // a/b as kLinkDown: the cable is replaced
  kClusterRestart, // a = cluster index (instantaneous power-cycle)
  kHostCrash,      // a = host index (stops serving allocations and stubs)
  kHostRestart,    // a = host index (back, with empty slot/stub tables)
};

[[nodiscard]] const char* to_string(FaultKind k);

struct FaultEvent {
  SimTime at = 0;
  FaultKind kind = FaultKind::kLinkDown;
  int a = 0;
  int b = 0;
};

/// What the plan generator needs to know about the machine: enough to pick
/// valid targets, and nothing that would drag hardware types into sim/.
struct MachineShape {
  int clusters = 0;
  int hosts = 0;
  // Every inter-cluster cable as an unordered (lo, hi) cluster pair, in
  // topology-construction order (hw::Fabric reports these).
  std::vector<std::pair<int, int>> cube_edges;
};

class FaultPlan {
 public:
  /// Builds one of the named plans used by the CI fault matrix.  Every
  /// event time and target is drawn from Rng(seed), so (name, shape, seed,
  /// horizon) fully determines the schedule.  Known names:
  ///   "none"            — empty plan (the control cell)
  ///   "link_flap"       — a few cables flap down/up repeatedly
  ///   "cluster_restart" — a few switches power-cycle mid-run
  ///   "stub_crash"      — a host crashes, then restarts later
  /// Unknown names abort via assert (callers validate first; see known()).
  static FaultPlan named(const std::string& name, const MachineShape& shape,
                         std::uint64_t seed, Duration horizon);

  /// True when `name` is one of the plans named() understands.
  [[nodiscard]] static bool known(const std::string& name);

  /// Events sorted by (time, kind, a, b) — the deterministic apply order.
  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  /// Appends one event (tests and ad-hoc plans); sort() before use.
  void add(FaultEvent e) { events_.push_back(e); }
  void sort();

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace hpcvorx::sim
