// A move-only type-erased callable with 64 bytes of inline storage.
//
// This is the storage type behind every scheduled event.  std::function's
// small-buffer optimization (16 bytes in libstdc++) forces a heap
// allocation for any capture beyond two pointers — which made every
// frame-delivery and timer lambda in the hot path allocate.  InlineFn
// widens the buffer to 64 bytes (one cache line; every current call site
// in src/ fits) and keeps a heap fallback for oversized captures so the
// API stays total.
//
// Design notes:
//   * move-only — events are scheduled once and fired once, so copyability
//     (which forced std::function to heap-allocate non-copyable captures)
//     buys nothing;
//   * a static ops table (invoke/relocate/destroy function pointers) per
//     erased type, not a vtable — no per-object pointer beyond the table
//     pointer, and relocation is a real move+destroy so entries can live
//     by value inside the event queue's slabs and heap vector;
//   * inline eligibility requires nothrow move construction, so queue
//     growth (vector reallocation moves entries) keeps the strong
//     exception guarantee for free.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace hpcvorx::sim {

class InlineFn {
 public:
  /// Inline capture budget.  One cache line: large enough for `this` plus a
  /// handful of values or a by-value std::function, small enough that the
  /// event-queue entries stay compact.
  static constexpr std::size_t kInlineBytes = 64;

  InlineFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                     // std::function at every scheduling call site.
    emplace(std::forward<F>(f));
  }

  InlineFn(InlineFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(&storage_, &other.storage_);
      other.ops_ = nullptr;
    }
  }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(&storage_, &other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(&storage_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// True when the callable spilled to the heap fallback (capture larger
  /// than kInlineBytes or over-aligned).  Exposed for tests and benches
  /// that pin the zero-allocation property.
  [[nodiscard]] bool heap_allocated() const noexcept {
    return ops_ != nullptr && ops_->heap;
  }

  void operator()() { ops_->invoke(&storage_); }

  /// Invokes the callable and destroys its capture in one fused indirect
  /// call, leaving this empty.  The batched dispatcher's fire path pays
  /// one table call per event instead of two (invoke, then destroy via
  /// reset()).  If the callable throws, the capture is intentionally not
  /// destroyed — the same leak-on-throw the separate reset() path had.
  void call_and_reset() {
    const Ops* ops = ops_;
    ops_ = nullptr;
    ops->invoke_destroy(&storage_);
  }

  /// Fires a callable whose storage may be reclaimed or relocated *by the
  /// call itself*: one fused indirect call first moves the capture out of
  /// this object (into the op's own frame — registers for small captures),
  /// destroys the source, and only then invokes.  By the time user code
  /// runs, this InlineFn is empty and its storage is dead, so the event
  /// queue's batch cursor can return a slab node to the free list *before*
  /// firing it — no stack-relocate round trip per event.  Unlike
  /// call_and_reset(), a throwing callable destroys its capture normally
  /// (it is a local by then).
  void consume_invoke() {
    const Ops* ops = ops_;
    ops_ = nullptr;
    ops->move_invoke(&storage_);
  }

 private:
  struct Ops {
    void (*invoke)(void* p);
    void (*relocate)(void* dst, void* src) noexcept;  // move-construct + destroy src
    void (*destroy)(void* p) noexcept;
    void (*invoke_destroy)(void* p);  // invoke, then destroy, one call
    void (*move_invoke)(void* p);  // move capture out, destroy src, invoke
    bool heap;
  };

  template <typename D>
  static constexpr bool fits_inline =
      sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  struct InlineOps {
    static void invoke(void* p) { (*static_cast<D*>(p))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) D(std::move(*static_cast<D*>(src)));
      static_cast<D*>(src)->~D();
    }
    static void destroy(void* p) noexcept { static_cast<D*>(p)->~D(); }
    static void invoke_destroy(void* p) {
      D* d = static_cast<D*>(p);
      (*d)();
      d->~D();
    }
    static void move_invoke(void* p) {
      D* src = static_cast<D*>(p);
      D d(std::move(*src));
      src->~D();
      d();
    }
    static constexpr Ops ops{&invoke, &relocate, &destroy, &invoke_destroy,
                             &move_invoke, false};
  };

  template <typename D>
  struct HeapOps {
    static D*& slot(void* p) noexcept { return *static_cast<D**>(p); }
    static void invoke(void* p) { (*slot(p))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) D*(slot(src));
    }
    static void destroy(void* p) noexcept { delete slot(p); }
    static void invoke_destroy(void* p) {
      D* d = slot(p);
      (*d)();
      delete d;
    }
    static void move_invoke(void* p) {
      // Heap captures are already storage-stable; only the 8-byte slot
      // lived in the slab, and it was read before user code ran.
      D* d = slot(p);
      (*d)();
      delete d;
    }
    static constexpr Ops ops{&invoke, &relocate, &destroy, &invoke_destroy,
                             &move_invoke, true};
  };

  template <typename F>
  void emplace(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(&storage_)) D(std::forward<F>(f));
      ops_ = &InlineOps<D>::ops;
    } else {
      ::new (static_cast<void*>(&storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &HeapOps<D>::ops;
    }
  }

  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace hpcvorx::sim
