// A move-only type-erased callable with 64 bytes of inline storage.
//
// This is the storage type behind every scheduled event.  std::function's
// small-buffer optimization (16 bytes in libstdc++) forces a heap
// allocation for any capture beyond two pointers — which made every
// frame-delivery and timer lambda in the hot path allocate.  InlineFn
// widens the buffer to 64 bytes (one cache line; every current call site
// in src/ fits) and keeps a heap fallback for oversized captures so the
// API stays total.
//
// Design notes:
//   * move-only — events are scheduled once and fired once, so copyability
//     (which forced std::function to heap-allocate non-copyable captures)
//     buys nothing;
//   * a static ops table (invoke/relocate/destroy function pointers) per
//     erased type, not a vtable — no per-object pointer beyond the table
//     pointer, and relocation is a real move+destroy so entries can live
//     by value inside the event queue's slabs and heap vector;
//   * inline eligibility requires nothrow move construction, so queue
//     growth (vector reallocation moves entries) keeps the strong
//     exception guarantee for free.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace hpcvorx::sim {

class InlineFn {
 public:
  /// Inline capture budget.  One cache line: large enough for `this` plus a
  /// handful of values or a by-value std::function, small enough that the
  /// event-queue entries stay compact.
  static constexpr std::size_t kInlineBytes = 64;

  InlineFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                     // std::function at every scheduling call site.
    emplace(std::forward<F>(f));
  }

  InlineFn(InlineFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(&storage_, &other.storage_);
      other.ops_ = nullptr;
    }
  }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(&storage_, &other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(&storage_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// True when the callable spilled to the heap fallback (capture larger
  /// than kInlineBytes or over-aligned).  Exposed for tests and benches
  /// that pin the zero-allocation property.
  [[nodiscard]] bool heap_allocated() const noexcept {
    return ops_ != nullptr && ops_->heap;
  }

  void operator()() { ops_->invoke(&storage_); }

 private:
  struct Ops {
    void (*invoke)(void* p);
    void (*relocate)(void* dst, void* src) noexcept;  // move-construct + destroy src
    void (*destroy)(void* p) noexcept;
    bool heap;
  };

  template <typename D>
  static constexpr bool fits_inline =
      sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  struct InlineOps {
    static void invoke(void* p) { (*static_cast<D*>(p))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) D(std::move(*static_cast<D*>(src)));
      static_cast<D*>(src)->~D();
    }
    static void destroy(void* p) noexcept { static_cast<D*>(p)->~D(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy, false};
  };

  template <typename D>
  struct HeapOps {
    static D*& slot(void* p) noexcept { return *static_cast<D**>(p); }
    static void invoke(void* p) { (*slot(p))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) D*(slot(src));
    }
    static void destroy(void* p) noexcept { delete slot(p); }
    static constexpr Ops ops{&invoke, &relocate, &destroy, true};
  };

  template <typename F>
  void emplace(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(&storage_)) D(std::forward<F>(f));
      ops_ = &InlineOps<D>::ops;
    } else {
      ::new (static_cast<void*>(&storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &HeapOps<D>::ops;
    }
  }

  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace hpcvorx::sim
