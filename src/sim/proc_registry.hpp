// Ownership of fire-and-forget coroutine frames.
//
// A sim::Proc frame destroys itself when the process finishes — but a
// process suspended forever (a deadlocked reader, a sender starved behind
// backpressure when the run ends) is owned by nobody, and its frame would
// leak at simulator teardown.  Every live Proc frame therefore registers
// itself with a registry at creation, and the registry's owner reclaims
// whatever is still suspended.
//
// Since the shard runtime landed there is one registry per Simulator (the
// shard context): a frame registers with the simulator bound to the
// creating thread — ShardRuntime binds each shard's simulator on its
// worker thread, Node::spawn_process binds the node's simulator for
// main-thread setup spawns — and ~Simulator() drains its own registry.
// ProcRegistry::current() resolves that binding; frames created with no
// live simulator at all fall back to a per-thread owner of last resort.
//
// Intrusive slot bookkeeping (the promise stores its index, the registry
// stores a pointer back to that index) keeps add/remove O(1) without any
// pointer-keyed container whose iteration order could vary across runs.
#pragma once

#include <coroutine>
#include <cstddef>
#include <vector>

namespace hpcvorx::sim {

class ProcRegistry {
 public:
  ProcRegistry() = default;
  ProcRegistry(const ProcRegistry&) = delete;
  ProcRegistry& operator=(const ProcRegistry&) = delete;

  /// The registry new Proc frames register with: the thread's bound
  /// Simulator's registry (see Simulator::ScopedBind), or a per-thread
  /// fallback when no simulator is live.  Defined in simulator.cpp.
  static ProcRegistry& current();

  /// The per-thread owner of last resort (also drained by every
  /// ~Simulator on the thread, preserving the old global-registry
  /// guarantee that simulator teardown leaks no parked frame).
  static ProcRegistry& thread_fallback();

  /// Registers a live frame; writes its slot index through `slot_field`
  /// and keeps the pointer so later swaps can patch it.
  void add(std::coroutine_handle<> h, std::size_t* slot_field) {
    *slot_field = handles_.size();
    handles_.push_back(h);
    slots_.push_back(slot_field);
  }

  /// Unregisters the frame in `slot` (called from the promise destructor,
  /// whether the process finished or is being reclaimed).
  void remove(std::size_t slot) {
    handles_[slot] = handles_.back();
    slots_[slot] = slots_.back();
    *slots_[slot] = slot;
    handles_.pop_back();
    slots_.pop_back();
  }

  /// Destroys every still-suspended frame, newest first.  Each destroy
  /// re-enters remove() via the promise destructor and pops the entry.
  void destroy_all() {
    while (!handles_.empty()) handles_.back().destroy();
  }

  [[nodiscard]] std::size_t live() const { return handles_.size(); }

 private:
  // Owner of last resort: fire-and-forget Proc frames are destroyed exactly
  // once, here or on final_suspend (which unregisters).
  // vorx-lint: allow(R8) the registry exists to own what nothing else does
  std::vector<std::coroutine_handle<>> handles_;
  std::vector<std::size_t*> slots_;
};

}  // namespace hpcvorx::sim
