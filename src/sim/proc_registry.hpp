// Ownership of fire-and-forget coroutine frames.
//
// A sim::Proc frame destroys itself when the process finishes — but a
// process suspended forever (a deadlocked reader, a sender starved behind
// backpressure when the run ends) is owned by nobody, and its frame would
// leak at simulator teardown.  Every live Proc frame therefore registers
// itself here, and ~Simulator() reclaims whatever is still suspended.
//
// The registry is process-wide because promise types cannot see which
// Simulator drives them; the codebase runs one live Simulator at a time
// (the deterministic single-event-queue design already implies this), so
// teardown of "the" simulator may reclaim every outstanding frame.
//
// Intrusive slot bookkeeping (the promise stores its index, the registry
// stores a pointer back to that index) keeps add/remove O(1) without any
// pointer-keyed container whose iteration order could vary across runs.
#pragma once

#include <coroutine>
#include <cstddef>
#include <vector>

namespace hpcvorx::sim {

class ProcRegistry {
 public:
  static ProcRegistry& instance() {
    // Deliberate process-wide registry: Proc frames have no other owner, and
    // ~Simulator() drains entries by slot.  A sharded runtime will need a
    // per-shard registry — tracked in ROADMAP.
    static ProcRegistry r;  // vorx-lint: allow(R6) owner-of-last-resort registry, see above
    return r;
  }

  /// Registers a live frame; writes its slot index through `slot_field`
  /// and keeps the pointer so later swaps can patch it.
  void add(std::coroutine_handle<> h, std::size_t* slot_field) {
    *slot_field = handles_.size();
    handles_.push_back(h);
    slots_.push_back(slot_field);
  }

  /// Unregisters the frame in `slot` (called from the promise destructor,
  /// whether the process finished or is being reclaimed).
  void remove(std::size_t slot) {
    handles_[slot] = handles_.back();
    slots_[slot] = slots_.back();
    *slots_[slot] = slot;
    handles_.pop_back();
    slots_.pop_back();
  }

  /// Destroys every still-suspended frame, newest first.  Each destroy
  /// re-enters remove() via the promise destructor and pops the entry.
  void destroy_all() {
    while (!handles_.empty()) handles_.back().destroy();
  }

  [[nodiscard]] std::size_t live() const { return handles_.size(); }

 private:
  ProcRegistry() = default;
  // Owner of last resort: fire-and-forget Proc frames are destroyed exactly
  // once, here or on final_suspend (which unregisters).
  // vorx-lint: allow(R8) the registry exists to own what nothing else does
  std::vector<std::coroutine_handle<>> handles_;
  std::vector<std::size_t*> slots_;
};

}  // namespace hpcvorx::sim
