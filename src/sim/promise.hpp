// One-shot Future/Promise pair for simulated processes.
//
// A Promise is fulfilled exactly once; any number of processes may await
// the matching Future, before or after fulfilment.  Futures are cheap
// handles onto shared state and may outlive the Promise.
#pragma once

#include <cassert>
#include <coroutine>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace hpcvorx::sim {

/// Placeholder value for futures that carry no payload.
struct Unit {};

namespace detail {
template <typename T>
struct FutureState {
  explicit FutureState(Simulator& s) : sim(&s) {}
  Simulator* sim;
  std::optional<T> value;
  // Coroutine-machinery waiter list: handles are parked here only while
  // suspended on get() and resumed exactly once by set().
  // vorx-lint: allow(R8) waiter list, resumed exactly once
  std::vector<std::coroutine_handle<>> waiters;
};
}  // namespace detail

template <typename T>
class Future {
 public:
  Future() = default;

  [[nodiscard]] bool ready() const { return state_ && state_->value.has_value(); }

  /// The fulfilled value.  Precondition: ready().
  [[nodiscard]] const T& get() const {
    assert(ready());
    return *state_->value;
  }

  struct Awaiter {
    std::shared_ptr<detail::FutureState<T>> st;
    bool await_ready() const noexcept { return st->value.has_value(); }
    void await_suspend(std::coroutine_handle<> h) { st->waiters.push_back(h); }
    const T& await_resume() const {
      assert(st->value.has_value());
      return *st->value;
    }
  };
  [[nodiscard]] Awaiter operator co_await() const {
    assert(state_ && "awaiting a default-constructed Future");
    return Awaiter{state_};
  }

 private:
  template <typename>
  friend class Promise;
  explicit Future(std::shared_ptr<detail::FutureState<T>> s) : state_(std::move(s)) {}
  std::shared_ptr<detail::FutureState<T>> state_;
};

template <typename T = Unit>
class Promise {
 public:
  explicit Promise(Simulator& sim)
      : state_(std::make_shared<detail::FutureState<T>>(sim)) {}

  [[nodiscard]] Future<T> future() const { return Future<T>{state_}; }

  /// Fulfils the promise and wakes all waiters.  Must be called at most once.
  void set_value(T v = T{}) {
    assert(!state_->value.has_value() && "Promise fulfilled twice");
    state_->value = std::move(v);
    for (auto h : state_->waiters) resume_later(*state_->sim, h);
    state_->waiters.clear();
  }

  [[nodiscard]] bool fulfilled() const { return state_->value.has_value(); }

 private:
  std::shared_ptr<detail::FutureState<T>> state_;
};

}  // namespace hpcvorx::sim
