// vorx-lint-file: allow(R3) the shard runtime is the one sanctioned concurrency surface (DESIGN.md §11/§12)
#include "sim/shard_runtime.hpp"

#include <algorithm>
#include <cassert>
#include <thread>

namespace hpcvorx::sim {

ShardRuntime::ShardRuntime(int shards) {
  assert(shards >= 1);
  sims_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) sims_.push_back(std::make_unique<Simulator>());
  inboxes_.resize(static_cast<std::size_t>(shards));
  mins_.resize(static_cast<std::size_t>(shards));
}

void ShardRuntime::note_cross_shard_latency(Duration latency) {
  assert(latency >= 1 &&
         "a zero-latency link may not cross shards: the lookahead window "
         "would be empty");
  lookahead_ = lookahead_ == 0 ? latency : std::min(lookahead_, latency);
}

void ShardRuntime::register_exchange(int dst_shard, ShardExchange* ex) {
  assert(num_shards() > 1 && "exchanges only exist between distinct shards");
  inboxes_.at(static_cast<std::size_t>(dst_shard)).push_back(ex);
}

std::uint64_t ShardRuntime::total_events_executed() const {
  std::uint64_t n = 0;
  for (const auto& s : sims_) n += s->events_executed();
  return n;
}

// Barrier-phase completion: runs on exactly one thread, with every shard
// parked, after all mins_ are published.  The barrier's phase transition
// orders these writes before every shard's next read of window_end_/done_.
void ShardRuntime::reduce() noexcept {
  ++rounds_;
  SimTime lbts = kNever;
  for (const LocalMin& m : mins_) lbts = std::min(lbts, m.v);
  if (lbts == kNever || lbts > deadline_ ||
      stop_flag_.load(std::memory_order_relaxed)) {
    done_ = true;
    return;
  }
  // Strictly-bounded window: events at t <= LBTS + L - 1 emit cross-shard
  // effects at >= t + L > window end (the §12 safety argument).  The shard
  // holding the LBTS event always runs it, so LBTS strictly advances.
  const SimTime cap = kNever - lookahead_;  // overflow guard
  window_end_ = lbts > cap ? kNever - 1 : lbts + lookahead_ - 1;
  window_end_ = std::min(window_end_, deadline_);
}

void ShardRuntime::worker(int s) {
  Simulator& sim = *sims_[static_cast<std::size_t>(s)];
  // Ambient shard context: Proc frames spawned while this window executes
  // register with this shard's registry (see proc_registry.hpp).
  Simulator::ScopedBind bind(sim);
  for (;;) {
    start_->arrive_and_wait();  // A: every producer finished its window
    for (ShardExchange* ex : inboxes_[static_cast<std::size_t>(s)]) {
      ex->drain_into(sim);
    }
    mins_[static_cast<std::size_t>(s)].v = sim.next_event_time(kNever);
    plan_->arrive_and_wait();  // B: reduce() computed window_end_/done_
    if (done_) break;
    sim.run_until(window_end_);
    if (sim.stop_requested()) {
      stop_flag_.store(true, std::memory_order_relaxed);
    }
  }
  // All events <= deadline ran (LBTS passed it); bring the clock to the
  // deadline like Simulator::run_until does, unless a stop() cut the run
  // short (run_until leaves the clock at the stopping event too).
  if (deadline_ != kNever && !stop_flag_.load(std::memory_order_relaxed)) {
    sim.run_until(deadline_);
  }
}

void ShardRuntime::run_until(SimTime deadline) {
  rounds_ = 0;
  if (num_shards() == 1) {
    // The byte-identical path: one shard is the single-threaded engine.
    Simulator& sim = *sims_[0];
    Simulator::ScopedBind bind(sim);
    if (deadline == kNever) {
      sim.run();
    } else {
      sim.run_until(deadline);
    }
    return;
  }
  assert(lookahead_ >= 1 &&
         "multi-shard run with no cross-shard links registered: lookahead "
         "is unset (did fabric construction skip note_cross_shard_latency?)");
  deadline_ = deadline;
  done_ = false;
  stop_flag_.store(false, std::memory_order_relaxed);
  const auto n = static_cast<std::ptrdiff_t>(num_shards());
  std::barrier<> start(n);
  std::barrier<Reduce> plan(n, Reduce{this});
  start_ = &start;
  plan_ = &plan;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_shards() - 1));
  for (int s = 1; s < num_shards(); ++s) {
    threads.emplace_back([this, s] { worker(s); });
  }
  worker(0);
  for (std::thread& t : threads) t.join();
  start_ = nullptr;
  plan_ = nullptr;
}

}  // namespace hpcvorx::sim
