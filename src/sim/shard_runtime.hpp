// Conservative-lookahead parallel execution of N Simulators ("shards").
//
// The machine is partitioned (by cluster — see hw::Fabric::make_sharded)
// into N shards, each owning a full Simulator: its own event queue, clock,
// counters, and proc registry.  Shards run in lockstep windows:
//
//   round:  LBTS = min over shards of next-event time
//           window = [LBTS, LBTS + lookahead - 1]     (empty => done)
//           every shard runs run_until(window end), in parallel
//           barrier; cross-shard traffic queued during the window is
//           drained into the destination shards' event queues; repeat
//
// Safety argument (DESIGN.md §12): `lookahead` is the minimum latency of
// any cross-shard hw::Link.  An event executing at local time t can only
// influence another shard at a time >= t + lookahead (a frame arrives one
// link latency after serialization starts; a flow-control credit takes
// effect one link latency after the buffer slot frees).  Every event in a
// window has t <= LBTS + lookahead - 1, so its cross-shard effects land at
// >= t + lookahead > LBTS + lookahead - 1 — strictly beyond the window.
// Traffic drained at a barrier was therefore generated in *completed*
// windows and is always scheduled in the destination's future.  Progress:
// the shard holding the LBTS event always executes it, so LBTS strictly
// advances.
//
// Determinism: each shard's intra-window execution is ordinary sequential
// simulation; at a barrier, exchanges are drained by one thread in fixed
// registration order, and each exchange preserves its producer's push
// order.  The merged event order is thus a pure function of the topology
// and the event timeline — never of thread scheduling — which is what lets
// N-shard runs pin their own goldens.
//
// This translation unit (with spsc_queue.hpp) is the shard runtime the
// DESIGN.md §11 R3 contract carves out: real threads, barriers and atomics
// live here so they can live nowhere else.
// vorx-lint-file: allow(R3) the shard runtime is the one sanctioned concurrency surface (DESIGN.md §11/§12)
#pragma once

#include <barrier>
#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace hpcvorx::sim {

/// A cross-shard message channel.  Implementations (hw::ShardLinkBridge)
/// buffer whatever their producer shard emitted during a window; at the
/// round barrier the runtime calls drain_into() on the destination shard's
/// thread to schedule the buffered messages as ordinary events.
class ShardExchange {
 public:
  virtual ~ShardExchange() = default;
  /// Pops every buffered message and schedules it into `dst`.  Called with
  /// all producers parked at a barrier; every message must be strictly
  /// later than dst.now() (the lookahead guarantee).
  virtual void drain_into(Simulator& dst) = 0;
};

class ShardRuntime {
 public:
  /// "No pending event" sentinel for LBTS reductions.
  static constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

  explicit ShardRuntime(int shards);
  ShardRuntime(const ShardRuntime&) = delete;
  ShardRuntime& operator=(const ShardRuntime&) = delete;

  [[nodiscard]] int num_shards() const { return static_cast<int>(sims_.size()); }
  [[nodiscard]] Simulator& shard(int i) { return *sims_.at(static_cast<std::size_t>(i)); }

  /// Folds one cross-shard link latency into the lookahead window (the
  /// window is the minimum over all registered links).  Zero-latency links
  /// may not cross shards: the window would be empty.
  void note_cross_shard_latency(Duration latency);
  [[nodiscard]] Duration lookahead() const { return lookahead_; }

  /// Registers `ex` to be drained into shard `dst_shard` at every round
  /// barrier.  Registration order is part of the determinism contract: it
  /// fixes the merge order of same-timestamp cross-shard events, so it must
  /// itself be deterministic (topology construction order — it is).
  void register_exchange(int dst_shard, ShardExchange* ex);

  /// Runs every shard until all event queues drain (or a shard's
  /// Simulator::stop() is called).  With one shard this is exactly
  /// Simulator::run() — byte-identical to the single-threaded engine.
  void run() { run_until(kNever); }

  /// Runs events with time <= deadline on every shard; afterwards every
  /// shard clock reads `deadline` (unless stopped early).
  void run_until(SimTime deadline);

  /// Synchronization rounds executed by the last run (diagnostics/bench).
  [[nodiscard]] std::uint64_t rounds() const { return rounds_; }

  /// Sum of events executed across all shards (bench: events/s numerator).
  [[nodiscard]] std::uint64_t total_events_executed() const;

 private:
  struct Reduce {
    ShardRuntime* rt;
    void operator()() const noexcept { rt->reduce(); }
  };
  // One shard's published next-event time, padded so neighbouring shards'
  // stores never share a cache line.
  struct alignas(64) LocalMin {
    SimTime v = kNever;
  };

  void worker(int s);
  void reduce() noexcept;

  std::vector<std::unique_ptr<Simulator>> sims_;
  std::vector<std::vector<ShardExchange*>> inboxes_;  // per dest shard
  Duration lookahead_ = 0;  // 0 => no cross-shard links registered yet
  std::uint64_t rounds_ = 0;

  // Round state.  `mins_` is written per-shard between the barriers;
  // everything else is written only by the reduce completion (which the
  // barrier orders against all shard threads).
  std::vector<LocalMin> mins_;
  SimTime deadline_ = kNever;
  SimTime window_end_ = 0;
  bool done_ = false;
  std::atomic<bool> stop_flag_{false};
  std::barrier<>* start_ = nullptr;       // phase A: previous window finished
  std::barrier<Reduce>* plan_ = nullptr;  // phase B: LBTS/window computed
};

}  // namespace hpcvorx::sim
