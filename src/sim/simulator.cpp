#include "sim/simulator.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "sim/proc_registry.hpp"

namespace hpcvorx::sim {

Simulator::~Simulator() { ProcRegistry::instance().destroy_all(); }

EventHandle Simulator::schedule_at(SimTime at, InlineFn&& fn) {
  return queue_.push(std::max(at, now_), std::move(fn));
}

EventHandle Simulator::schedule_after(Duration d, InlineFn&& fn) {
  return schedule_at(now_ + std::max<Duration>(d, 0), std::move(fn));
}

void Simulator::post_at(SimTime at, InlineFn&& fn) {
  queue_.post(std::max(at, now_), std::move(fn));
}

void Simulator::post_after(Duration d, InlineFn&& fn) {
  post_at(now_ + std::max<Duration>(d, 0), std::move(fn));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto [at, fn] = queue_.pop();
  now_ = at;
  fn();
  if (counters_.enabled()) sample_queue_stats();
  return true;
}

// Samples the event queue's structure-traffic counters onto the "engine"
// track, but only when something structurally interesting happened since
// the last sample: an L0-only event cadence would otherwise flood the
// timeline with one sample per event.  L1 inserts, promotions, spill and
// reaping are the rare transitions §6.2-style waveforms want to see;
// l0_inserts and heap occupancy piggy-back on those samples.
void Simulator::sample_queue_stats() {
  const EventQueue::Stats& s = queue_.stats();
  if (s.l1_inserts == sampled_stats_.l1_inserts &&
      s.heap_inserts == sampled_stats_.heap_inserts &&
      s.l1_promoted == sampled_stats_.l1_promoted &&
      s.l1_cancelled_reaped == sampled_stats_.l1_cancelled_reaped) {
    return;
  }
  sampled_stats_ = s;
  counters_.sample("engine", "wheel_l0_inserts", now_,
                   static_cast<double>(s.l0_inserts));
  counters_.sample("engine", "wheel_l1_inserts", now_,
                   static_cast<double>(s.l1_inserts));
  counters_.sample("engine", "wheel_spill_events", now_,
                   static_cast<double>(s.heap_inserts));
  counters_.sample("engine", "wheel_l1_promoted", now_,
                   static_cast<double>(s.l1_promoted));
  counters_.sample("engine", "heap_size", now_,
                   static_cast<double>(queue_.heap_size()));
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulator::run_until(SimTime deadline) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= deadline) {
    step();
  }
  if (!stopped_) now_ = std::max(now_, deadline);
}

}  // namespace hpcvorx::sim
