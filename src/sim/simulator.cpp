#include "sim/simulator.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "sim/proc_registry.hpp"

namespace hpcvorx::sim {

Simulator::~Simulator() { ProcRegistry::instance().destroy_all(); }

EventHandle Simulator::schedule_at(SimTime at, InlineFn&& fn) {
  return queue_.push(std::max(at, now_), std::move(fn));
}

EventHandle Simulator::schedule_after(Duration d, InlineFn&& fn) {
  return schedule_at(now_ + std::max<Duration>(d, 0), std::move(fn));
}

void Simulator::post_at(SimTime at, InlineFn&& fn) {
  queue_.post(std::max(at, now_), std::move(fn));
}

void Simulator::post_after(Duration d, InlineFn&& fn) {
  post_at(now_ + std::max<Duration>(d, 0), std::move(fn));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto [at, fn] = queue_.pop();
  now_ = at;
  fn();
  return true;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulator::run_until(SimTime deadline) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= deadline) {
    step();
  }
  if (!stopped_) now_ = std::max(now_, deadline);
}

}  // namespace hpcvorx::sim
