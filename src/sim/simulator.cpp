#include "sim/simulator.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <utility>

#include "sim/proc_registry.hpp"

namespace hpcvorx::sim {

namespace {
// The thread's ambient simulator: the shard context that Proc-frame
// registration (ProcRegistry::current) resolves against.  Per-thread by
// construction — each shard worker binds its own simulator — so there is
// no shared mutable state here, just thread-local context.
// vorx-lint: allow(R6) per-thread current-simulator binding is the shard context itself (DESIGN.md §12)
thread_local Simulator* tl_current_sim = nullptr;
}  // namespace

Simulator::Simulator() {
  if (tl_current_sim == nullptr) {
    tl_current_sim = this;
    claimed_thread_slot_ = true;
  }
}

Simulator::~Simulator() {
  registry_.destroy_all();
  // Owner of last resort: frames created on this thread with no bound
  // simulator land in the per-thread fallback; drain it here so simulator
  // teardown still reclaims every parked frame (the pre-shard guarantee).
  ProcRegistry::thread_fallback().destroy_all();
  if (claimed_thread_slot_ && tl_current_sim == this) {
    tl_current_sim = nullptr;
  }
}

Simulator* Simulator::current() { return tl_current_sim; }

Simulator::ScopedBind::ScopedBind(Simulator& s) : prev_(tl_current_sim) {
  tl_current_sim = &s;
}

Simulator::ScopedBind::~ScopedBind() { tl_current_sim = prev_; }

ProcRegistry& ProcRegistry::current() {
  if (Simulator* s = Simulator::current()) return s->proc_registry();
  return thread_fallback();
}

ProcRegistry& ProcRegistry::thread_fallback() {
  // Per-thread owner of last resort; reachable until thread exit, so
  // LeakSanitizer sees parked frames as live even if no simulator drains
  // them first.
  // vorx-lint: allow(R6) per-thread fallback registry, drained by every ~Simulator on the thread
  static thread_local ProcRegistry r;
  return r;
}

bool Simulator::step() {
  return step_limit(std::numeric_limits<SimTime>::max());
}

void Simulator::pop_and_fire() {
  auto [at, fn] = queue_.pop();
  now_ = at;
  ++events_executed_;
  fn();
  if (counters_.enabled()) sample_queue_stats();
}

// The batched dispatch loop.  One iteration fires exactly one event (or
// returns false); the batch makes the *bookkeeping* per event cheaper, not
// the semantics different — order, insert routing, counters and samples
// are byte-identical to the old pop()-per-event loop (DESIGN.md §13).
bool Simulator::step_limit(SimTime limit) {
  for (;;) {
    if (batch_.exhausted()) {
      if (queue_.drain_bucket(batch_, limit) == 0) {
        // Nothing drained: queue empty, head past the limit, or the head
        // lives in the spill heap — classic single-event path.
        if (queue_.empty()) return false;
        if (queue_.next_time() > limit) return false;
        pop_and_fire();
        return true;
      }
    }
    const SimTime bt = batch_.head_time();
    // A stale batch tail from an earlier, wider run_until() window: the
    // entries stay pending (next_event_time / pending_events count them)
    // until a window admits their times.
    if (bt > limit) return false;
    // An event fired earlier in this bucket may have scheduled something
    // ahead of the rest of the batch (a 0-delay wakeup lands in the
    // current tick), or an in-span spill entry may carry a smaller
    // sequence number — interleave those through pop().  Ties go to the
    // batch: drained entries always hold the smaller sequence numbers.
    if (queue_.earlier_than(bt, batch_.head_seq())) {
      pop_and_fire();
      return true;
    }
    batch_.prefetch_next();
    if (!batch_.begin_fire()) continue;  // cancelled after the drain
    queue_.advance_frontier(bt);
    now_ = bt;
    ++events_executed_;
    batch_.fire_head();
    if (counters_.enabled()) sample_queue_stats();
    return true;
  }
}

SimTime Simulator::next_event_time(SimTime if_empty) {
  while (!batch_.exhausted() && batch_.head_cancelled()) {
    batch_.discard_head();
  }
  SimTime t = if_empty;
  if (!batch_.exhausted()) t = batch_.head_time();
  if (!queue_.empty()) t = std::min(t, queue_.next_time());
  return t;
}

// Samples the event queue's structure-traffic counters onto the "engine"
// track, but only when something structurally interesting happened since
// the last sample: an L0-only event cadence would otherwise flood the
// timeline with one sample per event.  L1 inserts, promotions, spill and
// reaping are the rare transitions §6.2-style waveforms want to see;
// l0_inserts and heap occupancy piggy-back on those samples.
void Simulator::sample_queue_stats() {
  const EventQueue::Stats& s = queue_.stats();
  if (s.l1_inserts == sampled_stats_.l1_inserts &&
      s.heap_inserts == sampled_stats_.heap_inserts &&
      s.l1_promoted == sampled_stats_.l1_promoted &&
      s.l1_cancelled_reaped == sampled_stats_.l1_cancelled_reaped) {
    return;
  }
  sampled_stats_ = s;
  counters_.sample("engine", "wheel_l0_inserts", now_,
                   static_cast<double>(s.l0_inserts));
  counters_.sample("engine", "wheel_l1_inserts", now_,
                   static_cast<double>(s.l1_inserts));
  counters_.sample("engine", "wheel_spill_events", now_,
                   static_cast<double>(s.heap_inserts));
  counters_.sample("engine", "wheel_l1_promoted", now_,
                   static_cast<double>(s.l1_promoted));
  counters_.sample("engine", "heap_size", now_,
                   static_cast<double>(queue_.heap_size()));
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step_limit(std::numeric_limits<SimTime>::max())) {
  }
}

void Simulator::run_until(SimTime deadline) {
  stopped_ = false;
  while (!stopped_ && step_limit(deadline)) {
  }
  if (!stopped_) now_ = std::max(now_, deadline);
}

}  // namespace hpcvorx::sim
