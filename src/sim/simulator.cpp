#include "sim/simulator.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "sim/proc_registry.hpp"

namespace hpcvorx::sim {

namespace {
// The thread's ambient simulator: the shard context that Proc-frame
// registration (ProcRegistry::current) resolves against.  Per-thread by
// construction — each shard worker binds its own simulator — so there is
// no shared mutable state here, just thread-local context.
// vorx-lint: allow(R6) per-thread current-simulator binding is the shard context itself (DESIGN.md §12)
thread_local Simulator* tl_current_sim = nullptr;
}  // namespace

Simulator::Simulator() {
  if (tl_current_sim == nullptr) {
    tl_current_sim = this;
    claimed_thread_slot_ = true;
  }
}

Simulator::~Simulator() {
  registry_.destroy_all();
  // Owner of last resort: frames created on this thread with no bound
  // simulator land in the per-thread fallback; drain it here so simulator
  // teardown still reclaims every parked frame (the pre-shard guarantee).
  ProcRegistry::thread_fallback().destroy_all();
  if (claimed_thread_slot_ && tl_current_sim == this) {
    tl_current_sim = nullptr;
  }
}

Simulator* Simulator::current() { return tl_current_sim; }

Simulator::ScopedBind::ScopedBind(Simulator& s) : prev_(tl_current_sim) {
  tl_current_sim = &s;
}

Simulator::ScopedBind::~ScopedBind() { tl_current_sim = prev_; }

ProcRegistry& ProcRegistry::current() {
  if (Simulator* s = Simulator::current()) return s->proc_registry();
  return thread_fallback();
}

ProcRegistry& ProcRegistry::thread_fallback() {
  // Per-thread owner of last resort; reachable until thread exit, so
  // LeakSanitizer sees parked frames as live even if no simulator drains
  // them first.
  // vorx-lint: allow(R6) per-thread fallback registry, drained by every ~Simulator on the thread
  static thread_local ProcRegistry r;
  return r;
}

EventHandle Simulator::schedule_at(SimTime at, InlineFn&& fn) {
  return queue_.push(std::max(at, now_), std::move(fn));
}

EventHandle Simulator::schedule_after(Duration d, InlineFn&& fn) {
  return schedule_at(now_ + std::max<Duration>(d, 0), std::move(fn));
}

void Simulator::post_at(SimTime at, InlineFn&& fn) {
  queue_.post(std::max(at, now_), std::move(fn));
}

void Simulator::post_after(Duration d, InlineFn&& fn) {
  post_at(now_ + std::max<Duration>(d, 0), std::move(fn));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto [at, fn] = queue_.pop();
  now_ = at;
  ++events_executed_;
  fn();
  if (counters_.enabled()) sample_queue_stats();
  return true;
}

// Samples the event queue's structure-traffic counters onto the "engine"
// track, but only when something structurally interesting happened since
// the last sample: an L0-only event cadence would otherwise flood the
// timeline with one sample per event.  L1 inserts, promotions, spill and
// reaping are the rare transitions §6.2-style waveforms want to see;
// l0_inserts and heap occupancy piggy-back on those samples.
void Simulator::sample_queue_stats() {
  const EventQueue::Stats& s = queue_.stats();
  if (s.l1_inserts == sampled_stats_.l1_inserts &&
      s.heap_inserts == sampled_stats_.heap_inserts &&
      s.l1_promoted == sampled_stats_.l1_promoted &&
      s.l1_cancelled_reaped == sampled_stats_.l1_cancelled_reaped) {
    return;
  }
  sampled_stats_ = s;
  counters_.sample("engine", "wheel_l0_inserts", now_,
                   static_cast<double>(s.l0_inserts));
  counters_.sample("engine", "wheel_l1_inserts", now_,
                   static_cast<double>(s.l1_inserts));
  counters_.sample("engine", "wheel_spill_events", now_,
                   static_cast<double>(s.heap_inserts));
  counters_.sample("engine", "wheel_l1_promoted", now_,
                   static_cast<double>(s.l1_promoted));
  counters_.sample("engine", "heap_size", now_,
                   static_cast<double>(queue_.heap_size()));
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulator::run_until(SimTime deadline) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= deadline) {
    step();
  }
  if (!stopped_) now_ = std::max(now_, deadline);
}

}  // namespace hpcvorx::sim
