// The discrete-event simulation kernel.
//
// A Simulator owns the virtual clock and the pending-event queue.  All
// hardware and operating-system models in this repository are driven from
// it; nothing uses wall-clock time, threads, or nondeterministic ordering.
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/event_queue.hpp"
#include "sim/proc_registry.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace hpcvorx::sim {

class Simulator {
 public:
  /// Claims the thread's ambient-simulator slot if it is free, so Proc
  /// frames created on this thread register here (see proc_registry.hpp).
  /// Single-simulator programs — every test and example before the shard
  /// runtime — get the old process-wide-registry behavior for free.
  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Reclaims every still-suspended sim::Proc frame registered with this
  /// simulator (see proc_registry.hpp).  Processes parked forever —
  /// deadlocked readers, starved senders — have no other owner, and their
  /// frames transitively own the Task frames and captured state they are
  /// awaiting on.  Also drains the thread's fallback registry, preserving
  /// the old global guarantee that teardown leaks nothing.
  ~Simulator();

  /// The simulator bound to the calling thread (nullptr if none): the
  /// shard context that ambient Proc creation resolves against.
  [[nodiscard]] static Simulator* current();

  /// Binds `s` as the calling thread's current simulator for the scope's
  /// lifetime, restoring the previous binding on exit.  ShardRuntime binds
  /// each shard on its worker thread; Node::spawn_process binds the node's
  /// simulator around main-thread setup spawns.
  class ScopedBind {
   public:
    explicit ScopedBind(Simulator& s);
    ~ScopedBind();
    ScopedBind(const ScopedBind&) = delete;
    ScopedBind& operator=(const ScopedBind&) = delete;

   private:
    Simulator* prev_;
  };

  /// Current virtual time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute virtual time `at` (clamped to now()).
  /// The callable binds by rvalue reference so it relocates exactly once,
  /// from the call site into queue storage (see EventQueue::push).
  EventHandle schedule_at(SimTime at, InlineFn&& fn) {
    return queue_.push(std::max(at, now_), std::move(fn));
  }

  /// Schedules `fn` to run `d` after the current time (d clamped to >= 0).
  EventHandle schedule_after(Duration d, InlineFn&& fn) {
    return schedule_at(now_ + std::max<Duration>(d, 0), std::move(fn));
  }

  /// Handle-free variants for events that are never cancelled (the common
  /// case: frame deliveries, coroutine wakeups).  Skipping the handle skips
  /// the per-event cancellation-state allocation — see EventQueue::post.
  /// Inline so a posting call site compiles straight through
  /// EventQueue::post's inline insert chain (no opaque boundary between
  /// the lambda's construction and its landing in the slab).
  void post_at(SimTime at, InlineFn&& fn) {
    queue_.post(std::max(at, now_), std::move(fn));
  }
  void post_after(Duration d, InlineFn&& fn) {
    post_at(now_ + std::max<Duration>(d, 0), std::move(fn));
  }

  /// Runs one pending event.  Returns false if none remain.
  bool step();

  /// Runs until the event queue drains or stop() is called.  Dispatch is
  /// bucket-at-a-time: the queue hands over a whole level-1 frontier
  /// bucket (EventQueue::drain_bucket) and the loop fires the batch
  /// straight-line, paying the head comparison and window bookkeeping once
  /// per bucket instead of once per event.  Firing order, insert routing,
  /// and counter samples are byte-identical to event-at-a-time dispatch
  /// (DESIGN.md §13).
  void run();

  /// Runs events with time <= `deadline`; afterwards now() == deadline
  /// unless the queue drained earlier or stop() was called.  The batch
  /// drain is clipped at `deadline`, so a bucket span straddling the
  /// deadline never overshoots: events past it stay queued for the next
  /// window (the shard runtime's LBTS contract).
  void run_until(SimTime deadline);

  /// Makes run()/run_until() return after the current event completes.
  void stop() { stopped_ = true; }

  /// True if stop() was called during the last run()/run_until() (both
  /// clear the flag on entry).  The shard runtime reads this after each
  /// window to propagate an application stop across shards.
  [[nodiscard]] bool stop_requested() const { return stopped_; }

  /// Number of pending events (upper bound, see EventQueue::size()).
  /// Includes drained-but-unfired batch entries: a run_until() deadline
  /// can split a bucket, leaving the tail of the batch pending for the
  /// next window.
  [[nodiscard]] std::size_t pending_events() const {
    return queue_.size() + batch_.remaining();
  }

  /// Timestamp of the earliest pending event, or `if_empty` when the queue
  /// has drained.  The shard runtime's LBTS reduction reads this between
  /// windows, so drained-but-unfired batch entries count (they are still
  /// pending work); cancelled batch heads are reaped first so they never
  /// pin the LBTS on a phantom instant.
  [[nodiscard]] SimTime next_event_time(SimTime if_empty);

  /// Cumulative events executed by step() (bench: events/s numerator).
  [[nodiscard]] std::uint64_t events_executed() const {
    return events_executed_;
  }

  /// Registry of this simulator's still-suspended Proc frames.
  [[nodiscard]] ProcRegistry& proc_registry() { return registry_; }

  /// Structure-traffic counters of the underlying event queue: which
  /// wheel level (or the heap spill) inserts landed in, and how many
  /// level-1 events were promoted or reaped.  Benches and tests use this
  /// to hold the "slice-end events never spill" property.
  [[nodiscard]] const EventQueue::Stats& queue_stats() const {
    return queue_.stats();
  }

  /// Counter timeline for the trace exporter (disabled by default).
  /// Hardware and OS components sample into it when it is enabled.
  [[nodiscard]] CounterTimeline& counters() { return counters_; }
  [[nodiscard]] const CounterTimeline& counters() const { return counters_; }

  /// Mints an id unique within this simulator (1, 2, 3, ...).  The OS layer
  /// draws owner ids, session ids, and client keys from here instead of
  /// process-wide statics, so ids depend only on allocation order inside
  /// this scheduler — never on other simulators in the process (R6,
  /// shard-readiness).  Ids are only ever compared for equality; 0 and
  /// negative values (e.g. cpu.hpp's kBorrowedContext) stay reserved.
  [[nodiscard]] std::int64_t allocate_id() { return ++next_id_; }

 private:
  void sample_queue_stats();
  /// Fires the earliest pending event with time <= `limit`.  Returns false
  /// when none qualifies.  The hot path walks the current DrainBatch;
  /// refills via EventQueue::drain_bucket when the batch is exhausted, and
  /// falls back to EventQueue::pop() for heap-resident heads and for
  /// queue events that order before the batch head (see
  /// EventQueue::earlier_than).
  bool step_limit(SimTime limit);
  /// The pop()-path half of step_limit, shared by the fallback cases.
  void pop_and_fire();

  SimTime now_ = 0;
  std::int64_t next_id_ = 0;
  std::uint64_t events_executed_ = 0;
  bool stopped_ = false;
  bool claimed_thread_slot_ = false;  // ctor claimed the ambient binding
  EventQueue queue_;
  EventQueue::DrainBatch batch_;  // live frontier bucket, firing cursor inside
  CounterTimeline counters_;
  EventQueue::Stats sampled_stats_;  // last queue_stats() snapshot sampled
  ProcRegistry registry_;
};

}  // namespace hpcvorx::sim
