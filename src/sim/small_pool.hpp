// A size-bucketed free-list recycler for the simulator's small, short-lived
// heap blocks: coroutine frames (sim::Proc, sim::Task — one frame per
// channel write, syscall, or delivery) and the event queue's cancellation
// states.  These are the allocations left on the steady-state path after
// frame payloads moved to hw::FramePool; at a few dozen per simulated
// message they dominate the Table 1/2 wall-clock profile.
//
// Blocks are rounded up to a 64-byte granule and recycled through an
// intrusive per-bucket free list (the freed block's first word is the
// link), so a warm steady state allocates nothing.  Oversized or
// over-aligned requests fall through to ::operator new.
//
// The free lists are per-thread: each shard worker recycles through its
// own lists, so the sharded runtime needs no locks here.  A block freed on
// a different thread than it was allocated on (e.g. a setup-time frame
// reclaimed by a shard) simply migrates to the freeing thread's list —
// blocks are self-contained, so migration is safe, and the runtime's round
// barriers order the reuse.  Under AddressSanitizer the pool is compiled
// out entirely (every request hits ::operator new) so use-after-free
// detection on coroutine frames keeps working in the sanitizer CI job.
#pragma once

#include <cstddef>
#include <new>

namespace hpcvorx::sim {

class SmallBlockPool {
 public:
  static void* allocate(std::size_t bytes) {
#if defined(__SANITIZE_ADDRESS__)
    return ::operator new(bytes);
#else
    const std::size_t b = bucket_of(bytes);
    if (b >= kBuckets) return ::operator new(bytes);
    FreeNode*& head = heads_[b];
    if (head != nullptr) {
      FreeNode* n = head;
      head = n->next;
      return n;
    }
    return ::operator new((b + 1) * kGranule);
#endif
  }

  static void deallocate(void* p, [[maybe_unused]] std::size_t bytes) noexcept {
#if defined(__SANITIZE_ADDRESS__)
    ::operator delete(p);
#else
    const std::size_t b = bucket_of(bytes);
    if (b >= kBuckets) {
      ::operator delete(p);
      return;
    }
    FreeNode* n = static_cast<FreeNode*>(p);
    n->next = heads_[b];
    heads_[b] = n;
#endif
  }

 private:
  // 64-byte granule: coroutine frames cluster in the 128–512 byte range,
  // so a finer granule buys little and a coarser one wastes a cache line
  // per block.  2 KiB cap: anything larger is not a steady-state object.
  static constexpr std::size_t kGranule = 64;
  static constexpr std::size_t kMaxBytes = 2048;
  static constexpr std::size_t kBuckets = kMaxBytes / kGranule;

  struct FreeNode {
    FreeNode* next;
  };

  [[nodiscard]] static std::size_t bucket_of(std::size_t bytes) {
    return bytes == 0 ? 0 : (bytes - 1) / kGranule;
  }

  // Reachable from static storage, so LeakSanitizer sees retained blocks
  // as live; the OS reclaims them at process exit like any allocator pool.
  // vorx-lint: allow(R6) per-thread free lists are this allocator's point — each shard worker owns its own (compiled out under ASan already)
  inline static thread_local FreeNode* heads_[kBuckets] = {};
};

/// Minimal std::allocator replacement routing through SmallBlockPool; lets
/// std::allocate_shared put a control block + payload in a recycled slot
/// (the event queue's per-push cancellation state uses this).
template <typename T>
struct SmallBlockAllocator {
  using value_type = T;
  SmallBlockAllocator() = default;
  template <typename U>
  SmallBlockAllocator(const SmallBlockAllocator<U>&) noexcept {}  // NOLINT
  T* allocate(std::size_t n) {
    return static_cast<T*>(SmallBlockPool::allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    SmallBlockPool::deallocate(p, n * sizeof(T));
  }
  template <typename U>
  bool operator==(const SmallBlockAllocator<U>&) const noexcept {
    return true;
  }
};

}  // namespace hpcvorx::sim
