// A single-producer / single-consumer unbounded FIFO for the shard runtime.
//
// Cross-shard traffic (frontier frames, flow-control credits) moves between
// exactly two threads: the producing shard pushes during its window, the
// consuming shard drains at the next round barrier.  An unbounded linked
// queue with one atomic per end is all that contract needs — ParallelAVL's
// sharding experiments showed one coarse channel per shard pair beats any
// fine-grained shared structure, and the round barrier already bounds the
// queue depth to one window's worth of traffic.
//
// Memory ordering: push publishes the node with a release store to the tail
// link; pop reads it with an acquire load, so the payload written before the
// push is visible to the consumer.  The round barrier additionally orders
// whole windows, so drains never race a producing window — the atomics here
// only cover the (benign) case of a producer running ahead within a window.
//
// This header is part of the shard runtime's own concurrency surface — the
// one place DESIGN.md §11/§12 allow real threads and atomics to appear.
// vorx-lint-file: allow(R3) SPSC channel is shard-runtime machinery (DESIGN.md §12); everything else still schedules through a Simulator
#pragma once

#include <atomic>
#include <cassert>
#include <utility>

namespace hpcvorx::sim {

template <typename T>
class SpscQueue {
 public:
  SpscQueue() : head_(new Node), tail_(head_) {}
  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  ~SpscQueue() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }

  /// Producer side only.
  void push(T v) {
    Node* n = new Node;
    n->value = std::move(v);
    // Publish: the consumer's acquire load of `next` sees `value`.
    tail_->next.store(n, std::memory_order_release);
    tail_ = n;
  }

  /// Consumer side only.  Returns false when the queue is empty.
  bool pop(T& out) {
    Node* next = head_->next.load(std::memory_order_acquire);
    if (next == nullptr) return false;
    out = std::move(next->value);
    delete head_;
    head_ = next;
    return true;
  }

 private:
  // The head node is a consumed sentinel: `head_->next` is the real front.
  struct Node {
    std::atomic<Node*> next{nullptr};
    T value{};
  };

  Node* head_;  // consumer-owned
  Node* tail_;  // producer-owned
};

}  // namespace hpcvorx::sim
