// Coroutine "processes" for the simulator.
//
// A simulated thread of execution (a kernel path, a subprocess, a host
// program) is a C++20 coroutine returning Proc.  Processes are
// fire-and-forget: they start eagerly, run until their first suspension,
// and their frame destroys itself when they finish.  All suspensions go
// through simulator-scheduled events, so execution is single-threaded and
// deterministic.
//
// To wait for a process, have it fulfil a Promise (promise.hpp) or signal a
// Gate (awaitables.hpp) at its end.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <optional>
#include <utility>

#include "sim/proc_registry.hpp"
#include "sim/simulator.hpp"
#include "sim/small_pool.hpp"
#include "sim/time.hpp"

namespace hpcvorx::sim {

/// Return type for simulated-process coroutines.
struct Proc {
  struct promise_type {
    // Frames recycle through the simulator's small-block pool: processes
    // are spawned per message on the hot path (delivery, retransmission),
    // and the pool makes the steady state allocation-free.  The sized
    // overload is the only delete, so every frame returns to its bucket.
    static void* operator new(std::size_t n) {
      return SmallBlockPool::allocate(n);
    }
    static void operator delete(void* p, std::size_t n) noexcept {
      SmallBlockPool::deallocate(p, n);
    }

    // The frame registers with the creating thread's shard context (the
    // bound Simulator's registry) and remembers which registry that was:
    // removal at destruction must target the same one, whichever thread or
    // registry drain triggers it.
    promise_type() : registry_(&ProcRegistry::current()) {
      registry_->add(std::coroutine_handle<promise_type>::from_promise(*this),
                     &registry_slot);
    }
    ~promise_type() { registry_->remove(registry_slot); }
    promise_type(const promise_type&) = delete;
    promise_type& operator=(const promise_type&) = delete;

    Proc get_return_object() noexcept { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    [[noreturn]] void unhandled_exception() noexcept {
      std::fputs("hpcvorx: unhandled exception escaped a sim::Proc\n", stderr);
      std::terminate();
    }

    ProcRegistry* registry_;
    std::size_t registry_slot = 0;
  };
};

/// Awaitable that suspends the current process for `d` of virtual time.
/// A zero-duration delay still yields through the event queue, which gives
/// other ready processes a chance to run (useful as a cooperative yield).
class DelayAwaiter {
 public:
  DelayAwaiter(Simulator& sim, Duration d) : sim_(sim), d_(d) {}
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    sim_.post_after(d_, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}

 private:
  Simulator& sim_;
  Duration d_;
};

/// `co_await delay(sim, usec(5))` — suspend for 5 microseconds.
[[nodiscard]] inline DelayAwaiter delay(Simulator& sim, Duration d) {
  return DelayAwaiter{sim, d};
}

/// `co_await yield(sim)` — let other ready processes run at this instant.
[[nodiscard]] inline DelayAwaiter yield(Simulator& sim) {
  return DelayAwaiter{sim, 0};
}

/// Schedules `h` to resume as its own event at the current instant.
/// Shared helper for every synchronization primitive: resuming through the
/// event queue keeps the C++ call stack flat and ordering deterministic.
inline void resume_later(Simulator& sim, std::coroutine_handle<> h) {
  sim.post_after(0, [h] { h.resume(); });
}

// ---------------------------------------------------------------------------
// Task<T>: a lazy, single-awaiter coroutine returning a value.
//
// Operating-system operations (channel write, open, system call, ...) are
// Task coroutines: they start when awaited, may suspend any number of
// times on simulator primitives, and hand their value straight back to the
// awaiting coroutine by symmetric transfer (no virtual time passes at the
// handoff).  A Task must be awaited exactly once; an unawaited Task never
// runs and releases its frame on destruction.
// ---------------------------------------------------------------------------

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type {
    // Task frames are per-operation (one per write/read/syscall) and
    // recycle through the simulator's small-block pool; see Proc.
    static void* operator new(std::size_t n) {
      return SmallBlockPool::allocate(n);
    }
    static void operator delete(void* p, std::size_t n) noexcept {
      SmallBlockPool::deallocate(p, n);
    }

    Task get_return_object() noexcept {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept {
        auto cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_value(T v) { value.emplace(std::move(v)); }
    [[noreturn]] void unhandled_exception() noexcept {
      std::fputs("hpcvorx: unhandled exception escaped a sim::Task\n", stderr);
      std::terminate();
    }
    std::optional<T> value;
    std::coroutine_handle<> continuation;
  };

  Task(Task&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&&) = delete;
  ~Task() {
    if (h_) h_.destroy();
  }

  struct Awaiter {
    std::coroutine_handle<promise_type> h;
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
      h.promise().continuation = cont;
      return h;  // start the child coroutine now
    }
    T await_resume() {
      assert(h.promise().value.has_value());
      return std::move(*h.promise().value);
    }
  };
  [[nodiscard]] Awaiter operator co_await() {
    assert(h_ && "Task awaited twice or after move");
    return Awaiter{h_};
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  std::coroutine_handle<promise_type> h_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type {
    // See Task<T>: per-operation frames, pooled.
    static void* operator new(std::size_t n) {
      return SmallBlockPool::allocate(n);
    }
    static void operator delete(void* p, std::size_t n) noexcept {
      SmallBlockPool::deallocate(p, n);
    }

    Task get_return_object() noexcept {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept {
        auto cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    [[noreturn]] void unhandled_exception() noexcept {
      std::fputs("hpcvorx: unhandled exception escaped a sim::Task\n", stderr);
      std::terminate();
    }
    std::coroutine_handle<> continuation;
  };

  Task(Task&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&&) = delete;
  ~Task() {
    if (h_) h_.destroy();
  }

  struct Awaiter {
    std::coroutine_handle<promise_type> h;
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
      h.promise().continuation = cont;
      return h;
    }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] Awaiter operator co_await() {
    assert(h_ && "Task awaited twice or after move");
    return Awaiter{h_};
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  std::coroutine_handle<promise_type> h_;
};

}  // namespace hpcvorx::sim
