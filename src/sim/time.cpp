#include "sim/time.hpp"

#include <cstdio>

namespace hpcvorx::sim {

std::string format_duration(Duration d) {
  char buf[64];
  const double ad = d < 0 ? -static_cast<double>(d) : static_cast<double>(d);
  if (ad >= kSecond) {
    std::snprintf(buf, sizeof buf, "%.3fs", to_sec(d));
  } else if (ad >= kMillisecond) {
    std::snprintf(buf, sizeof buf, "%.3fms", to_msec(d));
  } else if (ad >= kMicrosecond) {
    std::snprintf(buf, sizeof buf, "%.1fus", to_usec(d));
  } else {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(d));
  }
  return buf;
}

}  // namespace hpcvorx::sim
