// Virtual-time types for the HPC/VORX discrete-event simulator.
//
// All simulated time is kept in integer nanoseconds.  Integer time makes
// every run bit-for-bit reproducible and keeps event ordering exact; the
// paper's quantities (software latencies in microseconds, link rates in
// Mbit/s) are all representable without rounding surprises.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>

namespace hpcvorx::sim {

/// A point in virtual time, in nanoseconds since simulation start.
using SimTime = std::int64_t;

/// A span of virtual time, in nanoseconds.
using Duration = std::int64_t;

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1'000;
inline constexpr Duration kMillisecond = 1'000'000;
inline constexpr Duration kSecond = 1'000'000'000;

/// Builds a Duration from (possibly fractional) microseconds.
[[nodiscard]] constexpr Duration usec(double us) {
  return static_cast<Duration>(us * static_cast<double>(kMicrosecond) + 0.5);
}

/// Builds a Duration from (possibly fractional) milliseconds.
[[nodiscard]] constexpr Duration msec(double ms) {
  return static_cast<Duration>(ms * static_cast<double>(kMillisecond) + 0.5);
}

/// Builds a Duration from (possibly fractional) seconds.
[[nodiscard]] constexpr Duration sec(double s) {
  return static_cast<Duration>(s * static_cast<double>(kSecond) + 0.5);
}

/// Converts a Duration to fractional microseconds (for reporting).
[[nodiscard]] constexpr double to_usec(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}

/// Converts a Duration to fractional milliseconds (for reporting).
[[nodiscard]] constexpr double to_msec(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

/// Converts a Duration to fractional seconds (for reporting).
[[nodiscard]] constexpr double to_sec(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Human-readable rendering, e.g. "303.0us" or "2.13s".
[[nodiscard]] std::string format_duration(Duration d);

}  // namespace hpcvorx::sim
