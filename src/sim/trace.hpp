// Execution-time accounting shared by the CPU model and the monitoring
// tools (software oscilloscope, prof).
//
// The categories follow §6.2 of the paper: user code, operating-system
// code, and idle time subdivided by *why* the processor is idle (waiting
// for input, for output, a mix of both across threads, or something else).
// Context-switch time is kept in its own bucket so the §5 experiments can
// report it; the oscilloscope folds it into system time, as `prof` on the
// real machine would have.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace hpcvorx::sim {

enum class Category : std::uint8_t {
  kUser = 0,
  kSystem,
  kContextSwitch,
  kIdleInput,
  kIdleOutput,
  kIdleMixed,
  kIdleOther,
};

inline constexpr std::size_t kNumCategories = 7;

[[nodiscard]] constexpr std::string_view category_name(Category c) {
  switch (c) {
    case Category::kUser: return "user";
    case Category::kSystem: return "system";
    case Category::kContextSwitch: return "ctxsw";
    case Category::kIdleInput: return "idle-input";
    case Category::kIdleOutput: return "idle-output";
    case Category::kIdleMixed: return "idle-mixed";
    case Category::kIdleOther: return "idle-other";
  }
  return "?";
}

[[nodiscard]] constexpr bool is_idle(Category c) {
  return c == Category::kIdleInput || c == Category::kIdleOutput ||
         c == Category::kIdleMixed || c == Category::kIdleOther;
}

/// One contiguous span of CPU time attributed to a category.
struct Interval {
  SimTime start;
  SimTime end;
  Category category;
};

/// Per-CPU record of how execution time was spent.  Totals are always
/// maintained; the interval list (needed only by the oscilloscope) is
/// recorded when enabled, to keep long benchmark runs cheap.
class TimeLedger {
 public:
  void add(SimTime start, SimTime end, Category cat) {
    if (end <= start) return;
    totals_[static_cast<std::size_t>(cat)] += end - start;
    if (recording_) intervals_.push_back({start, end, cat});
  }

  [[nodiscard]] Duration total(Category cat) const {
    return totals_[static_cast<std::size_t>(cat)];
  }

  /// Sum over every category (== elapsed time covered by the ledger).
  [[nodiscard]] Duration grand_total() const {
    Duration t = 0;
    for (Duration d : totals_) t += d;
    return t;
  }

  [[nodiscard]] Duration busy_total() const {
    return total(Category::kUser) + total(Category::kSystem) +
           total(Category::kContextSwitch);
  }

  void enable_recording(bool on) { recording_ = on; }
  [[nodiscard]] bool recording() const { return recording_; }
  [[nodiscard]] const std::vector<Interval>& intervals() const { return intervals_; }
  void clear() {
    totals_.fill(0);
    intervals_.clear();
  }

 private:
  std::array<Duration, kNumCategories> totals_{};
  std::vector<Interval> intervals_;
  bool recording_ = false;
};

/// Opt-in timeline of named hardware/OS counters (queue depths, cumulative
/// messages/bytes, blocked time, context switches).  Components sample into
/// the Simulator's timeline whenever a counter changes; the trace exporter
/// (src/tools/trace_export.hpp) turns the samples into Chrome trace_event
/// counter tracks.  Disabled by default so long benchmark runs pay only a
/// branch per change; all timestamps are virtual time.
class CounterTimeline {
 public:
  struct Sample {
    std::string track;    // the emitting entity, e.g. "node0", "link:n0->c0"
    std::string counter;  // e.g. "txq_depth", "bytes", "blocked_us"
    SimTime t;
    double value;
  };

  /// What to do when the sample count reaches the configured cap.
  /// Long-running simulations with counters on used to grow without bound;
  /// a bounded policy keeps memory flat at the cost of history:
  ///   * kUnbounded — keep everything (the default, and the only mode in
  ///     which exported traces are complete);
  ///   * kRing      — drop the oldest samples, keeping the most recent cap;
  ///   * kDecimate  — halve resolution: record only every 2^k-th sample,
  ///     doubling k whenever the buffer fills, so the retained set stays
  ///     uniformly spaced over the whole run at progressively coarser
  ///     grain (per-position, not per-track).
  enum class Retention { kUnbounded, kRing, kDecimate };

  void enable(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Bounds the timeline at `max_samples` under `policy`.  Passing
  /// kUnbounded ignores max_samples.  Compaction is amortized: it runs
  /// only when the buffer hits the cap and removes half of it, so sample()
  /// stays O(1) amortized.
  void set_retention(Retention policy, std::size_t max_samples = 0) {
    policy_ = policy;
    max_samples_ = max_samples;
    if (policy_ != Retention::kUnbounded && max_samples_ < 2) max_samples_ = 2;
    compact_if_needed();
  }
  [[nodiscard]] Retention retention() const { return policy_; }

  /// Samples discarded by the retention policy so far (0 when unbounded).
  [[nodiscard]] std::uint64_t samples_dropped() const { return dropped_; }

  /// Records one sample (no-op while disabled).  Samples are kept in
  /// insertion order, which is chronological: the simulator's clock never
  /// goes backwards.
  void sample(std::string_view track, std::string_view counter, SimTime t,
              double value) {
    if (!enabled_) return;
    if (policy_ == Retention::kDecimate &&
        (sample_index_++ % decimate_stride_) != 0) {
      ++dropped_;
      return;
    }
    samples_.push_back(
        Sample{std::string(track), std::string(counter), t, value});
    compact_if_needed();
  }

  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }
  void clear() {
    samples_.clear();
    dropped_ = 0;
    decimate_stride_ = 1;
    sample_index_ = 0;
  }

 private:
  void compact_if_needed() {
    if (policy_ == Retention::kUnbounded || samples_.size() < max_samples_) {
      return;
    }
    const std::size_t before = samples_.size();
    if (policy_ == Retention::kRing) {
      // Keep the newest half of the cap.
      const std::size_t keep = max_samples_ / 2;
      samples_.erase(
          samples_.begin(),
          samples_.begin() + static_cast<std::ptrdiff_t>(before - keep));
    } else {
      // kDecimate: the retained samples sit at a uniform stride, so
      // keeping the even positions halves the density everywhere while
      // preserving the span — and new arrivals thin out to match via the
      // doubled recording stride.
      std::size_t w = 0;
      for (std::size_t r = 0; r < before; r += 2) {
        samples_[w++] = std::move(samples_[r]);
      }
      samples_.resize(w);
      decimate_stride_ *= 2;
    }
    dropped_ += before - samples_.size();
  }

  bool enabled_ = false;
  Retention policy_ = Retention::kUnbounded;
  std::size_t max_samples_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t decimate_stride_ = 1;  // record every Nth sample (kDecimate)
  std::uint64_t sample_index_ = 0;
  std::vector<Sample> samples_;
};

}  // namespace hpcvorx::sim
