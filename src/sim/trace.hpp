// Execution-time accounting shared by the CPU model and the monitoring
// tools (software oscilloscope, prof).
//
// The categories follow §6.2 of the paper: user code, operating-system
// code, and idle time subdivided by *why* the processor is idle (waiting
// for input, for output, a mix of both across threads, or something else).
// Context-switch time is kept in its own bucket so the §5 experiments can
// report it; the oscilloscope folds it into system time, as `prof` on the
// real machine would have.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace hpcvorx::sim {

enum class Category : std::uint8_t {
  kUser = 0,
  kSystem,
  kContextSwitch,
  kIdleInput,
  kIdleOutput,
  kIdleMixed,
  kIdleOther,
};

inline constexpr std::size_t kNumCategories = 7;

[[nodiscard]] constexpr std::string_view category_name(Category c) {
  switch (c) {
    case Category::kUser: return "user";
    case Category::kSystem: return "system";
    case Category::kContextSwitch: return "ctxsw";
    case Category::kIdleInput: return "idle-input";
    case Category::kIdleOutput: return "idle-output";
    case Category::kIdleMixed: return "idle-mixed";
    case Category::kIdleOther: return "idle-other";
  }
  return "?";
}

[[nodiscard]] constexpr bool is_idle(Category c) {
  return c == Category::kIdleInput || c == Category::kIdleOutput ||
         c == Category::kIdleMixed || c == Category::kIdleOther;
}

/// One contiguous span of CPU time attributed to a category.
struct Interval {
  SimTime start;
  SimTime end;
  Category category;
};

/// Per-CPU record of how execution time was spent.  Totals are always
/// maintained; the interval list (needed only by the oscilloscope) is
/// recorded when enabled, to keep long benchmark runs cheap.
class TimeLedger {
 public:
  void add(SimTime start, SimTime end, Category cat) {
    if (end <= start) return;
    totals_[static_cast<std::size_t>(cat)] += end - start;
    if (recording_) intervals_.push_back({start, end, cat});
  }

  [[nodiscard]] Duration total(Category cat) const {
    return totals_[static_cast<std::size_t>(cat)];
  }

  /// Sum over every category (== elapsed time covered by the ledger).
  [[nodiscard]] Duration grand_total() const {
    Duration t = 0;
    for (Duration d : totals_) t += d;
    return t;
  }

  [[nodiscard]] Duration busy_total() const {
    return total(Category::kUser) + total(Category::kSystem) +
           total(Category::kContextSwitch);
  }

  void enable_recording(bool on) { recording_ = on; }
  [[nodiscard]] bool recording() const { return recording_; }
  [[nodiscard]] const std::vector<Interval>& intervals() const { return intervals_; }
  void clear() {
    totals_.fill(0);
    intervals_.clear();
  }

 private:
  std::array<Duration, kNumCategories> totals_{};
  std::vector<Interval> intervals_;
  bool recording_ = false;
};

/// Opt-in timeline of named hardware/OS counters (queue depths, cumulative
/// messages/bytes, blocked time, context switches).  Components sample into
/// the Simulator's timeline whenever a counter changes; the trace exporter
/// (src/tools/trace_export.hpp) turns the samples into Chrome trace_event
/// counter tracks.  Disabled by default so long benchmark runs pay only a
/// branch per change; all timestamps are virtual time.
class CounterTimeline {
 public:
  struct Sample {
    std::string track;    // the emitting entity, e.g. "node0", "link:n0->c0"
    std::string counter;  // e.g. "txq_depth", "bytes", "blocked_us"
    SimTime t;
    double value;
  };

  void enable(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Records one sample (no-op while disabled).  Samples are kept in
  /// insertion order, which is chronological: the simulator's clock never
  /// goes backwards.
  void sample(std::string_view track, std::string_view counter, SimTime t,
              double value) {
    if (!enabled_) return;
    samples_.push_back(
        Sample{std::string(track), std::string(counter), t, value});
  }

  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }
  void clear() { samples_.clear(); }

 private:
  bool enabled_ = false;
  std::vector<Sample> samples_;
};

}  // namespace hpcvorx::sim
