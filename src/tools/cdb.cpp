#include "tools/cdb.hpp"

#include <cstdio>
#include <map>
#include <set>

namespace hpcvorx::tools {

std::vector<ChannelReport> Cdb::snapshot() const {
  std::vector<ChannelReport> out;
  const int stations = sys_.num_nodes() + sys_.num_hosts();
  for (int s = 0; s < stations; ++s) {
    vorx::Node& node = sys_.station(s);
    for (const auto& ch : node.channels().channels()) {
      ChannelReport r;
      r.name = ch->name();
      r.id = ch->id();
      r.local = s;
      r.peer = ch->peer();
      r.local_node = node.name();
      r.sent = ch->messages_sent();
      r.received = ch->messages_received();
      r.queued = ch->queued();
      r.reader_blocked = ch->reader_blocked();
      r.writer_blocked = ch->writer_blocked();
      if (ch->blocked_reader() != nullptr) {
        r.blocked_thread = ch->blocked_reader()->name();
      } else if (ch->blocked_writer() != nullptr) {
        r.blocked_thread = ch->blocked_writer()->name();
      }
      out.push_back(std::move(r));
    }
  }
  return out;
}

std::vector<ChannelReport> Cdb::by_name(const std::vector<ChannelReport>& in,
                                        const std::string& substring) {
  return where(in, [&](const ChannelReport& r) {
    return r.name.find(substring) != std::string::npos;
  });
}

std::vector<ChannelReport> Cdb::blocked_only(
    const std::vector<ChannelReport>& in) {
  return where(in, [](const ChannelReport& r) {
    return r.reader_blocked || r.writer_blocked;
  });
}

std::vector<ChannelReport> Cdb::by_station(const std::vector<ChannelReport>& in,
                                           hw::StationId station) {
  return where(in,
               [&](const ChannelReport& r) { return r.local == station; });
}

std::vector<ChannelReport> Cdb::where(
    const std::vector<ChannelReport>& in,
    const std::function<bool(const ChannelReport&)>& pred) {
  std::vector<ChannelReport> out;
  for (const ChannelReport& r : in) {
    if (pred(r)) out.push_back(r);
  }
  return out;
}

Cdb::Deadlock Cdb::find_deadlock() const {
  // Wait-for edges between stations.
  std::map<hw::StationId, std::set<hw::StationId>> waits;
  for (const ChannelReport& r : snapshot()) {
    if (r.reader_blocked && r.queued == 0) waits[r.local].insert(r.peer);
  }
  // DFS cycle detection.
  std::map<hw::StationId, int> color;  // 0 white, 1 grey, 2 black
  std::vector<hw::StationId> stack;
  Deadlock result;
  std::function<bool(hw::StationId)> dfs = [&](hw::StationId v) {
    color[v] = 1;
    stack.push_back(v);
    static const std::set<hw::StationId> kNone;
    const auto it = waits.find(v);
    for (hw::StationId w : it == waits.end() ? kNone : it->second) {
      if (color[w] == 1) {
        // Found a cycle: slice it out of the stack.
        auto it = std::find(stack.begin(), stack.end(), w);
        result.found = true;
        result.cycle.assign(it, stack.end());
        return true;
      }
      if (color[w] == 0 && dfs(w)) return true;
    }
    color[v] = 2;
    stack.pop_back();
    return false;
  };
  for (const auto& [v, _] : waits) {
    if (color[v] == 0 && dfs(v)) break;
  }
  return result;
}

std::string Cdb::render(const std::vector<ChannelReport>& in) {
  std::string out =
      "CHANNEL              ID        LOCAL  PEER  SENT  RECV  QUEUED  STATE\n";
  char line[256];
  for (const ChannelReport& r : in) {
    std::string state = "idle";
    if (r.reader_blocked) state = "blocked-read(" + r.blocked_thread + ")";
    if (r.writer_blocked) state = "blocked-write(" + r.blocked_thread + ")";
    std::snprintf(line, sizeof line, "%-20s %-9llu %-6d %-5d %-5llu %-5llu %-7zu %s\n",
                  r.name.c_str(), static_cast<unsigned long long>(r.id),
                  r.local, r.peer, static_cast<unsigned long long>(r.sent),
                  static_cast<unsigned long long>(r.received), r.queued,
                  state.c_str());
    out += line;
  }
  return out;
}

}  // namespace hpcvorx::tools
