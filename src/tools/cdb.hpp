// cdb — the VORX communications debugger (§6.1).
//
// "The VORX communications debugger, cdb, helps debug such deadlocked
// applications by allowing the programmer to examine the communications
// state of the application.  For each channel, the state reported by cdb
// consists of the name of the channel, which two processes it connects,
// how many messages have been sent in each direction on the channel and
// most importantly, the state of each end of the channel ... whether an
// application is blocked waiting for input or output on the channel.
// Because an application may have a large number of channels, cdb includes
// several filters to help isolate the channels of interest."
//
// As on the real system, "most of the information that it needs was
// already encoded in the communications driver": Cdb only reads the
// ChannelService state that the protocol keeps anyway.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "vorx/system.hpp"

namespace hpcvorx::tools {

struct ChannelReport {
  std::string name;
  std::uint64_t id = 0;
  hw::StationId local = -1;
  hw::StationId peer = -1;
  std::string local_node;
  std::uint64_t sent = 0;       // messages local -> peer
  std::uint64_t received = 0;   // messages peer -> local
  std::size_t queued = 0;       // buffered, unread messages at this end
  bool reader_blocked = false;
  bool writer_blocked = false;
  std::string blocked_thread;   // name of the blocked subprocess, if any
};

class Cdb {
 public:
  explicit Cdb(vorx::System& sys) : sys_(sys) {}

  /// Snapshot of every channel end in the system.
  [[nodiscard]] std::vector<ChannelReport> snapshot() const;

  // ---- filters (§6.1: "several filters to help isolate the channels") ----
  [[nodiscard]] static std::vector<ChannelReport> by_name(
      const std::vector<ChannelReport>& in, const std::string& substring);
  [[nodiscard]] static std::vector<ChannelReport> blocked_only(
      const std::vector<ChannelReport>& in);
  [[nodiscard]] static std::vector<ChannelReport> by_station(
      const std::vector<ChannelReport>& in, hw::StationId station);
  [[nodiscard]] static std::vector<ChannelReport> where(
      const std::vector<ChannelReport>& in,
      const std::function<bool(const ChannelReport&)>& pred);

  /// Wait-for cycle detection over stations: station A waits for B when a
  /// thread on A is blocked reading a channel whose peer is B (and nothing
  /// is queued for it).  A cycle is the §6.1 deadlock signature.
  struct Deadlock {
    bool found = false;
    std::vector<hw::StationId> cycle;  // stations around the cycle
  };
  [[nodiscard]] Deadlock find_deadlock() const;

  /// Human-readable table (what the interactive tool printed).
  [[nodiscard]] static std::string render(const std::vector<ChannelReport>& in);

 private:
  vorx::System& sys_;
};

}  // namespace hpcvorx::tools
