#include "tools/lint/lexer.hpp"

#include <cctype>
#include <cstddef>
#include <utility>

namespace hpcvorx::lint {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

namespace {

// Parses "vorx-lint: allow(R1,R3) reason" directives out of one comment
// line, recording them against `line`.
void harvest_directives(const std::string& comment, int line,
                        Suppressions& sup) {
  for (std::size_t pos = 0;
       (pos = comment.find("vorx-lint", pos)) != std::string::npos;) {
    std::size_t cursor = pos + 9;  // past "vorx-lint"
    const bool whole_file = comment.compare(cursor, 5, "-file") == 0;
    if (whole_file) cursor += 5;
    pos = cursor;
    while (cursor < comment.size() &&
           (comment[cursor] == ':' || comment[cursor] == ' '))
      ++cursor;
    if (comment.compare(cursor, 6, "allow(") != 0) continue;
    cursor += 6;
    std::size_t close = comment.find(')', cursor);
    if (close == std::string::npos) continue;
    std::string list = comment.substr(cursor, close - cursor);
    std::string id;
    auto flush = [&] {
      if (id.empty()) return;
      if (whole_file)
        sup.file_rules.insert(id);
      else
        sup.line_rules[line].insert(id);
      id.clear();
    };
    for (char c : list) {
      if (c == ',' || c == ' ')
        flush();
      else
        id += c;
    }
    flush();
    pos = close;
  }
}

// The scanner proper.  Operates on the spliced text (backslash-newline
// already removed) with a per-character physical-line map, so every
// consumer — comments, strings, directives — sees logical lines while
// diagnostics keep physical line numbers.
class Scanner {
 public:
  Scanner(const std::string& raw, LexedSource& out) : out_(out) {
    // Phase 2: delete each backslash-newline, keeping the line map exact.
    s_.reserve(raw.size());
    lines_.reserve(raw.size());
    int line = 1;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] == '\\' && i + 1 < raw.size() &&
          (raw[i + 1] == '\n' ||
           (raw[i + 1] == '\r' && i + 2 < raw.size() && raw[i + 2] == '\n'))) {
        i += raw[i + 1] == '\n' ? 1 : 2;
        ++line;
        continue;
      }
      s_ += raw[i];
      lines_.push_back(line);
      if (raw[i] == '\n') ++line;
    }
  }

  void run() {
    bool at_line_start = true;
    while (i_ < s_.size()) {
      const char c = s_[i_];
      if (c == '\n') {
        at_line_start = true;
        ++i_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i_;
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        line_comment();
        continue;  // comment runs to the newline; at_line_start unchanged
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      if (c == '#' && at_line_start) {
        preprocessor_line();
        at_line_start = false;
        continue;
      }
      at_line_start = false;
      if (ident_start(c)) {
        identifier_or_literal_prefix();
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
        number();
      } else if (c == '"') {
        string_literal();
      } else if (c == '\'' && !(i_ > 0 && ident_char(s_[i_ - 1]))) {
        char_literal();
      } else {
        punct();
      }
    }
  }

 private:
  [[nodiscard]] char peek(std::size_t ahead) const {
    return i_ + ahead < s_.size() ? s_[i_ + ahead] : '\0';
  }
  [[nodiscard]] int line_at(std::size_t i) const {
    return i < lines_.size() ? lines_[i]
                             : (lines_.empty() ? 1 : lines_.back());
  }

  void emit(Token::Kind kind, std::string text, int line, bool angled = false) {
    out_.tokens.push_back(Token{kind, std::move(text), line, angled});
  }

  // Harvests suppression directives from comment body [a, b), splitting at
  // newlines so a directive inside a block comment lands on its own line.
  void harvest_range(std::size_t a, std::size_t b) {
    std::size_t seg = a;
    for (std::size_t k = a; k <= b; ++k) {
      if (k == b || s_[k] == '\n') {
        if (k > seg)
          harvest_directives(s_.substr(seg, k - seg), line_at(seg), out_.sup);
        seg = k + 1;
      }
    }
  }

  void line_comment() {
    std::size_t end = s_.find('\n', i_);
    if (end == std::string::npos) end = s_.size();
    harvest_range(i_, end);
    i_ = end;  // leave the newline for the main loop (sets at_line_start)
  }

  void block_comment() {
    std::size_t end = s_.find("*/", i_ + 2);
    end = end == std::string::npos ? s_.size() : end + 2;
    harvest_range(i_, end);
    i_ = end;
  }

  // Consumes a whole preprocessor directive.  #include contributes one
  // kHeader token; everything else contributes nothing, so macro bodies
  // never reach the statement/scope analysis.  Trailing comments are still
  // scanned for suppression directives.
  void preprocessor_line() {
    ++i_;  // '#'
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t')) ++i_;
    std::size_t d = i_;
    while (d < s_.size() && ident_char(s_[d])) ++d;
    const std::string directive = s_.substr(i_, d - i_);
    i_ = d;
    if (directive == "include") {
      while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t')) ++i_;
      if (i_ < s_.size() && (s_[i_] == '<' || s_[i_] == '"')) {
        const char close = s_[i_] == '<' ? '>' : '"';
        const bool angled = s_[i_] == '<';
        const int line = line_at(i_);
        std::size_t end = s_.find(close, i_ + 1);
        if (end != std::string::npos) {
          emit(Token::Kind::kHeader, s_.substr(i_ + 1, end - i_ - 1), line,
               angled);
          i_ = end + 1;
        }
      }
    }
    // Skim the rest of the directive, honoring comments (directive
    // suppressions like `#include <x>  // vorx-lint: allow(R1) ...` must
    // still be harvested) and quoted text (a "//" inside a macro string
    // must not eat the line).
    while (i_ < s_.size() && s_[i_] != '\n') {
      if (s_[i_] == '/' && peek(1) == '/') {
        line_comment();
        return;
      }
      if (s_[i_] == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      if (s_[i_] == '"' || s_[i_] == '\'') {
        const char q = s_[i_++];
        while (i_ < s_.size() && s_[i_] != q && s_[i_] != '\n') {
          if (s_[i_] == '\\') ++i_;
          if (i_ < s_.size()) ++i_;
        }
        if (i_ < s_.size() && s_[i_] == q) ++i_;
        continue;
      }
      ++i_;
    }
  }

  void identifier_or_literal_prefix() {
    const std::size_t start = i_;
    while (i_ < s_.size() && ident_char(s_[i_])) ++i_;
    const std::string id = s_.substr(start, i_ - start);
    const char next = i_ < s_.size() ? s_[i_] : '\0';
    const bool is_str_prefix =
        id == "u" || id == "u8" || id == "L" || id == "U";
    const bool is_raw_prefix = id == "R" || id == "uR" || id == "u8R" ||
                               id == "LR" || id == "UR";
    if (next == '"' && is_raw_prefix) {
      raw_string(line_at(start));
      return;
    }
    if (next == '"' && is_str_prefix) {
      string_literal();
      return;
    }
    if (next == '\'' && is_str_prefix) {
      char_literal();
      return;
    }
    emit(Token::Kind::kIdent, id, line_at(start));
  }

  void number() {
    const std::size_t start = i_;
    ++i_;
    while (i_ < s_.size()) {
      const char c = s_[i_];
      if (ident_char(c) || c == '.' || c == '\'' ||
          ((c == '+' || c == '-') &&
           (s_[i_ - 1] == 'e' || s_[i_ - 1] == 'E' || s_[i_ - 1] == 'p' ||
            s_[i_ - 1] == 'P'))) {
        ++i_;
      } else {
        break;
      }
    }
    emit(Token::Kind::kNumber, s_.substr(start, i_ - start), line_at(start));
  }

  void string_literal() {
    const int line = line_at(i_);
    ++i_;  // opening quote
    while (i_ < s_.size() && s_[i_] != '"') {
      if (s_[i_] == '\\') ++i_;
      if (i_ < s_.size()) ++i_;
    }
    if (i_ < s_.size()) ++i_;  // closing quote
    emit(Token::Kind::kString, {}, line);
  }

  void char_literal() {
    const int line = line_at(i_);
    ++i_;
    while (i_ < s_.size() && s_[i_] != '\'') {
      if (s_[i_] == '\\') ++i_;
      if (i_ < s_.size()) ++i_;
    }
    if (i_ < s_.size()) ++i_;
    emit(Token::Kind::kChar, {}, line);
  }

  // i_ points at the '"' after the raw-string prefix.  Everything up to
  // the )delim" terminator — quotes, comment starters, banned identifiers —
  // is literal content and becomes one empty kString token.
  void raw_string(int line) {
    std::size_t paren = s_.find('(', i_ + 1);
    if (paren == std::string::npos) {
      ++i_;
      return;
    }
    std::string delim;
    delim.reserve(paren - i_ + 1);
    delim += ')';
    delim.append(s_, i_ + 1, paren - i_ - 1);
    delim += '"';
    std::size_t end = s_.find(delim, paren + 1);
    i_ = end == std::string::npos ? s_.size() : end + delim.size();
    emit(Token::Kind::kString, {}, line);
  }

  void punct() {
    const int line = line_at(i_);
    if (i_ + 1 < s_.size()) {
      const std::string two = s_.substr(i_, 2);
      if (two == "::" || two == "->") {
        emit(Token::Kind::kPunct, two, line);
        i_ += 2;
        return;
      }
    }
    emit(Token::Kind::kPunct, std::string(1, s_[i_]), line);
    ++i_;
  }

  LexedSource& out_;
  std::string s_;           // spliced text
  std::vector<int> lines_;  // physical line of each spliced character
  std::size_t i_ = 0;
};

}  // namespace

LexedSource lex(std::string path, const std::string& text) {
  LexedSource out;
  out.path = std::move(path);
  Scanner scanner(text, out);
  scanner.run();
  return out;
}

}  // namespace hpcvorx::lint
