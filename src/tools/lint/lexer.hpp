// vorx-lint lexing layer: one pass from raw source text to a token stream
// with file:line provenance.
//
// The lexer owns every textual concern so the model and rule layers never
// see raw characters:
//   * comments are consumed (// with backslash-newline continuation,
//     /* ... */ across lines) and their text is harvested for
//     vorx-lint suppression directives;
//   * string and character literals — including R"delim(...)delim" raw
//     strings — become single kString/kChar tokens with empty text, so a
//     banned identifier quoted in prose can never match a rule;
//   * backslash-newline splices are resolved (phase-2 translation), so a
//     spliced comment swallows its continuation lines like a compiler;
//   * preprocessor directives are consumed whole: an #include becomes one
//     kHeader token carrying the header path, every other directive
//     (#define, #pragma, #if...) contributes no tokens at all, keeping
//     macro bodies out of the statement/scope analysis;
//   * line numbers count physical lines, surviving splices, block
//     comments, and raw-string newlines.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace hpcvorx::lint {

struct Token {
  enum class Kind {
    kIdent,   // identifier or keyword
    kNumber,  // numeric literal (digit separators and exponents folded in)
    kPunct,   // one punctuator; "::" and "->" are single tokens
    kString,  // string literal (raw or not); text is empty
    kChar,    // character literal; text is empty
    kHeader,  // #include header-name; text is the path, angled says <> vs ""
  };
  Kind kind = Kind::kPunct;
  std::string text;
  int line = 0;
  bool angled = false;  // kHeader only
};

/// Suppression directives harvested from comments:
///   // vorx-lint: allow(R1) <reason>         — this line and the next
///   // vorx-lint-file: allow(R1,R3) <reason> — the whole file
struct Suppressions {
  std::set<std::string> file_rules;
  // line -> rules allowed on that line (directives also cover line + 1).
  std::map<int, std::set<std::string>> line_rules;

  [[nodiscard]] bool allows(const std::string& rule, int line) const {
    if (file_rules.count(rule)) return true;
    for (int l : {line, line - 1}) {
      auto it = line_rules.find(l);
      if (it != line_rules.end() && it->second.count(rule)) return true;
    }
    return false;
  }
};

/// One lexed translation unit.  `path` is the repo-relative path ("src/"
/// prefix optional) used for diagnostics and layer assignment.
struct LexedSource {
  std::string path;
  std::vector<Token> tokens;
  Suppressions sup;
};

[[nodiscard]] LexedSource lex(std::string path, const std::string& text);

[[nodiscard]] bool ident_start(char c);
[[nodiscard]] bool ident_char(char c);

}  // namespace hpcvorx::lint
