#include "tools/lint/linter.hpp"

#include <algorithm>
#include <utility>

#include "tools/lint/lexer.hpp"
#include "tools/lint/model.hpp"

namespace hpcvorx::lint {

void Linter::add_source(std::string path, std::string text) {
  lexed_.push_back(lex(std::move(path), text));
}

std::vector<Diagnostic> Linter::run() {
  Model model(lexed_);  // copy: run() stays callable more than once
  std::vector<Diagnostic> all = run_rules(model);

  // Suppression filtering: every rule pass emits unconditionally; the
  // directives harvested by the lexer decide what survives.
  std::vector<Diagnostic> diags;
  diags.reserve(all.size());
  for (auto& d : all) {
    const Suppressions* sup = nullptr;
    for (const LexedSource& src : model.sources()) {
      if (src.path == d.file) {
        sup = &src.sup;
        break;
      }
    }
    if (sup && sup->allows(d.rule, d.line)) continue;
    diags.push_back(std::move(d));
  }

  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  return diags;
}

}  // namespace hpcvorx::lint
