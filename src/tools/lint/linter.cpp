#include "tools/lint/linter.hpp"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace hpcvorx::lint {
namespace {

// ---------------------------------------------------------------------------
// Rule catalogue
// ---------------------------------------------------------------------------

const std::vector<RuleInfo> kRules = {
    {"R1", "determinism",
     "Simulated runs must be bit-identical across reruns and machines.  Any "
     "wall-clock read, libc PRNG, std::random_device, or environment lookup "
     "injects state the experiment configuration does not control.",
     "Derive all randomness from sim::Rng seeded by the experiment config, "
     "and all time from the simulator's virtual clock (sim::SimTime)."},
    {"R2", "coroutine-safety",
     "Every suspension must be owned by the simulator.  A coroutine with a "
     "non-Task/Proc return type silently compiles to something never "
     "scheduled; a capturing-lambda coroutine keeps references into a "
     "closure frame that dies before the coroutine does (lifetime UB); a "
     "discarded sim::Task never runs at all.",
     "Return sim::Task<...> (awaited work) or sim::Proc (fire-and-forget "
     "process); hoist lambda coroutines into named functions taking the "
     "captured state as parameters; co_await every Task you create."},
    {"R3", "no-real-concurrency",
     "The simulator is single-threaded by design: determinism comes from a "
     "totally ordered event queue.  OS threads, mutexes, or blocking sleeps "
     "reintroduce scheduler nondeterminism and stall virtual time.",
     "Model concurrency as coroutines; replace every blocking wait with "
     "co_await delay(sim, d) or a sim synchronization primitive."},
    {"R4", "layering",
     "The include graph must respect sim < hw < vorx < {apps, tools} so the "
     "Meglos-vs-VORX pairing stays swappable: sim knows nothing of hardware "
     "models, hw nothing of the OS, vorx nothing of applications.",
     "Move shared declarations down a layer, or invert the dependency with "
     "a callback/interface owned by the lower layer."},
    {"R5", "hot-path-allocation",
     "Steady-state frame payloads in the hw/ and vorx/ layers must come "
     "from hw::FramePool.  Every make_payload or make_shared<vector<byte>> "
     "there mints a fresh control block plus byte buffer per frame — "
     "exactly the per-event allocation traffic the pool exists to absorb "
     "(tests, apps, and tools are exempt: they are not on the hot path).",
     "Build payloads through the fabric's pool: frame_pool().buffer() + "
     "frame_pool().make(std::move(bytes)), or frame_pool().make_copy(p, n)."},
};

// ---------------------------------------------------------------------------
// Lexing: comment/string stripping, suppression harvesting, tokens
// ---------------------------------------------------------------------------

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

struct Suppressions {
  std::set<std::string> file_rules;
  // line -> rules allowed on that line (directives also cover line + 1).
  std::map<int, std::set<std::string>> line_rules;

  bool allows(const std::string& rule, int line) const {
    if (file_rules.count(rule)) return true;
    for (int l : {line, line - 1}) {
      auto it = line_rules.find(l);
      if (it != line_rules.end() && it->second.count(rule)) return true;
    }
    return false;
  }
};

// Parses "vorx-lint: allow(R1,R3) reason" directives out of one comment.
void harvest_directives(const std::string& comment, int line, Suppressions& sup) {
  for (std::size_t pos = 0; (pos = comment.find("vorx-lint", pos)) != std::string::npos;) {
    std::size_t cursor = pos + 9;  // past "vorx-lint"
    const bool whole_file = comment.compare(cursor, 5, "-file") == 0;
    if (whole_file) cursor += 5;
    pos = cursor;
    while (cursor < comment.size() && (comment[cursor] == ':' || comment[cursor] == ' '))
      ++cursor;
    if (comment.compare(cursor, 6, "allow(") != 0) continue;
    cursor += 6;
    std::size_t close = comment.find(')', cursor);
    if (close == std::string::npos) continue;
    std::string list = comment.substr(cursor, close - cursor);
    std::string id;
    auto flush = [&] {
      if (id.empty()) return;
      if (whole_file)
        sup.file_rules.insert(id);
      else
        sup.line_rules[line].insert(id);
      id.clear();
    };
    for (char c : list) {
      if (c == ',' || c == ' ')
        flush();
      else
        id += c;
    }
    flush();
    pos = close;
  }
}

// Replaces comments with spaces (newlines kept so line numbers survive),
// harvesting suppression directives from the comment text on the way out.
std::string strip_comments(const std::string& text, Suppressions& sup) {
  std::string out;
  out.reserve(text.size());
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    char c = text[i];
    if (c == '\n') {
      out += '\n';
      ++line;
      ++i;
    } else if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      std::size_t end = text.find('\n', i);
      if (end == std::string::npos) end = n;
      harvest_directives(text.substr(i, end - i), line, sup);
      out.append(end - i, ' ');
      i = end;
    } else if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      std::size_t end = text.find("*/", i + 2);
      if (end == std::string::npos) end = n; else end += 2;
      int comment_line = line;
      std::string body = text.substr(i, end - i);
      // A directive inside a block comment applies to the line it sits on.
      std::size_t line_start = 0;
      for (std::size_t k = 0; k <= body.size(); ++k) {
        if (k == body.size() || body[k] == '\n') {
          harvest_directives(body.substr(line_start, k - line_start),
                             comment_line + static_cast<int>(
                                 std::count(body.begin(), body.begin() + static_cast<long>(line_start), '\n')),
                             sup);
          line_start = k + 1;
        }
      }
      for (char b : body) out += (b == '\n') ? '\n' : ' ';
      line += static_cast<int>(std::count(body.begin(), body.end(), '\n'));
      i = end;
    } else {
      // Copy string/char literals verbatim here; they are blanked later so
      // includes (which need their quoted path) can be read first.  A quote
      // right after an identifier character is a digit separator (1'000),
      // not a literal.
      if (c == '"' || (c == '\'' && !(i > 0 && ident_char(text[i - 1])))) {
        char quote = c;
        out += c;
        ++i;
        while (i < n && text[i] != quote) {
          if (text[i] == '\\' && i + 1 < n) {
            out += text[i];
            ++i;
          }
          if (i < n) {
            out += (text[i] == '\n') ? '\n' : text[i];
            if (text[i] == '\n') ++line;
            ++i;
          }
        }
        if (i < n) {
          out += quote;
          ++i;
        }
      } else {
        out += c;
        ++i;
      }
    }
  }
  return out;
}

// Replaces string and character literals with spaces.  Raw strings get the
// same treatment up to their closing delimiter.
std::string strip_literals(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    char c = text[i];
    bool raw = c == 'R' && i + 1 < n && text[i + 1] == '"' &&
               (i == 0 || (!std::isalnum(static_cast<unsigned char>(text[i - 1])) &&
                           text[i - 1] != '_'));
    if (raw) {
      std::size_t paren = text.find('(', i + 2);
      if (paren == std::string::npos) { out += c; ++i; continue; }
      std::string delim = ")" + text.substr(i + 2, paren - i - 2) + "\"";
      std::size_t end = text.find(delim, paren + 1);
      end = (end == std::string::npos) ? n : end + delim.size();
      for (std::size_t k = i; k < end; ++k) out += (text[k] == '\n') ? '\n' : ' ';
      i = end;
    } else if (c == '"' || (c == '\'' && !(i > 0 && ident_char(text[i - 1])))) {
      char quote = c;
      out += ' ';
      ++i;
      while (i < n && text[i] != quote) {
        if (text[i] == '\\' && i + 1 < n) {
          out += ' ';
          ++i;
        }
        out += (text[i] == '\n') ? '\n' : ' ';
        ++i;
      }
      if (i < n) { out += ' '; ++i; }
    } else {
      out += c;
      ++i;
    }
  }
  return out;
}

struct Token {
  std::string text;
  int line;
};

std::vector<Token> tokenize(const std::string& text) {
  std::vector<Token> toks;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    char c = text[i];
    if (c == '\n') { ++line; ++i; continue; }
    if (std::isspace(static_cast<unsigned char>(c))) { ++i; continue; }
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(text[j])) ++j;
      toks.push_back({text.substr(i, j - i), line});
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i + 1;
      while (j < n && (ident_char(text[j]) || text[j] == '.' || text[j] == '\'' ||
                       ((text[j] == '+' || text[j] == '-') && j > 0 &&
                        (text[j - 1] == 'e' || text[j - 1] == 'E' ||
                         text[j - 1] == 'p' || text[j - 1] == 'P'))))
        ++j;
      toks.push_back({text.substr(i, j - i), line});
      i = j;
    } else {
      if (i + 1 < n) {
        std::string two = text.substr(i, 2);
        if (two == "::" || two == "->") {
          toks.push_back({two, line});
          i += 2;
          continue;
        }
      }
      toks.push_back({std::string(1, c), line});
      ++i;
    }
  }
  return toks;
}

// ---------------------------------------------------------------------------
// R1 / R3: banned identifiers and banned headers
// ---------------------------------------------------------------------------

enum class Match {
  kAnywhere,       // the identifier alone is enough
  kCall,           // identifier followed by '(' and not a member access
  kStdQualified,   // preceded by `std ::`
  kGlobalQualified,// preceded by a global `::` (token before `::` not a name)
  kPrefix,         // identifier starts with this text
};

struct BannedIdent {
  const char* ident;
  Match match;
  const char* rule;
  const char* hint;
};

const BannedIdent kBannedIdents[] = {
    // R1: ambient nondeterminism.
    {"system_clock", Match::kAnywhere, "R1", "use the simulator's virtual clock"},
    {"steady_clock", Match::kAnywhere, "R1", "use the simulator's virtual clock"},
    {"high_resolution_clock", Match::kAnywhere, "R1", "use the simulator's virtual clock"},
    {"random_device", Match::kAnywhere, "R1", "seed sim::Rng from the experiment config"},
    {"default_random_engine", Match::kAnywhere, "R1", "use sim::Rng (xoshiro256**)"},
    {"gettimeofday", Match::kAnywhere, "R1", "use the simulator's virtual clock"},
    {"clock_gettime", Match::kAnywhere, "R1", "use the simulator's virtual clock"},
    {"localtime", Match::kAnywhere, "R1", "use the simulator's virtual clock"},
    {"gmtime", Match::kAnywhere, "R1", "use the simulator's virtual clock"},
    {"mktime", Match::kAnywhere, "R1", "use the simulator's virtual clock"},
    {"getenv", Match::kAnywhere, "R1", "thread configuration through explicit parameters"},
    {"secure_getenv", Match::kAnywhere, "R1", "thread configuration through explicit parameters"},
    {"setenv", Match::kAnywhere, "R1", "thread configuration through explicit parameters"},
    {"putenv", Match::kAnywhere, "R1", "thread configuration through explicit parameters"},
    {"rand", Match::kCall, "R1", "use sim::Rng seeded from the experiment config"},
    {"srand", Match::kCall, "R1", "use sim::Rng seeded from the experiment config"},
    {"time", Match::kStdQualified, "R1", "use the simulator's virtual clock"},
    {"time", Match::kGlobalQualified, "R1", "use the simulator's virtual clock"},
    // R3: real threads / blocking waits.
    {"this_thread", Match::kAnywhere, "R3", "co_await delay(sim, d) instead"},
    {"jthread", Match::kAnywhere, "R3", "model the activity as a sim::Proc coroutine"},
    {"sleep_for", Match::kAnywhere, "R3", "co_await delay(sim, d) instead"},
    {"sleep_until", Match::kAnywhere, "R3", "co_await delay(sim, d) instead"},
    {"usleep", Match::kAnywhere, "R3", "co_await delay(sim, usec(n)) instead"},
    {"nanosleep", Match::kAnywhere, "R3", "co_await delay(sim, d) instead"},
    {"condition_variable", Match::kAnywhere, "R3", "use a sim Event/Gate awaitable"},
    {"condition_variable_any", Match::kAnywhere, "R3", "use a sim Event/Gate awaitable"},
    {"sleep", Match::kGlobalQualified, "R3", "co_await delay(sim, sec(n)) instead"},
    {"thread", Match::kStdQualified, "R3", "model the activity as a sim::Proc coroutine"},
    {"mutex", Match::kStdQualified, "R3", "use the sim mutex (coroutine-aware)"},
    {"recursive_mutex", Match::kStdQualified, "R3", "use the sim mutex (coroutine-aware)"},
    {"timed_mutex", Match::kStdQualified, "R3", "use the sim mutex (coroutine-aware)"},
    {"shared_mutex", Match::kStdQualified, "R3", "use the sim mutex (coroutine-aware)"},
    {"lock_guard", Match::kStdQualified, "R3", "use the sim mutex (coroutine-aware)"},
    {"unique_lock", Match::kStdQualified, "R3", "use the sim mutex (coroutine-aware)"},
    {"scoped_lock", Match::kStdQualified, "R3", "use the sim mutex (coroutine-aware)"},
    {"async", Match::kStdQualified, "R3", "spawn a sim::Proc and join via Promise"},
    {"future", Match::kStdQualified, "R3", "use sim::Promise / sim::Task"},
    {"shared_future", Match::kStdQualified, "R3", "use sim::Promise / sim::Task"},
    {"promise", Match::kStdQualified, "R3", "use sim::Promise (promise.hpp)"},
    {"counting_semaphore", Match::kStdQualified, "R3", "use a sim semaphore awaitable"},
    {"binary_semaphore", Match::kStdQualified, "R3", "use a sim semaphore awaitable"},
    {"latch", Match::kStdQualified, "R3", "use a sim Gate awaitable"},
    {"barrier", Match::kStdQualified, "R3", "use a sim Gate awaitable"},
    {"atomic", Match::kStdQualified, "R3", "single-threaded sim code needs no atomics"},
    {"atomic_flag", Match::kStdQualified, "R3", "single-threaded sim code needs no atomics"},
    {"pthread_", Match::kPrefix, "R3", "model the activity as a sim::Proc coroutine"},
};

struct BannedHeader {
  const char* header;
  const char* rule;
  const char* hint;
};

const BannedHeader kBannedHeaders[] = {
    {"chrono", "R1", "virtual time lives in sim/time.hpp"},
    {"random", "R1", "deterministic randomness lives in sim/random.hpp"},
    {"ctime", "R1", "virtual time lives in sim/time.hpp"},
    {"time.h", "R1", "virtual time lives in sim/time.hpp"},
    {"sys/time.h", "R1", "virtual time lives in sim/time.hpp"},
    {"thread", "R3", "model concurrency as coroutines"},
    {"mutex", "R3", "use sim synchronization primitives"},
    {"shared_mutex", "R3", "use sim synchronization primitives"},
    {"condition_variable", "R3", "use sim synchronization primitives"},
    {"future", "R3", "use sim::Promise / sim::Task"},
    {"semaphore", "R3", "use sim synchronization primitives"},
    {"latch", "R3", "use sim synchronization primitives"},
    {"barrier", "R3", "use sim synchronization primitives"},
    {"stop_token", "R3", "model cancellation inside the simulation"},
    {"atomic", "R3", "single-threaded sim code needs no atomics"},
    {"pthread.h", "R3", "model concurrency as coroutines"},
    {"unistd.h", "R3", "no blocking syscalls inside the simulation"},
    {"sys/wait.h", "R3", "no OS processes inside the simulation"},
};

bool is_name_token(const Token& t) {
  return !t.text.empty() && ident_start(t.text[0]);
}

// ---------------------------------------------------------------------------
// Includes and layering (R4)
// ---------------------------------------------------------------------------

struct Include {
  std::string path;
  bool angled;
  int line;
};

std::vector<Include> extract_includes(const std::string& comment_stripped) {
  std::vector<Include> out;
  int line = 0;
  std::size_t pos = 0;
  while (pos <= comment_stripped.size()) {
    ++line;
    std::size_t eol = comment_stripped.find('\n', pos);
    if (eol == std::string::npos) eol = comment_stripped.size();
    std::string l = comment_stripped.substr(pos, eol - pos);
    std::size_t i = l.find_first_not_of(" \t");
    if (i != std::string::npos && l[i] == '#') {
      i = l.find_first_not_of(" \t", i + 1);
      if (i != std::string::npos && l.compare(i, 7, "include") == 0) {
        i = l.find_first_not_of(" \t", i + 7);
        if (i != std::string::npos && (l[i] == '<' || l[i] == '"')) {
          char close = l[i] == '<' ? '>' : '"';
          std::size_t end = l.find(close, i + 1);
          if (end != std::string::npos)
            out.push_back({l.substr(i + 1, end - i - 1), l[i] == '<', line});
        }
      }
    }
    if (eol == comment_stripped.size()) break;
    pos = eol + 1;
  }
  return out;
}

// Layer indices: sim=0 < hw=1 < vorx=2 < {apps, tools}=3.  Unknown: -1.
int layer_of(const std::string& component) {
  if (component == "sim") return 0;
  if (component == "hw") return 1;
  if (component == "vorx") return 2;
  if (component == "apps" || component == "tools") return 3;
  return -1;
}

// First path component after an optional "src/" prefix ("" if none).
std::string top_component(const std::string& path) {
  std::string p = path;
  if (p.rfind("src/", 0) == 0) p = p.substr(4);
  std::size_t slash = p.find('/');
  return slash == std::string::npos ? std::string{} : p.substr(0, slash);
}

// ---------------------------------------------------------------------------
// R2: coroutine scope analysis
// ---------------------------------------------------------------------------

struct Scope {
  enum Kind { kTransparent, kType, kFunction, kLambda } kind = kTransparent;
  int header_line = 0;
  std::string name;                 // function name, for diagnostics
  std::vector<std::string> ret;     // declared / trailing return type tokens
  bool has_trailing_return = false; // lambdas only
  bool capturing = false;           // lambdas only
  bool reported = false;            // one diagnostic per scope
  int saved_paren_depth = 0;
};

std::size_t match_backward(const std::vector<Token>& toks, std::size_t close,
                           const char* open_text, const char* close_text) {
  int depth = 0;
  for (std::size_t j = close + 1; j-- > 0;) {
    if (toks[j].text == close_text) ++depth;
    else if (toks[j].text == open_text) {
      if (--depth == 0) return j;
    }
  }
  return close;  // unbalanced; caller treats as not-found
}

std::size_t match_forward(const std::vector<Token>& toks, std::size_t open,
                          const char* open_text, const char* close_text) {
  int depth = 0;
  for (std::size_t j = open; j < toks.size(); ++j) {
    if (toks[j].text == open_text) ++depth;
    else if (toks[j].text == close_text) {
      if (--depth == 0) return j;
    }
  }
  return open;
}

bool contains_task_or_proc(const std::vector<std::string>& type_tokens) {
  for (const auto& t : type_tokens)
    if (t == "Task" || t == "Proc") return true;
  return false;
}

const std::set<std::string> kControlKeywords = {
    "if", "for", "while", "switch", "catch", "do", "else", "try", "return",
    "co_return", "co_yield", "co_await", "new", "throw", "case", "default"};
const std::set<std::string> kTypeKeywords = {"class", "struct", "union", "enum",
                                             "namespace"};
const std::set<std::string> kTrailerTokens = {
    "const", "noexcept", "override", "final", "mutable", "constexpr", "try",
    "->", "::", "<", ">", "&", "*", ",", "[", "]", "volatile", "&&"};

// Classifies the tokens between the previous statement boundary and a `{`.
Scope classify_segment(const std::vector<Token>& toks, std::size_t a, std::size_t b) {
  Scope s;
  if (a >= b) return s;
  s.header_line = toks[b - 1].line;

  // Lambda first — `return [xs](...) -> sim::Task<void> {` starts with a
  // control keyword but the brace opens the lambda's body: find the last
  // lambda-introducer whose parameter list/specifiers run to the end of
  // the segment.
  for (std::size_t i = b; i-- > a;) {
    if (toks[i].text != "[") continue;
    if (i > a && ((is_name_token(toks[i - 1]) &&
                   !kControlKeywords.count(toks[i - 1].text)) ||
                  toks[i - 1].text == ")" || toks[i - 1].text == "]"))
      continue;  // subscript (but `return [` etc. introduce a lambda)
    if (i + 1 < b && toks[i + 1].text == "[") continue;  // [[attribute]]
    if (i > a && toks[i - 1].text == "[") continue;
    std::size_t close = match_forward(toks, i, "[", "]");
    if (close == i || close >= b) continue;
    // After the capture list: optional (params), specifiers, -> type.
    std::size_t j = close + 1;
    if (j < b && toks[j].text == "(") j = match_forward(toks, j, "(", ")") + 1;
    bool trailing = false;
    std::vector<std::string> ret;
    bool ok = true;
    for (; j < b; ++j) {
      if (toks[j].text == "->" && !trailing) { trailing = true; continue; }
      if (trailing) ret.push_back(toks[j].text);
      else if (!kTrailerTokens.count(toks[j].text) && !is_name_token(toks[j])) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    s.kind = Scope::kLambda;
    s.name = "<lambda>";
    s.capturing = close > i + 1;
    s.has_trailing_return = trailing;
    s.ret = std::move(ret);
    return s;
  }

  if (kControlKeywords.count(toks[a].text)) return s;

  // Function: a top-level (...) with only trailers (or a trailing return
  // type) between its ')' and the '{'.
  std::size_t last_close = b;
  int depth = 0;
  for (std::size_t j = b; j-- > a;) {
    if (toks[j].text == ")") {
      if (depth == 0) { last_close = j; break; }
      --depth;
    } else if (toks[j].text == "(") {
      ++depth;
    }
  }
  if (last_close != b) {
    bool trailers_only = true;
    bool trailing = false;
    std::vector<std::string> trailing_ret;
    for (std::size_t j = last_close + 1; j < b; ++j) {
      if (toks[j].text == "->" && !trailing) { trailing = true; continue; }
      if (trailing) { trailing_ret.push_back(toks[j].text); continue; }
      if (!kTrailerTokens.count(toks[j].text) && !is_name_token(toks[j])) {
        trailers_only = false;
        break;
      }
    }
    if (trailers_only) {
      // Find the first top-level '(' — the parameter list — and read the
      // (possibly qualified) function name just before it.
      std::size_t first_open = b;
      depth = 0;
      for (std::size_t j = a; j < b; ++j) {
        if (toks[j].text == "(") { first_open = j; break; }
        if (toks[j].text == "<") ++depth;
        if (toks[j].text == ">") --depth;
      }
      if (first_open != b && first_open > a) {
        // Walk back over one maximal qualified-id: name, optional '~', then
        // `ident ::` pairs.  Alternation matters — in `sim::Proc K::f(` the
        // id is `K::f`, and the adjacent identifiers `Proc K` mark where the
        // return type ends.
        std::size_t name_end = first_open;  // one past the name
        std::size_t name_begin = name_end;
        if (name_begin > a && is_name_token(toks[name_begin - 1])) --name_begin;
        if (name_begin < name_end && name_begin > a && toks[name_begin - 1].text == "~")
          --name_begin;
        while (name_begin > a + 1 && toks[name_begin - 1].text == "::" &&
               is_name_token(toks[name_begin - 2])) {
          name_begin -= 2;
        }
        if (name_begin < name_end && name_begin > a && toks[name_begin - 1].text == "::")
          --name_begin;
        if (name_begin < name_end) {
          s.kind = Scope::kFunction;
          s.name = toks[name_end - 1].text;
          if (trailing) {
            s.ret = std::move(trailing_ret);
          } else {
            for (std::size_t j = a; j < name_begin; ++j) s.ret.push_back(toks[j].text);
          }
          return s;
        }
      }
    }
  }

  for (std::size_t j = a; j < b; ++j) {
    if (kTypeKeywords.count(toks[j].text)) {
      s.kind = Scope::kType;
      return s;
    }
  }
  return s;  // plain block / initializer braces — transparent
}

std::string join(const std::vector<std::string>& v) {
  std::string out;
  for (const auto& t : v) {
    if (!out.empty() && ident_start(t[0]) && ident_start(out.back())) out += ' ';
    out += t;
  }
  return out;
}

}  // namespace

const std::vector<RuleInfo>& rules() { return kRules; }

const RuleInfo* find_rule(const std::string& id) {
  for (const auto& r : kRules)
    if (r.id == id) return &r;
  return nullptr;
}

void Linter::add_source(std::string path, std::string text) {
  sources_.push_back({std::move(path), std::move(text)});
}

std::vector<Diagnostic> Linter::run() {
  struct Prepared {
    std::string path;
    Suppressions sup;
    std::vector<Include> includes;
    std::vector<Token> toks;
  };
  std::vector<Prepared> prepared;
  prepared.reserve(sources_.size());

  // The discarded-Task audit is cross-file: signatures in headers, bare
  // calls in .cpp files.  Collect every name declared as returning
  // sim::Task<...>, and every name declared with some other return type —
  // an overloaded/colliding name (Link::send returns void, Channel::send
  // returns Task) is dropped from the audit rather than guessed at.
  std::set<std::string> task_fns;
  std::set<std::string> other_fns;
  for (const auto& src : sources_) {
    Prepared p;
    p.path = src.path;
    std::string no_comments = strip_comments(src.text, p.sup);
    p.includes = extract_includes(no_comments);
    p.toks = tokenize(strip_literals(no_comments));

    const auto& t = p.toks;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (t[i].text == "Task" && t[i + 1].text == "<") {
        std::size_t close = match_forward(t, i + 1, "<", ">");
        if (close == i + 1) continue;
        std::size_t j = close + 1;
        while (j + 1 < t.size() && is_name_token(t[j]) && t[j + 1].text == "::") j += 2;
        if (j + 1 < t.size() && is_name_token(t[j]) && t[j + 1].text == "(")
          task_fns.insert(t[j].text);
        continue;
      }
      // Declaration-shaped: a return-type token (identifier, `>`, `*`, `&`)
      // directly before `name(` or `Qual::name(`.  Call sites are preceded
      // by operators, `.`, `->`, or statement boundaries instead.
      if (!is_name_token(t[i]) || t[i + 1].text != "(") continue;
      std::size_t j = i;
      while (j > 1 && t[j - 1].text == "::" && is_name_token(t[j - 2])) j -= 2;
      if (j == 0) continue;
      const std::string& before = t[j - 1].text;
      static const std::set<std::string> kNotATypeEnd = {
          "return", "co_return", "co_await", "co_yield", "new", "throw",
          "else", "case", "operator", "goto", "sizeof", "if", "while",
          "for", "switch", "do"};
      if ((is_name_token(t[j - 1]) && !kNotATypeEnd.count(before)) ||
          before == ">" || before == "*" || before == "&") {
        bool has_task = false;
        for (std::size_t k = j; k-- > 0;) {
          const std::string& tk = t[k].text;
          if (tk == ";" || tk == "{" || tk == "}" || tk == "(" || tk == "," ||
              tk == "=")
            break;
          if (tk == "Task") { has_task = true; break; }
        }
        if (!has_task) other_fns.insert(t[i].text);
      }
    }
    prepared.push_back(std::move(p));
  }
  for (const auto& name : other_fns) task_fns.erase(name);

  std::vector<Diagnostic> diags;
  auto emit = [&](const Prepared& p, int line, const char* rule, const char* check,
                  std::string message) {
    if (p.sup.allows(rule, line)) return;
    diags.push_back({p.path, line, rule, check, std::move(message)});
  };

  for (const auto& p : prepared) {
    const auto& t = p.toks;

    // --- R1 / R3: banned identifiers ------------------------------------
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (!is_name_token(t[i])) continue;
      const std::string& id = t[i].text;
      for (const auto& b : kBannedIdents) {
        bool hit = false;
        switch (b.match) {
          case Match::kAnywhere:
            hit = id == b.ident;
            break;
          case Match::kCall:
            hit = id == b.ident && i + 1 < t.size() && t[i + 1].text == "(" &&
                  (i == 0 || (t[i - 1].text != "." && t[i - 1].text != "->"));
            break;
          case Match::kStdQualified:
            hit = id == b.ident && i >= 2 && t[i - 1].text == "::" &&
                  t[i - 2].text == "std";
            break;
          case Match::kGlobalQualified:
            hit = id == b.ident && i >= 1 && t[i - 1].text == "::" &&
                  (i == 1 || !is_name_token(t[i - 2]));
            break;
          case Match::kPrefix:
            hit = id.rfind(b.ident, 0) == 0;
            break;
        }
        if (hit) {
          std::string shown = b.match == Match::kStdQualified
                                  ? "std::" + id
                                  : (b.match == Match::kGlobalQualified ? "::" + id : id);
          emit(p, t[i].line, b.rule, "banned-token",
               "banned identifier '" + shown + "': " + b.hint);
          break;
        }
      }
    }

    // --- R1 / R3: banned headers; R4: layering ---------------------------
    const std::string file_comp = top_component(p.path);
    const int file_layer = layer_of(file_comp);
    for (const auto& inc : p.includes) {
      if (inc.angled) {
        for (const auto& b : kBannedHeaders) {
          if (inc.path == b.header) {
            emit(p, inc.line, b.rule, "banned-header",
                 "banned header <" + inc.path + ">: " + b.hint);
            break;
          }
        }
        continue;
      }
      if (file_layer < 0) continue;
      std::string inc_comp = top_component(inc.path);
      if (inc_comp.empty()) continue;  // same-directory relative include
      int inc_layer = layer_of(inc_comp);
      if (inc_layer < 0) continue;
      if (inc_layer > file_layer) {
        emit(p, inc.line, "R4", "layer-inversion",
             file_comp + "/ may not include " + inc_comp + "/ (layering: sim < hw < vorx < {apps, tools}): \"" +
                 inc.path + "\"");
      } else if (inc_layer == 3 && file_layer == 3 && inc_comp != file_comp) {
        emit(p, inc.line, "R4", "peer-include",
             file_comp + "/ and " + inc_comp +
                 "/ are peer leaf layers and may not include each other: \"" + inc.path + "\"");
      }
    }

    // --- R5: hot-path payload allocation (hw/ and vorx/ only) -----------
    if (file_layer == 1 || file_layer == 2) {
      for (std::size_t i = 0; i < t.size(); ++i) {
        if (!is_name_token(t[i])) continue;
        const std::string& id = t[i].text;
        if (id == "make_payload" && i + 1 < t.size() &&
            t[i + 1].text == "(") {
          emit(p, t[i].line, "R5", "raw-payload-alloc",
               "make_payload allocates a fresh control block + buffer per "
               "frame; build steady-state payloads through hw::FramePool "
               "(frame_pool().make / make_copy)");
        } else if (id == "make_shared" && i + 1 < t.size() &&
                   t[i + 1].text == "<") {
          // Flag only the byte-vector payload spelling: scan the template
          // argument list for both `vector` and `byte`.
          bool saw_vector = false;
          bool saw_byte = false;
          int depth = 0;
          for (std::size_t j = i + 1; j < t.size(); ++j) {
            const std::string& tk = t[j].text;
            if (tk == "<") {
              ++depth;
            } else if (tk == ">") {
              if (--depth == 0) break;
            } else if (tk == "vector") {
              saw_vector = true;
            } else if (tk == "byte") {
              saw_byte = true;
            } else if (tk == ";" || tk == "{" || tk == ")") {
              break;  // comparison chain, not a template argument list
            }
          }
          if (saw_vector && saw_byte) {
            emit(p, t[i].line, "R5", "raw-payload-alloc",
                 "make_shared<...vector<byte>...> is a raw payload "
                 "allocation on the frame hot path; use "
                 "hw::FramePool::make instead");
          }
        }
      }
    }

    // --- R2: coroutine scope analysis ------------------------------------
    std::vector<Scope> stack;
    std::size_t seg_start = 0;
    int paren_depth = 0;
    for (std::size_t i = 0; i < t.size(); ++i) {
      const std::string& tok = t[i].text;
      if (tok == "(") {
        ++paren_depth;
      } else if (tok == ")") {
        if (paren_depth > 0) --paren_depth;
      } else if (tok == ";" && paren_depth == 0) {
        seg_start = i + 1;
      } else if (tok == "{") {
        Scope s = classify_segment(t, seg_start, i);
        s.saved_paren_depth = paren_depth;
        stack.push_back(std::move(s));
        seg_start = i + 1;
        paren_depth = 0;
      } else if (tok == "}") {
        if (!stack.empty()) {
          paren_depth = stack.back().saved_paren_depth;
          stack.pop_back();
        }
        seg_start = i + 1;
      } else if (tok == "co_await" || tok == "co_return" || tok == "co_yield") {
        if (i > 0 && t[i - 1].text == "operator") continue;  // operator co_await
        for (std::size_t d = stack.size(); d-- > 0;) {
          Scope& s = stack[d];
          if (s.kind == Scope::kTransparent) continue;
          if (s.kind == Scope::kType) break;  // co_* outside a function body
          if (s.reported) break;
          if (s.kind == Scope::kLambda) {
            if (s.capturing) {
              s.reported = true;
              emit(p, s.header_line, "R2", "lambda-capture",
                   "capturing-lambda coroutine: the closure frame can die "
                   "before the coroutine resumes (lifetime UB); hoist it into "
                   "a named function taking the state as parameters");
            } else if (!s.has_trailing_return || !contains_task_or_proc(s.ret)) {
              s.reported = true;
              emit(p, s.header_line, "R2", "coroutine-return-type",
                   "lambda coroutine must declare a trailing return type of "
                   "sim::Task<...> or sim::Proc");
            }
          } else if (!contains_task_or_proc(s.ret)) {
            s.reported = true;
            std::string ret = join(s.ret);
            emit(p, s.header_line, "R2", "coroutine-return-type",
                 "'" + s.name + "' contains " + tok + " but returns '" +
                     (ret.empty() ? "<none>" : ret) +
                     "'; coroutines must return sim::Task<...> or sim::Proc");
          }
          break;
        }
      }
    }

    // --- R2: discarded Task values ---------------------------------------
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (!is_name_token(t[i]) || !task_fns.count(t[i].text)) continue;
      if (t[i + 1].text != "(") continue;
      std::size_t close = match_forward(t, i + 1, "(", ")");
      if (close == i + 1 || close + 1 >= t.size()) continue;
      if (t[close + 1].text != ";") continue;
      // Walk the call chain backward; a statement boundary right before the
      // chain means the Task is created and immediately destroyed, unrun.
      std::size_t j = i;
      bool discarded = false;
      while (j > 0) {
        const std::string& prev = t[j - 1].text;
        if (prev == "." || prev == "->" || prev == "::") {
          if (j < 2) break;
          const std::string& before = t[j - 2].text;
          if (before == ")") {
            std::size_t open = match_backward(t, j - 2, "(", ")");
            if (open == j - 2) break;
            j = open;
            if (j > 0 && is_name_token(t[j - 1])) --j;
            continue;
          }
          if (is_name_token(t[j - 2])) {
            j -= 2;
            continue;
          }
          break;
        }
        if (prev == ";" || prev == "{" || prev == "}") discarded = true;
        break;
      }
      if (j == 0) discarded = true;
      if (discarded) {
        emit(p, t[i].line, "R2", "discarded-task",
             "result of Task-returning '" + t[i].text +
                 "(...)' is discarded; an unawaited sim::Task never runs — "
                 "co_await it (or bind it and await later)");
      }
    }
  }

  std::sort(diags.begin(), diags.end(), [](const Diagnostic& a, const Diagnostic& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
  return diags;
}

}  // namespace hpcvorx::lint
