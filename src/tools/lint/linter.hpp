// vorx-lint: project-specific static analysis for the HPC/VORX tree.
//
// The simulator's core guarantee is that every run is bit-identical and
// deterministic (DESIGN.md).  The compiler cannot enforce that guarantee,
// so this linter does, with four table-driven rule families applied by
// token/line-level analysis (no libclang dependency):
//
//   R1  determinism    — no wall-clock, rand()/srand(), std::random_device,
//                        getenv, or other ambient-nondeterminism sources.
//   R2  coroutines     — functions containing co_await/co_return must return
//                        sim::Task<...> or sim::Proc; no capturing-lambda
//                        coroutines (frame-lifetime UB); Task values must not
//                        be discarded.
//   R3  no concurrency — no std::thread/mutex/condition_variable, no
//                        sleep/usleep: all waiting goes through
//                        co_await delay(...).
//   R4  layering       — the #include graph must respect
//                        sim ⊂ hw ⊂ vorx ⊂ {apps, tools}, and apps/tools
//                        must not include each other.
//
// Suppressions (a reason is expected after the directive):
//   // vorx-lint: allow(R1) <reason>        — this line and the next line
//   // vorx-lint-file: allow(R1,R3) <reason> — the whole file
//
// Comments and string/character literals are stripped before token rules
// run, so prose mentioning rand() or std::thread never trips the linter.
#pragma once

#include <string>
#include <vector>

namespace hpcvorx::lint {

/// One finding.  `rule` is "R1".."R4"; `check` names the specific pattern
/// that fired (e.g. "banned-token", "discarded-task") for machine filtering.
struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string check;
  std::string message;
};

/// Static description of a rule family, used by `vorx-lint --explain` and
/// `--list-rules`.
struct RuleInfo {
  std::string id;
  std::string title;
  std::string rationale;
  std::string fix;
};

/// The four rule families, in order.
const std::vector<RuleInfo>& rules();

/// Look up a rule family by id ("R1".."R4"); nullptr if unknown.
const RuleInfo* find_rule(const std::string& id);

/// Accumulates sources, then lints them all in one `run()`.  Cross-file
/// analysis (the discarded-Task audit needs every Task-returning signature
/// in the program) is why this is not a per-file free function.
class Linter {
 public:
  /// Add an in-memory source.  `path` is the repo-relative path ("src/"
  /// prefix optional) used for diagnostics and for layer assignment.
  void add_source(std::string path, std::string text);

  /// Runs every rule over every added source.  Diagnostics are sorted by
  /// (file, line, rule) so output is deterministic.
  std::vector<Diagnostic> run();

 private:
  struct Source {
    std::string path;
    std::string text;
  };
  std::vector<Source> sources_;
};

}  // namespace hpcvorx::lint
