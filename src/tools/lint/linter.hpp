// vorx-lint: project-specific static analysis for the HPC/VORX tree.
//
// The simulator's core guarantee is that every run is bit-identical and
// deterministic (DESIGN.md), and the roadmap's sharded parallel engine adds
// a second demand: no hidden process-wide state.  The compiler cannot
// enforce either, so this linter does.  It is built in three layers
// (DESIGN.md §11):
//
//   lexer  (lexer.hpp)  — one pass from raw text to a token stream with
//                         file:line provenance; comments, string/char and
//                         raw-string literals, line splices, and
//                         preprocessor directives are all resolved here.
//   model  (model.hpp)  — cross-file facts: the resolved include graph,
//                         layer assignment, the Task-returning-function
//                         registry.
//   rules  (rules.hpp)  — the R1..R8 rule families over tokens + model:
//
//   R1  determinism          — no wall-clock, rand()/srand(),
//                              std::random_device, getenv, ...
//   R2  coroutine-safety     — co_* only in Task/Proc functions; no
//                              capturing-lambda coroutines; no discarded
//                              Tasks.
//   R3  no-real-concurrency  — no std::thread/mutex/condition_variable,
//                              no blocking sleeps.
//   R4  layering             — include graph respects
//                              sim < hw < vorx < {apps, tools}; no peer
//                              includes, no include cycles.
//   R5  hot-path-allocation  — frame payloads in hw/vorx come from
//                              hw::FramePool.
//   R6  shared-mutable-state — no namespace-scope / static / thread_local
//                              mutable variables in sim/hw/vorx.
//   R7  ordering-hazards     — no pointer-keyed containers, no event/
//                              counter emission from unordered iteration,
//                              no addresses as values.
//   R8  coroutine-lifetime   — no stored non-owning handles, no
//                              by-reference lambdas escaping into
//                              schedulers.
//
// Suppressions (a reason is expected after the directive):
//   // vorx-lint: allow(R1) <reason>        — this line and the next line
//   // vorx-lint-file: allow(R1,R3) <reason> — the whole file
#pragma once

#include <string>
#include <vector>

#include "tools/lint/rules.hpp"

namespace hpcvorx::lint {

/// Accumulates sources, then lints them all in one `run()`.  Cross-file
/// analysis (include cycles, the discarded-Task audit) is why this is not a
/// per-file free function.
class Linter {
 public:
  /// Add an in-memory source.  `path` is the repo-relative path ("src/"
  /// prefix optional) used for diagnostics and for layer assignment.
  void add_source(std::string path, std::string text);

  /// Runs every rule over every added source, drops findings covered by
  /// suppression directives, and sorts by (file, line, rule, message) so
  /// output is deterministic.
  std::vector<Diagnostic> run();

 private:
  std::vector<LexedSource> lexed_;
};

}  // namespace hpcvorx::lint
