#include "tools/lint/model.hpp"

#include <map>
#include <utility>

namespace hpcvorx::lint {

namespace {

// Normalizes a path for include-graph matching: the project convention is
// that quoted includes are repo-src-relative ("hw/link.hpp"), while source
// paths may carry the "src/" prefix.
std::string normalize(const std::string& path) {
  return path.rfind("src/", 0) == 0 ? path.substr(4) : path;
}

}  // namespace

Model::Model(std::vector<LexedSource> sources) : sources_(std::move(sources)) {
  build_includes();
  build_graph();
  build_task_registry();
}

void Model::build_includes() {
  includes_.resize(sources_.size());
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    for (const Token& t : sources_[i].tokens) {
      if (t.kind == Token::Kind::kHeader)
        includes_[i].push_back({t.text, t.angled, t.line});
    }
  }
}

void Model::build_graph() {
  std::map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < sources_.size(); ++i)
    index.emplace(normalize(sources_[i].path), i);
  edges_.resize(sources_.size());
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    for (const Include& inc : includes_[i]) {
      if (inc.angled) continue;
      auto it = index.find(normalize(inc.path));
      if (it != index.end()) edges_[i].push_back(it->second);
    }
  }
}

bool Model::path_exists(std::size_t from, std::size_t to) const {
  std::vector<bool> seen(sources_.size(), false);
  std::vector<std::size_t> stack(edges_[from].begin(), edges_[from].end());
  while (!stack.empty()) {
    const std::size_t at = stack.back();
    stack.pop_back();
    if (at == to) return true;
    if (seen[at]) continue;
    seen[at] = true;
    for (std::size_t next : edges_[at]) stack.push_back(next);
  }
  return false;
}

std::string Model::top_component(const std::string& path) {
  const std::string p = normalize(path);
  const std::size_t slash = p.find('/');
  return slash == std::string::npos ? std::string{} : p.substr(0, slash);
}

int Model::layer_of(const std::string& component) {
  if (component == "sim") return 0;
  if (component == "hw") return 1;
  if (component == "vorx") return 2;
  if (component == "apps" || component == "tools") return 3;
  return -1;
}

std::size_t Model::match_forward(const std::vector<Token>& toks,
                                 std::size_t open, const char* open_text,
                                 const char* close_text) {
  int depth = 0;
  for (std::size_t j = open; j < toks.size(); ++j) {
    if (toks[j].text == open_text) ++depth;
    else if (toks[j].text == close_text) {
      if (--depth == 0) return j;
    }
  }
  return open;
}

std::size_t Model::match_backward(const std::vector<Token>& toks,
                                  std::size_t close, const char* open_text,
                                  const char* close_text) {
  int depth = 0;
  for (std::size_t j = close + 1; j-- > 0;) {
    if (toks[j].text == close_text) ++depth;
    else if (toks[j].text == open_text) {
      if (--depth == 0) return j;
    }
  }
  return close;
}

// Collects every name declared as returning sim::Task<...> and every name
// declared with some other return type; the latter knock the former out of
// the audit (overload ambiguity).
void Model::build_task_registry() {
  std::set<std::string> other_fns;
  for (const LexedSource& src : sources_) {
    const auto& t = src.tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (t[i].text == "Task" && t[i + 1].text == "<") {
        std::size_t close = match_forward(t, i + 1, "<", ">");
        if (close == i + 1) continue;
        std::size_t j = close + 1;
        while (j + 1 < t.size() && is_name(t[j]) && t[j + 1].text == "::")
          j += 2;
        if (j + 1 < t.size() && is_name(t[j]) && t[j + 1].text == "(")
          task_fns_.insert(t[j].text);
        continue;
      }
      // Declaration-shaped: a return-type token (identifier, `>`, `*`, `&`)
      // directly before `name(` or `Qual::name(`.  Call sites are preceded
      // by operators, `.`, `->`, or statement boundaries instead.
      if (!is_name(t[i]) || t[i + 1].text != "(") continue;
      std::size_t j = i;
      while (j > 1 && t[j - 1].text == "::" && is_name(t[j - 2])) j -= 2;
      if (j == 0) continue;
      const std::string& before = t[j - 1].text;
      static const std::set<std::string> kNotATypeEnd = {
          "return", "co_return", "co_await", "co_yield", "new", "throw",
          "else", "case", "operator", "goto", "sizeof", "if", "while",
          "for", "switch", "do"};
      if ((is_name(t[j - 1]) && !kNotATypeEnd.count(before)) ||
          before == ">" || before == "*" || before == "&") {
        bool has_task = false;
        for (std::size_t k = j; k-- > 0;) {
          const std::string& tk = t[k].text;
          if (tk == ";" || tk == "{" || tk == "}" || tk == "(" || tk == "," ||
              tk == "=")
            break;
          if (tk == "Task") {
            has_task = true;
            break;
          }
        }
        if (!has_task) other_fns.insert(t[i].text);
      }
    }
  }
  for (const std::string& name : other_fns) task_fns_.erase(name);
}

}  // namespace hpcvorx::lint
