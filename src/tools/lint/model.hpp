// vorx-lint program model: everything the rules need that spans more than
// one token or more than one file.
//
//   * the include graph — every #include of every source, with quoted
//     includes resolved against the source set into real edges.  R4 walks
//     the direct edges for layering and the transitive closure for cycle
//     detection; future cross-file rules get the same graph for free;
//   * layer assignment (sim < hw < vorx < {apps, tools}) from paths;
//   * the cross-file Task-returning-function registry behind the
//     discarded-Task audit: signatures live in headers, bare calls in .cpp
//     files, and overloaded names (Link::send vs Channel::send) must be
//     dropped from the audit rather than guessed at;
//   * token-walk utilities (bracket matching) shared by the rule passes.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "tools/lint/lexer.hpp"

namespace hpcvorx::lint {

struct Include {
  std::string path;
  bool angled;
  int line;
};

class Model {
 public:
  explicit Model(std::vector<LexedSource> sources);

  [[nodiscard]] const std::vector<LexedSource>& sources() const {
    return sources_;
  }
  [[nodiscard]] const std::vector<Include>& includes_of(std::size_t i) const {
    return includes_[i];
  }

  /// Quoted-include edges of source i, as indices into sources() (only
  /// includes that resolve to a file in the analyzed set appear).
  [[nodiscard]] const std::vector<std::size_t>& edges_of(std::size_t i) const {
    return edges_[i];
  }
  /// True if the include graph has a path from `from` to `to` (one or more
  /// edges).  `path_exists(i, i)` asks whether i sits on an include cycle.
  [[nodiscard]] bool path_exists(std::size_t from, std::size_t to) const;

  // --- layering -----------------------------------------------------------
  /// First path component after an optional "src/" prefix ("" if none).
  [[nodiscard]] static std::string top_component(const std::string& path);
  /// Layer indices: sim=0 < hw=1 < vorx=2 < {apps, tools}=3.  Unknown: -1.
  [[nodiscard]] static int layer_of(const std::string& component);

  // --- coroutine registry -------------------------------------------------
  /// Name is declared somewhere as returning sim::Task<...> and nowhere
  /// with a different return type.
  [[nodiscard]] bool returns_task(const std::string& name) const {
    return task_fns_.count(name) != 0;
  }

  // --- token utilities ----------------------------------------------------
  [[nodiscard]] static bool is_name(const Token& t) {
    return t.kind == Token::Kind::kIdent;
  }
  /// Index of the close bracket matching the open at `open` (forward) or
  /// the open matching the close at `close` (backward).  Returns the input
  /// index when unbalanced.
  static std::size_t match_forward(const std::vector<Token>& toks,
                                   std::size_t open, const char* open_text,
                                   const char* close_text);
  static std::size_t match_backward(const std::vector<Token>& toks,
                                    std::size_t close, const char* open_text,
                                    const char* close_text);

 private:
  void build_includes();
  void build_graph();
  void build_task_registry();

  std::vector<LexedSource> sources_;
  std::vector<std::vector<Include>> includes_;
  std::vector<std::vector<std::size_t>> edges_;
  std::set<std::string> task_fns_;
};

}  // namespace hpcvorx::lint
