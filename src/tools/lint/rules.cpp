#include "tools/lint/rules.hpp"

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace hpcvorx::lint {
namespace {

// ---------------------------------------------------------------------------
// Rule catalogue
// ---------------------------------------------------------------------------

const std::vector<RuleInfo> kRules = {
    {"R1", "determinism",
     "Simulated runs must be bit-identical across reruns and machines.  Any "
     "wall-clock read, libc PRNG, std::random_device, or environment lookup "
     "injects state the experiment configuration does not control.",
     "Derive all randomness from sim::Rng seeded by the experiment config, "
     "and all time from the simulator's virtual clock (sim::SimTime)."},
    {"R2", "coroutine-safety",
     "Every suspension must be owned by the simulator.  A coroutine with a "
     "non-Task/Proc return type silently compiles to something never "
     "scheduled; a capturing-lambda coroutine keeps references into a "
     "closure frame that dies before the coroutine does (lifetime UB); a "
     "discarded sim::Task never runs at all.",
     "Return sim::Task<...> (awaited work) or sim::Proc (fire-and-forget "
     "process); hoist lambda coroutines into named functions taking the "
     "captured state as parameters; co_await every Task you create."},
    {"R3", "no-real-concurrency",
     "No concurrency except via the shard runtime: each shard's simulator "
     "is single-threaded, and determinism comes from its totally ordered "
     "event queue plus the runtime's fixed barrier-drain order.  OS "
     "threads, mutexes, atomics, or blocking sleeps anywhere else "
     "reintroduce scheduler nondeterminism and stall virtual time.  The "
     "runtime's own translation units (sim/shard_runtime.*, "
     "sim/spsc_queue.hpp) carry reasoned file-level allow(R3) directives "
     "per the DESIGN.md §11/§12 contract.",
     "Model concurrency as coroutines; replace every blocking wait with "
     "co_await delay(sim, d) or a sim synchronization primitive.  Need "
     "wall-clock parallelism?  Partition work across sim::ShardRuntime "
     "shards instead of spawning threads."},
    {"R4", "layering",
     "The include graph must respect sim < hw < vorx < {apps, tools} so the "
     "Meglos-vs-VORX pairing stays swappable: sim knows nothing of hardware "
     "models, hw nothing of the OS, vorx nothing of applications.  Include "
     "cycles break the ordering in both directions at once.",
     "Move shared declarations down a layer, or invert the dependency with "
     "a callback/interface owned by the lower layer."},
    {"R5", "hot-path-allocation",
     "Steady-state frame payloads in the hw/ and vorx/ layers must come "
     "from hw::FramePool.  Every make_payload or make_shared<vector<byte>> "
     "there mints a fresh control block plus byte buffer per frame — "
     "exactly the per-event allocation traffic the pool exists to absorb "
     "(tests, apps, and tools are exempt: they are not on the hot path).",
     "Build payloads through the fabric's pool: frame_pool().buffer() + "
     "frame_pool().make(std::move(bytes)), or frame_pool().make_copy(p, n)."},
    {"R6", "shared-mutable-state",
     "A sharded parallel engine (ROADMAP direction 2) runs several "
     "schedulers in one process.  Namespace-scope mutable variables, "
     "static locals, and thread_local caches are process-wide: two shards "
     "touching them race or entangle their event streams, and TSan flags "
     "exactly these sites first.  const/constexpr data is exempt.",
     "Move the state into the owning object (Simulator, Node, a pool "
     "instance); mint ids from Simulator::allocate_id(); if the global is "
     "genuinely one-per-process, justify it with an allow(R6) comment."},
    {"R7", "ordering-hazards",
     "Iteration order of pointer-keyed or unordered containers follows "
     "hash/allocation addresses, which vary run to run and shard to shard. "
     "Feeding that order into event posts or counter emission silently "
     "breaks bit-identical replay; casting pointers to integers bakes "
     "addresses into values the trace then depends on.",
     "Key containers by stable integer ids, iterate a sorted copy when the "
     "loop posts events or emits counters, and never use addresses as "
     "ordering keys or trace values."},
    {"R8", "coroutine-lifetime",
     "std::coroutine_handle and sim::Task are (or wrap) non-owning views "
     "of a coroutine frame.  Storing handles in containers or plain "
     "members beyond the owner's scope, or capturing locals by reference "
     "in lambdas handed to schedulers, resumes or destroys frames that may "
     "already be gone — a use-after-free a sharded runtime turns from "
     "latent into fatal.  Awaiter/promise types are exempt: holding the "
     "handle is their job.",
     "Let sim::Task own the frame and co_await it; store owning Tasks, not "
     "raw handles; capture state by value in scheduled lambdas; justify a "
     "deliberate owner-of-last-resort registry with allow(R8)."},
};

// ---------------------------------------------------------------------------
// R1 / R3: banned identifiers and banned headers
// ---------------------------------------------------------------------------

enum class Match {
  kAnywhere,        // the identifier alone is enough
  kCall,            // identifier followed by '(' and not a member access
  kStdQualified,    // preceded by `std ::`
  kGlobalQualified, // preceded by a global `::` (token before `::` not a name)
  kPrefix,          // identifier starts with this text
};

struct BannedIdent {
  const char* ident;
  Match match;
  const char* rule;
  const char* hint;
};

const BannedIdent kBannedIdents[] = {
    // R1: ambient nondeterminism.
    {"system_clock", Match::kAnywhere, "R1", "use the simulator's virtual clock"},
    {"steady_clock", Match::kAnywhere, "R1", "use the simulator's virtual clock"},
    {"high_resolution_clock", Match::kAnywhere, "R1", "use the simulator's virtual clock"},
    {"random_device", Match::kAnywhere, "R1", "seed sim::Rng from the experiment config"},
    {"default_random_engine", Match::kAnywhere, "R1", "use sim::Rng (xoshiro256**)"},
    {"gettimeofday", Match::kAnywhere, "R1", "use the simulator's virtual clock"},
    {"clock_gettime", Match::kAnywhere, "R1", "use the simulator's virtual clock"},
    {"localtime", Match::kAnywhere, "R1", "use the simulator's virtual clock"},
    {"gmtime", Match::kAnywhere, "R1", "use the simulator's virtual clock"},
    {"mktime", Match::kAnywhere, "R1", "use the simulator's virtual clock"},
    {"getenv", Match::kAnywhere, "R1", "thread configuration through explicit parameters"},
    {"secure_getenv", Match::kAnywhere, "R1", "thread configuration through explicit parameters"},
    {"setenv", Match::kAnywhere, "R1", "thread configuration through explicit parameters"},
    {"putenv", Match::kAnywhere, "R1", "thread configuration through explicit parameters"},
    {"rand", Match::kCall, "R1", "use sim::Rng seeded from the experiment config"},
    {"srand", Match::kCall, "R1", "use sim::Rng seeded from the experiment config"},
    // The wider libc/POSIX PRNG family.  All are kCall (these names are
    // plausible locals/members elsewhere); `random` itself is only banned
    // when globally qualified — `Circuit::random(...)`-style factories are
    // legitimate and common.
    {"rand_r", Match::kCall, "R1", "use sim::Rng seeded from the experiment config"},
    {"random", Match::kGlobalQualified, "R1", "use sim::Rng seeded from the experiment config"},
    {"srandom", Match::kCall, "R1", "use sim::Rng seeded from the experiment config"},
    {"drand48", Match::kCall, "R1", "use sim::Rng seeded from the experiment config"},
    {"erand48", Match::kCall, "R1", "use sim::Rng seeded from the experiment config"},
    {"lrand48", Match::kCall, "R1", "use sim::Rng seeded from the experiment config"},
    {"nrand48", Match::kCall, "R1", "use sim::Rng seeded from the experiment config"},
    {"mrand48", Match::kCall, "R1", "use sim::Rng seeded from the experiment config"},
    {"jrand48", Match::kCall, "R1", "use sim::Rng seeded from the experiment config"},
    {"srand48", Match::kCall, "R1", "use sim::Rng seeded from the experiment config"},
    {"seed48", Match::kCall, "R1", "use sim::Rng seeded from the experiment config"},
    {"lcong48", Match::kCall, "R1", "use sim::Rng seeded from the experiment config"},
    // Kernel entropy and the BSD arc4random family (prefix covers
    // arc4random_uniform / arc4random_buf).
    {"getrandom", Match::kCall, "R1", "seed sim::Rng from the experiment config"},
    {"getentropy", Match::kCall, "R1", "seed sim::Rng from the experiment config"},
    {"arc4random", Match::kPrefix, "R1", "seed sim::Rng from the experiment config"},
    // <random> engines beyond default_random_engine: the concrete standard
    // engines (prefix covers mt19937_64, minstd_rand0, the ranlux sizes)
    // and the raw engine templates they alias.
    {"mt19937", Match::kPrefix, "R1", "use sim::Rng (xoshiro256**)"},
    {"minstd_rand", Match::kPrefix, "R1", "use sim::Rng (xoshiro256**)"},
    {"ranlux", Match::kPrefix, "R1", "use sim::Rng (xoshiro256**)"},
    {"knuth_b", Match::kAnywhere, "R1", "use sim::Rng (xoshiro256**)"},
    {"mersenne_twister_engine", Match::kAnywhere, "R1", "use sim::Rng (xoshiro256**)"},
    {"linear_congruential_engine", Match::kAnywhere, "R1", "use sim::Rng (xoshiro256**)"},
    {"subtract_with_carry_engine", Match::kAnywhere, "R1", "use sim::Rng (xoshiro256**)"},
    {"time", Match::kStdQualified, "R1", "use the simulator's virtual clock"},
    {"time", Match::kGlobalQualified, "R1", "use the simulator's virtual clock"},
    // R3: real threads / blocking waits.
    {"this_thread", Match::kAnywhere, "R3", "co_await delay(sim, d) instead"},
    {"jthread", Match::kAnywhere, "R3", "model the activity as a sim::Proc coroutine"},
    {"sleep_for", Match::kAnywhere, "R3", "co_await delay(sim, d) instead"},
    {"sleep_until", Match::kAnywhere, "R3", "co_await delay(sim, d) instead"},
    {"usleep", Match::kAnywhere, "R3", "co_await delay(sim, usec(n)) instead"},
    {"nanosleep", Match::kAnywhere, "R3", "co_await delay(sim, d) instead"},
    {"condition_variable", Match::kAnywhere, "R3", "use a sim Event/Gate awaitable"},
    {"condition_variable_any", Match::kAnywhere, "R3", "use a sim Event/Gate awaitable"},
    {"sleep", Match::kGlobalQualified, "R3", "co_await delay(sim, sec(n)) instead"},
    {"thread", Match::kStdQualified, "R3", "model the activity as a sim::Proc coroutine"},
    {"mutex", Match::kStdQualified, "R3", "use the sim mutex (coroutine-aware)"},
    {"recursive_mutex", Match::kStdQualified, "R3", "use the sim mutex (coroutine-aware)"},
    {"timed_mutex", Match::kStdQualified, "R3", "use the sim mutex (coroutine-aware)"},
    {"shared_mutex", Match::kStdQualified, "R3", "use the sim mutex (coroutine-aware)"},
    {"lock_guard", Match::kStdQualified, "R3", "use the sim mutex (coroutine-aware)"},
    {"unique_lock", Match::kStdQualified, "R3", "use the sim mutex (coroutine-aware)"},
    {"scoped_lock", Match::kStdQualified, "R3", "use the sim mutex (coroutine-aware)"},
    {"async", Match::kStdQualified, "R3", "spawn a sim::Proc and join via Promise"},
    {"future", Match::kStdQualified, "R3", "use sim::Promise / sim::Task"},
    {"shared_future", Match::kStdQualified, "R3", "use sim::Promise / sim::Task"},
    {"promise", Match::kStdQualified, "R3", "use sim::Promise (promise.hpp)"},
    {"counting_semaphore", Match::kStdQualified, "R3", "use a sim semaphore awaitable"},
    {"binary_semaphore", Match::kStdQualified, "R3", "use a sim semaphore awaitable"},
    {"latch", Match::kStdQualified, "R3", "use a sim Gate awaitable"},
    {"barrier", Match::kStdQualified, "R3", "use a sim Gate awaitable"},
    {"atomic", Match::kStdQualified, "R3", "single-threaded sim code needs no atomics"},
    {"atomic_flag", Match::kStdQualified, "R3", "single-threaded sim code needs no atomics"},
    {"pthread_", Match::kPrefix, "R3", "model the activity as a sim::Proc coroutine"},
};

struct BannedHeader {
  const char* header;
  const char* rule;
  const char* hint;
};

const BannedHeader kBannedHeaders[] = {
    {"chrono", "R1", "virtual time lives in sim/time.hpp"},
    {"random", "R1", "deterministic randomness lives in sim/random.hpp"},
    {"ctime", "R1", "virtual time lives in sim/time.hpp"},
    {"time.h", "R1", "virtual time lives in sim/time.hpp"},
    {"sys/time.h", "R1", "virtual time lives in sim/time.hpp"},
    {"thread", "R3", "model concurrency as coroutines"},
    {"mutex", "R3", "use sim synchronization primitives"},
    {"shared_mutex", "R3", "use sim synchronization primitives"},
    {"condition_variable", "R3", "use sim synchronization primitives"},
    {"future", "R3", "use sim::Promise / sim::Task"},
    {"semaphore", "R3", "use sim synchronization primitives"},
    {"latch", "R3", "use sim synchronization primitives"},
    {"barrier", "R3", "use sim synchronization primitives"},
    {"stop_token", "R3", "model cancellation inside the simulation"},
    {"atomic", "R3", "single-threaded sim code needs no atomics"},
    {"pthread.h", "R3", "model concurrency as coroutines"},
    {"unistd.h", "R3", "no blocking syscalls inside the simulation"},
    {"sys/wait.h", "R3", "no OS processes inside the simulation"},
};

bool is_name(const Token& t) { return Model::is_name(t); }

// ---------------------------------------------------------------------------
// Shared keyword sets
// ---------------------------------------------------------------------------

const std::set<std::string> kControlKeywords = {
    "if", "for", "while", "switch", "catch", "do", "else", "try", "return",
    "co_return", "co_yield", "co_await", "new", "throw", "case", "default"};
const std::set<std::string> kTypeKeywords = {"class", "struct", "union",
                                             "enum"};
const std::set<std::string> kTrailerTokens = {
    "const", "noexcept", "override", "final", "mutable", "constexpr", "try",
    "->", "::", "<", ">", "&", "*", ",", "[", "]", "volatile", "&&"};

// Container templates whose element storage outlives any single statement —
// used by the R8 stored-handle/stored-task checks.
const std::set<std::string> kContainers = {
    "vector", "deque", "list", "forward_list", "map", "multimap", "set",
    "multiset", "unordered_map", "unordered_multimap", "unordered_set",
    "unordered_multiset", "queue", "priority_queue", "stack", "array",
    "span", "optional"};

// Member names whose presence marks a type as part of the coroutine
// machinery itself (awaiter / promise / task wrapper): such types hold
// handles by design and are exempt from R8 stored-handle.
const std::set<std::string> kAwaiterMarkers = {
    "await_ready",    "await_suspend",       "await_resume",
    "promise_type",   "get_return_object",   "initial_suspend",
    "final_suspend",  "unhandled_exception"};

// Scheduling/registration sinks: a by-reference lambda passed straight into
// one of these outlives the enclosing frame (R8 ref-capture-escape).
const std::set<std::string> kEscapeSinks = {
    "register_handler", "spawn_process", "schedule_at", "schedule_after",
    "post_at",          "post_after",    "subscribe",   "set_handler",
    "defer"};

// Associative containers for the R7 pointer-key check.
const std::set<std::string> kAssocContainers = {
    "map",           "multimap",           "set",
    "multiset",      "unordered_map",      "unordered_multimap",
    "unordered_set", "unordered_multiset"};

// Event/trace sinks for the R7 unordered-iteration check: emitting into one
// of these from an unordered loop makes the event order address-dependent.
const std::set<std::string> kOrderSinks = {
    "post",        "post_at",        "post_after", "schedule_at",
    "schedule_after", "sample",      "send",       "deliver"};

// ---------------------------------------------------------------------------
// Diagnostic sink
// ---------------------------------------------------------------------------

struct Sink {
  const std::string& path;
  std::vector<Diagnostic>& out;
  void operator()(int line, const char* rule, const char* check,
                  std::string message) const {
    out.push_back({path, line, rule, check, std::move(message)});
  }
};

// ---------------------------------------------------------------------------
// Scope analysis (shared by R2, R6, R8)
// ---------------------------------------------------------------------------

struct Scope {
  enum Kind { kTransparent, kNamespace, kType, kFunction, kLambda } kind =
      kTransparent;
  int header_line = 0;
  std::string name;                  // function name, for diagnostics
  std::vector<std::string> ret;      // declared / trailing return type tokens
  bool has_trailing_return = false;  // lambdas only
  bool capturing = false;            // lambdas only
  bool reported = false;             // one R2 diagnostic per scope
  bool awaiterish = false;           // types only: coroutine-machinery shape
  int saved_paren_depth = 0;
};

bool contains_task_or_proc(const std::vector<std::string>& type_tokens) {
  for (const auto& t : type_tokens)
    if (t == "Task" || t == "Proc") return true;
  return false;
}

// Classifies the tokens between the previous statement boundary and a `{`.
Scope classify_segment(const std::vector<Token>& toks, std::size_t a,
                       std::size_t b) {
  Scope s;
  if (a >= b) return s;
  s.header_line = toks[b - 1].line;

  // Lambda first — `return [xs](...) -> sim::Task<void> {` starts with a
  // control keyword but the brace opens the lambda's body: find the last
  // lambda-introducer whose parameter list/specifiers run to the end of
  // the segment.
  for (std::size_t i = b; i-- > a;) {
    if (toks[i].text != "[") continue;
    if (i > a &&
        ((is_name(toks[i - 1]) && !kControlKeywords.count(toks[i - 1].text)) ||
         toks[i - 1].text == ")" || toks[i - 1].text == "]"))
      continue;  // subscript (but `return [` etc. introduce a lambda)
    if (i + 1 < b && toks[i + 1].text == "[") continue;  // [[attribute]]
    if (i > a && toks[i - 1].text == "[") continue;
    std::size_t close = Model::match_forward(toks, i, "[", "]");
    if (close == i || close >= b) continue;
    // After the capture list: optional (params), specifiers, -> type.
    std::size_t j = close + 1;
    if (j < b && toks[j].text == "(")
      j = Model::match_forward(toks, j, "(", ")") + 1;
    bool trailing = false;
    std::vector<std::string> ret;
    bool ok = true;
    for (; j < b; ++j) {
      if (toks[j].text == "->" && !trailing) {
        trailing = true;
        continue;
      }
      if (trailing)
        ret.push_back(toks[j].text);
      else if (!kTrailerTokens.count(toks[j].text) && !is_name(toks[j])) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    s.kind = Scope::kLambda;
    s.name = "<lambda>";
    s.capturing = close > i + 1;
    s.has_trailing_return = trailing;
    s.ret = std::move(ret);
    return s;
  }

  if (kControlKeywords.count(toks[a].text)) return s;

  // Function: a top-level (...) with only trailers (or a trailing return
  // type) between its ')' and the '{'.
  std::size_t last_close = b;
  int depth = 0;
  for (std::size_t j = b; j-- > a;) {
    if (toks[j].text == ")") {
      if (depth == 0) {
        last_close = j;
        break;
      }
      --depth;
    } else if (toks[j].text == "(") {
      ++depth;
    }
  }
  if (last_close != b) {
    bool trailers_only = true;
    bool trailing = false;
    std::vector<std::string> trailing_ret;
    for (std::size_t j = last_close + 1; j < b; ++j) {
      if (toks[j].text == "->" && !trailing) {
        trailing = true;
        continue;
      }
      if (trailing) {
        trailing_ret.push_back(toks[j].text);
        continue;
      }
      if (!kTrailerTokens.count(toks[j].text) && !is_name(toks[j])) {
        trailers_only = false;
        break;
      }
    }
    if (trailers_only) {
      // Find the first top-level '(' — the parameter list — and read the
      // (possibly qualified) function name just before it.
      std::size_t first_open = b;
      for (std::size_t j = a; j < b; ++j) {
        if (toks[j].text == "(") {
          first_open = j;
          break;
        }
      }
      if (first_open != b && first_open > a) {
        // Walk back over one maximal qualified-id: name, optional '~', then
        // `ident ::` pairs.  Alternation matters — in `sim::Proc K::f(` the
        // id is `K::f`, and the adjacent identifiers `Proc K` mark where the
        // return type ends.
        std::size_t name_end = first_open;  // one past the name
        std::size_t name_begin = name_end;
        if (name_begin > a && is_name(toks[name_begin - 1])) --name_begin;
        if (name_begin < name_end && name_begin > a &&
            toks[name_begin - 1].text == "~")
          --name_begin;
        while (name_begin > a + 1 && toks[name_begin - 1].text == "::" &&
               is_name(toks[name_begin - 2])) {
          name_begin -= 2;
        }
        if (name_begin < name_end && name_begin > a &&
            toks[name_begin - 1].text == "::")
          --name_begin;
        if (name_begin < name_end) {
          s.kind = Scope::kFunction;
          s.name = toks[name_end - 1].text;
          if (trailing) {
            s.ret = std::move(trailing_ret);
          } else {
            for (std::size_t j = a; j < name_begin; ++j)
              s.ret.push_back(toks[j].text);
          }
          return s;
        }
      }
    }
  }

  for (std::size_t j = a; j < b; ++j) {
    if (toks[j].text == "namespace") {
      s.kind = Scope::kNamespace;
      return s;
    }
    if (kTypeKeywords.count(toks[j].text)) {
      s.kind = Scope::kType;
      return s;
    }
  }
  return s;  // plain block / initializer braces — transparent
}

std::string join(const std::vector<std::string>& v) {
  std::string out;
  for (const auto& t : v) {
    if (t.empty()) continue;
    if (!out.empty() && ident_start(t[0]) && ident_start(out.back()))
      out += ' ';
    out += t;
  }
  return out;
}

}  // namespace

const std::vector<RuleInfo>& rules() { return kRules; }

const RuleInfo* find_rule(const std::string& id) {
  for (const auto& r : kRules)
    if (r.id == id) return &r;
  return nullptr;
}

namespace {

// ---------------------------------------------------------------------------
// R1 / R3 passes
// ---------------------------------------------------------------------------

void check_banned_idents(const std::vector<Token>& t, const Sink& emit) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_name(t[i])) continue;
    const std::string& id = t[i].text;
    for (const auto& b : kBannedIdents) {
      bool hit = false;
      switch (b.match) {
        case Match::kAnywhere:
          hit = id == b.ident;
          break;
        case Match::kCall:
          hit = id == b.ident && i + 1 < t.size() && t[i + 1].text == "(" &&
                (i == 0 || (t[i - 1].text != "." && t[i - 1].text != "->"));
          break;
        case Match::kStdQualified:
          hit = id == b.ident && i >= 2 && t[i - 1].text == "::" &&
                t[i - 2].text == "std";
          break;
        case Match::kGlobalQualified:
          hit = id == b.ident && i >= 1 && t[i - 1].text == "::" &&
                (i == 1 || !is_name(t[i - 2]));
          break;
        case Match::kPrefix:
          hit = id.rfind(b.ident, 0) == 0;
          break;
      }
      if (hit) {
        std::string shown =
            b.match == Match::kStdQualified
                ? "std::" + id
                : (b.match == Match::kGlobalQualified ? "::" + id : id);
        emit(t[i].line, b.rule, "banned-token",
             "banned identifier '" + shown + "': " + b.hint);
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R1 / R3 headers; R4 layering + include cycles
// ---------------------------------------------------------------------------

void check_headers(const Model& model, std::size_t idx, int file_layer,
                   const std::string& file_comp,
                   const std::map<std::string, std::size_t>& index,
                   const Sink& emit) {
  for (const Include& inc : model.includes_of(idx)) {
    if (inc.angled) {
      for (const auto& b : kBannedHeaders) {
        if (inc.path == b.header) {
          emit(inc.line, b.rule, "banned-header",
               "banned header <" + inc.path + ">: " + b.hint);
          break;
        }
      }
      continue;
    }
    if (file_layer < 0) continue;
    const std::string inc_comp = Model::top_component(inc.path);
    if (inc_comp.empty()) continue;  // same-directory relative include
    const int inc_layer = Model::layer_of(inc_comp);
    if (inc_layer < 0) continue;
    if (inc_layer > file_layer) {
      emit(inc.line, "R4", "layer-inversion",
           file_comp + "/ may not include " + inc_comp +
               "/ (layering: sim < hw < vorx < {apps, tools}): \"" + inc.path +
               "\"");
    } else if (inc_layer == 3 && file_layer == 3 && inc_comp != file_comp) {
      emit(inc.line, "R4", "peer-include",
           file_comp + "/ and " + inc_comp +
               "/ are peer leaf layers and may not include each other: \"" +
               inc.path + "\"");
    }
    // Cycle detection over resolved edges: if the included file can include
    // its way back here, this include closes a cycle.
    auto it = index.find(inc.path);
    if (it != index.end() && it->second != idx &&
        model.path_exists(it->second, idx)) {
      emit(inc.line, "R4", "include-cycle",
           "\"" + inc.path +
               "\" includes its way back to this file (include cycle)");
    }
  }
}

// ---------------------------------------------------------------------------
// R5: hot-path payload allocation (hw/ and vorx/ only)
// ---------------------------------------------------------------------------

void check_hot_path_alloc(const std::vector<Token>& t, const Sink& emit) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_name(t[i])) continue;
    const std::string& id = t[i].text;
    if (id == "make_payload" && i + 1 < t.size() && t[i + 1].text == "(") {
      emit(t[i].line, "R5", "raw-payload-alloc",
           "make_payload allocates a fresh control block + buffer per "
           "frame; build steady-state payloads through hw::FramePool "
           "(frame_pool().make / make_copy)");
    } else if (id == "make_shared" && i + 1 < t.size() &&
               t[i + 1].text == "<") {
      // Flag only the byte-vector payload spelling: scan the template
      // argument list for both `vector` and `byte`.
      bool saw_vector = false;
      bool saw_byte = false;
      int depth = 0;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        const std::string& tk = t[j].text;
        if (tk == "<") {
          ++depth;
        } else if (tk == ">") {
          if (--depth == 0) break;
        } else if (tk == "vector") {
          saw_vector = true;
        } else if (tk == "byte") {
          saw_byte = true;
        } else if (tk == ";" || tk == "{" || tk == ")") {
          break;  // comparison chain, not a template argument list
        }
      }
      if (saw_vector && saw_byte) {
        emit(t[i].line, "R5", "raw-payload-alloc",
             "make_shared<...vector<byte>...> is a raw payload "
             "allocation on the frame hot path; use "
             "hw::FramePool::make instead");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R6 helpers
// ---------------------------------------------------------------------------

// Namespace-scope declaration check: the token range [a, b) sits directly at
// namespace/global scope and ends at `;` or at the `{` of a brace
// initializer.  Flags mutable (non-const, non-static — statics have their
// own check) variable definitions.
void check_global_decl(const std::vector<Token>& t, std::size_t a,
                       std::size_t b, const Sink& emit) {
  if (b <= a) return;
  // Truncate at the first top-level '=' so `int g = expr;` is judged by its
  // declarator, not its initializer.
  int angle = 0;
  std::size_t end = b;
  for (std::size_t j = a; j < b; ++j) {
    const std::string& tk = t[j].text;
    if (tk == "<") {
      ++angle;
    } else if (tk == ">") {
      if (angle > 0) --angle;
    } else if (angle == 0 && tk == "=") {
      end = j;
      break;
    }
  }
  while (a < end && t[a].text == "inline") ++a;
  if (a >= end) return;
  static const std::set<std::string> kNotADecl = {
      "using",    "typedef", "extern",   "friend",        "template",
      "static_assert", "namespace", "class", "struct",    "union",
      "enum",     "concept", "operator", "return",        "public",
      "private",  "protected", "goto",   "asm",           "export",
      "if",       "for",     "while",    "switch",        "case",
      "default",  "else",    "do",       "try",           "catch",
      "new",      "delete",  "throw",    "co_return",     "co_await",
      "co_yield", "requires"};
  if (kNotADecl.count(t[a].text)) return;
  angle = 0;
  int idents = 0;
  std::string name;
  int name_line = t[a].line;
  for (std::size_t j = a; j < end; ++j) {
    const std::string& tk = t[j].text;
    if (t[j].kind == Token::Kind::kHeader) return;  // include, not a decl
    if (tk == "<") {
      ++angle;
      continue;
    }
    if (tk == ">") {
      if (angle > 0) --angle;
      continue;
    }
    if (angle > 0) continue;
    if (tk == "(") return;  // function declaration / function pointer
    if (tk == "const" || tk == "constexpr" || tk == "constinit" ||
        tk == "static" || tk == "thread_local")
      return;  // immutable, or handled by the static check
    if (is_name(t[j])) {
      ++idents;
      name = tk;
      name_line = t[j].line;
    }
  }
  const Token& last = t[end - 1];
  if (!(is_name(last) || last.text == "]")) return;
  if (idents < 2) return;  // need at least a type and a name
  emit(name_line, "R6", "global-mutable",
       "namespace-scope mutable variable '" + name +
           "' is process-wide shared state; shards would race on it — move "
           "it into the owning object or mark it const/constexpr");
}

// ---------------------------------------------------------------------------
// The combined scope walk: R2 coroutine checks, R6 shared state, R8 stored
// handles/tasks.  One pass so all three see the same scope stack.
// ---------------------------------------------------------------------------

void scope_walk(const std::vector<Token>& t, bool shard_layer,
                bool known_layer, const Model& model, const Sink& emit) {
  std::vector<Scope> stack;
  std::size_t seg_start = 0;
  int paren_depth = 0;

  auto effective_scope = [&]() -> const Scope* {
    for (std::size_t d = stack.size(); d-- > 0;)
      if (stack[d].kind != Scope::kTransparent) return &stack[d];
    return nullptr;
  };
  auto at_namespace_scope = [&]() {
    return stack.empty() || stack.back().kind == Scope::kNamespace;
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    const std::string& tok = t[i].text;
    if (tok == "(") {
      ++paren_depth;
      continue;
    }
    if (tok == ")") {
      if (paren_depth > 0) --paren_depth;
      continue;
    }
    if (tok == ";" && paren_depth == 0) {
      if (shard_layer && at_namespace_scope())
        check_global_decl(t, seg_start, i, emit);
      seg_start = i + 1;
      continue;
    }
    if (tok == "{") {
      Scope s = classify_segment(t, seg_start, i);
      if (s.kind == Scope::kTransparent && shard_layer &&
          at_namespace_scope()) {
        // `std::vector<int> g{...};` — a brace initializer at namespace
        // scope is still a variable definition.
        check_global_decl(t, seg_start, i, emit);
      }
      if (s.kind == Scope::kType) {
        // Awaiter/promise shape: the class body defines coroutine-protocol
        // members.  Inherit from enclosing types — a nested awaiter's
        // helper struct is machinery too.
        const std::size_t close = Model::match_forward(t, i, "{", "}");
        for (std::size_t j = i + 1; j < close; ++j) {
          if (is_name(t[j]) && kAwaiterMarkers.count(t[j].text)) {
            s.awaiterish = true;
            break;
          }
        }
        if (!s.awaiterish) {
          for (const Scope& outer : stack)
            if (outer.kind == Scope::kType && outer.awaiterish)
              s.awaiterish = true;
        }
      }
      s.saved_paren_depth = paren_depth;
      stack.push_back(std::move(s));
      seg_start = i + 1;
      paren_depth = 0;
      continue;
    }
    if (tok == "}") {
      if (!stack.empty()) {
        paren_depth = stack.back().saved_paren_depth;
        stack.pop_back();
      }
      seg_start = i + 1;
      continue;
    }

    // --- R6: static / thread_local mutable state -------------------------
    if (shard_layer && (tok == "static" || tok == "thread_local") &&
        paren_depth == 0) {
      bool is_const =
          (i > 0 && (t[i - 1].text == "const" || t[i - 1].text == "constexpr" ||
                     t[i - 1].text == "constinit")) ||
          (i > 1 && (t[i - 2].text == "const" || t[i - 2].text == "constexpr" ||
                     t[i - 2].text == "constinit"));
      bool is_var = false;
      int angle = 0;
      int bracket = 0;  // idents inside [...] are array bounds, not the name
      std::string name;
      int name_line = t[i].line;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        const std::string& tk = t[j].text;
        if (tk == "<") {
          ++angle;
        } else if (tk == ">") {
          if (angle > 0) --angle;
        } else if (angle == 0) {
          if (tk == "[") {
            ++bracket;
            continue;
          }
          if (tk == "]") {
            if (bracket > 0) --bracket;
            continue;
          }
          if (bracket > 0) continue;
          if (tk == "(" || tk == "}") break;  // function / end of scope
          if (tk == ";" || tk == "=" || tk == "{") {
            is_var = true;
            break;
          }
          if (tk == "const" || tk == "constexpr" || tk == "constinit") {
            is_const = true;
            break;
          }
          if (is_name(t[j])) {
            name = tk;
            name_line = t[j].line;
          }
        }
      }
      if (is_var && !is_const) {
        emit(name_line, "R6", "static-mutable",
             "'" + (name.empty() ? std::string("<unnamed>") : name) + "' is " +
                 tok +
                 " mutable state shared across the whole process; a sharded "
                 "runtime needs this per-shard — move it into the owning "
                 "object (e.g. mint ids via Simulator::allocate_id())");
      }
      continue;
    }

    // --- R8: handles/Tasks stored beyond their owner ---------------------
    if (known_layer && paren_depth == 0 &&
        (tok == "coroutine_handle" || tok == "Task") && is_name(t[i])) {
      bool in_container = false;
      bool aliasing = false;
      for (std::size_t k = i; k-- > 0;) {
        const std::string& tk = t[k].text;
        // Parens bound the scan too: a `(` or `)` before the declarator
        // means we crossed into a parameter list or trailing-return-type
        // position, where a `vector` is somebody else's.
        if (tk == ";" || tk == "{" || tk == "}" || tk == "(" || tk == ")")
          break;
        if (kContainers.count(tk)) in_container = true;
        if (tk == "using" || tk == "typedef" || tk == "friend" ||
            tk == "template")
          aliasing = true;
      }
      // Forward shape: a '(' at angle depth 0 before the statement ends
      // means a function declaration (return type position) — skip.
      int angle = 0;
      bool is_decl = false;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        const std::string& tk = t[j].text;
        if (tk == "<") {
          ++angle;
        } else if (tk == ">") {
          if (angle > 0) --angle;
        } else if (angle == 0) {
          if (tk == "(") break;
          if (tk == ";" || tk == "{" || tk == "=" || tk == "}") {
            is_decl = true;
            break;
          }
        }
      }
      if (!aliasing && is_decl) {
        const Scope* eff = effective_scope();
        const bool in_awaiter_type =
            eff && eff->kind == Scope::kType && eff->awaiterish;
        if (in_container && !in_awaiter_type) {
          emit(t[i].line, "R8", "stored-handle",
               std::string("container of ") +
                   (tok == "Task" ? "sim::Task" : "coroutine_handle") +
                   " keeps frames alive past their owner's scope; store "
                   "owning Tasks behind a registry that drains them, or "
                   "co_await instead of collecting");
        } else if (tok == "coroutine_handle") {
          if (eff && eff->kind == Scope::kType && !eff->awaiterish) {
            emit(t[i].line, "R8", "stored-handle",
                 "coroutine_handle member in a non-awaiter type: the handle "
                 "is a non-owning view and the frame may be destroyed before "
                 "this object uses it; hold the owning sim::Task instead");
          }
        }
      }
      continue;
    }

    // --- R2: co_await / co_return / co_yield -----------------------------
    if (tok == "co_await" || tok == "co_return" || tok == "co_yield") {
      if (i > 0 && t[i - 1].text == "operator") continue;  // operator co_await
      for (std::size_t d = stack.size(); d-- > 0;) {
        Scope& s = stack[d];
        if (s.kind == Scope::kTransparent) continue;
        if (s.kind == Scope::kType || s.kind == Scope::kNamespace)
          break;  // co_* outside a function body
        if (s.reported) break;
        if (s.kind == Scope::kLambda) {
          if (s.capturing) {
            s.reported = true;
            emit(s.header_line, "R2", "lambda-capture",
                 "capturing-lambda coroutine: the closure frame can die "
                 "before the coroutine resumes (lifetime UB); hoist it into "
                 "a named function taking the state as parameters");
          } else if (!s.has_trailing_return || !contains_task_or_proc(s.ret)) {
            s.reported = true;
            emit(s.header_line, "R2", "coroutine-return-type",
                 "lambda coroutine must declare a trailing return type of "
                 "sim::Task<...> or sim::Proc");
          }
        } else if (!contains_task_or_proc(s.ret)) {
          s.reported = true;
          std::string ret = join(s.ret);
          emit(s.header_line, "R2", "coroutine-return-type",
               "'" + s.name + "' contains " + tok + " but returns '" +
                   (ret.empty() ? "<none>" : ret) +
                   "'; coroutines must return sim::Task<...> or sim::Proc");
        }
        break;
      }
    }
  }
  (void)model;
}

// ---------------------------------------------------------------------------
// R2: discarded Task values (cross-file registry from the Model)
// ---------------------------------------------------------------------------

void check_discarded_tasks(const std::vector<Token>& t, const Model& model,
                           const Sink& emit) {
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!is_name(t[i]) || !model.returns_task(t[i].text)) continue;
    if (t[i + 1].text != "(") continue;
    std::size_t close = Model::match_forward(t, i + 1, "(", ")");
    if (close == i + 1 || close + 1 >= t.size()) continue;
    if (t[close + 1].text != ";") continue;
    // Walk the call chain backward; a statement boundary right before the
    // chain means the Task is created and immediately destroyed, unrun.
    std::size_t j = i;
    bool discarded = false;
    while (j > 0) {
      const std::string& prev = t[j - 1].text;
      if (prev == "." || prev == "->" || prev == "::") {
        if (j < 2) break;
        const std::string& before = t[j - 2].text;
        if (before == ")") {
          std::size_t open = Model::match_backward(t, j - 2, "(", ")");
          if (open == j - 2) break;
          j = open;
          if (j > 0 && is_name(t[j - 1])) --j;
          continue;
        }
        if (is_name(t[j - 2])) {
          j -= 2;
          continue;
        }
        break;
      }
      if (prev == ";" || prev == "{" || prev == "}") discarded = true;
      break;
    }
    if (j == 0) discarded = true;
    if (discarded) {
      emit(t[i].line, "R2", "discarded-task",
           "result of Task-returning '" + t[i].text +
               "(...)' is discarded; an unawaited sim::Task never runs — "
               "co_await it (or bind it and await later)");
    }
  }
}

// ---------------------------------------------------------------------------
// R7: ordering hazards
// ---------------------------------------------------------------------------

void check_pointer_keys(const std::vector<Token>& t, const Sink& emit) {
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!is_name(t[i]) || !kAssocContainers.count(t[i].text)) continue;
    if (t[i + 1].text != "<") continue;
    // Scan the first template argument; a trailing '*' means pointer keys.
    int depth = 1;
    bool aborted = false;
    std::string last;
    for (std::size_t j = i + 2; j < t.size(); ++j) {
      const std::string& tk = t[j].text;
      if (tk == "<") {
        ++depth;
      } else if (tk == ">") {
        if (--depth == 0) break;
      } else if (tk == "," && depth == 1) {
        break;
      } else if (tk == ";" || tk == "{" || tk == ")" || tk == "}") {
        aborted = true;  // `<` was a comparison, not a template list
        break;
      } else {
        last = tk;
      }
    }
    if (!aborted && last == "*") {
      emit(t[i].line, "R7", "pointer-keyed-container",
           "'" + t[i].text +
           "' keyed by raw pointers orders/groups entries by allocation "
           "address, which differs across runs and shards; key by a stable "
           "integer id instead");
    }
  }
}

void check_unordered_iteration(const std::vector<Token>& t, const Sink& emit) {
  // Names declared in this file as unordered_* containers.
  std::set<std::string> unordered_vars;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!is_name(t[i]) || t[i].text.rfind("unordered_", 0) != 0) continue;
    if (t[i + 1].text != "<") continue;
    std::size_t close = Model::match_forward(t, i + 1, "<", ">");
    if (close == i + 1 || close + 1 >= t.size()) continue;
    if (is_name(t[close + 1])) unordered_vars.insert(t[close + 1].text);
  }
  if (unordered_vars.empty()) return;

  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (!(is_name(t[i]) && t[i].text == "for" && t[i + 1].text == "(")) continue;
    std::size_t close = Model::match_forward(t, i + 1, "(", ")");
    if (close == i + 1) continue;
    // Range-for: a top-level ':' inside the parens ("::" is its own token).
    std::size_t colon = 0;
    int depth = 0;
    for (std::size_t j = i + 2; j < close; ++j) {
      const std::string& tk = t[j].text;
      if (tk == "(" || tk == "[") ++depth;
      else if (tk == ")" || tk == "]") --depth;
      else if (tk == ":" && depth == 0) {
        colon = j;
        break;
      }
    }
    if (colon == 0) continue;
    bool over_unordered = false;
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (is_name(t[j]) && unordered_vars.count(t[j].text)) {
        over_unordered = true;
        break;
      }
    }
    if (!over_unordered) continue;
    // Loop body: the `{...}` block or single statement after the ')'.
    std::size_t body_begin = close + 1;
    std::size_t body_end;
    if (body_begin < t.size() && t[body_begin].text == "{")
      body_end = Model::match_forward(t, body_begin, "{", "}");
    else {
      body_end = body_begin;
      while (body_end < t.size() && t[body_end].text != ";") ++body_end;
    }
    for (std::size_t j = body_begin; j < body_end && j < t.size(); ++j) {
      if (is_name(t[j]) && kOrderSinks.count(t[j].text)) {
        emit(t[i].line, "R7", "unordered-iteration",
             "iterating an unordered container while calling '" + t[j].text +
                 "' makes event/sample order follow hash-bucket layout "
                 "(address-dependent); iterate a sorted copy or key by "
                 "stable ids");
        break;
      }
    }
  }
}

void check_address_values(const std::vector<Token>& t, const Sink& emit) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_name(t[i])) continue;
    if (t[i].text == "uintptr_t" || t[i].text == "intptr_t") {
      emit(t[i].line, "R7", "address-as-value",
           "'" + t[i].text +
               "' bakes an allocation address into a value; addresses "
               "differ across runs and shards — derive ordering/identity "
               "from a stable id instead");
    }
  }
}

// ---------------------------------------------------------------------------
// R8: by-reference lambdas escaping into scheduling sinks
// ---------------------------------------------------------------------------

void check_ref_capture_escape(const std::vector<Token>& t, const Sink& emit) {
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].text != "[") continue;
    if (i > 0 &&
        ((is_name(t[i - 1]) && !kControlKeywords.count(t[i - 1].text)) ||
         t[i - 1].text == ")" || t[i - 1].text == "]"))
      continue;  // subscript
    if (t[i + 1].text == "[" || (i > 0 && t[i - 1].text == "["))
      continue;  // [[attribute]]
    std::size_t close = Model::match_forward(t, i, "[", "]");
    if (close == i) continue;
    // `[this]` self-registration (an object installing a handler on a
    // member it owns, for its own lifetime) is the project's standard safe
    // idiom; only by-reference captures of locals are flagged.
    bool by_ref = false;
    for (std::size_t k = i + 1; k < close; ++k) {
      if (t[k].text == "&") {
        by_ref = true;
        break;
      }
    }
    if (!by_ref) continue;
    // Must actually be a lambda: body or parameter list follows.
    if (close + 1 >= t.size()) continue;
    const std::string& after = t[close + 1].text;
    if (after != "(" && after != "{" && after != "->" && after != "mutable" &&
        after != "noexcept")
      continue;
    // Find the enclosing call's '(' and its callee.
    int depth = 0;
    std::size_t open = t.size();
    for (std::size_t k = i; k-- > 0;) {
      const std::string& tk = t[k].text;
      if (tk == ")" || tk == "]" || tk == "}") {
        ++depth;
      } else if (tk == "(" || tk == "[" || tk == "{") {
        if (depth == 0) {
          if (tk == "(") open = k;
          break;
        }
        --depth;
      } else if (depth == 0 && tk == ";") {
        break;
      }
    }
    if (open == t.size() || open == 0 || !is_name(t[open - 1])) continue;
    if (kEscapeSinks.count(t[open - 1].text)) {
      emit(t[i].line, "R8", "ref-capture-escape",
           "lambda capturing by reference passed to '" + t[open - 1].text +
               "' outlives the enclosing frame; capture the needed state by "
               "value (or pass owned state explicitly)");
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

std::vector<Diagnostic> run_rules(const Model& model) {
  std::vector<Diagnostic> diags;

  // Normalized path -> source index, for cycle reporting.
  std::map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < model.sources().size(); ++i) {
    const std::string& p = model.sources()[i].path;
    index.emplace(p.rfind("src/", 0) == 0 ? p.substr(4) : p, i);
  }

  for (std::size_t i = 0; i < model.sources().size(); ++i) {
    const LexedSource& src = model.sources()[i];
    const std::vector<Token>& t = src.tokens;
    const std::string file_comp = Model::top_component(src.path);
    const int layer = Model::layer_of(file_comp);
    const bool shard_layer = layer >= 0 && layer <= 2;  // sim, hw, vorx
    const bool known_layer = layer >= 0;
    const Sink emit{src.path, diags};

    check_banned_idents(t, emit);
    check_headers(model, i, layer, file_comp, index, emit);
    if (layer == 1 || layer == 2) check_hot_path_alloc(t, emit);
    scope_walk(t, shard_layer, known_layer, model, emit);
    check_discarded_tasks(t, model, emit);
    if (shard_layer) {
      check_pointer_keys(t, emit);
      check_unordered_iteration(t, emit);
      check_address_values(t, emit);
    }
    if (known_layer) check_ref_capture_escape(t, emit);
  }
  return diags;
}

}  // namespace hpcvorx::lint
