// vorx-lint rule passes: R1–R8 evaluated over the lexed token streams and
// the cross-file Model.  Rules only *find*; suppression filtering and
// output ordering belong to the Linter driver (linter.cpp).
#pragma once

#include <string>
#include <vector>

#include "tools/lint/model.hpp"

namespace hpcvorx::lint {

/// One finding.  `rule` is "R1".."R8"; `check` names the specific pattern
/// that fired (e.g. "banned-token", "static-mutable") for machine filtering.
struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string check;
  std::string message;
};

/// Static description of a rule family, used by `vorx-lint --explain` and
/// `--list-rules`.
struct RuleInfo {
  std::string id;
  std::string title;
  std::string rationale;
  std::string fix;
};

/// The rule families, in order.
const std::vector<RuleInfo>& rules();

/// Look up a rule family by id ("R1".."R8"); nullptr if unknown.
const RuleInfo* find_rule(const std::string& id);

/// Runs every rule over every source in the model.  Diagnostics come back
/// unfiltered (suppressions are the caller's job) and unsorted.
std::vector<Diagnostic> run_rules(const Model& model);

}  // namespace hpcvorx::lint
