// vorx-lint command-line driver.
//
// Usage:
//   vorx-lint [--root DIR] [--json] [--explain] [--list-rules] [PATH...]
//
// PATHs (default: src) are walked recursively for .cpp/.hpp/.cc/.h files,
// relative to --root (default: the current directory).  Exit status: 0 when
// the tree is clean, 1 when diagnostics were emitted, 2 on usage or I/O
// errors.  File order and diagnostic order are sorted, so output is
// byte-identical across runs — the linter holds itself to rule R1.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/linter.hpp"

namespace fs = std::filesystem;
using hpcvorx::lint::Diagnostic;
using hpcvorx::lint::Linter;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--root DIR] [--json] [--explain] [--list-rules] "
               "[PATH...]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  bool json = false;
  bool explain = false;
  bool list_rules = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root") {
      if (++i >= argc) return usage(argv[0]);
      root = argv[i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }

  if (list_rules) {
    for (const auto& r : hpcvorx::lint::rules()) {
      std::printf("%s  %s\n    why: %s\n    fix: %s\n", r.id.c_str(),
                  r.title.c_str(), r.rationale.c_str(), r.fix.c_str());
    }
    return 0;
  }

  if (paths.empty()) paths.push_back("src");

  std::vector<std::string> files;
  for (const auto& p : paths) {
    fs::path full = root / p;
    std::error_code ec;
    if (fs::is_regular_file(full, ec)) {
      files.push_back(p);
      continue;
    }
    if (!fs::is_directory(full, ec)) {
      std::fprintf(stderr, "vorx-lint: no such file or directory: %s\n",
                   full.string().c_str());
      return 2;
    }
    for (fs::recursive_directory_iterator it(full, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (it->is_regular_file() && lintable(it->path()))
        files.push_back(fs::relative(it->path(), root).generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  Linter linter;
  for (const auto& rel : files) {
    std::ifstream in(root / rel, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "vorx-lint: cannot read %s\n", rel.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    linter.add_source(rel, buf.str());
  }

  std::vector<Diagnostic> diags = linter.run();

  if (json) {
    std::printf("[");
    for (std::size_t i = 0; i < diags.size(); ++i) {
      const auto& d = diags[i];
      std::printf(
          "%s\n  {\"file\": \"%s\", \"line\": %d, \"rule\": \"%s\", "
          "\"check\": \"%s\", \"message\": \"%s\"}",
          i ? "," : "", json_escape(d.file).c_str(), d.line, d.rule.c_str(),
          d.check.c_str(), json_escape(d.message).c_str());
    }
    std::printf("%s]\n", diags.empty() ? "" : "\n");
  } else {
    for (const auto& d : diags) {
      std::printf("%s:%d: [%s/%s] %s\n", d.file.c_str(), d.line,
                  d.rule.c_str(), d.check.c_str(), d.message.c_str());
      if (explain) {
        if (const auto* r = hpcvorx::lint::find_rule(d.rule)) {
          std::printf("    why: %s\n    fix: %s\n", r->rationale.c_str(),
                      r->fix.c_str());
        }
        std::printf(
            "    suppress: // vorx-lint: allow(%s) <reason>   (this line or "
            "the line above)\n",
            d.rule.c_str());
      }
    }
    if (!diags.empty()) {
      std::printf("vorx-lint: %zu diagnostic%s in %zu file%s scanned\n",
                  diags.size(), diags.size() == 1 ? "" : "s", files.size(),
                  files.size() == 1 ? "" : "s");
    }
  }
  return diags.empty() ? 0 : 1;
}
