#include "tools/oscilloscope.hpp"

#include <algorithm>
#include <cstdio>

namespace hpcvorx::tools {

namespace {
char glyph_for(sim::Category c) {
  switch (c) {
    case sim::Category::kUser: return 'U';
    case sim::Category::kSystem:
    case sim::Category::kContextSwitch: return 'S';
    case sim::Category::kIdleInput: return 'i';
    case sim::Category::kIdleOutput: return 'o';
    case sim::Category::kIdleMixed: return 'm';
    case sim::Category::kIdleOther: return '.';
  }
  return '?';
}
}  // namespace

std::array<sim::Duration, sim::kNumCategories> Oscilloscope::bucket_totals(
    hw::StationId s, sim::SimTime t0, sim::SimTime t1) const {
  std::array<sim::Duration, sim::kNumCategories> totals{};
  const auto& intervals = sys_.station(s).cpu().ledger().intervals();
  for (const sim::Interval& iv : intervals) {
    const sim::SimTime a = std::max(iv.start, t0);
    const sim::SimTime b = std::min(iv.end, t1);
    if (b > a) totals[static_cast<std::size_t>(iv.category)] += b - a;
  }
  return totals;
}

Oscilloscope::Util Oscilloscope::utilization(hw::StationId s, sim::SimTime t0,
                                             sim::SimTime t1) const {
  const auto totals = bucket_totals(s, t0, t1);
  const double span = static_cast<double>(t1 - t0);
  Util u;
  if (span <= 0) return u;
  u.user = static_cast<double>(totals[0]) / span;
  u.system = static_cast<double>(totals[1] + totals[2]) / span;
  u.idle_input = static_cast<double>(
                     totals[static_cast<std::size_t>(sim::Category::kIdleInput)]) /
                 span;
  u.idle_output =
      static_cast<double>(
          totals[static_cast<std::size_t>(sim::Category::kIdleOutput)]) /
      span;
  u.idle_mixed = static_cast<double>(
                     totals[static_cast<std::size_t>(sim::Category::kIdleMixed)]) /
                 span;
  u.idle_other = static_cast<double>(
                     totals[static_cast<std::size_t>(sim::Category::kIdleOther)]) /
                 span;
  return u;
}

std::string Oscilloscope::render(sim::SimTime t0, sim::SimTime t1,
                                 int cols) const {
  std::string out;
  char head[128];
  std::snprintf(head, sizeof head, "time %s .. %s  (%d buckets)\n",
                sim::format_duration(t0).c_str(),
                sim::format_duration(t1).c_str(), cols);
  out += head;
  const int stations = sys_.num_nodes() + sys_.num_hosts();
  for (int s = 0; s < stations; ++s) {
    std::string row;
    for (int b = 0; b < cols; ++b) {
      const sim::SimTime a = t0 + (t1 - t0) * b / cols;
      const sim::SimTime z = t0 + (t1 - t0) * (b + 1) / cols;
      const auto totals = bucket_totals(s, a, z);
      // Dominant category wins the bucket glyph.
      std::size_t best = 0;
      for (std::size_t c = 1; c < totals.size(); ++c) {
        if (totals[c] > totals[best]) best = c;
      }
      sim::Duration sum = 0;
      for (sim::Duration d : totals) sum += d;
      row += sum == 0 ? ' ' : glyph_for(static_cast<sim::Category>(best));
    }
    char label[32];
    std::snprintf(label, sizeof label, "%-6s |", sys_.station(s).name().c_str());
    out += label + row + "|\n";
  }
  out += "legend: U user, S system, i idle-input, o idle-output, m idle-mixed, . idle-other\n";
  return out;
}

std::string Oscilloscope::render_csv(sim::SimTime t0, sim::SimTime t1,
                                     int buckets) const {
  std::string out =
      "station,bucket,t_start_us,user,system,idle_input,idle_output,idle_mixed,idle_other\n";
  const int stations = sys_.num_nodes() + sys_.num_hosts();
  char line[256];
  for (int s = 0; s < stations; ++s) {
    for (int b = 0; b < buckets; ++b) {
      const sim::SimTime a = t0 + (t1 - t0) * b / buckets;
      const sim::SimTime z = t0 + (t1 - t0) * (b + 1) / buckets;
      const Util u = utilization(s, a, z);
      std::snprintf(line, sizeof line, "%s,%d,%.1f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n",
                    sys_.station(s).name().c_str(), b, sim::to_usec(a), u.user,
                    u.system, u.idle_input, u.idle_output, u.idle_mixed,
                    u.idle_other);
      out += line;
    }
  }
  return out;
}

std::string Oscilloscope::save_recording() const {
  std::string out = "oscilloscope-recording v1\n";
  const int stations = sys_.num_nodes() + sys_.num_hosts();
  char line[96];
  for (int s = 0; s < stations; ++s) {
    const auto& iv = sys_.station(s).cpu().ledger().intervals();
    std::snprintf(line, sizeof line, "station %s %zu\n",
                  sys_.station(s).name().c_str(), iv.size());
    out += line;
    for (const sim::Interval& i : iv) {
      std::snprintf(line, sizeof line, "%lld %lld %d\n",
                    static_cast<long long>(i.start),
                    static_cast<long long>(i.end),
                    static_cast<int>(i.category));
      out += line;
    }
  }
  return out;
}

Oscilloscope::Recording Oscilloscope::Recording::parse(const std::string& text) {
  Recording rec;
  std::size_t pos = text.find('\n');  // skip the header line
  auto next_line = [&]() -> std::string {
    if (pos == std::string::npos) return {};
    const std::size_t start = pos + 1;
    pos = text.find('\n', start);
    return text.substr(start, pos == std::string::npos ? std::string::npos
                                                       : pos - start);
  };
  for (std::string line = next_line(); !line.empty(); line = next_line()) {
    char name[64];
    std::size_t count = 0;
    if (std::sscanf(line.c_str(), "station %63s %zu", name, &count) == 2) {
      rec.names_.emplace_back(name);
      rec.intervals_.emplace_back();
      rec.intervals_.back().reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        const std::string row = next_line();
        long long a = 0, b = 0;
        int cat = 0;
        if (std::sscanf(row.c_str(), "%lld %lld %d", &a, &b, &cat) == 3) {
          rec.intervals_.back().push_back(
              sim::Interval{a, b, static_cast<sim::Category>(cat)});
        }
      }
    }
  }
  return rec;
}

sim::SimTime Oscilloscope::Recording::end_time() const {
  sim::SimTime t = 0;
  for (const auto& iv : intervals_) {
    if (!iv.empty()) t = std::max(t, iv.back().end);
  }
  return t;
}

std::string render_interval_timeline(
    const std::vector<std::string>& names,
    const std::vector<std::vector<sim::Interval>>& intervals, sim::SimTime t0,
    sim::SimTime t1, int cols) {
  std::string out;
  char head[128];
  std::snprintf(head, sizeof head, "time %s .. %s  (%d buckets)\n",
                sim::format_duration(t0).c_str(),
                sim::format_duration(t1).c_str(), cols);
  out += head;
  for (std::size_t s = 0; s < names.size(); ++s) {
    std::string row;
    for (int b = 0; b < cols; ++b) {
      const sim::SimTime a = t0 + (t1 - t0) * b / cols;
      const sim::SimTime z = t0 + (t1 - t0) * (b + 1) / cols;
      std::array<sim::Duration, sim::kNumCategories> totals{};
      for (const sim::Interval& iv : intervals[s]) {
        const sim::SimTime lo = std::max(iv.start, a);
        const sim::SimTime hi = std::min(iv.end, z);
        if (hi > lo) totals[static_cast<std::size_t>(iv.category)] += hi - lo;
      }
      std::size_t best = 0;
      for (std::size_t c = 1; c < totals.size(); ++c) {
        if (totals[c] > totals[best]) best = c;
      }
      sim::Duration sum = 0;
      for (sim::Duration d : totals) sum += d;
      row += sum == 0 ? ' ' : glyph_for(static_cast<sim::Category>(best));
    }
    char label[32];
    std::snprintf(label, sizeof label, "%-6s |", names[s].c_str());
    out += label + row + "|\n";
  }
  return out;
}

std::string Oscilloscope::Recording::render(sim::SimTime t0, sim::SimTime t1,
                                            int cols) const {
  return render_interval_timeline(names_, intervals_, t0, t1, cols);
}

}  // namespace hpcvorx::tools
