// The software oscilloscope (§6.2).
//
// "VORX includes a tool called the software oscilloscope that helps the
// programmer visualize how well processors of an application are utilized
// and how well the computational load is balanced. ... displays a graph
// for each processor indicating CPU time usage with different colors used
// to partition time into several categories ... user time ... system time
// ... idle time [partitioned into] waiting for input ... waiting for
// output ... some threads waiting for input and others waiting for output
// ... idle for some other reason.  Execution data is recorded while the
// application is running and later the software oscilloscope is used to
// display the data.  The software oscilloscope synchronizes all the graphs
// with each other ... It is possible to freeze the display, run faster or
// slower than real-time, or seek to any moment in execution time."
//
// Recording is the CPU models' interval ledgers (SystemConfig::
// record_intervals).  Rendering produces synchronized per-processor
// character timelines; freeze/zoom/seek are expressed as the [t0, t1)
// window and column count of render().
#pragma once

#include <array>
#include <string>
#include <vector>

#include "vorx/system.hpp"

namespace hpcvorx::tools {

/// The oscilloscope-style timeline renderer over raw per-station interval
/// lists: one row per station, `cols` dominant-category glyph buckets over
/// [t0, t1).  Shared by the live tool's Recording and by tools::TraceReplay
/// so a trace re-rendered offline matches a recording rendered in-process.
[[nodiscard]] std::string render_interval_timeline(
    const std::vector<std::string>& names,
    const std::vector<std::vector<sim::Interval>>& intervals, sim::SimTime t0,
    sim::SimTime t1, int cols);

class Oscilloscope {
 public:
  explicit Oscilloscope(vorx::System& sys) : sys_(sys) {}

  /// Per-category time shares for one station over a window.
  struct Util {
    double user = 0;
    double system = 0;  // includes context-switch time
    double idle_input = 0;
    double idle_output = 0;
    double idle_mixed = 0;
    double idle_other = 0;
  };
  [[nodiscard]] Util utilization(hw::StationId s, sim::SimTime t0,
                                 sim::SimTime t1) const;

  /// Synchronized timelines, one row per station, `cols` time buckets wide.
  /// Bucket glyphs: U user, S system (incl. switches), i idle-input,
  /// o idle-output, m idle-mixed, '.' idle-other.  Any [t0, t1) window may
  /// be rendered: that is the freeze/zoom/seek capability.
  [[nodiscard]] std::string render(sim::SimTime t0, sim::SimTime t1,
                                   int cols) const;

  /// Machine-readable export: one row per (station, bucket) with shares.
  [[nodiscard]] std::string render_csv(sim::SimTime t0, sim::SimTime t1,
                                       int buckets) const;

  // ---- recordings (§6.2: "Execution data is recorded while the
  // application is running and later the software oscilloscope is used to
  // display the data") ----

  /// Serializes every station's interval recording.
  [[nodiscard]] std::string save_recording() const;

  /// A stand-alone recording: per-station interval lists restored from
  /// save_recording() output, renderable long after the run (and System)
  /// are gone.
  class Recording {
   public:
    static Recording parse(const std::string& text);
    [[nodiscard]] int stations() const { return static_cast<int>(names_.size()); }
    [[nodiscard]] const std::string& station_name(int s) const {
      return names_[static_cast<std::size_t>(s)];
    }
    [[nodiscard]] const std::vector<sim::Interval>& intervals(int s) const {
      return intervals_[static_cast<std::size_t>(s)];
    }
    [[nodiscard]] sim::SimTime end_time() const;
    /// Same synchronized-timeline rendering as the live tool.
    [[nodiscard]] std::string render(sim::SimTime t0, sim::SimTime t1,
                                     int cols) const;

   private:
    std::vector<std::string> names_;
    std::vector<std::vector<sim::Interval>> intervals_;
  };

 private:
  // Time per category within [t0, t1) for one station.
  [[nodiscard]] std::array<sim::Duration, sim::kNumCategories> bucket_totals(
      hw::StationId s, sim::SimTime t0, sim::SimTime t1) const;

  vorx::System& sys_;
};

}  // namespace hpcvorx::tools
