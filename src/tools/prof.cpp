#include "tools/prof.hpp"

#include <algorithm>
#include <cstdio>

namespace hpcvorx::tools {

sim::Task<void> Profiler::run(vorx::Subprocess& sp, std::string region,
                              sim::Duration cost) {
  co_await sp.compute(cost);
  Accum& a = regions_[region];
  a.total += cost;
  a.calls += 1;
  total_ += cost;
}

std::vector<Profiler::Line> Profiler::report() const {
  std::vector<Line> out;
  for (const auto& [name, a] : regions_) {
    Line l;
    l.region = name;
    l.total = a.total;
    l.calls = a.calls;
    l.percent = total_ > 0 ? 100.0 * static_cast<double>(a.total) /
                                 static_cast<double>(total_)
                           : 0.0;
    out.push_back(std::move(l));
  }
  std::sort(out.begin(), out.end(),
            [](const Line& a, const Line& b) { return a.total > b.total; });
  return out;
}

std::string Profiler::render() const {
  std::string out = "  %time   seconds    calls  name\n";
  char line[160];
  for (const Line& l : report()) {
    std::snprintf(line, sizeof line, "%7.1f %9.4f %8llu  %s\n", l.percent,
                  sim::to_sec(l.total),
                  static_cast<unsigned long long>(l.calls), l.region.c_str());
    out += line;
  }
  return out;
}

}  // namespace hpcvorx::tools
