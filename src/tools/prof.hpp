// prof — flat execution-time profiling (§6.2).
//
// "The prof profiling system available in VORX can be run on a process to
// show how execution time is divided up among different parts of the
// program.  Typically one finds that a large portion of the execution time
// is spent in a small section of the code."
//
// Applications run their compute phases through Profiler::run(), which
// charges the CPU exactly like Subprocess::compute() and attributes the
// cost to a named program region.  The report is the classic flat profile.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/task.hpp"
#include "vorx/process.hpp"

namespace hpcvorx::tools {

class Profiler {
 public:
  /// Executes `cost` of user code attributed to `region`.
  [[nodiscard]] sim::Task<void> run(vorx::Subprocess& sp, std::string region,
                                    sim::Duration cost);

  struct Line {
    std::string region;
    sim::Duration total = 0;
    std::uint64_t calls = 0;
    double percent = 0;
  };

  /// Flat profile, most expensive region first.
  [[nodiscard]] std::vector<Line> report() const;

  /// The classic prof text output.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] sim::Duration total() const { return total_; }
  void reset() {
    regions_.clear();
    total_ = 0;
  }

 private:
  struct Accum {
    sim::Duration total = 0;
    std::uint64_t calls = 0;
  };
  std::map<std::string, Accum> regions_;
  sim::Duration total_ = 0;
};

}  // namespace hpcvorx::tools
