#include "tools/trace_export.hpp"

#include <cstdio>
#include <fstream>
#include <unordered_map>

#include "vorx/system.hpp"

namespace hpcvorx::tools {

namespace {

// Virtual nanoseconds rendered as microseconds with a fixed three-digit
// fraction.  Integer arithmetic, so the text depends only on the SimTime.
std::string usec_fixed(sim::SimTime ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  return buf;
}

std::string number_fixed(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void TraceExporter::add_station(const std::string& name,
                                const sim::TimeLedger& ledger) {
  stations_.push_back(StationTrack{name, ledger.intervals()});
}

void TraceExporter::add_counters(const sim::CounterTimeline& timeline) {
  samples_.insert(samples_.end(), timeline.samples().begin(),
                  timeline.samples().end());
}

TraceExporter TraceExporter::from_system(vorx::System& system) {
  system.finalize_accounting();
  TraceExporter exp;
  const int stations = system.num_nodes() + system.num_hosts();
  for (int s = 0; s < stations; ++s) {
    sim::Cpu& cpu = system.station(s).cpu();
    exp.add_station(cpu.name(), cpu.ledger());
  }
  exp.add_counters(system.simulator().counters());
  return exp;
}

std::string TraceExporter::render() const {
  // Track name -> pid.  Stations claim pids [0, N); counter tracks that are
  // not stations get synthetic pids in first-appearance order, which is
  // deterministic because samples are kept in insertion order.
  std::unordered_map<std::string, int> pid_of;
  for (std::size_t i = 0; i < stations_.size(); ++i) {
    pid_of.emplace(stations_[i].name, static_cast<int>(i));
  }

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&out, &first](const std::string& ev) {
    if (!first) out += ',';
    first = false;
    out += '\n';
    out += ev;
  };

  auto process_name = [](const std::string& name, int pid) {
    return "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
           std::to_string(pid) + ",\"tid\":0,\"args\":{\"name\":\"" +
           json_escape(name) + "\"}}";
  };

  for (std::size_t i = 0; i < stations_.size(); ++i) {
    emit(process_name(stations_[i].name, static_cast<int>(i)));
  }

  // Synthetic processes for non-station counter tracks, in first-appearance
  // order so the metadata block is stable.  They start at kSyntheticPidBase,
  // far above any realistic station count, so a track can never collide
  // with a station pid regardless of add_station/add_counters ordering.
  int next_pid = kSyntheticPidBase;
  for (const sim::CounterTimeline::Sample& s : samples_) {
    if (pid_of.emplace(s.track, next_pid).second) {
      emit(process_name(s.track, next_pid));
      ++next_pid;
    }
  }

  // Execution slices: one "X" complete event per ledger interval, all on
  // tid 0 so each station renders as a single oscilloscope-style row.
  for (std::size_t i = 0; i < stations_.size(); ++i) {
    for (const sim::Interval& iv : stations_[i].intervals) {
      emit("{\"name\":\"" +
           std::string(sim::category_name(iv.category)) +
           "\",\"ph\":\"X\",\"cat\":\"cpu\",\"pid\":" + std::to_string(i) +
           ",\"tid\":0,\"ts\":" + usec_fixed(iv.start) +
           ",\"dur\":" + usec_fixed(iv.end - iv.start) + "}");
    }
  }

  // Counter series, in sample (== chronological) order.
  for (const sim::CounterTimeline::Sample& s : samples_) {
    emit("{\"name\":\"" + json_escape(s.counter) +
         "\",\"ph\":\"C\",\"pid\":" + std::to_string(pid_of.at(s.track)) +
         ",\"ts\":" + usec_fixed(s.t) + ",\"args\":{\"" +
         json_escape(s.counter) + "\":" + number_fixed(s.value) + "}}");
  }

  out += "\n],\"displayTimeUnit\":\"ns\"}\n";
  return out;
}

bool TraceExporter::write_file(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << render();
  return f.good();
}

}  // namespace hpcvorx::tools
