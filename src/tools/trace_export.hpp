// Chrome trace_event exporter: turns the simulator's execution ledgers and
// counter timeline into a JSON trace that loads directly in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing.
//
// Mapping:
//   * each station becomes one trace *process* (pid = station id) named
//     after its CPU ("n0", "ws0", ...), carrying one thread of "X"
//     complete events — the TimeLedger intervals, one slice per
//     user/system/ctxsw/idle span, exactly what the software oscilloscope
//     draws as a waveform (§6.2);
//   * every CounterTimeline track (kernel txq depth, link bytes, cluster
//     head-of-line time, CPU context switches, ...) becomes a "C" counter
//     series under its owning process, or under a synthetic process when
//     the track is not a station (links, clusters).
//
// All timestamps are *virtual* time: integer simulated nanoseconds printed
// as microseconds with a fixed three-digit fraction.  The exporter never
// reads a wall clock, so two runs of the same deterministic simulation
// render byte-identical traces (tested by tests/trace_export_test.cpp).
#pragma once

#include <string>
#include <vector>

#include "sim/trace.hpp"

namespace hpcvorx::vorx {
class System;
}  // namespace hpcvorx::vorx

namespace hpcvorx::tools {

/// First pid handed to synthetic (non-station) counter-track processes.
/// Stations own pids [0, N); synthetic tracks start here so no add_station
/// / add_counters call order — or a station count discovered after counters
/// were added — can make a counter track collide with a station pid
/// (regression-tested in tests/trace_export_test.cpp).
inline constexpr int kSyntheticPidBase = 1 << 20;

class TraceExporter {
 public:
  /// Adds one station's execution ledger as a slice track.  Stations must
  /// be added in station-id order; the ledger must have interval recording
  /// enabled (SystemConfig::record_intervals) and accounting finalized.
  void add_station(const std::string& name, const sim::TimeLedger& ledger);

  /// Adds every sample from a counter timeline.  Tracks whose name matches
  /// a previously added station attach to that process; the rest get
  /// synthetic processes in first-appearance order.
  void add_counters(const sim::CounterTimeline& timeline);

  /// Convenience: finalizes accounting and captures every station ledger
  /// plus the simulator's counter timeline.
  [[nodiscard]] static TraceExporter from_system(vorx::System& system);

  /// Renders the trace as a JSON object ({"traceEvents":[...]}).  Output
  /// depends only on the captured data — deterministic byte-for-byte.
  [[nodiscard]] std::string render() const;

  /// Writes render() to `path`; returns false if the file cannot be opened.
  bool write_file(const std::string& path) const;

 private:
  struct StationTrack {
    std::string name;
    std::vector<sim::Interval> intervals;
  };

  std::vector<StationTrack> stations_;
  std::vector<sim::CounterTimeline::Sample> samples_;
};

}  // namespace hpcvorx::tools
