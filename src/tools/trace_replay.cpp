#include "tools/trace_replay.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "tools/oscilloscope.hpp"
#include "tools/trace_export.hpp"

namespace hpcvorx::tools {

namespace {

// Parses the exporter's fixed-point microseconds ("123.456") back into
// integer nanoseconds.  Integer arithmetic both ways, so a replayed time
// is exactly the SimTime the exporter printed.
bool parse_fixed_ns(const char* p, sim::SimTime* out) {
  char* end = nullptr;
  const long long whole = std::strtoll(p, &end, 10);
  if (end == p) return false;
  long long frac = 0;
  if (*end == '.') {
    char* fend = nullptr;
    frac = std::strtoll(end + 1, &fend, 10);
    if (fend != end + 4) return false;  // the exporter always prints .ddd
  }
  *out = whole * 1000 + frac;
  return true;
}

// Locates `"key":` in `line` and returns a pointer just past the colon.
const char* find_key(const std::string& line, const char* key) {
  std::string pat = "\"";
  pat += key;
  pat += "\":";
  const std::size_t at = line.find(pat);
  return at == std::string::npos ? nullptr : line.c_str() + at + pat.size();
}

bool find_ll(const std::string& line, const char* key, long long* out) {
  const char* p = find_key(line, key);
  if (p == nullptr) return false;
  char* end = nullptr;
  *out = std::strtoll(p, &end, 10);
  return end != p;
}

bool find_time(const std::string& line, const char* key, sim::SimTime* out) {
  const char* p = find_key(line, key);
  return p != nullptr && parse_fixed_ns(p, out);
}

// Reads the quoted value after `"key":"` up to the closing quote.  Station
// and counter names contain no escapes, so no unescaping is needed.
bool find_str(const std::string& line, const char* key, std::string* out) {
  const char* p = find_key(line, key);
  if (p == nullptr || *p != '"') return false;
  const char* close = std::strchr(p + 1, '"');
  if (close == nullptr) return false;
  out->assign(p + 1, close);
  return true;
}

bool category_from_name(const std::string& name, sim::Category* out) {
  for (std::size_t c = 0; c < sim::kNumCategories; ++c) {
    const auto cat = static_cast<sim::Category>(c);
    if (name == sim::category_name(cat)) {
      *out = cat;
      return true;
    }
  }
  return false;
}

}  // namespace

TraceReplay TraceReplay::parse(const std::string& json) {
  TraceReplay rep;
  std::unordered_map<long long, std::string> proc_name;   // all processes
  std::unordered_map<long long, std::size_t> station_of;  // pid -> names_ idx
  std::unordered_map<std::string, std::size_t> series_of; // pid|counter idx

  std::istringstream in(json);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"ph\":\"M\"") != std::string::npos) {
      // Process metadata: {"name":"process_name",...,"pid":P,
      //                    "args":{"name":"<track>"}}
      long long pid = 0;
      std::string name;
      const std::size_t args = line.find("\"args\":");
      if (!find_ll(line, "pid", &pid) || args == std::string::npos) continue;
      const std::string tail = line.substr(args);
      if (!find_str(tail, "name", &name)) continue;
      proc_name.emplace(pid, name);
      if (pid < kSyntheticPidBase &&
          station_of.emplace(pid, rep.names_.size()).second) {
        rep.names_.push_back(name);
        rep.intervals_.emplace_back();
      }
      continue;
    }
    if (line.find("\"ph\":\"X\"") != std::string::npos) {
      long long pid = 0;
      sim::SimTime ts = 0, dur = 0;
      std::string name;
      sim::Category cat{};
      if (!find_ll(line, "pid", &pid) || !find_time(line, "ts", &ts) ||
          !find_time(line, "dur", &dur) || !find_str(line, "name", &name) ||
          !category_from_name(name, &cat)) {
        continue;
      }
      const auto it = station_of.find(pid);
      if (it == station_of.end()) continue;
      rep.intervals_[it->second].push_back(sim::Interval{ts, ts + dur, cat});
      continue;
    }
    if (line.find("\"ph\":\"C\"") != std::string::npos) {
      long long pid = 0;
      sim::SimTime ts = 0;
      std::string counter;
      if (!find_ll(line, "pid", &pid) || !find_time(line, "ts", &ts) ||
          !find_str(line, "name", &counter)) {
        continue;
      }
      const std::size_t args = line.find("\"args\":");
      if (args == std::string::npos) continue;
      const std::string tail = line.substr(args);
      const char* v = find_key(tail, counter.c_str());
      if (v == nullptr) continue;
      const double value = std::strtod(v, nullptr);
      if (ts > rep.counter_end_) rep.counter_end_ = ts;
      const std::string key = std::to_string(pid) + "|" + counter;
      auto [entry, inserted] = series_of.emplace(key, rep.counters_.size());
      if (inserted) {
        const auto pn = proc_name.find(pid);
        rep.counters_.push_back(CounterSeries{
            pn == proc_name.end() ? std::to_string(pid) : pn->second, counter,
            0, 0, value});
      }
      CounterSeries& s = rep.counters_[entry->second];
      ++s.samples;
      s.last = value;
      if (value > s.max) s.max = value;
      continue;
    }
  }
  rep.ok_ = !proc_name.empty();
  return rep;
}

TraceReplay TraceReplay::load(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return TraceReplay{};
  std::ostringstream buf;
  buf << f.rdbuf();
  return parse(buf.str());
}

sim::SimTime TraceReplay::end_time() const {
  sim::SimTime t = counter_end_;
  for (const auto& iv : intervals_) {
    for (const sim::Interval& i : iv) {
      if (i.end > t) t = i.end;
    }
  }
  return t;
}

std::string TraceReplay::render(sim::SimTime t0, sim::SimTime t1,
                                int cols) const {
  return render_interval_timeline(names_, intervals_, t0, t1, cols);
}

std::string TraceReplay::counter_summary() const {
  std::string out =
      "track                    counter                       samples"
      "           last            max\n";
  char line[160];
  for (const CounterSeries& s : counters_) {
    std::snprintf(line, sizeof line, "%-24s %-28s %8zu %14.3f %14.3f\n",
                  s.track.c_str(), s.counter.c_str(), s.samples, s.last,
                  s.max);
    out += line;
  }
  return out;
}

std::string TraceReplay::counter_diff(const TraceReplay& a,
                                      const TraceReplay& b,
                                      const std::string& label_a,
                                      const std::string& label_b) {
  // Align by (track, counter); an ordered map keeps the merged rows sorted,
  // so the diff is byte-stable no matter which trace supplied a series
  // first.
  std::map<std::pair<std::string, std::string>,
           std::pair<const CounterSeries*, const CounterSeries*>>
      rows;
  for (const CounterSeries& s : a.counters_)
    rows[{s.track, s.counter}].first = &s;
  for (const CounterSeries& s : b.counters_)
    rows[{s.track, s.counter}].second = &s;

  char line[224];
  std::snprintf(line, sizeof line, "%-24s %-28s %14s %14s  %14s %14s\n",
                "track", "counter", (label_a + ":last").c_str(),
                (label_a + ":max").c_str(), (label_b + ":last").c_str(),
                (label_b + ":max").c_str());
  std::string out = line;
  for (const auto& [key, sides] : rows) {
    const auto cell = [](const CounterSeries* s, double CounterSeries::*f) {
      char buf[32];
      if (s == nullptr) return std::string("             -");
      std::snprintf(buf, sizeof buf, "%14.3f", s->*f);
      return std::string(buf);
    };
    std::string marker;
    if (sides.first == nullptr) marker = "  [" + label_b + " only]";
    if (sides.second == nullptr) marker = "  [" + label_a + " only]";
    std::snprintf(line, sizeof line, "%-24s %-28s %s %s  %s %s%s\n",
                  key.first.c_str(), key.second.c_str(),
                  cell(sides.first, &CounterSeries::last).c_str(),
                  cell(sides.first, &CounterSeries::max).c_str(),
                  cell(sides.second, &CounterSeries::last).c_str(),
                  cell(sides.second, &CounterSeries::max).c_str(),
                  marker.c_str());
    out += line;
  }
  return out;
}

}  // namespace hpcvorx::tools
