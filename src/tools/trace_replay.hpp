// Offline trace replay: re-renders a saved Perfetto trace (*.trace.json,
// written by tools::TraceExporter) without rerunning the simulation.
//
// §6.2: "Execution data is recorded while the application is running and
// later the software oscilloscope is used to display the data."  The live
// Oscilloscope draws from a running System; this sibling closes the loop
// for CI artifacts — download a bench's archived trace and inspect the
// same synchronized waveform (and the counter tracks) in a terminal,
// long after the run is gone (`devtools_tour --replay FILE`).
//
// The parser understands exactly the exporter's line-per-event dialect:
//   * "M" process_name metadata names each process; pids below
//     kSyntheticPidBase are stations, the rest are counter-only tracks;
//   * "X" complete events are TimeLedger intervals (name = category);
//   * "C" counter events carry one {counter: value} sample.
#pragma once

#include <string>
#include <vector>

#include "sim/trace.hpp"

namespace hpcvorx::tools {

class TraceReplay {
 public:
  /// Parses exporter-dialect trace JSON.  Unrecognized lines are skipped,
  /// so a hand-edited or truncated trace degrades instead of failing.
  [[nodiscard]] static TraceReplay parse(const std::string& json);

  /// Reads `path` and parses it.  `ok()` is false if the file could not
  /// be read or contained no process at all.
  [[nodiscard]] static TraceReplay load(const std::string& path);

  [[nodiscard]] bool ok() const { return ok_; }

  // ---- stations (slice tracks) ----
  [[nodiscard]] int stations() const { return static_cast<int>(names_.size()); }
  [[nodiscard]] const std::string& station_name(int s) const {
    return names_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] const std::vector<sim::Interval>& intervals(int s) const {
    return intervals_[static_cast<std::size_t>(s)];
  }
  /// Latest interval end or counter sample time in the trace.
  [[nodiscard]] sim::SimTime end_time() const;

  /// The same synchronized glyph timeline the live Oscilloscope renders
  /// (shared renderer: render_interval_timeline).
  [[nodiscard]] std::string render(sim::SimTime t0, sim::SimTime t1,
                                   int cols) const;

  // ---- counter tracks ----
  struct CounterSeries {
    std::string track;    // owning process name ("engine", "mcast.g7000", ...)
    std::string counter;  // series name ("heap_size", "fanout_depth", ...)
    std::size_t samples = 0;
    double last = 0;  // final sampled value
    double max = 0;   // maximum sampled value
  };
  [[nodiscard]] const std::vector<CounterSeries>& counters() const {
    return counters_;
  }
  /// One line per counter series: track, counter, sample count, last, max.
  [[nodiscard]] std::string counter_summary() const;

  /// Side-by-side comparison of two replays' counter tracks, aligned by
  /// (track, counter): one row per series present in either trace, with
  /// `label_a`/`label_b` column pairs and a `-` cell where a series exists
  /// on one side only (plus an `[<label> only]` marker).  This is how a
  /// sw-multicast bench trace is compared against its hw-multicast twin
  /// without rerunning either (`devtools_tour --replay-diff A B`).
  [[nodiscard]] static std::string counter_diff(const TraceReplay& a,
                                                const TraceReplay& b,
                                                const std::string& label_a,
                                                const std::string& label_b);

 private:
  bool ok_ = false;
  sim::SimTime counter_end_ = 0;  // latest "C" sample ts seen during parse
  std::vector<std::string> names_;
  std::vector<std::vector<sim::Interval>> intervals_;
  std::vector<CounterSeries> counters_;
};

}  // namespace hpcvorx::tools
