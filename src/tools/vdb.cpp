#include "tools/vdb.hpp"

#include <cstdio>

namespace hpcvorx::tools {

void Vdb::collect(vorx::Node& node, hw::StationId s, int pid_filter,
                  std::vector<ThreadReport>& out) const {
  for (const auto& proc : node.processes()) {
    if (pid_filter >= 0 && proc->pid() != pid_filter) continue;
    for (const auto& sp : proc->subprocesses()) {
      ThreadReport r;
      r.station = s;
      r.node = node.name();
      r.pid = proc->pid();
      r.process = proc->name();
      r.subprocess = sp->name();
      r.priority = sp->priority();
      r.state = sp->state();
      out.push_back(std::move(r));
    }
  }
}

std::vector<ThreadReport> Vdb::attach(hw::StationId station, int pid) const {
  std::vector<ThreadReport> out;
  collect(sys_.station(station), station, pid, out);
  return out;
}

std::vector<ThreadReport> Vdb::all() const {
  std::vector<ThreadReport> out;
  const int stations = sys_.num_nodes() + sys_.num_hosts();
  for (int s = 0; s < stations; ++s) collect(sys_.station(s), s, -1, out);
  return out;
}

std::vector<ThreadReport> Vdb::blocked() const {
  std::vector<ThreadReport> out;
  for (ThreadReport& r : all()) {
    if (r.state != vorx::SpState::kRunning && r.state != vorx::SpState::kDone) {
      out.push_back(std::move(r));
    }
  }
  return out;
}

void Vdb::set_breakpoint(const std::string& label, hw::StationId station) {
  const int stations = sys_.num_nodes() + sys_.num_hosts();
  for (int s = 0; s < stations; ++s) {
    if (station < 0 || station == s) sys_.station(s).arm_breakpoint(label);
  }
}

void Vdb::clear_breakpoint(const std::string& label, hw::StationId station) {
  const int stations = sys_.num_nodes() + sys_.num_hosts();
  for (int s = 0; s < stations; ++s) {
    if (station < 0 || station == s) sys_.station(s).disarm_breakpoint(label);
  }
}

std::vector<ThreadReport> Vdb::stopped() const {
  std::vector<ThreadReport> out;
  for (ThreadReport& r : all()) {
    if (r.state == vorx::SpState::kStopped) out.push_back(std::move(r));
  }
  return out;
}

int Vdb::continue_stopped(const std::string& label) {
  int resumed = 0;
  const int stations = sys_.num_nodes() + sys_.num_hosts();
  for (int s = 0; s < stations; ++s) {
    for (const auto& proc : sys_.station(s).processes()) {
      for (const auto& sp : proc->subprocesses()) {
        if (sp->state() == vorx::SpState::kStopped &&
            (label.empty() || sp->stopped_at() == label)) {
          sp->resume_from_breakpoint();
          ++resumed;
        }
      }
    }
  }
  return resumed;
}

std::map<std::string, std::int64_t> Vdb::locals(
    hw::StationId station, int pid, const std::string& subprocess) const {
  for (const auto& proc : sys_.station(station).processes()) {
    if (proc->pid() != pid) continue;
    for (const auto& sp : proc->subprocesses()) {
      if (sp->name() == subprocess) return sp->locals();
    }
  }
  return {};
}

std::string Vdb::render(const std::vector<ThreadReport>& in) {
  std::string out = "NODE   PID  PROCESS            SUBPROCESS           PRIO  STATE\n";
  char line[224];
  for (const ThreadReport& r : in) {
    std::snprintf(line, sizeof line, "%-6s %-4d %-18s %-20s %-5d %s\n",
                  r.node.c_str(), r.pid, r.process.c_str(),
                  r.subprocess.c_str(), r.priority,
                  std::string(vorx::sp_state_name(r.state)).c_str());
    out += line;
  }
  return out;
}

}  // namespace hpcvorx::tools
