// vdb — the symbolic debugger's process-inspection capability (§6).
//
// The original vdb was a full symbolic debugger (a descendant of sdb); the
// capability this reproduction models is the one §6 highlights as the VORX
// improvement: "VORX makes it possible for the programmer to attach vdb to
// any process that is running and to switch between the processes of his
// application" — plus the Meglos-era enhancement of switching between
// subprocesses to examine their state.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "vorx/system.hpp"

namespace hpcvorx::tools {

struct ThreadReport {
  hw::StationId station = -1;
  std::string node;
  int pid = 0;
  std::string process;
  std::string subprocess;
  int priority = 0;
  vorx::SpState state = vorx::SpState::kRunning;
};

class Vdb {
 public:
  explicit Vdb(vorx::System& sys) : sys_(sys) {}

  /// Attach to one running process: its subprocesses and their states.
  [[nodiscard]] std::vector<ThreadReport> attach(hw::StationId station,
                                                 int pid) const;

  /// Every subprocess in the system (switching between processes).
  [[nodiscard]] std::vector<ThreadReport> all() const;

  /// Only threads that are not runnable (the usual question).
  [[nodiscard]] std::vector<ThreadReport> blocked() const;

  // ---- breakpoint debugging (§6) ----
  /// Arms `label` on every node (or one station if given): subprocesses
  /// reaching Subprocess::breakpoint(label) park until continued.
  void set_breakpoint(const std::string& label, hw::StationId station = -1);
  void clear_breakpoint(const std::string& label, hw::StationId station = -1);

  /// Threads currently parked at breakpoints, with their labels and
  /// published locals rendered.
  [[nodiscard]] std::vector<ThreadReport> stopped() const;

  /// Resumes every thread parked at `label` (empty = all stopped threads).
  /// Returns how many were continued.
  int continue_stopped(const std::string& label = "");

  /// The published locals of one subprocess ("examine their local
  /// variables").
  [[nodiscard]] std::map<std::string, std::int64_t> locals(
      hw::StationId station, int pid, const std::string& subprocess) const;

  [[nodiscard]] static std::string render(const std::vector<ThreadReport>& in);

 private:
  void collect(vorx::Node& node, hw::StationId s, int pid_filter,
               std::vector<ThreadReport>& out) const;
  vorx::System& sys_;
};

}  // namespace hpcvorx::tools
