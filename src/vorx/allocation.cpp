#include "vorx/allocation.hpp"

#include <algorithm>

namespace hpcvorx::vorx {

std::optional<std::vector<int>> MeglosAllocator::exec(int n, bool exclusive) {
  std::vector<int> got;
  for (std::size_t i = 0; i < cpus_.size() && static_cast<int>(got.size()) < n;
       ++i) {
    const Slot& s = cpus_[i];
    if (exclusive) {
      if (s.processes == 0 && !s.exclusive) got.push_back(static_cast<int>(i));
    } else {
      if (!s.exclusive && s.processes < kMaxProcessesPerProcessor) {
        got.push_back(static_cast<int>(i));
      }
    }
  }
  if (static_cast<int>(got.size()) < n) {
    ++failures_;  // "processors not available"
    return std::nullopt;
  }
  for (int p : got) {
    cpus_[static_cast<std::size_t>(p)].processes += 1;
    if (exclusive) cpus_[static_cast<std::size_t>(p)].exclusive = true;
  }
  return got;
}

void MeglosAllocator::exit(const std::vector<int>& procs, bool exclusive) {
  for (int p : procs) {
    Slot& s = cpus_[static_cast<std::size_t>(p)];
    s.processes -= 1;
    if (exclusive) s.exclusive = false;
  }
}

int MeglosAllocator::free_processors() const {
  int n = 0;
  for (const Slot& s : cpus_) n += (s.processes == 0 && !s.exclusive);
  return n;
}

std::optional<std::vector<int>> VorxAllocator::allocate(int user, int n,
                                                        sim::SimTime now) {
  std::vector<int> got;
  for (std::size_t i = 0; i < owner_.size() && static_cast<int>(got.size()) < n;
       ++i) {
    if (owner_[i] == -1) got.push_back(static_cast<int>(i));
  }
  if (static_cast<int>(got.size()) < n) {
    ++failures_;
    return std::nullopt;
  }
  for (int p : got) owner_[static_cast<std::size_t>(p)] = user;
  note_activity(user, now);
  return got;
}

bool VorxAllocator::can_run(int user, int n) const { return held_by(user) >= n; }

void VorxAllocator::free_processors(int user, const std::vector<int>& procs) {
  for (int p : procs) {
    if (owner_[static_cast<std::size_t>(p)] == user) {
      owner_[static_cast<std::size_t>(p)] = -1;
    }
  }
}

void VorxAllocator::free_user(int user) {
  for (int& o : owner_) {
    if (o == user) o = -1;
  }
  last_activity_.erase(user);
}

int VorxAllocator::force_free(const std::vector<int>& procs) {
  int taken = 0;
  for (int p : procs) {
    int& o = owner_[static_cast<std::size_t>(p)];
    if (o != -1) {
      o = -1;
      ++taken;
    }
  }
  return taken;
}

void VorxAllocator::note_activity(int user, sim::SimTime now) {
  last_activity_[user] = now;
}

int VorxAllocator::reap_idle(sim::SimTime now, sim::Duration timeout) {
  int reclaimed = 0;
  for (auto it = last_activity_.begin(); it != last_activity_.end();) {
    if (now - it->second >= timeout) {
      const int user = it->first;
      for (int& o : owner_) {
        if (o == user) {
          o = -1;
          ++reclaimed;
        }
      }
      it = last_activity_.erase(it);
    } else {
      ++it;
    }
  }
  return reclaimed;
}

int VorxAllocator::free_count() const {
  return static_cast<int>(std::count(owner_.begin(), owner_.end(), -1));
}

int VorxAllocator::held_by(int user) const {
  return static_cast<int>(std::count(owner_.begin(), owner_.end(), user));
}

}  // namespace hpcvorx::vorx
