// Processor allocation policies (§3.1).
//
// Meglos: "processors were allocated to an application when it started
// running.  When the application finished, its processors were returned to
// the free pool" — maximizing availability, but during a programmer's
// recompile somebody else could start an exclusive application on "their"
// processors, yielding the diagnostic "processors not available".
//
// VORX: "formalizes the allocation of processors to users by requiring a
// user to allocate all the processors that he needs before running an
// application.  The processors are not available to anyone else until they
// are explicitly freed" — stable development sessions, at the cost of
// processors idled by forgetful users, mitigated by a (dangerous)
// force-free command and by idle-reaping policies the paper considered.
//
// Both allocators are deterministic state machines over virtual time; the
// multi-user workload that exercises them lives in bench_allocation.cpp.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "sim/time.hpp"

namespace hpcvorx::vorx {

/// Meglos-era allocation: per-execution, free-at-exit, with optional
/// processor sharing (up to 15 processes per processor) and the
/// later-added exclusive-access capability.
class MeglosAllocator {
 public:
  static constexpr int kMaxProcessesPerProcessor = 15;

  explicit MeglosAllocator(int processors)
      : cpus_(static_cast<std::size_t>(processors)) {}

  /// Attempts to start an application with one process on each of `n`
  /// processors.  Returns the processor set, or nullopt — the paper's
  /// "processors not available" diagnostic — and counts the failure.
  std::optional<std::vector<int>> exec(int n, bool exclusive);

  /// Application finished: its processors return to the pool immediately.
  void exit(const std::vector<int>& procs, bool exclusive);

  [[nodiscard]] std::uint64_t failures() const { return failures_; }
  [[nodiscard]] int free_processors() const;

 private:
  struct Slot {
    int processes = 0;
    bool exclusive = false;
  };
  std::vector<Slot> cpus_;
  std::uint64_t failures_ = 0;
};

/// VORX allocation: explicit user-level allocate/free with session
/// stability, plus the recovery mechanisms §3.1 discusses.
class VorxAllocator {
 public:
  explicit VorxAllocator(int processors)
      : owner_(static_cast<std::size_t>(processors), -1) {}

  /// Reserves `n` processors for `user` (they stay reserved across any
  /// number of runs until freed).
  std::optional<std::vector<int>> allocate(int user, int n,
                                           sim::SimTime now = 0);

  /// Runs an application on processors the user already holds; never
  /// steals from anyone, so it fails only if the user holds fewer than n.
  [[nodiscard]] bool can_run(int user, int n) const;

  void free_processors(int user, const std::vector<int>& procs);
  void free_user(int user);

  /// The §3.1 command "that allows a user to free processors allocated to
  /// other users, and request that it be used carefully".  Returns how
  /// many processors were taken away.
  int force_free(const std::vector<int>& procs);

  /// Marks the user as active (program started, processors touched).
  void note_activity(int user, sim::SimTime now);

  /// The considered-but-rejected automatic recovery: frees every user idle
  /// longer than `timeout`.  Returns processors reclaimed.
  int reap_idle(sim::SimTime now, sim::Duration timeout);

  [[nodiscard]] int free_count() const;
  [[nodiscard]] int held_by(int user) const;
  [[nodiscard]] std::uint64_t failures() const { return failures_; }

 private:
  std::vector<int> owner_;  // processor -> user (-1 free)
  std::map<int, sim::SimTime> last_activity_;
  std::uint64_t failures_ = 0;
};

}  // namespace hpcvorx::vorx
