// Per-node census of blocked threads — the source of the software
// oscilloscope's idle-time breakdown (§6.2): a processor's idle time is
// labelled by *why* it is idle (threads waiting for input, for output, a
// mix across threads, or something else).
#pragma once

#include "sim/cpu.hpp"

namespace hpcvorx::vorx {

enum class BlockReason { kInput, kOutput, kOther };

class NodeCensus {
 public:
  explicit NodeCensus(sim::Cpu& cpu) : cpu_(cpu) {
    cpu_.set_idle_classifier([this] { return classify(); });
  }

  /// Records a thread entering (`delta=+1`) or leaving (`-1`) a blocked
  /// state, re-labelling the CPU's current idle span.
  void block(BlockReason r, int delta) {
    switch (r) {
      case BlockReason::kInput: input_ += delta; break;
      case BlockReason::kOutput: output_ += delta; break;
      case BlockReason::kOther: other_ += delta; break;
    }
    cpu_.note_idle_reason_changed();
  }

  [[nodiscard]] sim::Category classify() const {
    if (input_ > 0 && output_ > 0) return sim::Category::kIdleMixed;
    if (input_ > 0) return sim::Category::kIdleInput;
    if (output_ > 0) return sim::Category::kIdleOutput;
    return sim::Category::kIdleOther;
  }

  [[nodiscard]] int blocked_on_input() const { return input_; }
  [[nodiscard]] int blocked_on_output() const { return output_; }
  [[nodiscard]] int blocked_other() const { return other_; }

 private:
  sim::Cpu& cpu_;
  int input_ = 0;
  int output_ = 0;
  int other_ = 0;
};

/// RAII: marks a thread blocked for `reason` for the guard's lifetime.
class BlockedScope {
 public:
  BlockedScope(NodeCensus& census, BlockReason r) : census_(census), r_(r) {
    census_.block(r_, +1);
  }
  ~BlockedScope() { census_.block(r_, -1); }
  BlockedScope(const BlockedScope&) = delete;
  BlockedScope& operator=(const BlockedScope&) = delete;

 private:
  NodeCensus& census_;
  BlockReason r_;
};

}  // namespace hpcvorx::vorx
