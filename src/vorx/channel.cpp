#include "vorx/channel.hpp"

#include <cassert>

#include "vorx/process.hpp"

namespace hpcvorx::vorx {

Channel::Channel(ChannelService& svc, std::uint64_t id, std::uint64_t peer_id,
                 std::string name, hw::StationId peer)
    : svc_(svc),
      id_(id),
      peer_id_(peer_id),
      name_(std::move(name)),
      peer_(peer),
      write_mutex_(svc.kernel().simulator(), 1),
      ack_event_(svc.kernel().simulator()),
      read_mutex_(svc.kernel().simulator(), 1),
      data_event_(svc.kernel().simulator()) {}

sim::Task<void> Channel::write(Subprocess& sp, std::uint32_t bytes,
                               hw::Payload data) {
  assert(bytes <= kMaxChannelMsg && "channel messages are frame-limited");
  const CostModel& c = svc_.kernel().costs();
  // Stop-and-wait: at most one outstanding message per direction; further
  // writers queue here.
  co_await write_mutex_.acquire();
  // write() syscall + kernel send path + copy to the interface.
  co_await sp.run_system(c.chan_write_fixed +
                         static_cast<sim::Duration>(bytes) *
                             c.chan_write_per_byte);
  hw::Frame f;
  f.kind = msg::kChanData;
  f.obj = peer_id_;   // addressed to the remote end
  f.aux = id_;        // so the remote kernel can ACK this end
  f.dst = peer_;
  f.seq = ++tx_seq_;
  f.payload_bytes = bytes;
  f.data = std::move(data);
  inflight_ = f;  // retained until ACKed: the retransmission source (§4)
  has_inflight_ = true;
  ack_event_.reset();
  svc_.kernel().send(std::move(f));
  ++sent_;
  // Block until the receiving kernel acknowledges.
  writer_blocked_ = true;
  blocked_writer_ = &sp;
  sp.set_state(SpState::kBlockedOutput);
  {
    BlockedScope blocked(svc_.census(), BlockReason::kOutput);
    co_await ack_event_.wait();
  }
  writer_blocked_ = false;
  blocked_writer_ = nullptr;
  sp.set_state(SpState::kRunning);
  has_inflight_ = false;
  // ACK interrupt processing + writer wakeup/dispatch.
  co_await sp.run_system(c.chan_ack_fixed + c.chan_wakeup);
  write_mutex_.release();
}

sim::Task<ChannelMsg> Channel::read(Subprocess& sp) {
  const CostModel& c = svc_.kernel().costs();
  co_await read_mutex_.acquire();
  co_await sp.run_system(c.chan_read_fixed);
  while (rxq_.empty()) {
    data_event_.reset();
    if (!rxq_.empty()) break;
    reader_blocked_ = true;
    blocked_reader_ = &sp;
    sp.set_state(SpState::kBlockedInput);
    {
      BlockedScope blocked(svc_.census(), BlockReason::kInput);
      co_await data_event_.wait();
    }
    reader_blocked_ = false;
    blocked_reader_ = nullptr;
    sp.set_state(SpState::kRunning);
  }
  ChannelMsg m = std::move(rxq_.front());
  rxq_.pop_front();
  ++received_;
  if (retransmit_owed_ && rxq_.size() < svc_.side_buffers()) {
    // A sender was refused for lack of side buffers; space exists now, so
    // "the receiver requests retransmission when buffer space becomes
    // available" (§4).
    retransmit_owed_ = false;
    svc_.send_retransmit_request(refused_end_, refused_src_);
  }
  read_mutex_.release();
  co_return m;
}

sim::Simulator& ServerPort::service_simulator() {
  return svc_.kernel().simulator();
}

sim::Task<Channel*> ServerPort::accept(Subprocess& sp) {
  co_await sp.run_system(svc_.kernel().costs().chan_read_fixed);
  if (!acceptq_.empty()) {
    co_return co_await acceptq_.recv();
  }
  sp.set_state(SpState::kBlockedInput);
  Channel* ch = nullptr;
  {
    BlockedScope blocked(svc_.census(), BlockReason::kInput);
    ch = co_await acceptq_.recv();
  }
  sp.set_state(SpState::kRunning);
  co_return ch;
}

ChannelService::ChannelService(Kernel& kernel, NodeCensus& census,
                               std::size_t side_buffers)
    : kernel_(kernel),
      census_(census),
      side_buffers_(side_buffers),
      delivery_pulse_(kernel.simulator()) {
  kernel_.register_handler(msg::kChanData,
                           [this](hw::Frame f) { on_data(std::move(f)); });
  kernel_.register_handler(msg::kChanAck,
                           [this](hw::Frame f) { on_ack(std::move(f)); });
  kernel_.register_handler(msg::kChanRetransmitReq, [this](hw::Frame f) {
    on_retransmit_req(std::move(f));
  });
}

Channel* ChannelService::create_channel(std::uint64_t id, std::uint64_t peer_id,
                                        const std::string& name,
                                        hw::StationId peer) {
  channels_.push_back(
      std::make_unique<Channel>(*this, id, peer_id, name, peer));
  Channel* ch = channels_.back().get();
  by_id_[id] = ch;
  // Replay data frames that raced ahead of the open reply.
  auto it = orphans_.find(id);
  if (it != orphans_.end()) {
    for (hw::Frame& f : it->second) deliver(ch, std::move(f));
    orphans_.erase(it);
  }
  return ch;
}

ServerPort* ChannelService::create_server_port(const std::string& name) {
  auto [it, inserted] =
      servers_.emplace(name, std::make_unique<ServerPort>(*this, name));
  assert(inserted && "server name already registered on this node");
  (void)inserted;
  return it->second.get();
}

ServerPort* ChannelService::server_port(const std::string& name) {
  auto it = servers_.find(name);
  return it == servers_.end() ? nullptr : it->second.get();
}

Channel* ChannelService::find(std::uint64_t id) {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second;
}

void ChannelService::on_data(hw::Frame f) {
  Channel* ch = find(f.obj);
  if (ch == nullptr) {
    orphans_[f.obj].push_back(std::move(f));
    return;
  }
  deliver(ch, std::move(f));
}

sim::Proc ChannelService::deliver(Channel* ch, hw::Frame f) {
  // Kernel work to file the message and produce the ACK.
  co_await kernel_.cpu().run(sim::prio::kKernel,
                             kernel_.costs().chan_deliver_fixed,
                             sim::Category::kSystem, sim::kBorrowedContext, 0);
  if (ch->rxq_.size() >= side_buffers_) {
    // Out of side buffers (rare, §4): stay silent and owe the sender a
    // retransmission request once a buffer frees.  The sender's process is
    // blocked holding the message, so nothing is lost.
    ch->retransmit_owed_ = true;
    ch->refused_src_ = f.src;
    ch->refused_end_ = f.aux;
    co_return;
  }
  ch->rxq_.push_back(ChannelMsg{f.payload_bytes, std::move(f.data), f.seq, f.src});
  hw::Frame ack;
  ack.kind = msg::kChanAck;
  ack.obj = f.aux;  // the sending end's id
  ack.dst = f.src;
  ack.seq = f.seq;
  kernel_.send(std::move(ack));
  ch->data_event_.set();
  delivery_pulse_.set();
}

void ChannelService::on_ack(hw::Frame f) {
  Channel* ch = find(f.obj);
  if (ch == nullptr) return;
  ch->ack_event_.set();
}

void ChannelService::on_retransmit_req(hw::Frame f) {
  Channel* ch = find(f.obj);
  if (ch == nullptr || !ch->has_inflight_) return;
  // Resend the retained message (costed kernel work).
  [](ChannelService* svc, hw::Frame again) -> sim::Proc {
    co_await svc->kernel_.cpu().run(
        sim::prio::kKernel, svc->kernel_.costs().chan_write_fixed,
        sim::Category::kSystem, sim::kBorrowedContext, 0);
    svc->kernel_.send(std::move(again));
  }(this, ch->inflight_);
}

sim::Proc ChannelService::send_retransmit_request(std::uint64_t peer_end,
                                                  hw::StationId dst) {
  ++retransmit_requests_;
  co_await kernel_.cpu().run(sim::prio::kKernel,
                             kernel_.costs().chan_deliver_fixed,
                             sim::Category::kSystem, sim::kBorrowedContext, 0);
  hw::Frame req;
  req.kind = msg::kChanRetransmitReq;
  req.obj = peer_end;
  req.dst = dst;
  kernel_.send(std::move(req));
}

}  // namespace hpcvorx::vorx
