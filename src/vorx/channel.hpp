// VORX channels: named, dynamically created message-passing connections.
//
// §4 of the paper: "Channels provide low latency, high bandwidth message
// passing communications between processors. ... they are set up with a
// single open call and data is transferred with read and write calls.
// There are also specialized calls for operations like multiplexed read
// ... and a mechanism that allows servers to continually reuse a single
// channel name."
//
// The data protocol is the stop-and-wait scheme of §4: a write sends the
// data and blocks the writer until the receiving kernel acknowledges it.
// The receiving kernel ACKs as soon as it has buffered the message ("the
// kernel has many side buffers"); in the rare case that every side buffer
// is full, it stays silent and requests retransmission when space frees —
// the sender still holds the message (its process is blocked), so no
// kernel-side copy is ever needed.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/awaitables.hpp"
#include "sim/task.hpp"
#include "vorx/census.hpp"
#include "vorx/kernel.hpp"

namespace hpcvorx::vorx {

class Subprocess;
class ChannelService;

/// One delivered channel message, as seen by read().
struct ChannelMsg {
  std::uint32_t bytes = 0;
  hw::Payload data;          // may be null for timing-only traffic
  std::uint64_t seq = 0;
  hw::StationId from = -1;
};

/// Largest single channel message: an HPC frame's payload minus nothing —
/// the channel header is modelled inside the frame header.
inline constexpr std::uint32_t kMaxChannelMsg = hw::kMaxPayloadBytes;

/// One end of an open channel.  Obtained from Subprocess::open() /
/// ServerPort::accept(); both ends share the channel id.
class Channel {
 public:
  Channel(ChannelService& svc, std::uint64_t id, std::uint64_t peer_id,
          std::string name, hw::StationId peer);

  /// Stop-and-wait write: completes when the remote kernel has
  /// acknowledged the message.  Writers are serialized.
  [[nodiscard]] sim::Task<void> write(Subprocess& sp, std::uint32_t bytes,
                                      hw::Payload data = nullptr);

  /// Blocking read of the next message.
  [[nodiscard]] sim::Task<ChannelMsg> read(Subprocess& sp);

  [[nodiscard]] bool has_data() const { return !rxq_.empty(); }

  // ---- identity / cdb-visible state (§6.1) ----
  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] std::uint64_t peer_end_id() const { return peer_id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] hw::StationId peer() const { return peer_; }
  [[nodiscard]] std::uint64_t messages_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t messages_received() const { return received_; }
  [[nodiscard]] bool writer_blocked() const { return writer_blocked_; }
  [[nodiscard]] bool reader_blocked() const { return reader_blocked_; }
  [[nodiscard]] Subprocess* blocked_reader() const { return blocked_reader_; }
  [[nodiscard]] Subprocess* blocked_writer() const { return blocked_writer_; }
  [[nodiscard]] std::size_t queued() const { return rxq_.size(); }

 private:
  friend class ChannelService;

  ChannelService& svc_;
  std::uint64_t id_;
  std::uint64_t peer_id_;
  std::string name_;
  hw::StationId peer_;

  // write side
  sim::Semaphore write_mutex_;
  sim::Event ack_event_;
  hw::Frame inflight_;        // retained until ACKed (retransmission source)
  bool has_inflight_ = false;
  std::uint64_t tx_seq_ = 0;
  bool writer_blocked_ = false;
  Subprocess* blocked_writer_ = nullptr;

  // read side
  sim::Semaphore read_mutex_;
  sim::Event data_event_;
  std::deque<ChannelMsg> rxq_;
  bool reader_blocked_ = false;
  Subprocess* blocked_reader_ = nullptr;
  bool retransmit_owed_ = false;  // a sender was refused; owed a go-ahead
  hw::StationId refused_src_ = -1;
  std::uint64_t refused_end_ = 0;  // the refused sender's end id

  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
};

/// A reusable server name (§4): each client open() against the name yields
/// a fresh channel delivered through accept().
class ServerPort {
 public:
  ServerPort(ChannelService& svc, std::string name)
      : svc_(svc), name_(std::move(name)), acceptq_(service_simulator()) {}

  /// Blocks until a client connects; returns the new channel.
  [[nodiscard]] sim::Task<Channel*> accept(Subprocess& sp);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t pending() const { return acceptq_.size(); }

 private:
  friend class ChannelService;
  friend class OmService;
  sim::Simulator& service_simulator();
  ChannelService& svc_;
  std::string name_;
  sim::Mailbox<Channel*> acceptq_;
};

/// Per-node channel machinery: owns every local channel end, handles the
/// kChanData / kChanAck / kChanRetransmitReq protocol frames, and exposes
/// state to the cdb communications debugger.
class ChannelService {
 public:
  ChannelService(Kernel& kernel, NodeCensus& census,
                 std::size_t side_buffers = 16);

  /// Creates the local end of channel `id` to `peer`.  Any data frames
  /// that raced ahead of the open reply are replayed into it.
  Channel* create_channel(std::uint64_t id, std::uint64_t peer_id,
                          const std::string& name, hw::StationId peer);

  /// Creates a server port (registered with the object manager by the
  /// caller); kOmAccept notifications are routed to it by name.
  ServerPort* create_server_port(const std::string& name);
  [[nodiscard]] ServerPort* server_port(const std::string& name);

  [[nodiscard]] Channel* find(std::uint64_t id);
  [[nodiscard]] Kernel& kernel() { return kernel_; }
  [[nodiscard]] NodeCensus& census() { return census_; }
  [[nodiscard]] std::size_t side_buffers() const { return side_buffers_; }

  /// Pulse set on every delivery — the multiplexed-read rendezvous point.
  [[nodiscard]] sim::Event& delivery_pulse() { return delivery_pulse_; }

  /// All local channel ends (cdb iteration).
  [[nodiscard]] const std::vector<std::unique_ptr<Channel>>& channels() const {
    return channels_;
  }

  [[nodiscard]] std::uint64_t retransmit_requests() const {
    return retransmit_requests_;
  }

 private:
  friend class Channel;
  void on_data(hw::Frame f);
  void on_ack(hw::Frame f);
  void on_retransmit_req(hw::Frame f);
  sim::Proc deliver(Channel* ch, hw::Frame f);
  sim::Proc send_retransmit_request(std::uint64_t peer_end, hw::StationId dst);

  Kernel& kernel_;
  NodeCensus& census_;
  std::size_t side_buffers_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::unordered_map<std::uint64_t, Channel*> by_id_;
  std::unordered_map<std::uint64_t, std::vector<hw::Frame>> orphans_;
  std::unordered_map<std::string, std::unique_ptr<ServerPort>> servers_;
  sim::Event delivery_pulse_;
  std::uint64_t retransmit_requests_ = 0;
};

}  // namespace hpcvorx::vorx
