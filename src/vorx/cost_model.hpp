// Software-overhead constants for the simulated VORX kernel.
//
// The original system ran on 25 MHz Motorola 68020 processing nodes; the
// paper reports enough end-to-end measurements to calibrate a virtual-time
// cost model of the communications software.  Every constant below is tied
// to a number printed in the paper:
//
//   * Table 2: channel (stop-and-wait) latency 303/341/474/997 us for
//     4/64/256/1024-byte messages.  The per-message fixed path is
//     ~300 us and the per-byte slope ~0.68 us/B including the 0.1 us/B
//     contributed by two 160 Mbit/s link traversals.
//   * Table 1: user-defined sliding-window protocol, 414..164 us/msg for
//     4-byte messages over 1..64 buffers; per-message pipelined bottleneck
//     C_b(n) ~ 166 + 0.33n us and round-trip C_rt(n) ~ 248 + 0.31n us.
//   * §4.1: 60 us software latency for 64-byte messages with direct
//     hardware access and no protocol (the parallel-SPICE numbers).
//   * §5: 80 us for a full fixed+floating context switch; coroutine and
//     interrupt-level structuring cost far less.
//   * §3.3: 12 s to download-and-init 70 processes with per-process
//     stubs, 2 s with one stub and the fan-out-2 tree download.
//
// Changing a constant here moves the corresponding benchmark; the
// calibration tests (tests/calibration_test.cpp) pin the headline values
// to the paper within tolerance.
#pragma once

#include "sim/time.hpp"

namespace hpcvorx::vorx {

struct CostModel {
  // ---- kernel receive path (interrupt level) ----
  // Fixed cost to field a receive interrupt and read a frame header.
  sim::Duration rx_interrupt = sim::usec(30);
  // Per-byte cost to copy a frame's payload out of the interface.
  sim::Duration rx_copy_per_byte = 290;  // ns/B

  // ---- channel (stop-and-wait) protocol, §4 ----
  // write() syscall entry + kernel send processing before the wire.
  sim::Duration chan_write_fixed = sim::usec(75);
  // Per-byte copy user space -> interface on the sending side.
  sim::Duration chan_write_per_byte = 290;  // ns/B
  // Receiving kernel: deliver into channel buffer and generate the ACK.
  sim::Duration chan_deliver_fixed = sim::usec(50);
  // Sending kernel: process the ACK and unblock the writer.
  sim::Duration chan_ack_fixed = sim::usec(45);
  // Writer wakeup/dispatch after the ACK (scheduler path).
  sim::Duration chan_wakeup = sim::usec(55);
  // read() syscall + copy into the user buffer (fixed part).
  sim::Duration chan_read_fixed = sim::usec(30);

  // ---- user-defined communications objects, §4.1 ----
  // Direct hardware register access from the application: no supervisor
  // call, so the fixed costs are far smaller (calibrated to the 60 us /
  // 64 B SPICE figure: ~21 + wire(9) + ~27 ~= 60 us one-way).
  sim::Duration udco_send_fixed = sim::usec(18);
  sim::Duration udco_send_per_byte = 120;  // ns/B (tight copy loop)
  // User interrupt-service routine dispatch + frame read (fixed part).
  sim::Duration udco_isr_fixed = sim::usec(24);
  sim::Duration udco_isr_per_byte = 40;  // ns/B

  // ---- sliding-window protocol bookkeeping, §4.1 / Table 1 ----
  // The Table 1 protocol is written *above* the user-defined object layer
  // by an application, so each message also pays user-level bookkeeping
  // (credit counting, buffer management) on both sides, and blocked
  // senders/receivers pay a subprocess block/wakeup.
  sim::Duration swp_sender_bookkeep = sim::usec(40);
  sim::Duration swp_sender_per_byte = 100;    // ns/B (checksum/window walk)
  sim::Duration swp_receiver_bookkeep = sim::usec(84);
  sim::Duration swp_receiver_per_byte = 290;  // ns/B (copy out of buffer)
  sim::Duration swp_credit_send = sim::usec(40);  // short protocol message
  // Waking a blocked protocol subprocess costs a full context switch.
  sim::Duration swp_block_wakeup = sim::usec(80);

  // ---- scheduling, §5 ----
  // Full context switch: "saving both fixed and floating point registers
  // takes 80 usec using a 25 MHz Motorola 68020 with a 68882".
  sim::Duration subprocess_switch = sim::usec(80);
  // Coroutine switch: only live registers at well-defined points.
  sim::Duration coroutine_switch = sim::usec(12);
  // Entering/leaving an interrupt-level handler (no register file save).
  sim::Duration interrupt_dispatch = sim::usec(4);
  // Semaphore P/V kernel operation.
  sim::Duration semaphore_op = sim::usec(10);

  // ---- object manager / rendezvous, §3.2 ----
  // Processing one open request at an object manager.
  sim::Duration om_open_service = sim::usec(120);
  // Client-side cost to issue an open and process the reply.
  sim::Duration om_open_client = sim::usec(80);

  // ---- execution environment, §3.3 ----
  // Host-side cost to fork and initialize one stub process (SunOS fork +
  // exec + channel plumbing): the dominant term of the 12 s figure.
  sim::Duration stub_create = sim::usec(75'000);
  // Host-side per-process bookkeeping that is unavoidable even with a
  // shared stub (process table registration, name service entries).
  sim::Duration process_register = sim::usec(24'000);
  // Node-side cost to initialize a downloaded process image.
  sim::Duration process_init = sim::usec(8'000);
  // Stub-side cost to service one forwarded UNIX system call.
  sim::Duration stub_syscall = sim::usec(400);
  // Per-chunk cost for a node to relay a download segment to a child in
  // the tree scheme (copy-through while receiving).
  sim::Duration loader_relay_per_byte = 60;  // ns/B

  // ---- processor allocation, §3.1 ----
  sim::Duration alloc_request = sim::usec(500);   // per allocate/free RPC

  // ---- S/NET software (the Meglos-era baseline, §2) ----
  // Per-byte cost for the receiving processor to read words out of its
  // input fifo (the drain rate that loses the race against the bus during
  // many-to-one bursts, producing the §2 lockout).
  sim::Duration snet_read_per_byte = 500;  // ns/B
  // Software cost to issue/retry one bus transmission.
  sim::Duration snet_send_fixed = sim::usec(25);
  // Initial random-backoff window after a fifo-full signal (doubles per
  // consecutive failure, as on the Ethernet).
  sim::Duration snet_backoff_initial = sim::usec(200);
};

/// The default model, calibrated against the paper (see file comment).
[[nodiscard]] inline const CostModel& default_cost_model() {
  static const CostModel m{};
  return m;
}

}  // namespace hpcvorx::vorx
