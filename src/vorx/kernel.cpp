#include "vorx/kernel.hpp"

#include <utility>

namespace hpcvorx::vorx {

// Parks the receive pump until the next arrival interrupt.  Ready when a
// frame is already staged (the pump's first activation finds the frame
// that triggered it), so the pump never suspends with work pending.
struct Kernel::RxPark {
  Kernel& k;
  [[nodiscard]] bool await_ready() const noexcept {
    return k.ep_.rx_peek() != nullptr;
  }
  void await_suspend(std::coroutine_handle<> h) noexcept { k.rx_parked_ = h; }
  void await_resume() const noexcept {}
};

Kernel::Kernel(sim::Simulator& sim, hw::Endpoint& ep, sim::Cpu& cpu,
               const CostModel& costs)
    : sim_(sim), ep_(ep), cpu_(cpu), costs_(costs), tx_ready_ev_(sim) {
  // The arrival interrupt.  Order contract (DESIGN.md §13): the parked
  // pump is resumed *inline* — within the delivering event, exactly where
  // the old per-burst rx_service() spawn ran — so the CPU charge for the
  // head frame is requested at the same virtual instant, in the same
  // event-sequence position, as event-at-a-time delivery.  Arrivals while
  // the pump is awake (mid-burst, awaiting a CPU charge) don't resume
  // anything: the frame stays staged in the hardware receive ring, the
  // per-(receiver,source) FIFO of which *is* the pinned delivery order,
  // and the pump's drain loop reaches it in that order.
  ep_.set_rx_cb([this] {
    ++rx_irqs_;
    if (!rx_started_) {
      // Lazy first start, on the shard thread that delivers the first
      // frame, so the pump's frame registers with that shard's registry.
      rx_started_ = true;
      ++rx_resumes_;
      rx_pump();
      return;
    }
    if (rx_parked_ != nullptr) {
      const std::coroutine_handle<> h =
          std::exchange(rx_parked_, std::coroutine_handle<>{});
      ++rx_resumes_;
      h.resume();
    }
  });
  ep_.set_tx_ready_cb([this] { tx_ready_ev_.set(); });
}

void Kernel::register_handler(std::uint32_t kind, Handler h) {
  handlers_[kind] = std::move(h);
}

void Kernel::register_object(std::uint64_t obj, Handler isr) {
  objects_[obj] = std::move(isr);
}

void Kernel::unregister_object(std::uint64_t obj) { objects_.erase(obj); }

void Kernel::send(hw::Frame f) {
  txq_.push_back(std::move(f));
  txq_peak_ = std::max(txq_peak_, txq_.size());
  sample_txq();
  if (!tx_active_) tx_service();
}

// Samples the transmit-side counters into the simulator's timeline.
void Kernel::sample_txq() {
  sim::CounterTimeline& ct = sim_.counters();
  if (!ct.enabled()) return;
  ct.sample(cpu_.name(), "txq_depth", sim_.now(),
            static_cast<double>(txq_.size()));
  ct.sample(cpu_.name(), "tx_blocked_us", sim_.now(),
            sim::to_usec(tx_blocked_));
}

sim::Proc Kernel::rx_pump() {
  for (;;) {
    co_await RxPark{*this};
    while (ep_.rx_peek() != nullptr) {
      const hw::Frame* head = ep_.rx_peek();
      sim::Duration cost;
      sim::Category cat;
      if (head->kind == msg::kUdco && objects_.count(head->obj) != 0) {
        // User-supplied ISR reads the frame directly: user-level costs.
        cost = costs_.udco_isr_fixed +
               static_cast<sim::Duration>(head->payload_bytes) *
                   costs_.udco_isr_per_byte;
        cat = sim::Category::kUser;
      } else {
        cost = costs_.rx_interrupt +
               static_cast<sim::Duration>(head->payload_bytes) *
                   costs_.rx_copy_per_byte;
        cat = sim::Category::kSystem;
      }
      co_await cpu_.run(sim::prio::kInterrupt, cost, cat,
                        sim::kBorrowedContext, costs_.interrupt_dispatch);
      // The frame leaves the hardware buffer only now that it has been
      // copied, which is what lets the interconnect push the next one.
      hw::Frame f = *ep_.rx_take();
      ++rx_count_;
      rx_bytes_ += f.payload_bytes;
      dispatch(std::move(f));
    }
  }
}

void Kernel::dispatch(hw::Frame f) {
  if (f.kind == msg::kUdco) {
    auto it = objects_.find(f.obj);
    if (it != objects_.end()) {
      it->second(std::move(f));
      return;
    }
  }
  auto it = handlers_.find(f.kind);
  if (it != handlers_.end()) {
    it->second(std::move(f));
    return;
  }
  ++dropped_;
}

sim::Proc Kernel::tx_service() {
  tx_active_ = true;
  while (!txq_.empty()) {
    if (!ep_.tx_ready()) {
      tx_ready_ev_.reset();
      if (!ep_.tx_ready()) {
        const sim::SimTime blocked_at = sim_.now();
        co_await tx_ready_ev_.wait();
        tx_blocked_ += sim_.now() - blocked_at;
      }
      continue;
    }
    hw::Frame f = std::move(txq_.front());
    txq_.pop_front();
    ++tx_count_;
    tx_bytes_ += f.payload_bytes;
    ep_.transmit(std::move(f));
    sample_txq();
  }
  tx_active_ = false;
}

}  // namespace hpcvorx::vorx
