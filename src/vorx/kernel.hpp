// The per-node VORX kernel: interrupt-driven receive path and transmit
// queue over one hardware Endpoint.
//
// The receive path embodies the paper's deadlock-avoidance invariant (§2):
// "It never deadlocks because the VORX kernel reads in messages
// immediately when they arrive."  Frames are copied out of the interface
// at interrupt priority as soon as they land, freeing the hardware buffer
// so the interconnect keeps draining; dispatch then hands the frame to the
// protocol layer (channels, object manager, user-defined objects, ...).
//
// User-defined communications objects (§4.1) are dispatched by object id
// with *user-supplied* receive costs — "processes can access the hardware
// registers from their applications, eliminating the overhead of
// supervisor calls into the kernel and can specify interrupt service
// routines to handle incoming messages."
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>

#include "hw/fabric.hpp"
#include "sim/awaitables.hpp"
#include "sim/cpu.hpp"
#include "sim/task.hpp"
#include "vorx/cost_model.hpp"
#include "vorx/msg.hpp"

namespace hpcvorx::vorx {

class Kernel {
 public:
  using Handler = std::function<void(hw::Frame)>;

  Kernel(sim::Simulator& sim, hw::Endpoint& ep, sim::Cpu& cpu,
         const CostModel& costs);
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  /// Registers the protocol handler for a message kind.  The handler runs
  /// after the receive-interrupt cost has been charged; it should do only
  /// bookkeeping (further costed work belongs in its own coroutine).
  void register_handler(std::uint32_t kind, Handler h);

  /// Registers a user-defined communications object: frames with
  /// kind==kUdco and a matching object id are delivered to `isr` after
  /// charging the *user* ISR cost instead of the kernel receive path.
  void register_object(std::uint64_t obj, Handler isr);
  void unregister_object(std::uint64_t obj);

  /// Queues a frame for transmission.  The caller has already paid the CPU
  /// cost of building/copying it; the kernel waits for hardware transmit
  /// space (the §2 space-available interrupt) and injects frames in order.
  void send(hw::Frame f);

  [[nodiscard]] hw::StationId station() const { return ep_.id(); }
  [[nodiscard]] sim::Cpu& cpu() { return cpu_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] const CostModel& costs() const { return costs_; }
  /// The fabric's recycling payload pool; the OS layer's steady-state
  /// payload construction goes through this (vorx-lint R5).
  [[nodiscard]] hw::FramePool& frame_pool() { return ep_.frame_pool(); }

  [[nodiscard]] std::uint64_t frames_received() const { return rx_count_; }
  [[nodiscard]] std::uint64_t frames_sent() const { return tx_count_; }
  [[nodiscard]] std::uint64_t frames_dropped() const { return dropped_; }
  [[nodiscard]] std::size_t tx_queue_depth() const { return txq_.size(); }

  // ---- counters (diagnostics and the trace exporter) ----

  /// Cumulative payload bytes received / queued for transmission.
  [[nodiscard]] std::uint64_t bytes_received() const { return rx_bytes_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return tx_bytes_; }
  /// High-water mark of the transmit queue.
  [[nodiscard]] std::size_t peak_tx_queue_depth() const { return txq_peak_; }
  /// Total time the transmit service spent waiting for hardware transmit
  /// space (the §2 "room became available" interrupt wait).
  [[nodiscard]] sim::Duration tx_blocked() const { return tx_blocked_; }
  /// Receive interrupts taken (one per frame arrival) vs. rx-pump
  /// wake-ups.  Arrivals while the pump is already mid-burst — same-tick
  /// back-to-back deliveries especially — stay staged in the hardware
  /// receive ring and are drained without another resume, so
  /// rx_resumes() <= rx_interrupts(); the difference is the coalescing
  /// win (the engine.coalesced_resumes_ratio bench row).
  [[nodiscard]] std::uint64_t rx_interrupts() const { return rx_irqs_; }
  [[nodiscard]] std::uint64_t rx_resumes() const { return rx_resumes_; }

 private:
  /// The persistent receive pump: one coroutine for the kernel's lifetime,
  /// parked on RxPark while the receive ring is empty and resumed inline
  /// by the arrival interrupt (see kernel.cpp for the order contract).
  sim::Proc rx_pump();
  struct RxPark;
  sim::Proc tx_service();
  void dispatch(hw::Frame f);
  void sample_txq();

  sim::Simulator& sim_;
  hw::Endpoint& ep_;
  sim::Cpu& cpu_;
  const CostModel& costs_;

  std::unordered_map<std::uint32_t, Handler> handlers_;
  std::unordered_map<std::uint64_t, Handler> objects_;

  std::deque<hw::Frame> txq_;
  sim::Event tx_ready_ev_;
  // The parked pump's handle (null while the pump is awake).  Resuming it
  // inline from the arrival interrupt is the whole coalescing mechanism:
  // no per-burst coroutine spawn, no per-frame re-entry.  Lifetime is
  // safe by construction: rx_pump() is a self-owning Proc that never
  // completes while the Kernel (and its endpoint callback) exist, and
  // the handle is exchanged to null before every resume.
  // vorx-lint: allow(R8) parking spot for the kernel-lifetime rx_pump Proc
  std::coroutine_handle<> rx_parked_;
  bool rx_started_ = false;
  bool tx_active_ = false;
  std::uint64_t rx_irqs_ = 0;
  std::uint64_t rx_resumes_ = 0;
  std::uint64_t rx_count_ = 0;
  std::uint64_t tx_count_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t rx_bytes_ = 0;
  std::uint64_t tx_bytes_ = 0;
  std::size_t txq_peak_ = 0;
  sim::Duration tx_blocked_ = 0;
};

}  // namespace hpcvorx::vorx
