#include "vorx/loader.hpp"

#include <cassert>

#include "vorx/node.hpp"
#include "vorx/stub.hpp"
#include "vorx/system.hpp"

namespace hpcvorx::vorx {

LoaderService::LoaderService(Node& node) : node_(node) {
  node_.kernel().register_handler(
      msg::kLoadSegment, [this](hw::Frame f) { on_segment(std::move(f)); });
  node_.kernel().register_handler(
      msg::kLoadDone, [this](hw::Frame f) { on_done(std::move(f)); });
}

void LoaderService::expect(ReceivePlan plan) {
  const std::uint64_t s = plan.session;
  pending_.emplace(s, Pending{std::move(plan), 0});
}

sim::Gate& LoaderService::expect_done(std::uint64_t session,
                                      std::size_t count) {
  auto gate = std::make_unique<sim::Gate>(node_.simulator(), count);
  sim::Gate& ref = *gate;
  done_gates_[session] = std::move(gate);
  return ref;
}

void LoaderService::on_segment(hw::Frame f) {
  auto it = pending_.find(f.obj);
  if (it == pending_.end()) return;
  relay_and_account(std::move(f));
}

sim::Proc LoaderService::relay_and_account(hw::Frame f) {
  // Look up afresh around every suspension: the map may rehash meanwhile.
  std::vector<hw::StationId> children;
  {
    auto it = pending_.find(f.obj);
    if (it == pending_.end()) co_return;
    children = it->second.plan.children;
  }
  // "That processor copies the text to two other processors as the text is
  // being received": the copy-through is part of the receive path, so it
  // runs at interrupt level — otherwise the incoming stream would starve
  // it and the tree would degrade to store-and-forward per node.
  for (hw::StationId child : children) {
    co_await node_.cpu().run(
        sim::prio::kInterrupt,
        static_cast<sim::Duration>(f.payload_bytes) *
            node_.costs().loader_relay_per_byte,
        sim::Category::kSystem, sim::kBorrowedContext, 0);
    hw::Frame fwd = f;
    fwd.dst = child;
    fwd.src = -1;
    node_.kernel().send(std::move(fwd));
    bytes_relayed_ += f.payload_bytes;
  }
  auto it = pending_.find(f.obj);
  if (it == pending_.end()) co_return;
  it->second.received += f.payload_bytes;
  bytes_rx_ += f.payload_bytes;
  if (it->second.received >= it->second.plan.image_bytes) {
    Pending done = std::move(it->second);
    pending_.erase(it);
    start_process(std::move(done));
  }
}

sim::Proc LoaderService::start_process(Pending p) {
  // Image complete: initialize the process on this node.
  co_await node_.cpu().run(sim::prio::kKernel, node_.costs().process_init,
                           sim::Category::kSystem, sim::kBorrowedContext, 0);
  Process& proc = node_.spawn_process(p.plan.proc_name, std::move(p.plan.app));
  if (p.plan.stub_id != 0) {
    proc.bind_syscalls(std::make_unique<SyscallClient>(
        node_, p.plan.stub_host, p.plan.stub_id));
  }
  hw::Frame done;
  done.kind = msg::kLoadDone;
  done.dst = p.plan.ack_to;
  done.obj = p.plan.session;
  node_.kernel().send(std::move(done));
}

void LoaderService::on_done(hw::Frame f) {
  auto it = done_gates_.find(f.obj);
  if (it == done_gates_.end()) return;
  it->second->arrive();
}

sim::Task<LaunchStats> launch_application(Subprocess& host_sp, System& sys,
                                          std::vector<int> node_indices,
                                          std::uint32_t image_bytes, AppFn fn,
                                          DownloadScheme scheme,
                                          std::string app_name) {
  Node& host = host_sp.node();
  const CostModel& c = host.costs();
  const auto session =
      static_cast<std::uint64_t>(host.simulator().allocate_id());
  constexpr std::uint32_t kChunk = 1024;

  LaunchStats st;
  st.started = host.simulator().now();
  st.processes = static_cast<int>(node_indices.size());
  sim::Gate& done = host.loader().expect_done(session, node_indices.size());

  auto stream_image_to = [&](hw::StationId dst) -> sim::Task<void> {  // vorx-lint: allow(R2) stack-local helper; the closure outlives every co_await of its Task
    for (std::uint32_t off = 0; off < image_bytes; off += kChunk) {
      const std::uint32_t n = std::min(kChunk, image_bytes - off);
      // The stub copies each segment out of the object file and into the
      // interface: host CPU per byte.
      co_await host_sp.compute(static_cast<sim::Duration>(n) *
                               c.chan_write_per_byte);
      hw::Frame f;
      f.kind = msg::kLoadSegment;
      f.dst = dst;
      f.obj = session;
      f.seq = off / kChunk;
      f.payload_bytes = n;
      host.kernel().send(std::move(f));
    }
  };

  if (scheme == DownloadScheme::kPerProcessStubs) {
    for (std::size_t i = 0; i < node_indices.size(); ++i) {
      // Fork + exec one stub per process, then its independent download.
      co_await host_sp.compute(c.stub_create);
      Stub& stub = host.make_stub();
      ++st.stubs_created;
      co_await host_sp.compute(c.process_register);
      LoaderService::ReceivePlan plan;
      plan.session = session;
      plan.image_bytes = image_bytes;
      plan.ack_to = host.station();
      plan.app = fn;
      plan.proc_name = app_name + "." + std::to_string(i);
      plan.stub_host = host.station();
      plan.stub_id = stub.id();
      sys.node(node_indices[i]).loader().expect(std::move(plan));
      co_await stream_image_to(sys.node_station(node_indices[i]));
    }
  } else {
    // One stub for the whole application...
    co_await host_sp.compute(c.stub_create);
    Stub& stub = host.make_stub();
    st.stubs_created = 1;
    for (std::size_t i = 0; i < node_indices.size(); ++i) {
      co_await host_sp.compute(c.process_register);
      LoaderService::ReceivePlan plan;
      plan.session = session;
      plan.image_bytes = image_bytes;
      plan.ack_to = host.station();
      plan.app = fn;
      plan.proc_name = app_name + "." + std::to_string(i);
      plan.stub_host = host.station();
      plan.stub_id = stub.id();
      // ...and a fan-out-2 relay tree over the allocated nodes.
      for (std::size_t child : {2 * i + 1, 2 * i + 2}) {
        if (child < node_indices.size()) {
          plan.children.push_back(sys.node_station(node_indices[child]));
        }
      }
      sys.node(node_indices[i]).loader().expect(std::move(plan));
    }
    // The stub downloads only the first processing node.
    co_await stream_image_to(sys.node_station(node_indices[0]));
  }

  co_await done.wait();
  st.finished = host.simulator().now();
  co_return st;
}

}  // namespace hpcvorx::vorx
