// Program download and application start-up (§3.3).
//
// Two schemes, as in the paper:
//
//   * kPerProcessStubs — "the host creates 70 stub processes, channels are
//     set up between each process and its stub, and each stub
//     independently downloads a copy of the program": faithful UNIX
//     environment, ~12 s for 70 processes.
//   * kSharedStubTree — "one stub services all the processes of the
//     application and uses a tree scheme in which the stub downloads only
//     one processing node.  That processor copies the text to be
//     downloaded to two other processors as the text is being received
//     ... it takes only two seconds to download and start 70 processes" —
//     at the cost of serialized blocking syscalls and a shared
//     32-descriptor budget.
//
// Download parameters (image size, chunking, tree shape, stub binding) are
// agreed at allocation time, so each node's LoaderService is configured
// directly; only the image bytes themselves travel through the simulated
// interconnect.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/awaitables.hpp"
#include "sim/task.hpp"
#include "vorx/kernel.hpp"
#include "vorx/process.hpp"

namespace hpcvorx::vorx {

class Node;
class System;

enum class DownloadScheme { kPerProcessStubs, kSharedStubTree };

struct LaunchStats {
  sim::SimTime started = 0;
  sim::SimTime finished = 0;
  int processes = 0;
  int stubs_created = 0;
  [[nodiscard]] sim::Duration elapsed() const { return finished - started; }
};

/// Per-node download machinery: receives image segments, relays them down
/// the tree, and starts the process when the image is complete.
class LoaderService {
 public:
  explicit LoaderService(Node& node);

  struct ReceivePlan {
    std::uint64_t session = 0;
    std::uint32_t image_bytes = 0;
    std::uint32_t chunk_bytes = 1024;
    std::vector<hw::StationId> children;  // tree fan-out (empty: leaf/direct)
    hw::StationId ack_to = -1;
    AppFn app;
    std::string proc_name;
    hw::StationId stub_host = -1;
    std::uint64_t stub_id = 0;  // 0 = no syscall binding
  };

  /// Arms this node to receive one image (control-plane setup).
  void expect(ReceivePlan plan);

  /// Host side: returns a gate released when `count` nodes report done.
  sim::Gate& expect_done(std::uint64_t session, std::size_t count);

  [[nodiscard]] std::uint64_t bytes_received() const { return bytes_rx_; }
  [[nodiscard]] std::uint64_t bytes_relayed() const { return bytes_relayed_; }

 private:
  struct Pending {
    ReceivePlan plan;
    std::uint32_t received = 0;
  };
  void on_segment(hw::Frame f);
  void on_done(hw::Frame f);
  sim::Proc relay_and_account(hw::Frame f);
  sim::Proc start_process(Pending p);

  Node& node_;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::unordered_map<std::uint64_t, std::unique_ptr<sim::Gate>> done_gates_;
  std::uint64_t bytes_rx_ = 0;
  std::uint64_t bytes_relayed_ = 0;
};

/// Downloads `image_bytes` to each listed processing node and starts `fn`
/// there.  Runs inside a host process (`host_sp` paces the host CPU).
/// Completes when every node has initialized its process.
[[nodiscard]] sim::Task<LaunchStats> launch_application(
    Subprocess& host_sp, System& sys, std::vector<int> node_indices,
    std::uint32_t image_bytes, AppFn fn, DownloadScheme scheme,
    std::string app_name = "app");

}  // namespace hpcvorx::vorx
