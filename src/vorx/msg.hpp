// Kernel message kinds carried in hw::Frame::kind.
#pragma once

#include <cstdint>

namespace hpcvorx::vorx {

namespace msg {
// Channel protocol (§4): stop-and-wait data/ack plus the buffer-exhaustion
// retransmission request.
inline constexpr std::uint32_t kChanData = 1;
inline constexpr std::uint32_t kChanAck = 2;
inline constexpr std::uint32_t kChanRetransmitReq = 3;

// Object-manager rendezvous (§3.2).
inline constexpr std::uint32_t kOmOpen = 10;         // open a named object
inline constexpr std::uint32_t kOmRegisterServer = 11;
inline constexpr std::uint32_t kOmReply = 12;        // open completed
inline constexpr std::uint32_t kOmAccept = 13;       // server-side notify

// User-defined communications objects (§4.1): dispatched by Frame::obj to
// the application's interrupt service routine.
inline constexpr std::uint32_t kUdco = 20;

// Execution environment (§3.3).
inline constexpr std::uint32_t kSyscallReq = 30;
inline constexpr std::uint32_t kSyscallReply = 31;
inline constexpr std::uint32_t kLoadSegment = 32;
inline constexpr std::uint32_t kLoadDone = 33;

// Flow-controlled multicast (§4.2).
inline constexpr std::uint32_t kMcastData = 40;
inline constexpr std::uint32_t kMcastAck = 41;

// Processor allocation (§3.1).  The workload generator's session-slot
// admission runs over these: req/reply against a host's slot table, plus
// the explicit free VORX requires ("not available to anyone else until
// explicitly freed").
inline constexpr std::uint32_t kAllocReq = 50;
inline constexpr std::uint32_t kAllocReply = 51;
inline constexpr std::uint32_t kAllocFree = 52;

// Conferencing workload sessions (vorx::WorkloadGen, DESIGN.md §14).
// Frame::obj carries the session id end to end.
inline constexpr std::uint32_t kSessInvite = 60;  // root -> member node
inline constexpr std::uint32_t kSessAccept = 61;  // member -> root
inline constexpr std::uint32_t kSessData = 62;    // talk-spurt media frame
inline constexpr std::uint32_t kSessLeave = 63;   // member churn notice
inline constexpr std::uint32_t kSessBye = 64;     // root tears session down

// Raw frames for tests and ad-hoc experiments.
inline constexpr std::uint32_t kRaw = 99;
}  // namespace msg

}  // namespace hpcvorx::vorx
