#include "vorx/multicast.hpp"

#include <algorithm>
#include <cassert>

#include "vorx/process.hpp"

namespace hpcvorx::vorx {

Mcast::Mcast(McastService& svc, std::uint64_t gid,
             std::vector<hw::StationId> order, int my_pos, McastMode mode)
    : svc_(svc),
      gid_(gid),
      order_(std::move(order)),
      my_pos_(my_pos),
      mode_(mode),
      data_ev_(svc.kernel().simulator()),
      ack_ev_(svc.kernel().simulator()),
      wlock_(svc.kernel().simulator(), 1),
      track_("mcast.g" + std::to_string(gid)) {}

int Mcast::fanout_depth() const {
  if (mode_ == McastMode::kHardware) return 1;
  // Depth of the deepest member in the binary tree: floor(log2(n)) for n
  // members laid out heap-style (root at depth 0).
  int depth = 0;
  for (std::size_t last = order_.size(); last > 1; last /= 2) ++depth;
  return depth;
}

// Counts one software-made frame copy (root child send or tree forward)
// and samples the cumulative per-node value onto the group's track.
void Mcast::record_software_copy() {
  ++sw_copies_;
  sim::Simulator& sim = svc_.kernel().simulator();
  sim::CounterTimeline& ct = sim.counters();
  if (!ct.enabled()) return;
  ct.sample(track_, "sw_copies.s" + std::to_string(svc_.kernel().station()),
            sim.now(), static_cast<double>(sw_copies_));
}

// Records one network delivery at this member: latency is measured from
// the root's send time carried in Frame::aux (injected_at is re-stamped
// at every hop, so it cannot provide an end-to-end measurement).
void Mcast::record_delivery(const hw::Frame& f) {
  sim::Simulator& sim = svc_.kernel().simulator();
  const sim::Duration lat = sim.now() - static_cast<sim::SimTime>(f.aux);
  ++deliveries_;
  delivery_latency_total_ += lat;
  if (lat > delivery_latency_max_) delivery_latency_max_ = lat;
  sim::CounterTimeline& ct = sim.counters();
  if (!ct.enabled()) return;
  ct.sample(track_, "delivery_us.s" + std::to_string(svc_.kernel().station()),
            sim.now(), sim::to_usec(lat));
}

// Samples the group's replication-tree depth (constant per group/mode;
// one sample per root write keeps the track visible for the write's span).
void Mcast::sample_fanout_depth() {
  sim::Simulator& sim = svc_.kernel().simulator();
  sim::CounterTimeline& ct = sim.counters();
  if (!ct.enabled()) return;
  ct.sample(track_, "fanout_depth", sim.now(),
            static_cast<double>(fanout_depth()));
}

void Mcast::remove_member(hw::StationId dead) {
  assert(dead != order_[0] && "the root cannot be removed from its group");
  const auto it = std::find(order_.begin(), order_.end(), dead);
  if (it == order_.end()) return;  // already repaired
  order_.erase(it);
  const hw::StationId self = svc_.kernel().station();
  const auto me = std::find(order_.begin(), order_.end(), self);
  assert(me != order_.end() && "remove_member called on the dead member");
  my_pos_ = static_cast<int>(me - order_.begin());
  // Ack recount: a write blocked solely on the dead member's ack must
  // complete now that the expected-ack set shrank.  maybe_ack_up reads the
  // need from the repaired tree, so re-evaluating every pending sequence
  // (in seq order — deterministic) releases exactly the satisfied ones.
  std::vector<std::uint64_t> seqs;
  seqs.reserve(pending_.size());
  for (const auto& [seq, st] : pending_) seqs.push_back(seq);
  std::sort(seqs.begin(), seqs.end());
  for (std::uint64_t seq : seqs) svc_.maybe_ack_up(this, seq);
}

std::vector<hw::StationId> Mcast::children() const {
  std::vector<hw::StationId> out;
  for (int c : {2 * my_pos_ + 1, 2 * my_pos_ + 2}) {
    if (static_cast<std::size_t>(c) < order_.size()) {
      out.push_back(order_[static_cast<std::size_t>(c)]);
    }
  }
  return out;
}

sim::Task<void> Mcast::write(Subprocess& sp, std::uint32_t bytes,
                             hw::Payload data) {
  assert(is_root() && "only the group root writes");
  const CostModel& c = svc_.kernel().costs();
  co_await wlock_.acquire();  // flow control: one multicast in flight
  const std::uint64_t seq = ++next_seq_;
  // The root is also a member: deliver locally, then fan out.
  co_await sp.run_system(c.chan_write_fixed +
                         static_cast<sim::Duration>(bytes) *
                             c.chan_write_per_byte);
  rxq_.push_back(ChannelMsg{bytes, data, seq, svc_.kernel().station()});
  data_ev_.set();
  pending_[seq].data_seen = true;
  // Root send time, carried end to end in Frame::aux so every member can
  // measure its own delivery latency against the same origin.
  const auto sent_at =
      static_cast<std::uint64_t>(svc_.kernel().simulator().now());
  sample_fanout_depth();
  if (mode_ == McastMode::kHardware) {
    // One frame; the clusters replicate it to every member (§4.2's
    // hardware-efficient multicast).  Acks still flow back in software.
    hw::Frame f;
    f.kind = msg::kMcastData;
    f.obj = gid_;
    f.group = gid_;
    f.seq = seq;
    f.aux = sent_at;
    f.dst = -1;
    f.payload_bytes = bytes;
    f.data = data;
    svc_.kernel().send(std::move(f));
  } else {
    for (hw::StationId child : children()) {
      hw::Frame f;
      f.kind = msg::kMcastData;
      f.obj = gid_;
      f.seq = seq;
      f.aux = sent_at;
      f.dst = child;
      f.payload_bytes = bytes;
      f.data = data;
      svc_.kernel().send(std::move(f));
      record_software_copy();
    }
  }
  ++writes_;
  const bool expect_acks = mode_ == McastMode::kHardware
                               ? order_.size() > 1
                               : !children().empty();
  if (!expect_acks) {
    pending_.erase(seq);
  } else {
    ack_ev_.reset();
    sp.set_state(SpState::kBlockedOutput);
    {
      BlockedScope blocked(svc_.census(), BlockReason::kOutput);
      co_await ack_ev_.wait();
    }
    sp.set_state(SpState::kRunning);
    co_await sp.run_system(c.chan_ack_fixed + c.chan_wakeup);
  }
  wlock_.release();
}

sim::Task<ChannelMsg> Mcast::read(Subprocess& sp) {
  const CostModel& c = svc_.kernel().costs();
  co_await sp.run_system(c.chan_read_fixed);
  while (rxq_.empty()) {
    data_ev_.reset();
    if (!rxq_.empty()) break;
    sp.set_state(SpState::kBlockedInput);
    {
      BlockedScope blocked(svc_.census(), BlockReason::kInput);
      co_await data_ev_.wait();
    }
    sp.set_state(SpState::kRunning);
  }
  ChannelMsg m = std::move(rxq_.front());
  rxq_.pop_front();
  ++reads_;
  co_return m;
}

McastService::McastService(Kernel& kernel, NodeCensus& census)
    : kernel_(kernel), census_(census) {
  kernel_.register_handler(msg::kMcastData,
                           [this](hw::Frame f) { on_data(std::move(f)); });
  kernel_.register_handler(msg::kMcastAck,
                           [this](hw::Frame f) { on_ack(std::move(f)); });
}

Mcast* McastService::create_group(std::uint64_t gid,
                                  std::vector<hw::StationId> members,
                                  hw::StationId root, McastMode mode) {
  // Tree order: the root first, remaining members in list order.
  std::vector<hw::StationId> order;
  order.push_back(root);
  for (hw::StationId m : members) {
    if (m != root) order.push_back(m);
  }
  const hw::StationId self = kernel_.station();
  const auto it = std::find(order.begin(), order.end(), self);
  assert(it != order.end() && "this node is not a group member");
  const int pos = static_cast<int>(it - order.begin());
  auto [entry, inserted] = groups_.emplace(
      gid, std::unique_ptr<Mcast>(new Mcast(*this, gid, order, pos, mode)));
  assert(inserted && "group id already exists on this node");
  (void)inserted;
  return entry->second.get();
}

void McastService::on_data(hw::Frame f) {
  auto it = groups_.find(f.obj);
  if (it == groups_.end()) return;
  deliver(it->second.get(), std::move(f));
}

sim::Proc McastService::deliver(Mcast* g, hw::Frame f) {
  const CostModel& c = kernel_.costs();
  // File the message locally.
  co_await kernel_.cpu().run(sim::prio::kKernel, c.chan_deliver_fixed,
                             sim::Category::kSystem, sim::kBorrowedContext, 0);
  g->rxq_.push_back(ChannelMsg{f.payload_bytes, f.data, f.seq, f.src});
  g->data_ev_.set();
  g->record_delivery(f);
  if (g->mode_ == McastMode::kHardware) {
    // The switches delivered everyone's copy; just acknowledge the root.
    g->pending_[f.seq].data_seen = true;
    send_ack(g, f.seq);
    g->pending_.erase(f.seq);
    co_return;
  }
  // Forward down the tree (copy-through: per-child kernel send cost).
  for (hw::StationId child : g->children()) {
    co_await kernel_.cpu().run(
        sim::prio::kKernel,
        c.chan_write_fixed + static_cast<sim::Duration>(f.payload_bytes) *
                                 c.chan_write_per_byte,
        sim::Category::kSystem, sim::kBorrowedContext, 0);
    hw::Frame fwd;
    fwd.kind = msg::kMcastData;
    fwd.obj = g->gid_;
    fwd.seq = f.seq;
    fwd.aux = f.aux;  // keep the root's send time for downstream members
    fwd.dst = child;
    fwd.payload_bytes = f.payload_bytes;
    fwd.data = f.data;
    kernel_.send(std::move(fwd));
    ++forwarded_;
    g->record_software_copy();
  }
  g->pending_[f.seq].data_seen = true;
  maybe_ack_up(g, f.seq);
}

void McastService::on_ack(hw::Frame f) {
  auto it = groups_.find(f.obj);
  if (it == groups_.end()) return;
  Mcast* g = it->second.get();
  ++g->pending_[f.seq].child_acks;
  maybe_ack_up(g, f.seq);
}

void McastService::maybe_ack_up(Mcast* g, std::uint64_t seq) {
  auto it = g->pending_.find(seq);
  if (it == g->pending_.end()) return;
  const Mcast::SeqState& st = it->second;
  const int need = g->mode_ == McastMode::kHardware
                       ? static_cast<int>(g->order_.size()) - 1
                       : static_cast<int>(g->children().size());
  if (!st.data_seen || st.child_acks < need) return;
  g->pending_.erase(it);
  if (g->is_root()) {
    g->ack_ev_.set();
    return;
  }
  send_ack(g, seq);
}

sim::Proc McastService::send_ack(Mcast* g, std::uint64_t seq) {
  co_await kernel_.cpu().run(sim::prio::kKernel,
                             kernel_.costs().chan_deliver_fixed / 2,
                             sim::Category::kSystem, sim::kBorrowedContext, 0);
  hw::Frame ack;
  ack.kind = msg::kMcastAck;
  ack.obj = g->gid_;
  ack.seq = seq;
  // Hardware mode acknowledges the root directly; the software tree
  // aggregates through parents.
  ack.dst = g->mode_ == McastMode::kHardware ? g->order_[0] : g->parent();
  kernel_.send(std::move(ack));
}

}  // namespace hpcvorx::vorx
