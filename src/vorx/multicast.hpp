// Flow-controlled multicast (§4.2, and Katseff, "Flow-Controlled Multicast
// in Multiprocessor Systems", 1987).
//
// "many programmers design their applications to make use of a multicast
// mechanism in which each process sends the identical message to many
// other processors.  We therefore designed the HPC hardware to be able to
// implement multicast efficiently and devised a flow-controlled multicast
// primitive that is integrated with channels."
//
// The primitive here distributes a message down a binary spanning tree of
// the group's kernels (each hop is ordinary reliable HPC unicast) and
// aggregates acknowledgements back up the tree; the root's write completes
// only when every member has buffered the message — that is the flow
// control: a second multicast cannot overrun anyone.
//
// Group membership is established at application start-up from the
// allocated processors (the paper's own limited use case: "it may be
// necessary for a process to multicast initial values to all the other
// processes when the application is first started"), so groups are created
// directly on each member node rather than through a naming rendezvous.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/awaitables.hpp"
#include "sim/task.hpp"
#include "vorx/census.hpp"
#include "vorx/channel.hpp"
#include "vorx/kernel.hpp"

namespace hpcvorx::vorx {

class Subprocess;
class McastService;

enum class McastMode {
  kSoftwareTree,  // kernels forward copies down a binary tree (portable)
  kHardware,      // clusters replicate the frame in the switches (§4.2)
};

/// One member's handle on a multicast group.  The root member writes; all
/// members (including the root) read every message.
class Mcast {
 public:
  /// Flow-controlled write (root only): completes when every member's
  /// kernel has buffered the message.
  [[nodiscard]] sim::Task<void> write(Subprocess& sp, std::uint32_t bytes,
                                      hw::Payload data = nullptr);

  /// Blocking read of the next multicast message.
  [[nodiscard]] sim::Task<ChannelMsg> read(Subprocess& sp);

  /// Group repair after member loss (§3.1's recovery story, DESIGN.md
  /// §14): drops `dead` from the tree order and re-evaluates every pending
  /// write against the shrunken ack set — a root blocked solely on the
  /// dead member's ack completes.  Every surviving member must apply the
  /// same removal (same contract as create_group), at a point where the
  /// dead member's subtree holds no undelivered data (it is a leaf, or its
  /// descendants already received the in-flight message).  Idempotent;
  /// removing the root is not supported.
  void remove_member(hw::StationId dead);

  [[nodiscard]] std::uint64_t gid() const { return gid_; }
  [[nodiscard]] bool is_root() const { return my_pos_ == 0; }
  [[nodiscard]] std::size_t member_count() const { return order_.size(); }
  [[nodiscard]] std::uint64_t messages_written() const { return writes_; }
  [[nodiscard]] std::uint64_t messages_read() const { return reads_; }

  // ---- per-group observability (§4.2: receiver processing, not wire
  // time, dominates multicast delivery — these counters show it) ----

  /// Frame copies this node's kernel made for the group in software: the
  /// root's per-child sends plus tree forwards in deliver().  Hardware
  /// mode makes its copies in the switches (hw::Cluster::multicast_copies)
  /// so this stays 0 there beyond nothing — exactly the §4.2 contrast.
  [[nodiscard]] std::uint64_t software_copies() const { return sw_copies_; }
  /// Messages delivered to this member over the network (the root's local
  /// filing is not counted — its delivery time is zero by construction).
  [[nodiscard]] std::uint64_t deliveries() const { return deliveries_; }
  /// Sum / max of root-send-to-member-delivery virtual time, over every
  /// network delivery at this member.  The root's send time rides in
  /// Frame::aux (injected_at is re-stamped per hop and cannot be used).
  [[nodiscard]] sim::Duration delivery_latency_total() const {
    return delivery_latency_total_;
  }
  [[nodiscard]] sim::Duration delivery_latency_max() const {
    return delivery_latency_max_;
  }
  /// Replication-tree depth a message crosses to reach the farthest
  /// member: floor(log2(n)) kernel hops for the software binary tree,
  /// 1 in-switch hop for hardware replication.
  [[nodiscard]] int fanout_depth() const;

 private:
  friend class McastService;
  Mcast(McastService& svc, std::uint64_t gid, std::vector<hw::StationId> order,
        int my_pos, McastMode mode);

  void record_software_copy();
  void record_delivery(const hw::Frame& f);
  void sample_fanout_depth();

  [[nodiscard]] hw::StationId parent() const {
    return order_[static_cast<std::size_t>((my_pos_ - 1) / 2)];
  }
  [[nodiscard]] std::vector<hw::StationId> children() const;

  McastService& svc_;
  std::uint64_t gid_;
  std::vector<hw::StationId> order_;  // members, root first (tree order)
  int my_pos_;
  McastMode mode_;

  std::deque<ChannelMsg> rxq_;
  sim::Event data_ev_;
  sim::Event ack_ev_;      // root: current write fully acknowledged
  sim::Semaphore wlock_;   // one multicast in flight per group
  std::uint64_t next_seq_ = 0;

  struct SeqState {
    bool data_seen = false;
    int child_acks = 0;
  };
  std::unordered_map<std::uint64_t, SeqState> pending_;

  std::uint64_t writes_ = 0;
  std::uint64_t reads_ = 0;

  std::string track_;  // CounterTimeline track ("mcast.g<gid>"), cached
  std::uint64_t sw_copies_ = 0;
  std::uint64_t deliveries_ = 0;
  sim::Duration delivery_latency_total_ = 0;
  sim::Duration delivery_latency_max_ = 0;
};

/// Per-node multicast machinery (forwarding + ack aggregation).
class McastService {
 public:
  McastService(Kernel& kernel, NodeCensus& census);

  /// Creates this node's member handle for group `gid`.  Every member must
  /// call with the identical member list and root.  For kHardware the
  /// fabric's replication tables must be programmed too
  /// (hw::Fabric::add_multicast_group / vorx::System::create_multicast_group).
  Mcast* create_group(std::uint64_t gid, std::vector<hw::StationId> members,
                      hw::StationId root,
                      McastMode mode = McastMode::kSoftwareTree);

  [[nodiscard]] Kernel& kernel() { return kernel_; }
  [[nodiscard]] NodeCensus& census() { return census_; }
  [[nodiscard]] std::uint64_t frames_forwarded() const { return forwarded_; }

 private:
  friend class Mcast;
  void on_data(hw::Frame f);
  void on_ack(hw::Frame f);
  sim::Proc deliver(Mcast* g, hw::Frame f);
  void maybe_ack_up(Mcast* g, std::uint64_t seq);
  sim::Proc send_ack(Mcast* g, std::uint64_t seq);

  Kernel& kernel_;
  NodeCensus& census_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Mcast>> groups_;
  std::uint64_t forwarded_ = 0;
};

}  // namespace hpcvorx::vorx
