#include "vorx/multihost.hpp"

#include <algorithm>
#include <cassert>

#include "vorx/node.hpp"
#include "vorx/system.hpp"

namespace hpcvorx::vorx {

SyscallPool::SyscallPool(System& sys, Node& node,
                         const std::vector<int>& host_indices) {
  assert(!host_indices.empty());
  for (int h : host_indices) {
    Node& host = sys.host(h);
    Stub& stub = host.make_stub();
    stubs_.push_back(&stub);
    clients_.push_back(
        std::make_unique<SyscallClient>(node, host.station(), stub.id()));
    outstanding_.push_back(0);
  }
}

sim::Task<SyscallPool::PoolFd> SyscallPool::open(Subprocess& sp,
                                                 const std::string& path) {
  // Least-loaded placement, round-robin among ties.  Load counts open
  // descriptors plus the live request backlog (a stub parked in a
  // blocking call weighs heavily, so new work avoids it).
  auto load = [this](int m) {
    const auto mi = static_cast<std::size_t>(m);
    return outstanding_[mi] +
           8 * static_cast<int>(stubs_[mi]->queue_depth() +
                                (stubs_[mi]->busy() ? 1 : 0));
  };
  int best = rr_ % members();
  for (int i = 0; i < members(); ++i) {
    const int cand = (rr_ + i) % members();
    if (load(cand) < load(best)) best = cand;
  }
  ++rr_;
  SyscallResult r =
      co_await clients_[static_cast<std::size_t>(best)]->sys_open(sp, path);
  PoolFd f;
  if (r.value >= 0) {
    f.fd = static_cast<int>(r.value);
    f.member = best;
    ++outstanding_[static_cast<std::size_t>(best)];
  }
  co_return f;
}

sim::Task<SyscallResult> SyscallPool::read(Subprocess& sp, PoolFd f,
                                           std::uint32_t nbytes) {
  assert(f.member >= 0);
  return clients_[static_cast<std::size_t>(f.member)]->sys_read(sp, f.fd,
                                                                nbytes);
}

sim::Task<SyscallResult> SyscallPool::write(Subprocess& sp, PoolFd f,
                                            hw::Payload data) {
  assert(f.member >= 0);
  return clients_[static_cast<std::size_t>(f.member)]->sys_write(
      sp, f.fd, std::move(data));
}

sim::Task<SyscallResult> SyscallPool::keyboard(Subprocess& sp, int member) {
  assert(member >= 0 && member < members());
  return clients_[static_cast<std::size_t>(member)]->sys_keyboard(sp);
}

sim::Task<SyscallResult> SyscallPool::close(Subprocess& sp, PoolFd f) {
  assert(f.member >= 0);
  --outstanding_[static_cast<std::size_t>(f.member)];
  return clients_[static_cast<std::size_t>(f.member)]->sys_close(sp, f.fd);
}

}  // namespace hpcvorx::vorx
