// Distributed system-call service — the §3.3 future-work item, built out.
//
// "We are working on a better solution to these problems that will
// alleviate the bottleneck of using a single host for all the system
// calls of an application.  It uses a decentralized scheme that
// distributes the overhead of system calls by allowing a process to
// direct system calls to any of the host workstations."
//
// A SyscallPool binds one stub on each participating workstation and
// fans a process's system calls across them.  File-descriptor affinity is
// preserved (a descriptor lives on the stub that opened it, as it must),
// so the distribution applies to open() placement and to independent
// descriptors — exactly the part of the load a real decentralized scheme
// could move.
#pragma once

#include <memory>
#include <vector>

#include "vorx/stub.hpp"

namespace hpcvorx::vorx {

class System;

class SyscallPool {
 public:
  /// Creates one stub on each of the given workstations and a client
  /// bound to each from `node`.
  SyscallPool(System& sys, Node& node, const std::vector<int>& host_indices);

  /// open() on the least-loaded workstation; the returned PoolFd routes
  /// subsequent reads/writes to the owning stub.
  struct PoolFd {
    int fd = -1;
    int member = -1;  // index into the pool
  };
  [[nodiscard]] sim::Task<PoolFd> open(Subprocess& sp, const std::string& path);
  [[nodiscard]] sim::Task<SyscallResult> read(Subprocess& sp, PoolFd f,
                                              std::uint32_t nbytes);
  [[nodiscard]] sim::Task<SyscallResult> write(Subprocess& sp, PoolFd f,
                                               hw::Payload data);
  [[nodiscard]] sim::Task<SyscallResult> close(Subprocess& sp, PoolFd f);

  /// Blocking terminal read through a specific member's stub (§3.3's
  /// problematic call — now it only stalls that one stub).
  [[nodiscard]] sim::Task<SyscallResult> keyboard(Subprocess& sp, int member);

  [[nodiscard]] int members() const { return static_cast<int>(clients_.size()); }
  /// Combined descriptor budget: kMaxOpenFiles per member workstation.
  [[nodiscard]] int descriptor_budget() const {
    return members() * kMaxOpenFiles;
  }

 private:
  std::vector<Stub*> stubs_;
  std::vector<std::unique_ptr<SyscallClient>> clients_;
  std::vector<int> outstanding_;  // open fds per member (placement load)
  int rr_ = 0;
};

}  // namespace hpcvorx::vorx
