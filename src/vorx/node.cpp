#include "vorx/node.hpp"

namespace hpcvorx::vorx {

Node::Node(sim::Simulator& sim, hw::Endpoint& ep, const CostModel& costs,
           std::string name, OmService::Locator manager_locator, Options opts)
    : sim_(sim),
      name_(std::move(name)),
      costs_(costs),
      cpu_(sim, name_),
      census_(cpu_),
      kernel_(sim, ep, cpu_, costs_),
      chans_(kernel_, census_, opts.side_buffers),
      om_(kernel_, chans_, std::move(manager_locator)),
      mcast_(kernel_, census_),
      loader_(*this),
      host_env_(sim) {
  cpu_.ledger().enable_recording(opts.record_intervals);
  // Stash user-defined-object frames that beat the open reply; make_udco
  // replays them.
  kernel_.register_handler(msg::kUdco, [this](hw::Frame f) {
    udco_orphans_[f.obj].push_back(std::move(f));
  });
  kernel_.register_handler(msg::kSyscallReq, [this](hw::Frame f) {
    auto it = stubs_.find(f.obj);
    if (it != stubs_.end()) it->second->on_request(std::move(f));
  });
  kernel_.register_handler(msg::kSyscallReply, [this](hw::Frame f) {
    auto it = sys_clients_.find(f.obj);
    if (it != sys_clients_.end()) it->second->on_reply(std::move(f));
  });
}

Stub& Node::make_stub() {
  const std::uint64_t id =
      (static_cast<std::uint64_t>(station()) + 1) * 100'000ULL + next_stub_id_++;
  stubs_owned_.push_back(std::make_unique<Stub>(*this, id, host_env_));
  return *stubs_owned_.back();
}

void Node::add_stub(Stub* s) { stubs_[s->id()] = s; }

void Node::remove_stub(std::uint64_t id) { stubs_.erase(id); }

void Node::add_sys_client(std::uint64_t key, SyscallClient* c) {
  sys_clients_[key] = c;
}

Process& Node::spawn_process(std::string name, AppFn fn, int priority,
                             sim::Duration switch_cost) {
  // Main-thread setup spawns must register their coroutine frames with
  // this node's shard simulator, not whatever the thread last bound.
  sim::Simulator::ScopedBind bind(sim_);
  processes_.push_back(
      std::make_unique<Process>(*this, next_pid_++, std::move(name)));
  Process* p = processes_.back().get();
  p->spawn(std::move(fn), priority, p->name() + ".main", switch_cost);
  return *p;
}

Udco* Node::make_udco(std::uint64_t id, std::uint64_t peer_id,
                      const std::string& name, hw::StationId peer) {
  udcos_.push_back(
      std::make_unique<Udco>(kernel_, census_, id, peer_id, name, peer));
  Udco* u = udcos_.back().get();
  auto it = udco_orphans_.find(id);
  if (it != udco_orphans_.end()) {
    for (hw::Frame& f : it->second) u->deliver(std::move(f));
    udco_orphans_.erase(it);
  }
  return u;
}

}  // namespace hpcvorx::vorx
