// A VORX node: one station (processing node or host workstation) with its
// CPU, kernel, channel machinery, object manager, and processes.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "hw/fabric.hpp"
#include "sim/cpu.hpp"
#include "vorx/census.hpp"
#include "vorx/channel.hpp"
#include "vorx/kernel.hpp"
#include "vorx/multicast.hpp"
#include "vorx/object_manager.hpp"
#include "vorx/process.hpp"
#include "vorx/loader.hpp"
#include "vorx/stub.hpp"
#include "vorx/udco.hpp"

namespace hpcvorx::vorx {

class Node {
 public:
  struct Options {
    std::size_t side_buffers = 16;
    bool record_intervals = false;
  };

  Node(sim::Simulator& sim, hw::Endpoint& ep, const CostModel& costs,
       std::string name, OmService::Locator manager_locator, Options opts);
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] sim::Cpu& cpu() { return cpu_; }
  [[nodiscard]] Kernel& kernel() { return kernel_; }
  /// Shorthand for kernel().frame_pool().
  [[nodiscard]] hw::FramePool& frame_pool() { return kernel_.frame_pool(); }
  [[nodiscard]] ChannelService& channels() { return chans_; }
  [[nodiscard]] OmService& om() { return om_; }
  [[nodiscard]] McastService& mcast() { return mcast_; }
  [[nodiscard]] LoaderService& loader() { return loader_; }

  /// Host-side UNIX environment (files, devices) — meaningful on
  /// workstation stations; exists on every node for uniformity.
  [[nodiscard]] HostEnv& host_env() { return host_env_; }

  /// Creates a stub process on this (host) node.
  Stub& make_stub();

  // Registries for syscall routing (used by Stub / SyscallClient).
  void add_stub(Stub* s);
  void remove_stub(std::uint64_t id);
  void add_sys_client(std::uint64_t key, SyscallClient* c);
  [[nodiscard]] NodeCensus& census() { return census_; }
  [[nodiscard]] const CostModel& costs() const { return costs_; }
  [[nodiscard]] hw::StationId station() const { return kernel_.station(); }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Starts a process whose first subprocess runs `fn`.
  Process& spawn_process(std::string name, AppFn fn,
                         int priority = sim::prio::kUserDefault,
                         sim::Duration switch_cost = -1);

  /// All processes ever started on this node (vdb/cdb iteration).
  [[nodiscard]] const std::vector<std::unique_ptr<Process>>& processes() const {
    return processes_;
  }

  /// Creates a user-defined object after its rendezvous completed;
  /// replays any frames that raced ahead of the open reply.
  Udco* make_udco(std::uint64_t id, std::uint64_t peer_id,
                  const std::string& name, hw::StationId peer);

  // Debugger support (§6): labels armed by vdb stop subprocesses at the
  // matching Subprocess::breakpoint() calls.
  void arm_breakpoint(const std::string& label) { breakpoints_.insert(label); }
  void disarm_breakpoint(const std::string& label) {
    breakpoints_.erase(label);
  }
  [[nodiscard]] bool breakpoint_armed(const std::string& label) const {
    return breakpoints_.count(label) != 0;
  }

 private:
  sim::Simulator& sim_;
  std::string name_;
  const CostModel& costs_;
  sim::Cpu cpu_;
  NodeCensus census_;
  Kernel kernel_;
  ChannelService chans_;
  OmService om_;
  McastService mcast_;
  LoaderService loader_;
  HostEnv host_env_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<std::unique_ptr<Udco>> udcos_;
  std::vector<std::unique_ptr<Stub>> stubs_owned_;
  std::unordered_map<std::uint64_t, Stub*> stubs_;
  std::unordered_map<std::uint64_t, SyscallClient*> sys_clients_;
  std::uint64_t next_stub_id_ = 1;
  std::unordered_map<std::uint64_t, std::vector<hw::Frame>> udco_orphans_;
  std::set<std::string> breakpoints_;
  int next_pid_ = 1;
};

}  // namespace hpcvorx::vorx
