#include "vorx/object_manager.hpp"

#include <cassert>

#include "vorx/process.hpp"

namespace hpcvorx::vorx {

namespace {

hw::Payload encode_name(hw::FramePool& pool, const std::string& name) {
  std::vector<std::byte> bytes = pool.buffer();
  bytes.resize(name.size());
  for (std::size_t i = 0; i < name.size(); ++i) {
    bytes[i] = static_cast<std::byte>(name[i]);
  }
  return pool.make(std::move(bytes));
}

std::string decode_name(const hw::Frame& f) {
  assert(f.data != nullptr);
  std::string s(f.data->size(), '\0');
  for (std::size_t i = 0; i < s.size(); ++i) {
    s[i] = static_cast<char>((*f.data)[i]);
  }
  return s;
}

std::string key_of(std::uint32_t type, const std::string& name) {
  return std::to_string(type) + ":" + name;
}

}  // namespace

OmService::OmService(Kernel& kernel, ChannelService& chans, Locator locate)
    : kernel_(kernel),
      chans_(chans),
      locate_(std::move(locate)),
      // Manager daemons get distinct CPU-owner identities so running one
      // incurs a real context switch, as the resource-manager process did
      // on the host.  Minted per-simulator (shard-ready, R6).
      mgr_owner_(kernel.simulator().allocate_id()) {
  kernel_.register_handler(msg::kOmOpen,
                           [this](hw::Frame f) { on_request(std::move(f)); });
  kernel_.register_handler(msg::kOmRegisterServer,
                           [this](hw::Frame f) { on_request(std::move(f)); });
  kernel_.register_handler(msg::kOmReply,
                           [this](hw::Frame f) { on_reply(std::move(f)); });
  kernel_.register_handler(msg::kOmAccept,
                           [this](hw::Frame f) { on_accept(std::move(f)); });
}

sim::Task<OpenResult> OmService::open_pair(Subprocess& sp, std::string name,
                                           std::uint32_t type) {
  return do_request(sp, msg::kOmOpen, std::move(name), type);
}

sim::Task<void> OmService::register_server(Subprocess& sp, std::string name) {
  (void)co_await do_request(sp, msg::kOmRegisterServer, std::move(name),
                            kObjChannel);
}

sim::Task<OpenResult> OmService::do_request(Subprocess& sp, std::uint32_t kind,
                                            std::string name,
                                            std::uint32_t type) {
  co_await sp.run_system(kernel_.costs().om_open_client);
  const std::uint64_t rid = next_req_++;
  sim::Promise<OpenResult> p(kernel_.simulator());
  awaiting_.emplace(rid, p);
  hw::Frame f;
  f.kind = kind;
  f.dst = locate_(name);
  f.seq = rid;
  f.aux = type;
  f.payload_bytes = static_cast<std::uint32_t>(name.size()) + 8;
  f.data = encode_name(kernel_.frame_pool(), name);
  kernel_.send(std::move(f));
  sp.set_state(SpState::kBlockedOpen);
  OpenResult r;
  {
    BlockedScope blocked(chans_.census(), BlockReason::kOther);
    r = co_await p.future();
  }
  sp.set_state(SpState::kRunning);
  co_return r;
}

void OmService::on_request(hw::Frame f) {
  reqq_.push_back(std::move(f));
  max_queue_ = std::max(max_queue_, reqq_.size());
  if (!worker_active_) worker();
}

sim::Proc OmService::worker() {
  worker_active_ = true;
  while (!reqq_.empty()) {
    hw::Frame f = std::move(reqq_.front());
    reqq_.pop_front();
    // Each open request costs real manager CPU — serialized here, which is
    // exactly the §3.2 bottleneck when one manager serves everyone.
    co_await kernel_.cpu().run(
        sim::prio::kKernel, kernel_.costs().om_open_service,
        sim::Category::kSystem, mgr_owner_, kernel_.costs().subprocess_switch);
    handle_request(f);
    ++opens_served_;
  }
  worker_active_ = false;
}

void OmService::handle_request(const hw::Frame& f) {
  const std::string name = decode_name(f);
  const std::string key = key_of(static_cast<std::uint32_t>(f.aux), name);
  if (f.kind == msg::kOmRegisterServer) {
    servers_[key] = f.src;
    send_reply(f.src, f.seq, 0, 0, -1);
    return;
  }
  // Symmetric open: match a registered server first, then a pending open.
  // Every end of a connection gets its own object id, so both ends of a
  // same-node (loopback) channel stay distinguishable.
  if (auto it = servers_.find(key); it != servers_.end()) {
    const std::uint64_t client_end = make_id();
    const std::uint64_t server_end = make_id();
    send_reply(f.src, f.seq, client_end, server_end, it->second);
    hw::Frame accept;
    accept.kind = msg::kOmAccept;
    accept.dst = it->second;
    accept.aux = (server_end << 32) | client_end;
    accept.obj = static_cast<std::uint64_t>(f.src);
    accept.payload_bytes = static_cast<std::uint32_t>(name.size()) + 8;
    accept.data = encode_name(kernel_.frame_pool(), name);
    kernel_.send(std::move(accept));
    return;
  }
  auto& waiting = pending_[key];
  if (!waiting.empty()) {
    auto [other_station, other_req] = waiting.front();
    waiting.pop_front();
    const std::uint64_t end_a = make_id();
    const std::uint64_t end_b = make_id();
    send_reply(f.src, f.seq, end_a, end_b, other_station);
    send_reply(other_station, other_req, end_b, end_a, f.src);
    return;
  }
  waiting.emplace_back(f.src, f.seq);
}

void OmService::send_reply(hw::StationId dst, std::uint64_t reqid,
                           std::uint64_t own_end, std::uint64_t peer_end,
                           hw::StationId peer) {
  hw::Frame r;
  r.kind = msg::kOmReply;
  r.dst = dst;
  r.seq = reqid;
  r.aux = (own_end << 32) | peer_end;
  r.obj = static_cast<std::uint64_t>(static_cast<std::int64_t>(peer));
  kernel_.send(std::move(r));
}

std::uint64_t OmService::make_id() {
  // 32-bit end ids: station in the high decimal digits, counter below.
  return (static_cast<std::uint64_t>(kernel_.station()) + 1) * 1'000'000ULL +
         next_obj_++;
}

void OmService::on_reply(hw::Frame f) {
  auto it = awaiting_.find(f.seq);
  if (it == awaiting_.end()) return;
  OpenResult r;
  r.id = f.aux >> 32;
  r.peer_id = f.aux & 0xffffffffULL;
  r.peer = static_cast<hw::StationId>(static_cast<std::int64_t>(f.obj));
  it->second.set_value(r);
  awaiting_.erase(it);
}

void OmService::on_accept(hw::Frame f) {
  const std::string name = decode_name(f);
  ServerPort* port = chans_.server_port(name);
  if (port == nullptr) return;  // server went away; drop
  Channel* ch = chans_.create_channel(
      f.aux >> 32, f.aux & 0xffffffffULL, name,
      static_cast<hw::StationId>(static_cast<std::int64_t>(f.obj)));
  const bool queued = port->acceptq_.try_send(ch);
  assert(queued && "server accept queue is unbounded");
  (void)queued;
}

}  // namespace hpcvorx::vorx
