// The communications object manager — rendezvous by name (§3.2).
//
// "Both Meglos and VORX provide named communications channels ... two
// processes rendezvous on a channel by specifying its name in an open
// call.  The bottleneck in setting up communications occurred because all
// the channel opens were processed by the single resource manager on the
// host.  We solved this problem in VORX by ... replicating [the
// communications object manager] onto every processing node.  The object
// manager uses distributed hashing to map a channel name to a particular
// processor."
//
// Every node runs an OmService.  Which instance *manages* a given name is
// decided by a locator function supplied by the System: VORX mode hashes
// the name across the processing nodes; Meglos mode sends every open to
// the single host — reproducing the §3.2 bottleneck.
//
// User-defined communications objects share this rendezvous ("User-defined
// communications objects are integrated with the object manager, allowing
// these objects to use the same rendezvous mechanism as channels", §4.1):
// the request carries an object type, and only like-typed opens pair.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>

#include "sim/promise.hpp"
#include "sim/task.hpp"
#include "vorx/channel.hpp"

namespace hpcvorx::vorx {

class Subprocess;

/// Object types for rendezvous matching.
inline constexpr std::uint32_t kObjChannel = 0;
inline constexpr std::uint32_t kObjUdco = 1;

struct OpenResult {
  std::uint64_t id = 0;        // this end's object id
  std::uint64_t peer_id = 0;   // the other end's object id
  hw::StationId peer = -1;     // the other end's station
};

class OmService {
 public:
  using Locator = std::function<hw::StationId(const std::string&)>;

  OmService(Kernel& kernel, ChannelService& chans, Locator locate);

  // ---- client side ----

  /// Symmetric open: pairs with another open (or a registered server) of
  /// the same name and type.  Blocks until the manager replies.
  [[nodiscard]] sim::Task<OpenResult> open_pair(Subprocess& sp,
                                                std::string name,
                                                std::uint32_t type);

  /// Registers a persistent server name (§4's reusable channel names).
  [[nodiscard]] sim::Task<void> register_server(Subprocess& sp,
                                                std::string name);

  // ---- manager-side statistics (the §3.2 bottleneck is visible here) ----
  [[nodiscard]] std::uint64_t opens_served() const { return opens_served_; }
  [[nodiscard]] std::size_t queue_depth() const { return reqq_.size(); }
  [[nodiscard]] std::size_t max_queue_depth() const { return max_queue_; }

 private:
  void on_request(hw::Frame f);
  void on_reply(hw::Frame f);
  void on_accept(hw::Frame f);
  sim::Proc worker();
  void handle_request(const hw::Frame& f);
  void send_reply(hw::StationId dst, std::uint64_t reqid,
                  std::uint64_t own_end, std::uint64_t peer_end,
                  hw::StationId peer);
  [[nodiscard]] std::uint64_t make_id();
  [[nodiscard]] sim::Task<OpenResult> do_request(Subprocess& sp,
                                                 std::uint32_t kind,
                                                 std::string name,
                                                 std::uint32_t type);

  Kernel& kernel_;
  ChannelService& chans_;
  Locator locate_;

  // Manager state (used when this node manages some names).
  std::deque<hw::Frame> reqq_;
  bool worker_active_ = false;
  std::unordered_map<std::string, std::deque<std::pair<hw::StationId, std::uint64_t>>>
      pending_;                                        // key -> waiting opens
  std::unordered_map<std::string, hw::StationId> servers_;  // key -> station
  std::uint64_t next_obj_ = 1;
  std::int64_t mgr_owner_;
  std::uint64_t opens_served_ = 0;
  std::size_t max_queue_ = 0;

  // Client state.
  std::uint64_t next_req_ = 1;
  std::unordered_map<std::uint64_t, sim::Promise<OpenResult>> awaiting_;
};

}  // namespace hpcvorx::vorx
