#include "vorx/process.hpp"

#include <cassert>

#include "vorx/node.hpp"
#include "vorx/stub.hpp"
#include "vorx/object_manager.hpp"
#include "vorx/udco.hpp"

namespace hpcvorx::vorx {

Subprocess::Subprocess(Process& proc, int index, int priority,
                       std::string name, sim::Duration switch_cost)
    : proc_(proc),
      index_(index),
      priority_(priority),
      name_(std::move(name)),
      switch_cost_(switch_cost),
      // Owner ids are equality-compared only (context-switch detection);
      // minting them per-simulator keeps shards independent (R6).
      owner_id_(proc.node().simulator().allocate_id()) {}

Node& Subprocess::node() { return proc_.node(); }

sim::Task<void> Subprocess::compute(sim::Duration d) {
  co_await node().cpu().run(priority_, d, sim::Category::kUser, owner_id_,
                            switch_cost_);
}

sim::Task<void> Subprocess::run_system(sim::Duration d) {
  // Kernel code executing in this process's context: system time, kernel
  // priority, no context switch (same owner).
  co_await node().cpu().run(sim::prio::kKernel, d, sim::Category::kSystem,
                            owner_id_, switch_cost_);
}

sim::Task<void> Subprocess::sleep(sim::Duration d) {
  set_state(SpState::kSleeping);
  {
    BlockedScope blocked(node().census(), BlockReason::kOther);
    co_await sim::delay(node().simulator(), d);
  }
  set_state(SpState::kRunning);
}

sim::Task<Channel*> Subprocess::open(const std::string& name) {
  OpenResult r = co_await node().om().open_pair(*this, name, kObjChannel);
  co_return node().channels().create_channel(r.id, r.peer_id, name, r.peer);
}

sim::Task<ServerPort*> Subprocess::open_server(const std::string& name) {
  // The port must exist before the manager can route accepts to it.
  ServerPort* port = node().channels().create_server_port(name);
  co_await node().om().register_server(*this, name);
  co_return port;
}

sim::Task<Channel*> Subprocess::accept(ServerPort& port) {
  return port.accept(*this);
}

sim::Task<void> Subprocess::write(Channel& ch, std::uint32_t bytes,
                                  hw::Payload data) {
  return ch.write(*this, bytes, std::move(data));
}

sim::Task<ChannelMsg> Subprocess::read(Channel& ch) { return ch.read(*this); }

sim::Task<void> Subprocess::write_all(Channel& ch, hw::Payload data) {
  assert(data != nullptr);
  const std::size_t total = data->size();
  hw::FramePool& pool = node().frame_pool();
  for (std::size_t off = 0; off < total; off += kMaxChannelMsg) {
    const std::size_t n = std::min<std::size_t>(kMaxChannelMsg, total - off);
    co_await ch.write(*this, static_cast<std::uint32_t>(n),
                      pool.make_copy(data->data() + off, n));
  }
}

sim::Task<std::vector<std::byte>> Subprocess::read_all(Channel& ch,
                                                       std::size_t total) {
  std::vector<std::byte> out;
  out.reserve(total);
  while (out.size() < total) {
    ChannelMsg m = co_await ch.read(*this);
    assert(m.data != nullptr);
    out.insert(out.end(), m.data->begin(), m.data->end());
  }
  co_return out;
}

sim::Task<std::pair<Channel*, ChannelMsg>> Subprocess::read_any(
    std::vector<Channel*> chans) {
  assert(!chans.empty());
  ChannelService& svc = node().channels();
  co_await run_system(node().costs().chan_read_fixed);
  for (;;) {
    for (Channel* ch : chans) {
      if (ch->has_data()) {
        ChannelMsg m = co_await ch->read(*this);
        co_return std::pair<Channel*, ChannelMsg>{ch, std::move(m)};
      }
    }
    svc.delivery_pulse().reset();
    bool any = false;
    for (Channel* ch : chans) any = any || ch->has_data();
    if (any) continue;
    set_state(SpState::kBlockedInput);
    {
      BlockedScope blocked(node().census(), BlockReason::kInput);
      co_await svc.delivery_pulse().wait();
    }
    set_state(SpState::kRunning);
  }
}

sim::Task<Udco*> Subprocess::open_udco(const std::string& name) {
  OpenResult r = co_await node().om().open_pair(*this, name, kObjUdco);
  co_return node().make_udco(r.id, r.peer_id, name, r.peer);
}

sim::Task<void> Subprocess::breakpoint(const std::string& label) {
  if (!node().breakpoint_armed(label)) co_return;
  stopped_at_ = label;
  set_state(SpState::kStopped);
  bp_resume_ = std::make_unique<sim::Event>(node().simulator());
  {
    BlockedScope blocked(node().census(), BlockReason::kOther);
    co_await bp_resume_->wait();
  }
  bp_resume_.reset();
  stopped_at_.clear();
  set_state(SpState::kRunning);
}

void Subprocess::resume_from_breakpoint() {
  if (bp_resume_) bp_resume_->set();
}

sim::Task<void> Subprocess::p(VSemaphore& s) {
  co_await run_system(node().costs().semaphore_op);
  const bool immediate = s.sem_.available() > 0 && s.sem_.waiting() == 0;
  if (immediate) {
    co_await s.sem_.acquire();
    co_return;
  }
  set_state(SpState::kBlockedSem);
  {
    BlockedScope blocked(node().census(), BlockReason::kOther);
    co_await s.sem_.acquire();
  }
  set_state(SpState::kRunning);
}

sim::Task<void> Subprocess::v(VSemaphore& s) {
  co_await run_system(node().costs().semaphore_op);
  s.sem_.release();
}

Process::Process(Node& node, int pid, std::string name)
    : node_(node), pid_(pid), name_(std::move(name)), done_(node.simulator()) {}

Subprocess& Process::spawn(AppFn fn, int priority, std::string name,
                           sim::Duration switch_cost) {
  // The subprocess frame belongs to this node's shard simulator; bind it
  // so main-thread (pre-run) spawns register with the right registry.
  sim::Simulator::ScopedBind bind(node_.simulator());
  if (switch_cost < 0) switch_cost = node_.costs().subprocess_switch;
  if (name.empty()) name = name_ + ".sp" + std::to_string(spawned_);
  subprocesses_.push_back(std::make_unique<Subprocess>(
      *this, spawned_, priority, std::move(name), switch_cost));
  Subprocess* sp = subprocesses_.back().get();
  ++spawned_;
  ++live_;
  run_subprocess(sp, std::move(fn));
  return *sp;
}

sim::Proc Process::run_subprocess(Subprocess* sp, AppFn fn) {
  // Start on the next event: the spawner gets to finish its wiring (stub
  // bindings, result plumbing) before the application's first instruction.
  co_await sim::yield(node_.simulator());
  co_await fn(*sp);
  sp->set_state(SpState::kDone);
  if (--live_ == 0) {
    finished_at_ = node_.simulator().now();
    done_.set_value();
  }
}

sim::Task<SyscallResult> Subprocess::sys_open(const std::string& path) {
  assert(proc_.syscalls() != nullptr && "process has no stub binding");
  return proc_.syscalls()->sys_open(*this, path);
}

sim::Task<SyscallResult> Subprocess::sys_close(int fd) {
  assert(proc_.syscalls() != nullptr);
  return proc_.syscalls()->sys_close(*this, fd);
}

sim::Task<SyscallResult> Subprocess::sys_read(int fd, std::uint32_t n) {
  assert(proc_.syscalls() != nullptr);
  return proc_.syscalls()->sys_read(*this, fd, n);
}

sim::Task<SyscallResult> Subprocess::sys_write(int fd, hw::Payload data) {
  assert(proc_.syscalls() != nullptr);
  return proc_.syscalls()->sys_write(*this, fd, std::move(data));
}

sim::Task<SyscallResult> Subprocess::sys_keyboard() {
  assert(proc_.syscalls() != nullptr);
  return proc_.syscalls()->sys_keyboard(*this);
}

void Process::bind_syscalls(std::unique_ptr<SyscallClient> client) {
  syscalls_ = std::move(client);
}

VSemaphore::VSemaphore(Node& node, std::int64_t initial)
    : node_(node), sem_(node.simulator(), initial) {}

}  // namespace hpcvorx::vorx
