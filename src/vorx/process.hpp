// Processes and subprocesses — the VORX execution model.
//
// §5 of the paper: "Both Meglos and VORX allow a process to be subdivided
// into subprocesses.  Like threads in Mach, subprocesses are parts of a
// process that execute asynchronously with each other.  Each subprocess is
// an independently scheduled thread of execution that may block for
// communications or other events without affecting the execution of the
// other subprocesses. ... distinct execution priorities can be specified
// for each subprocess and the scheduler is preemptive."
//
// A subprocess's work runs on the node's simulated CPU with the paper's
// 80 µs full-register context switch charged whenever the processor
// switches between subprocess contexts.  The lighter §5 structuring
// alternatives (coroutines, interrupt-level programming) are modelled by
// spawning contexts with smaller switch costs.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sim/promise.hpp"
#include "sim/task.hpp"
#include "vorx/channel.hpp"

namespace hpcvorx::vorx {

class Node;
class Process;
class SyscallClient;
struct SyscallResult;
class Udco;
class VSemaphore;

enum class SpState {
  kRunning,
  kBlockedInput,
  kBlockedOutput,
  kBlockedSem,
  kBlockedOpen,
  kBlockedSyscall,
  kSleeping,
  kStopped,  // parked at a vdb breakpoint
  kDone,
};

[[nodiscard]] constexpr std::string_view sp_state_name(SpState s) {
  switch (s) {
    case SpState::kRunning: return "running";
    case SpState::kBlockedInput: return "blocked-input";
    case SpState::kBlockedOutput: return "blocked-output";
    case SpState::kBlockedSem: return "blocked-sem";
    case SpState::kBlockedOpen: return "blocked-open";
    case SpState::kBlockedSyscall: return "blocked-syscall";
    case SpState::kSleeping: return "sleeping";
    case SpState::kStopped: return "stopped";
    case SpState::kDone: return "done";
  }
  return "?";
}

class Subprocess {
 public:
  Subprocess(Process& proc, int index, int priority, std::string name,
             sim::Duration switch_cost);

  // ---- computation ----
  /// Executes `d` of application code on this node's CPU (user time, this
  /// subprocess's priority, context switches charged on owner change).
  [[nodiscard]] sim::Task<void> compute(sim::Duration d);

  /// Executes `d` of kernel code in this process's context (system time).
  [[nodiscard]] sim::Task<void> run_system(sim::Duration d);

  /// Suspends for `d` of virtual time (device waits, pacing).
  [[nodiscard]] sim::Task<void> sleep(sim::Duration d);

  // ---- channels (§4) ----
  [[nodiscard]] sim::Task<Channel*> open(const std::string& name);
  [[nodiscard]] sim::Task<ServerPort*> open_server(const std::string& name);
  [[nodiscard]] sim::Task<Channel*> accept(ServerPort& port);
  [[nodiscard]] sim::Task<void> write(Channel& ch, std::uint32_t bytes,
                                      hw::Payload data = nullptr);
  [[nodiscard]] sim::Task<ChannelMsg> read(Channel& ch);

  /// Writes a buffer of any size as a sequence of frame-limited channel
  /// messages (the convenience the HPC's 1060-byte frame limit demands).
  [[nodiscard]] sim::Task<void> write_all(Channel& ch, hw::Payload data);

  /// Reads `total` bytes that arrive as any number of messages and
  /// reassembles them.
  [[nodiscard]] sim::Task<std::vector<std::byte>> read_all(Channel& ch,
                                                           std::size_t total);

  /// Multiplexed read (§4): blocks until any of `chans` has data.
  [[nodiscard]] sim::Task<std::pair<Channel*, ChannelMsg>> read_any(
      std::vector<Channel*> chans);

  // ---- user-defined communications objects (§4.1) ----
  [[nodiscard]] sim::Task<Udco*> open_udco(const std::string& name);

  // ---- semaphores (§5) ----
  [[nodiscard]] sim::Task<void> p(VSemaphore& s);
  [[nodiscard]] sim::Task<void> v(VSemaphore& s);

  // ---- debugging (§6: vdb breakpoints and variable inspection) ----
  /// Parks this subprocess at a named breakpoint when a debugger has armed
  /// it (vdb::set_breakpoint); otherwise costs nothing and continues.
  [[nodiscard]] sim::Task<void> breakpoint(const std::string& label);

  /// Publishes a named value that vdb can examine ("switch between
  /// subprocesses to examine their local variables").
  void publish_local(const std::string& name, std::int64_t value) {
    locals_[name] = value;
  }
  [[nodiscard]] const std::map<std::string, std::int64_t>& locals() const {
    return locals_;
  }
  [[nodiscard]] const std::string& stopped_at() const { return stopped_at_; }

  /// Debugger side: resumes a subprocess parked at a breakpoint.
  void resume_from_breakpoint();

  // ---- forwarded UNIX system calls (§3.3; requires a stub binding) ----
  [[nodiscard]] sim::Task<SyscallResult> sys_open(const std::string& path);
  [[nodiscard]] sim::Task<SyscallResult> sys_close(int fd);
  [[nodiscard]] sim::Task<SyscallResult> sys_read(int fd, std::uint32_t n);
  [[nodiscard]] sim::Task<SyscallResult> sys_write(int fd, hw::Payload data);
  [[nodiscard]] sim::Task<SyscallResult> sys_keyboard();

  // ---- identity / state ----
  [[nodiscard]] Process& process() { return proc_; }
  [[nodiscard]] Node& node();
  [[nodiscard]] int index() const { return index_; }
  [[nodiscard]] int priority() const { return priority_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] SpState state() const { return state_; }
  void set_state(SpState s) { state_ = s; }
  [[nodiscard]] std::int64_t owner_id() const { return owner_id_; }
  [[nodiscard]] sim::Duration switch_cost() const { return switch_cost_; }

 private:
  friend class Process;
  Process& proc_;
  int index_;
  int priority_;
  std::string name_;
  sim::Duration switch_cost_;
  std::int64_t owner_id_;
  SpState state_ = SpState::kRunning;
  std::map<std::string, std::int64_t> locals_;
  std::string stopped_at_;
  std::unique_ptr<sim::Event> bp_resume_;
};

/// Application entry point: one coroutine per subprocess.
using AppFn = std::function<sim::Task<void>(Subprocess&)>;

class Process {
 public:
  Process(Node& node, int pid, std::string name);
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  /// Starts a subprocess running `fn`.  `switch_cost < 0` means the
  /// default (the cost model's 80 µs full register save).
  Subprocess& spawn(AppFn fn, int priority = sim::prio::kUserDefault,
                    std::string name = "", sim::Duration switch_cost = -1);

  /// Fulfilled when every subprocess has finished.
  [[nodiscard]] sim::Future<sim::Unit> done() const { return done_.future(); }
  [[nodiscard]] bool finished() const { return live_ == 0 && spawned_ > 0; }
  [[nodiscard]] sim::SimTime finished_at() const { return finished_at_; }

  [[nodiscard]] Node& node() { return node_; }
  [[nodiscard]] int pid() const { return pid_; }

  /// Binds every subprocess's forwarded system calls to a host stub.
  void bind_syscalls(std::unique_ptr<SyscallClient> client);
  [[nodiscard]] SyscallClient* syscalls() { return syscalls_.get(); }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<std::unique_ptr<Subprocess>>& subprocesses()
      const {
    return subprocesses_;
  }

 private:
  sim::Proc run_subprocess(Subprocess* sp, AppFn fn);

  Node& node_;
  int pid_;
  std::string name_;
  std::vector<std::unique_ptr<Subprocess>> subprocesses_;
  int live_ = 0;
  int spawned_ = 0;
  sim::Promise<sim::Unit> done_;
  sim::SimTime finished_at_ = -1;
  std::unique_ptr<SyscallClient> syscalls_;
};

/// A VORX semaphore: the §5 inter-subprocess synchronization primitive.
class VSemaphore {
 public:
  VSemaphore(Node& node, std::int64_t initial);

  [[nodiscard]] std::int64_t value() const { return sem_.available(); }
  [[nodiscard]] std::size_t waiting() const { return sem_.waiting(); }

 private:
  friend class Subprocess;
  Node& node_;
  sim::Semaphore sem_;
};

}  // namespace hpcvorx::vorx
