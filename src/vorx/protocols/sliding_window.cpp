#include "vorx/protocols/sliding_window.hpp"

#include <cassert>

#include "vorx/node.hpp"
#include "vorx/process.hpp"

namespace hpcvorx::vorx {

sim::Task<void> SlidingWindowSender::send(Subprocess& sp, std::uint32_t bytes,
                                          hw::Payload data) {
  const CostModel& c = sp.node().costs();
  // User-level window bookkeeping (credit check, buffer walk, checksum).
  co_await sp.compute(c.swp_sender_bookkeep +
                      static_cast<sim::Duration>(bytes) * c.swp_sender_per_byte);
  // Absorb any credits already queued by the ISR.
  while (auto cf = link_.poll()) {
    assert(cf->aux == kCreditAux);
    ++credits_;
  }
  if (credits_ == 0) {
    ++blocked_;
    hw::Frame cf = co_await link_.recv(sp);  // wait for a credit
    assert(cf.aux == kCreditAux);
    (void)cf;
    ++credits_;
    while (auto more = link_.poll()) {
      assert(more->aux == kCreditAux);
      ++credits_;
    }
    co_await sp.compute(c.swp_block_wakeup);
  }
  --credits_;
  co_await link_.send(sp, bytes, std::move(data), ++seq_);
}

sim::Task<void> SlidingWindowReceiver::start(Subprocess& sp) {
  const CostModel& c = sp.node().costs();
  for (int i = 0; i < buffers_; ++i) {
    co_await sp.compute(c.swp_credit_send);
    co_await link_.send(sp, 0, nullptr, 0, kCreditAux);
  }
}

sim::Task<hw::Frame> SlidingWindowReceiver::recv(Subprocess& sp) {
  const CostModel& c = sp.node().costs();
  const bool will_block = link_.pending() == 0;
  hw::Frame f = co_await link_.recv(sp);
  assert(f.aux != kCreditAux && "credit frame on the data direction");
  if (will_block) co_await sp.compute(c.swp_block_wakeup);
  // Copy the message out of the protocol buffer, then return the buffer.
  co_await sp.compute(c.swp_receiver_bookkeep +
                      static_cast<sim::Duration>(f.payload_bytes) *
                          c.swp_receiver_per_byte);
  ++received_;
  co_await sp.compute(c.swp_credit_send);
  co_await link_.send(sp, 0, nullptr, 0, kCreditAux);
  co_return f;
}

}  // namespace hpcvorx::vorx
