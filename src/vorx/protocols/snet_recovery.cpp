#include "vorx/protocols/snet_recovery.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace hpcvorx::vorx {

namespace {
// Local frame kinds on the S/NET (disjoint software world from the HPC).
constexpr std::uint32_t kSnetData = 1;
constexpr std::uint32_t kSnetRequest = 2;
constexpr std::uint32_t kSnetGrant = 3;
}  // namespace

// Parks the drain pump until the next fifo arrival.  Ready when a fragment
// is already staged, so the pump never suspends with work pending.
struct SnetStation::DrainPark {
  SnetStation& s;
  [[nodiscard]] bool await_ready() const noexcept {
    return s.bus_.fifo_peek(s.id_) != nullptr;
  }
  void await_suspend(std::coroutine_handle<> h) noexcept {
    s.drain_parked_ = h;
  }
  void await_resume() const noexcept {}
};

SnetStation::SnetStation(sim::Simulator& sim, hw::SnetBus& bus, int id,
                         const CostModel& costs, std::uint64_t rng_seed)
    : sim_(sim),
      bus_(bus),
      id_(id),
      costs_(costs),
      cpu_(sim, "snet" + std::to_string(id)),
      rng_(rng_seed),
      inbox_(sim),
      bus_mutex_(sim, 1),
      grant_ev_(sim) {
  // Same order contract as Kernel's rx interrupt: the parked pump is
  // resumed inline, exactly where the old per-burst drain_service() spawn
  // ran; mid-burst arrivals stay staged in the fifo and are drained in
  // fifo order without another resume.
  bus_.set_rx_cb(id_, [this] {
    if (!drain_started_) {
      drain_started_ = true;
      drain_pump();
      return;
    }
    if (drain_parked_ != nullptr) {
      const std::coroutine_handle<> h =
          std::exchange(drain_parked_, std::coroutine_handle<>{});
      h.resume();
    }
  });
}

sim::Proc SnetStation::drain_pump() {
  for (;;) {
    co_await DrainPark{*this};
    while (bus_.fifo_peek(id_) != nullptr) {
      const std::uint32_t total = bus_.fifo_peek(id_)->bytes;
      co_await cpu_.run(sim::prio::kInterrupt, costs_.rx_interrupt,
                        sim::Category::kSystem, sim::kBorrowedContext,
                        costs_.interrupt_dispatch);
      // Reading words out of the fifo is software work, and the space frees
      // *continuously* — which is what lets a concurrent (doomed) arrival
      // consume it before a whole message's worth accumulates: the §2
      // lockout mechanism.
      std::uint32_t remaining = total;
      while (remaining > 0) {
        const std::uint32_t quantum = std::min<std::uint32_t>(64, remaining);
        co_await cpu_.run(sim::prio::kInterrupt,
                          static_cast<sim::Duration>(quantum) *
                              costs_.snet_read_per_byte,
                          sim::Category::kSystem, sim::kBorrowedContext, 0);
        bus_.fifo_release(id_, quantum);
        remaining -= quantum;
      }
      auto frag = bus_.fifo_pop(id_);
      assert(frag.has_value());
      drained_ += total;
      if (!frag->complete) {
        // The §2 residue: read it, recognise the truncation, throw it away.
        ++discarded_;
        try_grant();  // draining may have made room for a granted message
        continue;
      }
      dispatch(std::move(frag->frame));
    }
  }
}

void SnetStation::dispatch(hw::Frame f) {
  switch (f.kind) {
    case kSnetRequest:
      want_to_send_.push_back(f.src);
      try_grant();
      break;
    case kSnetGrant:
      grant_ev_.set();
      break;
    default:
      ++received_;
      if (reservation_server_ && f.src == authorized_) {
        authorized_ = -1;  // transfer complete; the next sender may go
      }
      (void)inbox_.try_send(std::move(f));
      try_grant();
      break;
  }
}

void SnetStation::try_grant() {
  if (!reservation_server_ || authorized_ != -1 || want_to_send_.empty()) {
    return;
  }
  // Hold the grant until the fifo can absorb the whole expected message.
  if (bus_.fifo_free(id_) < expected_bytes_ + hw::kHeaderBytes) return;
  authorized_ = want_to_send_.front();
  want_to_send_.pop_front();
  hw::Frame grant;
  grant.kind = kSnetGrant;
  grant.dst = authorized_;
  // Fire-and-forget: grants are tiny and retried on the rare overflow.
  [](SnetStation* self, hw::Frame g) -> sim::Proc {
    while (!co_await self->bus_send(g)) {
    }
  }(this, std::move(grant));
}

sim::Task<bool> SnetStation::bus_send(hw::Frame f) {
  co_await bus_mutex_.acquire();
  co_await cpu_.run(sim::prio::kKernel, costs_.snet_send_fixed,
                    sim::Category::kSystem, sim::kBorrowedContext, 0);
  sim::Promise<bool> done(sim_);
  bus_.request_send(id_, std::move(f),
                    [done](bool ok) mutable { done.set_value(ok); });
  const bool ok = co_await done.future();
  bus_mutex_.release();
  co_return ok;
}

sim::Task<SnetStation::SendOutcome> SnetStation::send(int dst,
                                                      std::uint32_t bytes,
                                                      SnetPolicy policy) {
  SendOutcome out;
  hw::Frame f;
  f.kind = kSnetData;
  f.dst = dst;
  f.payload_bytes = bytes;

  if (policy == SnetPolicy::kReservation) {
    // Short request first; data only after the receiver's grant.
    hw::Frame req;
    req.kind = kSnetRequest;
    req.dst = dst;
    grant_ev_.reset();
    while (true) {
      ++out.attempts;
      if (co_await bus_send(req)) break;
    }
    co_await grant_ev_.wait();
    ++out.attempts;
    const bool ok = co_await bus_send(std::move(f));
    assert(ok && "reservation guaranteed fifo space");
    (void)ok;
    co_return out;
  }

  sim::Duration backoff = costs_.snet_backoff_initial;
  while (true) {
    ++out.attempts;
    if (co_await bus_send(f)) co_return out;
    if (policy == SnetPolicy::kRandomBackoff) {
      // Random wait, doubling per consecutive failure (Ethernet-style).
      const auto wait = static_cast<sim::Duration>(
          rng_.below(static_cast<std::uint64_t>(backoff)) + 1);
      co_await sim::delay(sim_, wait);
      backoff = std::min<sim::Duration>(backoff * 2, sim::msec(20));
    }
    // kBusyRetry: no delay at all — the §2 lockout recipe.
  }
}

sim::Task<hw::Frame> SnetStation::recv() {
  hw::Frame f = co_await inbox_.recv();
  co_return f;
}

void SnetStation::serve_reservations(std::uint32_t expected_bytes) {
  reservation_server_ = true;
  expected_bytes_ = expected_bytes;
}

}  // namespace hpcvorx::vorx
