// S/NET overflow-recovery strategies (§2 of the paper).
//
// The S/NET's fifo-full behaviour (partial-message residue + fifo-full
// signal) forced a choice of software recovery policy:
//
//   * kBusyRetry — "the originating processors were to continuously resend
//     their message until it was successfully received".  Under
//     many-to-one bursts this livelocks: every failed attempt deposits
//     residue the receiver must drain, so the fifo never has room for a
//     whole message ("lockout").
//   * kRandomBackoff — Ethernet-style random waits: "this eliminates the
//     problem of busy loops in the kernel, but when many messages need to
//     be retransmitted, communications runs at the timeout rate".
//   * kReservation — "a processor sends a short message requesting to send
//     its data, and does not send the data until it receives an
//     acknowledgement from the receiver" — overflow-free but adds latency
//     to every message.
//
// Meglos ultimately shipped none of these: it required applications to
// bound many-to-one message lengths (12 x 150 B fits the 2048 B fifo).
// bench_snet_flow_control.cpp measures all four corners, plus the HPC
// hardware flow control that made the whole problem disappear.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>

#include "hw/snet.hpp"
#include "sim/awaitables.hpp"
#include "sim/cpu.hpp"
#include "sim/promise.hpp"
#include "sim/random.hpp"
#include "sim/task.hpp"
#include "vorx/cost_model.hpp"

namespace hpcvorx::vorx {

enum class SnetPolicy { kBusyRetry, kRandomBackoff, kReservation };

/// One processor on the S/NET: a CPU, the Meglos-era low-level send
/// machinery, and an interrupt-driven fifo drain service.
class SnetStation {
 public:
  SnetStation(sim::Simulator& sim, hw::SnetBus& bus, int id,
              const CostModel& costs, std::uint64_t rng_seed);

  struct SendOutcome {
    int attempts = 0;  // bus transmissions needed (1 == no overflow)
  };

  /// Application-level blocking send of one `bytes`-byte message.
  [[nodiscard]] sim::Task<SendOutcome> send(int dst, std::uint32_t bytes,
                                            SnetPolicy policy);

  /// Next complete application message.
  [[nodiscard]] sim::Task<hw::Frame> recv();

  /// Arms the receiver side of the reservation protocol: grants one sender
  /// at a time, holding grants until the fifo can take `expected_bytes`.
  void serve_reservations(std::uint32_t expected_bytes);

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] sim::Cpu& cpu() { return cpu_; }
  [[nodiscard]] std::uint64_t messages_received() const { return received_; }
  [[nodiscard]] std::uint64_t partials_discarded() const { return discarded_; }
  [[nodiscard]] std::uint64_t bytes_drained() const { return drained_; }

 private:
  /// The persistent fifo drain pump: one coroutine for the station's
  /// lifetime, parked on DrainPark while the fifo is empty and resumed
  /// inline by the arrival interrupt (same coalescing idiom as
  /// Kernel::rx_pump — see kernel.cpp for the order contract).
  sim::Proc drain_pump();
  struct DrainPark;
  void dispatch(hw::Frame f);
  [[nodiscard]] sim::Task<bool> bus_send(hw::Frame f);
  void try_grant();

  sim::Simulator& sim_;
  hw::SnetBus& bus_;
  int id_;
  const CostModel& costs_;
  sim::Cpu cpu_;
  sim::Rng rng_;

  // Parking spot for the station-lifetime drain_pump() Proc; same
  // contract as Kernel::rx_parked_ (nulled before every resume).
  // vorx-lint: allow(R8) parking spot for the station-lifetime drain pump
  std::coroutine_handle<> drain_parked_;  // null while the pump is awake
  bool drain_started_ = false;
  sim::Mailbox<hw::Frame> inbox_;
  sim::Semaphore bus_mutex_;  // one outstanding bus request per processor
  std::uint64_t received_ = 0;
  std::uint64_t discarded_ = 0;
  std::uint64_t drained_ = 0;

  // Reservation protocol state.
  bool reservation_server_ = false;
  std::uint32_t expected_bytes_ = 0;
  std::deque<int> want_to_send_;
  int authorized_ = -1;
  sim::Event grant_ev_;  // set when this station receives a grant
};

}  // namespace hpcvorx::vorx
