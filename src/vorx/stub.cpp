#include "vorx/stub.hpp"

#include <cassert>
#include <cstring>

#include "vorx/node.hpp"
#include "vorx/process.hpp"

namespace hpcvorx::vorx {

namespace {

// Syscall request header carried at the front of the frame payload.
struct ReqHeader {
  std::uint32_t op;
  std::int64_t fd;
  std::uint64_t arg;
  std::uint64_t client;
};

hw::Payload encode_request(hw::FramePool& pool, const ReqHeader& h,
                           const std::byte* body, std::size_t body_len) {
  std::vector<std::byte> bytes = pool.buffer();
  bytes.resize(sizeof(ReqHeader) + body_len);
  std::memcpy(bytes.data(), &h, sizeof h);
  if (body_len > 0) std::memcpy(bytes.data() + sizeof h, body, body_len);
  return pool.make(std::move(bytes));
}

ReqHeader decode_header(const hw::Frame& f) {
  ReqHeader h{};
  assert(f.data && f.data->size() >= sizeof h);
  std::memcpy(&h, f.data->data(), sizeof h);
  return h;
}

std::string decode_body_string(const hw::Frame& f) {
  const std::size_t n = f.data->size() - sizeof(ReqHeader);
  std::string s(n, '\0');
  std::memcpy(s.data(), f.data->data() + sizeof(ReqHeader), n);
  return s;
}

}  // namespace

Stub::Stub(Node& host, std::uint64_t id, HostEnv& env)
    : host_(host), id_(id), env_(env),
      // Stubs run with their own CPU-owner identity; ids come from the
      // owning simulator so two shards never share a counter (R6).
      owner_(host.simulator().allocate_id()) {
  host_.add_stub(this);
}

Stub::~Stub() { host_.remove_stub(id_); }

void Stub::on_request(hw::Frame f) {
  reqq_.push_back(std::move(f));
  if (!serving_) serve();
}

sim::Proc Stub::serve() {
  serving_ = true;
  while (!reqq_.empty()) {
    hw::Frame f = std::move(reqq_.front());
    reqq_.pop_front();
    const ReqHeader h = decode_header(f);
    // The stub is an ordinary UNIX process on the host.
    co_await host_.cpu().run(sim::prio::kUserDefault,
                             host_.costs().stub_syscall, sim::Category::kUser,
                             owner_, host_.costs().subprocess_switch);
    SyscallResult res;
    switch (static_cast<Sys>(h.op)) {
      case Sys::kOpen: {
        const std::string path = decode_body_string(f);
        if (static_cast<int>(fds_.size()) >= kMaxOpenFiles) {
          res.value = -1;  // EMFILE: the SunOS 32-descriptor limit (§3.3)
        } else {
          if (!env_.file_exists(path)) env_.create_file(path, {});
          const int fd = next_fd_++;
          fds_[fd] = {path, 0};
          res.value = fd;
        }
        break;
      }
      case Sys::kClose: {
        res.value = fds_.erase(static_cast<int>(h.fd)) != 0 ? 0 : -1;
        break;
      }
      case Sys::kRead: {
        auto it = fds_.find(static_cast<int>(h.fd));
        if (it == fds_.end()) {
          res.value = -1;
          break;
        }
        const std::vector<std::byte>* file = env_.file(it->second.first);
        const std::size_t off = it->second.second;
        const std::size_t avail = file != nullptr && off < file->size()
                                      ? file->size() - off
                                      : 0;
        const std::size_t n = std::min<std::size_t>(avail, h.arg);
        if (n > 0) {
          res.data = host_.frame_pool().make_copy(file->data() + off, n);
        }
        it->second.second += n;
        res.value = static_cast<std::int64_t>(n);
        break;
      }
      case Sys::kWrite: {
        auto it = fds_.find(static_cast<int>(h.fd));
        if (it == fds_.end()) {
          res.value = -1;
          break;
        }
        std::vector<std::byte>& file = env_.file_for_write(it->second.first);
        const std::size_t body = f.data->size() - sizeof(ReqHeader);
        file.insert(file.end(), f.data->begin() + sizeof(ReqHeader),
                    f.data->end());
        it->second.second += body;
        res.value = static_cast<std::int64_t>(body);
        break;
      }
      case Sys::kKeyboard: {
        // A blocking read from the terminal: the stub — and therefore every
        // process it serves — waits (§3.3).
        co_await sim::delay(host_.simulator(), env_.keyboard_delay());
        res.value = 1;
        break;
      }
    }
    ++served_;
    hw::Frame reply;
    reply.kind = msg::kSyscallReply;
    reply.dst = f.src;
    reply.obj = h.client;
    reply.seq = f.seq;
    reply.aux = static_cast<std::uint64_t>(res.value);
    if (res.data != nullptr) {
      reply.payload_bytes = static_cast<std::uint32_t>(res.data->size());
      reply.data = res.data;
    } else {
      reply.payload_bytes = 8;
    }
    host_.kernel().send(std::move(reply));
  }
  serving_ = false;
}

SyscallClient::SyscallClient(Node& node, hw::StationId host,
                             std::uint64_t stub_id)
    : node_(node), host_(host), stub_id_(stub_id),
      client_key_(static_cast<std::uint64_t>(node.simulator().allocate_id())) {
  node_.add_sys_client(client_key_, this);
}

void SyscallClient::on_reply(hw::Frame f) {
  auto it = awaiting_.find(f.seq);
  if (it == awaiting_.end()) return;
  SyscallResult r;
  r.value = static_cast<std::int64_t>(f.aux);
  r.data = f.data;
  it->second.set_value(std::move(r));
  awaiting_.erase(it);
}

sim::Task<SyscallResult> SyscallClient::call(Subprocess& sp, Sys op,
                                             std::uint64_t aux,
                                             std::uint64_t arg,
                                             hw::Payload payload,
                                             std::uint32_t payload_bytes) {
  const CostModel& c = node_.costs();
  co_await sp.run_system(c.chan_write_fixed +
                         static_cast<sim::Duration>(payload_bytes) *
                             c.chan_write_per_byte);
  const std::uint64_t rid = next_req_++;
  sim::Promise<SyscallResult> p(node_.simulator());
  awaiting_.emplace(rid, p);
  ReqHeader h{static_cast<std::uint32_t>(op), static_cast<std::int64_t>(aux),
              arg, client_key_};
  hw::Frame f;
  f.kind = msg::kSyscallReq;
  f.dst = host_;
  f.obj = stub_id_;
  f.seq = rid;
  if (payload != nullptr) {
    f.data = encode_request(node_.frame_pool(), h, payload->data(),
                            payload->size());
  } else {
    f.data = encode_request(node_.frame_pool(), h, nullptr, 0);
  }
  f.payload_bytes = static_cast<std::uint32_t>(sizeof(ReqHeader)) + payload_bytes;
  node_.kernel().send(std::move(f));
  sp.set_state(SpState::kBlockedSyscall);
  SyscallResult r;
  {
    BlockedScope blocked(node_.census(), BlockReason::kOther);
    r = co_await p.future();
  }
  sp.set_state(SpState::kRunning);
  co_return r;
}

sim::Task<SyscallResult> SyscallClient::sys_open(Subprocess& sp,
                                                 const std::string& path) {
  std::vector<std::byte> body = node_.frame_pool().buffer();
  body.resize(path.size());
  std::memcpy(body.data(), path.data(), path.size());
  const auto n = static_cast<std::uint32_t>(body.size());
  return call(sp, Sys::kOpen, 0, 0, node_.frame_pool().make(std::move(body)),
              n);
}

sim::Task<SyscallResult> SyscallClient::sys_close(Subprocess& sp, int fd) {
  return call(sp, Sys::kClose, static_cast<std::uint64_t>(fd), 0, nullptr, 0);
}

sim::Task<SyscallResult> SyscallClient::sys_read(Subprocess& sp, int fd,
                                                 std::uint32_t nbytes) {
  return call(sp, Sys::kRead, static_cast<std::uint64_t>(fd), nbytes, nullptr,
              0);
}

sim::Task<SyscallResult> SyscallClient::sys_write(Subprocess& sp, int fd,
                                                  hw::Payload data) {
  const auto n = static_cast<std::uint32_t>(data->size());
  return call(sp, Sys::kWrite, static_cast<std::uint64_t>(fd), 0,
              std::move(data), n);
}

sim::Task<SyscallResult> SyscallClient::sys_keyboard(Subprocess& sp) {
  return call(sp, Sys::kKeyboard, 0, 0, nullptr, 0);
}

}  // namespace hpcvorx::vorx
