// Host stubs and the UNIX execution environment (§3.3).
//
// "Each process running on a processing node has a stub process running on
// the host. ... Each time a system call (such as a write to a file) is
// executed on the processing node, it sends a message to the stub.  The
// stub then executes the system call and passes the results back to the
// node."
//
// A Stub is a host-side process that serves syscall requests *serially* —
// which is exactly why sharing one stub among many node processes goes
// wrong: "if one of the processes issues a UNIX system call that blocks,
// such as a read from the keyboard, then the stub does not process system
// calls from any of the other processes served by that stub until the
// original system call completes."  The SunOS per-process descriptor limit
// (32) is likewise enforced per *stub*, so processes sharing a stub share
// its descriptor budget.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/awaitables.hpp"
#include "sim/promise.hpp"
#include "sim/task.hpp"
#include "vorx/kernel.hpp"

namespace hpcvorx::vorx {

class Node;
class Subprocess;

/// SunOS kernel limit: open descriptors per (stub) process.
inline constexpr int kMaxOpenFiles = 32;

/// The host's UNIX-like file system and devices, shared by all stubs on
/// that host.
class HostEnv {
 public:
  explicit HostEnv(sim::Simulator& sim) : sim_(sim) {}

  void create_file(const std::string& path, std::vector<std::byte> contents) {
    files_[path] = std::move(contents);
  }
  [[nodiscard]] bool file_exists(const std::string& path) const {
    return files_.count(path) != 0;
  }
  [[nodiscard]] const std::vector<std::byte>* file(const std::string& path) const {
    auto it = files_.find(path);
    return it == files_.end() ? nullptr : &it->second;
  }
  std::vector<std::byte>& file_for_write(const std::string& path) {
    return files_[path];
  }

  /// How long a (blocking) keyboard read takes before input "arrives".
  void set_keyboard_delay(sim::Duration d) { keyboard_delay_ = d; }
  [[nodiscard]] sim::Duration keyboard_delay() const { return keyboard_delay_; }

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

 private:
  sim::Simulator& sim_;
  std::map<std::string, std::vector<std::byte>> files_;
  sim::Duration keyboard_delay_ = sim::msec(50);
};

/// Syscall opcodes forwarded from node processes.
enum class Sys : std::uint32_t {
  kOpen = 1,   // payload: path; reply: fd or -1
  kClose,      // aux: fd
  kRead,       // aux: fd, seq: nbytes; reply: bytes read (+payload)
  kWrite,      // aux: fd, payload: data; reply: bytes written
  kKeyboard,   // blocking read from the controlling terminal
};

struct SyscallResult {
  std::int64_t value = -1;
  hw::Payload data;
};

/// A host-side stub process.  One per node process (faithful environment)
/// or one shared by all processes of an application (fast start-up, §3.3
/// trade-offs).
class Stub {
 public:
  Stub(Node& host, std::uint64_t id, HostEnv& env);
  Stub(const Stub&) = delete;
  Stub& operator=(const Stub&) = delete;
  ~Stub();

  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] int open_files() const { return static_cast<int>(fds_.size()); }
  [[nodiscard]] std::uint64_t calls_served() const { return served_; }
  [[nodiscard]] std::size_t queue_depth() const { return reqq_.size(); }
  /// True while the stub is serving a request (§ 3.3: a blocking syscall
  /// keeps it true for the full wait).
  [[nodiscard]] bool busy() const { return serving_; }

 private:
  friend class SyscallClient;
  friend class Node;
  void on_request(hw::Frame f);
  sim::Proc serve();  // strictly serial: the §3.3 blocking hazard

  Node& host_;
  std::uint64_t id_;
  HostEnv& env_;
  std::deque<hw::Frame> reqq_;
  bool serving_ = false;
  std::map<int, std::pair<std::string, std::size_t>> fds_;  // fd -> (path, offset)
  int next_fd_ = 3;
  std::uint64_t served_ = 0;
  std::int64_t owner_;  // CPU owner identity of the stub process
};

/// Node-side syscall issuing: bound to one stub on one host.
class SyscallClient {
 public:
  SyscallClient(Node& node, hw::StationId host, std::uint64_t stub_id);

  [[nodiscard]] sim::Task<SyscallResult> sys_open(Subprocess& sp,
                                                  const std::string& path);
  [[nodiscard]] sim::Task<SyscallResult> sys_close(Subprocess& sp, int fd);
  [[nodiscard]] sim::Task<SyscallResult> sys_read(Subprocess& sp, int fd,
                                                  std::uint32_t nbytes);
  [[nodiscard]] sim::Task<SyscallResult> sys_write(Subprocess& sp, int fd,
                                                   hw::Payload data);
  [[nodiscard]] sim::Task<SyscallResult> sys_keyboard(Subprocess& sp);

 private:
  friend class Node;
  [[nodiscard]] sim::Task<SyscallResult> call(Subprocess& sp, Sys op,
                                              std::uint64_t aux,
                                              std::uint64_t arg,
                                              hw::Payload payload,
                                              std::uint32_t payload_bytes);
  void on_reply(hw::Frame f);

  Node& node_;
  hw::StationId host_;
  std::uint64_t stub_id_;
  std::uint64_t next_req_ = 1;
  std::uint64_t client_key_;
  std::unordered_map<std::uint64_t, sim::Promise<SyscallResult>> awaiting_;
};

}  // namespace hpcvorx::vorx
